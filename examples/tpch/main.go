// TPC-H: load a small string-key TPC-H instance, run a few queries, and
// compare a fixed dictionary format against the compression manager's
// workload-driven configuration.
package main

import (
	"fmt"
	"time"

	"strdict"
	"strdict/internal/tpch"
)

func main() {
	fmt.Println("loading TPC-H (scale factor 0.01, string keys)...")
	store := tpch.Load(tpch.Config{
		ScaleFactor:   0.01,
		Seed:          42,
		InitialFormat: strdict.FCInline,
	})
	for _, name := range store.TableNames() {
		fmt.Printf("  %-10s %8d rows\n", name, store.Tables[name].Rows())
	}

	fmt.Println("\nQ1 — pricing summary:")
	res := tpch.Queries()[0].Run(store)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}

	fmt.Println("\nQ6 — forecast revenue change:")
	fmt.Printf("  revenue = %s\n", tpch.Queries()[5].Run(store).Rows[0][0])

	// Trace the full 22-query workload.
	lifetime := tpch.TraceWorkload(store, 1)
	fmt.Printf("\ntraced workload in %v\n", lifetime.Round(time.Millisecond))

	baselineMem := store.Bytes()
	baselineTime := tpch.RunWorkload(store, 3)

	// Let the manager compress aggressively.
	mgr := strdict.NewManager(strdict.ManagerOptions{DesiredFreeBytes: 1 << 30})
	mgr.SetC(0.01)
	cfg := tpch.Reconfigure(store, mgr, float64(lifetime), 0.05, 1)

	adaptedMem := store.Bytes()
	adaptedTime := tpch.RunWorkload(store, 3)

	fmt.Printf("\nfixed fc inline : %8.2f MiB, workload %v\n",
		float64(baselineMem)/(1<<20), baselineTime.Round(time.Millisecond))
	fmt.Printf("adaptive c=0.01 : %8.2f MiB, workload %v\n",
		float64(adaptedMem)/(1<<20), adaptedTime.Round(time.Millisecond))

	counts := make(map[strdict.Format]int)
	for _, f := range cfg {
		counts[f]++
	}
	fmt.Println("\nformats chosen:")
	for f, n := range counts {
		fmt.Printf("  %-16s %2d columns\n", f, n)
	}
}

// Persistence: serialize a compressed dictionary to disk and load it back —
// the cold-start path of a read-optimized store.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"strdict"
)

func main() {
	var skus []string
	for i := 0; i < 50000; i++ {
		skus = append(skus, fmt.Sprintf("SKU-%02d-%08d", i%40, i))
	}
	sort.Strings(skus)

	d, err := strdict.Build(strdict.FCBlockRP12, skus)
	if err != nil {
		panic(err)
	}
	blob, err := strdict.Marshal(d)
	if err != nil {
		panic(err)
	}
	path := filepath.Join(os.TempDir(), "skus.sdic")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: %d entries, %d bytes (raw strings: %d bytes)\n",
		path, d.Len(), len(blob), rawBytes(skus))

	loaded, err := strdict.Unmarshal(mustRead(path))
	if err != nil {
		panic(err)
	}
	id, found := loaded.Locate("SKU-07-00000047")
	fmt.Printf("locate(SKU-07-00000047) = id %d, found %v\n", id, found)
	fmt.Printf("extract(%d) = %s\n", id, loaded.Extract(id))

	// Corrupt bytes are rejected, not crashed on.
	blob[len(blob)/2] ^= 0xff
	if _, err := strdict.Unmarshal(blob); err != nil {
		fmt.Printf("corrupted file rejected: %v\n", err)
	} else {
		fmt.Println("corrupted file loaded (values may differ; reads stay safe)")
	}
	os.Remove(path)
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return b
}

func rawBytes(strs []string) int {
	n := 0
	for _, s := range strs {
		n += len(s)
	}
	return n
}

// Quickstart: build a compressed string dictionary, look values up in both
// directions, and compare the footprint of a few formats.
package main

import (
	"fmt"
	"sort"

	"strdict"
)

func main() {
	// A dictionary takes the sorted distinct values of a column.
	cities := []string{
		"Amsterdam", "Athens", "Berlin", "Bratislava", "Brussels",
		"Bucharest", "Budapest", "Copenhagen", "Dublin", "Helsinki",
		"Lisbon", "Ljubljana", "Luxembourg", "Madrid", "Nicosia",
		"Paris", "Prague", "Riga", "Rome", "Sofia", "Stockholm",
		"Tallinn", "Valletta", "Vienna", "Vilnius", "Warsaw", "Zagreb",
	}
	sort.Strings(cities)

	d, err := strdict.Build(strdict.FCBlock, cities)
	if err != nil {
		panic(err)
	}

	// locate: string -> value ID (the string's rank).
	id, found := d.Locate("Paris")
	fmt.Printf("locate(Paris)  = id %d, found %v\n", id, found)

	// extract: value ID -> string.
	fmt.Printf("extract(%d)    = %s\n", id, d.Extract(id))

	// Absent strings return the ID of the first greater entry.
	id, found = d.Locate("Oslo")
	fmt.Printf("locate(Oslo)   = id %d, found %v (next: %s)\n", id, found, d.Extract(id))

	// Every format trades space against access time differently.
	fmt.Println("\nformat            bytes  compression")
	for _, f := range []strdict.Format{
		strdict.Array, strdict.ArrayFixed, strdict.FCBlock, strdict.FCBlockRP12,
	} {
		dd, err := strdict.Build(f, cities)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %6d  %10.2f\n", f, dd.Bytes(), strdict.CompressionRate(dd, cities))
	}
}

// Adaptive: an end-to-end demonstration of the compression manager on a
// small column store — two columns with opposite usage patterns, a memory
// budget, the feedback loop steering the trade-off parameter c, and the
// background merge daemon: its worker pool merges due columns on its own
// timer (no cooperative Tick calls in the ingest loop), consults the
// manager for the format at every merge, and bounds the delta via
// backpressure, while the columns stay readable throughout
// (versioned read path, snapshot-build-swap).
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"strdict"
)

func main() {
	store := strdict.NewStore()
	tbl := store.AddTable("events")

	// A hot column: short status codes read on every request.
	status := tbl.AddString("status", strdict.FCInline)
	// A cold column: long session identifiers, mostly written and archived.
	session := tbl.AddString("session_id", strdict.FCInline)

	mgr := strdict.NewManager(strdict.ManagerOptions{
		DesiredFreeBytes: 512 << 20,
		Strategy:         strdict.StrategyTilt,
	})

	// The background merge daemon: due columns merge in parallel on a
	// GOMAXPROCS-sized pool on the daemon's own timer, each consulting the
	// manager for its format at merge time; dictionary builds fan out across
	// blocks too. The high-water mark throttles ingest if the daemon falls
	// behind, so the delta can never grow without bound.
	// PartialMerges keeps hot columns cheap: under backpressure the daemon
	// folds only the oldest sealed segments (format unchanged) instead of
	// rebuilding the whole main part; full merges — and the manager's format
	// choice — land once a column cools down or at Close. AdaptiveInterval
	// retunes the timer from the observed append rates.
	sched := strdict.StartMergeDaemon(context.Background(), store, mgr, strdict.DaemonOptions{
		DeltaRowThreshold: 20_000,
		Interval:          5 * time.Millisecond,
		HighWaterMark:     40_000,
		Parallelism:       runtime.GOMAXPROCS(0),
		BuildParallelism:  runtime.GOMAXPROCS(0),
		PartialMerges:     true,
		AdaptiveInterval:  true,
	})

	// The ingest loop contains no merge calls at all — merges overlap it on
	// the daemon goroutine while every reader stays lock-free on the
	// published column versions (see the colstore stress test).
	for i := 0; i < 50_000; i++ {
		status.Append([]string{"OK", "RETRY", "FAILED", "TIMEOUT", "DROPPED"}[i%5])
		session.Append(fmt.Sprintf("sess-%08x-%08x", i*2654435761, i))
	}
	if err := sched.Close(); err != nil { // drains every remaining delta row
		panic(err)
	}
	fmt.Printf("daemon drained: status delta=%d session delta=%d\n",
		status.DeltaRows(), session.DeltaRows())
	store.ResetStats()

	// Trace a workload: the status column is read constantly, the session
	// column almost never.
	for i := 0; i < 200_000; i++ {
		_ = status.Get(i % status.Len())
	}
	for i := 0; i < 50; i++ {
		_ = session.Get(i * 997 % session.Len())
	}

	// Simulate memory pressure: the feedback loop lowers c, which makes the
	// manager favour compression.
	fmt.Println("\nfeeding low free-memory observations...")
	for i := 0; i < 15; i++ {
		mgr.ObserveFreeMemory(128 << 20)
	}
	fmt.Printf("c after pressure: %.4f\n", mgr.C())

	lifetime := 60e9 // one minute between merges
	workers := runtime.GOMAXPROCS(0)
	cfg := strdict.ReconfigureParallel(store, mgr, lifetime, 1.0, 1, workers)
	fmt.Println("\nchosen formats under memory pressure:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())

	// Memory recovers: c rises, speed wins again.
	fmt.Println("\nfeeding high free-memory observations...")
	for i := 0; i < 40; i++ {
		mgr.ObserveFreeMemory(2048 << 20)
	}
	fmt.Printf("c after recovery: %.4f\n", mgr.C())

	cfg = strdict.ReconfigureParallel(store, mgr, lifetime, 1.0, 1, workers)
	fmt.Println("\nchosen formats with plenty of memory:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())
}

// Adaptive: an end-to-end demonstration of the compression manager on a
// small column store — two columns with opposite usage patterns, a memory
// budget, the feedback loop steering the trade-off parameter c, and the
// concurrent merge pipeline: a merge scheduler whose worker pool merges due
// columns in parallel and consults the manager at merge time, while the
// columns stay readable throughout (snapshot-build-swap).
package main

import (
	"fmt"
	"runtime"

	"strdict"
)

func main() {
	store := strdict.NewStore()
	tbl := store.AddTable("events")

	// A hot column: short status codes read on every request.
	status := tbl.AddString("status", strdict.FCInline)
	// A cold column: long session identifiers, mostly written and archived.
	session := tbl.AddString("session_id", strdict.FCInline)

	mgr := strdict.NewManager(strdict.ManagerOptions{
		DesiredFreeBytes: 512 << 20,
		Strategy:         strdict.StrategyTilt,
	})

	// The concurrent merge pipeline: due columns merge in parallel on a
	// GOMAXPROCS-sized pool, each consulting the manager for its format at
	// merge time; dictionary builds themselves fan out across blocks too.
	sched := strdict.NewMergeScheduler(store, 20_000)
	sched.Parallelism = runtime.GOMAXPROCS(0)
	sched.BuildParallelism = runtime.GOMAXPROCS(0)
	sched.Chooser = func(c *strdict.StringColumn, lifetimeNs float64) strdict.Format {
		return mgr.ChooseFormat(strdict.ColumnStatsOf(c, lifetimeNs, 1.0, 1)).Format
	}

	for i := 0; i < 50_000; i++ {
		status.Append([]string{"OK", "RETRY", "FAILED", "TIMEOUT", "DROPPED"}[i%5])
		session.Append(fmt.Sprintf("sess-%08x-%08x", i*2654435761, i))
		// Ingest and merge interleave; readers would keep running while the
		// pool merges (see the colstore stress test).
		if i%10_000 == 9_999 {
			if merged := sched.Tick(); len(merged) > 0 {
				fmt.Printf("merged in parallel: %v\n", merged)
			}
		}
	}
	sched.Flush()
	store.ResetStats()

	// Trace a workload: the status column is read constantly, the session
	// column almost never.
	for i := 0; i < 200_000; i++ {
		_ = status.Get(i % status.Len())
	}
	for i := 0; i < 50; i++ {
		_ = session.Get(i * 997 % session.Len())
	}

	// Simulate memory pressure: the feedback loop lowers c, which makes the
	// manager favour compression.
	fmt.Println("\nfeeding low free-memory observations...")
	for i := 0; i < 15; i++ {
		mgr.ObserveFreeMemory(128 << 20)
	}
	fmt.Printf("c after pressure: %.4f\n", mgr.C())

	lifetime := 60e9 // one minute between merges
	workers := runtime.GOMAXPROCS(0)
	cfg := strdict.ReconfigureParallel(store, mgr, lifetime, 1.0, 1, workers)
	fmt.Println("\nchosen formats under memory pressure:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())

	// Memory recovers: c rises, speed wins again.
	fmt.Println("\nfeeding high free-memory observations...")
	for i := 0; i < 40; i++ {
		mgr.ObserveFreeMemory(2048 << 20)
	}
	fmt.Printf("c after recovery: %.4f\n", mgr.C())

	cfg = strdict.ReconfigureParallel(store, mgr, lifetime, 1.0, 1, workers)
	fmt.Println("\nchosen formats with plenty of memory:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())
}

// Adaptive: an end-to-end demonstration of the compression manager on a
// small column store — two columns with opposite usage patterns, a memory
// budget, and the feedback loop steering the trade-off parameter c.
package main

import (
	"fmt"

	"strdict"
)

func main() {
	store := strdict.NewStore()
	tbl := store.AddTable("events")

	// A hot column: short status codes read on every request.
	status := tbl.AddString("status", strdict.FCInline)
	// A cold column: long session identifiers, mostly written and archived.
	session := tbl.AddString("session_id", strdict.FCInline)

	for i := 0; i < 50_000; i++ {
		status.Append([]string{"OK", "RETRY", "FAILED", "TIMEOUT", "DROPPED"}[i%5])
		session.Append(fmt.Sprintf("sess-%08x-%08x", i*2654435761, i))
	}
	tbl.MergeAll()
	store.ResetStats()

	// Trace a workload: the status column is read constantly, the session
	// column almost never.
	for i := 0; i < 200_000; i++ {
		_ = status.Get(i % status.Len())
	}
	for i := 0; i < 50; i++ {
		_ = session.Get(i * 997 % session.Len())
	}

	mgr := strdict.NewManager(strdict.ManagerOptions{
		DesiredFreeBytes: 512 << 20,
		Strategy:         strdict.StrategyTilt,
	})

	// Simulate memory pressure: the feedback loop lowers c, which makes the
	// manager favour compression.
	fmt.Println("feeding low free-memory observations...")
	for i := 0; i < 15; i++ {
		mgr.ObserveFreeMemory(128 << 20)
	}
	fmt.Printf("c after pressure: %.4f\n", mgr.C())

	lifetime := 60e9 // one minute between merges
	cfg := strdict.Reconfigure(store, mgr, lifetime, 1.0, 1)
	fmt.Println("\nchosen formats under memory pressure:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())

	// Memory recovers: c rises, speed wins again.
	fmt.Println("\nfeeding high free-memory observations...")
	for i := 0; i < 40; i++ {
		mgr.ObserveFreeMemory(2048 << 20)
	}
	fmt.Printf("c after recovery: %.4f\n", mgr.C())

	cfg = strdict.Reconfigure(store, mgr, lifetime, 1.0, 1)
	fmt.Println("\nchosen formats with plenty of memory:")
	for col, f := range cfg {
		fmt.Printf("  %-18s -> %s\n", col, f)
	}
	fmt.Printf("dictionary bytes: status=%d session=%d\n",
		status.DictBytes(), session.DictBytes())
}

// Formats: survey all registered dictionary formats on one of the synthetic data
// sets (or a file of your own, one string per line) — size predictions
// from a 1% sample next to the real measurements.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"strdict"
	"strdict/internal/datagen"
)

func main() {
	corpus := flag.String("corpus", "url", "synthetic data set (asc, engl, 1gram, hash, mat, rand1, rand2, src, url)")
	file := flag.String("file", "", "read strings from this file instead (one per line)")
	n := flag.Int("n", 20000, "strings to generate for a synthetic corpus")
	flag.Parse()

	var strs []string
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		seen := make(map[string]bool)
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !seen[line] && !strings.ContainsRune(line, 0) {
				seen[line] = true
				strs = append(strs, line)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sort.Strings(strs)
	} else {
		strs = datagen.Generate(*corpus, *n, 1)
	}

	fmt.Printf("%d distinct strings, %d raw bytes\n\n", len(strs), rawBytes(strs))
	sample := strdict.TakeSample(strs, 0.01, 1)

	fmt.Printf("%-16s %12s %12s %10s %12s\n",
		"format", "bytes", "predicted", "pred err", "compression")
	for _, f := range strdict.AllFormats() {
		d, err := strdict.Build(f, strs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pred := strdict.EstimateSize(f, sample)
		errPct := 100 * (float64(pred) - float64(d.Bytes())) / float64(d.Bytes())
		fmt.Printf("%-16s %12d %12d %9.1f%% %12.2f\n",
			f, d.Bytes(), pred, errPct, strdict.CompressionRate(d, strs))
	}
}

func rawBytes(strs []string) int {
	n := 0
	for _, s := range strs {
		n += len(s)
	}
	return n
}

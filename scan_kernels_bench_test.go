package strdict_test

import (
	"fmt"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

// BenchmarkScanKernels gates the vectorized read path: predicate scans over
// the packed code vector via the batch kernels (SWAR equality, range
// compare, zone-map pruning) against the pre-kernel scalar path that paid
// one Vector.Get interface call per row.
//
// Two column shapes:
//   - uniform: ~250 distinct values shuffled evenly — bit-packed vector,
//     every zone spans the whole domain, so this measures the raw kernel
//     (no pruning help).
//   - clustered: the same values sorted — run-length vector whose zones have
//     tight disjoint bounds, so a selective probe skips almost every zone.
func BenchmarkScanKernels(b *testing.B) {
	const (
		rows     = 1 << 18
		distinct = 250
	)
	value := func(code int) string { return fmt.Sprintf("val-%04d", code) }

	build := func(order func(i int) int) (*colstore.StringColumn, *colstore.Snapshot) {
		col := colstore.NewStringColumn("bench.scan", dict.Array)
		for i := 0; i < rows; i++ {
			col.Append(value(order(i)))
		}
		col.Merge(dict.Array)
		return col, col.Snapshot()
	}
	uniformCol, uniform := build(func(i int) int { return (i * 2654435761) % distinct })
	clusteredCol, clustered := build(func(i int) int { return i / (rows / distinct) })
	defer uniform.Release()
	defer clustered.Release()
	_ = uniformCol

	probe := value(distinct / 2)
	loVal, hiVal := value(distinct/2), value(distinct/2+8)
	var out []int

	b.Run("eq/scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = uniform.ScanEqScalar(probe, out[:0])
		}
	})
	b.Run("eq/kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = uniform.ScanEq(probe, out[:0])
		}
	})
	b.Run("eq/kernel-pruned", func(b *testing.B) {
		b.ReportAllocs()
		clustered.Release() // flush so the stats delta below is exact
		before := clusteredCol.ScanStats()
		for i := 0; i < b.N; i++ {
			out = clustered.ScanEq(probe, out[:0])
		}
		clustered.Release()
		delta := clusteredCol.ScanStats()
		b.ReportMetric(float64(delta.ZonesSkipped-before.ZonesSkipped)/float64(b.N), "zones-skipped/op")
	})
	b.Run("range/scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = uniform.ScanRangeScalar(loVal, hiVal, out[:0])
		}
	})
	b.Run("range/kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = uniform.ScanRange(loVal, hiVal, out[:0])
		}
	})
	b.Run("count/kernel", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = uniform.CountEq(probe)
		}
		_ = n
	})
}

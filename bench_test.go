// Root benchmark harness: one benchmark per figure of the paper's
// evaluation (the same code paths as the cmd/* tools, so `go test -bench=.`
// regenerates every result), plus ablation benchmarks for the design
// decisions called out in DESIGN.md. Figure benches print their tables once
// on the first iteration; runtime-oriented benches report per-op costs.
package strdict_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"strdict"

	"strdict/internal/bitcomp"
	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/experiments"
	"strdict/internal/model"
	"strdict/internal/sysstat"
	"strdict/internal/tpch"
)

// figureOut prints a figure's table once per process, keeping -bench output
// readable across b.N calibration runs.
var figurePrinted sync.Map

func figureWriter(name string) io.Writer {
	if _, loaded := figurePrinted.LoadOrStore(name, true); loaded {
		return io.Discard
	}
	return os.Stdout
}

func BenchmarkFigure1SystemStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, name := range sysstat.Names() {
			s := sysstat.Generate(name, 1)
			s.DecadeShares()
		}
	}
	experiments.Figures1And2(figureWriter("fig1"), 1)
}

func BenchmarkFigure2MemoryShare(b *testing.B) {
	s := sysstat.Generate("ERP System 1", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LargeDictMemoryShare(100_000)
	}
	mem, cols := s.LargeDictMemoryShare(100_000)
	fmt.Fprintf(figureWriter("fig2"),
		"Figure 2 headline: %.1f%% of memory in >1e5-entry dictionaries (%.3f%% of columns)\n",
		mem*100, cols*100)
}

func BenchmarkFigure3TradeoffSrc(b *testing.B) {
	strs := datagen.Generate("src", 10000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Survey(strs, 5000, 1)
	}
	b.StopTimer()
	experiments.Figure3(figureWriter("fig3"), 10000, 1)
}

func BenchmarkFigure4BestCompression(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(io.Discard, 4000, 1)
	}
	experiments.Figure4(figureWriter("fig4"), 4000, 1)
}

func BenchmarkFigure5FastestExtract(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(io.Discard, 4000, 1)
	}
	experiments.Figure5(figureWriter("fig5"), 4000, 1)
}

func BenchmarkFigure6PredictionError(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.PredictionErrors(6000, -1, 1)
	}
	experiments.Figure6(figureWriter("fig6"), 6000, 1)
}

func BenchmarkFigure9Selection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(io.Discard, 4000, 1, 0.5)
	}
	experiments.Figure9(figureWriter("fig9"), 4000, 1, 0.5)
}

// tpchExperiment is shared by the two TPC-H figure benches (loading and
// tracing dominate, and both figures reuse one trace in the paper too).
var (
	tpchOnce sync.Once
	tpchExp  *experiments.TPCHExperiment
)

func sharedTPCH() *experiments.TPCHExperiment {
	tpchOnce.Do(func() {
		tpchExp = experiments.NewTPCHExperiment(experiments.TPCHConfig{
			ScaleFactor: 0.01,
			Seed:        1,
			TraceReps:   1,
			MeasureReps: 1,
			CValues:     experiments.LogRange(1e-3, 10, 5),
			SampleRatio: 0.05,
		})
	})
	return tpchExp
}

func BenchmarkFigure10TPCHTradeoff(b *testing.B) {
	e := sharedTPCH()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10(figureWriter("fig10"), e)
	}
}

func BenchmarkFigure11FormatDistribution(b *testing.B) {
	e := sharedTPCH()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure11(figureWriter("fig11"), e)
	}
}

// BenchmarkParallelMerge measures the concurrent merge pipeline end to end:
// a store of eight delta-heavy columns over different string distributions
// is flushed through the merge scheduler, whose chooser runs the manager's
// full 18-format evaluation per column (the Re-Pair probes being the long
// pole). workers=1 is the serial baseline; the parallel variant fans columns
// across the scheduler pool and dictionary builds across blocks. The
// resulting per-column formats and dictionary bytes are verified identical
// across worker counts once, before timing, so the speedup is measured on
// provably equivalent work.
func BenchmarkParallelMerge(b *testing.B) {
	const rowsPerCol = 6000
	distributions := []string{"url", "src", "engl", "mat", "asc", "1gram", "hash", "rand1"}
	colRows := make([][]string, len(distributions))
	for i, name := range distributions {
		uniq := datagen.Generate(name, 3000, int64(i+1))
		rows := make([]string, rowsPerCol)
		for j := range rows {
			rows[j] = uniq[(j*2654435761+i*7919)%len(uniq)]
		}
		colRows[i] = rows
	}

	// setup returns a store whose columns hold all rows in the delta, plus a
	// scheduler configured for the given worker count; Flush is the timed
	// unit of work.
	setup := func(workers int) (*strdict.Store, *strdict.MergeScheduler) {
		store := strdict.NewStore()
		tbl := store.AddTable("bench")
		for i := range colRows {
			col := tbl.AddString(fmt.Sprintf("col%d", i), strdict.FCInline)
			for _, v := range colRows[i] {
				col.Append(v)
			}
		}
		mgr := strdict.NewManager(strdict.ManagerOptions{DesiredFreeBytes: 1 << 30})
		sched := strdict.NewMergeScheduler(store, 1)
		sched.Parallelism = workers
		sched.BuildParallelism = workers
		sched.Chooser = func(snap *strdict.Snapshot, lifetimeNs float64) strdict.Format {
			return mgr.ChooseFormat(strdict.ColumnStatsOfSnapshot(snap, lifetimeNs, 1.0, 1)).Format
		}
		return store, sched
	}

	// On a multi-core machine the parallel variant uses every core; on a
	// smaller one it still drives at least four workers so the pooled code
	// path is what gets measured.
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 4 {
		parWorkers = 4
	}

	serialStore, serialSched := setup(1)
	serialSched.Flush()
	parStore, parSched := setup(parWorkers)
	parSched.Flush()
	sCols, pCols := serialStore.StringColumns(), parStore.StringColumns()
	for i := range sCols {
		if sCols[i].Format() != pCols[i].Format() ||
			sCols[i].DictBytes() != pCols[i].DictBytes() ||
			sCols[i].VectorBytes() != pCols[i].VectorBytes() {
			b.Fatalf("column %s diverged: serial %v/%d/%d, parallel %v/%d/%d",
				sCols[i].Name(),
				sCols[i].Format(), sCols[i].DictBytes(), sCols[i].VectorBytes(),
				pCols[i].Format(), pCols[i].DictBytes(), pCols[i].VectorBytes())
		}
	}

	for _, workers := range []int{1, parWorkers} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, sched := setup(workers)
				b.StartTimer()
				sched.Flush()
			}
		})
	}
}

// BenchmarkSnapshotScan measures the versioned read path against the
// pre-refactor design on two op classes: value point reads (AppendGet —
// dictionary extract per row) and code reads (Code — the scan inner-loop
// access ScanEq and RowsByCode make per row). Each class compares the
// lock-free live column (one atomic version load per call) and a pinned
// Snapshot against an RWMutex-wrapped baseline reproducing the old
// lock-per-call column. The code reads are the headline: the op is a few
// nanoseconds of bit-unpacking, so the RLock/RUnlock pair the old design
// paid per call is several times the work itself.
// scripts/bench_read_path.sh records the rwmutex-vs-lockfree ratios in
// BENCH_read_path.json. The working set is deliberately cache-resident:
// with a memory-latency-bound column every variant converges on DRAM
// latency and the synchronization difference disappears into noise.
func BenchmarkSnapshotScan(b *testing.B) {
	const rows = 4096
	uniq := datagen.Generate("engl", 512, 1)
	col := strdict.NewStore().AddTable("bench").AddString("c", strdict.Array)
	for i := 0; i < rows; i++ {
		col.Append(uniq[(i*2654435761)%len(uniq)])
	}
	col.Merge(strdict.Array) // cheap format: access cost ~ lock cost

	// AppendGet into a reusable buffer keeps every variant allocation-free,
	// so the measured difference is synchronization, not the allocator. The
	// RWMutex baseline emulates the old StringColumn: every read takes the
	// column lock around the same underlying dictionary access. Snapshots
	// are single-goroutine query handles (their trace counters are plain
	// fields), so each variant constructs its reader per goroutine — the
	// mk() factory runs once per RunParallel worker.
	var mu sync.RWMutex
	locked := func(dst []byte, i int) []byte {
		mu.RLock()
		defer mu.RUnlock()
		return col.AppendGet(dst, i)
	}

	readers := []struct {
		name string
		mk   func() func(dst []byte, i int) []byte
	}{
		{"lockfree-column", func() func([]byte, int) []byte { return col.AppendGet }},
		{"snapshot", func() func([]byte, int) []byte { return col.Snapshot().AppendGet }},
		{"rwmutex", func() func([]byte, int) []byte { return locked }},
	}
	// rows is a power of two: i*K & (rows-1) with odd K permutes the row
	// space without the integer division a modulo would add to every op.
	for _, r := range readers {
		b.Run("value/"+r.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			get := r.mk()
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = get(buf[:0], (i*2654435761)&(rows-1))
			}
		})
		b.Run("value/"+r.name+"/parallel", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				get := r.mk()
				var buf []byte
				i := 0
				for pb.Next() {
					buf = get(buf[:0], (i*2654435761)&(rows-1))
					i++
				}
			})
		})
	}

	// Code reads are the scan inner loop: ScanEq, RowsByCode and
	// TranslateCodes evaluate predicates directly on value IDs, one tiny
	// vector access per row. This is where a per-call mutex hurts most —
	// the lock is several times the op itself.
	snap := col.Snapshot()
	lockedCode := func(i int) uint32 {
		mu.RLock()
		defer mu.RUnlock()
		code, _ := snap.Code(i)
		return code
	}
	freeCode := func(i int) uint32 {
		code, _ := col.Code(i)
		return code
	}
	codeReaders := []struct {
		name string
		get  func(i int) uint32
	}{
		{"lockfree-column", freeCode},
		{"rwmutex", lockedCode},
	}
	for _, r := range codeReaders {
		b.Run("code/"+r.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = r.get((i * 2654435761) & (rows - 1))
			}
		})
		b.Run("code/"+r.name+"/parallel", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					_ = r.get((i * 2654435761) & (rows - 1))
					i++
				}
			})
		})
	}
}

// BenchmarkPartialMergePolicy compares the daemon's partial-fold policy
// against the always-full-merge baseline on a hot append stream with a
// bounded value domain (the workload the policy exists for: after warm-up
// every fold is an identity fold that rewrites only the folded rows).
// Each iteration is one Append against a live daemon; two extra metrics
// are reported per variant: rewritten-rows/merge (main-part rows re-encoded
// per merge, the write-amplification the partial path removes) and
// stall-p99-ns (99th-percentile Append latency, dominated by backpressure
// waits at the high-water mark). scripts/bench_partial_merge.sh records
// both in BENCH_partial_merge.json and gates on them.
func BenchmarkPartialMergePolicy(b *testing.B) {
	const domain = 2000
	vals := make([]string, domain)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%06d", i)
	}
	run := func(b *testing.B, partial bool) {
		store := strdict.NewStore()
		col := store.AddTable("bench").AddString("c", strdict.FCInline)
		sched := strdict.NewMergeScheduler(store, 4000)
		sched.Interval = time.Millisecond
		sched.HighWaterMark = 8000
		sched.PartialMerges = partial
		sched.Start(context.Background())

		lat := make([]time.Duration, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			col.Append(vals[i%domain])
			lat[i] = time.Since(t0)
		}
		b.StopTimer()
		if err := sched.Close(); err != nil {
			b.Fatal(err)
		}
		st := sched.ColumnMergeStats("bench.c")
		if merges := st.Full + st.Partial; merges > 0 {
			b.ReportMetric(float64(st.RowsRewritten)/float64(merges), "rewritten-rows/merge")
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[min(len(lat)*99/100, len(lat)-1)]
		b.ReportMetric(float64(p99), "stall-p99-ns")
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("partial", func(b *testing.B) { run(b, true) })
}

// --- ablations ---

// BenchmarkAblationFCBlockSize quantifies the front-coding block-size
// trade-off: bigger blocks compress better but walk longer on extract.
func BenchmarkAblationFCBlockSize(b *testing.B) {
	strs := datagen.Generate("url", 20000, 1)
	for _, bs := range []int{4, 8, 16, 32, 64} {
		d, err := dict.BuildWithFCBlockSize(dict.FCBlock, strs, bs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = d.AppendExtract(buf[:0], uint32(i*2654435761)%uint32(d.Len()))
			}
			b.ReportMetric(float64(d.Bytes()), "dict-bytes")
		})
	}
}

// BenchmarkAblationLocateEncoded compares the encoded-domain locate fast
// path of order-preserving array schemes against the generic
// extract-and-compare binary search on the same dictionary.
func BenchmarkAblationLocateEncoded(b *testing.B) {
	strs := datagen.Generate("mat", 20000, 1)
	for _, f := range []dict.Format{dict.Array, dict.ArrayBC, dict.ArrayHU} {
		d := dict.BuildUnchecked(f, strs)
		b.Run(f.String()+"/encoded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Locate(strs[(i*2654435761)%len(strs)])
			}
		})
		b.Run(f.String()+"/generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dict.GenericLocate(d, strs[(i*2654435761)%len(strs)])
			}
		})
	}
}

// BenchmarkAblationEOSvsLength compares self-delimiting (EOS-terminated)
// decoding against decoding with an externally stored length, plus the
// space the EOS symbol costs. The EOS design wins on space for short
// strings (one code ≤ 1 byte vs a 2-byte length) at a tiny decode cost.
func BenchmarkAblationEOSvsLength(b *testing.B) {
	strs := datagen.Generate("asc", 10000, 1)
	parts := make([][]byte, len(strs))
	for i, s := range strs {
		parts[i] = []byte(s)
	}
	c := bitcomp.Train(parts)
	enc := c.Encode(nil, parts[0])
	n := len(parts[0])

	b.Run("decode-eos", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = c.Decode(buf[:0], enc)
		}
	})
	b.Run("decode-length", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = c.DecodeN(buf[:0], enc, n)
		}
	})
	// Space accounting: EOS costs width bits per string; an external length
	// would cost 16 bits per string.
	eosBits := float64(c.Width())
	b.Run("space", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = eosBits
		}
		b.ReportMetric(eosBits, "eos-bits/string")
		b.ReportMetric(16, "len-bits/string")
	})
}

// BenchmarkAblationSampleRatio shows estimation cost scaling with the
// sampling ratio — the knob Figure 6 sweeps.
func BenchmarkAblationSampleRatio(b *testing.B) {
	strs := datagen.Generate("1gram", 60000, 1)
	for _, ratio := range []float64{0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("ratio=%g", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := model.TakeSample(strs, ratio, int64(i))
				for _, f := range dict.AllFormats() {
					model.EstimateSize(f, s)
				}
			}
		})
	}
}

// BenchmarkBaselineHash reproduces the paper's Section 3.2 comparison that
// led to hashing being excluded from the survey: locate is fast, but the
// hash table's space overhead loses to even the plain array, and extract
// gains nothing.
func BenchmarkBaselineHash(b *testing.B) {
	strs := datagen.Generate("engl", 20000, 1)
	h, err := dict.BuildHash(strs)
	if err != nil {
		b.Fatal(err)
	}
	a := dict.BuildUnchecked(dict.Array, strs)

	b.Run("hash/locate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Locate(strs[(i*2654435761)%len(strs)])
		}
		b.ReportMetric(float64(h.Bytes()), "dict-bytes")
	})
	b.Run("array/locate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Locate(strs[(i*2654435761)%len(strs)])
		}
		b.ReportMetric(float64(a.Bytes()), "dict-bytes")
	})
	b.Run("hash/extract", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = h.AppendExtract(buf[:0], uint32(i*2654435761)%uint32(h.Len()))
		}
	})
	b.Run("array/extract", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = a.AppendExtract(buf[:0], uint32(i*2654435761)%uint32(a.Len()))
		}
	})
}

// tpchStringCorpus loads a small TPC-H instance and returns one string
// column's sorted distinct values — a dictionary-build corpus in the
// paper's modified (string-key) schema.
func tpchStringCorpus(table, column string, n int) []string {
	s := tpch.Load(tpch.Config{ScaleFactor: 0.01, Seed: 1, InitialFormat: dict.Array})
	c := s.Table(table).Str(column)
	seen := make(map[string]bool)
	for i := 0; i < c.Len(); i++ {
		seen[c.Get(i)] = true
	}
	strs := make([]string, 0, len(seen))
	for v := range seen {
		strs = append(strs, v)
	}
	sort.Strings(strs)
	if len(strs) > n {
		strs = strs[:n]
	}
	return strs
}

// BenchmarkNewFormats is the registered-extension gate behind
// scripts/bench_formats.sh: it measures the onpair and lz78 extension
// formats against the survey's strongest general-purpose compressors
// (array rp 16, fc block rp 16) on synthetic and TPC-H corpora. Each
// sub-benchmark reports the compression rate (compressed bytes / raw bytes)
// alongside extract and locate per-op costs; the script collects them into
// BENCH_formats.json.
func BenchmarkNewFormats(b *testing.B) {
	corpora := []struct {
		name string
		strs []string
	}{
		{"src", datagen.Generate("src", 10000, 1)},
		{"url", datagen.Generate("url", 10000, 1)},
		{"tpch_p_comment", tpchStringCorpus("part", "p_comment", 10000)},
		{"tpch_o_orderkey", tpchStringCorpus("orders", "o_orderkey", 10000)},
	}
	formats := []dict.Format{dict.OnPair, dict.LZ78, dict.ArrayRP16, dict.FCBlockRP16}
	for _, c := range corpora {
		var raw uint64
		for _, s := range c.strs {
			raw += uint64(len(s))
		}
		for _, f := range formats {
			d := dict.BuildUnchecked(f, c.strs)
			rate := float64(d.Bytes()) / float64(raw)
			fname := strings.ReplaceAll(f.String(), " ", "_")
			b.Run(c.name+"/"+fname+"/extract", func(b *testing.B) {
				var buf []byte
				for i := 0; i < b.N; i++ {
					buf = d.AppendExtract(buf[:0], uint32(i*2654435761)%uint32(d.Len()))
				}
				b.ReportMetric(rate, "rate")
			})
			b.Run(c.name+"/"+fname+"/locate", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d.Locate(c.strs[(i*2654435761)%len(c.strs)])
				}
				b.ReportMetric(rate, "rate")
			})
		}
	}
}

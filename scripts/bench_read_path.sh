#!/bin/sh
# Read-path benchmark gate: runs BenchmarkSnapshotScan (lock-free column /
# pinned snapshot / RWMutex baseline; value reads and scan inner-loop code
# reads, serial and parallel) plus BenchmarkParallelMerge (background-merge
# throughput context), then writes BENCH_read_path.json at the repo root.
# The headline number is speedup_code_vs_rwmutex — the versioned read path
# must be >= 1.5x the lock-per-call baseline on the scan inner-loop op.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_read_path.txt
go test -run '^$' -bench 'BenchmarkSnapshotScan|BenchmarkParallelMerge' \
    -benchtime=2s -count=1 . | tee "$out"

awk '
/^Benchmark(SnapshotScan|ParallelMerge)/ {
    name = $1
    sub(/^BenchmarkSnapshotScan\//, "scan/", name)
    sub(/^BenchmarkParallelMerge\//, "merge/", name)
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"read_path\",\n"
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], nsop[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_code_vs_rwmutex\": %.3f,\n", \
        nsop["scan/code/rwmutex/serial"] / nsop["scan/code/lockfree-column/serial"]
    printf "  \"speedup_code_parallel_vs_rwmutex\": %.3f,\n", \
        nsop["scan/code/rwmutex/parallel"] / nsop["scan/code/lockfree-column/parallel"]
    printf "  \"speedup_value_vs_rwmutex\": %.3f,\n", \
        nsop["scan/value/rwmutex/serial"] / nsop["scan/value/lockfree-column/serial"]
    printf "  \"snapshot_speedup_value_vs_rwmutex\": %.3f\n", \
        nsop["scan/value/rwmutex/parallel"] / nsop["scan/value/snapshot/parallel"]
    printf "}\n"
}' "$out" > BENCH_read_path.json
rm -f "$out"

cat BENCH_read_path.json

# Gate: the lock-free read path must beat the RWMutex baseline by >= 1.5x
# on the scan inner-loop (code read) op.
awk -F': ' '/"speedup_code_vs_rwmutex"/ {
    gsub(/[,\n ]/, "", $2)
    if ($2 + 0 < 1.5) {
        printf "FAIL: code-read speedup %.3f < 1.5x over RWMutex baseline\n", $2
        exit 1
    }
    printf "OK: code-read speedup %.3f >= 1.5x over RWMutex baseline\n", $2
}' BENCH_read_path.json

#!/bin/sh
# Tier-1 verification: build, vet, tests, and the race detector over every
# package. The -race pass is part of the baseline since the concurrent merge
# pipeline landed — new code must keep it green.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Short fuzz smoke on the binary decoders: the unmarshal paths must reject
# arbitrary bytes without panicking before any of it is fed WAL/checkpoint
# payloads at recovery time.
go test -run '^$' -fuzz FuzzUnmarshalPacked -fuzztime 5s ./internal/intcomp/
go test -run '^$' -fuzz FuzzUnmarshal -fuzztime 5s ./internal/dict/

# Scan-kernel smoke: the batch predicate kernels must stay bit-identical to
# the scalar Get oracle across random vectors, probes and subranges.
go test -run '^$' -fuzz FuzzScanKernels -fuzztime 5s ./internal/intcomp/

# Scan-kernel floor: if the benchmark gate has been run, hold its headline
# numbers — equality kernel >= 4x scalar, selective probes actually skipping
# zones. (make bench regenerates BENCH_scan_kernels.json.)
if [ -f BENCH_scan_kernels.json ]; then
    awk -F': ' '
    /"speedup_eq":/ { gsub(/[, ]/, "", $2); if ($2 + 0 < 4.0) { print "FAIL: scan kernel speedup floor"; exit 1 } }
    /"zones_skipped_per_op"/ { gsub(/[, ]/, "", $2); if ($2 + 0 <= 0) { print "FAIL: zone pruning floor"; exit 1 } }
    ' BENCH_scan_kernels.json
fi

# Incremental-checkpoint floor: with one of sixteen columns dirty, a
# checkpoint must write at least 4x fewer bytes than the full rewrite.
# (make bench regenerates BENCH_incremental_ckpt.json.)
if [ -f BENCH_incremental_ckpt.json ]; then
    awk -F': ' '
    /"bytes_reduction":/ { gsub(/[, ]/, "", $2); if ($2 + 0 < 4.0) { print "FAIL: incremental checkpoint byte-reduction floor"; exit 1 } }
    ' BENCH_incremental_ckpt.json
fi

# Service scale-out floor: re-gate the recorded 4-shard vs 1-shard ingest
# speedup against the floor the benchmark chose for this hardware (2.0 on
# >= 4 cores, 0.7 regression guard on smaller boxes — see
# scripts/bench_service.sh). (make bench-service regenerates
# BENCH_service.json.)
if [ -f BENCH_service.json ]; then
    awk -F': ' '
    /"ingest_speedup":/ { gsub(/[, ]/, "", $2); got = $2 + 0 }
    /"speedup_floor":/  { gsub(/[, ]/, "", $2); floor = $2 + 0 }
    END { if (got < floor) { print "FAIL: service ingest scale-out floor"; exit 1 } }
    ' BENCH_service.json
fi

# Torture smoke: the pinned seeds in internal/torture/testdata/seeds.txt
# replayed deterministically under the race detector (~10s). Every seed
# drives random append/merge/scan/checkpoint/crash/fault interleavings and
# holds all five differential oracles after every step. A failure prints
# the seed; `make torture SEED=<n>` replays it exactly.
go test -race -count=1 -run 'TestTortureShort' ./internal/torture/

# Registry completeness: every registered dictionary format must carry a
# size model and a default cost-table entry (TestRegistryCompleteness), keep
# its immutable wire ID (TestWireIDStability), and satisfy the cross-format
# differential oracle (TestAllFormatsAgree). A format cannot register at all
# without a serializer — RegisterFormat panics — and these suites iterate
# the registry, so a new format cannot dodge coverage.
go test -count=1 -run 'TestRegistryCompleteness' ./internal/model/
go test -count=1 -run 'TestWireIDStability|TestRegistryEnumeration|TestAllFormatsAgree' ./internal/dict/

#!/bin/sh
# Incremental-checkpoint gate: runs BenchmarkIncrementalCheckpoint (bytes
# written per checkpoint on a 16-column store, everything dirty vs one
# column dirty) and writes BENCH_incremental_ckpt.json at the repo root.
# The headline number is the byte reduction of the 1-dirty-of-16 checkpoint
# over the full rewrite — the whole point of tracking per-column dirtiness
# and re-referencing clean parts in the manifest.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_incremental_ckpt.txt
go test -run '^$' -bench 'BenchmarkIncrementalCheckpoint' \
    -benchtime=200ms -count=1 ./internal/persist/ | tee "$out"

awk '
/^BenchmarkIncrementalCheckpoint\// {
    name = $1
    sub(/^BenchmarkIncrementalCheckpoint\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "bytes/op") bytes[name] = $i
        if ($(i+1) == "parts/op") parts[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"incremental_checkpoint\",\n"
    printf "  \"ckpt_ns_per_op\": {\"full\": %s, \"dirty1\": %s},\n", \
        nsop["full"], nsop["1of16"]
    printf "  \"ckpt_bytes_per_op\": {\"full\": %s, \"dirty1\": %s},\n", \
        bytes["full"], bytes["1of16"]
    printf "  \"ckpt_parts_per_op\": {\"full\": %s, \"dirty1\": %s},\n", \
        parts["full"], parts["1of16"]
    printf "  \"bytes_reduction\": %.2f\n", bytes["full"] / bytes["1of16"]
    printf "}\n"
}' "$out" > BENCH_incremental_ckpt.json
rm -f "$out"

cat BENCH_incremental_ckpt.json

# Gates: a 1-dirty-of-16 checkpoint must rewrite exactly one part and write
# at least 4x fewer bytes than the full rewrite.
awk '
/"ckpt_parts_per_op"/ {
    p = $0; sub(/.*"dirty1": /, "", p); sub(/}.*/, "", p)
    if (p + 0 != 1) {
        printf "FAIL: 1-dirty-of-16 checkpoint rewrote %s parts, want 1\n", p
        exit 1
    }
    printf "OK: 1-dirty-of-16 checkpoint rewrites %s part\n", p
}
/"bytes_reduction"/ {
    r = $0; sub(/.*"bytes_reduction": /, "", r); sub(/[,} ].*/, "", r)
    if (r + 0 < 4.0) {
        printf "FAIL: incremental checkpoint writes only %sx fewer bytes (< 4x floor)\n", r
        exit 1
    }
    printf "OK: incremental checkpoint writes %sx fewer bytes than a full rewrite\n", r
}' BENCH_incremental_ckpt.json

#!/bin/sh
# Extension-format benchmark gate: runs BenchmarkNewFormats (the onpair and
# lz78 registry extensions vs the survey's strongest general-purpose
# compressors, array rp 16 and fc block rp 16, on synthetic and TPC-H
# corpora) and writes BENCH_formats.json at the repo root with each
# format's compression rate and extract/locate ns per corpus.
#
# Gate, on every corpus: onpair must compress at least as well as
# array rp 16 and extract faster than fc block rp 16 — i.e. the pair-table
# format must actually occupy the fast-AND-small corner that justified
# adding it (lz78 is reported but not gated; it trades compression for
# construction speed).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_formats.txt
go test -run '^$' -bench 'BenchmarkNewFormats' -benchtime=20000x -count=1 . | tee "$out"

awk '
/^BenchmarkNewFormats\// {
    name = $1
    sub(/^BenchmarkNewFormats\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, parts, "/")
    corpus = parts[1]; format = parts[2]; op = parts[3]
    ns = $3
    rate = ""
    for (i = 4; i < NF; i++) if ($(i+1) == "rate") rate = $i
    key = corpus "/" format
    if (!(key in seen)) { seen[key] = 1; order[n++] = key }
    if (op == "extract") ext[key] = ns
    if (op == "locate")  loc[key] = ns
    if (rate != "") rt[key] = rate
}
END {
    printf "{\n  \"benchmark\": \"formats\",\n  \"corpora\": {\n"
    prev = ""
    line = ""
    for (i = 0; i < n; i++) {
        split(order[i], p, "/")
        corpus = p[1]; format = p[2]
        if (corpus != prev) {
            if (prev != "") printf "%s\n    },\n", line
            printf "    \"%s\": {\n", corpus
            prev = corpus
            line = ""
        }
        if (line != "") printf "%s,\n", line
        line = sprintf("      \"%s\": {\"rate\": %s, \"extract_ns\": %s, \"locate_ns\": %s}", \
            format, rt[order[i]], ext[order[i]], loc[order[i]])
    }
    printf "%s\n    }\n  },\n", line

    fail = 0
    for (i = 0; i < n; i++) {
        split(order[i], p, "/")
        if (p[2] != "onpair") continue
        corpus = p[1]
        rp = corpus "/array_rp_16"
        fc = corpus "/fc_block_rp_16"
        if (rt[order[i]] + 0 > rt[rp] + 0) {
            printf "GATEFAIL: %s onpair rate %s > array rp 16 rate %s\n", \
                corpus, rt[order[i]], rt[rp] > "/dev/stderr"
            fail = 1
        }
        if (ext[order[i]] + 0 > ext[fc] + 0) {
            printf "GATEFAIL: %s onpair extract %s ns > fc block rp 16 %s ns\n", \
                corpus, ext[order[i]], ext[fc] > "/dev/stderr"
            fail = 1
        }
    }
    printf "  \"gate\": \"%s\"\n}\n", fail ? "FAIL" : "PASS"
    exit fail
}' "$out" > BENCH_formats.json || { cat BENCH_formats.json; rm -f "$out"; exit 1; }
rm -f "$out"

cat BENCH_formats.json
echo "OK: onpair compresses better than array rp 16 and extracts faster than fc block rp 16 on every corpus"

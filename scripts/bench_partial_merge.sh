#!/bin/sh
# Partial-merge benchmark gate: runs BenchmarkPartialMergePolicy (hot append
# stream against a live merge daemon, partial-fold policy vs always-full
# baseline) and writes BENCH_partial_merge.json at the repo root. The
# headline numbers are rewritten_rows_per_merge (write amplification per
# merge) and stall_p99_ns (99th-percentile Append latency under
# backpressure). The partial policy must rewrite strictly fewer main rows
# per merge than the full baseline and keep the append-stall p99 no worse
# (within a noise tolerance).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_partial_merge.txt
go test -run '^$' -bench BenchmarkPartialMergePolicy \
    -benchtime=300000x -count=1 . | tee "$out"

awk '
/^BenchmarkPartialMergePolicy\// {
    name = $1
    sub(/^BenchmarkPartialMergePolicy\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "rewritten-rows/merge") rew[name] = $i
        if ($(i+1) == "stall-p99-ns") p99[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"partial_merge\",\n"
    printf "  \"append_ns_per_op\": {\"full\": %s, \"partial\": %s},\n", nsop["full"], nsop["partial"]
    printf "  \"rewritten_rows_per_merge\": {\"full\": %s, \"partial\": %s},\n", rew["full"], rew["partial"]
    printf "  \"stall_p99_ns\": {\"full\": %s, \"partial\": %s},\n", p99["full"], p99["partial"]
    printf "  \"rewrite_reduction\": %.3f\n", rew["full"] / rew["partial"]
    printf "}\n"
}' "$out" > BENCH_partial_merge.json
rm -f "$out"

cat BENCH_partial_merge.json

# Gates: the partial policy must rewrite fewer main rows per merge than the
# always-full baseline, and the append-stall p99 must be no worse than the
# baseline within a 1.5x noise tolerance.
awk '
/"rewritten_rows_per_merge"/ {
    full = $0; sub(/.*"full": /, "", full); sub(/,.*/, "", full)
    part = $0; sub(/.*"partial": /, "", part); sub(/}.*/, "", part)
    if (part + 0 >= full + 0) {
        printf "FAIL: partial rewrites %s rows/merge, full %s — no reduction\n", part, full
        exit 1
    }
    printf "OK: rows rewritten per merge %s (partial) < %s (full)\n", part, full
}
/"stall_p99_ns"/ {
    full = $0; sub(/.*"full": /, "", full); sub(/,.*/, "", full)
    part = $0; sub(/.*"partial": /, "", part); sub(/}.*/, "", part)
    if (part + 0 > 1.5 * (full + 0)) {
        printf "FAIL: partial stall p99 %sns > 1.5x full baseline %sns\n", part, full
        exit 1
    }
    printf "OK: append-stall p99 %sns (partial) within 1.5x of %sns (full)\n", part, full
}' BENCH_partial_merge.json

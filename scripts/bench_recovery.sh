#!/bin/sh
# Durability benchmark gate: runs BenchmarkAppendDurability (plain in-memory
# append vs the same append journaled to the WAL with group commit, and the
# worst-case fsync-every-append mode) and BenchmarkRecovery (Open on a
# replay-heavy vs checkpoint-heavy directory), and writes BENCH_recovery.json
# at the repo root. The headline numbers are the WAL write overhead over the
# in-memory append and the recovery throughput in rows/s for both extremes.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_recovery.txt
go test -run '^$' -bench 'BenchmarkAppendDurability|BenchmarkRecovery' \
    -benchtime=300ms -count=1 ./internal/persist/ | tee "$out"

awk '
/^BenchmarkAppendDurability\// {
    name = $1
    sub(/^BenchmarkAppendDurability\//, "", name)
    sub(/-[0-9]+$/, "", name)
    app[name] = $3
}
/^BenchmarkRecovery\// {
    name = $1
    sub(/^BenchmarkRecovery\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "rows/s") rows[name] = $i
        if ($(i+1) == "MB/s") mbs[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"recovery\",\n"
    printf "  \"append_ns_per_op\": {\"inmemory\": %s, \"wal\": %s, \"walsync\": %s},\n", \
        app["inmemory"], app["wal"], app["walsync"]
    printf "  \"wal_overhead\": %.2f,\n", app["wal"] / app["inmemory"]
    printf "  \"recovery_ns_per_op\": {\"replay\": %s, \"checkpoint\": %s},\n", \
        nsop["replay"], nsop["checkpoint"]
    printf "  \"recovery_rows_per_sec\": {\"replay\": %s, \"checkpoint\": %s},\n", \
        rows["replay"], rows["checkpoint"]
    printf "  \"recovery_mb_per_sec\": {\"replay\": %s, \"checkpoint\": %s}\n", \
        mbs["replay"], mbs["checkpoint"]
    printf "}\n"
}' "$out" > BENCH_recovery.json
rm -f "$out"

cat BENCH_recovery.json

# Gates: group commit must keep the journaled append within 100x of the
# in-memory append and clearly cheaper than fsync-per-append; WAL replay
# must sustain at least 500k rows/s; restoring from checkpoint parts must
# be no slower than replaying the same rows from the WAL.
awk '
/"append_ns_per_op"/ {
    mem = $0; sub(/.*"inmemory": /, "", mem); sub(/,.*/, "", mem)
    wal = $0; sub(/.*"wal": /, "", wal); sub(/,.*/, "", wal)
    syn = $0; sub(/.*"walsync": /, "", syn); sub(/}.*/, "", syn)
    if (wal + 0 > 100 * (mem + 0)) {
        printf "FAIL: WAL append %sns > 100x in-memory append %sns\n", wal, mem
        exit 1
    }
    if (wal + 0 >= syn + 0) {
        printf "FAIL: group commit %sns not cheaper than fsync-per-append %sns\n", wal, syn
        exit 1
    }
    printf "OK: WAL append %sns, %.1fx over in-memory %sns (fsync-per-append %sns)\n", \
        wal, wal / mem, mem, syn
}
/"recovery_rows_per_sec"/ {
    rep = $0; sub(/.*"replay": /, "", rep); sub(/,.*/, "", rep)
    ckp = $0; sub(/.*"checkpoint": /, "", ckp); sub(/}.*/, "", ckp)
    if (rep + 0 < 500000) {
        printf "FAIL: WAL replay recovers %s rows/s < 500k rows/s floor\n", rep
        exit 1
    }
    if (ckp + 0 < rep + 0) {
        printf "FAIL: checkpoint restore %s rows/s slower than WAL replay %s rows/s\n", ckp, rep
        exit 1
    }
    printf "OK: recovery %s rows/s (replay), %s rows/s (checkpoint)\n", rep, ckp
}' BENCH_recovery.json

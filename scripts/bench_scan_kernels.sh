#!/bin/sh
# Scan-kernel benchmark gate: runs BenchmarkScanKernels (packed-domain
# equality/range kernels and zone-map pruning vs the per-element scalar
# oracle), then writes BENCH_scan_kernels.json at the repo root.
# Headline numbers: speedup_eq — the SWAR equality kernel must be >= 4x the
# scalar Get loop — and zones_skipped_per_op, which must be > 0 on the
# selective clustered probe (the zone maps actually prune).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_scan_kernels.txt
go test -run '^$' -bench BenchmarkScanKernels -benchtime=2s -count=1 . | tee "$out"

awk '
/^BenchmarkScanKernels\// {
    name = $1
    sub(/^BenchmarkScanKernels\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    order[n++] = name
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "zones-skipped/op") zskip = $i
    }
}
END {
    printf "{\n"
    printf "  \"benchmark\": \"scan_kernels\",\n"
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], nsop[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_eq\": %.3f,\n", nsop["eq/scalar"] / nsop["eq/kernel"]
    printf "  \"speedup_eq_pruned\": %.3f,\n", nsop["eq/scalar"] / nsop["eq/kernel-pruned"]
    printf "  \"speedup_range\": %.3f,\n", nsop["range/scalar"] / nsop["range/kernel"]
    printf "  \"zones_skipped_per_op\": %.2f\n", zskip
    printf "}\n"
}' "$out" > BENCH_scan_kernels.json
rm -f "$out"

cat BENCH_scan_kernels.json

# Gates: equality kernel >= 4x scalar, and the clustered probe skips zones.
awk -F': ' '
/"speedup_eq":/ {
    gsub(/[,\n ]/, "", $2)
    if ($2 + 0 < 4.0) {
        printf "FAIL: eq-scan kernel speedup %.3f < 4x over scalar Get loop\n", $2
        fail = 1
    } else {
        printf "OK: eq-scan kernel speedup %.3f >= 4x over scalar Get loop\n", $2
    }
}
/"zones_skipped_per_op"/ {
    gsub(/[,\n ]/, "", $2)
    if ($2 + 0 <= 0) {
        printf "FAIL: selective probe skipped %s zones, want > 0\n", $2
        fail = 1
    } else {
        printf "OK: selective probe skips %.2f zones/op\n", $2
    }
}
END { exit fail }
' BENCH_scan_kernels.json

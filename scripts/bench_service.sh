#!/bin/sh
# Service-layer scale-out gate: drives cmd/loadbench against an in-process
# sharded server (HTTP + JSON + routing + shard locks + WAL group commit all
# on the measured path) and writes BENCH_service.json at the repo root.
#
# The headline number is ingest scale-out: 4 shards vs 1 shard on a pure
# ingest workload over persistent stores. Sharding's win is overlapping one
# shard's WAL fsync with other shards' request processing, so the expected
# speedup depends on the machine: with >= 4 cores the gate requires >= 2x;
# on smaller boxes (CI containers are often 1-2 cores) the fsync overlap is
# serialized onto the same core and the gate only guards against a
# regression (>= 0.7x — sharding must never make ingest materially slower).
set -eu

cd "$(dirname "$0")/.."

DUR=${DUR:-3s}
CONC=${CONC:-16}
BATCH=${BATCH:-500}

go build -o /tmp/loadbench ./cmd/loadbench

/tmp/loadbench -shards 1 -read-frac 0 -duration "$DUR" -concurrency "$CONC" \
    -batch "$BATCH" -json /tmp/bench_service_1.json
/tmp/loadbench -shards 4 -read-frac 0 -duration "$DUR" -concurrency "$CONC" \
    -batch "$BATCH" -json /tmp/bench_service_4.json
# Mixed run for the query-latency numbers (reads hit the snapshot-pinned
# count path while writers keep the WAL busy).
/tmp/loadbench -shards 4 -read-frac 0.2 -duration "$DUR" -concurrency "$CONC" \
    -batch "$BATCH" -json /tmp/bench_service_mixed.json

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

field() { # file key
    awk -F': ' '$0 ~ /"'"$2"'"/ { gsub(/[, ]/, "", $2); print $2; exit }' "$1"
}

i1=$(field /tmp/bench_service_1.json ingest_rows_per_sec)
i4=$(field /tmp/bench_service_4.json ingest_rows_per_sec)
bal=$(field /tmp/bench_service_4.json balance)
p50=$(field /tmp/bench_service_mixed.json query_p50_ms)
p99=$(field /tmp/bench_service_mixed.json query_p99_ms)
qps=$(field /tmp/bench_service_mixed.json queries_per_sec)

if [ "$cores" -ge 4 ]; then floor=2.0; else floor=0.7; fi

awk -v i1="$i1" -v i4="$i4" -v bal="$bal" -v p50="$p50" -v p99="$p99" \
    -v qps="$qps" -v cores="$cores" -v floor="$floor" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"service\",\n"
    printf "  \"cores\": %d,\n", cores
    printf "  \"ingest_rows_per_sec\": {\"shards1\": %.0f, \"shards4\": %.0f},\n", i1, i4
    printf "  \"ingest_speedup\": %.2f,\n", i4 / i1
    printf "  \"speedup_floor\": %.2f,\n", floor
    printf "  \"shard_balance\": %.2f,\n", bal
    printf "  \"mixed_queries_per_sec\": %.0f,\n", qps
    printf "  \"query_p50_ms\": %.2f,\n", p50
    printf "  \"query_p99_ms\": %.2f\n", p99
    printf "}\n"
}' > BENCH_service.json
rm -f /tmp/bench_service_1.json /tmp/bench_service_4.json /tmp/bench_service_mixed.json

cat BENCH_service.json

# Gate: hardware-aware scale-out floor (see header comment).
awk -F': ' '
/"ingest_speedup":/ { gsub(/[, ]/, "", $2); got = $2 + 0 }
/"speedup_floor":/  { gsub(/[, ]/, "", $2); floor = $2 + 0 }
END {
    if (got < floor) {
        printf "FAIL: 4-shard ingest speedup %.2fx below floor %.2fx\n", got, floor
        exit 1
    }
    printf "OK: 4-shard ingest speedup %.2fx (floor %.2fx)\n", got, floor
}' BENCH_service.json

package strdict_test

import (
	"fmt"
	"sort"

	"strdict"
)

// The locate operation answers point predicates with one dictionary probe;
// absent values return the insertion point (Definition 1 of the paper).
func ExampleDictionary_locate() {
	d, _ := strdict.Build(strdict.Array, []string{"apple", "cherry", "plum"})
	id, found := d.Locate("cherry")
	fmt.Println(id, found)
	id, found = strdict.Dictionary.Locate(d, "banana")
	fmt.Println(id, found)
	// Output:
	// 1 true
	// 1 false
}

// ForEach walks a dictionary in value-ID order far faster than repeated
// Extract calls on block-based formats.
func ExampleDictionary_forEach() {
	d, _ := strdict.Build(strdict.FCInline, []string{"aa", "ab", "ac"})
	d.ForEach(func(id uint32, value []byte) bool {
		fmt.Printf("%d=%s ", id, value)
		return true
	})
	// Output: 0=aa 1=ab 2=ac
}

// Select applies a trade-off strategy to a candidate set; with c = 0 only
// the smallest variant is admitted, large c admits the fastest.
func ExampleSelect() {
	cands := []strdict.Candidate{
		{Format: strdict.ArrayFixed, SizeBytes: 1000, RelTime: 0.01},
		{Format: strdict.FCBlockRP12, SizeBytes: 300, RelTime: 0.4},
	}
	fmt.Println(strdict.Select(strdict.StrategyConst, 0, cands).Format)
	fmt.Println(strdict.Select(strdict.StrategyConst, 10, cands).Format)
	// Output:
	// fc block rp 12
	// array fixed
}

// Marshal/Unmarshal round-trip a dictionary through its binary form.
func ExampleMarshal() {
	d, _ := strdict.Build(strdict.FCBlock, []string{"x", "y", "z"})
	blob, _ := strdict.Marshal(d)
	restored, _ := strdict.Unmarshal(blob)
	fmt.Println(restored.Format(), restored.Extract(2))
	// Output: fc block z
}

// A MergeScheduler folds deltas into the read-optimized store and can
// consult a Manager for the format at every merge.
func ExampleNewMergeScheduler() {
	store := strdict.NewStore()
	col := store.AddTable("t").AddString("c", strdict.Array)
	for i := 0; i < 10; i++ {
		col.Append(fmt.Sprintf("v%d", i%3))
	}
	sched := strdict.NewMergeScheduler(store, 5)
	sched.Chooser = func(snap *strdict.Snapshot, lifetimeNs float64) strdict.Format {
		return strdict.ArrayFixed
	}
	fmt.Println(sched.Tick())
	fmt.Println(col.Format(), col.DictLen())
	// Output:
	// [t.c]
	// array fixed 3
}

// A Snapshot pins one consistent (dictionary, code vector, delta) state,
// so a long scan keeps its view while the live column takes appends and
// background merges.
func ExampleStringColumn_Snapshot() {
	store := strdict.NewStore()
	col := store.AddTable("t").AddString("c", strdict.Array)
	for _, v := range []string{"a", "b", "a"} {
		col.Append(v)
	}
	snap := col.Snapshot()

	col.Append("c")
	col.Merge(strdict.FCInline) // the live column moves on

	fmt.Println(snap.Len(), col.Len())
	fmt.Println(snap.ScanEq("a", nil))
	// Output:
	// 3 4
	// [0 2]
}

// TakeSample + EstimateSize predict a format's size from a fraction of the
// column.
func ExampleTakeSample() {
	var column []string
	for i := 0; i < 10000; i++ {
		column = append(column, fmt.Sprintf("order-%06d", i))
	}
	sort.Strings(column)
	sample := strdict.TakeSample(column, 0.01, 1)
	d, _ := strdict.Build(strdict.ArrayFixed, column)
	predicted := strdict.EstimateSize(strdict.ArrayFixed, sample)
	fmt.Println(predicted == d.Bytes())
	// Output: true
}

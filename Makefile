GO ?= go

.PHONY: all build test race vet bench bench-all bench-recovery bench-formats bench-scan bench-ckpt bench-service check torture

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Read-path gate: versioned lock-free reads vs the RWMutex baseline, plus
# merge throughput; writes BENCH_read_path.json.
# Partial-merge gate: partial-fold policy vs always-full merges on a hot
# append stream; writes BENCH_partial_merge.json.
# Scan-kernel gate: packed-domain predicate kernels and zone-map pruning vs
# the scalar per-row path; writes BENCH_scan_kernels.json.
# Incremental-checkpoint gate: bytes written per checkpoint with one dirty
# column vs a full rewrite; writes BENCH_incremental_ckpt.json.
bench:
	sh scripts/bench_read_path.sh
	sh scripts/bench_partial_merge.sh
	sh scripts/bench_scan_kernels.sh
	sh scripts/bench_incremental_ckpt.sh

# Scan-kernel gate alone (it is also part of `make bench`).
bench-scan:
	sh scripts/bench_scan_kernels.sh

# Incremental-checkpoint gate alone (it is also part of `make bench`).
bench-ckpt:
	sh scripts/bench_incremental_ckpt.sh

# Service scale-out gate: cmd/loadbench ingest throughput, 4 shards vs 1,
# with a hardware-aware floor; writes BENCH_service.json.
bench-service:
	sh scripts/bench_service.sh

# Durability gate: WAL append overhead vs in-memory, plus crash-recovery
# throughput for the replay-heavy and checkpoint-heavy extremes; writes
# BENCH_recovery.json.
bench-recovery:
	sh scripts/bench_recovery.sh

# Extension-format gate: onpair and lz78 vs the strongest built-in
# compressors on synthetic and TPC-H corpora; writes BENCH_formats.json.
bench-formats:
	sh scripts/bench_formats.sh

# Every figure and ablation benchmark, one iteration each.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Tier-1 verification plus the fuzz smoke, torture smoke, and
# registry-completeness gates.
check:
	sh scripts/check.sh

# Long torture run under the race detector. On failure the output names the
# seed; `make torture SEED=<n>` replays that exact run, and adding the seed
# to internal/torture/testdata/seeds.txt pins it as a regression. STEPS
# overrides the per-seed step count.
SEED ?= 0
STEPS ?= 0
torture:
	$(GO) test -race -count=1 -v -run 'TestTortureLong' ./internal/torture/ \
		-torture.long -torture.seed=$(SEED) -torture.steps=$(STEPS)

GO ?= go

.PHONY: all build test race vet bench bench-all bench-recovery check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Read-path gate: versioned lock-free reads vs the RWMutex baseline, plus
# merge throughput; writes BENCH_read_path.json.
# Partial-merge gate: partial-fold policy vs always-full merges on a hot
# append stream; writes BENCH_partial_merge.json.
bench:
	sh scripts/bench_read_path.sh
	sh scripts/bench_partial_merge.sh

# Durability gate: WAL append overhead vs in-memory, plus crash-recovery
# throughput for the replay-heavy and checkpoint-heavy extremes; writes
# BENCH_recovery.json.
bench-recovery:
	sh scripts/bench_recovery.sh

# Every figure and ablation benchmark, one iteration each.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

check: build vet test race

// Package stats provides the small statistical toolkit the evaluation
// harness needs: quantiles, box-plot summaries (matching the R/PGFPlots
// defaults the paper uses in Figure 6), and order-0 entropy.
package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics (R type 7, the R default).
// It sorts a copy; values itself is left untouched.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(values []float64) float64 { return Quantile(values, 0.5) }

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// BoxPlot summarizes a distribution the way R and PGFPlots draw box plots by
// default: the box spans the quartiles, whiskers extend to the most extreme
// datum within 1.5 IQR of the box, everything beyond is an outlier.
type BoxPlot struct {
	LowWhisker  float64
	Q1          float64
	Median      float64
	Q3          float64
	HighWhisker float64
	Outliers    []float64
	N           int
}

// Summarize computes the box-plot statistics of values.
func Summarize(values []float64) BoxPlot {
	bp := BoxPlot{N: len(values)}
	if len(values) == 0 {
		bp.LowWhisker, bp.Q1, bp.Median, bp.Q3, bp.HighWhisker =
			math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return bp
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	bp.Q1 = quantileSorted(s, 0.25)
	bp.Median = quantileSorted(s, 0.5)
	bp.Q3 = quantileSorted(s, 0.75)
	iqr := bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*iqr
	hiFence := bp.Q3 + 1.5*iqr
	// Whiskers are the most extreme in-fence data; the rest are outliers.
	bp.LowWhisker = math.NaN()
	bp.HighWhisker = math.NaN()
	for _, v := range s {
		if v < loFence || v > hiFence {
			bp.Outliers = append(bp.Outliers, v)
			continue
		}
		if math.IsNaN(bp.LowWhisker) {
			bp.LowWhisker = v
		}
		bp.HighWhisker = v
	}
	return bp
}

// Entropy0 returns the order-0 entropy, in bits per byte, of the byte
// distribution of the given corpus parts.
func Entropy0(parts [][]byte) float64 {
	var freq [256]uint64
	var total uint64
	for _, p := range parts {
		for _, b := range p {
			freq[b]++
		}
		total += uint64(len(p))
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, f := range freq {
		if f == 0 {
			continue
		}
		p := float64(f) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Percentile groups for cumulative-distribution prints (Figures 1 and 2).
// Buckets splits values into decade buckets by size: [1,10), [10,100), ...
// and returns counts per decade starting at 10^0.
func Buckets(values []int) []int {
	var out []int
	for _, v := range values {
		d := 0
		for x := v; x >= 10; x /= 10 {
			d++
		}
		for len(out) <= d {
			out = append(out, 0)
		}
		out[d]++
	}
	return out
}

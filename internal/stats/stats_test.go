package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestMedianMean(t *testing.T) {
	if Median([]float64{1, 3, 2}) != 2 {
		t.Error("median")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
}

func TestSummarize(t *testing.T) {
	// 1..9 with one extreme outlier.
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	bp := Summarize(v)
	if bp.Median != 5.5 {
		t.Errorf("median %g", bp.Median)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("outliers %v", bp.Outliers)
	}
	if bp.HighWhisker != 9 || bp.LowWhisker != 1 {
		t.Errorf("whiskers %g %g", bp.LowWhisker, bp.HighWhisker)
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		bp := Summarize(clean)
		// Quartiles are ordered; whiskers are real data points and ordered.
		// (A whisker may cross an interpolated quartile when a whole tail is
		// outliers, so we do not require LowWhisker <= Q1.)
		return bp.Q1 <= bp.Median && bp.Median <= bp.Q3 &&
			bp.LowWhisker <= bp.HighWhisker &&
			len(bp.Outliers)+1 <= bp.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropy0(t *testing.T) {
	// Uniform over 4 symbols -> exactly 2 bits.
	h := Entropy0([][]byte{[]byte("abcd")})
	if math.Abs(h-2) > 1e-9 {
		t.Errorf("entropy %g, want 2", h)
	}
	// Single symbol -> 0 bits.
	if h := Entropy0([][]byte{[]byte("aaaa")}); h != 0 {
		t.Errorf("entropy %g, want 0", h)
	}
	if h := Entropy0(nil); h != 0 {
		t.Errorf("empty entropy %g", h)
	}
}

func TestBuckets(t *testing.T) {
	got := Buckets([]int{1, 5, 9, 10, 99, 100, 101, 5000})
	want := []int{3, 2, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

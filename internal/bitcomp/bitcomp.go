// Package bitcomp implements Bit Compression: each distinct character of the
// training corpus is replaced by a fixed-width code of ceil(log2(alphabet))
// bits. Codes are assigned in character order and an end-of-string symbol is
// given code 0 (below every character), so the scheme is order-preserving:
// binary comparison of encoded strings matches lexicographic comparison of
// the originals.
//
// Because the code width is constant, encode and extract are branch-light,
// which is why the paper finds `bc` faster than `hu` at slightly worse
// compression.
package bitcomp

import (
	"fmt"

	"strdict/internal/bits"
)

// Codec holds a trained fixed-width character code.
type Codec struct {
	codeOf [256]uint16 // code for each byte; 0 means "not in alphabet"
	charOf []byte      // charOf[code-1] = byte value; code 0 is EOS
	width  uint        // bits per code
}

// Train builds a codec over the distinct bytes of the corpus parts.
func Train(parts [][]byte) *Codec {
	var present [256]bool
	for _, p := range parts {
		for _, b := range p {
			present[b] = true
		}
	}
	return fromAlphabet(&present)
}

func fromAlphabet(present *[256]bool) *Codec {
	c := &Codec{}
	for b := 0; b < 256; b++ {
		if present[b] {
			c.charOf = append(c.charOf, byte(b))
			c.codeOf[b] = uint16(len(c.charOf)) // 1-based; 0 is EOS
		}
	}
	c.width = bits.Width(uint64(len(c.charOf))) // alphabet + EOS
	return c
}

// Width returns the fixed code width in bits.
func (c *Codec) Width() uint { return c.width }

// AlphabetSize returns the number of distinct characters (excluding EOS).
func (c *Codec) AlphabetSize() int { return len(c.charOf) }

// Encode appends the byte-aligned encoded form of src (EOS-terminated) to dst.
func (c *Codec) Encode(dst []byte, src []byte) []byte {
	var w bits.Writer
	c.EncodeTo(&w, src)
	w.Align()
	return append(dst, w.Bytes()...)
}

// EncodeTo writes the unaligned code sequence for src followed by EOS.
func (c *Codec) EncodeTo(w *bits.Writer, src []byte) {
	for _, b := range src {
		code := c.codeOf[b]
		if code == 0 {
			panic("bitcomp: encoding character absent from training corpus")
		}
		w.WriteBits(uint64(code), c.width)
	}
	w.WriteBits(0, c.width) // EOS
}

// Decode appends the decoded string to dst, reading codes until EOS.
func (c *Codec) Decode(dst []byte, enc []byte) []byte {
	return c.DecodeFrom(dst, bits.NewReader(enc))
}

// DecodeFrom decodes one EOS-terminated string from r, appending to dst.
func (c *Codec) DecodeFrom(dst []byte, r *bits.Reader) []byte {
	for {
		code := r.ReadBits(c.width)
		// Code 0 is EOS; codes beyond the alphabet only appear in corrupt
		// streams and terminate decoding defensively.
		if code == 0 || code > uint64(len(c.charOf)) {
			return dst
		}
		dst = append(dst, c.charOf[code-1])
	}
}

// TableBytes reports the in-memory footprint of the codec's tables.
func (c *Codec) TableBytes() uint64 {
	return 256*2 + uint64(len(c.charOf)) + 8
}

// Name identifies the scheme.
func (c *Codec) Name() string { return "bc" }

// CanEncode reports whether every character of src is in the alphabet.
func (c *Codec) CanEncode(src []byte) bool {
	for _, b := range src {
		if c.codeOf[b] == 0 {
			return false
		}
	}
	return true
}

// DecodeN decodes exactly n characters from enc, ignoring the EOS
// terminator. It exists for the EOS-vs-stored-length ablation benchmark:
// with an external length, per-string decode can skip the terminator check.
func (c *Codec) DecodeN(dst []byte, enc []byte, n int) []byte {
	r := bits.NewReader(enc)
	for i := 0; i < n; i++ {
		dst = append(dst, c.charOf[r.ReadBits(c.width)-1])
	}
	return dst
}

// Alphabet returns the sorted distinct characters, the codec's serialized
// form.
func (c *Codec) Alphabet() []byte {
	return append([]byte(nil), c.charOf...)
}

// FromAlphabet rebuilds a codec from a serialized alphabet, which must be
// strictly ascending.
func FromAlphabet(alphabet []byte) (*Codec, error) {
	var present [256]bool
	for i, b := range alphabet {
		if i > 0 && alphabet[i-1] >= b {
			return nil, fmt.Errorf("bitcomp: alphabet not strictly ascending")
		}
		present[b] = true
	}
	return fromAlphabet(&present), nil
}

package bitcomp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	parts := [][]byte{[]byte("0123456789"), []byte("0042"), nil}
	c := Train(parts)
	if c.AlphabetSize() != 10 {
		t.Fatalf("alphabet size %d, want 10", c.AlphabetSize())
	}
	if c.Width() != 4 { // 10 chars + EOS -> 11 values -> 4 bits
		t.Fatalf("width %d, want 4", c.Width())
	}
	for _, p := range parts {
		enc := c.Encode(nil, p)
		if dec := c.Decode(nil, enc); !bytes.Equal(dec, p) {
			t.Errorf("round trip %q -> %q", p, dec)
		}
	}
}

func TestCompressionRatioDigits(t *testing.T) {
	// Digits need 4 bits/char: an 18-char string encodes in ceil(19*4/8)=10 bytes.
	c := Train([][]byte{[]byte("0123456789")})
	enc := c.Encode(nil, []byte("123456789012345678"))
	if len(enc) != 10 {
		t.Fatalf("encoded %d bytes, want 10", len(enc))
	}
}

func TestOrderPreservation(t *testing.T) {
	c := Train([][]byte{[]byte("abcdefghijklmnopqrstuvwxyz")})
	enc := func(s string) []byte { return c.Encode(nil, []byte(s)) }
	cases := [][2]string{
		{"abc", "abd"}, {"abc", "abcd"}, {"", "a"}, {"m", "z"},
	}
	for _, cse := range cases {
		if bytes.Compare(enc(cse[0]), enc(cse[1])) >= 0 {
			t.Errorf("order violated: enc(%q) >= enc(%q)", cse[0], cse[1])
		}
	}
}

func TestOrderPreservationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := make([]byte, 2048)
	rng.Read(train)
	c := Train([][]byte{train})
	f := func(a, b []byte) bool {
		ea, eb := c.Encode(nil, a), c.Encode(nil, b)
		cmpO, cmpE := bytes.Compare(a, b), bytes.Compare(ea, eb)
		if cmpO == 0 {
			return cmpE == 0
		}
		return (cmpO < 0) == (cmpE < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUntrainedCharPanics(t *testing.T) {
	c := Train([][]byte{[]byte("abc")})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Encode(nil, []byte("x"))
}

func TestFullByteAlphabet(t *testing.T) {
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	c := Train([][]byte{all})
	if c.Width() != 9 { // 256 chars + EOS needs 9 bits
		t.Fatalf("width %d, want 9", c.Width())
	}
	enc := c.Encode(nil, all)
	if dec := c.Decode(nil, enc); !bytes.Equal(dec, all) {
		t.Fatal("round trip failed for full alphabet")
	}
}

func BenchmarkDecode(b *testing.B) {
	c := Train([][]byte{[]byte("0123456789")})
	enc := c.Encode(nil, []byte("998877665544332211"))
	buf := make([]byte, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(buf[:0], enc)
	}
}

package huffman

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func corpus(strs ...string) [][]byte {
	parts := make([][]byte, len(strs))
	for i, s := range strs {
		parts[i] = []byte(s)
	}
	return parts
}

func TestRoundTripSimple(t *testing.T) {
	parts := corpus("hello", "help", "hold", "world", "")
	c := Train(parts)
	for _, p := range parts {
		enc := c.Encode(nil, p)
		dec := c.Decode(nil, enc)
		if !bytes.Equal(dec, p) {
			t.Errorf("round trip %q -> %q", p, dec)
		}
	}
}

func TestEmptyString(t *testing.T) {
	c := Train(corpus("abc"))
	enc := c.Encode(nil, nil)
	if len(enc) == 0 {
		t.Fatal("empty string must still encode the EOS code")
	}
	if dec := c.Decode(nil, enc); len(dec) != 0 {
		t.Fatalf("decoded %q, want empty", dec)
	}
}

func TestSingleSymbolCorpus(t *testing.T) {
	// Only EOS and 'a' occur; both must still round-trip.
	c := Train(corpus("aaaa"))
	enc := c.Encode(nil, []byte("aa"))
	if dec := c.Decode(nil, enc); string(dec) != "aa" {
		t.Fatalf("decoded %q", dec)
	}
}

func TestCompressionBeatsRawOnSkewedText(t *testing.T) {
	text := strings.Repeat("aaaaaaaabbbbccd", 200)
	parts := corpus(text)
	c := Train(parts)
	enc := c.Encode(nil, []byte(text))
	if len(enc) >= len(text) {
		t.Fatalf("no compression: %d >= %d", len(enc), len(text))
	}
	// Entropy of this distribution is ~1.75 bits/char, allow slack for EOS.
	if got, max := len(enc), len(text)*2/8+16; got > max {
		t.Errorf("encoded %d bytes, expected <= %d", got, max)
	}
}

func TestPrefixFreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.Intn(40)) // skewed-ish small alphabet
	}
	c := Train([][]byte{data})
	type cw struct {
		code uint32
		l    int
	}
	var codes []cw
	for s := 0; s < NumSymbols; s++ {
		if l := c.CodeLen(s); l > 0 {
			codes = append(codes, cw{c.codeOf[s], l})
		}
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.l <= b.l && a.code == b.code>>(uint(b.l-a.l)) {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.code, a.l, b.code, b.l)
			}
		}
	}
}

func TestKraftInequality(t *testing.T) {
	parts := corpus("the quick brown fox", "jumps over", "the lazy dog")
	c := Train(parts)
	var kraft float64
	for s := 0; s < NumSymbols; s++ {
		if l := c.CodeLen(s); l > 0 {
			kraft += 1 / float64(uint64(1)<<uint(l))
		}
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %f > 1", kraft)
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Train on random binary data; all 257 symbols get codes, so any string
	// can be encoded.
	train := make([]byte, 8192)
	rng := rand.New(rand.NewSource(3))
	rng.Read(train)
	c := Train([][]byte{train})
	f := func(s []byte) bool {
		enc := c.Encode(nil, s)
		return bytes.Equal(c.Decode(nil, enc), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMultipleFromSharedStream(t *testing.T) {
	parts := corpus("alpha", "beta", "gamma")
	c := Train(parts)
	var enc []byte
	for _, p := range parts {
		enc = c.Encode(enc, p)
	}
	// Each string was byte-aligned, so decode sequentially by re-slicing.
	var out []string
	rest := enc
	for range parts {
		dec := c.Decode(nil, rest)
		out = append(out, string(dec))
		// advance: re-encode to find the byte length
		n := len(c.Encode(nil, dec))
		rest = rest[n:]
	}
	for i, p := range parts {
		if out[i] != string(p) {
			t.Errorf("stream decode %d: got %q want %q", i, out[i], p)
		}
	}
}

func TestEncodeUntrainedSymbolPanics(t *testing.T) {
	c := Train(corpus("aaa"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for untrained symbol")
		}
	}()
	c.Encode(nil, []byte("z"))
}

func TestTableBytesPositive(t *testing.T) {
	c := Train(corpus("x"))
	if c.TableBytes() == 0 {
		t.Fatal("TableBytes must account for the model")
	}
}

func BenchmarkDecode(b *testing.B) {
	text := []byte(strings.Repeat("SELECT * FROM lineitem WHERE l_quantity > 24;", 8))
	c := Train([][]byte{text})
	enc := c.Encode(nil, text)
	buf := make([]byte, 0, len(text))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(buf[:0], enc)
	}
}

// TestCostWithinEntropyBound checks the classic Huffman optimality bound:
// expected code length is within one bit per symbol of the entropy.
func TestCostWithinEntropyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 4096)
		alpha := 2 + rng.Intn(60)
		for i := range data {
			// Skewed distribution: squared uniform.
			v := rng.Intn(alpha)
			data[i] = byte(v * v % alpha)
		}
		c := Train([][]byte{data})

		var freq [NumSymbols]float64
		var total float64
		for _, b := range data {
			freq[b]++
			total++
		}
		freq[EOS]++
		total++

		var entropy, expected float64
		for s := 0; s < NumSymbols; s++ {
			if freq[s] == 0 {
				continue
			}
			p := freq[s] / total
			entropy += -p * log2(p)
			expected += p * float64(c.CodeLen(s))
		}
		if expected < entropy-1e-9 {
			t.Fatalf("trial %d: expected length %.4f below entropy %.4f", trial, expected, entropy)
		}
		if expected > entropy+1 {
			t.Fatalf("trial %d: expected length %.4f exceeds entropy+1 (%.4f)", trial, expected, entropy+1)
		}
	}
}

func log2(x float64) float64 { return math.Log2(x) }

package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestLongCodesUseSlowPath builds a code with lengths beyond the LUT width
// (Fibonacci-like frequencies force very skewed depths) and verifies decode
// still round-trips through the canonical slow path.
func TestLongCodesUseSlowPath(t *testing.T) {
	var freq [NumSymbols]uint64
	// Fibonacci weights give maximally deep Huffman trees.
	a, b := uint64(1), uint64(1)
	for s := 0; s < 30; s++ {
		freq[s] = a
		a, b = b, a+b
	}
	freq[EOS] = 1
	c := fromFrequencies(&freq)

	deep := 0
	for s := 0; s < 30; s++ {
		if c.CodeLen(s) > int(lutBits) {
			deep++
		}
	}
	if deep == 0 {
		t.Fatal("test premise broken: no codes longer than the LUT width")
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(30))
		}
		enc := c.Encode(nil, src)
		if dec := c.Decode(nil, enc); !bytes.Equal(dec, src) {
			t.Fatalf("trial %d: round trip failed", trial)
		}
	}
}

// TestLUTAgreesWithSlowPath decodes with the LUT-enabled codec and a copy
// whose LUT is disabled, comparing outputs.
func TestLUTAgreesWithSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := make([]byte, 4096)
	rng.Read(train)
	c := Train([][]byte{train})

	slow := *c
	for i := range slow.lut {
		slow.lut[i] = 0 // every lookup escapes to readSymbol
	}

	for trial := 0; trial < 200; trial++ {
		src := make([]byte, rng.Intn(60))
		rng.Read(src)
		enc := c.Encode(nil, src)
		fast := c.Decode(nil, enc)
		ref := slow.Decode(nil, enc)
		if !bytes.Equal(fast, ref) || !bytes.Equal(fast, src) {
			t.Fatalf("trial %d: fast %q ref %q src %q", trial, fast, ref, src)
		}
	}
}

// Package huffman implements canonical, length-limited Huffman coding over
// single bytes plus a reserved end-of-string (EOS) symbol.
//
// It realizes the `hu` string compression scheme of the paper for the cases
// where order preservation is not required (the order-preserving sibling is
// package hutucker). Every encoded string is terminated by the EOS code, so
// individual strings are self-delimiting and can be decoded without knowing
// their original length.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"strdict/internal/bits"
)

// NumSymbols is the alphabet size: 256 byte values plus EOS.
const NumSymbols = 257

// EOS is the end-of-string symbol appended to every encoded string.
const EOS = 256

// maxCodeLen limits code lengths so that codes always fit comfortably in a
// 64-bit read; pathological frequency distributions are adjusted to honor it.
const maxCodeLen = 32

// Codec holds a trained canonical Huffman code.
type Codec struct {
	codeOf [NumSymbols]uint32 // canonical code, MSB-aligned at its length
	lenOf  [NumSymbols]uint8  // code length in bits; 0 = symbol unused

	// Canonical decoding tables indexed by code length 1..maxCodeLen.
	firstCode  [maxCodeLen + 1]uint32 // first canonical code of each length
	firstIndex [maxCodeLen + 1]int32  // index into symByCode of that code
	countLen   [maxCodeLen + 1]int32  // number of codes of each length
	symByCode  []uint16               // symbols sorted by (length, code)

	// One-shot decode table: the next lutBits bits index an entry holding
	// sym<<8 | codeLen for codes short enough to resolve in one lookup;
	// codeLen 0 escapes to the canonical bit-by-bit path.
	lut [1 << lutBits]uint32
}

// lutBits sizes the fast decode table (4 KiB); nearly all real codes are
// shorter than this, so decode is one table lookup per symbol.
const lutBits = 10

// Train builds a codec from the given corpus parts. Frequencies are counted
// over all bytes of all parts, and every part contributes one EOS occurrence.
// Symbols that never occur get no code; encoding a string containing one
// later is a programming error and panics.
func Train(parts [][]byte) *Codec {
	var freq [NumSymbols]uint64
	for _, p := range parts {
		for _, b := range p {
			freq[b]++
		}
		freq[EOS]++
	}
	if freq[EOS] == 0 {
		freq[EOS] = 1 // a codec must always be able to terminate a string
	}
	return fromFrequencies(&freq)
}

type hnode struct {
	weight uint64
	sym    int // -1 for internal
	left   int // index into node arena
	right  int
}

type nodeHeap struct {
	arena []hnode
	idx   []int
}

func (h nodeHeap) Len() int { return len(h.idx) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := h.arena[h.idx[i]], h.arena[h.idx[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return h.idx[i] < h.idx[j] // deterministic tie-break
}
func (h nodeHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

func fromFrequencies(freq *[NumSymbols]uint64) *Codec {
	c := &Codec{}

	// Build the Huffman tree over used symbols.
	h := &nodeHeap{}
	for s, f := range freq {
		if f > 0 {
			h.arena = append(h.arena, hnode{weight: f, sym: s, left: -1, right: -1})
		}
	}
	used := len(h.arena)
	switch used {
	case 0:
		return c
	case 1:
		c.lenOf[h.arena[0].sym] = 1
	default:
		h.idx = make([]int, used)
		for i := range h.idx {
			h.idx[i] = i
		}
		heap.Init(h)
		for h.Len() > 1 {
			a := heap.Pop(h).(int)
			b := heap.Pop(h).(int)
			h.arena = append(h.arena, hnode{
				weight: h.arena[a].weight + h.arena[b].weight,
				sym:    -1, left: a, right: b,
			})
			heap.Push(h, len(h.arena)-1)
		}
		root := h.idx[0]
		assignDepths(h.arena, root, 0, &c.lenOf)
	}

	limitLengths(&c.lenOf, freq)
	c.buildCanonical()
	return c
}

func assignDepths(arena []hnode, n int, depth uint8, lenOf *[NumSymbols]uint8) {
	nd := arena[n]
	if nd.sym >= 0 {
		if depth == 0 {
			depth = 1
		}
		lenOf[nd.sym] = depth
		return
	}
	assignDepths(arena, nd.left, depth+1, lenOf)
	assignDepths(arena, nd.right, depth+1, lenOf)
}

// limitLengths clamps code lengths to maxCodeLen and repairs the Kraft sum,
// then tightens lengths where slack remains.
func limitLengths(lenOf *[NumSymbols]uint8, freq *[NumSymbols]uint64) {
	const L = maxCodeLen
	var kraft uint64 // scaled by 2^L
	var syms []int
	for s := range lenOf {
		if lenOf[s] == 0 {
			continue
		}
		if lenOf[s] > L {
			lenOf[s] = L
		}
		kraft += 1 << (L - lenOf[s])
		syms = append(syms, s)
	}
	if kraft <= 1<<L {
		return
	}
	// Lengthen the cheapest (least frequent) symbols with the longest codes
	// until the code is feasible again.
	sort.Slice(syms, func(i, j int) bool {
		if lenOf[syms[i]] != lenOf[syms[j]] {
			return lenOf[syms[i]] > lenOf[syms[j]]
		}
		return freq[syms[i]] < freq[syms[j]]
	})
	for kraft > 1<<L {
		for _, s := range syms {
			if lenOf[s] < L {
				kraft -= 1 << (L - lenOf[s] - 1)
				lenOf[s]++
				if kraft <= 1<<L {
					break
				}
			}
		}
	}
}

// buildCanonical derives canonical codes and decoding tables from lenOf.
func (c *Codec) buildCanonical() {
	for l := range c.countLen {
		c.countLen[l] = 0
	}
	var order []uint16
	for s := 0; s < NumSymbols; s++ {
		if c.lenOf[s] > 0 {
			c.countLen[c.lenOf[s]]++
			order = append(order, uint16(s))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if c.lenOf[a] != c.lenOf[b] {
			return c.lenOf[a] < c.lenOf[b]
		}
		return a < b
	})
	c.symByCode = order

	var code uint32
	var index int32
	for l := 1; l <= maxCodeLen; l++ {
		c.firstCode[l] = code
		c.firstIndex[l] = index
		code = (code + uint32(c.countLen[l])) << 1
		index += c.countLen[l]
	}
	// Assign per-symbol codes.
	var next [maxCodeLen + 1]uint32
	for l := 1; l <= maxCodeLen; l++ {
		next[l] = c.firstCode[l]
	}
	for _, s := range order {
		l := c.lenOf[s]
		c.codeOf[s] = next[l]
		next[l]++
	}

	for i := range c.lut {
		c.lut[i] = 0
	}
	for _, s := range order {
		l := uint(c.lenOf[s])
		if l > lutBits {
			continue
		}
		base := c.codeOf[s] << (lutBits - l)
		span := uint32(1) << (lutBits - l)
		entry := uint32(s)<<8 | uint32(l)
		for i := uint32(0); i < span; i++ {
			c.lut[base+i] = entry
		}
	}
}

// CodeLen returns the code length in bits for symbol s (0-255 or EOS),
// or 0 if the symbol has no code.
func (c *Codec) CodeLen(s int) int { return int(c.lenOf[s]) }

// Encode appends the encoded form of src (terminated by EOS) to dst and
// returns the extended slice.
func (c *Codec) Encode(dst []byte, src []byte) []byte {
	var w bits.Writer
	c.EncodeTo(&w, src)
	w.Align()
	return append(dst, w.Bytes()...)
}

// EncodeTo writes the code sequence for src followed by EOS to w without
// aligning, so multiple strings can share a bit stream.
func (c *Codec) EncodeTo(w *bits.Writer, src []byte) {
	for _, b := range src {
		l := c.lenOf[b]
		if l == 0 {
			panic("huffman: encoding symbol absent from training corpus")
		}
		w.WriteBits(uint64(c.codeOf[b]), uint(l))
	}
	w.WriteBits(uint64(c.codeOf[EOS]), uint(c.lenOf[EOS]))
}

// Decode appends the decoded string to dst, reading codes from enc until the
// EOS symbol, and returns the extended slice.
func (c *Codec) Decode(dst []byte, enc []byte) []byte {
	r := bits.NewReader(enc)
	return c.DecodeFrom(dst, r)
}

// DecodeFrom decodes one EOS-terminated string from r, appending to dst.
func (c *Codec) DecodeFrom(dst []byte, r *bits.Reader) []byte {
	for {
		var s int
		if e := c.lut[r.PeekBits(lutBits)]; e&0xff != 0 {
			r.Skip(uint(e & 0xff))
			s = int(e >> 8)
		} else {
			s = c.readSymbol(r)
		}
		if s == EOS {
			return dst
		}
		dst = append(dst, byte(s))
	}
}

func (c *Codec) readSymbol(r *bits.Reader) int {
	var code uint32
	for l := 1; l <= maxCodeLen; l++ {
		code = code<<1 | uint32(r.ReadBit())
		n := c.countLen[l]
		if n > 0 && code-c.firstCode[l] < uint32(n) {
			return int(c.symByCode[c.firstIndex[l]+int32(code-c.firstCode[l])])
		}
	}
	// No code matched within the length limit: only possible on a corrupt
	// stream; terminate decoding defensively.
	return EOS
}

// TableBytes reports the in-memory footprint of the codec's tables, charged
// to the dictionary that owns it.
func (c *Codec) TableBytes() uint64 {
	// codeOf + lenOf + canonical tables + symbol array.
	return NumSymbols*4 + NumSymbols +
		uint64(len(c.firstCode))*4 + uint64(len(c.firstIndex))*4 +
		uint64(len(c.countLen))*4 + uint64(len(c.symByCode))*2
}

// Name identifies the scheme.
func (c *Codec) Name() string { return "hu" }

// CodeLengths returns the per-symbol code lengths; together with the
// canonical code construction they fully determine the codec, so they are
// the codec's serialized form.
func (c *Codec) CodeLengths() []uint8 {
	out := make([]uint8, NumSymbols)
	copy(out, c.lenOf[:])
	return out
}

// FromCodeLengths rebuilds a codec from serialized code lengths, validating
// that they describe a feasible prefix code.
func FromCodeLengths(lens []uint8) (*Codec, error) {
	if len(lens) != NumSymbols {
		return nil, fmt.Errorf("huffman: %d code lengths, want %d", len(lens), NumSymbols)
	}
	var kraft uint64 // scaled by 2^maxCodeLen
	c := &Codec{}
	for s, l := range lens {
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds limit %d", l, maxCodeLen)
		}
		if l > 0 {
			kraft += 1 << (maxCodeLen - l)
		}
		c.lenOf[s] = l
	}
	if kraft > 1<<maxCodeLen {
		return nil, fmt.Errorf("huffman: code lengths violate the Kraft inequality")
	}
	c.buildCanonical()
	return c, nil
}

package tpch

// Brute-force oracles for the remaining queries (2, 7, 8, 9, 11, 16, 17,
// 20, 21): string-at-a-time re-evaluations of the query semantics, compared
// against the code-based plans.

import (
	"math"
	"strings"
	"testing"

	"strdict/internal/colstore"
)

// nationsByRegion collects, by plain string comparison, the nation keys and
// names of one region.
func nationsByRegion(t *testing.T, s *colstore.Store, region string) map[string]string {
	t.Helper()
	rt, nt := s.Table("region"), s.Table("nation")
	var regionKey string
	for row := 0; row < rt.Rows(); row++ {
		if rt.Str("r_name").Get(row) == region {
			regionKey = rt.Str("r_regionkey").Get(row)
		}
	}
	out := make(map[string]string)
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_regionkey").Get(row) == regionKey {
			out[nt.Str("n_nationkey").Get(row)] = nt.Str("n_name").Get(row)
		}
	}
	return out
}

func TestQ2BruteForce(t *testing.T) {
	s := store(t)
	euro := nationsByRegion(t, s, "EUROPE")

	st, pt, pst := s.Table("supplier"), s.Table("part"), s.Table("partsupp")
	suppNation := make(map[string]string)
	for row := 0; row < st.Rows(); row++ {
		suppNation[st.Str("s_suppkey").Get(row)] = st.Str("s_nationkey").Get(row)
	}
	partOK := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		partOK[pt.Str("p_partkey").Get(row)] =
			pt.Int("p_size").Get(row) == 15 &&
				strings.HasSuffix(pt.Str("p_type").Get(row), "BRASS")
	}
	minCost := make(map[string]float64)
	for row := 0; row < pst.Rows(); row++ {
		pk := pst.Str("ps_partkey").Get(row)
		sk := pst.Str("ps_suppkey").Get(row)
		if !partOK[pk] {
			continue
		}
		if _, ok := euro[suppNation[sk]]; !ok {
			continue
		}
		c := pst.Float("ps_supplycost").Get(row)
		if old, ok := minCost[pk]; !ok || c < old {
			minCost[pk] = c
		}
	}

	res := q2(s)
	// Every result row must reference a qualifying part whose supplier's
	// cost equals the minimum for that part.
	if len(minCost) > 0 && len(res.Rows) == 0 {
		t.Fatal("Q2 empty but qualifying parts exist")
	}
	for _, r := range res.Rows {
		pk := r[3]
		if !partOK[pk] {
			t.Errorf("part %s in result does not qualify", pk)
		}
		if _, ok := minCost[pk]; !ok {
			t.Errorf("part %s has no European supplier", pk)
		}
		if _, ok := euro[""]; ok {
			t.Error("empty nation key")
		}
	}
	if len(res.Rows) > 100 {
		t.Fatalf("Q2 returned %d rows, limit 100", len(res.Rows))
	}
}

func TestQ7BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1995-01-01"), Date("1996-12-31")
	nt := s.Table("nation")
	keyOf := make(map[string]string) // name -> key
	for row := 0; row < nt.Rows(); row++ {
		keyOf[nt.Str("n_name").Get(row)] = nt.Str("n_nationkey").Get(row)
	}
	fr, de := keyOf["FRANCE"], keyOf["GERMANY"]

	ct, st, ot, lt := s.Table("customer"), s.Table("supplier"), s.Table("orders"), s.Table("lineitem")
	custNation := make(map[string]string)
	for row := 0; row < ct.Rows(); row++ {
		custNation[ct.Str("c_custkey").Get(row)] = ct.Str("c_nationkey").Get(row)
	}
	suppNation := make(map[string]string)
	for row := 0; row < st.Rows(); row++ {
		suppNation[st.Str("s_suppkey").Get(row)] = st.Str("s_nationkey").Get(row)
	}
	orderCust := make(map[string]string)
	for row := 0; row < ot.Rows(); row++ {
		orderCust[ot.Str("o_orderkey").Get(row)] = ot.Str("o_custkey").Get(row)
	}

	type gk struct {
		s, c string
		y    int
	}
	want := make(map[gk]float64)
	for row := 0; row < lt.Rows(); row++ {
		d := lt.Int("l_shipdate").Get(row)
		if d < lo || d > hi {
			continue
		}
		sn := suppNation[lt.Str("l_suppkey").Get(row)]
		cn := custNation[orderCust[lt.Str("l_orderkey").Get(row)]]
		if !((sn == fr && cn == de) || (sn == de && cn == fr)) {
			continue
		}
		sName, cName := "FRANCE", "GERMANY"
		if sn == de {
			sName, cName = "GERMANY", "FRANCE"
		}
		want[gk{sName, cName, yearOf(d)}] +=
			lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
	}

	res := q7(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		y := int(parseF(r[2]))
		w := want[gk{r[0], r[1], y}]
		if math.Abs(parseF(r[3])-w) > 1 {
			t.Errorf("group %v: revenue %s, want %.2f", r[:3], r[3], w)
		}
	}
}

func TestQ9BruteForce(t *testing.T) {
	s := store(t)
	pt, st, pst, ot, lt, nt :=
		s.Table("part"), s.Table("supplier"), s.Table("partsupp"),
		s.Table("orders"), s.Table("lineitem"), s.Table("nation")

	green := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		green[pt.Str("p_partkey").Get(row)] =
			strings.Contains(pt.Str("p_name").Get(row), "green")
	}
	nationName := make(map[string]string)
	for row := 0; row < nt.Rows(); row++ {
		nationName[nt.Str("n_nationkey").Get(row)] = nt.Str("n_name").Get(row)
	}
	suppNation := make(map[string]string)
	for row := 0; row < st.Rows(); row++ {
		suppNation[st.Str("s_suppkey").Get(row)] = st.Str("s_nationkey").Get(row)
	}
	type pair struct{ p, s string }
	costOf := make(map[pair]float64)
	for row := 0; row < pst.Rows(); row++ {
		costOf[pair{pst.Str("ps_partkey").Get(row), pst.Str("ps_suppkey").Get(row)}] =
			pst.Float("ps_supplycost").Get(row)
	}
	orderYear := make(map[string]int)
	for row := 0; row < ot.Rows(); row++ {
		orderYear[ot.Str("o_orderkey").Get(row)] = yearOf(ot.Int("o_orderdate").Get(row))
	}

	type gk struct {
		nation string
		year   int
	}
	want := make(map[gk]float64)
	for row := 0; row < lt.Rows(); row++ {
		pk := lt.Str("l_partkey").Get(row)
		if !green[pk] {
			continue
		}
		sk := lt.Str("l_suppkey").Get(row)
		amount := lt.Float("l_extendedprice").Get(row)*(1-lt.Float("l_discount").Get(row)) -
			costOf[pair{pk, sk}]*lt.Float("l_quantity").Get(row)
		want[gk{nationName[suppNation[sk]], orderYear[lt.Str("l_orderkey").Get(row)]}] += amount
	}

	res := q9(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w := want[gk{r[0], int(parseF(r[1]))}]
		if math.Abs(parseF(r[2])-w) > 1 {
			t.Errorf("group %v: profit %s, want %.2f", r[:2], r[2], w)
		}
	}
}

func TestQ11BruteForce(t *testing.T) {
	s := store(t)
	nt, st, pst := s.Table("nation"), s.Table("supplier"), s.Table("partsupp")
	var deKey string
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_name").Get(row) == "GERMANY" {
			deKey = nt.Str("n_nationkey").Get(row)
		}
	}
	germanSupp := make(map[string]bool)
	for row := 0; row < st.Rows(); row++ {
		if st.Str("s_nationkey").Get(row) == deKey {
			germanSupp[st.Str("s_suppkey").Get(row)] = true
		}
	}
	value := make(map[string]float64)
	var total float64
	for row := 0; row < pst.Rows(); row++ {
		if !germanSupp[pst.Str("ps_suppkey").Get(row)] {
			continue
		}
		v := pst.Float("ps_supplycost").Get(row) * float64(pst.Int("ps_availqty").Get(row))
		value[pst.Str("ps_partkey").Get(row)] += v
		total += v
	}
	threshold := total * 0.0001
	want := 0
	for _, v := range value {
		if v > threshold {
			want++
		}
	}
	res := q11(s)
	if len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if math.Abs(parseF(r[1])-value[r[0]]) > 0.5 {
			t.Errorf("part %s: value %s, want %.2f", r[0], r[1], value[r[0]])
		}
	}
}

func TestQ17BruteForce(t *testing.T) {
	s := store(t)
	pt, lt := s.Table("part"), s.Table("lineitem")
	qualify := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		qualify[pt.Str("p_partkey").Get(row)] =
			pt.Str("p_brand").Get(row) == "Brand#23" &&
				pt.Str("p_container").Get(row) == "MED BOX"
	}
	sum := make(map[string]float64)
	cnt := make(map[string]int)
	for row := 0; row < lt.Rows(); row++ {
		pk := lt.Str("l_partkey").Get(row)
		if qualify[pk] {
			sum[pk] += lt.Float("l_quantity").Get(row)
			cnt[pk]++
		}
	}
	var total float64
	for row := 0; row < lt.Rows(); row++ {
		pk := lt.Str("l_partkey").Get(row)
		if !qualify[pk] || cnt[pk] == 0 {
			continue
		}
		if lt.Float("l_quantity").Get(row) < 0.2*sum[pk]/float64(cnt[pk]) {
			total += lt.Float("l_extendedprice").Get(row)
		}
	}
	got := parseF(q17(s).Rows[0][0])
	if math.Abs(got-total/7) > 0.5 {
		t.Fatalf("Q17 = %.2f, want %.2f", got, total/7)
	}
}

func TestQ21BruteForce(t *testing.T) {
	s := store(t)
	nt, st, ot, lt := s.Table("nation"), s.Table("supplier"), s.Table("orders"), s.Table("lineitem")
	var saKey string
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_name").Get(row) == "SAUDI ARABIA" {
			saKey = nt.Str("n_nationkey").Get(row)
		}
	}
	saudiSupp := make(map[string]string) // suppkey -> name
	for row := 0; row < st.Rows(); row++ {
		if st.Str("s_nationkey").Get(row) == saKey {
			saudiSupp[st.Str("s_suppkey").Get(row)] = st.Str("s_name").Get(row)
		}
	}
	orderF := make(map[string]bool)
	for row := 0; row < ot.Rows(); row++ {
		orderF[ot.Str("o_orderkey").Get(row)] = ot.Str("o_orderstatus").Get(row) == "F"
	}
	suppsOf := make(map[string]map[string]bool)
	lateOf := make(map[string]map[string]bool)
	for row := 0; row < lt.Rows(); row++ {
		okKey := lt.Str("l_orderkey").Get(row)
		if !orderF[okKey] {
			continue
		}
		sk := lt.Str("l_suppkey").Get(row)
		if suppsOf[okKey] == nil {
			suppsOf[okKey] = map[string]bool{}
		}
		suppsOf[okKey][sk] = true
		if lt.Int("l_receiptdate").Get(row) > lt.Int("l_commitdate").Get(row) {
			if lateOf[okKey] == nil {
				lateOf[okKey] = map[string]bool{}
			}
			lateOf[okKey][sk] = true
		}
	}
	want := make(map[string]int) // s_name -> numwait
	for okKey, late := range lateOf {
		if len(late) != 1 || len(suppsOf[okKey]) < 2 {
			continue
		}
		for sk := range late {
			if name, ok := saudiSupp[sk]; ok {
				want[name]++
			}
		}
	}
	res := q21(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d suppliers, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if parseF(r[1]) != float64(want[r[0]]) {
			t.Errorf("supplier %s: numwait %s, want %d", r[0], r[1], want[r[0]])
		}
	}
}

func TestQ16BruteForce(t *testing.T) {
	s := store(t)
	pt, st, pst := s.Table("part"), s.Table("supplier"), s.Table("partsupp")
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	type pinfo struct {
		brand, ptype string
		size         int64
		ok           bool
	}
	parts := make(map[string]pinfo)
	for row := 0; row < pt.Rows(); row++ {
		p := pinfo{
			brand: pt.Str("p_brand").Get(row),
			ptype: pt.Str("p_type").Get(row),
			size:  pt.Int("p_size").Get(row),
		}
		p.ok = p.brand != "Brand#45" && !strings.HasPrefix(p.ptype, "MEDIUM POLISHED") && sizes[p.size]
		parts[pt.Str("p_partkey").Get(row)] = p
	}
	badSupp := make(map[string]bool)
	for row := 0; row < st.Rows(); row++ {
		if strings.Contains(st.Str("s_comment").Get(row), "Customer Complaints") {
			badSupp[st.Str("s_suppkey").Get(row)] = true
		}
	}
	type gk struct {
		brand, ptype string
		size         int64
	}
	want := make(map[gk]map[string]bool)
	for row := 0; row < pst.Rows(); row++ {
		p := parts[pst.Str("ps_partkey").Get(row)]
		sk := pst.Str("ps_suppkey").Get(row)
		if !p.ok || badSupp[sk] {
			continue
		}
		k := gk{p.brand, p.ptype, p.size}
		if want[k] == nil {
			want[k] = map[string]bool{}
		}
		want[k][sk] = true
	}
	res := q16(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		k := gk{r[0], r[1], int64(parseF(r[2]))}
		if parseF(r[3]) != float64(len(want[k])) {
			t.Errorf("group %v: %s suppliers, want %d", r[:3], r[3], len(want[k]))
		}
	}
}

func TestQ20BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	nt, st, pt, pst, lt := s.Table("nation"), s.Table("supplier"), s.Table("part"), s.Table("partsupp"), s.Table("lineitem")
	var caKey string
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_name").Get(row) == "CANADA" {
			caKey = nt.Str("n_nationkey").Get(row)
		}
	}
	forest := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		forest[pt.Str("p_partkey").Get(row)] =
			strings.HasPrefix(pt.Str("p_name").Get(row), "forest")
	}
	type pair struct{ p, s string }
	shipped := make(map[pair]float64)
	for row := 0; row < lt.Rows(); row++ {
		d := lt.Int("l_shipdate").Get(row)
		if d < lo || d >= hi {
			continue
		}
		shipped[pair{lt.Str("l_partkey").Get(row), lt.Str("l_suppkey").Get(row)}] +=
			lt.Float("l_quantity").Get(row)
	}
	candidates := make(map[string]bool)
	for row := 0; row < pst.Rows(); row++ {
		pk := pst.Str("ps_partkey").Get(row)
		sk := pst.Str("ps_suppkey").Get(row)
		if !forest[pk] {
			continue
		}
		sh := shipped[pair{pk, sk}]
		if sh > 0 && float64(pst.Int("ps_availqty").Get(row)) > 0.5*sh {
			candidates[sk] = true
		}
	}
	want := make(map[string]bool) // s_name
	for row := 0; row < st.Rows(); row++ {
		if st.Str("s_nationkey").Get(row) == caKey && candidates[st.Str("s_suppkey").Get(row)] {
			want[st.Str("s_name").Get(row)] = true
		}
	}
	res := q20(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d suppliers, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if !want[r[0]] {
			t.Errorf("unexpected supplier %s", r[0])
		}
	}
}

func TestQ8BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1995-01-01"), Date("1996-12-31")
	america := nationsByRegion(t, s, "AMERICA")
	nt := s.Table("nation")
	var brKey string
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_name").Get(row) == "BRAZIL" {
			brKey = nt.Str("n_nationkey").Get(row)
		}
	}
	pt, ct, st, ot, lt := s.Table("part"), s.Table("customer"), s.Table("supplier"), s.Table("orders"), s.Table("lineitem")
	steel := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		steel[pt.Str("p_partkey").Get(row)] =
			pt.Str("p_type").Get(row) == "ECONOMY ANODIZED STEEL"
	}
	custNation := make(map[string]string)
	for row := 0; row < ct.Rows(); row++ {
		custNation[ct.Str("c_custkey").Get(row)] = ct.Str("c_nationkey").Get(row)
	}
	suppNation := make(map[string]string)
	for row := 0; row < st.Rows(); row++ {
		suppNation[st.Str("s_suppkey").Get(row)] = st.Str("s_nationkey").Get(row)
	}
	orderCust := make(map[string]string)
	orderDay := make(map[string]int64)
	for row := 0; row < ot.Rows(); row++ {
		k := ot.Str("o_orderkey").Get(row)
		orderCust[k] = ot.Str("o_custkey").Get(row)
		orderDay[k] = ot.Int("o_orderdate").Get(row)
	}
	total := map[int]float64{}
	brazil := map[int]float64{}
	for row := 0; row < lt.Rows(); row++ {
		if !steel[lt.Str("l_partkey").Get(row)] {
			continue
		}
		okKey := lt.Str("l_orderkey").Get(row)
		d := orderDay[okKey]
		if d < lo || d > hi {
			continue
		}
		cn := custNation[orderCust[okKey]]
		if _, ok := america[cn]; !ok {
			continue
		}
		v := lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
		y := yearOf(d)
		total[y] += v
		if suppNation[lt.Str("l_suppkey").Get(row)] == brKey {
			brazil[y] += v
		}
	}
	res := q8(s)
	if len(res.Rows) != len(total) {
		t.Fatalf("%d years, want %d", len(res.Rows), len(total))
	}
	for _, r := range res.Rows {
		y := int(parseF(r[0]))
		want := 0.0
		if total[y] > 0 {
			want = brazil[y] / total[y]
		}
		if math.Abs(parseF(r[1])-want) > 0.01 {
			t.Errorf("year %d: share %s, want %.2f", y, r[1], want)
		}
	}
}

// Package tpch implements the paper's evaluation workload: a from-scratch
// TPC-H data generator and all 22 queries, hand-written as physical plans
// against the colstore engine.
//
// Following Section 6.1, the schema is modified so that every key column
// (all columns whose names end in KEY) is a VARCHAR(10) string instead of an
// integer — reflecting the paper's observation that real-world business
// applications use strings for a large fraction of columns, keys included.
//
// The generator reproduces the official distributions where the queries
// depend on them (dates, quantities, discount ranges, segment/priority/mode
// vocabularies, part type/brand/container grammars, comment text from a word
// pool) and is deterministic for a given seed.
package tpch

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

// Config controls data generation.
type Config struct {
	// ScaleFactor follows TPC-H: 1.0 is 6M lineitems. The evaluation uses
	// small fractions (0.01–0.1) for tests and benchmarks.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
	// InitialFormat is the dictionary format every string column starts
	// with (the fixed-format baseline; the SAP HANA default in the paper is
	// front coding, our fc inline).
	InitialFormat dict.Format
}

// Date converts a TPC-H date literal (YYYY-MM-DD) into the day number used
// by the date columns.
func Date(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic("tpch: bad date literal " + s)
	}
	return t.Unix() / 86400
}

// DateString renders a day number back to YYYY-MM-DD.
func DateString(day int64) string {
	return time.Unix(day*86400, 0).UTC().Format("2006-01-02")
}

// key renders an integer key as the paper's VARCHAR(10) form.
func key(v int64) string { return fmt.Sprintf("%010d", v) }

// Cardinalities at scale factor 1.
const (
	sfSupplier = 10_000
	sfCustomer = 150_000
	sfPart     = 200_000
	sfOrders   = 1_500_000
)

// Vocabularies from the TPC-H specification.
var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	types1      = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2      = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3      = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	colors      = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
		"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
		"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
		"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
		"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
		"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
		"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
	}
	commentWords = []string{
		"furiously", "quickly", "carefully", "blithely", "slyly", "regular",
		"special", "express", "final", "ironic", "pending", "bold", "even",
		"silent", "unusual", "deposits", "requests", "accounts", "packages",
		"instructions", "foxes", "pinto", "beans", "theodolites", "dependencies",
		"platelets", "excuses", "ideas", "asymptotes", "courts", "dolphins",
		"sleep", "wake", "nag", "haggle", "cajole", "integrate", "boost",
		"detect", "along", "above", "among", "the", "about", "across",
	}
)

var (
	dateLo = Date("1992-01-01")
	dateHi = Date("1998-08-02")
)

type gen struct {
	rng *rand.Rand
}

func (g *gen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

func (g *gen) comment(maxWords int) string {
	n := 2 + g.rng.Intn(maxWords)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(g.pick(commentWords))
	}
	return sb.String()
}

func (g *gen) phone(nation int) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation,
		100+g.rng.Intn(900), 100+g.rng.Intn(900), 1000+g.rng.Intn(9000))
}

func (g *gen) address() string {
	n := 10 + g.rng.Intn(30)
	b := make([]byte, n)
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789 ,"
	for i := range b {
		b[i] = alpha[g.rng.Intn(len(alpha))]
	}
	return strings.TrimSpace(string(b))
}

// Load generates the eight TPC-H tables into a fresh store and merges every
// string column into the read-optimized part with cfg.InitialFormat.
func Load(cfg Config) *colstore.Store {
	s := colstore.NewStore()
	LoadInto(s, cfg)
	return s
}

// LoadInto is Load against a caller-provided empty store — the form the
// persistence benchmark uses, where the store carries a journal and every
// generated row must flow through it.
func LoadInto(s *colstore.Store, cfg Config) {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.01
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed))}

	nSupp := scaled(sfSupplier, cfg.ScaleFactor)
	nCust := scaled(sfCustomer, cfg.ScaleFactor)
	nPart := scaled(sfPart, cfg.ScaleFactor)
	nOrd := scaled(sfOrders, cfg.ScaleFactor)

	genRegion(s, g)
	genNation(s, g)
	genSupplier(s, g, nSupp)
	genCustomer(s, g, nCust)
	genPart(s, g, nPart)
	genPartsupp(s, g, nPart, nSupp)
	genOrdersAndLineitem(s, g, nOrd, nCust, nPart, nSupp)

	for _, t := range s.Tables {
		for _, c := range t.StringColumns() {
			c.Merge(cfg.InitialFormat)
		}
	}
	s.ResetStats()
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func genRegion(s *colstore.Store, g *gen) {
	t := s.AddTable("region")
	k := t.AddString("r_regionkey", dict.Array)
	name := t.AddString("r_name", dict.Array)
	com := t.AddString("r_comment", dict.Array)
	for i, r := range regions {
		k.Append(key(int64(i)))
		name.Append(r)
		com.Append(g.comment(10))
	}
}

func genNation(s *colstore.Store, g *gen) {
	t := s.AddTable("nation")
	k := t.AddString("n_nationkey", dict.Array)
	name := t.AddString("n_name", dict.Array)
	rk := t.AddString("n_regionkey", dict.Array)
	com := t.AddString("n_comment", dict.Array)
	for i, n := range nations {
		k.Append(key(int64(i)))
		name.Append(n.name)
		rk.Append(key(int64(n.region)))
		com.Append(g.comment(10))
	}
}

func genSupplier(s *colstore.Store, g *gen, n int) {
	t := s.AddTable("supplier")
	k := t.AddString("s_suppkey", dict.Array)
	name := t.AddString("s_name", dict.Array)
	addr := t.AddString("s_address", dict.Array)
	nk := t.AddString("s_nationkey", dict.Array)
	phone := t.AddString("s_phone", dict.Array)
	bal := t.AddFloat64("s_acctbal")
	com := t.AddString("s_comment", dict.Array)
	for i := 0; i < n; i++ {
		nation := g.rng.Intn(len(nations))
		k.Append(key(int64(i)))
		name.Append(fmt.Sprintf("Supplier#%09d", i))
		addr.Append(g.address())
		nk.Append(key(int64(nation)))
		phone.Append(g.phone(nation))
		bal.Append(-999.99 + g.rng.Float64()*10998.98)
		c := g.comment(12)
		// The spec plants "Customer Complaints"/"Recommends" markers (Q16).
		switch g.rng.Intn(100) {
		case 0:
			c += " Customer Complaints"
		case 1:
			c += " Customer Recommends"
		}
		com.Append(c)
	}
}

func genCustomer(s *colstore.Store, g *gen, n int) {
	t := s.AddTable("customer")
	k := t.AddString("c_custkey", dict.Array)
	name := t.AddString("c_name", dict.Array)
	addr := t.AddString("c_address", dict.Array)
	nk := t.AddString("c_nationkey", dict.Array)
	phone := t.AddString("c_phone", dict.Array)
	bal := t.AddFloat64("c_acctbal")
	seg := t.AddString("c_mktsegment", dict.Array)
	com := t.AddString("c_comment", dict.Array)
	for i := 0; i < n; i++ {
		nation := g.rng.Intn(len(nations))
		k.Append(key(int64(i)))
		name.Append(fmt.Sprintf("Customer#%09d", i))
		addr.Append(g.address())
		nk.Append(key(int64(nation)))
		phone.Append(g.phone(nation))
		bal.Append(-999.99 + g.rng.Float64()*10998.98)
		seg.Append(g.pick(segments))
		com.Append(g.comment(20))
	}
}

func genPart(s *colstore.Store, g *gen, n int) {
	t := s.AddTable("part")
	k := t.AddString("p_partkey", dict.Array)
	name := t.AddString("p_name", dict.Array)
	mfgr := t.AddString("p_mfgr", dict.Array)
	brand := t.AddString("p_brand", dict.Array)
	typ := t.AddString("p_type", dict.Array)
	size := t.AddInt64("p_size")
	cont := t.AddString("p_container", dict.Array)
	price := t.AddFloat64("p_retailprice")
	com := t.AddString("p_comment", dict.Array)
	for i := 0; i < n; i++ {
		m := 1 + g.rng.Intn(5)
		k.Append(key(int64(i)))
		name.Append(fmt.Sprintf("%s %s %s %s %s",
			g.pick(colors), g.pick(colors), g.pick(colors), g.pick(colors), g.pick(colors)))
		mfgr.Append(fmt.Sprintf("Manufacturer#%d", m))
		brand.Append(fmt.Sprintf("Brand#%d%d", m, 1+g.rng.Intn(5)))
		typ.Append(g.pick(types1) + " " + g.pick(types2) + " " + g.pick(types3))
		size.Append(int64(1 + g.rng.Intn(50)))
		cont.Append(g.pick(containers1) + " " + g.pick(containers2))
		price.Append(900 + float64(i%200000)/10 + 100*float64(i%1000)/1000)
		com.Append(g.comment(5))
	}
}

func genPartsupp(s *colstore.Store, g *gen, nPart, nSupp int) {
	t := s.AddTable("partsupp")
	pk := t.AddString("ps_partkey", dict.Array)
	sk := t.AddString("ps_suppkey", dict.Array)
	qty := t.AddInt64("ps_availqty")
	cost := t.AddFloat64("ps_supplycost")
	com := t.AddString("ps_comment", dict.Array)
	for p := 0; p < nPart; p++ {
		for j := 0; j < 4; j++ {
			supp := (p + j*(nSupp/4+1)) % nSupp
			pk.Append(key(int64(p)))
			sk.Append(key(int64(supp)))
			qty.Append(int64(1 + g.rng.Intn(9999)))
			cost.Append(1 + g.rng.Float64()*999)
			com.Append(g.comment(25))
		}
	}
}

func genOrdersAndLineitem(s *colstore.Store, g *gen, nOrd, nCust, nPart, nSupp int) {
	ot := s.AddTable("orders")
	ok := ot.AddString("o_orderkey", dict.Array)
	ck := ot.AddString("o_custkey", dict.Array)
	status := ot.AddString("o_orderstatus", dict.Array)
	total := ot.AddFloat64("o_totalprice")
	odate := ot.AddInt64("o_orderdate")
	prio := ot.AddString("o_orderpriority", dict.Array)
	clerk := ot.AddString("o_clerk", dict.Array)
	shipprio := ot.AddInt64("o_shippriority")
	ocom := ot.AddString("o_comment", dict.Array)

	lt := s.AddTable("lineitem")
	lok := lt.AddString("l_orderkey", dict.Array)
	lpk := lt.AddString("l_partkey", dict.Array)
	lsk := lt.AddString("l_suppkey", dict.Array)
	lnum := lt.AddInt64("l_linenumber")
	lqty := lt.AddFloat64("l_quantity")
	lext := lt.AddFloat64("l_extendedprice")
	ldisc := lt.AddFloat64("l_discount")
	ltax := lt.AddFloat64("l_tax")
	lret := lt.AddString("l_returnflag", dict.Array)
	lstat := lt.AddString("l_linestatus", dict.Array)
	lship := lt.AddInt64("l_shipdate")
	lcommit := lt.AddInt64("l_commitdate")
	lrecv := lt.AddInt64("l_receiptdate")
	linstr := lt.AddString("l_shipinstruct", dict.Array)
	lmode := lt.AddString("l_shipmode", dict.Array)
	lcom := lt.AddString("l_comment", dict.Array)

	clerks := 1 + nOrd/1000
	cutoff := Date("1995-06-17")
	for o := 0; o < nOrd; o++ {
		oday := dateLo + g.rng.Int63n(dateHi-dateLo-121)
		nl := 1 + g.rng.Intn(7)
		var sumPrice float64
		anyOpen, allF := false, true

		for l := 0; l < nl; l++ {
			part := g.rng.Intn(nPart)
			supp := (part + l*(nSupp/4+1)) % nSupp
			qty := float64(1 + g.rng.Intn(50))
			price := qty * (901 + float64(part%200000)/10)
			disc := float64(g.rng.Intn(11)) / 100
			tax := float64(g.rng.Intn(9)) / 100
			ship := oday + 1 + g.rng.Int63n(121)
			commit := oday + 30 + g.rng.Int63n(61)
			recv := ship + 1 + g.rng.Int63n(30)

			ret := "N"
			if recv <= cutoff {
				if g.rng.Intn(2) == 0 {
					ret = "R"
				} else {
					ret = "A"
				}
			}
			stat := "O"
			if ship <= cutoff {
				stat = "F"
			} else {
				allF = false
			}
			if stat == "O" {
				anyOpen = true
			}

			lok.Append(key(int64(o)))
			lpk.Append(key(int64(part)))
			lsk.Append(key(int64(supp)))
			lnum.Append(int64(l + 1))
			lqty.Append(qty)
			lext.Append(price)
			ldisc.Append(disc)
			ltax.Append(tax)
			lret.Append(ret)
			lstat.Append(stat)
			lship.Append(ship)
			lcommit.Append(commit)
			lrecv.Append(recv)
			linstr.Append(g.pick(instructs))
			lmode.Append(g.pick(shipmodes))
			lcom.Append(g.comment(8))
			sumPrice += price * (1 - disc) * (1 + tax)
		}

		ost := "P"
		if allF {
			ost = "F"
		} else if anyOpen && !allF {
			ost = "O"
		}
		// As in the official dbgen, a third of the customers (custkey
		// divisible by 3) never place orders — Q13 and Q22 depend on it.
		cust := g.rng.Intn(nCust)
		if nCust > 3 && cust%3 == 0 {
			cust++
		}
		ok.Append(key(int64(o)))
		ck.Append(key(int64(cust)))
		status.Append(ost)
		total.Append(sumPrice)
		odate.Append(oday)
		prio.Append(g.pick(priorities))
		clerk.Append(fmt.Sprintf("Clerk#%09d", g.rng.Intn(clerks)))
		shipprio.Append(0)
		ocom.Append(g.comment(12))
	}
}

package tpch

// Generator fidelity tests: the distributions the 22 queries depend on.

import (
	"strings"
	"testing"
)

func TestGenDatesInRange(t *testing.T) {
	s := store(t)
	lt, ot := s.Table("lineitem"), s.Table("orders")
	lo, hi := Date("1992-01-01"), Date("1998-12-31")
	for row := 0; row < ot.Rows(); row += 7 {
		d := ot.Int("o_orderdate").Get(row)
		if d < lo || d > hi {
			t.Fatalf("o_orderdate %s out of range", DateString(d))
		}
	}
	for row := 0; row < lt.Rows(); row += 13 {
		ship := lt.Int("l_shipdate").Get(row)
		recv := lt.Int("l_receiptdate").Get(row)
		if recv <= ship {
			t.Fatalf("receipt %s not after ship %s", DateString(recv), DateString(ship))
		}
	}
}

func TestGenNumericRanges(t *testing.T) {
	s := store(t)
	lt := s.Table("lineitem")
	for row := 0; row < lt.Rows(); row += 11 {
		q := lt.Float("l_quantity").Get(row)
		if q < 1 || q > 50 {
			t.Fatalf("quantity %g out of [1,50]", q)
		}
		d := lt.Float("l_discount").Get(row)
		if d < 0 || d > 0.10+1e-9 {
			t.Fatalf("discount %g out of [0,0.10]", d)
		}
		tax := lt.Float("l_tax").Get(row)
		if tax < 0 || tax > 0.08+1e-9 {
			t.Fatalf("tax %g out of [0,0.08]", tax)
		}
	}
}

func TestGenReturnFlagRule(t *testing.T) {
	// R/A only for receipts on or before the cutoff; N after.
	s := store(t)
	lt := s.Table("lineitem")
	cutoff := Date("1995-06-17")
	for row := 0; row < lt.Rows(); row += 5 {
		flag := lt.Str("l_returnflag").Get(row)
		recv := lt.Int("l_receiptdate").Get(row)
		if recv > cutoff && flag != "N" {
			t.Fatalf("flag %s for receipt %s after cutoff", flag, DateString(recv))
		}
		if flag != "R" && flag != "A" && flag != "N" {
			t.Fatalf("unknown flag %q", flag)
		}
	}
}

func TestGenLineStatusRule(t *testing.T) {
	s := store(t)
	lt := s.Table("lineitem")
	cutoff := Date("1995-06-17")
	for row := 0; row < lt.Rows(); row += 5 {
		stat := lt.Str("l_linestatus").Get(row)
		ship := lt.Int("l_shipdate").Get(row)
		want := "O"
		if ship <= cutoff {
			want = "F"
		}
		if stat != want {
			t.Fatalf("linestatus %s for ship %s, want %s", stat, DateString(ship), want)
		}
	}
}

func TestGenVocabularies(t *testing.T) {
	s := store(t)
	seg := map[string]bool{}
	ct := s.Table("customer").Str("c_mktsegment")
	for i := 0; i < ct.DictLen(); i++ {
		seg[ct.Extract(uint32(i))] = true
	}
	if len(seg) != 5 {
		t.Fatalf("%d market segments, want 5", len(seg))
	}
	modes := s.Table("lineitem").Str("l_shipmode")
	if modes.DictLen() != 7 {
		t.Fatalf("%d ship modes, want 7", modes.DictLen())
	}
	prio := s.Table("orders").Str("o_orderpriority")
	if prio.DictLen() != 5 {
		t.Fatalf("%d priorities, want 5", prio.DictLen())
	}
}

func TestGenBrandTypeGrammar(t *testing.T) {
	s := store(t)
	pt := s.Table("part")
	brand := pt.Str("p_brand")
	for i := 0; i < brand.DictLen(); i++ {
		b := brand.Extract(uint32(i))
		if !strings.HasPrefix(b, "Brand#") || len(b) != 8 {
			t.Fatalf("malformed brand %q", b)
		}
	}
	typ := pt.Str("p_type")
	for i := 0; i < typ.DictLen(); i++ {
		if parts := strings.Split(typ.Extract(uint32(i)), " "); len(parts) != 3 {
			t.Fatalf("malformed type %q", typ.Extract(uint32(i)))
		}
	}
}

func TestGenPartsuppReferences(t *testing.T) {
	// Every partsupp row references existing parts and suppliers (4 rows
	// per part, as in the spec).
	s := store(t)
	pst, pt, st := s.Table("partsupp"), s.Table("part"), s.Table("supplier")
	if pst.Rows() != 4*pt.Rows() {
		t.Fatalf("partsupp rows %d, want 4x parts (%d)", pst.Rows(), 4*pt.Rows())
	}
	for row := 0; row < pst.Rows(); row += 97 {
		if _, found := pt.Str("p_partkey").Locate(pst.Str("ps_partkey").Get(row)); !found {
			t.Fatal("dangling ps_partkey")
		}
		if _, found := st.Str("s_suppkey").Locate(pst.Str("ps_suppkey").Get(row)); !found {
			t.Fatal("dangling ps_suppkey")
		}
	}
}

func TestGenCustomerThirdWithoutOrders(t *testing.T) {
	s := store(t)
	ot, ct := s.Table("orders"), s.Table("customer")
	has := make(map[string]bool)
	for row := 0; row < ot.Rows(); row++ {
		has[ot.Str("o_custkey").Get(row)] = true
	}
	without := ct.Rows() - len(has)
	frac := float64(without) / float64(ct.Rows())
	if frac < 0.25 || frac > 0.45 {
		t.Fatalf("%.0f%% of customers without orders, want ~1/3", frac*100)
	}
}

package tpch

// Brute-force oracles for the remaining queries: each re-evaluates the
// query's semantics with direct row-at-a-time string materialization
// (no codes, no dictionary translation) and compares against the
// code-based physical plan. Together with tpch_test.go this covers all
// join/aggregation shapes the 22 queries use.

import (
	"math"
	"strings"
	"testing"
)

func TestQ4BruteForce(t *testing.T) {
	s := store(t)
	lt, ot := s.Table("lineitem"), s.Table("orders")
	lo, hi := Date("1993-07-01"), Date("1993-10-01")

	late := make(map[string]bool)
	for row := 0; row < lt.Rows(); row++ {
		if lt.Int("l_commitdate").Get(row) < lt.Int("l_receiptdate").Get(row) {
			late[lt.Str("l_orderkey").Get(row)] = true
		}
	}
	want := make(map[string]int)
	for row := 0; row < ot.Rows(); row++ {
		d := ot.Int("o_orderdate").Get(row)
		if d >= lo && d < hi && late[ot.Str("o_orderkey").Get(row)] {
			want[ot.Str("o_orderpriority").Get(row)]++
		}
	}
	res := q4(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d priority groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if parseF(r[1]) != float64(want[r[0]]) {
			t.Errorf("priority %s: count %s, want %d", r[0], r[1], want[r[0]])
		}
	}
}

func TestQ5BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1994-01-01"), Date("1995-01-01")

	// region -> nations (by strings).
	rt, nt := s.Table("region"), s.Table("nation")
	var asiaKey string
	for row := 0; row < rt.Rows(); row++ {
		if rt.Str("r_name").Get(row) == "ASIA" {
			asiaKey = rt.Str("r_regionkey").Get(row)
		}
	}
	nationName := make(map[string]string) // nationkey -> name, ASIA only
	for row := 0; row < nt.Rows(); row++ {
		if nt.Str("n_regionkey").Get(row) == asiaKey {
			nationName[nt.Str("n_nationkey").Get(row)] = nt.Str("n_name").Get(row)
		}
	}
	ct := s.Table("customer")
	custNation := make(map[string]string)
	for row := 0; row < ct.Rows(); row++ {
		custNation[ct.Str("c_custkey").Get(row)] = ct.Str("c_nationkey").Get(row)
	}
	st := s.Table("supplier")
	suppNation := make(map[string]string)
	for row := 0; row < st.Rows(); row++ {
		suppNation[st.Str("s_suppkey").Get(row)] = st.Str("s_nationkey").Get(row)
	}
	ot := s.Table("orders")
	orderCust := make(map[string]string)
	orderDateOK := make(map[string]bool)
	for row := 0; row < ot.Rows(); row++ {
		k := ot.Str("o_orderkey").Get(row)
		orderCust[k] = ot.Str("o_custkey").Get(row)
		d := ot.Int("o_orderdate").Get(row)
		orderDateOK[k] = d >= lo && d < hi
	}
	lt := s.Table("lineitem")
	want := make(map[string]float64)
	for row := 0; row < lt.Rows(); row++ {
		ok := lt.Str("l_orderkey").Get(row)
		if !orderDateOK[ok] {
			continue
		}
		sn := suppNation[lt.Str("l_suppkey").Get(row)]
		cn := custNation[orderCust[ok]]
		name, asia := nationName[sn]
		if !asia || sn != cn {
			continue
		}
		want[name] += lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
	}

	res := q5(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d nations, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if math.Abs(parseF(r[1])-want[r[0]]) > 1 {
			t.Errorf("nation %s: revenue %s, want %.2f", r[0], r[1], want[r[0]])
		}
	}
}

func TestQ10BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1993-10-01"), Date("1994-01-01")
	ot, lt := s.Table("orders"), s.Table("lineitem")

	orderCust := make(map[string]string)
	for row := 0; row < ot.Rows(); row++ {
		d := ot.Int("o_orderdate").Get(row)
		if d >= lo && d < hi {
			orderCust[ot.Str("o_orderkey").Get(row)] = ot.Str("o_custkey").Get(row)
		}
	}
	want := make(map[string]float64)
	for row := 0; row < lt.Rows(); row++ {
		if lt.Str("l_returnflag").Get(row) != "R" {
			continue
		}
		cust, ok := orderCust[lt.Str("l_orderkey").Get(row)]
		if !ok {
			continue
		}
		want[cust] += lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
	}

	res := q10(s)
	for _, r := range res.Rows {
		if math.Abs(parseF(r[2])-want[r[0]]) > 1 {
			t.Errorf("customer %s: revenue %s, want %.2f", r[0], r[2], want[r[0]])
		}
	}
	// Top-20 ordering: descending revenue.
	for i := 1; i < len(res.Rows); i++ {
		if parseF(res.Rows[i][2]) > parseF(res.Rows[i-1][2]) {
			t.Fatal("Q10 rows not sorted by revenue desc")
		}
	}
}

func TestQ12BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	ot, lt := s.Table("orders"), s.Table("lineitem")
	prioOf := make(map[string]string)
	for row := 0; row < ot.Rows(); row++ {
		prioOf[ot.Str("o_orderkey").Get(row)] = ot.Str("o_orderpriority").Get(row)
	}
	type counts struct{ hi, lo int }
	want := map[string]*counts{}
	for row := 0; row < lt.Rows(); row++ {
		mode := lt.Str("l_shipmode").Get(row)
		if mode != "MAIL" && mode != "SHIP" {
			continue
		}
		recv := lt.Int("l_receiptdate").Get(row)
		commit := lt.Int("l_commitdate").Get(row)
		ship := lt.Int("l_shipdate").Get(row)
		if recv < lo || recv >= hi || !(commit < recv && ship < commit) {
			continue
		}
		c := want[mode]
		if c == nil {
			c = &counts{}
			want[mode] = c
		}
		p := prioOf[lt.Str("l_orderkey").Get(row)]
		if p == "1-URGENT" || p == "2-HIGH" {
			c.hi++
		} else {
			c.lo++
		}
	}
	res := q12(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d modes, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w := want[r[0]]
		if w == nil || parseF(r[1]) != float64(w.hi) || parseF(r[2]) != float64(w.lo) {
			t.Errorf("mode %s: got %s/%s, want %d/%d", r[0], r[1], r[2], w.hi, w.lo)
		}
	}
}

func TestQ13BruteForce(t *testing.T) {
	s := store(t)
	ot, ct := s.Table("orders"), s.Table("customer")
	perCust := make(map[string]int)
	for row := 0; row < ot.Rows(); row++ {
		com := ot.Str("o_comment").Get(row)
		if i := strings.Index(com, "special"); i >= 0 && strings.Contains(com[i:], "requests") {
			continue
		}
		perCust[ot.Str("o_custkey").Get(row)]++
	}
	hist := make(map[int]int)
	for _, n := range perCust {
		hist[n]++
	}
	hist[0] = ct.Rows() - len(perCust)

	res := q13(s)
	got := make(map[int]int)
	for _, r := range res.Rows {
		got[int(parseF(r[0]))] = int(parseF(r[1]))
	}
	for n, custs := range hist {
		if got[n] != custs {
			t.Errorf("c_count %d: custdist %d, want %d", n, got[n], custs)
		}
	}
}

func TestQ15BruteForce(t *testing.T) {
	s := store(t)
	lo, hi := Date("1996-01-01"), Date("1996-04-01")
	lt := s.Table("lineitem")
	rev := make(map[string]float64)
	for row := 0; row < lt.Rows(); row++ {
		d := lt.Int("l_shipdate").Get(row)
		if d < lo || d >= hi {
			continue
		}
		rev[lt.Str("l_suppkey").Get(row)] +=
			lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
	}
	var max float64
	for _, v := range rev {
		if v > max {
			max = v
		}
	}
	res := q15(s)
	if len(res.Rows) == 0 {
		t.Fatal("Q15 empty")
	}
	for _, r := range res.Rows {
		if math.Abs(parseF(r[4])-max) > 1 {
			t.Errorf("supplier %s: revenue %s, want max %.2f", r[0], r[4], max)
		}
		if math.Abs(rev[r[0]]-max) > 1 {
			t.Errorf("supplier %s is not a max-revenue supplier", r[0])
		}
	}
}

func TestQ18BruteForce(t *testing.T) {
	s := store(t)
	lt := s.Table("lineitem")
	sum := make(map[string]float64)
	for row := 0; row < lt.Rows(); row++ {
		sum[lt.Str("l_orderkey").Get(row)] += lt.Float("l_quantity").Get(row)
	}
	want := make(map[string]float64)
	for k, q := range sum {
		if q > 300 {
			want[k] = q
		}
	}
	res := q18(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d orders, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if math.Abs(parseF(r[5])-want[r[2]]) > 0.01 {
			t.Errorf("order %s: qty %s, want %.2f", r[2], r[5], want[r[2]])
		}
	}
}

func TestQ19BruteForce(t *testing.T) {
	s := store(t)
	pt, lt := s.Table("part"), s.Table("lineitem")
	type pinfo struct {
		brand, cont string
		size        int64
	}
	parts := make(map[string]pinfo)
	for row := 0; row < pt.Rows(); row++ {
		parts[pt.Str("p_partkey").Get(row)] = pinfo{
			pt.Str("p_brand").Get(row), pt.Str("p_container").Get(row), pt.Int("p_size").Get(row),
		}
	}
	in := func(v string, set ...string) bool {
		for _, s := range set {
			if v == s {
				return true
			}
		}
		return false
	}
	var want float64
	for row := 0; row < lt.Rows(); row++ {
		mode := lt.Str("l_shipmode").Get(row)
		if (mode != "AIR" && mode != "REG AIR") ||
			lt.Str("l_shipinstruct").Get(row) != "DELIVER IN PERSON" {
			continue
		}
		p := parts[lt.Str("l_partkey").Get(row)]
		q := lt.Float("l_quantity").Get(row)
		match := (p.brand == "Brand#12" && in(p.cont, "SM CASE", "SM BOX", "SM PACK", "SM PKG") &&
			q >= 1 && q <= 11 && p.size >= 1 && p.size <= 5) ||
			(p.brand == "Brand#23" && in(p.cont, "MED BAG", "MED BOX", "MED PKG", "MED PACK") &&
				q >= 10 && q <= 20 && p.size >= 1 && p.size <= 10) ||
			(p.brand == "Brand#34" && in(p.cont, "LG CASE", "LG BOX", "LG PACK", "LG PKG") &&
				q >= 20 && q <= 30 && p.size >= 1 && p.size <= 15)
		if match {
			want += lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
		}
	}
	got := parseF(q19(s).Rows[0][0])
	if math.Abs(got-want) > 1 {
		t.Fatalf("Q19 = %.2f, want %.2f", got, want)
	}
}

func TestQ22BruteForce(t *testing.T) {
	s := store(t)
	ct, ot := s.Table("customer"), s.Table("orders")
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}

	hasOrder := make(map[string]bool)
	for row := 0; row < ot.Rows(); row++ {
		hasOrder[ot.Str("o_custkey").Get(row)] = true
	}
	var sum float64
	var n int
	for row := 0; row < ct.Rows(); row++ {
		ph := ct.Str("c_phone").Get(row)
		if len(ph) >= 2 && codes[ph[:2]] && ct.Float("c_acctbal").Get(row) > 0 {
			sum += ct.Float("c_acctbal").Get(row)
			n++
		}
	}
	avg := sum / float64(n)
	type agg struct {
		n   int
		sum float64
	}
	want := make(map[string]*agg)
	for row := 0; row < ct.Rows(); row++ {
		ph := ct.Str("c_phone").Get(row)
		bal := ct.Float("c_acctbal").Get(row)
		if len(ph) < 2 || !codes[ph[:2]] || bal <= avg || hasOrder[ct.Str("c_custkey").Get(row)] {
			continue
		}
		a := want[ph[:2]]
		if a == nil {
			a = &agg{}
			want[ph[:2]] = a
		}
		a.n++
		a.sum += bal
	}
	res := q22(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d country codes, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w := want[r[0]]
		if w == nil || parseF(r[1]) != float64(w.n) || math.Abs(parseF(r[2])-w.sum) > 0.5 {
			t.Errorf("code %s: got (%s, %s), want (%d, %.2f)", r[0], r[1], r[2], w.n, w.sum)
		}
	}
}

package tpch

import (
	"sort"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/model"
)

// RunWorkload executes all 22 queries reps times and returns the summed
// per-query median runtimes, following Section 6.2: "the sum of the medians
// of N executions of each of the 22 queries".
func RunWorkload(s *colstore.Store, reps int) time.Duration {
	if reps < 1 {
		reps = 1
	}
	durations := make([][]float64, 22)
	for r := 0; r < reps; r++ {
		for i, q := range Queries() {
			start := time.Now()
			q.Run(s)
			durations[i] = append(durations[i], float64(time.Since(start)))
		}
	}
	var total float64
	for _, d := range durations {
		sort.Float64s(d)
		total += d[len(d)/2]
	}
	return time.Duration(total)
}

// TraceWorkload resets the store's dictionary access counters, runs the
// workload reps times and returns its wall-clock duration — the lifetime
// used to normalize runtimes, per the paper's offline protocol (100
// repetitions minimize the influence of construction time).
func TraceWorkload(s *colstore.Store, reps int) time.Duration {
	s.ResetStats()
	start := time.Now()
	for r := 0; r < reps; r++ {
		RunAll(s)
	}
	return time.Since(start)
}

// ColumnStatsOf assembles the compression manager's input for one column
// from its traced access counters and a sample of its dictionary. All reads
// go through one pinned snapshot, so the statistics describe a single
// consistent column state.
func ColumnStatsOf(c *colstore.StringColumn, lifetimeNs float64, sampleRatio float64, seed int64) core.ColumnStats {
	return SnapshotStatsOf(c.Snapshot(), lifetimeNs, sampleRatio, seed)
}

// SnapshotStatsOf is ColumnStatsOf against an explicit pinned snapshot —
// the form a merge-time Chooser uses.
func SnapshotStatsOf(s *colstore.Snapshot, lifetimeNs float64, sampleRatio float64, seed int64) core.ColumnStats {
	st := s.Stats()
	return core.ColumnStats{
		Name:              s.Name(),
		NumStrings:        uint64(s.DictLen()),
		Extracts:          st.Extracts,
		Locates:           st.Locates,
		LifetimeNs:        lifetimeNs,
		ColumnVectorBytes: s.VectorBytes(),
		Sample:            model.TakeSample(s.DictValues(), sampleRatio, seed),
	}
}

// Reconfigure asks the manager for a format for every string column of the
// store (as would happen at the columns' next merge) and rebuilds the
// dictionaries accordingly. It returns the chosen format per column, the
// paper's "configuration".
func Reconfigure(s *colstore.Store, mgr *core.Manager, lifetimeNs float64, sampleRatio float64, seed int64) map[string]dict.Format {
	out := make(map[string]dict.Format)
	for _, c := range s.StringColumns() {
		decision := mgr.ChooseFormat(ColumnStatsOf(c, lifetimeNs, sampleRatio, seed))
		c.Rebuild(decision.Format)
		out[c.Name()] = decision.Format
	}
	return out
}

// SetAllFormats rebuilds every string column's dictionary in one fixed
// format — the fixed-format baselines of Figure 10.
func SetAllFormats(s *colstore.Store, f dict.Format) {
	for _, c := range s.StringColumns() {
		c.Rebuild(f)
	}
}

// DictionaryBytes sums the dictionary sizes of all string columns.
func DictionaryBytes(s *colstore.Store) uint64 {
	var b uint64
	for _, c := range s.StringColumns() {
		b += c.DictBytes()
	}
	return b
}

// FormatDistribution counts how many string-column dictionaries currently
// use each format (Figure 11's y-axis).
func FormatDistribution(s *colstore.Store) map[dict.Format]int {
	out := make(map[dict.Format]int)
	for _, c := range s.StringColumns() {
		out[c.Format()]++
	}
	return out
}

package tpch

import (
	"math"
	"strings"
	"sync"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
)

var (
	storeOnce sync.Once
	testStore *colstore.Store
)

// store returns a shared small TPC-H instance (generation is the expensive
// part of these tests).
func store(t *testing.T) *colstore.Store {
	t.Helper()
	storeOnce.Do(func() {
		testStore = Load(Config{ScaleFactor: 0.02, Seed: 7, InitialFormat: dict.FCInline})
	})
	return testStore
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1992-01-01", "1995-06-17", "1998-08-02"} {
		if got := DateString(Date(s)); got != s {
			t.Errorf("date %s -> %s", s, got)
		}
	}
	if Date("1995-01-02")-Date("1995-01-01") != 1 {
		t.Error("consecutive days differ by != 1")
	}
}

func TestLoadCardinalities(t *testing.T) {
	s := store(t)
	if got := s.Table("region").Rows(); got != 5 {
		t.Errorf("region rows = %d", got)
	}
	if got := s.Table("nation").Rows(); got != 25 {
		t.Errorf("nation rows = %d", got)
	}
	cust := s.Table("customer").Rows()
	ord := s.Table("orders").Rows()
	li := s.Table("lineitem").Rows()
	if cust != 3000 {
		t.Errorf("customer rows = %d, want 3000 at SF 0.02", cust)
	}
	if ord != 30000 {
		t.Errorf("orders rows = %d", ord)
	}
	// ~4 lineitems per order.
	if li < 2*ord || li > 8*ord {
		t.Errorf("lineitem rows = %d for %d orders", li, ord)
	}
	// Keys are VARCHAR(10), the paper's schema modification.
	if got := s.Table("orders").Str("o_orderkey").Get(0); len(got) != 10 {
		t.Errorf("o_orderkey %q is not VARCHAR(10)", got)
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := Load(Config{ScaleFactor: 0.002, Seed: 3, InitialFormat: dict.Array})
	b := Load(Config{ScaleFactor: 0.002, Seed: 3, InitialFormat: dict.Array})
	ca, cb := a.Table("lineitem").Str("l_comment"), b.Table("lineitem").Str("l_comment")
	if ca.Len() != cb.Len() {
		t.Fatal("row counts differ across equal seeds")
	}
	for i := 0; i < ca.Len(); i += 97 {
		if ca.Get(i) != cb.Get(i) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestAllQueriesRun(t *testing.T) {
	s := store(t)
	results := RunAll(s)
	if len(results) != 22 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Query != i+1 {
			t.Errorf("result %d has query number %d", i, r.Query)
		}
	}
	// Queries that must be non-empty at this scale.
	for _, num := range []int{1, 3, 4, 5, 6, 10, 12, 13, 14, 16, 19, 22} {
		if len(results[num-1].Rows) == 0 {
			t.Errorf("Q%d returned no rows", num)
		}
	}
}

// TestQ1BruteForce re-computes Q1 with direct string materialization and
// compares against the code-based plan.
func TestQ1BruteForce(t *testing.T) {
	s := store(t)
	lt := s.Table("lineitem")
	cutoff := Date("1998-12-01") - 90
	type agg struct {
		qty float64
		n   int
	}
	want := make(map[string]*agg)
	for row := 0; row < lt.Rows(); row++ {
		if lt.Int("l_shipdate").Get(row) > cutoff {
			continue
		}
		k := lt.Str("l_returnflag").Get(row) + "|" + lt.Str("l_linestatus").Get(row)
		a := want[k]
		if a == nil {
			a = &agg{}
			want[k] = a
		}
		a.qty += lt.Float("l_quantity").Get(row)
		a.n++
	}
	res := q1(s)
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		a := want[r[0]+"|"+r[1]]
		if a == nil {
			t.Fatalf("unexpected group %v", r[:2])
		}
		if math.Abs(parseF(r[2])-a.qty) > 0.5 {
			t.Errorf("group %v sum_qty %s, want %.2f", r[:2], r[2], a.qty)
		}
		if parseF(r[9]) != float64(a.n) {
			t.Errorf("group %v count %s, want %d", r[:2], r[9], a.n)
		}
	}
}

// TestQ6BruteForce checks the pure-numeric query exactly.
func TestQ6BruteForce(t *testing.T) {
	s := store(t)
	lt := s.Table("lineitem")
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	var want float64
	for row := 0; row < lt.Rows(); row++ {
		d := lt.Int("l_shipdate").Get(row)
		disc := lt.Float("l_discount").Get(row)
		if d >= lo && d < hi && disc >= 0.05-1e-9 && disc <= 0.07+1e-9 &&
			lt.Float("l_quantity").Get(row) < 24 {
			want += lt.Float("l_extendedprice").Get(row) * disc
		}
	}
	got := parseF(q6(s).Rows[0][0])
	if math.Abs(got-want) > 0.5 {
		t.Fatalf("Q6 = %.2f, want %.2f", got, want)
	}
}

// TestQ3BruteForce verifies the three-table join against a direct
// string-based evaluation.
func TestQ3BruteForce(t *testing.T) {
	s := store(t)
	cutoff := Date("1995-03-15")
	ct, ot, lt := s.Table("customer"), s.Table("orders"), s.Table("lineitem")

	buildingCust := make(map[string]bool)
	for row := 0; row < ct.Rows(); row++ {
		if ct.Str("c_mktsegment").Get(row) == "BUILDING" {
			buildingCust[ct.Str("c_custkey").Get(row)] = true
		}
	}
	orderPass := make(map[string]bool)
	orderDate := make(map[string]int64)
	for row := 0; row < ot.Rows(); row++ {
		if ot.Int("o_orderdate").Get(row) < cutoff &&
			buildingCust[ot.Str("o_custkey").Get(row)] {
			k := ot.Str("o_orderkey").Get(row)
			orderPass[k] = true
			orderDate[k] = ot.Int("o_orderdate").Get(row)
		}
	}
	want := make(map[string]float64)
	for row := 0; row < lt.Rows(); row++ {
		if lt.Int("l_shipdate").Get(row) <= cutoff {
			continue
		}
		k := lt.Str("l_orderkey").Get(row)
		if orderPass[k] {
			want[k] += lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
		}
	}

	res := q3(s)
	if len(res.Rows) == 0 && len(want) > 0 {
		t.Fatal("Q3 empty but brute force found rows")
	}
	for _, r := range res.Rows {
		w, ok := want[r[0]]
		if !ok {
			t.Fatalf("unexpected order %s in Q3", r[0])
		}
		if math.Abs(parseF(r[1])-w) > 0.5 {
			t.Errorf("order %s revenue %s, want %.2f", r[0], r[1], w)
		}
		if r[2] != DateString(orderDate[r[0]]) {
			t.Errorf("order %s date %s, want %s", r[0], r[2], DateString(orderDate[r[0]]))
		}
	}
}

// TestQ14BruteForce verifies the part join and the CASE aggregation.
func TestQ14BruteForce(t *testing.T) {
	s := store(t)
	pt, lt := s.Table("part"), s.Table("lineitem")
	lo, hi := Date("1995-09-01"), Date("1995-10-01")
	promoOf := make(map[string]bool)
	for row := 0; row < pt.Rows(); row++ {
		promoOf[pt.Str("p_partkey").Get(row)] =
			strings.HasPrefix(pt.Str("p_type").Get(row), "PROMO")
	}
	var promo, total float64
	for row := 0; row < lt.Rows(); row++ {
		d := lt.Int("l_shipdate").Get(row)
		if d < lo || d >= hi {
			continue
		}
		v := lt.Float("l_extendedprice").Get(row) * (1 - lt.Float("l_discount").Get(row))
		total += v
		if promoOf[lt.Str("l_partkey").Get(row)] {
			promo += v
		}
	}
	want := 100 * promo / total
	got := parseF(q14(s).Rows[0][0])
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Q14 = %.2f, want %.2f", got, want)
	}
}

func TestWorkloadTracingCounts(t *testing.T) {
	s := store(t)
	s.ResetStats()
	RunAll(s)
	var extracts, locates uint64
	for _, c := range s.StringColumns() {
		st := c.Stats()
		extracts += st.Extracts
		locates += st.Locates
	}
	if extracts == 0 || locates == 0 {
		t.Fatalf("workload produced no dictionary traffic: e=%d l=%d", extracts, locates)
	}
	// Key columns must dominate the traffic (joins run on them).
	keyTraffic := uint64(0)
	for _, c := range s.StringColumns() {
		if strings.Contains(c.Name(), "key") {
			st := c.Stats()
			keyTraffic += st.Extracts + st.Locates
		}
	}
	if keyTraffic*2 < extracts+locates {
		t.Errorf("key columns carry only %d of %d dictionary ops", keyTraffic, extracts+locates)
	}
}

func TestReconfigureChangesFormats(t *testing.T) {
	s := Load(Config{ScaleFactor: 0.005, Seed: 1, InitialFormat: dict.FCInline})
	lifetime := float64(TraceWorkload(s, 1))

	mgr := core.NewManager(core.Options{DesiredFreeBytes: 1 << 30})
	mgr.SetC(1e-3)
	smallCfg := Reconfigure(s, mgr, lifetime, 1.0, 1)
	smallBytes := DictionaryBytes(s)

	mgr.SetC(10)
	Reconfigure(s, mgr, lifetime, 1.0, 1)
	fastBytes := DictionaryBytes(s)

	if smallBytes >= fastBytes {
		t.Errorf("c=0.001 config (%d bytes) not smaller than c=10 config (%d bytes)",
			smallBytes, fastBytes)
	}
	if len(smallCfg) != len(s.StringColumns()) {
		t.Errorf("configuration covers %d of %d columns", len(smallCfg), len(s.StringColumns()))
	}
	// Queries still correct after reconfiguration.
	if rows := q1(s).Rows; len(rows) == 0 {
		t.Error("Q1 empty after reconfiguration")
	}
}

func TestSetAllFormats(t *testing.T) {
	s := Load(Config{ScaleFactor: 0.002, Seed: 2, InitialFormat: dict.Array})
	SetAllFormats(s, dict.FCBlock)
	for f, n := range FormatDistribution(s) {
		if f != dict.FCBlock && n > 0 {
			t.Fatalf("%d columns still in %s", n, f)
		}
	}
}

func TestRunWorkloadReturnsTime(t *testing.T) {
	s := store(t)
	if d := RunWorkload(s, 1); d <= 0 {
		t.Fatalf("workload duration %v", d)
	}
}

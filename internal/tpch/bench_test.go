package tpch

import (
	"testing"

	"strdict/internal/dict"
)

// BenchmarkRunAll times one pass over all 22 queries against a merged
// store — the number the batch code-decode path (codeStream /
// AppendCodeRange) is meant to move.
func BenchmarkRunAll(b *testing.B) {
	s := Load(Config{ScaleFactor: 0.02, Seed: 7, InitialFormat: dict.FCInline})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunAll(s)
	}
}

package tpch

// TPC-H queries 12-22.

import (
	"strings"

	"strdict/internal/colstore"
)

// q12 — Shipping Modes and Order Priority: late lineitems of 1994 received
// by MAIL or SHIP, split into urgent and non-urgent order counts.
//
// Reference SQL:
//
//	select l_shipmode,
//	       sum(case when o_orderpriority in ('1-URGENT','2-HIGH') then 1 else 0 end),
//	       sum(case when o_orderpriority not in ('1-URGENT','2-HIGH') then 1 else 0 end)
//	from orders, lineitem
//	where o_orderkey = l_orderkey and l_shipmode in ('MAIL','SHIP')
//	  and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
//	  and l_receiptdate >= date '1994-01-01' and l_receiptdate < date '1995-01-01'
//	group by l_shipmode order by l_shipmode
func q12(s *colstore.Store) *Result {
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	lt := s.Table("lineitem")
	mode := lt.Str("l_shipmode")
	ship := lt.Int("l_shipdate")
	commit := lt.Int("l_commitdate")
	recv := lt.Int("l_receiptdate")
	lok := lt.Str("l_orderkey")

	mailCode, mailOK := eqCode(mode, "MAIL")
	shipCode, shipOK := eqCode(mode, "SHIP")

	ot := s.Table("orders")
	prio := ot.Str("o_orderpriority")
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	urgent, urgentOK := eqCode(prio, "1-URGENT")
	high, highOK := eqCode(prio, "2-HIGH")

	type counts struct{ hi, lo int }
	byMode := make(map[uint32]*counts)
	csMode, csLok, csPrio := newCodeStream(mode), newCodeStream(lok), newCodeStream(prio)
	defer csMode.release()
	defer csLok.release()
	defer csPrio.release()
	for row := 0; row < lt.Rows(); row++ {
		mc, _ := csMode.code(row)
		if !(mailOK && mc == mailCode) && !(shipOK && mc == shipCode) {
			continue
		}
		r := recv.Get(row)
		if r < lo || r >= hi {
			continue
		}
		if !(commit.Get(row) < r && ship.Get(row) < commit.Get(row)) {
			continue
		}
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		pc, _ := csPrio.code(int(orow))
		c := byMode[mc]
		if c == nil {
			c = &counts{}
			byMode[mc] = c
		}
		if (urgentOK && pc == urgent) || (highOK && pc == high) {
			c.hi++
		} else {
			c.lo++
		}
	}

	var rows [][]string
	for mc, c := range byMode {
		rows = append(rows, []string{mode.Extract(mc), strconvItoa(c.hi), strconvItoa(c.lo)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 12, Columns: []string{"l_shipmode", "high_line_count", "low_line_count"}, Rows: rows}
}

// q13 — Customer Distribution: histogram of order counts per customer,
// excluding orders whose comment matches "special ... requests".
//
// Reference SQL:
//
//	select c_count, count(*) as custdist from (
//	  select c_custkey, count(o_orderkey) from customer
//	  left outer join orders on c_custkey = o_custkey
//	    and o_comment not like '%special%requests%'
//	  group by c_custkey) as c_orders (c_custkey, c_count)
//	group by c_count order by custdist desc, c_count desc
func q13(s *colstore.Store) *Result {
	ot := s.Table("orders")
	ocom := ot.Str("o_comment")
	excluded := ocom.CodeSet(func(v string) bool {
		i := strings.Index(v, "special")
		return i >= 0 && strings.Contains(v[i:], "requests")
	})
	ct := s.Table("customer")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))

	perCust := make(map[int64]int)
	csOCom, csOCust := newCodeStream(ocom), newCodeStream(ocust)
	defer csOCom.release()
	defer csOCust.release()
	for row := 0; row < ot.Rows(); row++ {
		cc, _ := csOCom.code(row)
		if excluded[cc] {
			continue
		}
		ccRaw, _ := csOCust.code(row)
		if c := oCustToCust[ccRaw]; c >= 0 {
			perCust[c]++
		}
	}
	histogram := make(map[int]int)
	for _, n := range perCust {
		histogram[n]++
	}
	histogram[0] = ct.Rows() - len(perCust) // customers with no orders

	var rows [][]string
	for n, custs := range histogram {
		rows = append(rows, []string{strconvItoa(n), strconvItoa(custs)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool {
		if a[1] != b[1] {
			return parseF(a[1]) > parseF(b[1])
		}
		return parseF(a[0]) > parseF(b[0])
	})
	return &Result{Query: 13, Columns: []string{"c_count", "custdist"}, Rows: rows}
}

// q14 — Promotion Effect: share of September 1995 revenue from PROMO parts.
//
// Reference SQL:
//
//	select 100.00 * sum(case when p_type like 'PROMO%'
//	       then l_extendedprice*(1-l_discount) else 0 end)
//	       / sum(l_extendedprice*(1-l_discount))
//	from lineitem, part
//	where l_partkey = p_partkey and l_shipdate >= date '1995-09-01'
//	  and l_shipdate < date '1995-10-01'
func q14(s *colstore.Store) *Result {
	lo, hi := Date("1995-09-01"), Date("1995-10-01")
	pt := s.Table("part")
	ptype := pt.Str("p_type")
	promo := ptype.CodeSet(func(v string) bool { return strings.HasPrefix(v, "PROMO") })
	partPromo := make([]bool, pt.Rows())
	csPType := newCodeStream(ptype)
	for row := 0; row < pt.Rows(); row++ {
		code, _ := csPType.code(row)
		partPromo[row] = promo[code]
	}
	csPType.release()
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lpk := lt.Str("l_partkey")
	ship := lt.Int("l_shipdate")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))

	var promoRev, totalRev float64
	csLpk := newCodeStream(lpk)
	defer csLpk.release()
	for row := 0; row < lt.Rows(); row++ {
		d := ship.Get(row)
		if d < lo || d >= hi {
			continue
		}
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := partRowByCode[pc]
		if prow < 0 {
			continue
		}
		v := ext.Get(row) * (1 - disc.Get(row))
		totalRev += v
		if partPromo[prow] {
			promoRev += v
		}
	}
	share := 0.0
	if totalRev > 0 {
		share = 100 * promoRev / totalRev
	}
	return &Result{Query: 14, Columns: []string{"promo_revenue"}, Rows: [][]string{{f2(share)}}}
}

// q15 — Top Supplier: suppliers with the maximum revenue in 1996Q1.
//
// Reference SQL:
//
//	with revenue (supplier_no, total_revenue) as (
//	  select l_suppkey, sum(l_extendedprice*(1-l_discount)) from lineitem
//	  where l_shipdate >= date '1996-01-01'
//	    and l_shipdate < date '1996-01-01' + interval '3' month
//	  group by l_suppkey)
//	select s_suppkey, s_name, s_address, s_phone, total_revenue
//	from supplier, revenue where s_suppkey = supplier_no
//	  and total_revenue = (select max(total_revenue) from revenue)
//	order by s_suppkey
func q15(s *colstore.Store) *Result {
	lo, hi := Date("1996-01-01"), Date("1996-04-01")
	st := s.Table("supplier")
	lt := s.Table("lineitem")
	lsk := lt.Str("l_suppkey")
	ship := lt.Int("l_shipdate")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	revenue := make(map[int64]float64) // by s_suppkey code
	csLsk := newCodeStream(lsk)
	defer csLsk.release()
	for row := 0; row < lt.Rows(); row++ {
		d := ship.Get(row)
		if d < lo || d >= hi {
			continue
		}
		scRaw, _ := csLsk.code(row)
		if sc := liSuppToSupp[scRaw]; sc >= 0 {
			revenue[sc] += ext.Get(row) * (1 - disc.Get(row))
		}
	}
	var max float64
	for _, v := range revenue {
		if v > max {
			max = v
		}
	}
	var rows [][]string
	for sc, v := range revenue {
		if v < max-1e-6 {
			continue
		}
		srow := int(suppRowByCode[sc])
		rows = append(rows, []string{
			st.Str("s_suppkey").Extract(uint32(sc)),
			st.Str("s_name").Get(srow),
			st.Str("s_address").Get(srow),
			st.Str("s_phone").Get(srow),
			f2(v),
		})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 15, Columns: []string{
		"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"}, Rows: rows}
}

// q16 — Parts/Supplier Relationship: distinct supplier counts per
// (brand, type, size) for a filtered part set, excluding complained-about
// suppliers.
//
// Reference SQL:
//
//	select p_brand, p_type, p_size, count(distinct ps_suppkey)
//	from partsupp, part
//	where p_partkey = ps_partkey and p_brand <> 'Brand#45'
//	  and p_type not like 'MEDIUM POLISHED%'
//	  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
//	  and ps_suppkey not in (select s_suppkey from supplier
//	       where s_comment like '%Customer%Complaints%')
//	group by p_brand, p_type, p_size
//	order by supplier_cnt desc, p_brand, p_type, p_size
func q16(s *colstore.Store) *Result {
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	pt := s.Table("part")
	brand := pt.Str("p_brand")
	ptype := pt.Str("p_type")
	psize := pt.Int("p_size")
	excludedBrand, brandOK := eqCode(brand, "Brand#45")
	badTypes := ptype.CodeSet(func(v string) bool { return strings.HasPrefix(v, "MEDIUM POLISHED") })
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	// The partsupp loop probes part rows in partkey order, not row order, so
	// batch-decode the part-side codes once up front.
	brandCodes := make([]uint32, pt.Rows())
	ptypeCodes := make([]uint32, pt.Rows())
	csBrand, csPType := newCodeStream(brand), newCodeStream(ptype)
	for row := 0; row < pt.Rows(); row++ {
		brandCodes[row], _ = csBrand.code(row)
		ptypeCodes[row], _ = csPType.code(row)
	}
	csBrand.release()
	csPType.release()

	st := s.Table("supplier")
	scom := st.Str("s_comment")
	badSupp := scom.CodeSet(func(v string) bool {
		return strings.Contains(v, "Customer Complaints")
	})
	suppBad := make([]bool, st.Rows())
	csSCom := newCodeStream(scom)
	for row := 0; row < st.Rows(); row++ {
		code, _ := csSCom.code(row)
		suppBad[row] = badSupp[code]
	}
	csSCom.release()
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	pst := s.Table("partsupp")
	psPart := pst.Str("ps_partkey")
	psSupp := pst.Str("ps_suppkey")
	psPartToPart := colstore.TranslateCodes(psPart, pt.Str("p_partkey"))
	psSuppToSupp := colstore.TranslateCodes(psSupp, st.Str("s_suppkey"))

	type gk struct {
		brand, ptype uint32
		size         int64
	}
	suppliers := make(map[gk]map[int64]bool)
	csPsPart, csPsSupp := newCodeStream(psPart), newCodeStream(psSupp)
	defer csPsPart.release()
	defer csPsSupp.release()
	for row := 0; row < pst.Rows(); row++ {
		pcRaw, _ := csPsPart.code(row)
		pc := psPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := int(partRowByCode[pc])
		if prow < 0 {
			continue
		}
		bc, tc := brandCodes[prow], ptypeCodes[prow]
		sz := psize.Get(prow)
		if (brandOK && bc == excludedBrand) || badTypes[tc] || !sizes[sz] {
			continue
		}
		scRaw, _ := csPsSupp.code(row)
		sc := psSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		if srow := suppRowByCode[sc]; srow < 0 || suppBad[srow] {
			continue
		}
		k := gk{bc, tc, sz}
		if suppliers[k] == nil {
			suppliers[k] = make(map[int64]bool)
		}
		suppliers[k][sc] = true
	}

	var rows [][]string
	for k, set := range suppliers {
		rows = append(rows, []string{
			brand.Extract(k.brand), ptype.Extract(k.ptype),
			strconvItoa(int(k.size)), strconvItoa(len(set)),
		})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool {
		if a[3] != b[3] {
			return parseF(a[3]) > parseF(b[3])
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return parseF(a[2]) < parseF(b[2])
	})
	return &Result{Query: 16, Columns: []string{"p_brand", "p_type", "p_size", "supplier_cnt"}, Rows: rows}
}

// q17 — Small-Quantity-Order Revenue: average yearly revenue lost if small
// orders of Brand#23 MED BOX parts were not taken.
//
// Reference SQL:
//
//	select sum(l_extendedprice) / 7.0 from lineitem, part
//	where p_partkey = l_partkey and p_brand = 'Brand#23'
//	  and p_container = 'MED BOX'
//	  and l_quantity < (select 0.2 * avg(l_quantity) from lineitem
//	       where l_partkey = p_partkey)
func q17(s *colstore.Store) *Result {
	pt := s.Table("part")
	brand := pt.Str("p_brand")
	cont := pt.Str("p_container")
	brandCode, brandOK := eqCode(brand, "Brand#23")
	contCode, contOK := eqCode(cont, "MED BOX")
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lpk := lt.Str("l_partkey")
	qty := lt.Float("l_quantity")
	ext := lt.Float("l_extendedprice")
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))

	// Qualifying parts, batch-decoded once: the lineitem loops probe part
	// rows in partkey order.
	partPass := make([]bool, pt.Rows())
	csBrand, csCont := newCodeStream(brand), newCodeStream(cont)
	for row := 0; row < pt.Rows(); row++ {
		bc, _ := csBrand.code(row)
		cc, _ := csCont.code(row)
		partPass[row] = brandOK && contOK && bc == brandCode && cc == contCode
	}
	csBrand.release()
	csCont.release()

	// avg quantity per qualifying part
	sumQty := make(map[int64]float64)
	cntQty := make(map[int64]int)
	passes := func(pc int64) bool {
		if pc < 0 {
			return false
		}
		prow := partRowByCode[pc]
		return prow >= 0 && partPass[prow]
	}
	csLpk := newCodeStream(lpk)
	defer csLpk.release()
	for row := 0; row < lt.Rows(); row++ {
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if passes(pc) {
			sumQty[pc] += qty.Get(row)
			cntQty[pc]++
		}
	}
	var total float64
	for row := 0; row < lt.Rows(); row++ {
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if !passes(pc) {
			continue
		}
		avg := sumQty[pc] / float64(cntQty[pc])
		if qty.Get(row) < 0.2*avg {
			total += ext.Get(row)
		}
	}
	return &Result{Query: 17, Columns: []string{"avg_yearly"}, Rows: [][]string{{f2(total / 7)}}}
}

// q18 — Large Volume Customer: orders whose lineitem quantities exceed 300.
//
// Reference SQL:
//
//	select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity)
//	from customer, orders, lineitem
//	where o_orderkey in (select l_orderkey from lineitem
//	       group by l_orderkey having sum(l_quantity) > 300)
//	  and c_custkey = o_custkey and o_orderkey = l_orderkey
//	group by ... order by o_totalprice desc, o_orderdate limit 100
func q18(s *colstore.Store) *Result {
	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	qty := lt.Float("l_quantity")
	ot := s.Table("orders")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	sumQty := make(map[int64]float64) // by o_orderkey code
	csLok := newCodeStream(lok)
	defer csLok.release()
	for row := 0; row < lt.Rows(); row++ {
		lcRaw, _ := csLok.code(row)
		if oc := liOrderToOrder[lcRaw]; oc >= 0 {
			sumQty[oc] += qty.Get(row)
		}
	}

	ct := s.Table("customer")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()

	csOCust := newCodeStream(ocust)
	defer csOCust.release()
	var rows [][]string
	for oc, q := range sumQty {
		if q <= 300 {
			continue
		}
		orow := int(orderRowByCode[oc])
		ccRaw, _ := csOCust.code(orow)
		cc := oCustToCust[ccRaw]
		if cc < 0 {
			continue
		}
		crow := int(custRowByCode[cc])
		rows = append(rows, []string{
			ct.Str("c_name").Get(crow),
			ct.Str("c_custkey").Extract(uint32(cc)),
			ot.Str("o_orderkey").Extract(uint32(oc)),
			DateString(ot.Int("o_orderdate").Get(orow)),
			f2(ot.Float("o_totalprice").Get(orow)),
			f2(q),
		})
	}
	rows = sortRows(rows, 100, func(a, b []string) bool {
		if a[4] != b[4] {
			return parseF(a[4]) > parseF(b[4])
		}
		return a[3] < b[3]
	})
	return &Result{Query: 18, Columns: []string{
		"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"}, Rows: rows}
}

// q19 — Discounted Revenue: three brand/container/quantity disjuncts.
//
// Reference SQL:
//
//	select sum(l_extendedprice*(1-l_discount)) from lineitem, part
//	where (p_partkey = l_partkey and p_brand = 'Brand#12'
//	       and p_container in ('SM CASE','SM BOX','SM PACK','SM PKG')
//	       and l_quantity >= 1 and l_quantity <= 11 and p_size between 1 and 5 ...)
//	   or (... 'Brand#23', MED containers, quantity 10..20, size 1..10 ...)
//	   or (... 'Brand#34', LG containers, quantity 20..30, size 1..15 ...)
//	  and l_shipmode in ('AIR','REG AIR')
//	  and l_shipinstruct = 'DELIVER IN PERSON'
func q19(s *colstore.Store) *Result {
	pt := s.Table("part")
	brand := pt.Str("p_brand")
	cont := pt.Str("p_container")
	size := pt.Int("p_size")
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	sm := cont.CodeSet(func(v string) bool {
		return v == "SM CASE" || v == "SM BOX" || v == "SM PACK" || v == "SM PKG"
	})
	med := cont.CodeSet(func(v string) bool {
		return v == "MED BAG" || v == "MED BOX" || v == "MED PKG" || v == "MED PACK"
	})
	lg := cont.CodeSet(func(v string) bool {
		return v == "LG CASE" || v == "LG BOX" || v == "LG PACK" || v == "LG PKG"
	})
	b12, _ := eqCode(brand, "Brand#12")
	b23, _ := eqCode(brand, "Brand#23")
	b34, _ := eqCode(brand, "Brand#34")

	// Part-side codes, batch-decoded once for the partkey-ordered probes.
	brandCodes := make([]uint32, pt.Rows())
	contCodes := make([]uint32, pt.Rows())
	csBrand, csCont := newCodeStream(brand), newCodeStream(cont)
	for row := 0; row < pt.Rows(); row++ {
		brandCodes[row], _ = csBrand.code(row)
		contCodes[row], _ = csCont.code(row)
	}
	csBrand.release()
	csCont.release()

	lt := s.Table("lineitem")
	lpk := lt.Str("l_partkey")
	qty := lt.Float("l_quantity")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	mode := lt.Str("l_shipmode")
	instr := lt.Str("l_shipinstruct")
	air, _ := eqCode(mode, "AIR")
	regair, _ := eqCode(mode, "REG AIR")
	deliver, _ := eqCode(instr, "DELIVER IN PERSON")
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))

	var revenue float64
	csMode, csInstr, csLpk := newCodeStream(mode), newCodeStream(instr), newCodeStream(lpk)
	defer csMode.release()
	defer csInstr.release()
	defer csLpk.release()
	for row := 0; row < lt.Rows(); row++ {
		mc, _ := csMode.code(row)
		ic, _ := csInstr.code(row)
		if (mc != air && mc != regair) || ic != deliver {
			continue
		}
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := int(partRowByCode[pc])
		if prow < 0 {
			continue
		}
		bc, cc := brandCodes[prow], contCodes[prow]
		sz := size.Get(prow)
		q := qty.Get(row)
		match := (bc == b12 && sm[cc] && q >= 1 && q <= 11 && sz >= 1 && sz <= 5) ||
			(bc == b23 && med[cc] && q >= 10 && q <= 20 && sz >= 1 && sz <= 10) ||
			(bc == b34 && lg[cc] && q >= 20 && q <= 30 && sz >= 1 && sz <= 15)
		if match {
			revenue += ext.Get(row) * (1 - disc.Get(row))
		}
	}
	return &Result{Query: 19, Columns: []string{"revenue"}, Rows: [][]string{{f2(revenue)}}}
}

// q20 — Potential Part Promotion: CANADA suppliers with excess stock of
// forest* parts relative to 1994 shipments.
//
// Reference SQL:
//
//	select s_name, s_address from supplier, nation
//	where s_suppkey in (select ps_suppkey from partsupp
//	    where ps_partkey in (select p_partkey from part where p_name like 'forest%')
//	      and ps_availqty > (select 0.5 * sum(l_quantity) from lineitem
//	           where l_partkey = ps_partkey and l_suppkey = ps_suppkey
//	             and l_shipdate >= date '1994-01-01'
//	             and l_shipdate < date '1995-01-01'))
//	  and s_nationkey = n_nationkey and n_name = 'CANADA' order by s_name
func q20(s *colstore.Store) *Result {
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	ca, _, okCA := nationKeyCode(s, "CANADA")
	if !okCA {
		return &Result{Query: 20}
	}
	pt := s.Table("part")
	pname := pt.Str("p_name")
	forest := pname.CodeSet(func(v string) bool { return strings.HasPrefix(v, "forest") })
	partForest := make([]bool, pt.Rows())
	csPName := newCodeStream(pname)
	for row := 0; row < pt.Rows(); row++ {
		code, _ := csPName.code(row)
		partForest[row] = forest[code]
	}
	csPName.release()
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	// Shipped quantity in 1994 per (part, supp) in partsupp code spaces.
	st := s.Table("supplier")
	lt := s.Table("lineitem")
	lpk := lt.Str("l_partkey")
	lsk := lt.Str("l_suppkey")
	ship := lt.Int("l_shipdate")
	qty := lt.Float("l_quantity")
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))
	type pair struct{ p, s int64 }
	shipped := make(map[pair]float64)
	csLpk, csLsk := newCodeStream(lpk), newCodeStream(lsk)
	for row := 0; row < lt.Rows(); row++ {
		d := ship.Get(row)
		if d < lo || d >= hi {
			continue
		}
		pcRaw, _ := csLpk.code(row)
		scRaw, _ := csLsk.code(row)
		shipped[pair{liPartToPart[pcRaw], liSuppToSupp[scRaw]}] += qty.Get(row)
	}
	csLpk.release()
	csLsk.release()

	pst := s.Table("partsupp")
	psPart := pst.Str("ps_partkey")
	psSupp := pst.Str("ps_suppkey")
	avail := pst.Int("ps_availqty")
	psPartToPart := colstore.TranslateCodes(psPart, pt.Str("p_partkey"))
	psSuppToSupp := colstore.TranslateCodes(psSupp, st.Str("s_suppkey"))

	candidates := make(map[int64]bool) // s_suppkey codes
	csPsPart, csPsSupp := newCodeStream(psPart), newCodeStream(psSupp)
	defer csPsPart.release()
	defer csPsSupp.release()
	for row := 0; row < pst.Rows(); row++ {
		pcRaw, _ := csPsPart.code(row)
		pc := psPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := partRowByCode[pc]
		if prow < 0 || !partForest[prow] {
			continue
		}
		scRaw, _ := csPsSupp.code(row)
		sc := psSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		if float64(avail.Get(row)) > 0.5*shipped[pair{pc, sc}] && shipped[pair{pc, sc}] > 0 {
			candidates[sc] = true
		}
	}

	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()
	var rows [][]string
	for sc := range candidates {
		srow := int(suppRowByCode[sc])
		if srow < 0 || suppNation[srow] != int64(ca) {
			continue
		}
		rows = append(rows, []string{
			st.Str("s_name").Get(srow),
			st.Str("s_address").Get(srow),
		})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 20, Columns: []string{"s_name", "s_address"}, Rows: rows}
}

// q21 — Suppliers Who Kept Orders Waiting: SAUDI ARABIA suppliers that were
// the only late supplier of a multi-supplier order.
//
// Reference SQL:
//
//	select s_name, count(*) as numwait from supplier, lineitem l1, orders, nation
//	where s_suppkey = l1.l_suppkey and o_orderkey = l1.l_orderkey
//	  and o_orderstatus = 'F' and l1.l_receiptdate > l1.l_commitdate
//	  and exists (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey
//	       and l2.l_suppkey <> l1.l_suppkey)
//	  and not exists (select * from lineitem l3 where l3.l_orderkey = l1.l_orderkey
//	       and l3.l_suppkey <> l1.l_suppkey and l3.l_receiptdate > l3.l_commitdate)
//	  and s_nationkey = n_nationkey and n_name = 'SAUDI ARABIA'
//	group by s_name order by numwait desc, s_name limit 100
func q21(s *colstore.Store) *Result {
	sa, _, okSA := nationKeyCode(s, "SAUDI ARABIA")
	if !okSA {
		return &Result{Query: 21}
	}
	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	ot := s.Table("orders")
	status := ot.Str("o_orderstatus")
	fCode, fOK := eqCode(status, "F")
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lsk := lt.Str("l_suppkey")
	commit := lt.Int("l_commitdate")
	recv := lt.Int("l_receiptdate")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))

	// Per order: set of suppliers, set of late suppliers.
	suppsOf := make(map[int64]map[int64]bool)
	lateOf := make(map[int64]map[int64]bool)
	csLok, csLsk, csStatus := newCodeStream(lok), newCodeStream(lsk), newCodeStream(status)
	defer csLok.release()
	defer csLsk.release()
	defer csStatus.release()
	for row := 0; row < lt.Rows(); row++ {
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		sc0, _ := csStatus.code(int(orow))
		if !fOK || sc0 != fCode {
			continue
		}
		scRaw, _ := csLsk.code(row)
		sc := liSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		if suppsOf[oc] == nil {
			suppsOf[oc] = make(map[int64]bool)
		}
		suppsOf[oc][sc] = true
		if recv.Get(row) > commit.Get(row) {
			if lateOf[oc] == nil {
				lateOf[oc] = make(map[int64]bool)
			}
			lateOf[oc][sc] = true
		}
	}

	waiting := make(map[int64]int) // s_suppkey code -> count
	for oc, late := range lateOf {
		if len(late) != 1 || len(suppsOf[oc]) < 2 {
			continue
		}
		for sc := range late {
			srow := suppRowByCode[sc]
			if srow >= 0 && suppNation[srow] == int64(sa) {
				waiting[sc]++
			}
		}
	}

	var rows [][]string
	for sc, n := range waiting {
		srow := int(suppRowByCode[sc])
		rows = append(rows, []string{st.Str("s_name").Get(srow), strconvItoa(n)})
	}
	rows = sortRows(rows, 100, func(a, b []string) bool {
		if a[1] != b[1] {
			return parseF(a[1]) > parseF(b[1])
		}
		return a[0] < b[0]
	})
	return &Result{Query: 21, Columns: []string{"s_name", "numwait"}, Rows: rows}
}

// q22 — Global Sales Opportunity: well-funded customers from seven country
// codes without orders.
//
// Reference SQL:
//
//	select cntrycode, count(*) as numcust, sum(c_acctbal) from (
//	  select substring(c_phone from 1 for 2) as cntrycode, c_acctbal
//	  from customer
//	  where substring(c_phone from 1 for 2) in ('13','31','23','29','30','18','17')
//	    and c_acctbal > (select avg(c_acctbal) from customer
//	         where c_acctbal > 0.00 and substring(...) in (...))
//	    and not exists (select * from orders where o_custkey = c_custkey))
//	group by cntrycode order by cntrycode
func q22(s *colstore.Store) *Result {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	ct := s.Table("customer")
	phone := ct.Str("c_phone")
	bal := ct.Float("c_acctbal")

	inCodes := phone.CodeSet(func(v string) bool { return len(v) >= 2 && codes[v[:2]] })

	// avg positive balance over customers in the code set
	var sum float64
	var n int
	csPhone := newCodeStream(phone)
	defer csPhone.release()
	for row := 0; row < ct.Rows(); row++ {
		pc, _ := csPhone.code(row)
		if inCodes[pc] && bal.Get(row) > 0 {
			sum += bal.Get(row)
			n++
		}
	}
	if n == 0 {
		return &Result{Query: 22, Columns: []string{"cntrycode", "numcust", "totacctbal"}}
	}
	avg := sum / float64(n)

	// Customers with at least one order.
	ot := s.Table("orders")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	hasOrder := make(map[int64]bool)
	csOCust := newCodeStream(ocust)
	for row := 0; row < ot.Rows(); row++ {
		ccRaw, _ := csOCust.code(row)
		if cc := oCustToCust[ccRaw]; cc >= 0 {
			hasOrder[cc] = true
		}
	}
	csOCust.release()

	type agg struct {
		n   int
		sum float64
	}
	byCode := make(map[string]*agg)
	custKey := ct.Str("c_custkey")
	csCustKey := newCodeStream(custKey)
	defer csCustKey.release()
	var buf []byte
	for row := 0; row < ct.Rows(); row++ {
		pc, _ := csPhone.code(row)
		if !inCodes[pc] || bal.Get(row) <= avg {
			continue
		}
		kc, _ := csCustKey.code(row)
		if hasOrder[int64(kc)] {
			continue
		}
		buf = phone.AppendExtract(buf[:0], pc)
		cc := string(buf[:2])
		a := byCode[cc]
		if a == nil {
			a = &agg{}
			byCode[cc] = a
		}
		a.n++
		a.sum += bal.Get(row)
	}

	var rows [][]string
	for cc, a := range byCode {
		rows = append(rows, []string{cc, strconvItoa(a.n), f2(a.sum)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 22, Columns: []string{"cntrycode", "numcust", "totacctbal"}, Rows: rows}
}

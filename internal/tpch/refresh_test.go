package tpch

import (
	"context"
	"testing"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/model"
)

func TestRefreshInsertGrowsTables(t *testing.T) {
	s := Load(Config{ScaleFactor: 0.003, Seed: 9, InitialFormat: dict.FCInline})
	ordBefore := s.Table("orders").Rows()
	liBefore := s.Table("lineitem").Rows()

	inserted := RefreshInsert(s, 1, 0.1)
	if inserted < 1 {
		t.Fatal("nothing inserted")
	}
	if got := s.Table("orders").Rows(); got != ordBefore+inserted {
		t.Fatalf("orders rows %d, want %d", got, ordBefore+inserted)
	}
	if s.Table("lineitem").Rows() <= liBefore {
		t.Fatal("lineitem did not grow")
	}

	// New rows live in the delta until a merge.
	if s.Table("orders").Str("o_orderkey").DeltaRows() != inserted {
		t.Fatalf("delta rows %d, want %d", s.Table("orders").Str("o_orderkey").DeltaRows(), inserted)
	}

	// Rows are readable pre-merge and survive the merge.
	lastRow := s.Table("orders").Rows() - 1
	preMerge := s.Table("orders").Str("o_orderkey").Get(lastRow)
	for _, tbl := range []string{"orders", "lineitem"} {
		s.Table(tbl).MergeAll()
	}
	if got := s.Table("orders").Str("o_orderkey").Get(lastRow); got != preMerge {
		t.Fatalf("row changed across merge: %q -> %q", preMerge, got)
	}

	// Queries still work on the refreshed data.
	if rows := q1(s).Rows; len(rows) == 0 {
		t.Fatal("Q1 empty after refresh")
	}
}

// TestUpdateWorkloadAvoidsExpensiveConstruction reproduces Section 5.1's
// "update-intensive columns need a string dictionary supporting fast
// construction": with frequent merges (short lifetimes) the manager must
// not pick Re-Pair for a large, rarely-read column that it would happily
// compress under a long lifetime.
func TestUpdateWorkloadAvoidsExpensiveConstruction(t *testing.T) {
	s := Load(Config{ScaleFactor: 0.01, Seed: 4, InitialFormat: dict.FCInline})
	comments := s.Table("orders").Str("o_comment")

	stats := func(lifetime time.Duration) core.ColumnStats {
		return core.ColumnStats{
			Name:              comments.Name(),
			NumStrings:        uint64(comments.DictLen()),
			Extracts:          100, // cold column
			Locates:           1,
			LifetimeNs:        float64(lifetime),
			ColumnVectorBytes: comments.VectorBytes(),
			Sample:            model.TakeSample(comments.DictValues(), 1.0, 1),
		}
	}
	mgr := core.NewManager(core.Options{DesiredFreeBytes: 1 << 30})
	mgr.SetC(0.05) // strong compression preference

	longLived := mgr.ChooseFormat(stats(24 * time.Hour)).Format
	updateHeavy := mgr.ChooseFormat(stats(40 * time.Millisecond)).Format

	costs := model.DefaultCostTable()
	if costs.Of(updateHeavy).ConstructNs > costs.Of(longLived).ConstructNs {
		t.Fatalf("update-heavy column got costlier construction (%s, %.0fns) than long-lived (%s, %.0fns)",
			updateHeavy, costs.Of(updateHeavy).ConstructNs,
			longLived, costs.Of(longLived).ConstructNs)
	}
	if longLived == updateHeavy {
		t.Fatalf("lifetime had no effect on the decision (both %s)", longLived)
	}
}

// TestMergeDaemonOnRefreshStream wires RefreshInsert, the background merge
// daemon and the compression manager together: an online update stream with
// adaptive format decisions at every merge, no cooperative Tick calls —
// merges overlap the read workload on the daemon's own timer.
func TestMergeDaemonOnRefreshStream(t *testing.T) {
	s := Load(Config{ScaleFactor: 0.002, Seed: 2, InitialFormat: dict.FCInline})
	mgr := core.NewManager(core.Options{DesiredFreeBytes: 1 << 30})
	mgr.SetC(1)

	sched := colstore.NewMergeScheduler(s, 50)
	sched.Interval = time.Millisecond
	sched.Chooser = func(snap *colstore.Snapshot, lifetimeNs float64) dict.Format {
		return mgr.ChooseFormat(SnapshotStatsOf(snap, lifetimeNs, 1.0, 1)).Format
	}
	sched.Start(context.Background())

	for round := 0; round < 3; round++ {
		RefreshInsert(s, int64(round), 0.2)
		RunAll(s) // read workload overlapping background merges
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}

	// Close drained every delta; data remains queryable and consistent.
	for _, c := range s.StringColumns() {
		if c.DeltaRows() != 0 {
			t.Fatalf("%s still has %d delta rows", c.Name(), c.DeltaRows())
		}
	}
	if rows := q6(s).Rows; len(rows) != 1 {
		t.Fatal("Q6 failed after refresh stream")
	}
}

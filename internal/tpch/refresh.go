package tpch

import (
	"fmt"
	"math/rand"

	"strdict/internal/colstore"
)

// RefreshInsert implements the spirit of the TPC-H RF1 refresh function:
// it appends fraction*|orders| new orders (with their lineitems) to the
// write-optimized delta of the orders and lineitem tables. New order keys
// continue beyond the current maximum, new lineitems reference existing
// parts, suppliers and customers.
//
// Refresh streams matter to the paper because update-intensive columns need
// dictionaries with fast construction (Section 5.1): the merge interval
// that follows a refresh bounds how much construction time the manager can
// amortize. The deltas stay unmerged so the caller (a MergeScheduler or an
// explicit Merge) decides when and in which format to fold them in.
//
// It returns the number of orders inserted.
func RefreshInsert(s *colstore.Store, seed int64, fraction float64) int {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	ot := s.Table("orders")
	lt := s.Table("lineitem")

	nOrd := ot.Rows()
	nCust := s.Table("customer").Rows()
	nPart := s.Table("part").Rows()
	nSupp := s.Table("supplier").Rows()
	insert := int(float64(nOrd) * fraction)
	if insert < 1 {
		insert = 1
	}

	clerks := 1 + nOrd/1000
	cutoff := Date("1995-06-17")
	for o := nOrd; o < nOrd+insert; o++ {
		oday := dateLo + g.rng.Int63n(dateHi-dateLo-121)
		nl := 1 + g.rng.Intn(7)
		var sumPrice float64
		anyOpen, allF := false, true

		for l := 0; l < nl; l++ {
			part := g.rng.Intn(nPart)
			supp := (part + l*(nSupp/4+1)) % nSupp
			qty := float64(1 + g.rng.Intn(50))
			price := qty * (901 + float64(part%200000)/10)
			disc := float64(g.rng.Intn(11)) / 100
			tax := float64(g.rng.Intn(9)) / 100
			ship := oday + 1 + g.rng.Int63n(121)
			commit := oday + 30 + g.rng.Int63n(61)
			recv := ship + 1 + g.rng.Int63n(30)

			ret := "N"
			if recv <= cutoff {
				if g.rng.Intn(2) == 0 {
					ret = "R"
				} else {
					ret = "A"
				}
			}
			stat := "O"
			if ship <= cutoff {
				stat = "F"
			} else {
				allF = false
			}
			if stat == "O" {
				anyOpen = true
			}

			lt.Str("l_orderkey").Append(key(int64(o)))
			lt.Str("l_partkey").Append(key(int64(part)))
			lt.Str("l_suppkey").Append(key(int64(supp)))
			lt.Int("l_linenumber").Append(int64(l + 1))
			lt.Float("l_quantity").Append(qty)
			lt.Float("l_extendedprice").Append(price)
			lt.Float("l_discount").Append(disc)
			lt.Float("l_tax").Append(tax)
			lt.Str("l_returnflag").Append(ret)
			lt.Str("l_linestatus").Append(stat)
			lt.Int("l_shipdate").Append(ship)
			lt.Int("l_commitdate").Append(commit)
			lt.Int("l_receiptdate").Append(recv)
			lt.Str("l_shipinstruct").Append(g.pick(instructs))
			lt.Str("l_shipmode").Append(g.pick(shipmodes))
			lt.Str("l_comment").Append(g.comment(8))
			sumPrice += price * (1 - disc) * (1 + tax)
		}

		ost := "P"
		if allF {
			ost = "F"
		} else if anyOpen {
			ost = "O"
		}
		cust := g.rng.Intn(nCust)
		if nCust > 3 && cust%3 == 0 {
			cust++
		}
		ot.Str("o_orderkey").Append(key(int64(o)))
		ot.Str("o_custkey").Append(key(int64(cust)))
		ot.Str("o_orderstatus").Append(ost)
		ot.Float("o_totalprice").Append(sumPrice)
		ot.Int("o_orderdate").Append(oday)
		ot.Str("o_orderpriority").Append(g.pick(priorities))
		ot.Str("o_clerk").Append(fmt.Sprintf("Clerk#%09d", g.rng.Intn(clerks)))
		ot.Int("o_shippriority").Append(0)
		ot.Str("o_comment").Append(g.comment(12))
	}
	return insert
}

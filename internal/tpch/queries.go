package tpch

import (
	"fmt"
	"sort"
	"strconv"

	"strdict/internal/colstore"
)

// Result is a query's materialized output.
type Result struct {
	Query   int
	Columns []string
	Rows    [][]string
}

// Query is one of the 22 TPC-H queries, hand-written as a physical plan.
type Query struct {
	Number int
	Run    func(*colstore.Store) *Result
}

// Queries returns the 22 queries in order.
func Queries() []Query {
	return []Query{
		{1, q1}, {2, q2}, {3, q3}, {4, q4}, {5, q5}, {6, q6}, {7, q7},
		{8, q8}, {9, q9}, {10, q10}, {11, q11}, {12, q12}, {13, q13},
		{14, q14}, {15, q15}, {16, q16}, {17, q17}, {18, q18}, {19, q19},
		{20, q20}, {21, q21}, {22, q22},
	}
}

// RunAll executes all 22 queries once and returns their results.
func RunAll(s *colstore.Store) []*Result {
	qs := Queries()
	out := make([]*Result, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.Run(s))
	}
	return out
}

// --- plan helpers ---

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortRows orders rows by the given less function and truncates to limit
// (limit <= 0 keeps everything).
func sortRows(rows [][]string, limit int, less func(a, b []string) bool) [][]string {
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// eqCode locates a constant in a column's dictionary (one locate).
func eqCode(c *colstore.StringColumn, v string) (uint32, bool) {
	return c.Locate(v)
}

// keysOfNationsInRegion returns the n_nationkey codes (in the nation table's
// n_nationkey dictionary) of all nations in the named region, along with a
// map from that code to the nation's name.
func keysOfNationsInRegion(s *colstore.Store, region string) (map[uint32]bool, map[uint32]string) {
	rt, nt := s.Table("region"), s.Table("nation")
	regionKeyByRow := rt.Str("r_regionkey")
	rname := rt.Str("r_name")
	var regionKey string
	rcode, found := eqCode(rname, region)
	if found {
		for row := 0; row < rt.Rows(); row++ {
			if code, ok := rname.Code(row); ok && code == rcode {
				regionKey = regionKeyByRow.Get(row)
			}
		}
	}
	keys := make(map[uint32]bool)
	names := make(map[uint32]string)
	nrk := nt.Str("n_regionkey")
	nk := nt.Str("n_nationkey")
	nn := nt.Str("n_name")
	want, haveRegion := eqCode(nrk, regionKey)
	for row := 0; row < nt.Rows(); row++ {
		if code, ok := nrk.Code(row); ok && haveRegion && code == want {
			kc, _ := nk.Code(row)
			keys[kc] = true
			names[kc] = nn.Get(row)
		}
	}
	return keys, names
}

// nationKeyCode returns the n_nationkey code of a nation by name, along
// with the nation's name for result labelling.
func nationKeyCode(s *colstore.Store, name string) (uint32, string, bool) {
	nt := s.Table("nation")
	nn := nt.Str("n_name")
	nk := nt.Str("n_nationkey")
	ncode, found := eqCode(nn, name)
	if !found {
		return 0, "", false
	}
	for row := 0; row < nt.Rows(); row++ {
		if code, ok := nn.Code(row); ok && code == ncode {
			kc, _ := nk.Code(row)
			return kc, name, true
		}
	}
	return 0, "", false
}

// yearOf converts a day number to its calendar year.
func yearOf(day int64) int {
	y, err := strconv.Atoi(DateString(day)[:4])
	if err != nil {
		panic(err)
	}
	return y
}

func strconvItoa(v int) string { return strconv.Itoa(v) }

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic("tpch: bad float in result row: " + s)
	}
	return v
}

// rowToNationCode maps every row of a *_nationkey column to its value ID in
// the nation table's n_nationkey dictionary (-1 if absent).
func rowToNationCode(s *colstore.Store, col *colstore.StringColumn) []int64 {
	toNation := colstore.TranslateCodes(col, s.Table("nation").Str("n_nationkey"))
	out := make([]int64, col.Len())
	for row := range out {
		code, _ := col.Code(row)
		out[row] = toNation[code]
	}
	return out
}

package tpch

import (
	"fmt"
	"sort"
	"strconv"

	"strdict/internal/colstore"
)

// Result is a query's materialized output.
type Result struct {
	Query   int
	Columns []string
	Rows    [][]string
}

// Query is one of the 22 TPC-H queries, hand-written as a physical plan.
type Query struct {
	Number int
	Run    func(*colstore.Store) *Result
}

// Queries returns the 22 queries in order.
func Queries() []Query {
	return []Query{
		{1, q1}, {2, q2}, {3, q3}, {4, q4}, {5, q5}, {6, q6}, {7, q7},
		{8, q8}, {9, q9}, {10, q10}, {11, q11}, {12, q12}, {13, q13},
		{14, q14}, {15, q15}, {16, q16}, {17, q17}, {18, q18}, {19, q19},
		{20, q20}, {21, q21}, {22, q22},
	}
}

// RunAll executes all 22 queries once and returns their results.
func RunAll(s *colstore.Store) []*Result {
	qs := Queries()
	out := make([]*Result, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.Run(s))
	}
	return out
}

// --- plan helpers ---

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortRows orders rows by the given less function and truncates to limit
// (limit <= 0 keeps everything).
func sortRows(rows [][]string, limit int, less func(a, b []string) bool) [][]string {
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// eqCode locates a constant in a column's dictionary (one locate).
func eqCode(c *colstore.StringColumn, v string) (uint32, bool) {
	return c.Locate(v)
}

// codeStreamChunk is the AppendCodeRange window width: one kernel call
// decodes this many main-part codes at once.
const codeStreamChunk = 256

// codeStream batch-decodes a string column's main-part value IDs for the
// row loops of the query plans: one pinned snapshot for the whole scan and
// one AppendCodeRange kernel call per 256 rows, instead of one
// Vector.Get interface call per row. code is a drop-in for
// StringColumn.Code — delta rows (at or past MainRows) report ok=false with
// the same semantics. The window refills from whatever row misses, so
// filtered and restarted loops work too; ascending scans hit the window
// ~256 times per refill. Call release when the plan is done with the
// stream.
type codeStream struct {
	snap   *colstore.Snapshot
	nMain  int
	window []uint64
	start  int // window covers rows [start, start+len(window))
}

func newCodeStream(c *colstore.StringColumn) *codeStream {
	snap := c.Snapshot()
	return &codeStream{snap: snap, nMain: snap.MainRows()}
}

func (cs *codeStream) release() { cs.snap.Release() }

func (cs *codeStream) code(row int) (uint32, bool) {
	if row >= cs.nMain {
		return 0, false
	}
	if off := row - cs.start; off >= 0 && off < len(cs.window) {
		return uint32(cs.window[off]), true
	}
	n := cs.nMain - row
	if n > codeStreamChunk {
		n = codeStreamChunk
	}
	cs.window = cs.snap.AppendCodeRange(cs.window[:0], row, n)
	cs.start = row
	return uint32(cs.window[0]), true
}

// keysOfNationsInRegion returns the n_nationkey codes (in the nation table's
// n_nationkey dictionary) of all nations in the named region, along with a
// map from that code to the nation's name.
func keysOfNationsInRegion(s *colstore.Store, region string) (map[uint32]bool, map[uint32]string) {
	rt, nt := s.Table("region"), s.Table("nation")
	regionKeyByRow := rt.Str("r_regionkey")
	rname := rt.Str("r_name")
	var regionKey string
	rcode, found := eqCode(rname, region)
	if found {
		csRName := newCodeStream(rname)
		for row := 0; row < rt.Rows(); row++ {
			if code, ok := csRName.code(row); ok && code == rcode {
				regionKey = regionKeyByRow.Get(row)
			}
		}
		csRName.release()
	}
	keys := make(map[uint32]bool)
	names := make(map[uint32]string)
	nrk := nt.Str("n_regionkey")
	nk := nt.Str("n_nationkey")
	nn := nt.Str("n_name")
	want, haveRegion := eqCode(nrk, regionKey)
	csNRK, csNK := newCodeStream(nrk), newCodeStream(nk)
	defer csNRK.release()
	defer csNK.release()
	for row := 0; row < nt.Rows(); row++ {
		if code, ok := csNRK.code(row); ok && haveRegion && code == want {
			kc, _ := csNK.code(row)
			keys[kc] = true
			names[kc] = nn.Get(row)
		}
	}
	return keys, names
}

// nationKeyCode returns the n_nationkey code of a nation by name, along
// with the nation's name for result labelling.
func nationKeyCode(s *colstore.Store, name string) (uint32, string, bool) {
	nt := s.Table("nation")
	nn := nt.Str("n_name")
	nk := nt.Str("n_nationkey")
	ncode, found := eqCode(nn, name)
	if !found {
		return 0, "", false
	}
	csNN, csNK := newCodeStream(nn), newCodeStream(nk)
	defer csNN.release()
	defer csNK.release()
	for row := 0; row < nt.Rows(); row++ {
		if code, ok := csNN.code(row); ok && code == ncode {
			kc, _ := csNK.code(row)
			return kc, name, true
		}
	}
	return 0, "", false
}

// yearOf converts a day number to its calendar year.
func yearOf(day int64) int {
	y, err := strconv.Atoi(DateString(day)[:4])
	if err != nil {
		panic(err)
	}
	return y
}

func strconvItoa(v int) string { return strconv.Itoa(v) }

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic("tpch: bad float in result row: " + s)
	}
	return v
}

// rowToNationCode maps every row of a *_nationkey column to its value ID in
// the nation table's n_nationkey dictionary (-1 if absent).
func rowToNationCode(s *colstore.Store, col *colstore.StringColumn) []int64 {
	toNation := colstore.TranslateCodes(col, s.Table("nation").Str("n_nationkey"))
	out := make([]int64, col.Len())
	cs := newCodeStream(col)
	defer cs.release()
	for row := range out {
		code, _ := cs.code(row)
		out[row] = toNation[code]
	}
	return out
}

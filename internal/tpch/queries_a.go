package tpch

// TPC-H queries 1-11. Each is a hand-written physical plan over the
// colstore engine: constants cost one dictionary locate, joins run on value
// IDs via dictionary translation, and result strings are extracted only for
// surviving groups/rows.

import (
	"strings"

	"strdict/internal/colstore"
)

// q1 — Pricing Summary Report: scan lineitem up to a ship-date cutoff,
// aggregate by (returnflag, linestatus).
//
// Reference SQL:
//
//	select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
//	       sum(l_extendedprice*(1-l_discount)),
//	       sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//	from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day
//	group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus
func q1(s *colstore.Store) *Result {
	lt := s.Table("lineitem")
	ship := lt.Int("l_shipdate")
	qty := lt.Float("l_quantity")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	tax := lt.Float("l_tax")
	rf := lt.Str("l_returnflag")
	ls := lt.Str("l_linestatus")
	cutoff := Date("1998-12-01") - 90

	// Both grouping columns are scanned through one snapshot each, so codes
	// stay consistent with the final Extract even if a merge republishes the
	// column mid-query. Main-part codes come out of the vector in chunks of
	// groupChunk via AppendCodeRange instead of one Vector.Get per row; the
	// (rare) unmerged delta rows keep the per-row Code fallback with its
	// original "delta rows group as code 0" behavior.
	const groupChunk = 256
	srf, sls := rf.Snapshot(), ls.Snapshot()
	defer srf.Release()
	defer sls.Release()
	nMain := srf.MainRows()
	if m := sls.MainRows(); m < nMain {
		nMain = m
	}

	type agg struct {
		qty, base, discounted, charge, discSum float64
		n                                      int
	}
	groups := make(map[uint64]*agg)
	var rfBuf, lsBuf [groupChunk]uint64
	total := lt.Rows()
	for base := 0; base < total; base += groupChunk {
		k := total - base
		if k > groupChunk {
			k = groupChunk
		}
		var rfCodes, lsCodes []uint64
		if base+k <= nMain {
			rfCodes = srf.AppendCodeRange(rfBuf[:0], base, k)
			lsCodes = sls.AppendCodeRange(lsBuf[:0], base, k)
		}
		for j := 0; j < k; j++ {
			row := base + j
			if ship.Get(row) > cutoff {
				continue
			}
			var gk uint64
			if rfCodes != nil {
				gk = rfCodes[j]<<32 | lsCodes[j]
			} else {
				rc, _ := srf.Code(row)
				lc, _ := sls.Code(row)
				gk = uint64(rc)<<32 | uint64(lc)
			}
			a := groups[gk]
			if a == nil {
				a = &agg{}
				groups[gk] = a
			}
			q, e, d, t := qty.Get(row), ext.Get(row), disc.Get(row), tax.Get(row)
			a.qty += q
			a.base += e
			a.discounted += e * (1 - d)
			a.charge += e * (1 - d) * (1 + t)
			a.discSum += d
			a.n++
		}
	}

	var rows [][]string
	for k, a := range groups {
		n := float64(a.n)
		rows = append(rows, []string{
			srf.Extract(uint32(k >> 32)),
			sls.Extract(uint32(k & 0xffffffff)),
			f2(a.qty), f2(a.base), f2(a.discounted), f2(a.charge),
			f2(a.qty / n), f2(a.base / n), f2(a.discSum / n),
			strconvItoa(a.n),
		})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool {
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return &Result{Query: 1, Columns: []string{
		"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
		"sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc",
		"count_order"}, Rows: rows}
}

// q2 — Minimum Cost Supplier: for BRASS parts of size 15, the cheapest
// European supplier per part.
//
// Reference SQL:
//
//	select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
//	from part, supplier, partsupp, nation, region
//	where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15
//	  and p_type like '%BRASS' and s_nationkey = n_nationkey
//	  and n_regionkey = r_regionkey and r_name = 'EUROPE'
//	  and ps_supplycost = (select min(ps_supplycost) from partsupp, supplier,
//	       nation, region where p_partkey = ps_partkey and s_suppkey = ps_suppkey
//	       and s_nationkey = n_nationkey and n_regionkey = r_regionkey
//	       and r_name = 'EUROPE')
//	order by s_acctbal desc, n_name, s_name, p_partkey limit 100
func q2(s *colstore.Store) *Result {
	const (
		size   = 15
		suffix = "BRASS"
		region = "EUROPE"
	)
	nationKeys, nationNames := keysOfNationsInRegion(s, region)

	// European suppliers: supplier row -> nation code, via translating
	// s_nationkey into the nation table's n_nationkey code space.
	st := s.Table("supplier")
	snk := st.Str("s_nationkey")
	toNation := colstore.TranslateCodes(snk, s.Table("nation").Str("n_nationkey"))
	suppNation := make([]int64, st.Rows()) // row -> n_nationkey code or -1
	csSnk := newCodeStream(snk)
	defer csSnk.release()
	for row := 0; row < st.Rows(); row++ {
		code, _ := csSnk.code(row)
		nc := toNation[code]
		if nc >= 0 && nationKeys[uint32(nc)] {
			suppNation[row] = nc
		} else {
			suppNation[row] = -1
		}
	}
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	// Qualifying parts.
	pt := s.Table("part")
	ptype := pt.Str("p_type")
	psize := pt.Int("p_size")
	typeOK := ptype.CodeSet(func(v string) bool { return strings.HasSuffix(v, suffix) })
	partOK := make([]bool, pt.Rows())
	csPType := newCodeStream(ptype)
	defer csPType.release()
	for row := 0; row < pt.Rows(); row++ {
		code, _ := csPType.code(row)
		partOK[row] = typeOK[code] && psize.Get(row) == size
	}
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	// partsupp: min supply cost per part among European suppliers.
	pst := s.Table("partsupp")
	psPart := pst.Str("ps_partkey")
	psSupp := pst.Str("ps_suppkey")
	cost := pst.Float("ps_supplycost")
	psPartToPart := colstore.TranslateCodes(psPart, pt.Str("p_partkey"))
	psSuppToSupp := colstore.TranslateCodes(psSupp, st.Str("s_suppkey"))

	type best struct {
		cost    float64
		suppRow int32
		partRow int32
	}
	minCost := make(map[uint32]*best) // by ps_partkey code
	csPsPart, csPsSupp := newCodeStream(psPart), newCodeStream(psSupp)
	defer csPsPart.release()
	defer csPsSupp.release()
	for row := 0; row < pst.Rows(); row++ {
		pc, _ := csPsPart.code(row)
		partCode := psPartToPart[pc]
		if partCode < 0 {
			continue
		}
		partRow := partRowByCode[partCode]
		if partRow < 0 || !partOK[partRow] {
			continue
		}
		sc, _ := csPsSupp.code(row)
		suppCode := psSuppToSupp[sc]
		if suppCode < 0 {
			continue
		}
		suppRow := suppRowByCode[suppCode]
		if suppRow < 0 || suppNation[suppRow] < 0 {
			continue
		}
		c := cost.Get(row)
		if b, ok := minCost[pc]; !ok || c < b.cost {
			minCost[pc] = &best{cost: c, suppRow: suppRow, partRow: partRow}
		}
	}

	bal := st.Float("s_acctbal")
	var rows [][]string
	for _, b := range minCost {
		rows = append(rows, []string{
			f2(bal.Get(int(b.suppRow))),
			st.Str("s_name").Get(int(b.suppRow)),
			nationNames[uint32(suppNation[b.suppRow])],
			pt.Str("p_partkey").Get(int(b.partRow)),
			pt.Str("p_mfgr").Get(int(b.partRow)),
			st.Str("s_address").Get(int(b.suppRow)),
			st.Str("s_phone").Get(int(b.suppRow)),
			st.Str("s_comment").Get(int(b.suppRow)),
		})
	}
	rows = sortRows(rows, 100, func(a, b []string) bool {
		if a[0] != b[0] {
			return parseF(a[0]) > parseF(b[0])
		}
		if a[2] != b[2] {
			return a[2] < b[2]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[3] < b[3]
	})
	return &Result{Query: 2, Columns: []string{
		"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address",
		"s_phone", "s_comment"}, Rows: rows}
}

// q3 — Shipping Priority: top 10 unshipped orders of BUILDING customers by
// revenue.
//
// Reference SQL:
//
//	select l_orderkey, sum(l_extendedprice*(1-l_discount)) as revenue,
//	       o_orderdate, o_shippriority
//	from customer, orders, lineitem
//	where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
//	  and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15'
//	  and l_shipdate > date '1995-03-15'
//	group by l_orderkey, o_orderdate, o_shippriority
//	order by revenue desc, o_orderdate limit 10
func q3(s *colstore.Store) *Result {
	cutoff := Date("1995-03-15")
	ct := s.Table("customer")
	seg := ct.Str("c_mktsegment")
	segCode, segFound := eqCode(seg, "BUILDING")
	custOK := make([]bool, ct.Rows())
	csSeg := newCodeStream(seg)
	defer csSeg.release()
	for row := 0; row < ct.Rows(); row++ {
		code, _ := csSeg.code(row)
		custOK[row] = segFound && code == segCode
	}
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()

	ot := s.Table("orders")
	odate := ot.Int("o_orderdate")
	shipPrio := ot.Int("o_shippriority")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	orderPass := make([]bool, ot.Rows())
	csOCust := newCodeStream(ocust)
	defer csOCust.release()
	for row := 0; row < ot.Rows(); row++ {
		if odate.Get(row) >= cutoff {
			continue
		}
		cc, _ := csOCust.code(row)
		custCode := oCustToCust[cc]
		if custCode < 0 {
			continue
		}
		custRow := custRowByCode[custCode]
		orderPass[row] = custRow >= 0 && custOK[custRow]
	}
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	ship := lt.Int("l_shipdate")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	revenue := make(map[int64]float64) // by o_orderkey code
	csLok := newCodeStream(lok)
	defer csLok.release()
	for row := 0; row < lt.Rows(); row++ {
		if ship.Get(row) <= cutoff {
			continue
		}
		lc, _ := csLok.code(row)
		oc := liOrderToOrder[lc]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 || !orderPass[orow] {
			continue
		}
		revenue[oc] += ext.Get(row) * (1 - disc.Get(row))
	}

	var rows [][]string
	for oc, rev := range revenue {
		orow := int(orderRowByCode[oc])
		rows = append(rows, []string{
			ot.Str("o_orderkey").Extract(uint32(oc)),
			f2(rev),
			DateString(odate.Get(orow)),
			strconvItoa(int(shipPrio.Get(orow))),
		})
	}
	rows = sortRows(rows, 10, func(a, b []string) bool {
		if a[1] != b[1] {
			return parseF(a[1]) > parseF(b[1])
		}
		return a[2] < b[2]
	})
	return &Result{Query: 3, Columns: []string{
		"l_orderkey", "revenue", "o_orderdate", "o_shippriority"}, Rows: rows}
}

// q4 — Order Priority Checking: orders of 1993Q3 with at least one late
// lineitem, counted per priority.
//
// Reference SQL:
//
//	select o_orderpriority, count(*) from orders
//	where o_orderdate >= date '1993-07-01'
//	  and o_orderdate < date '1993-07-01' + interval '3' month
//	  and exists (select * from lineitem where l_orderkey = o_orderkey
//	       and l_commitdate < l_receiptdate)
//	group by o_orderpriority order by o_orderpriority
func q4(s *colstore.Store) *Result {
	lo, hi := Date("1993-07-01"), Date("1993-10-01")
	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	commit := lt.Int("l_commitdate")
	recv := lt.Int("l_receiptdate")
	ot := s.Table("orders")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))

	lateOrder := make(map[int64]bool) // o_orderkey codes with commit < receipt
	csLok := newCodeStream(lok)
	defer csLok.release()
	for row := 0; row < lt.Rows(); row++ {
		if commit.Get(row) < recv.Get(row) {
			lc, _ := csLok.code(row)
			if oc := liOrderToOrder[lc]; oc >= 0 {
				lateOrder[oc] = true
			}
		}
	}

	odate := ot.Int("o_orderdate")
	prio := ot.Str("o_orderpriority")
	okey := ot.Str("o_orderkey")
	counts := make(map[uint32]int)
	csOkey, csPrio := newCodeStream(okey), newCodeStream(prio)
	defer csOkey.release()
	defer csPrio.release()
	for row := 0; row < ot.Rows(); row++ {
		d := odate.Get(row)
		if d < lo || d >= hi {
			continue
		}
		kc, _ := csOkey.code(row)
		if !lateOrder[int64(kc)] {
			continue
		}
		pc, _ := csPrio.code(row)
		counts[pc]++
	}

	var rows [][]string
	for pc, n := range counts {
		rows = append(rows, []string{prio.Extract(pc), strconvItoa(n)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 4, Columns: []string{"o_orderpriority", "order_count"}, Rows: rows}
}

// q5 — Local Supplier Volume: revenue in ASIA from orders of 1994 where the
// customer and supplier share a nation.
//
// Reference SQL:
//
//	select n_name, sum(l_extendedprice*(1-l_discount)) as revenue
//	from customer, orders, lineitem, supplier, nation, region
//	where c_custkey = o_custkey and l_orderkey = o_orderkey
//	  and l_suppkey = s_suppkey and c_nationkey = s_nationkey
//	  and s_nationkey = n_nationkey and n_regionkey = r_regionkey
//	  and r_name = 'ASIA' and o_orderdate >= date '1994-01-01'
//	  and o_orderdate < date '1995-01-01'
//	group by n_name order by revenue desc
func q5(s *colstore.Store) *Result {
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	nationKeys, nationNames := keysOfNationsInRegion(s, "ASIA")

	ct := s.Table("customer")
	custNation := rowToNationCode(s, ct.Str("c_nationkey"))
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()

	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	ot := s.Table("orders")
	odate := ot.Int("o_orderdate")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lsk := lt.Str("l_suppkey")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))

	revenue := make(map[int64]float64) // by nation code
	csLok, csLsk, csOCust := newCodeStream(lok), newCodeStream(lsk), newCodeStream(ocust)
	defer csLok.release()
	defer csLsk.release()
	defer csOCust.release()
	for row := 0; row < lt.Rows(); row++ {
		lc, _ := csLok.code(row)
		oc := liOrderToOrder[lc]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		if d := odate.Get(int(orow)); d < lo || d >= hi {
			continue
		}
		scRaw, _ := csLsk.code(row)
		sc := liSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		srow := suppRowByCode[sc]
		if srow < 0 {
			continue
		}
		sn := suppNation[srow]
		if sn < 0 || !nationKeys[uint32(sn)] {
			continue
		}
		ccRaw, _ := csOCust.code(int(orow))
		cc := oCustToCust[ccRaw]
		if cc < 0 {
			continue
		}
		crow := custRowByCode[cc]
		if crow < 0 || custNation[crow] != sn {
			continue
		}
		revenue[sn] += ext.Get(row) * (1 - disc.Get(row))
	}

	var rows [][]string
	for nc, rev := range revenue {
		rows = append(rows, []string{nationNames[uint32(nc)], f2(rev)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return parseF(a[1]) > parseF(b[1]) })
	return &Result{Query: 5, Columns: []string{"n_name", "revenue"}, Rows: rows}
}

// q6 — Forecasting Revenue Change: pure numeric scan of lineitem.
//
// Reference SQL:
//
//	select sum(l_extendedprice*l_discount) from lineitem
//	where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
//	  and l_discount between 0.05 and 0.07 and l_quantity < 24
func q6(s *colstore.Store) *Result {
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	lt := s.Table("lineitem")
	ship := lt.Int("l_shipdate")
	qty := lt.Float("l_quantity")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	var revenue float64
	for row := 0; row < lt.Rows(); row++ {
		d := ship.Get(row)
		dc := disc.Get(row)
		if d >= lo && d < hi && dc >= 0.05-1e-9 && dc <= 0.07+1e-9 && qty.Get(row) < 24 {
			revenue += ext.Get(row) * dc
		}
	}
	return &Result{Query: 6, Columns: []string{"revenue"}, Rows: [][]string{{f2(revenue)}}}
}

// q7 — Volume Shipping: revenue shipped between FRANCE and GERMANY in
// 1995-1996, by supplier nation, customer nation and year.
//
// Reference SQL:
//
//	select supp_nation, cust_nation, l_year, sum(volume) from (
//	  select n1.n_name as supp_nation, n2.n_name as cust_nation,
//	         extract(year from l_shipdate) as l_year,
//	         l_extendedprice*(1-l_discount) as volume
//	  from supplier, lineitem, orders, customer, nation n1, nation n2
//	  where s_suppkey = l_suppkey and o_orderkey = l_orderkey
//	    and c_custkey = o_custkey and s_nationkey = n1.n_nationkey
//	    and c_nationkey = n2.n_nationkey
//	    and ((n1.n_name='FRANCE' and n2.n_name='GERMANY') or
//	         (n1.n_name='GERMANY' and n2.n_name='FRANCE'))
//	    and l_shipdate between date '1995-01-01' and date '1996-12-31')
//	group by supp_nation, cust_nation, l_year order by 1, 2, 3
func q7(s *colstore.Store) *Result {
	lo, hi := Date("1995-01-01"), Date("1996-12-31")
	fr, frName, okFR := nationKeyCode(s, "FRANCE")
	de, deName, okDE := nationKeyCode(s, "GERMANY")
	if !okFR || !okDE {
		return &Result{Query: 7}
	}
	names := map[uint32]string{fr: frName, de: deName}
	_ = names

	ct := s.Table("customer")
	custNation := rowToNationCode(s, ct.Str("c_nationkey"))
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()
	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()
	ot := s.Table("orders")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lsk := lt.Str("l_suppkey")
	ship := lt.Int("l_shipdate")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))

	type gk struct {
		suppN, custN uint32
		year         int
	}
	volume := make(map[gk]float64)
	csLok, csLsk, csOCust := newCodeStream(lok), newCodeStream(lsk), newCodeStream(ocust)
	defer csLok.release()
	defer csLsk.release()
	defer csOCust.release()
	for row := 0; row < lt.Rows(); row++ {
		d := ship.Get(row)
		if d < lo || d > hi {
			continue
		}
		scRaw, _ := csLsk.code(row)
		sc := liSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		srow := suppRowByCode[sc]
		if srow < 0 {
			continue
		}
		sn := suppNation[srow]
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		ccRaw, _ := csOCust.code(int(orow))
		cc := oCustToCust[ccRaw]
		if cc < 0 {
			continue
		}
		crow := custRowByCode[cc]
		if crow < 0 {
			continue
		}
		cn := custNation[crow]
		pair := (sn == int64(fr) && cn == int64(de)) || (sn == int64(de) && cn == int64(fr))
		if !pair {
			continue
		}
		volume[gk{uint32(sn), uint32(cn), yearOf(d)}] += ext.Get(row) * (1 - disc.Get(row))
	}

	var rows [][]string
	for k, v := range volume {
		rows = append(rows, []string{names[k.suppN], names[k.custN], strconvItoa(k.year), f2(v)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool {
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return &Result{Query: 7, Columns: []string{"supp_nation", "cust_nation", "l_year", "revenue"}, Rows: rows}
}

// q8 — National Market Share: BRAZIL's share of ECONOMY ANODIZED STEEL
// revenue in AMERICA, by year.
//
// Reference SQL:
//
//	select o_year, sum(case when nation='BRAZIL' then volume else 0 end)/sum(volume)
//	from (select extract(year from o_orderdate) as o_year,
//	             l_extendedprice*(1-l_discount) as volume, n2.n_name as nation
//	      from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
//	      where p_partkey = l_partkey and s_suppkey = l_suppkey
//	        and l_orderkey = o_orderkey and o_custkey = c_custkey
//	        and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey
//	        and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey
//	        and o_orderdate between date '1995-01-01' and date '1996-12-31'
//	        and p_type = 'ECONOMY ANODIZED STEEL')
//	group by o_year order by o_year
func q8(s *colstore.Store) *Result {
	lo, hi := Date("1995-01-01"), Date("1996-12-31")
	amKeys, _ := keysOfNationsInRegion(s, "AMERICA")
	br, _, okBR := nationKeyCode(s, "BRAZIL")
	if !okBR {
		return &Result{Query: 8}
	}

	pt := s.Table("part")
	ptype := pt.Str("p_type")
	typeCode, typeFound := eqCode(ptype, "ECONOMY ANODIZED STEEL")
	partOK := make([]bool, pt.Rows())
	csPType := newCodeStream(ptype)
	defer csPType.release()
	for row := 0; row < pt.Rows(); row++ {
		code, _ := csPType.code(row)
		partOK[row] = typeFound && code == typeCode
	}
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	ct := s.Table("customer")
	custNation := rowToNationCode(s, ct.Str("c_nationkey"))
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()
	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()
	ot := s.Table("orders")
	odate := ot.Int("o_orderdate")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lpk := lt.Str("l_partkey")
	lsk := lt.Str("l_suppkey")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))

	total := make(map[int]float64)
	brazil := make(map[int]float64)
	csLok, csLpk, csLsk := newCodeStream(lok), newCodeStream(lpk), newCodeStream(lsk)
	csOCust := newCodeStream(ocust)
	defer csLok.release()
	defer csLpk.release()
	defer csLsk.release()
	defer csOCust.release()
	for row := 0; row < lt.Rows(); row++ {
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := partRowByCode[pc]
		if prow < 0 || !partOK[prow] {
			continue
		}
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		d := odate.Get(int(orow))
		if d < lo || d > hi {
			continue
		}
		ccRaw, _ := csOCust.code(int(orow))
		cc := oCustToCust[ccRaw]
		if cc < 0 {
			continue
		}
		crow := custRowByCode[cc]
		if crow < 0 {
			continue
		}
		cn := custNation[crow]
		if cn < 0 || !amKeys[uint32(cn)] {
			continue
		}
		scRaw, _ := csLsk.code(row)
		sc := liSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		srow := suppRowByCode[sc]
		if srow < 0 {
			continue
		}
		v := ext.Get(row) * (1 - disc.Get(row))
		y := yearOf(d)
		total[y] += v
		if suppNation[srow] == int64(br) {
			brazil[y] += v
		}
	}

	var rows [][]string
	for y, t := range total {
		share := 0.0
		if t > 0 {
			share = brazil[y] / t
		}
		rows = append(rows, []string{strconvItoa(y), f2(share)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return a[0] < b[0] })
	return &Result{Query: 8, Columns: []string{"o_year", "mkt_share"}, Rows: rows}
}

// q9 — Product Type Profit: profit of parts whose name contains "green",
// by supplier nation and year.
//
// Reference SQL:
//
//	select nation, o_year, sum(amount) from (
//	  select n_name as nation, extract(year from o_orderdate) as o_year,
//	         l_extendedprice*(1-l_discount) - ps_supplycost*l_quantity as amount
//	  from part, supplier, lineitem, partsupp, orders, nation
//	  where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
//	    and ps_partkey = l_partkey and p_partkey = l_partkey
//	    and o_orderkey = l_orderkey and s_nationkey = n_nationkey
//	    and p_name like '%green%')
//	group by nation, o_year order by nation, o_year desc
func q9(s *colstore.Store) *Result {
	pt := s.Table("part")
	pname := pt.Str("p_name")
	greenParts := pname.CodeSet(func(v string) bool { return strings.Contains(v, "green") })
	partOK := make([]bool, pt.Rows())
	csPName := newCodeStream(pname)
	defer csPName.release()
	for row := 0; row < pt.Rows(); row++ {
		code, _ := csPName.code(row)
		partOK[row] = greenParts[code]
	}
	partRowByCode := pt.Str("p_partkey").RowIndexByCode()

	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()
	nt := s.Table("nation")
	nationName := make(map[int64]string)
	csNK := newCodeStream(nt.Str("n_nationkey"))
	for row := 0; row < nt.Rows(); row++ {
		kc, _ := csNK.code(row)
		nationName[int64(kc)] = nt.Str("n_name").Get(row)
	}
	csNK.release()

	// ps_supplycost lookup per (part, supp) pair.
	pst := s.Table("partsupp")
	psPart := pst.Str("ps_partkey")
	psSupp := pst.Str("ps_suppkey")
	psCost := pst.Float("ps_supplycost")
	type pair struct{ p, s int64 }
	costOf := make(map[pair]float64, pst.Rows())
	psPartToPart := colstore.TranslateCodes(psPart, pt.Str("p_partkey"))
	psSuppToSupp := colstore.TranslateCodes(psSupp, st.Str("s_suppkey"))
	csPsPart, csPsSupp := newCodeStream(psPart), newCodeStream(psSupp)
	for row := 0; row < pst.Rows(); row++ {
		pcRaw, _ := csPsPart.code(row)
		scRaw, _ := csPsSupp.code(row)
		costOf[pair{psPartToPart[pcRaw], psSuppToSupp[scRaw]}] = psCost.Get(row)
	}
	csPsPart.release()
	csPsSupp.release()

	ot := s.Table("orders")
	odate := ot.Int("o_orderdate")
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lpk := lt.Str("l_partkey")
	lsk := lt.Str("l_suppkey")
	qty := lt.Float("l_quantity")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))
	liPartToPart := colstore.TranslateCodes(lpk, pt.Str("p_partkey"))
	liSuppToSupp := colstore.TranslateCodes(lsk, st.Str("s_suppkey"))

	type gk struct {
		nation int64
		year   int
	}
	profit := make(map[gk]float64)
	csLok, csLpk, csLsk := newCodeStream(lok), newCodeStream(lpk), newCodeStream(lsk)
	defer csLok.release()
	defer csLpk.release()
	defer csLsk.release()
	for row := 0; row < lt.Rows(); row++ {
		pcRaw, _ := csLpk.code(row)
		pc := liPartToPart[pcRaw]
		if pc < 0 {
			continue
		}
		prow := partRowByCode[pc]
		if prow < 0 || !partOK[prow] {
			continue
		}
		scRaw, _ := csLsk.code(row)
		sc := liSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		srow := suppRowByCode[sc]
		if srow < 0 {
			continue
		}
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		amount := ext.Get(row)*(1-disc.Get(row)) - costOf[pair{pc, sc}]*qty.Get(row)
		profit[gk{suppNation[srow], yearOf(odate.Get(int(orow)))}] += amount
	}

	var rows [][]string
	for k, v := range profit {
		rows = append(rows, []string{nationName[k.nation], strconvItoa(k.year), f2(v)})
	}
	rows = sortRows(rows, 0, func(a, b []string) bool {
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] > b[1]
	})
	return &Result{Query: 9, Columns: []string{"nation", "o_year", "sum_profit"}, Rows: rows}
}

// q10 — Returned Item Reporting: top 20 customers by lost revenue in 1993Q4.
//
// Reference SQL:
//
//	select c_custkey, c_name, sum(l_extendedprice*(1-l_discount)) as revenue,
//	       c_acctbal, n_name, c_address, c_phone, c_comment
//	from customer, orders, lineitem, nation
//	where c_custkey = o_custkey and l_orderkey = o_orderkey
//	  and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01'
//	  and l_returnflag = 'R' and c_nationkey = n_nationkey
//	group by ... order by revenue desc limit 20
func q10(s *colstore.Store) *Result {
	lo, hi := Date("1993-10-01"), Date("1994-01-01")
	ct := s.Table("customer")
	custRowByCode := ct.Str("c_custkey").RowIndexByCode()
	custNation := rowToNationCode(s, ct.Str("c_nationkey"))
	nt := s.Table("nation")
	nationName := make(map[int64]string)
	csNK := newCodeStream(nt.Str("n_nationkey"))
	for row := 0; row < nt.Rows(); row++ {
		kc, _ := csNK.code(row)
		nationName[int64(kc)] = nt.Str("n_name").Get(row)
	}
	csNK.release()

	ot := s.Table("orders")
	odate := ot.Int("o_orderdate")
	ocust := ot.Str("o_custkey")
	oCustToCust := colstore.TranslateCodes(ocust, ct.Str("c_custkey"))
	orderRowByCode := ot.Str("o_orderkey").RowIndexByCode()

	lt := s.Table("lineitem")
	lok := lt.Str("l_orderkey")
	lret := lt.Str("l_returnflag")
	ext := lt.Float("l_extendedprice")
	disc := lt.Float("l_discount")
	retCode, retFound := eqCode(lret, "R")
	liOrderToOrder := colstore.TranslateCodes(lok, ot.Str("o_orderkey"))

	revenue := make(map[int64]float64) // by c_custkey code
	csLok, csLret, csOCust := newCodeStream(lok), newCodeStream(lret), newCodeStream(ocust)
	defer csLok.release()
	defer csLret.release()
	defer csOCust.release()
	for row := 0; row < lt.Rows(); row++ {
		rc, _ := csLret.code(row)
		if !retFound || rc != retCode {
			continue
		}
		lcRaw, _ := csLok.code(row)
		oc := liOrderToOrder[lcRaw]
		if oc < 0 {
			continue
		}
		orow := orderRowByCode[oc]
		if orow < 0 {
			continue
		}
		if d := odate.Get(int(orow)); d < lo || d >= hi {
			continue
		}
		ccRaw, _ := csOCust.code(int(orow))
		cc := oCustToCust[ccRaw]
		if cc < 0 {
			continue
		}
		revenue[cc] += ext.Get(row) * (1 - disc.Get(row))
	}

	var rows [][]string
	for cc, rev := range revenue {
		crow := int(custRowByCode[cc])
		rows = append(rows, []string{
			ct.Str("c_custkey").Extract(uint32(cc)),
			ct.Str("c_name").Get(crow),
			f2(rev),
			f2(ct.Float("c_acctbal").Get(crow)),
			nationName[custNation[crow]],
			ct.Str("c_address").Get(crow),
			ct.Str("c_phone").Get(crow),
			ct.Str("c_comment").Get(crow),
		})
	}
	rows = sortRows(rows, 20, func(a, b []string) bool { return parseF(a[2]) > parseF(b[2]) })
	return &Result{Query: 10, Columns: []string{
		"c_custkey", "c_name", "revenue", "c_acctbal", "n_name", "c_address",
		"c_phone", "c_comment"}, Rows: rows}
}

// q11 — Important Stock Identification: GERMANY's part stock values above
// a fraction of the total.
//
// Reference SQL:
//
//	select ps_partkey, sum(ps_supplycost*ps_availqty) as value
//	from partsupp, supplier, nation
//	where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
//	  and n_name = 'GERMANY'
//	group by ps_partkey
//	having sum(ps_supplycost*ps_availqty) >
//	  (select sum(ps_supplycost*ps_availqty) * 0.0001 from ... same joins ...)
//	order by value desc
func q11(s *colstore.Store) *Result {
	de, _, okDE := nationKeyCode(s, "GERMANY")
	if !okDE {
		return &Result{Query: 11}
	}
	st := s.Table("supplier")
	suppNation := rowToNationCode(s, st.Str("s_nationkey"))
	suppRowByCode := st.Str("s_suppkey").RowIndexByCode()

	pst := s.Table("partsupp")
	psPart := pst.Str("ps_partkey")
	psSupp := pst.Str("ps_suppkey")
	qty := pst.Int("ps_availqty")
	cost := pst.Float("ps_supplycost")
	psSuppToSupp := colstore.TranslateCodes(psSupp, st.Str("s_suppkey"))

	value := make(map[uint32]float64) // by ps_partkey code
	var total float64
	csPsPart, csPsSupp := newCodeStream(psPart), newCodeStream(psSupp)
	defer csPsPart.release()
	defer csPsSupp.release()
	for row := 0; row < pst.Rows(); row++ {
		scRaw, _ := csPsSupp.code(row)
		sc := psSuppToSupp[scRaw]
		if sc < 0 {
			continue
		}
		srow := suppRowByCode[sc]
		if srow < 0 || suppNation[srow] != int64(de) {
			continue
		}
		pc, _ := csPsPart.code(row)
		v := cost.Get(row) * float64(qty.Get(row))
		value[pc] += v
		total += v
	}

	// The spec's fraction is 0.0001/SF; with our generated sizes the
	// equivalent cut is a constant fraction of the total.
	threshold := total * 0.0001
	var rows [][]string
	for pc, v := range value {
		if v > threshold {
			rows = append(rows, []string{psPart.Extract(pc), f2(v)})
		}
	}
	rows = sortRows(rows, 0, func(a, b []string) bool { return parseF(a[1]) > parseF(b[1]) })
	return &Result{Query: 11, Columns: []string{"ps_partkey", "value"}, Rows: rows}
}

package hutucker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"strdict/internal/huffman"
)

func corpus(strs ...string) [][]byte {
	parts := make([][]byte, len(strs))
	for i, s := range strs {
		parts[i] = []byte(s)
	}
	return parts
}

func TestRoundTrip(t *testing.T) {
	parts := corpus("mercury", "venus", "earth", "mars", "", "jupiter")
	c := Train(parts)
	for _, p := range parts {
		enc := c.Encode(nil, p)
		if dec := c.Decode(nil, enc); !bytes.Equal(dec, p) {
			t.Errorf("round trip %q -> %q", p, dec)
		}
	}
}

func TestSingleSymbol(t *testing.T) {
	c := Train(corpus("bbbb"))
	enc := c.Encode(nil, []byte("bb"))
	if dec := c.Decode(nil, enc); string(dec) != "bb" {
		t.Fatalf("decoded %q", dec)
	}
}

// optimalAlphabeticCost computes, by dynamic programming, the minimum
// weighted path length of any alphabetic binary tree over the given leaf
// weights. Hu-Tucker must match it exactly.
func optimalAlphabeticCost(w []uint64) uint64 {
	n := len(w)
	if n == 1 {
		return w[0] // depth 1 by our convention for a single symbol
	}
	prefix := make([]uint64, n+1)
	for i, x := range w {
		prefix[i+1] = prefix[i] + x
	}
	sum := func(i, j int) uint64 { return prefix[j+1] - prefix[i] }
	const inf = ^uint64(0)
	cost := make([][]uint64, n)
	for i := range cost {
		cost[i] = make([]uint64, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			best := inf
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j]
				if c < best {
					best = c
				}
			}
			cost[i][j] = best + sum(i, j)
		}
	}
	return cost[0][n-1]
}

func TestOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(11)
		weights := make([]uint64, n)
		for i := range weights {
			if trial%3 == 0 {
				weights[i] = 1 // all-ties case stresses tie-breaking
			} else {
				weights[i] = uint64(rng.Intn(50) + 1)
			}
		}
		var freq [NumSymbols]uint64
		for i, w := range weights {
			freq[i] = w
		}
		c := fromFrequencies(&freq)
		var got uint64
		for i, w := range weights {
			got += w * uint64(c.lenOf[i])
		}
		want := optimalAlphabeticCost(weights)
		if got != want {
			t.Fatalf("trial %d weights %v: cost %d, optimal %d", trial, weights, got, want)
		}
	}
}

func TestLargerOptimalityAgainstHuffmanBound(t *testing.T) {
	// An alphabetic code can never beat the unrestricted Huffman code;
	// check cost sanity on a realistic distribution.
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 20000)
	for i := range data {
		data[i] = byte('a' + rng.Intn(26))
	}
	c := Train([][]byte{data})
	for b := byte('a'); b <= 'z'; b++ {
		if c.CodeLen(b) == 0 {
			t.Fatalf("letter %c got no code", b)
		}
		if c.CodeLen(b) > 12 {
			t.Fatalf("letter %c code too long: %d", b, c.CodeLen(b))
		}
	}
}

func TestOrderPreservation(t *testing.T) {
	train := [][]byte{[]byte("abcdefghijklmnopqrstuvwxyz0123456789 -_/")}
	c := Train(train)
	enc := func(s string) []byte { return c.Encode(nil, []byte(s)) }
	cases := [][2]string{
		{"abc", "abd"}, {"abc", "abcd"}, {"", "a"}, {"mango", "mangos"},
		{"a", "b"}, {"zz", "zza"}, {"0", "1"}, {"abc-", "abc/"},
	}
	for _, cse := range cases {
		lo, hi := enc(cse[0]), enc(cse[1])
		if bytes.Compare(lo, hi) >= 0 {
			t.Errorf("order violated: enc(%q) >= enc(%q)", cse[0], cse[1])
		}
	}
}

func TestOrderPreservationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := make([]byte, 4096)
	rng.Read(train)
	c := Train([][]byte{train})
	f := func(a, b []byte) bool {
		ea, eb := c.Encode(nil, a), c.Encode(nil, b)
		cmpOrig := bytes.Compare(a, b)
		cmpEnc := bytes.Compare(ea, eb)
		if cmpOrig == 0 {
			return cmpEnc == 0
		}
		// Byte-aligned padding with zeros cannot flip the order because EOS
		// is the lexicographically smallest code, but equal-prefix encodings
		// of unequal strings can only differ after the shorter one's EOS.
		return (cmpOrig < 0) == (cmpEnc < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPrefixFree(t *testing.T) {
	parts := corpus("hello world", "here be dragons", "12345")
	c := Train(parts)
	type cw struct {
		code uint64
		l    int
	}
	var codes []cw
	for s := 0; s < NumSymbols; s++ {
		if c.lenOf[s] > 0 {
			codes = append(codes, cw{c.codeOf[s], int(c.lenOf[s])})
		}
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.l <= b.l && a.code == b.code>>uint(b.l-a.l) {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.code, a.l, b.code, b.l)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := make([]byte, 8192)
	rng.Read(train)
	c := Train([][]byte{train})
	f := func(s []byte) bool {
		return bytes.Equal(c.Decode(nil, c.Encode(nil, s)), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	text := []byte("PROMO BURNISHED COPPER anti-dependencies 1995-03-15")
	c := Train([][]byte{text})
	enc := c.Encode(nil, text)
	buf := make([]byte, 0, len(text))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(buf[:0], enc)
	}
}

// TestAlphabeticNeverBeatsHuffman: the alphabetic-order restriction can only
// cost bits, never save them, relative to unrestricted Huffman codes.
func TestAlphabeticNeverBeatsHuffman(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		parts := make([][]byte, 1+rng.Intn(20))
		for i := range parts {
			b := make([]byte, rng.Intn(100))
			for j := range b {
				b[j] = byte('a' + rng.Intn(10+trial%16))
			}
			parts[i] = b
		}
		ht := Train(parts)
		hf := huffman.Train(parts)

		var htBits, hfBits int
		for _, p := range parts {
			htBits += ht.EOSLen()
			hfBits += hf.CodeLen(huffman.EOS)
			for _, b := range p {
				htBits += ht.CodeLen(b)
				hfBits += hf.CodeLen(int(b))
			}
		}
		if htBits < hfBits {
			t.Fatalf("trial %d: hu-tucker (%d bits) beat huffman (%d bits)", trial, htBits, hfBits)
		}
	}
}

// Package hutucker implements Hu-Tucker coding: optimal order-preserving
// (alphabetic) binary prefix codes.
//
// It realizes the order-preserving branch of the paper's `hu` string
// compression scheme. Because code words are assigned by an alphabetic tree,
// the binary order of two encoded strings equals the lexicographic order of
// the original strings, which lets order-based operations such as locate work
// directly on compressed data. A reserved end-of-string symbol that sorts
// below every byte keeps the order correct across strings of different
// lengths ("abc" < "abcd") and makes encoded strings self-delimiting.
package hutucker

import (
	"fmt"

	"strdict/internal/bits"
)

// NumSymbols is the alphabet size: EOS plus 256 byte values.
const NumSymbols = 257

// EOS is the end-of-string symbol. In the alphabetic order used here EOS is
// symbol 0 and byte b is symbol b+1, so EOS sorts below every byte.
const EOS = 0

// symOf maps a byte to its symbol number.
func symOf(b byte) int { return int(b) + 1 }

// Codec holds a trained Hu-Tucker code.
type Codec struct {
	codeOf [NumSymbols]uint64
	lenOf  [NumSymbols]uint8

	// Decoding tree: node 0 is the root; negative entries are ^symbol.
	left, right []int32

	// One-shot decode table: the next lutBits bits index an entry holding
	// sym<<8 | codeLen; codeLen 0 escapes to the tree walk.
	lut [1 << lutBits]uint32
}

// lutBits sizes the fast decode table (4 KiB).
const lutBits = 10

// Train builds a codec from the corpus parts. Each part contributes its
// bytes, plus one EOS occurrence per part. Symbols that never occur are
// excluded from the tree (they cannot be encoded later).
func Train(parts [][]byte) *Codec {
	var freq [NumSymbols]uint64
	for _, p := range parts {
		for _, b := range p {
			freq[symOf(b)]++
		}
		freq[EOS]++
	}
	if freq[EOS] == 0 {
		freq[EOS] = 1
	}
	return fromFrequencies(&freq)
}

// fromFrequencies runs the three phases of the Hu-Tucker algorithm on the
// symbols with non-zero frequency, in alphabetic order.
func fromFrequencies(freq *[NumSymbols]uint64) *Codec {
	c := &Codec{}
	var syms []int
	var weights []uint64
	for s := 0; s < NumSymbols; s++ {
		if freq[s] > 0 {
			syms = append(syms, s)
			weights = append(weights, freq[s])
		}
	}
	switch len(syms) {
	case 0:
		return c
	case 1:
		c.lenOf[syms[0]] = 1
		c.codeOf[syms[0]] = 0
		c.left = []int32{^int32(0)}  // degenerate: both branches decode the
		c.right = []int32{^int32(0)} // single symbol (placeholder fixed below)
		c.left[0] = ^int32(syms[0])
		c.right[0] = ^int32(syms[0])
		c.buildLUT()
		return c
	}

	levels := combineAndLevel(weights)
	c.reconstruct(syms, levels)
	return c
}

// combineAndLevel is phases 1 and 2: combine compatible pairs of minimal
// weight until one node remains, then return the depth of each original leaf.
type htNode struct {
	weight      uint64
	leaf        bool // an original terminal node
	left, right int  // arena children (-1 for leaves)
	sym         int  // original position for leaves
}

func combineAndLevel(weights []uint64) []int {
	n := len(weights)
	arena := make([]htNode, 0, 2*n)
	work := make([]int, n) // indices into arena, in alphabetic order
	for i, w := range weights {
		arena = append(arena, htNode{weight: w, leaf: true, left: -1, right: -1, sym: i})
		work[i] = i
	}

	for len(work) > 1 {
		// Find the compatible pair (i,j), i<j, with minimal weight sum.
		// Nodes are compatible if no original leaf lies strictly between
		// them. Ties: smallest i, then smallest j.
		bi, bj := -1, -1
		var best uint64
		for i := 0; i < len(work)-1; i++ {
			wi := arena[work[i]].weight
			for j := i + 1; j < len(work); j++ {
				sum := wi + arena[work[j]].weight
				if bi < 0 || sum < best {
					best, bi, bj = sum, i, j
				}
				if arena[work[j]].leaf {
					break // a leaf at j blocks pairs (i, j') for j' > j
				}
			}
		}
		arena = append(arena, htNode{
			weight: best,
			left:   work[bi], right: work[bj],
			sym: -1,
		})
		work[bi] = len(arena) - 1
		work = append(work[:bj], work[bj+1:]...)
	}

	levels := make([]int, n)
	var walk func(node, depth int)
	walk = func(node, depth int) {
		nd := arena[node]
		if nd.leaf {
			levels[nd.sym] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(work[0], 0)
	return levels
}

// reconstruct is phase 3: rebuild the alphabetic tree from leaf levels with
// the classic stack method, then assign codes and decoding tables.
func (c *Codec) reconstruct(syms []int, levels []int) {
	type entry struct {
		node  int32
		level int
	}
	// Tree arena; leaves are encoded as ^symbol directly in parent slots.
	var stack []entry
	newInternal := func(l, r int32) int32 {
		c.left = append(c.left, l)
		c.right = append(c.right, r)
		return int32(len(c.left) - 1)
	}
	for i, s := range syms {
		stack = append(stack, entry{node: ^int32(s), level: levels[i]})
		for len(stack) >= 2 && stack[len(stack)-1].level == stack[len(stack)-2].level {
			a := stack[len(stack)-2]
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-2]
			stack = append(stack, entry{node: newInternal(a.node, b.node), level: a.level - 1})
		}
	}
	if len(stack) != 1 || stack[0].level != 0 {
		panic("hutucker: invalid level sequence during reconstruction")
	}
	root := stack[0].node
	if root >= 0 && root != int32(len(c.left)-1) {
		// Root should be the last internal node created; re-rooting is not
		// needed because we always decode starting from it.
		panic("hutucker: unexpected root")
	}
	// Move the root to index 0 by convention: swap arena entries.
	ri := int(root)
	last := len(c.left) - 1
	if ri != last {
		panic("hutucker: root must be final node")
	}
	c.rootIndexToFront()

	// Assign codes by walking the tree.
	var assign func(node int32, code uint64, depth uint8)
	assign = func(node int32, code uint64, depth uint8) {
		if node < 0 {
			s := int(^node)
			c.codeOf[s] = code
			c.lenOf[s] = depth
			return
		}
		assign(c.left[node], code<<1, depth+1)
		assign(c.right[node], code<<1|1, depth+1)
	}
	assign(0, 0, 0)
	c.buildLUT()
}

// buildLUT fills the one-shot decode table from the assigned codes.
func (c *Codec) buildLUT() {
	for i := range c.lut {
		c.lut[i] = 0
	}
	for s := 0; s < NumSymbols; s++ {
		l := uint(c.lenOf[s])
		if l == 0 || l > lutBits {
			continue
		}
		base := c.codeOf[s] << (lutBits - l)
		span := uint64(1) << (lutBits - l)
		entry := uint32(s)<<8 | uint32(l)
		for i := uint64(0); i < span; i++ {
			c.lut[base+i] = entry
		}
	}
}

// rootIndexToFront swaps the final (root) node with index 0 and patches
// child references, so decoding can always start at node 0.
func (c *Codec) rootIndexToFront() {
	last := int32(len(c.left) - 1)
	if last == 0 {
		return
	}
	c.left[0], c.left[last] = c.left[last], c.left[0]
	c.right[0], c.right[last] = c.right[last], c.right[0]
	for i := range c.left {
		switch c.left[i] {
		case 0:
			c.left[i] = last
		case last:
			c.left[i] = 0
		}
		switch c.right[i] {
		case 0:
			c.right[i] = last
		case last:
			c.right[i] = 0
		}
	}
}

// CodeLen returns the code length in bits for byte b, or 0 if b was not in
// the training corpus.
func (c *Codec) CodeLen(b byte) int { return int(c.lenOf[symOf(b)]) }

// EOSLen returns the code length of the end-of-string symbol.
func (c *Codec) EOSLen() int { return int(c.lenOf[EOS]) }

// Code returns the code word and length for symbol s (use symOf/EOS).
func (c *Codec) code(s int) (uint64, uint) {
	return c.codeOf[s], uint(c.lenOf[s])
}

// Encode appends the byte-aligned encoded form of src (EOS-terminated) to
// dst.
func (c *Codec) Encode(dst []byte, src []byte) []byte {
	var w bits.Writer
	c.EncodeTo(&w, src)
	w.Align()
	return append(dst, w.Bytes()...)
}

// EncodeTo writes the unaligned code sequence for src followed by EOS.
func (c *Codec) EncodeTo(w *bits.Writer, src []byte) {
	for _, b := range src {
		v, l := c.code(symOf(b))
		if l == 0 {
			panic("hutucker: encoding symbol absent from training corpus")
		}
		w.WriteBits(v, l)
	}
	v, l := c.code(EOS)
	w.WriteBits(v, l)
}

// Decode appends the decoded string to dst, reading codes until EOS.
func (c *Codec) Decode(dst []byte, enc []byte) []byte {
	return c.DecodeFrom(dst, bits.NewReader(enc))
}

// DecodeFrom decodes one EOS-terminated string from r, appending to dst.
func (c *Codec) DecodeFrom(dst []byte, r *bits.Reader) []byte {
	if len(c.left) == 0 {
		return dst
	}
	for {
		var s int
		if e := c.lut[r.PeekBits(lutBits)]; e&0xff != 0 {
			r.Skip(uint(e & 0xff))
			s = int(e >> 8)
		} else {
			node := int32(0)
			for node >= 0 {
				if r.ReadBit() == 0 {
					node = c.left[node]
				} else {
					node = c.right[node]
				}
			}
			s = int(^node)
		}
		if s == EOS {
			return dst
		}
		dst = append(dst, byte(s-1))
	}
}

// TableBytes reports the in-memory footprint of the codec's tables.
func (c *Codec) TableBytes() uint64 {
	return NumSymbols*8 + NumSymbols + uint64(len(c.left))*8
}

// Name identifies the scheme.
func (c *Codec) Name() string { return "hu" }

// CanEncode reports whether every character of src has a code.
func (c *Codec) CanEncode(src []byte) bool {
	for _, b := range src {
		if c.lenOf[symOf(b)] == 0 {
			return false
		}
	}
	return true
}

// CodeLengths returns the per-symbol code lengths, the codec's serialized
// form: an alphabetic code is fully determined by them via the phase-3
// reconstruction.
func (c *Codec) CodeLengths() []uint8 {
	out := make([]uint8, NumSymbols)
	copy(out, c.lenOf[:])
	return out
}

// FromCodeLengths rebuilds a codec from serialized code lengths, validating
// that they describe a feasible alphabetic prefix code.
func FromCodeLengths(lens []uint8) (c *Codec, err error) {
	if len(lens) != NumSymbols {
		return nil, fmt.Errorf("hutucker: %d code lengths, want %d", len(lens), NumSymbols)
	}
	var syms []int
	var levels []int
	for s, l := range lens {
		if l > 0 {
			syms = append(syms, s)
			levels = append(levels, int(l))
		}
	}
	switch len(syms) {
	case 0:
		return &Codec{}, nil
	case 1:
		if levels[0] != 1 {
			return nil, fmt.Errorf("hutucker: single symbol must have length 1")
		}
		var freq [NumSymbols]uint64
		freq[syms[0]] = 1
		return fromFrequencies(&freq), nil
	}
	// The stack reconstruction rejects infeasible level sequences by
	// panicking; convert that to an error at this trust boundary.
	defer func() {
		if recover() != nil {
			c, err = nil, fmt.Errorf("hutucker: code lengths do not form an alphabetic tree")
		}
	}()
	c = &Codec{}
	c.reconstruct(syms, levels)
	return c, nil
}

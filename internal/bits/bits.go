// Package bits provides bit-granular I/O and fixed-width packed integer
// arrays. It is the substrate shared by every string codec in this module
// (Huffman, Hu-Tucker, bit compression, n-gram, Re-Pair) and by the
// bit-packed column vectors of the column store.
//
// All multi-bit values are written and read MSB-first, so that the
// lexicographic order of bit streams matches the numeric order of the
// values written — a property the order-preserving codecs rely on.
package bits

import "math/bits"

// Width returns the number of bits required to represent v, with a minimum
// of 1 (a zero-width integer cannot be stored in a packed array).
func Width(v uint64) uint {
	if v == 0 {
		return 1
	}
	return uint(bits.Len64(v))
}

// Writer accumulates a bit stream MSB-first.
//
// The zero value is an empty writer ready for use.
type Writer struct {
	buf  []byte
	nbit uint64 // total bits written
}

// WriteBits appends the n low-order bits of v, most significant first.
// n must be at most 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("bits: WriteBits width > 64")
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		used := uint(w.nbit & 7)
		if used == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - used
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v >> (n - take))
		w.buf[len(w.buf)-1] |= chunk << (free - take)
		w.nbit += uint64(take)
		n -= take
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// Align pads the stream with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if r := uint(w.nbit & 7); r != 0 {
		w.WriteBits(0, 8-r)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.nbit }

// Bytes returns the underlying buffer. The final byte is zero-padded.
// The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to empty, retaining the buffer's capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf []byte
	pos uint64 // bit position
}

// NewReader returns a Reader over buf starting at bit 0.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// NewReaderAt returns a Reader over buf starting at the given bit offset.
func NewReaderAt(buf []byte, bitOffset uint64) *Reader {
	return &Reader{buf: buf, pos: bitOffset}
}

// ReadBits reads the next n bits as an unsigned integer, MSB-first.
// Reading past the end of the buffer yields zero bits.
func (r *Reader) ReadBits(n uint) uint64 {
	if n > 64 {
		panic("bits: ReadBits width > 64")
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos >> 3
		if byteIdx >= uint64(len(r.buf)) {
			v <<= n
			r.pos += uint64(n)
			return v
		}
		used := uint(r.pos & 7)
		avail := 8 - used
		take := n
		if take > avail {
			take = avail
		}
		b := r.buf[byteIdx] >> (avail - take)
		b &= (1 << take) - 1
		v = v<<take | uint64(b)
		r.pos += uint64(take)
		n -= take
	}
	return v
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() uint {
	return uint(r.ReadBits(1))
}

// Pos returns the current bit position.
func (r *Reader) Pos() uint64 { return r.pos }

// Seek sets the current bit position.
func (r *Reader) Seek(bitOffset uint64) { r.pos = bitOffset }

// Remaining reports the number of bits left before the end of the buffer.
// It returns 0 when the position is at or past the end.
func (r *Reader) Remaining() uint64 {
	total := uint64(len(r.buf)) * 8
	if r.pos >= total {
		return 0
	}
	return total - r.pos
}

// PeekBits reads the next n bits without advancing the position.
// For n <= 24 it is a branch-light four-byte gather, sized for the decode
// lookup tables of the prefix-code codecs.
func (r *Reader) PeekBits(n uint) uint64 {
	if n <= 24 {
		byteIdx := r.pos >> 3
		off := uint(r.pos & 7)
		var v uint64
		buf := r.buf
		m := uint64(len(buf))
		for k := uint64(0); k < 4; k++ {
			v <<= 8
			if byteIdx+k < m {
				v |= uint64(buf[byteIdx+k])
			}
		}
		return (v >> (32 - off - n)) & (1<<n - 1)
	}
	pos := r.pos
	v := r.ReadBits(n)
	r.pos = pos
	return v
}

// Skip advances the position by n bits.
func (r *Reader) Skip(n uint) { r.pos += uint64(n) }

var (
	errTruncated = errorString("bits: truncated packed array")
	errCorrupt   = errorString("bits: corrupt packed array header")
)

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

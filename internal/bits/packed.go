package bits

// PackedArray stores n unsigned integers of a fixed bit width contiguously.
// It backs the pointer/offset arrays of the dictionary formats and the
// code vectors of the column store, where the width is chosen as
// Width(maxValue) to minimize space.
type PackedArray struct {
	words []uint64
	width uint
	n     int
}

// NewPackedArray returns an array of n zero entries of the given width.
// width must be in [1, 64].
func NewPackedArray(n int, width uint) *PackedArray {
	if width == 0 || width > 64 {
		panic("bits: packed array width out of range [1,64]")
	}
	nbits := uint64(n) * uint64(width)
	return &PackedArray{
		words: make([]uint64, (nbits+63)/64),
		width: width,
		n:     n,
	}
}

// PackSlice packs values into a new array whose width is the minimum
// required for the largest value.
func PackSlice(values []uint64) *PackedArray {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	pa := NewPackedArray(len(values), Width(max))
	for i, v := range values {
		pa.Set(i, v)
	}
	return pa
}

// Len returns the number of entries.
func (p *PackedArray) Len() int { return p.n }

// Width returns the per-entry bit width.
func (p *PackedArray) Width() uint { return p.width }

// Get returns entry i.
func (p *PackedArray) Get(i int) uint64 {
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos >> 6
	off := uint(bitPos & 63)
	v := p.words[word] >> off
	if off+p.width > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	if p.width < 64 {
		v &= (1 << p.width) - 1
	}
	return v
}

// Set stores v (truncated to the array width) at entry i.
func (p *PackedArray) Set(i int, v uint64) {
	if p.width < 64 {
		v &= (1 << p.width) - 1
	}
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos >> 6
	off := uint(bitPos & 63)
	mask := ^uint64(0)
	if p.width < 64 {
		mask = (1 << p.width) - 1
	}
	p.words[word] = p.words[word]&^(mask<<off) | v<<off
	if off+p.width > 64 {
		spill := off + p.width - 64
		hiMask := uint64(1)<<spill - 1
		p.words[word+1] = p.words[word+1]&^hiMask | v>>(64-off)
	}
}

// Bytes returns the memory footprint of the packed data in bytes.
func (p *PackedArray) Bytes() uint64 {
	return uint64(len(p.words)) * 8
}

// AppendBinary serializes the packed array: width (1 byte), entry count
// (8 bytes little-endian), then the raw words (8 bytes each).
func (p *PackedArray) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(p.width))
	var tmp [8]byte
	putU64 := func(v uint64) {
		for i := range tmp {
			tmp[i] = byte(v >> (8 * i))
		}
		dst = append(dst, tmp[:]...)
	}
	putU64(uint64(p.n))
	for _, w := range p.words {
		putU64(w)
	}
	return dst
}

// UnmarshalPackedArray parses an array serialized by AppendBinary and
// returns it together with the number of bytes consumed.
func UnmarshalPackedArray(b []byte) (*PackedArray, int, error) {
	if len(b) < 9 {
		return nil, 0, errTruncated
	}
	width := uint(b[0])
	if width == 0 || width > 64 {
		return nil, 0, errCorrupt
	}
	getU64 := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[off+i]) << (8 * i)
		}
		return v
	}
	n := getU64(1)
	const maxEntries = 1 << 40 // 1T entries: far beyond anything real
	if n > maxEntries {
		return nil, 0, errCorrupt
	}
	words := (n*uint64(width) + 63) / 64
	need := 9 + int(words)*8
	if len(b) < need {
		return nil, 0, errTruncated
	}
	p := &PackedArray{width: width, n: int(n), words: make([]uint64, words)}
	for i := range p.words {
		p.words[i] = getU64(9 + i*8)
	}
	return p, need, nil
}

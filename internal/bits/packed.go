package bits

import "math/bits"

// PackedArray stores n unsigned integers of a fixed bit width contiguously.
// It backs the pointer/offset arrays of the dictionary formats and the
// code vectors of the column store, where the width is chosen as
// Width(maxValue) to minimize space.
type PackedArray struct {
	words []uint64
	width uint
	n     int
}

// NewPackedArray returns an array of n zero entries of the given width.
// width must be in [1, 64].
func NewPackedArray(n int, width uint) *PackedArray {
	if width == 0 || width > 64 {
		panic("bits: packed array width out of range [1,64]")
	}
	nbits := uint64(n) * uint64(width)
	return &PackedArray{
		words: make([]uint64, (nbits+63)/64),
		width: width,
		n:     n,
	}
}

// PackSlice packs values into a new array whose width is the minimum
// required for the largest value.
func PackSlice(values []uint64) *PackedArray {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	pa := NewPackedArray(len(values), Width(max))
	for i, v := range values {
		pa.Set(i, v)
	}
	return pa
}

// Len returns the number of entries.
func (p *PackedArray) Len() int { return p.n }

// Width returns the per-entry bit width.
func (p *PackedArray) Width() uint { return p.width }

// Get returns entry i.
func (p *PackedArray) Get(i int) uint64 {
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos >> 6
	off := uint(bitPos & 63)
	v := p.words[word] >> off
	if off+p.width > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	if p.width < 64 {
		v &= (1 << p.width) - 1
	}
	return v
}

// Set stores v (truncated to the array width) at entry i.
func (p *PackedArray) Set(i int, v uint64) {
	if p.width < 64 {
		v &= (1 << p.width) - 1
	}
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos >> 6
	off := uint(bitPos & 63)
	mask := ^uint64(0)
	if p.width < 64 {
		mask = (1 << p.width) - 1
	}
	p.words[word] = p.words[word]&^(mask<<off) | v<<off
	if off+p.width > 64 {
		spill := off + p.width - 64
		hiMask := uint64(1)<<spill - 1
		p.words[word+1] = p.words[word+1]&^hiMask | v>>(64-off)
	}
}

// Bytes returns the memory footprint of the packed data in bytes.
func (p *PackedArray) Bytes() uint64 {
	return uint64(len(p.words)) * 8
}

// AppendBinary serializes the packed array: width (1 byte), entry count
// (8 bytes little-endian), then the raw words (8 bytes each).
func (p *PackedArray) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(p.width))
	var tmp [8]byte
	putU64 := func(v uint64) {
		for i := range tmp {
			tmp[i] = byte(v >> (8 * i))
		}
		dst = append(dst, tmp[:]...)
	}
	putU64(uint64(p.n))
	for _, w := range p.words {
		putU64(w)
	}
	return dst
}

// fieldMask returns the mask selecting the low width bits.
func fieldMask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<width - 1
}

// checkRange panics unless [start, start+n) is a valid entry range. n == 0
// ranges are valid at any start within [0, Len].
func (p *PackedArray) checkRange(start, n int) {
	if start < 0 || n < 0 || start > p.n-n {
		panic("bits: packed array range out of bounds")
	}
}

// AppendRange appends entries [start, start+n) to dst and returns the
// extended slice. It is the bulk form of Get: the word arithmetic stays in
// registers across entries instead of being re-derived per call, so batch
// unpacking (64-256 entries at a time) runs several times faster than a
// Get-per-element loop.
func (p *PackedArray) AppendRange(dst []uint64, start, n int) []uint64 {
	p.checkRange(start, n)
	if n == 0 {
		return dst
	}
	width := p.width
	mask := fieldMask(width)
	words := p.words
	bitPos := uint64(start) * uint64(width)
	end := bitPos + uint64(n)*uint64(width)
	for ; bitPos < end; bitPos += uint64(width) {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := words[word] >> off
		if off+width > 64 {
			v |= words[word+1] << (64 - off)
		}
		dst = append(dst, v&mask)
	}
	return dst
}

// swarAligned reports whether the word-at-a-time match kernels apply: the
// width must tile 64-bit words exactly, so that no entry straddles a word
// boundary and a whole word of entries can be tested with a handful of ALU
// ops (SWAR — SIMD within a register).
func (p *PackedArray) swarAligned() bool { return 64%p.width == 0 }

// swarConsts builds the per-word SWAR constants for the array's width:
// code broadcast to every field, the per-field high bit H, and the
// per-field low mask L = H-1.
func (p *PackedArray) swarConsts(code uint64) (bcast, h, l uint64) {
	w := p.width
	hbit := uint64(1) << (w - 1)
	lmask := hbit - 1
	for sh := uint(0); sh < 64; sh += w {
		bcast |= code << sh
		h |= hbit << sh
		l |= lmask << sh
	}
	return bcast, h, l
}

// swarFieldClip clears the match bits of fields outside the within-word
// field range [a, b). m holds one H bit per matching field.
func swarFieldClip(m uint64, a, b int, w uint) uint64 {
	if a > 0 {
		m &^= 1<<(uint(a)*w) - 1
	}
	if uint(b)*w < 64 {
		m &= 1<<(uint(b)*w) - 1
	}
	return m
}

// AppendMatchEq appends base+i for every entry i in [start, start+n) whose
// value equals code, in ascending order. When the width tiles 64-bit words
// the scan runs word-at-a-time: XOR against the broadcast code turns
// equality into per-field zero detection, resolved for all fields of a word
// with four ALU ops. Other widths batch-unpack into a small stack buffer
// and compare.
func (p *PackedArray) AppendMatchEq(dst []int, base, start, n int, code uint64) []int {
	p.checkRange(start, n)
	if n == 0 || code&^fieldMask(p.width) != 0 {
		return dst // a code wider than the entries can never match
	}
	if !p.swarAligned() {
		return p.appendMatchEqUnpack(dst, base, start, n, code)
	}
	w := p.width
	per := int(64 / w)
	bcast, h, l := p.swarConsts(code)
	words := p.words
	for wi := start / per; wi*per < start+n; wi++ {
		x := words[wi] ^ bcast
		// High bit of each field of t is set iff the field is non-zero;
		// (x&L)+L cannot carry across fields since both addends fit w-1 bits.
		t := ((x & l) + l) | x
		m := ^t & h
		if m == 0 {
			continue
		}
		lo := wi * per
		a, b := 0, per
		if lo < start {
			a = start - lo
		}
		if lo+per > start+n {
			b = start + n - lo
		}
		m = swarFieldClip(m, a, b, w)
		for ; m != 0; m &= m - 1 {
			f := bits.TrailingZeros64(m) / int(w)
			dst = append(dst, base+lo+f)
		}
	}
	return dst
}

// matchChunk is the stack-buffer size of the unpack-then-compare fallbacks.
const matchChunk = 256

// appendMatchEqUnpack is the batch-unpack-then-compare equality fallback for
// widths whose entries straddle word boundaries.
func (p *PackedArray) appendMatchEqUnpack(dst []int, base, start, n int, code uint64) []int {
	var buf [matchChunk]uint64
	for o := 0; o < n; {
		k := n - o
		if k > matchChunk {
			k = matchChunk
		}
		tmp := p.AppendRange(buf[:0], start+o, k)
		for j, x := range tmp {
			if x == code {
				dst = append(dst, base+start+o+j)
			}
		}
		o += k
	}
	return dst
}

// CountEq returns the number of entries in [start, start+n) equal to code.
// Word-tiling widths count with one popcount per word.
func (p *PackedArray) CountEq(start, n int, code uint64) int {
	p.checkRange(start, n)
	if n == 0 || code&^fieldMask(p.width) != 0 {
		return 0
	}
	if !p.swarAligned() {
		var buf [matchChunk]uint64
		count := 0
		for o := 0; o < n; {
			k := n - o
			if k > matchChunk {
				k = matchChunk
			}
			tmp := p.AppendRange(buf[:0], start+o, k)
			for _, x := range tmp {
				if x == code {
					count++
				}
			}
			o += k
		}
		return count
	}
	w := p.width
	per := int(64 / w)
	bcast, h, l := p.swarConsts(code)
	words := p.words
	count := 0
	for wi := start / per; wi*per < start+n; wi++ {
		x := words[wi] ^ bcast
		t := ((x & l) + l) | x
		m := ^t & h
		if m == 0 {
			continue
		}
		lo := wi * per
		a, b := 0, per
		if lo < start {
			a = start - lo
		}
		if lo+per > start+n {
			b = start + n - lo
		}
		count += bits.OnesCount64(swarFieldClip(m, a, b, w))
	}
	return count
}

// AppendMatchRange appends base+i for every entry i in [start, start+n)
// with lo <= value < hi, in ascending order, by batch-unpacking into a
// stack buffer and comparing.
func (p *PackedArray) AppendMatchRange(dst []int, base, start, n int, lo, hi uint64) []int {
	p.checkRange(start, n)
	if n == 0 || lo >= hi {
		return dst
	}
	var buf [matchChunk]uint64
	for o := 0; o < n; {
		k := n - o
		if k > matchChunk {
			k = matchChunk
		}
		tmp := p.AppendRange(buf[:0], start+o, k)
		for j, x := range tmp {
			if lo <= x && x < hi {
				dst = append(dst, base+start+o+j)
			}
		}
		o += k
	}
	return dst
}

// UnmarshalPackedArray parses an array serialized by AppendBinary and
// returns it together with the number of bytes consumed.
func UnmarshalPackedArray(b []byte) (*PackedArray, int, error) {
	if len(b) < 9 {
		return nil, 0, errTruncated
	}
	width := uint(b[0])
	if width == 0 || width > 64 {
		return nil, 0, errCorrupt
	}
	getU64 := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[off+i]) << (8 * i)
		}
		return v
	}
	n := getU64(1)
	const maxEntries = 1 << 40 // 1T entries: far beyond anything real
	if n > maxEntries {
		return nil, 0, errCorrupt
	}
	words := (n*uint64(width) + 63) / 64
	need := 9 + int(words)*8
	if len(b) < need {
		return nil, 0, errTruncated
	}
	p := &PackedArray{width: width, n: int(n), words: make([]uint64, words)}
	for i := range p.words {
		p.words[i] = getU64(9 + i*8)
	}
	return p, need, nil
}

package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<32 - 1, 32}, {1 << 32, 33}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := Width(c.v); got != c.want {
			t.Errorf("Width(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBit(1)
	w.WriteBits(0, 5)
	w.WriteBits(^uint64(0), 64)

	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("ReadBits(3) = %#b", got)
	}
	if got := r.ReadBits(16); got != 0xABCD {
		t.Errorf("ReadBits(16) = %#x", got)
	}
	if got := r.ReadBit(); got != 1 {
		t.Errorf("ReadBit() = %d", got)
	}
	if got := r.ReadBits(5); got != 0 {
		t.Errorf("ReadBits(5) = %d", got)
	}
	if got := r.ReadBits(64); got != ^uint64(0) {
		t.Errorf("ReadBits(64) = %#x", got)
	}
}

func TestWriterAlign(t *testing.T) {
	var w Writer
	w.WriteBits(1, 3)
	w.Align()
	if w.Len() != 8 {
		t.Fatalf("after Align Len = %d, want 8", w.Len())
	}
	w.Align() // aligning an aligned stream is a no-op
	if w.Len() != 8 {
		t.Fatalf("double Align Len = %d, want 8", w.Len())
	}
}

func TestReaderPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.ReadBits(8); got != 0xFF {
		t.Fatalf("ReadBits(8) = %#x", got)
	}
	if got := r.ReadBits(8); got != 0 {
		t.Fatalf("past-end ReadBits(8) = %#x, want 0", got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderSeek(t *testing.T) {
	var w Writer
	for i := 0; i < 10; i++ {
		w.WriteBits(uint64(i), 7)
	}
	r := NewReader(w.Bytes())
	for _, i := range []int{7, 0, 9, 3} {
		r.Seek(uint64(i) * 7)
		if got := r.ReadBits(7); got != uint64(i) {
			t.Errorf("after Seek(%d): got %d", i*7, got)
		}
	}
}

func TestRoundTripRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var w Writer
		type item struct {
			v uint64
			n uint
		}
		var items []item
		for i := 0; i < 200; i++ {
			n := uint(rng.Intn(64)) + 1
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			items = append(items, item{v, n})
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, it := range items {
			if got := r.ReadBits(it.n); got != it.v {
				t.Fatalf("trial %d item %d: got %d want %d (width %d)", trial, i, got, it.v, it.n)
			}
		}
	}
}

func TestMSBFirstOrderPreservation(t *testing.T) {
	// Writing a smaller value then reading the stream as bytes must compare
	// lexicographically below a stream with a larger value at the same width.
	// This is the property the order-preserving codecs depend on.
	check := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		var wa, wb Writer
		wa.WriteBits(uint64(a), 32)
		wb.WriteBits(uint64(b), 32)
		ba, bb := wa.Bytes(), wb.Bytes()
		for i := range ba {
			if ba[i] != bb[i] {
				return ba[i] < bb[i]
			}
		}
		return false // equal streams for unequal values would be a bug
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedArray(t *testing.T) {
	for _, width := range []uint{1, 3, 7, 8, 13, 32, 63, 64} {
		pa := NewPackedArray(100, width)
		rng := rand.New(rand.NewSource(int64(width)))
		vals := make([]uint64, 100)
		for i := range vals {
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			vals[i] = v
			pa.Set(i, v)
		}
		for i, want := range vals {
			if got := pa.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestPackedArrayOverwrite(t *testing.T) {
	pa := NewPackedArray(10, 5)
	pa.Set(3, 31)
	pa.Set(3, 7)
	if got := pa.Get(3); got != 7 {
		t.Fatalf("Get(3) = %d after overwrite, want 7", got)
	}
	// neighbours untouched
	if pa.Get(2) != 0 || pa.Get(4) != 0 {
		t.Fatal("overwrite disturbed neighbouring entries")
	}
}

func TestPackSlice(t *testing.T) {
	vals := []uint64{0, 5, 17, 3, 1023}
	pa := PackSlice(vals)
	if pa.Width() != 10 {
		t.Fatalf("Width = %d, want 10", pa.Width())
	}
	for i, v := range vals {
		if pa.Get(i) != v {
			t.Fatalf("Get(%d) = %d, want %d", i, pa.Get(i), v)
		}
	}
}

func TestPackedArrayQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		pa := PackSlice(vals)
		for i, v := range vals {
			if pa.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPackedGet(b *testing.B) {
	pa := NewPackedArray(1<<16, 17)
	for i := 0; i < pa.Len(); i++ {
		pa.Set(i, uint64(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += pa.Get(i & (1<<16 - 1))
	}
	_ = sink
}

func TestPeekBitsMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	buf := make([]byte, 64)
	rng.Read(buf)
	for trial := 0; trial < 2000; trial++ {
		pos := uint64(rng.Intn(len(buf)*8 + 16))
		n := uint(rng.Intn(32) + 1)
		r1 := NewReaderAt(buf, pos)
		r2 := NewReaderAt(buf, pos)
		peeked := r1.PeekBits(n)
		read := r2.ReadBits(n)
		if peeked != read {
			t.Fatalf("pos %d n %d: peek %x != read %x", pos, n, peeked, read)
		}
		if r1.Pos() != pos {
			t.Fatalf("PeekBits advanced the position")
		}
		r1.Skip(n)
		if r1.Pos() != pos+uint64(n) {
			t.Fatalf("Skip advanced wrong")
		}
	}
}

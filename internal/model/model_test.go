package model

import (
	"fmt"
	"math"
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/dict"
)

// relErr is the paper's prediction error: |real - predicted| / real.
func relErr(real, predicted uint64) float64 {
	return math.Abs(float64(real)-float64(predicted)) / float64(real)
}

func TestFullSampleAccuracy(t *testing.T) {
	// At a 100% sample the paper reports >75% of predictions within 2% and
	// (almost) all within 5%. Entropy-based models (hu) and scheme quirks
	// leave a few percent of slack, so we assert a slightly looser bound per
	// format family and a tight bound for the exactly-modelled ones.
	corpora := datagen.All(3000, 42)
	exact := map[dict.Format]bool{
		dict.Array: true, dict.ArrayFixed: true, dict.ArrayBC: true,
		dict.ArrayNG2: true, dict.ArrayNG3: true, dict.ColumnBC: true,
	}
	for name, strs := range corpora {
		s := TakeSample(strs, 1.0, 1)
		for _, f := range dict.AllFormats() {
			d := dict.BuildUnchecked(f, strs)
			pred := EstimateSize(f, s)
			err := relErr(d.Bytes(), pred)
			limit := 0.10
			if exact[f] {
				limit = 0.005
			}
			if err > limit {
				t.Errorf("%s on %s: real %d, predicted %d, err %.1f%% (limit %.1f%%)",
					f, name, d.Bytes(), pred, err*100, limit*100)
			}
		}
	}
}

func TestSampledAccuracy(t *testing.T) {
	// With the paper's production setting — max(1%, 5000 strings) — most
	// predictions stay within 8% and virtually all within 20% (Figure 6).
	corpora := datagen.All(20000, 7)
	var errs []float64
	for name, strs := range corpora {
		s := TakeSample(strs, 0.01, 2)
		for _, f := range dict.AllFormats() {
			d := dict.BuildUnchecked(f, strs)
			pred := EstimateSize(f, s)
			e := relErr(d.Bytes(), pred)
			errs = append(errs, e)
			if e > 0.35 {
				t.Errorf("%s on %s: real %d, predicted %d, err %.1f%%",
					f, name, d.Bytes(), pred, e*100)
			}
		}
	}
	// Distribution check: at least 75% of predictions within 8%.
	within := 0
	for _, e := range errs {
		if e <= 0.08 {
			within++
		}
	}
	if frac := float64(within) / float64(len(errs)); frac < 0.70 {
		t.Errorf("only %.0f%% of predictions within 8%% (want >= 70%%)", frac*100)
	}
}

func TestSampleFloor(t *testing.T) {
	strs := datagen.Generate("engl", 2000, 1)
	s := TakeSample(strs, 0.01, 1)
	// 1% of 2000 would be 20 strings; the floor keeps the whole input.
	if len(s.Strings) != len(strs) {
		t.Fatalf("sample has %d strings, want all %d (floor)", len(s.Strings), len(strs))
	}
}

func TestSampleDeterminism(t *testing.T) {
	strs := datagen.Generate("url", 20000, 3)
	a := TakeSample(strs, 0.01, 9)
	b := TakeSample(strs, 0.01, 9)
	if len(a.Strings) != len(b.Strings) {
		t.Fatal("sample size differs")
	}
	for i := range a.Strings {
		if a.Strings[i] != b.Strings[i] {
			t.Fatal("sample content differs for equal seeds")
		}
	}
}

func TestSampleSizeRespectsRatio(t *testing.T) {
	strs := datagen.Generate("1gram", 40000, 3)
	n := len(strs)
	s := TakeSample(strs, 0.25, 1)
	want := int(0.25 * float64(n))
	if len(s.Strings) < want*9/10 || len(s.Strings) > want*11/10 {
		t.Fatalf("sample of %d strings for ratio 0.25 of %d", len(s.Strings), n)
	}
}

func TestEstimateAllCoversFormats(t *testing.T) {
	strs := datagen.Generate("mat", 3000, 1)
	m := EstimateAll(TakeSample(strs, 1.0, 1))
	if len(m) != dict.NumFormats() {
		t.Fatalf("EstimateAll returned %d entries", len(m))
	}
	for f, v := range m {
		if v == 0 {
			t.Errorf("%s: zero estimate", f)
		}
	}
}

func TestCostTableTime(t *testing.T) {
	tbl := DefaultCostTable()
	got := tbl.TimeNs(dict.Array, 10, 5, 100)
	want := 10*tbl.Of(dict.Array).ExtractNs + 5*tbl.Of(dict.Array).LocateNs +
		100*tbl.Of(dict.Array).ConstructNs
	if got != want {
		t.Fatalf("TimeNs = %g, want %g", got, want)
	}
}

func TestDefaultCostOrdering(t *testing.T) {
	// The qualitative ordering the paper reports must hold in the defaults.
	tbl := DefaultCostTable()
	if !(tbl.Of(dict.ArrayFixed).ExtractNs <= tbl.Of(dict.Array).ExtractNs) {
		t.Error("array fixed must be the fastest extract")
	}
	if !(tbl.Of(dict.Array).ExtractNs < tbl.Of(dict.ArrayRP12).ExtractNs) {
		t.Error("rp must extract slower than uncompressed")
	}
	if !(tbl.Of(dict.FCBlock).ExtractNs > tbl.Of(dict.Array).ExtractNs) {
		t.Error("front coding must extract slower than array")
	}
}

func TestCalibrateProducesPositiveCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration microbenchmarks")
	}
	corpora := [][]string{datagen.Generate("engl", 1500, 1)}
	tbl := Calibrate(corpora)
	for _, f := range dict.AllFormats() {
		c := tbl.Of(f)
		if c.ExtractNs <= 0 || c.LocateNs <= 0 || c.ConstructNs <= 0 {
			t.Errorf("%s: non-positive costs %+v", f, c)
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	// Predictions on an empty column must track the real (tables-only) size.
	s := TakeSample(nil, 1.0, 1)
	for _, f := range dict.AllFormats() {
		real := dict.BuildUnchecked(f, nil).Bytes()
		est := EstimateSize(f, s)
		if relErr(real, est) > 0.25 {
			t.Errorf("%s: estimate %d for empty column, real %d", f, est, real)
		}
	}
}

func BenchmarkEstimateVsBuild(b *testing.B) {
	strs := datagen.Generate("url", 50000, 1)
	b.Run("estimate-1pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := TakeSample(strs, 0.01, int64(i))
			for _, f := range dict.AllFormats() {
				EstimateSize(f, s)
			}
		}
	})
	b.Run("build-real", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range []dict.Format{dict.Array, dict.FCBlock, dict.FCBlockRP12} {
				dict.BuildUnchecked(f, strs)
			}
		}
	})
}

func ExampleEstimateSize() {
	strs := []string{"apple", "apricot", "banana", "cherry", "damson"}
	s := TakeSample(strs, 1.0, 1)
	fmt.Println(EstimateSize(dict.Array, s) > 0)
	// Output: true
}

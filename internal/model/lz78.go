package model

// Size model and default runtime costs for the LZ78 format. This is LZ78's
// model-side registration file: together with dict/lz78.go it is everything
// the system knows about the format.

import (
	"math"

	"strdict/internal/bits"
	"strdict/internal/dict"
)

var (
	_ = RegisterSizeModel(dict.LZ78, estimateLZ78)
	// Measured with `dictbench -figure calibrate` on the reference machine,
	// like the built-ins' defaults: parent-chain walks price extraction
	// between the array and front-coded classes, locate is the generic
	// binary search, and the shared-trie parse builds fast.
	_ = RegisterDefaultCosts(dict.LZ78, Costs{ExtractNs: 176, LocateNs: 3696, ConstructNs: 201})
)

// estimateLZ78 prices the LZ78 layout: the phrase table (4-byte parent plus
// 1-byte char per phrase), the bit-packed token stream (token width is the
// width of the phrase count — the last phrase created is always emitted),
// and the packed offsets. The parse runs on the sample, so a 100% sample
// reproduces the build exactly; a partial sample scales tokens by the known
// raw character ratio with the classic LZ78 log-factor correction
// (tokens ~ chars / log chars: a bigger corpus has longer phrases).
func estimateLZ78(s *Sample) uint64 {
	phrases, tokens := dict.LZ78Stats(s.Strings)
	var sampleChars float64
	for _, str := range s.Strings {
		sampleChars += float64(len(str))
	}

	tokensFull := float64(tokens)
	phrasesFull := float64(phrases)
	if len(s.Strings) != s.N && sampleChars > 1 {
		fullChars := float64(s.RawChars)
		scale := fullChars / sampleChars * math.Log(sampleChars) / math.Log(math.Max(fullChars, 2))
		tokensFull *= scale
		// Almost every token mints a phrase (only end-of-string reuses skip).
		if phrasesFull *= scale; phrasesFull > tokensFull {
			phrasesFull = tokensFull
		}
	}

	size := 5*phrasesFull +
		math.Ceil(tokensFull*float64(bits.Width(uint64(phrasesFull)))/64)*8 +
		packedBytes(s.N+1, tokensFull)
	return uint64(math.Round(size)) + dict.StructOverhead
}

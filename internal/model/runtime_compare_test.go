package model

import (
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/stats"
)

// TestRuntimeModelComparison runs the Section 4.1 comparison between the
// constant runtime model and its log-depth refinement. On this engine the
// refinement predicts locate better (our locate is a pure binary search, so
// its cost really does scale with log n, unlike the paper's C++ system where
// other effects dominate); EXPERIMENTS.md documents that difference. The
// test asserts that both models stay within sane error bounds and that the
// measurements themselves are usable — the choice between the models is a
// documented trade-off, not a correctness property.
func TestRuntimeModelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime microbenchmarks")
	}
	gen := func(n int) []string { return datagen.Generate("engl", n, 11) }
	formats := []dict.Format{dict.Array, dict.ArrayBC, dict.FCBlock}
	errs := CompareRuntimeModels(gen, 8000, []int{1000, 32000}, formats)
	if len(errs) != 2*len(formats)*2 {
		t.Fatalf("%d observations", len(errs))
	}
	var constErrs, scaledErrs []float64
	for _, e := range errs {
		if e.Op != "locate" {
			continue
		}
		constErrs = append(constErrs, e.ConstErr)
		scaledErrs = append(scaledErrs, e.ScaledErr)
		if e.MeasuredNs <= 0 {
			t.Fatalf("non-positive measurement: %+v", e)
		}
	}
	cm, sm := stats.Median(constErrs), stats.Median(scaledErrs)
	t.Logf("median locate prediction error: constant %.2f, log-depth %.2f", cm, sm)
	// Across a 32x size range, binary-search depth changes by ~1.5x, so a
	// sane constant model stays within that band and the refinement cannot
	// be wildly off either.
	if cm > 1.0 {
		t.Errorf("constant model median error %.2f implausibly large", cm)
	}
	if sm > 1.0 {
		t.Errorf("log-depth model median error %.2f implausibly large", sm)
	}
}

package model

// The model side of the format registry. The built-in formats share the
// trait-driven models in size.go (array vs front-coded vs fixed vs
// column-bc), so they need no per-format entries here; extension formats
// register a size model and default runtime costs from their registration
// file, and EstimateSize / DefaultCostTable consult these maps first.
// Calibrate needs no hook at all — it measures real builds over
// dict.AllFormats(), so any registered format is calibrated automatically.

import (
	"fmt"

	"strdict/internal/dict"
)

var (
	sizeModels = map[dict.Format]func(*Sample) uint64{}
	extraCosts = map[dict.Format]Costs{}
)

// RegisterSizeModel installs the size-prediction hook for a format, meant to
// be called from a package-level initializer in the format's model
// registration file. It returns f so it can seed a blank identifier var.
// Duplicate registration panics: two models for one format is a bug.
func RegisterSizeModel(f dict.Format, fn func(*Sample) uint64) dict.Format {
	if _, dup := sizeModels[f]; dup {
		panic(fmt.Sprintf("model: size model for %s registered twice", f))
	}
	if fn == nil {
		panic(fmt.Sprintf("model: nil size model for %s", f))
	}
	sizeModels[f] = fn
	return f
}

// RegisterDefaultCosts installs the format's uncalibrated runtime constants,
// merged into DefaultCostTable alongside the built-ins' measured values.
func RegisterDefaultCosts(f dict.Format, c Costs) dict.Format {
	if _, dup := extraCosts[f]; dup {
		panic(fmt.Sprintf("model: default costs for %s registered twice", f))
	}
	extraCosts[f] = c
	return f
}

// HasSizeModel reports whether EstimateSize can price the format: built-ins
// use the shared trait-driven models, extensions need a registered hook.
// The registry-completeness check fails the build when this is false for a
// registered format.
func HasSizeModel(f dict.Format) bool {
	if int(f) < dict.NumBuiltinFormats {
		return true
	}
	_, ok := sizeModels[f]
	return ok
}

package model

import (
	"math/rand"
	"time"

	"strdict/internal/dict"
)

// Costs holds the runtime constants of one dictionary format, per
// Section 4.1: a constant time per extract call, per locate call, and per
// tuple for construction. The paper found that this simplistic model is as
// robust as more sophisticated ones.
type Costs struct {
	ExtractNs   float64 // ns per extract
	LocateNs    float64 // ns per locate
	ConstructNs float64 // ns per string during construction
}

// CostTable maps every registered format to its runtime constants. It is
// registry-keyed — formats registered after the table was built simply read
// as zero until Set or a fresh Calibrate — so extension formats need no
// resizing of any fixed array.
type CostTable struct {
	costs map[dict.Format]Costs
}

// NewCostTable returns an empty table.
func NewCostTable() *CostTable {
	return &CostTable{costs: make(map[dict.Format]Costs, dict.NumFormats())}
}

// Of returns the constants of a format (zero if the format has no entry).
func (t *CostTable) Of(f dict.Format) Costs { return t.costs[f] }

// Set installs the constants of a format.
func (t *CostTable) Set(f dict.Format, c Costs) {
	if t.costs == nil {
		t.costs = make(map[dict.Format]Costs, dict.NumFormats())
	}
	t.costs[f] = c
}

// Has reports whether the table carries an entry for the format; the
// registry-completeness check uses it to catch formats nobody priced.
func (t *CostTable) Has(f dict.Format) bool {
	_, ok := t.costs[f]
	return ok
}

// TimeNs computes the total time (ns) a dictionary instance of format f
// spends in its three methods over its lifetime, per Section 5.2:
//
//	time(d) = #extracts·t_e(d) + #locates·t_l(d) + #strings·t_c(d)
func (t *CostTable) TimeNs(f dict.Format, extracts, locates, numStrings uint64) float64 {
	c := t.costs[f]
	return float64(extracts)*c.ExtractNs +
		float64(locates)*c.LocateNs +
		float64(numStrings)*c.ConstructNs
}

// Calibrate determines the runtime constants with microbenchmarks, as the
// paper does at installation time: every format is built on each corpus and
// its operations are timed; the constants are the averages across corpora.
//
// Corpora should be sorted unique string sets of a few thousand entries;
// pass datagen corpora for the paper's setup.
func Calibrate(corpora [][]string) *CostTable {
	table := NewCostTable()
	if len(corpora) == 0 {
		return DefaultCostTable()
	}
	rng := rand.New(rand.NewSource(1))
	for _, f := range dict.AllFormats() {
		var ext, loc, con float64
		for _, strs := range corpora {
			e, l, c := measureFormat(f, strs, rng)
			ext += e
			loc += l
			con += c
		}
		n := float64(len(corpora))
		table.Set(f, Costs{ExtractNs: ext / n, LocateNs: loc / n, ConstructNs: con / n})
	}
	return table
}

func measureFormat(f dict.Format, strs []string, rng *rand.Rand) (extractNs, locateNs, constructNs float64) {
	const rounds = 3
	var bestBuild time.Duration
	var d dict.Dictionary
	for r := 0; r < rounds; r++ {
		start := time.Now()
		d = dict.BuildUnchecked(f, strs)
		el := time.Since(start)
		if r == 0 || el < bestBuild {
			bestBuild = el
		}
	}
	n := len(strs)
	if n == 0 {
		return 0, 0, 0
	}
	constructNs = float64(bestBuild.Nanoseconds()) / float64(n)

	// Random access patterns, pre-drawn so the RNG is outside the timing.
	const ops = 2000
	ids := make([]uint32, ops)
	for i := range ids {
		ids[i] = uint32(rng.Intn(n))
	}
	var buf []byte
	start := time.Now()
	for _, id := range ids {
		buf = d.AppendExtract(buf[:0], id)
	}
	extractNs = float64(time.Since(start).Nanoseconds()) / ops

	probes := make([]string, ops/4)
	for i := range probes {
		probes[i] = strs[rng.Intn(n)]
	}
	start = time.Now()
	for _, p := range probes {
		d.Locate(p)
	}
	locateNs = float64(time.Since(start).Nanoseconds()) / float64(len(probes))
	return extractNs, locateNs, constructNs
}

// DefaultCostTable returns constants measured once with Calibrate over the
// datagen corpora on the reference development machine. They encode the
// relative ordering the paper reports (uncompressed array variants fastest,
// fixed-width schemes in the middle, Huffman slower, Re-Pair slowest;
// front coding pays a block-walk on top) and are good enough for format
// selection when running Calibrate at start-up is not wanted.
func DefaultCostTable() *CostTable {
	t := NewCostTable()
	set := func(f dict.Format, e, l, c float64) { t.Set(f, Costs{e, l, c}) }
	// format, extract ns, locate ns, construct ns/string — output of
	// `dictbench -figure calibrate` on the reference machine.
	set(dict.Array, 28, 435, 126)
	set(dict.ArrayBC, 287, 719, 364)
	set(dict.ArrayHU, 294, 741, 404)
	set(dict.ArrayNG2, 159, 2527, 1747)
	set(dict.ArrayNG3, 125, 1994, 1812)
	set(dict.ArrayRP12, 260, 3142, 6603)
	set(dict.ArrayRP16, 278, 4951, 6906)
	set(dict.ArrayFixed, 17, 288, 13)
	set(dict.FCBlock, 157, 1299, 132)
	set(dict.FCBlockBC, 922, 8183, 258)
	set(dict.FCBlockDF, 46, 811, 134)
	set(dict.FCBlockHU, 1248, 12577, 338)
	set(dict.FCBlockNG2, 801, 14044, 894)
	set(dict.FCBlockNG3, 1602, 8006, 1454)
	set(dict.FCBlockRP12, 1381, 9359, 4171)
	set(dict.FCBlockRP16, 1391, 8052, 3626)
	set(dict.FCInline, 159, 1357, 116)
	set(dict.ColumnBC, 278, 4056, 471)
	// Extension formats contribute their own defaults at registration.
	for f, c := range extraCosts {
		t.Set(f, c)
	}
	return t
}

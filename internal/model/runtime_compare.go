package model

// Section 4.1 states that per-operation constants approximate runtimes as
// robustly as more sophisticated models, and leaves precise modelling as an
// open question. This file makes that claim testable: it implements the
// obvious refinement — locate cost scaling with the binary-search depth
// log2(n) — and measures both models' prediction error across dictionary
// sizes, so the repository can verify (rather than assert) the paper's
// simplification.

import (
	"math"
	"math/rand"
	"time"

	"strdict/internal/dict"
)

// RuntimeModelError is one (format, size) observation: the measured cost
// and both models' relative prediction errors.
type RuntimeModelError struct {
	Format     dict.Format
	DictLen    int
	Op         string // "extract" or "locate"
	MeasuredNs float64
	ConstErr   float64 // relative error of the constant model
	ScaledErr  float64 // relative error of the log-depth model
}

// CompareRuntimeModels calibrates both models at refSize on a corpus
// generator and evaluates them at the probe sizes. gen(n) must return a
// sorted unique corpus of about n strings with size-independent content
// statistics.
func CompareRuntimeModels(gen func(n int) []string, refSize int, probeSizes []int, formats []dict.Format) []RuntimeModelError {
	rng := rand.New(rand.NewSource(1))

	type calib struct{ extract, locate float64 }
	ref := make(map[dict.Format]calib)
	refStrs := gen(refSize)
	for _, f := range formats {
		d := dict.BuildUnchecked(f, refStrs)
		e, l := measureOps(d, refStrs, rng)
		ref[f] = calib{e, l}
	}

	var out []RuntimeModelError
	for _, n := range probeSizes {
		strs := gen(n)
		for _, f := range formats {
			d := dict.BuildUnchecked(f, strs)
			e, l := measureOps(d, strs, rng)
			// Constant model: the calibrated value, unchanged.
			// Scaled model: locate grows with binary-search depth.
			depthRatio := math.Log2(float64(len(strs))+2) / math.Log2(float64(len(refStrs))+2)
			out = append(out,
				RuntimeModelError{
					Format: f, DictLen: len(strs), Op: "extract", MeasuredNs: e,
					ConstErr:  relErrF(e, ref[f].extract),
					ScaledErr: relErrF(e, ref[f].extract), // extract does not depend on n in either model
				},
				RuntimeModelError{
					Format: f, DictLen: len(strs), Op: "locate", MeasuredNs: l,
					ConstErr:  relErrF(l, ref[f].locate),
					ScaledErr: relErrF(l, ref[f].locate*depthRatio),
				},
			)
		}
	}
	return out
}

func relErrF(measured, predicted float64) float64 {
	if measured == 0 {
		return 0
	}
	return math.Abs(measured-predicted) / measured
}

func measureOps(d dict.Dictionary, strs []string, rng *rand.Rand) (extractNs, locateNs float64) {
	const ops = 3000
	n := d.Len()
	if n == 0 {
		return 0, 0
	}
	ids := make([]uint32, ops)
	for i := range ids {
		ids[i] = uint32(rng.Intn(n))
	}
	var buf []byte
	start := time.Now()
	for _, id := range ids {
		buf = d.AppendExtract(buf[:0], id)
	}
	extractNs = float64(time.Since(start).Nanoseconds()) / ops

	probes := make([]string, ops/4)
	for i := range probes {
		probes[i] = strs[rng.Intn(n)]
	}
	start = time.Now()
	for _, p := range probes {
		d.Locate(p)
	}
	locateNs = float64(time.Since(start).Nanoseconds()) / float64(len(probes))
	return extractNs, locateNs
}

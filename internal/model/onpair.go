package model

// Size model and default runtime costs for the OnPair pair-table format.
// This is OnPair's model-side registration file: together with
// dict/onpair.go it is everything the system knows about the format.

import (
	"math"

	"strdict/internal/bits"
	"strdict/internal/dict"
)

var (
	_ = RegisterSizeModel(dict.OnPair, estimateOnPair)
	// Measured with `dictbench -figure calibrate` on the reference machine,
	// like the built-ins' defaults: pair expansion keeps extraction near the
	// array formats, locate is the generic binary search, and the greedy
	// promotion rounds dominate construction.
	_ = RegisterDefaultCosts(dict.OnPair, Costs{ExtractNs: 171, LocateNs: 3631, ConstructNs: 663})
)

// estimateOnPair prices the OnPair layout: the pair table (4 bytes per
// entry), the bit-packed symbol stream, and the packed offsets. The pair
// table is trained on the sample — the same cheap-but-real-training approach
// the Hu-Tucker and Re-Pair models use — so a 100% sample reproduces the
// build exactly; a partial sample scales the symbol count by the known raw
// character ratio and grows the pair table toward its cap, since promotion
// frequencies rise linearly with the data.
func estimateOnPair(s *Sample) uint64 {
	pairs, symbols, symWidth := dict.OnPairStats(s.Strings, 0)
	var sampleChars float64
	for _, str := range s.Strings {
		sampleChars += float64(len(str))
	}

	symsFull := float64(symbols)
	pairsFull := float64(pairs)
	width := float64(symWidth)
	if len(s.Strings) != s.N && sampleChars > 0 {
		scale := float64(s.RawChars) / sampleChars
		symsFull *= scale
		if pairsFull *= scale; pairsFull > dict.OnPairMaxPairs {
			pairsFull = dict.OnPairMaxPairs
		}
		if w := float64(bits.Width(uint64(255 + pairsFull))); w > width {
			width = w
		}
	}

	size := 4*pairsFull +
		math.Ceil(symsFull*width/64)*8 +
		packedBytes(s.N+1, symsFull)
	return uint64(math.Round(size)) + dict.StructOverhead
}

package model

import (
	"sync"

	"strdict/internal/dict"
)

// EstimateAllParallel is EstimateAll with the per-format models fanned out
// across a bounded worker pool. The formats' models are independent — each
// trains its own codec on the (read-only) sample — and the expensive probes
// (Re-Pair above all) run alongside the cheap closed formulas instead of
// after them, so the wall-clock cost approaches the single slowest model.
// parallelism <= 1 falls back to the serial loop; results are identical
// either way.
func EstimateAllParallel(s *Sample, parallelism int) map[dict.Format]uint64 {
	formats := dict.AllFormats()
	sizes := EstimateEach(s, parallelism)
	out := make(map[dict.Format]uint64, len(formats))
	for i, f := range formats {
		out[f] = sizes[i]
	}
	return out
}

// EstimateEach returns the predicted size of every format in declaration
// order (index == dict.Format), evaluating the models on a worker pool of
// the given size (<= 1 serial).
func EstimateEach(s *Sample, parallelism int) []uint64 {
	formats := dict.AllFormats()
	sizes := make([]uint64, len(formats))
	workers := parallelism
	if workers > len(formats) {
		workers = len(formats)
	}
	if workers <= 1 {
		for i, f := range formats {
			sizes[i] = EstimateSize(f, s)
		}
		return sizes
	}

	// One format per task; the long-pole models (Re-Pair, n-gram) are
	// dispatched first so they overlap the cheap ones maximally.
	order := longPoleFirst(formats)
	tasks := make(chan dict.Format, len(order))
	for _, f := range order {
		tasks <- f
	}
	close(tasks)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for f := range tasks {
				sizes[f] = EstimateSize(f, s)
			}
		}()
	}
	wg.Wait()
	return sizes
}

// longPoleFirst orders formats by descending expected model cost: grammar
// probes first, then n-gram training, entropy coders, and finally the
// closed-formula formats.
func longPoleFirst(formats []dict.Format) []dict.Format {
	rank := func(f dict.Format) int {
		switch f.Scheme() {
		case dict.SchemeRP12, dict.SchemeRP16:
			return 0
		case dict.SchemeNG2, dict.SchemeNG3:
			return 1
		case dict.SchemeHU:
			return 2
		case dict.SchemeBC:
			return 3
		default:
			return 4
		}
	}
	out := append([]dict.Format(nil), formats...)
	// Stable insertion sort: tiny n, keeps declaration order within a rank.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rank(out[j]) < rank(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

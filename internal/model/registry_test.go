package model

import (
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/dict"
)

// TestRegistryCompleteness is the registry-completeness gate run by
// scripts/check.sh: every registered dictionary format must be fully wired
// into the prediction framework — a size model and a default cost-table
// entry — or the compression manager would silently mis-rank it. (The dict
// package's own invariants and fuzz suites enforce the codec side by
// iterating AllFormats the same way.)
func TestRegistryCompleteness(t *testing.T) {
	table := DefaultCostTable()
	for _, f := range dict.AllFormats() {
		if !HasSizeModel(f) {
			t.Errorf("format %v has no size model (RegisterSizeModel missing)", f)
		}
		if !table.Has(f) {
			t.Errorf("format %v has no default costs (RegisterDefaultCosts missing)", f)
		}
		c := table.Of(f)
		if c.ExtractNs <= 0 || c.LocateNs <= 0 || c.ConstructNs <= 0 {
			t.Errorf("format %v has non-positive default costs %+v", f, c)
		}
	}

	// EstimateAll must price every registered format on a real sample.
	strs := datagen.Generate("engl", 2000, 11)
	s := TakeSample(strs, 1.0, 1)
	sizes := EstimateAll(s)
	if len(sizes) != dict.NumFormats() {
		t.Fatalf("EstimateAll returned %d entries, want %d", len(sizes), dict.NumFormats())
	}
	for _, f := range dict.AllFormats() {
		if sizes[f] == 0 {
			t.Errorf("EstimateAll priced format %v at zero", f)
		}
	}
}

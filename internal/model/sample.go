// Package model implements the prediction framework of Section 4: for every
// dictionary format it estimates the size the dictionary would have on a
// given column from a small uniform sample, and it models the runtime of the
// extract, locate and construct operations as per-call constants determined
// by microbenchmarks.
//
// The size models follow the paper's Table 1: they break each format's size
// down to properties of the data (distinct characters, order-0 entropy,
// n-gram coverage, Re-Pair compression rate, maximum string length, average
// block size) that are cheap to sample, extended by the paper-suggested
// corrections for byte-alignment cut-offs so that a 100% "sample" predicts
// the real size almost exactly.
package model

import (
	"math/rand"

	"strdict/internal/dict"
)

// MinSampleStrings is the sampling floor of Section 4.2.2: tiny dictionaries
// are sampled entirely, fixing the extreme mispredictions the paper reports
// for 1% samples of very small dictionaries.
const MinSampleStrings = 5000

// Sample carries everything the size models need about a column.
type Sample struct {
	// Exact properties, known a priori from the dictionary input.
	N        int    // number of strings
	RawChars uint64 // sum of all string lengths

	// Sampled strings (uniform, without replacement, sorted by position).
	Strings []string

	// Sampled aligned front-coding and column-bc blocks.
	FCBlocks  [][]string
	ColBlocks [][]string

	// Block geometry used when sampling, mirrored from package dict.
	FCBlockSize  int
	ColBlockSize int
}

// TakeSample draws a uniform sample of about ratio*len(strs) strings, but at
// least min(MinSampleStrings, len(strs)), plus proportionally many aligned
// blocks for the block-based formats. strs must be the sorted dictionary
// input. The same seed yields the same sample.
func TakeSample(strs []string, ratio float64, seed int64) *Sample {
	rng := rand.New(rand.NewSource(seed))
	n := len(strs)
	s := &Sample{
		N:            n,
		RawChars:     dict.RawBytes(strs),
		FCBlockSize:  dict.DefaultFCBlockSize,
		ColBlockSize: dict.DefaultColumnBCBlockSize,
	}

	want := int(ratio * float64(n))
	if want < MinSampleStrings {
		want = MinSampleStrings
	}
	if want >= n {
		s.Strings = strs
	} else {
		s.Strings = make([]string, 0, want)
		for _, idx := range sampleIndices(rng, n, want) {
			s.Strings = append(s.Strings, strs[idx])
		}
	}

	s.FCBlocks = sampleBlocks(rng, strs, s.FCBlockSize, want)
	s.ColBlocks = sampleBlocks(rng, strs, s.ColBlockSize, want)
	return s
}

// sampleIndices draws k distinct indices from [0,n) in ascending order.
func sampleIndices(rng *rand.Rand, n, k int) []int {
	// Floyd's algorithm would avoid the map, but k is small; keep it simple
	// with a selection-sampling pass, which also yields sorted output.
	out := make([]int, 0, k)
	remaining := n
	needed := k
	for i := 0; i < n && needed > 0; i++ {
		if rng.Intn(remaining) < needed {
			out = append(out, i)
			needed--
		}
		remaining--
	}
	return out
}

// sampleBlocks draws aligned blocks totalling about wantStrings strings.
func sampleBlocks(rng *rand.Rand, strs []string, blockSize, wantStrings int) [][]string {
	n := len(strs)
	if n == 0 {
		return nil
	}
	nblocks := (n + blockSize - 1) / blockSize
	wantBlocks := (wantStrings + blockSize - 1) / blockSize
	if wantBlocks < 1 {
		wantBlocks = 1
	}
	var blockIdx []int
	if wantBlocks >= nblocks {
		blockIdx = make([]int, nblocks)
		for i := range blockIdx {
			blockIdx[i] = i
		}
	} else {
		blockIdx = sampleIndices(rng, nblocks, wantBlocks)
	}
	out := make([][]string, 0, len(blockIdx))
	for _, b := range blockIdx {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		out = append(out, strs[lo:hi])
	}
	return out
}

// sampleChars returns the summed length of the sampled strings.
func (s *Sample) sampleChars() uint64 {
	var c uint64
	for _, str := range s.Strings {
		c += uint64(len(str))
	}
	return c
}

// parts converts the sampled strings to byte slices for codec training.
func (s *Sample) parts() [][]byte {
	parts := make([][]byte, len(s.Strings))
	for i, str := range s.Strings {
		parts[i] = []byte(str)
	}
	return parts
}

// fcParts returns the stored parts (block-first strings and suffixes) of the
// sampled blocks, in layout order, for the given front-coding mode.
// toFirst selects difference-to-first (fc block df) prefixes.
func (s *Sample) fcParts(toFirst bool) [][]byte {
	var parts [][]byte
	for _, block := range s.FCBlocks {
		if len(block) == 0 {
			continue
		}
		parts = append(parts, []byte(block[0]))
		for i := 1; i < len(block); i++ {
			ref := block[i-1]
			if toFirst {
				ref = block[0]
			}
			pl := dict.CommonPrefixLen(ref, block[i])
			parts = append(parts, []byte(block[i][pl:]))
		}
	}
	return parts
}

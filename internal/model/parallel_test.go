package model

import (
	"fmt"
	"testing"

	"strdict/internal/dict"
)

// TestEstimateAllParallelIdentical asserts the fanned-out models predict
// exactly what the serial loop predicts, for every format.
func TestEstimateAllParallelIdentical(t *testing.T) {
	strs := make([]string, 2000)
	for i := range strs {
		strs[i] = fmt.Sprintf("part-%06d/sku-%05x", i, uint32(i*7)%2000)
	}
	s := TakeSample(strs, 1.0, 1)

	serial := EstimateAll(s)
	parallel := EstimateAllParallel(s, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("len %d vs %d", len(serial), len(parallel))
	}
	for _, f := range dict.AllFormats() {
		if serial[f] != parallel[f] {
			t.Fatalf("%s: serial %d, parallel %d", f, serial[f], parallel[f])
		}
	}
	// The serial fallback path must agree too.
	for _, f := range dict.AllFormats() {
		if one := EstimateAllParallel(s, 1)[f]; one != serial[f] {
			t.Fatalf("%s: parallelism=1 %d, serial %d", f, one, serial[f])
		}
	}
}

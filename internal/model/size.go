package model

import (
	"math"

	"strdict/internal/bits"
	"strdict/internal/dict"
	"strdict/internal/huffman"
	"strdict/internal/hutucker"
	"strdict/internal/ngram"
	"strdict/internal/repair"
)

// EstimateSize predicts the Bytes() of dict.Build(f, column) from the
// sample, without building the dictionary. It implements the compression
// models of Section 4.2, extended with the byte-alignment corrections the
// paper mentions, so a 100% sample reproduces the real size (almost)
// exactly.
//
// Unlike "naively compressing a sample and extrapolating", the models only
// gather cheap properties (alphabet width, symbol entropy, n-gram coverage,
// grammar compression rate on the sample, maximum string length, average
// block size) and evaluate closed formulas over them; no encoded data is
// materialized.
func EstimateSize(f dict.Format, s *Sample) uint64 {
	// Registered per-format models (extension formats) take precedence; the
	// built-ins share the trait-driven models below.
	if fn, ok := sizeModels[f]; ok {
		return fn(s)
	}
	var size float64
	switch {
	case f == dict.ArrayFixed:
		size = float64(s.N) * maxLen(s.Strings)

	case f == dict.ColumnBC:
		nblocks := blocksOf(s.N, s.ColBlockSize)
		var perString float64
		var blockStrings int
		for _, b := range s.ColBlocks {
			perString += float64(dict.ColumnBCBlockBytes(b))
			blockStrings += len(b)
		}
		if blockStrings > 0 {
			perString /= float64(blockStrings)
		}
		size = perString*float64(s.N) + packedBytes(nblocks+1, perString*float64(s.N))

	case f.IsFrontCoded():
		size = estimateFC(f, s)

	default: // array class
		est := estimateScheme(f.Scheme(), s.parts(), float64(s.RawChars), float64(s.N), true)
		size = est.data + est.table + packedBytes(s.N+1, est.data)
	}
	return uint64(math.Round(size)) + dict.StructOverhead
}

// EstimateAll runs every format's model on one sample.
func EstimateAll(s *Sample) map[dict.Format]uint64 {
	out := make(map[dict.Format]uint64, dict.NumFormats())
	for _, f := range dict.AllFormats() {
		out[f] = EstimateSize(f, s)
	}
	return out
}

// estimateFC models the three front-coding layouts.
func estimateFC(f dict.Format, s *Sample) float64 {
	nblocks := blocksOf(s.N, s.FCBlockSize)
	toFirst := f == dict.FCBlockDF

	parts := s.fcParts(toFirst)
	var storedChars float64
	var blockStrings int
	for _, p := range parts {
		storedChars += float64(len(p))
	}
	for _, b := range s.FCBlocks {
		blockStrings += len(b)
	}
	// Anchor the front-coded character count per string.
	if blockStrings > 0 {
		storedChars = storedChars / float64(blockStrings) * float64(s.N)
	}

	est := estimateScheme(f.Scheme(), parts, storedChars, float64(s.N), false)

	// Header bytes per the layouts in dict/fc.go.
	var header float64
	switch f {
	case dict.FCBlockDF:
		header = float64(nblocks)*4 + 5*float64(s.N-nblocks)
	default: // fc block X and fc inline both spend one prefix byte per non-first string
		header = float64(s.N - nblocks)
	}
	return est.data + est.table + header + packedBytes(nblocks+1, est.data+header)
}

// schemeEstimate is the output of a string-scheme model: the total encoded
// data bytes for the whole column and the codec table footprint.
type schemeEstimate struct {
	data  float64
	table float64
}

// estimateScheme models the encoded size of totalN parts with totalChars
// characters, from the sampled parts. orderPreserving mirrors the codec
// choice in dict: Hu-Tucker for array hu, Huffman for front-coded suffixes.
func estimateScheme(sc dict.Scheme, parts [][]byte, totalChars, totalN float64, orderPreserving bool) schemeEstimate {
	var sampleChars, sampleN float64
	for _, p := range parts {
		sampleChars += float64(len(p))
	}
	sampleN = float64(len(parts))
	// scale maps "bytes on the sample" to "bytes on the column", anchored on
	// the known exact totals.
	scale := 1.0
	if sampleChars+sampleN > 0 {
		scale = (totalChars + totalN) / (sampleChars + sampleN)
	}

	switch sc {
	case dict.SchemeNone:
		// One NUL terminator per string.
		return schemeEstimate{data: totalChars + totalN}

	case dict.SchemeBC:
		nchars := distinctChars(parts)
		w := float64(bits.Width(uint64(nchars))) // alphabet + EOS
		var sampleBytes float64
		for _, p := range parts {
			sampleBytes += math.Ceil(float64(len(p)+1) * w / 8)
		}
		return schemeEstimate{
			data:  sampleBytes * scale,
			table: 256*2 + float64(nchars) + 8,
		}

	case dict.SchemeHU:
		// The order-0 symbol entropy is a lower bound that can be off by
		// 20% for Hu-Tucker on skewed alphabets (the alphabetic-order
		// constraint costs extra bits), so the model trains the code on the
		// sample — a cheap O(alphabet^2) step — and evaluates the actual
		// code lengths.
		var sampleBytes, table float64
		if orderPreserving {
			c := hutucker.Train(parts)
			for _, p := range parts {
				bits := c.EOSLen()
				for _, b := range p {
					bits += c.CodeLen(b)
				}
				sampleBytes += math.Ceil(float64(bits) / 8)
			}
			table = float64(c.TableBytes())
		} else {
			c := huffman.Train(parts)
			for _, p := range parts {
				bits := c.CodeLen(huffman.EOS)
				for _, b := range p {
					bits += c.CodeLen(int(b))
				}
				sampleBytes += math.Ceil(float64(bits) / 8)
			}
			table = float64(c.TableBytes())
		}
		return schemeEstimate{data: sampleBytes * scale, table: table}

	case dict.SchemeNG2, dict.SchemeNG3:
		n := 2
		if sc == dict.SchemeNG3 {
			n = 3
		}
		c := ngram.Train(n, parts)
		// Simulate the greedy coder arithmetically: count emitted codes.
		var sampleBytes float64
		for _, p := range parts {
			codes := greedyCodeCount(c, p) + 1 // + EOS
			sampleBytes += math.Ceil(float64(codes) * 12 / 8)
		}
		table := float64(c.GramCount()*(n+24)) + 8
		return schemeEstimate{data: sampleBytes * scale, table: table}

	case dict.SchemeRP12, dict.SchemeRP16:
		w := uint(12)
		if sc == dict.SchemeRP16 {
			w = 16
		}
		g, seqs := repair.Train(parts, w)
		var sampleBytes float64
		for _, seq := range seqs {
			sampleBytes += math.Ceil(float64(len(seq)+1) * float64(w) / 8)
		}
		// Rules found on the sample scale up with the data until the symbol
		// space saturates.
		rules := float64(g.RuleCount()) * scale
		if cap := float64(repair.MaxRules(w)); rules > cap {
			rules = cap
		}
		return schemeEstimate{data: sampleBytes * scale, table: rules*8 + 8}

	default:
		panic("model: unknown scheme")
	}
}

// greedyCodeCount counts the 12-bit codes the n-gram coder would emit for p.
func greedyCodeCount(c *ngram.Codec, p []byte) int {
	n := c.N()
	codes := 0
	for i := 0; i < len(p); {
		if i+n <= len(p) && c.HasGram(string(p[i:i+n])) {
			i += n
		} else {
			i++
		}
		codes++
	}
	return codes
}

func distinctChars(parts [][]byte) int {
	var present [256]bool
	for _, p := range parts {
		for _, b := range p {
			present[b] = true
		}
	}
	n := 0
	for _, ok := range present {
		if ok {
			n++
		}
	}
	return n
}

// packedBytes mirrors bits.PackedArray storage: entries of the width needed
// for maxVal, rounded up to whole 64-bit words.
func packedBytes(entries int, maxVal float64) float64 {
	if maxVal < 0 {
		maxVal = 0
	}
	w := float64(bits.Width(uint64(maxVal)))
	return math.Ceil(float64(entries)*w/64) * 8
}

func blocksOf(n, blockSize int) int {
	return (n + blockSize - 1) / blockSize
}

func maxLen(strs []string) float64 {
	m := 0
	for _, s := range strs {
		if len(s) > m {
			m = len(s)
		}
	}
	return float64(m)
}

package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/model"
	"strdict/internal/persist"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of independent shards; <= 0 selects 1.
	Shards int
	// Dir is the root directory; each shard journals under
	// Dir/shard-NNNN. Empty disables persistence (in-memory shards).
	Dir string
	// FsyncInterval is passed to each shard's journal (0 = persist
	// default). The service calls Sync once per shard per append batch
	// regardless — that call is the group commit the API promises.
	FsyncInterval time.Duration
	// MemoryBudget is the server-wide memory target the gossip loop steers
	// the shards' compression trade-off towards. Default 1 GiB.
	MemoryBudget uint64
	// GossipInterval is the cadence of the memory-pressure exchange;
	// 0 selects 100ms, < 0 disables gossip.
	GossipInterval time.Duration
	// DeltaRowThreshold triggers a shard's merge daemon once a column's
	// delta holds this many rows; <= 0 selects 64k.
	DeltaRowThreshold int
	// HighWaterMark, when > 0, blocks appends once a column's unsealed
	// delta reaches this many rows (backpressure).
	HighWaterMark int
	// MergeInterval is each merge daemon's timer period (0 = scheduler
	// default).
	MergeInterval time.Duration
	// NoDaemons disables merge daemons and gossip: the server is a pure
	// request-driven front end (tests, torture harness).
	NoDaemons bool
	// MaxScanRows caps the row indices a single /v1/scan response carries
	// (the full match count is still reported). <= 0 selects 10000.
	MaxScanRows int
	// SampleRatio and Seed parameterize the dictionary sampling behind
	// merge-time format decisions; ratio <= 0 selects 0.01.
	SampleRatio float64
	Seed        int64
}

func (o *Options) fillDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = 1 << 30
	}
	if o.GossipInterval == 0 {
		o.GossipInterval = 100 * time.Millisecond
	}
	if o.DeltaRowThreshold <= 0 {
		o.DeltaRowThreshold = 64 << 10
	}
	if o.MaxScanRows <= 0 {
		o.MaxScanRows = 10000
	}
	if o.SampleRatio <= 0 {
		o.SampleRatio = 0.01
	}
}

// Server is the sharded multi-tenant store service. Create one with New
// (persistent shards under a directory) or NewWithStores (wrap existing
// stores), mount Handler on any net/http server, and Close when done.
type Server struct {
	opts   Options
	shards []*shard
	mux    *http.ServeMux
	cancel context.CancelFunc
	gossip *gossip

	// pinsLive / pinsTotal prove the snapshot-per-request lifecycle: every
	// query pins exactly one snapshot per touched shard, and pinsLive must
	// return to zero once no request is in flight. The torture service op
	// asserts exactly that.
	pinsLive  atomic.Int64
	pinsTotal atomic.Uint64
}

// New opens a server with opts.Shards independent shards. With a Dir, each
// shard recovers its journal from Dir/shard-NNNN; without one the shards
// are in-memory.
func New(opts Options) (*Server, error) {
	opts.fillDefaults()
	srv := &Server{opts: opts}
	ctx, cancel := context.WithCancel(context.Background())
	srv.cancel = cancel
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{id: i}
		if opts.Dir != "" {
			sh.dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%04d", i))
			ps, err := persist.Open(sh.dir, persist.Options{
				FsyncInterval: opts.FsyncInterval,
			})
			if err != nil {
				cancel()
				srv.closeShards()
				return nil, fmt.Errorf("service: open shard %d: %w", i, err)
			}
			sh.ps = ps
			sh.store = ps.Store
		} else {
			sh.store = colstore.NewStore()
		}
		sh.mgr = core.NewManager(core.Options{
			// Each shard steers towards its slice of the global budget;
			// gossip replaces the local observation with the cluster-wide
			// one every round.
			DesiredFreeBytes: opts.MemoryBudget / 8,
		})
		if !opts.NoDaemons {
			sh.sched = colstore.NewMergeScheduler(sh.store, opts.DeltaRowThreshold)
			sh.sched.Interval = opts.MergeInterval
			sh.sched.HighWaterMark = opts.HighWaterMark
			sh.sched.PartialMerges = true
			sh.sched.Chooser = srv.chooserFor(sh)
			sh.sched.Start(ctx)
		}
		srv.shards = append(srv.shards, sh)
	}
	if !opts.NoDaemons && opts.GossipInterval > 0 {
		srv.gossip = newGossip(srv.shards, opts.MemoryBudget)
		go srv.gossip.run(ctx, opts.GossipInterval)
	}
	srv.routes()
	return srv, nil
}

// NewWithStores wraps existing stores as the server's shards — one shard
// per store, no persistence wiring, no daemons, no gossip. The torture
// harness uses this to drive the query API against a store whose oracle it
// already tracks; appends through the API land directly on the wrapped
// stores.
func NewWithStores(stores []*colstore.Store, opts Options) *Server {
	opts.Shards = len(stores)
	opts.NoDaemons = true
	opts.fillDefaults()
	srv := &Server{opts: opts, cancel: func() {}}
	for i, st := range stores {
		srv.shards = append(srv.shards, &shard{
			id:    i,
			store: st,
			mgr:   core.NewManager(core.Options{DesiredFreeBytes: opts.MemoryBudget / 8}),
		})
	}
	srv.routes()
	return srv
}

// chooserFor builds the merge-time format chooser for one shard: column
// statistics from the pinned snapshot, decision from the shard's own
// Manager (whose c the gossip loop keeps adjusting).
func (srv *Server) chooserFor(sh *shard) func(*colstore.Snapshot, float64) dict.Format {
	ratio, seed := srv.opts.SampleRatio, srv.opts.Seed
	return func(snap *colstore.Snapshot, lifetimeNs float64) dict.Format {
		st := snap.Stats()
		return sh.mgr.ChooseFormat(core.ColumnStats{
			Name:              snap.Name(),
			NumStrings:        uint64(snap.DictLen()),
			Extracts:          st.Extracts,
			Locates:           st.Locates,
			LifetimeNs:        lifetimeNs,
			ColumnVectorBytes: snap.VectorBytes(),
			Sample:            model.TakeSample(snap.DictValues(), ratio, seed),
		}).Format
	}
}

// Handler returns the server's HTTP handler (the /v1 API).
func (srv *Server) Handler() http.Handler { return srv.mux }

// Close stops gossip and the merge daemons (draining deltas) and closes
// every shard's journal.
func (srv *Server) Close() error {
	srv.cancel()
	return srv.closeShards()
}

func (srv *Server) closeShards() error {
	var first error
	for _, sh := range srv.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the shard count.
func (srv *Server) NumShards() int { return len(srv.shards) }

// ShardFor exposes the routing function: the shard index that owns
// (tenant, table).
func (srv *Server) ShardFor(tenant, table string) int {
	return shardOf(tenant, table, len(srv.shards))
}

// ShardRows returns the logical rows ingested through the service by shard
// i — the balance metric loadbench reports.
func (srv *Server) ShardRows(i int) uint64 { return srv.shards[i].rows.Load() }

// SetShardReadOnly is the admin override that makes shard i refuse appends
// with 503 as if its journal had degraded to read-only. Queries still
// serve. Used by failure drills and tests.
func (srv *Server) SetShardReadOnly(i int, ro bool) {
	srv.shards[i].forcedRO.Store(ro)
}

// PinnedSnapshots returns the number of snapshots currently pinned by
// in-flight requests. Zero when the server is idle — the no-leak invariant.
func (srv *Server) PinnedSnapshots() int64 { return srv.pinsLive.Load() }

// TotalPins returns the cumulative number of snapshots pinned since start.
func (srv *Server) TotalPins() uint64 { return srv.pinsTotal.Load() }

// pin takes the per-request snapshot and counts it; release with unpin on
// every exit path.
func (srv *Server) pin(c *colstore.StringColumn) *colstore.Snapshot {
	srv.pinsLive.Add(1)
	srv.pinsTotal.Add(1)
	return c.Snapshot()
}

func (srv *Server) unpin(s *colstore.Snapshot) {
	s.Release()
	srv.pinsLive.Add(-1)
}

// Sync flushes every persistent shard's WAL — a checkpoint-style barrier
// for tests and shutdown paths.
func (srv *Server) Sync() error {
	var errs []error
	for _, sh := range srv.shards {
		if err := sh.sync(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Package service puts a network front door on the engine: a sharded,
// multi-tenant store server behind a stdlib net/http JSON API.
//
// A Router hashes (tenant, table) across N shards. Each shard owns its own
// colstore, compression Manager, merge daemon, and persist journal under a
// per-shard directory, so shards share no locks: ingest and format
// selection scale with the shard count. Appends are batched and grouped per
// shard (one WAL group commit per shard per batch); every query pins
// exactly one Snapshot per touched shard and releases it when the response
// is written, on error paths included. Shards exchange memory-pressure
// observations through an in-process gossip board that feeds each shard's
// selection trade-off c — the paper's Figure-8 feedback loop, scaled out.
package service

import "hash/fnv"

// routeKey is the canonical hash input for a (tenant, table) pair. The
// separator cannot appear in either component (names are validated), so
// distinct pairs never collide onto the same key.
func routeKey(tenant, table string) string {
	return tenant + "\x00" + table
}

// shardOf routes a (tenant, table) pair to one of n shards. The mapping is
// a pure function of the names (FNV-1a over the route key, mod n): the same
// pair routes to the same shard on every process start, with no rebalance
// state to persist.
func shardOf(tenant, table string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(routeKey(tenant, table)))
	return int(h.Sum64() % uint64(n))
}

// qualify maps a (tenant, table) pair to the physical table name inside the
// owning shard's store. The empty tenant maps to the bare table name so a
// server can wrap a pre-existing store (NewWithStores) and address its
// tables directly.
func qualify(tenant, table string) string {
	if tenant == "" {
		return table
	}
	return tenant + "/" + table
}

// validName reports whether a tenant, table, or column name is acceptable:
// non-empty (except tenants), and free of the separator bytes the router
// and qualifier reserve.
func validName(s string, allowEmpty bool) bool {
	if s == "" {
		return allowEmpty
	}
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] == '/' {
			return false
		}
	}
	return true
}

package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/persist"
)

// shard is one independent slice of the server: its own store (persistent
// or wrapped), its own compression Manager and merge daemon, its own
// journal directory. Shards share no mutable state — the only cross-shard
// coupling is the gossip board.
type shard struct {
	id  int
	dir string

	// mu serializes appends and DDL on this shard: multi-column batch
	// appends must land as aligned rows, numeric column appends are not
	// goroutine-safe, and on-demand table creation must not race other
	// writers. Queries take the read side only long enough to resolve a
	// column; scans then run lock-free on a pinned snapshot.
	mu sync.RWMutex

	store *colstore.Store
	ps    *persist.Store // nil for wrapped (NewWithStores) shards
	mgr   *core.Manager
	sched *colstore.MergeScheduler

	// forcedRO is the admin/test override that makes the shard refuse
	// appends as if its journal had gone read-only.
	forcedRO atomic.Bool
	// rows counts logical rows ingested through the service (per-shard
	// balance reporting).
	rows atomic.Uint64
}

// health is the shard's durability state: the persist journal's state
// machine when the shard is persistent, Healthy for wrapped stores, with
// the admin override taking precedence.
func (sh *shard) health() persist.HealthState {
	if sh.forcedRO.Load() {
		return persist.StateReadOnly
	}
	if sh.ps != nil {
		return sh.ps.Health()
	}
	return persist.StateHealthy
}

func healthString(h persist.HealthState) string {
	switch h {
	case persist.StateHealthy:
		return "healthy"
	case persist.StateDegraded:
		return "degraded"
	default:
		return "readonly"
	}
}

// errReadOnly marks append rejections that map to 503.
type errReadOnly struct{ shard int }

func (e errReadOnly) Error() string {
	return fmt.Sprintf("shard %d is read-only", e.shard)
}

// apply lands one batch item (n aligned rows across the item's columns) on
// the shard, creating the table on first touch. Caller-supplied column sets
// must match the table's schema exactly on every later append, so rows stay
// aligned. Called under sh.mu.
func (sh *shard) apply(it *appendItem, n int) error {
	if sh.health() == persist.StateReadOnly {
		return errReadOnly{sh.id}
	}
	name := qualify(it.Tenant, it.Table)
	tb, ok := sh.store.Lookup(name)
	if !ok {
		tb = sh.store.AddTable(name)
		for _, col := range sortedKeys(it.Strs) {
			tb.AddString(col, dict.Array)
		}
		for _, col := range sortedKeys(it.Ints) {
			tb.AddInt64(col)
		}
		for _, col := range sortedKeys(it.Floats) {
			tb.AddFloat64(col)
		}
	}
	strCols := tb.StringColumns()
	intCols := tb.Int64Columns()
	floatCols := tb.Float64Columns()
	if len(it.Strs) != len(strCols) || len(it.Ints) != len(intCols) || len(it.Floats) != len(floatCols) {
		return fmt.Errorf("append to %q: column set does not match table schema", name)
	}
	for col, vals := range it.Strs {
		c, ok := tb.LookupString(col)
		if !ok {
			return fmt.Errorf("append to %q: no string column %q", name, col)
		}
		for _, v := range vals {
			c.Append(v)
		}
	}
	for col, vals := range it.Ints {
		c, ok := tb.LookupInt64(col)
		if !ok {
			return fmt.Errorf("append to %q: no int column %q", name, col)
		}
		for _, v := range vals {
			c.Append(v)
		}
	}
	for col, vals := range it.Floats {
		c, ok := tb.LookupFloat64(col)
		if !ok {
			return fmt.Errorf("append to %q: no float column %q", name, col)
		}
		for _, v := range vals {
			c.Append(v)
		}
	}
	sh.rows.Add(uint64(n))
	return nil
}

// sync is the per-batch WAL group commit: one fsync covering every row the
// batch appended to this shard. No-op for wrapped shards.
func (sh *shard) sync() error {
	if sh.ps == nil {
		return nil
	}
	return sh.ps.Sync()
}

// stringColumn resolves a string column for a query without creating
// anything.
func (sh *shard) stringColumn(tenant, table, col string) (*colstore.StringColumn, error) {
	tb, ok := sh.store.Lookup(qualify(tenant, table))
	if !ok {
		return nil, fmt.Errorf("no table %q for tenant %q", table, tenant)
	}
	c, ok := tb.LookupString(col)
	if !ok {
		return nil, fmt.Errorf("no string column %q in table %q", col, table)
	}
	return c, nil
}

// close shuts the shard down: the merge daemon first (drains deltas), then
// the journal.
func (sh *shard) close() error {
	var first error
	if sh.sched != nil {
		if err := sh.sched.Close(); err != nil && first == nil {
			first = err
		}
	}
	if sh.ps != nil {
		if err := sh.ps.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package service

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func oneItem(tenant, table string, names []string) AppendItem {
	return AppendItem{
		Tenant: tenant,
		Table:  table,
		Strs:   map[string][]string{"name": names},
		Ints:   map[string][]int64{"n": seqInts(len(names))},
	}
}

func seqInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// TestServiceSmoke is the tier-1 end-to-end check: batched append across
// shards, the three query endpoints, stats/health, and the no-leak pin
// invariant.
func TestServiceSmoke(t *testing.T) {
	srv, cl := newTestServer(t, Options{Shards: 2, GossipInterval: -1})

	res, err := cl.Append([]AppendItem{
		oneItem("acme", "orders", []string{"alpha", "beta", "alpha", "gamma"}),
		oneItem("globex", "orders", []string{"delta", "delta"}),
	})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	for i, r := range res {
		if !r.OK {
			t.Fatalf("append item %d failed: %s", i, r.Error)
		}
	}

	sc, err := cl.ScanEq("acme", "orders", "name", "alpha")
	if err != nil || sc.Count != 2 {
		t.Fatalf("scan eq alpha: count=%d err=%v", sc.Count, err)
	}
	if len(sc.Rows) != 2 || sc.Rows[0] != 0 || sc.Rows[1] != 2 {
		t.Fatalf("scan rows = %v", sc.Rows)
	}
	rc, err := cl.ScanRange("acme", "orders", "name", "b", "e")
	if err != nil || rc.Count != 1 { // only "beta" in [b, e)
		t.Fatalf("scan range: count=%d err=%v", rc.Count, err)
	}
	n, err := cl.CountEq("globex", "orders", "name", "delta")
	if err != nil || n != 2 {
		t.Fatalf("count: %d err=%v", n, err)
	}
	// Locate resolves against the pinned main dictionary: values still in
	// the delta have no stable code yet.
	if _, found, err := cl.Locate("acme", "orders", "name", "gamma"); err != nil || found {
		t.Fatalf("locate of delta-resident value: found=%v err=%v", found, err)
	}
	if _, found, _ := cl.Locate("acme", "orders", "name", "nope"); found {
		t.Fatal("locate found a value never appended")
	}

	// Unknown column is a 404, not a panic, and leaks no snapshot.
	if _, err := cl.CountEq("acme", "orders", "nope", "x"); err == nil {
		t.Fatal("count on unknown column should fail")
	}
	if st, err := cl.Stats(); err != nil || st["shards"] == nil {
		t.Fatalf("stats: %v %v", st, err)
	}
	if state, ok, err := cl.Health(); err != nil || !ok || state != "healthy" {
		t.Fatalf("health: %s ok=%v err=%v", state, ok, err)
	}
	if live := srv.PinnedSnapshots(); live != 0 {
		t.Fatalf("pinned snapshots leaked: %d", live)
	}
	if srv.TotalPins() == 0 {
		t.Fatal("queries took no pins")
	}
}

// TestRoutingStableAcrossRestart checks the shard-routing invariant: the
// same (tenant, table) routes to the same shard across a full server
// restart, and the rows land back in the recovered shard.
func TestRoutingStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	pairs := [][2]string{
		{"t0", "a"}, {"t0", "b"}, {"t1", "a"}, {"t2", "x"}, {"t3", "y"}, {"", "bare"},
	}
	opts := Options{Shards: 4, Dir: dir, GossipInterval: -1, NoDaemons: true}

	srv, cl := func() (*Server, *Client) {
		srv, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, &Client{Base: ts.URL, HTTP: ts.Client()}
	}()

	route := map[[2]string]int{}
	for _, p := range pairs {
		route[p] = srv.ShardFor(p[0], p[1])
		if _, err := cl.Append([]AppendItem{oneItem(p[0], p[1], []string{"v-" + p[0], "v-" + p[0]})}); err != nil {
			t.Fatalf("append %v: %v", p, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	srv2, cl2 := newTestServer(t, opts)
	for _, p := range pairs {
		if got := srv2.ShardFor(p[0], p[1]); got != route[p] {
			t.Fatalf("pair %v routed to shard %d before restart, %d after", p, route[p], got)
		}
		n, err := cl2.CountEq(p[0], p[1], "name", "v-"+p[0])
		if err != nil || n != 2 {
			t.Fatalf("pair %v lost rows after restart: n=%d err=%v", p, n, err)
		}
	}
}

// TestConcurrentDistinctShardAppends hammers distinct (tenant, table)
// pairs from many goroutines; with per-shard locking this must be
// race-clean (the race detector enforces it in check builds) and lose no
// rows.
func TestConcurrentDistinctShardAppends(t *testing.T) {
	srv, cl := newTestServer(t, Options{Shards: 4, GossipInterval: -1})
	const writers, batches, rowsPer = 8, 10, 32

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			vals := make([]string, rowsPer)
			for i := range vals {
				vals[i] = fmt.Sprintf("v-%d-%d", w, i%7)
			}
			for b := 0; b < batches; b++ {
				if _, err := cl.Append([]AppendItem{oneItem(tenant, "events", vals)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := uint64(0)
	for i := 0; i < srv.NumShards(); i++ {
		total += srv.ShardRows(i)
	}
	if want := uint64(writers * batches * rowsPer); total != want {
		t.Fatalf("ingested %d rows across shards, want %d", total, want)
	}
	for w := 0; w < writers; w++ {
		tenant := fmt.Sprintf("tenant-%d", w)
		n, err := cl.CountEq(tenant, "events", "name", fmt.Sprintf("v-%d-0", w))
		if err != nil {
			t.Fatalf("count %s: %v", tenant, err)
		}
		if want := batches * (rowsPer/7 + 1); n != want { // i%7==0 hits ceil(32/7)=5 per batch
			t.Fatalf("tenant %s: count=%d want %d", tenant, n, want)
		}
	}
}

// TestReadOnlyShard503 forces one shard read-only and checks the contract:
// appends owned by it fail with 503, appends owned by other shards keep
// ingesting, and queries against the read-only shard still serve.
func TestReadOnlyShard503(t *testing.T) {
	srv, cl := newTestServer(t, Options{Shards: 4, GossipInterval: -1})

	// Find two tenants on different shards.
	roTenant, okTenant := "", ""
	for i := 0; i < 64 && (roTenant == "" || okTenant == ""); i++ {
		tn := fmt.Sprintf("tenant-%d", i)
		switch srv.ShardFor(tn, "logs") {
		case 0:
			if roTenant == "" {
				roTenant = tn
			}
		default:
			if okTenant == "" {
				okTenant = tn
			}
		}
	}
	if roTenant == "" || okTenant == "" {
		t.Fatal("could not find tenants on distinct shards")
	}
	if _, err := cl.Append([]AppendItem{oneItem(roTenant, "logs", []string{"pre"})}); err != nil {
		t.Fatalf("pre-RO append: %v", err)
	}

	srv.SetShardReadOnly(0, true)
	_, err := cl.Append([]AppendItem{oneItem(roTenant, "logs", []string{"x"})})
	if !IsUnavailable(err) {
		t.Fatalf("append to read-only shard: want 503, got %v", err)
	}
	if _, err := cl.Append([]AppendItem{oneItem(okTenant, "logs", []string{"y", "y"})}); err != nil {
		t.Fatalf("append to healthy shard during RO: %v", err)
	}
	// Queries on the read-only shard still work, from a pinned snapshot.
	if n, err := cl.CountEq(roTenant, "logs", "name", "pre"); err != nil || n != 1 {
		t.Fatalf("query on read-only shard: n=%d err=%v", n, err)
	}
	if state, ok, err := cl.Health(); err != nil || !ok || state != "readonly" {
		t.Fatalf("health during partial RO: %s ok=%v err=%v", state, ok, err)
	}

	srv.SetShardReadOnly(0, false)
	if _, err := cl.Append([]AppendItem{oneItem(roTenant, "logs", []string{"back"})}); err != nil {
		t.Fatalf("append after clearing RO: %v", err)
	}
	if live := srv.PinnedSnapshots(); live != 0 {
		t.Fatalf("pinned snapshots leaked: %d", live)
	}
}

// TestSnapshotReleasedOnErrorPaths drives requests that fail after the
// snapshot pin (bad scan predicate) and checks no pin leaks.
func TestSnapshotReleasedOnErrorPaths(t *testing.T) {
	srv, cl := newTestServer(t, Options{Shards: 2, GossipInterval: -1})
	if _, err := cl.Append([]AppendItem{oneItem("a", "t", []string{"x"})}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// A scan with neither eq nor lo/hi 400s after the pin was taken.
	var out map[string]any
	err := cl.get("/v1/scan", queryArgs("a", "t", "name"), &out)
	if err == nil {
		t.Fatal("scan without predicate should 400")
	}
	if live := srv.PinnedSnapshots(); live != 0 {
		t.Fatalf("pin leaked on error path: %d", live)
	}
	if srv.TotalPins() == 0 {
		t.Fatal("error-path scan never pinned")
	}
}

// TestWrappedStores covers NewWithStores: the torture harness's embedding
// mode, where the server fronts pre-existing stores with the empty tenant.
func TestWrappedStores(t *testing.T) {
	st := colstore.NewStore()
	tb := st.AddTable("t")
	c := tb.AddString("c", dict.Array)
	for _, v := range []string{"a", "b", "a"} {
		c.Append(v)
	}
	c.Merge(dict.Array)
	srv := NewWithStores([]*colstore.Store{st}, Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{Base: ts.URL, HTTP: ts.Client()}

	if n, err := cl.CountEq("", "t", "c", "a"); err != nil || n != 2 {
		t.Fatalf("wrapped count: n=%d err=%v", n, err)
	}
	sc, err := cl.ScanEq("", "t", "c", "b")
	if err != nil || sc.Count != 1 || sc.Rows[0] != 1 {
		t.Fatalf("wrapped scan: %+v err=%v", sc, err)
	}
	if _, found, err := cl.Locate("", "t", "c", "b"); err != nil || !found {
		t.Fatalf("locate merged value: found=%v err=%v", found, err)
	}
	if live := srv.PinnedSnapshots(); live != 0 {
		t.Fatalf("pin leak: %d", live)
	}
}

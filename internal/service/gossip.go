package service

import (
	"context"
	"sync/atomic"
	"time"
)

// gossip is the in-process memory-pressure exchange between shards. Each
// round, every shard publishes its current footprint to its own slot on
// the board (no shared lock with the selection path), then reads the sum
// of everyone's latest observation and feeds the implied cluster-wide free
// memory into its own Manager's feedback loop. The paper's Figure-8 loop
// assumed one global budget behind one lock; here every shard runs the
// same loop against an eventually-consistent view of the same budget, so
// selection keeps scaling with the shard count while all shards still
// converge on one memory target.
type gossip struct {
	shards []*shard
	budget uint64
	// board[i] is shard i's last published footprint in bytes. Slots are
	// written and read with atomics only — a shard never blocks on another
	// shard's publication.
	board []atomic.Uint64
	// rounds counts completed gossip rounds (introspection).
	rounds atomic.Uint64
}

func newGossip(shards []*shard, budget uint64) *gossip {
	return &gossip{
		shards: shards,
		budget: budget,
		board:  make([]atomic.Uint64, len(shards)),
	}
}

// step runs one gossip round: publish, then aggregate and observe.
func (g *gossip) step() {
	for i, sh := range g.shards {
		g.board[i].Store(sh.store.Bytes())
	}
	var used uint64
	for i := range g.board {
		used += g.board[i].Load()
	}
	free := uint64(0)
	if used < g.budget {
		free = g.budget - used
	}
	for _, sh := range g.shards {
		sh.mgr.ObserveFreeMemory(free)
	}
	g.rounds.Add(1)
}

func (g *gossip) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.step()
		}
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"strdict/internal/colstore"
	"strdict/internal/persist"
)

// appendItem is one element of a batched append: n aligned rows for one
// (tenant, table), given column-wise.
type appendItem struct {
	Tenant string               `json:"tenant"`
	Table  string               `json:"table"`
	Strs   map[string][]string  `json:"strs,omitempty"`
	Ints   map[string][]int64   `json:"ints,omitempty"`
	Floats map[string][]float64 `json:"floats,omitempty"`
}

// rows validates the item and returns its row count: every column must
// carry the same number of values, at least one row, with valid names.
func (it *appendItem) rows() (int, error) {
	if !validName(it.Tenant, true) || !validName(it.Table, false) {
		return 0, fmt.Errorf("invalid tenant %q / table %q", it.Tenant, it.Table)
	}
	n := -1
	check := func(col string, k int) error {
		if !validName(col, false) {
			return fmt.Errorf("invalid column name %q", col)
		}
		if n == -1 {
			n = k
		} else if k != n {
			return fmt.Errorf("column %q has %d rows, want %d", col, k, n)
		}
		return nil
	}
	for col, vals := range it.Strs {
		if err := check(col, len(vals)); err != nil {
			return 0, err
		}
	}
	for col, vals := range it.Ints {
		if err := check(col, len(vals)); err != nil {
			return 0, err
		}
	}
	for col, vals := range it.Floats {
		if err := check(col, len(vals)); err != nil {
			return 0, err
		}
	}
	if n <= 0 {
		return 0, fmt.Errorf("append item for %q carries no rows", it.Table)
	}
	return n, nil
}

type appendRequest struct {
	Appends []appendItem `json:"appends"`
}

type appendResult struct {
	OK    bool   `json:"ok"`
	Shard int    `json:"shard"`
	Error string `json:"error,omitempty"`
}

type appendResponse struct {
	Results []appendResult `json:"results"`
	Rows    int            `json:"rows"`
}

func (srv *Server) routes() {
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("POST /v1/append", srv.handleAppend)
	srv.mux.HandleFunc("GET /v1/scan", srv.handleScan)
	srv.mux.HandleFunc("GET /v1/count", srv.handleCount)
	srv.mux.HandleFunc("GET /v1/locate", srv.handleLocate)
	srv.mux.HandleFunc("GET /v1/stats", srv.handleStats)
	srv.mux.HandleFunc("GET /v1/health", srv.handleHealth)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleAppend lands a batch: items are validated, grouped by owning
// shard, applied shard-parallel under each shard's write lock, and each
// touched shard gets exactly one WAL group commit (Sync) for the whole
// batch. Items for a read-only shard fail with 503 while the rest of the
// batch proceeds.
func (srv *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Appends) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	results := make([]appendResult, len(req.Appends))
	rowCounts := make([]int, len(req.Appends))
	byShard := make(map[int][]int) // shard -> item indices, batch order preserved
	for i := range req.Appends {
		it := &req.Appends[i]
		n, err := it.rows()
		shardID := -1
		if err == nil {
			shardID = shardOf(it.Tenant, it.Table, len(srv.shards))
			rowCounts[i] = n
			byShard[shardID] = append(byShard[shardID], i)
		} else {
			results[i] = appendResult{OK: false, Shard: -1, Error: err.Error()}
		}
		results[i].Shard = shardID
	}

	roFailed := make([]bool, len(req.Appends))
	var wg sync.WaitGroup
	for shardID, items := range byShard {
		wg.Add(1)
		go func(sh *shard, items []int) {
			defer wg.Done()
			sh.mu.Lock()
			for _, i := range items {
				if err := sh.apply(&req.Appends[i], rowCounts[i]); err != nil {
					results[i] = appendResult{OK: false, Shard: sh.id, Error: err.Error()}
					roFailed[i] = errors.As(err, &errReadOnly{})
				} else {
					results[i] = appendResult{OK: true, Shard: sh.id}
				}
			}
			sh.mu.Unlock()
			// One group commit per shard per batch.
			if err := sh.sync(); err != nil {
				for _, i := range items {
					if results[i].OK {
						results[i] = appendResult{OK: false, Shard: sh.id, Error: "sync: " + err.Error()}
					}
				}
			}
		}(srv.shards[shardID], items)
	}
	wg.Wait()

	status := http.StatusOK
	rows := 0
	for i, res := range results {
		switch {
		case res.OK:
			rows += rowCounts[i]
		case roFailed[i]:
			status = http.StatusServiceUnavailable
		default:
			if status == http.StatusOK {
				status = http.StatusBadRequest
			}
		}
	}
	writeJSON(w, status, appendResponse{Results: results, Rows: rows})
}

// queryColumn resolves the query target and pins the request's snapshot.
// The returned release func must run on every exit path.
func (srv *Server) queryColumn(w http.ResponseWriter, r *http.Request) (*querySnap, bool) {
	q := r.URL.Query()
	tenant, table, col := q.Get("tenant"), q.Get("table"), q.Get("col")
	if !validName(tenant, true) || !validName(table, false) || !validName(col, false) {
		writeErr(w, http.StatusBadRequest, "tenant, table and col are required")
		return nil, false
	}
	shardID := shardOf(tenant, table, len(srv.shards))
	sh := srv.shards[shardID]
	sh.mu.RLock()
	c, err := sh.stringColumn(tenant, table, col)
	sh.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return &querySnap{srv: srv, shard: shardID, snap: srv.pin(c)}, true
}

type querySnap struct {
	srv   *Server
	shard int
	snap  *colstore.Snapshot
}

func (qs *querySnap) release() { qs.srv.unpin(qs.snap) }

// handleScan returns the row indices matching eq=<value> or
// lo=<lo>&hi=<hi> (half-open range), capped at MaxScanRows indices; the
// uncapped match count is always reported.
func (srv *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	qs, ok := srv.queryColumn(w, r)
	if !ok {
		return
	}
	defer qs.release()
	q := r.URL.Query()
	var rows []int
	switch {
	case q.Has("eq"):
		rows = qs.snap.ScanEq(q.Get("eq"), nil)
	case q.Has("lo") || q.Has("hi"):
		rows = qs.snap.ScanRange(q.Get("lo"), q.Get("hi"), nil)
	default:
		writeErr(w, http.StatusBadRequest, "scan needs eq= or lo=/hi=")
		return
	}
	count := len(rows)
	truncated := false
	if count > srv.opts.MaxScanRows {
		rows = rows[:srv.opts.MaxScanRows]
		truncated = true
	}
	if rows == nil {
		rows = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shard":     qs.shard,
		"count":     count,
		"rows":      rows,
		"truncated": truncated,
	})
}

// handleCount returns the number of rows equal to value=.
func (srv *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	qs, ok := srv.queryColumn(w, r)
	if !ok {
		return
	}
	defer qs.release()
	writeJSON(w, http.StatusOK, map[string]any{
		"shard": qs.shard,
		"count": qs.snap.CountEq(r.URL.Query().Get("value")),
	})
}

// handleLocate returns the value ID of value= in the pinned dictionary.
func (srv *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	qs, ok := srv.queryColumn(w, r)
	if !ok {
		return
	}
	defer qs.release()
	code, found := qs.snap.Locate(r.URL.Query().Get("value"))
	writeJSON(w, http.StatusOK, map[string]any{
		"shard": qs.shard,
		"found": found,
		"code":  code,
	})
}

type shardStats struct {
	ID        int     `json:"id"`
	Health    string  `json:"health"`
	Tables    int     `json:"tables"`
	Rows      uint64  `json:"rows"`
	Bytes     uint64  `json:"bytes"`
	C         float64 `json:"c"`
	DictRaw   uint64  `json:"dict_raw_bytes"`
	DictBytes uint64  `json:"dict_bytes"`
	// DictRatio is raw dictionary content over its encoded footprint — the
	// paper's dictionary compression ratio, aggregated over the shard.
	DictRatio float64        `json:"dict_ratio"`
	Formats   map[string]int `json:"formats"`
}

// handleStats reports per-shard balance, health, the live trade-off c,
// format mix, and aggregate dictionary compression ratios.
func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := make([]shardStats, 0, len(srv.shards))
	for _, sh := range srv.shards {
		st := shardStats{
			ID:      sh.id,
			Health:  healthString(sh.health()),
			Rows:    sh.rows.Load(),
			Bytes:   sh.store.Bytes(),
			C:       sh.mgr.C(),
			Formats: map[string]int{},
		}
		for _, name := range sh.store.TableNames() {
			tb, ok := sh.store.Lookup(name)
			if !ok {
				continue
			}
			st.Tables++
			for _, c := range tb.StringColumns() {
				snap := srv.pin(c)
				st.Formats[snap.Format().String()]++
				st.DictBytes += snap.DictBytes()
				var raw uint64
				snap.ForEachValue(func(id uint32, value []byte) bool {
					raw += uint64(len(value))
					return true
				})
				st.DictRaw += raw
				srv.unpin(snap)
			}
		}
		if st.DictBytes > 0 {
			st.DictRatio = float64(st.DictRaw) / float64(st.DictBytes)
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":        out,
		"pins_live":     srv.pinsLive.Load(),
		"pins_total":    srv.pinsTotal.Load(),
		"gossip_rounds": srv.gossipRounds(),
		"memory_budget": srv.opts.MemoryBudget,
		"max_scan_rows": srv.opts.MaxScanRows,
		"shards_total":  len(srv.shards),
	})
}

func (srv *Server) gossipRounds() uint64 {
	if srv.gossip == nil {
		return 0
	}
	return srv.gossip.rounds.Load()
}

// handleHealth aggregates the per-shard durability states; the response is
// 503 only when every shard is read-only (no shard can ingest).
func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	type shardHealth struct {
		ID     int    `json:"id"`
		Health string `json:"health"`
	}
	worst, allRO := persist.StateHealthy, true
	out := make([]shardHealth, 0, len(srv.shards))
	for _, sh := range srv.shards {
		h := sh.health()
		if h > worst {
			worst = h
		}
		if h != persist.StateReadOnly {
			allRO = false
		}
		out = append(out, shardHealth{ID: sh.id, Health: healthString(h)})
	}
	status := http.StatusOK
	if allRO {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"health": healthString(worst),
		"shards": out,
	})
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Client is a thin typed client for the /v1 API — what cmd/loadbench and
// the tests speak; any HTTP client works against the same endpoints.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError reports a non-2xx API response.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Code, e.Body)
}

// IsUnavailable reports whether err is a 503 from the service (a read-only
// shard refusing appends).
func IsUnavailable(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusServiceUnavailable
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

func (c *Client) get(path string, q url.Values, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.Base+path+"?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// AppendItem is one batched-append element: aligned column values for a
// (tenant, table).
type AppendItem struct {
	Tenant string               `json:"tenant"`
	Table  string               `json:"table"`
	Strs   map[string][]string  `json:"strs,omitempty"`
	Ints   map[string][]int64   `json:"ints,omitempty"`
	Floats map[string][]float64 `json:"floats,omitempty"`
}

// AppendResult mirrors the per-item outcome of a batch.
type AppendResult struct {
	OK    bool   `json:"ok"`
	Shard int    `json:"shard"`
	Error string `json:"error,omitempty"`
}

// Append posts one batch. The returned per-item results are valid even
// when the call errors with a *StatusError carrying 400/503 — mixed
// batches report per item.
func (c *Client) Append(items []AppendItem) ([]AppendResult, error) {
	body, err := json.Marshal(map[string]any{"appends": items})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/append", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out struct {
		Results []AppendResult `json:"results"`
	}
	err = c.do(req, &out)
	if se, ok := err.(*StatusError); ok {
		// Recover per-item results from the error body when present.
		var parsed struct {
			Results []AppendResult `json:"results"`
		}
		if json.Unmarshal([]byte(se.Body), &parsed) == nil {
			return parsed.Results, err
		}
	}
	return out.Results, err
}

func queryArgs(tenant, table, col string) url.Values {
	return url.Values{"tenant": {tenant}, "table": {table}, "col": {col}}
}

// ScanResult is a /v1/scan response.
type ScanResult struct {
	Shard     int   `json:"shard"`
	Count     int   `json:"count"`
	Rows      []int `json:"rows"`
	Truncated bool  `json:"truncated"`
}

// ScanEq returns the rows of (tenant, table, col) equal to value.
func (c *Client) ScanEq(tenant, table, col, value string) (ScanResult, error) {
	q := queryArgs(tenant, table, col)
	q.Set("eq", value)
	var out ScanResult
	err := c.get("/v1/scan", q, &out)
	return out, err
}

// ScanRange returns the rows with lo <= value < hi.
func (c *Client) ScanRange(tenant, table, col, lo, hi string) (ScanResult, error) {
	q := queryArgs(tenant, table, col)
	q.Set("lo", lo)
	q.Set("hi", hi)
	var out ScanResult
	err := c.get("/v1/scan", q, &out)
	return out, err
}

// CountEq returns the number of rows equal to value.
func (c *Client) CountEq(tenant, table, col, value string) (int, error) {
	q := queryArgs(tenant, table, col)
	q.Set("value", value)
	var out struct {
		Count int `json:"count"`
	}
	err := c.get("/v1/count", q, &out)
	return out.Count, err
}

// Locate returns the dictionary value ID of value in the pinned snapshot.
func (c *Client) Locate(tenant, table, col, value string) (uint32, bool, error) {
	q := queryArgs(tenant, table, col)
	q.Set("value", value)
	var out struct {
		Found bool   `json:"found"`
		Code  uint32 `json:"code"`
	}
	err := c.get("/v1/locate", q, &out)
	return out.Code, out.Found, err
}

// Stats fetches /v1/stats as loosely-typed JSON.
func (c *Client) Stats() (map[string]any, error) {
	var out map[string]any
	err := c.get("/v1/stats", url.Values{}, &out)
	return out, err
}

// Health fetches /v1/health; ok is false when every shard is read-only.
func (c *Client) Health() (state string, ok bool, err error) {
	var out struct {
		Health string `json:"health"`
	}
	err = c.get("/v1/health", url.Values{}, &out)
	if se, isSE := err.(*StatusError); isSE && se.Code == http.StatusServiceUnavailable {
		var parsed struct {
			Health string `json:"health"`
		}
		if json.Unmarshal([]byte(se.Body), &parsed) == nil {
			return parsed.Health, false, nil
		}
	}
	return out.Health, err == nil, err
}

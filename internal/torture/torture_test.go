package torture

import (
	"bufio"
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"
)

var (
	flagSeed  = flag.Int64("torture.seed", 0, "run only this seed (0 = use testdata/seeds.txt or the long-run default)")
	flagSteps = flag.Int("torture.steps", 0, "override the per-run step count (0 = package default)")
	flagLong  = flag.Bool("torture.long", false, "enable the long torture run (make torture)")
)

// seedList loads the pinned regression seeds. Each line is one seed;
// '#' starts a comment.
func seedList(t *testing.T) []int64 {
	f, err := os.Open("testdata/seeds.txt")
	if err != nil {
		t.Fatalf("seed list: %v", err)
	}
	defer f.Close()
	var seeds []int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("seed list: bad line %q: %v", line, err)
		}
		seeds = append(seeds, n)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return seeds
}

func runSeed(t *testing.T, seed int64, steps int) {
	t.Helper()
	err := Run(Config{
		Seed:  seed,
		Steps: steps,
		Dir:   t.TempDir(),
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("replay with: make torture SEED=%d\n%v", seed, err)
	}
}

// TestTortureShort replays the pinned seeds with a small step count — the
// deterministic ~10s run wired into scripts/check.sh. With -torture.seed it
// replays just that seed instead.
func TestTortureShort(t *testing.T) {
	steps := *flagSteps
	if steps == 0 {
		steps = 25
	}
	if *flagSeed != 0 {
		runSeed(t, *flagSeed, steps)
		return
	}
	for _, seed := range seedList(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			runSeed(t, seed, steps)
		})
	}
}

// TestTortureLong is the `make torture` entry point: a much longer run
// behind -torture.long, printing the failing seed so it can be pinned in
// testdata/seeds.txt and replayed exactly.
func TestTortureLong(t *testing.T) {
	if !*flagLong {
		t.Skip("long torture run disabled; use `make torture` (or -torture.long)")
	}
	steps := *flagSteps
	if steps == 0 {
		steps = 200
	}
	if *flagSeed != 0 {
		runSeed(t, *flagSeed, steps)
		return
	}
	// Default long sweep: a fixed fan of seeds so even the long run is
	// reproducible without flags.
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			runSeed(t, seed, steps)
		})
	}
}

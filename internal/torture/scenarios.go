package torture

// The compound steps: concurrent interleavings, crash/recover (oracle 4),
// and the injected-fault scenarios (transient retry, permanent read-only
// degradation).

import (
	"path/filepath"
	"strings"
	"sync"
	"time"

	"strdict/internal/persist"
)

func isWALPath(path string) bool { return strings.HasSuffix(path, ".log") }

// isManifestFile and isPartFile match checkpoint artifacts by basename; both
// also match the ".tmp" staging names writeAtomic creates first, which is the
// path a Create fault must land on.
func isManifestFile(path string) bool {
	return strings.HasPrefix(filepath.Base(path), "manifest-")
}

func isPartFile(path string) bool {
	return strings.Contains(filepath.Base(path), ".part")
}

// opConcurrentBurst runs appenders, snapshot readers, partial merges and a
// checkpoint concurrently — the race-detector surface of the harness. All
// randomness is drawn from the seeded rng before the goroutines start, so
// the operation mix is deterministic even though the interleaving is not;
// the oracles only assert properties that hold under every interleaving
// (snapshot self-consistency during the burst, full model equality after
// the quiescent join).
func (h *harness) opConcurrentBurst() error {
	k := 50 + h.rng.Intn(300)
	tb := h.s.Table("t")

	// Pre-draw everything random: per-column values, reader probes, merge
	// targets.
	vals := make([][]string, len(h.cols))
	probes := make([][]string, len(h.cols))
	for i, c := range h.cols {
		vals[i] = c.nextValues(h.rng, k)
		for j := 0; j < 6; j++ {
			p := c.pool[h.rng.Intn(len(c.pool))]
			if j%3 == 2 {
				p += "\x01absent"
			}
			probes[i] = append(probes[i], p)
		}
	}
	mergeCol := h.cols[h.rng.Intn(len(h.cols))].name
	mergeK := 1 + h.rng.Intn(3)
	withCheckpoint := h.rng.Intn(2) == 0

	errs := make(chan error, 2*len(h.cols)+2)
	var wg sync.WaitGroup

	// One appender per column: the engine sees each column's rows in the
	// same order the model records them.
	for i, c := range h.cols {
		wg.Add(1)
		go func(name string, rows []string) {
			defer wg.Done()
			ec := tb.Str(name)
			for _, v := range rows {
				ec.Append(v)
			}
		}(c.name, vals[i])
	}
	// One reader per column: repeated snapshots, kernel vs scalar on each.
	// A snapshot is a single-goroutine handle, so each reader pins its own.
	for i, c := range h.cols {
		wg.Add(1)
		go func(name string, ps []string) {
			defer wg.Done()
			ec := tb.Str(name)
			for round := 0; round < 4; round++ {
				snap := ec.Snapshot()
				for _, p := range ps {
					kern := snap.ScanEq(p, nil)
					scal := snap.ScanEqScalar(p, nil)
					if !equalRows(kern, scal) {
						errs <- h.fail("burst: %s ScanEq(%q) kernel=%d scalar=%d rows", name, p, len(kern), len(scal))
						snap.Release()
						return
					}
					if got := snap.CountEq(p); got != len(scal) {
						errs <- h.fail("burst: %s CountEq(%q)=%d scalar=%d", name, p, got, len(scal))
						snap.Release()
						return
					}
				}
				lo, hi := ps[0], ps[1]
				if lo > hi {
					lo, hi = hi, lo
				}
				if !equalRows(snap.ScanRange(lo, hi, nil), snap.ScanRangeScalar(lo, hi, nil)) {
					errs <- h.fail("burst: %s ScanRange(%q,%q) kernel != scalar", name, lo, hi)
					snap.Release()
					return
				}
				snap.Release()
			}
		}(c.name, probes[i])
	}
	// A merger folding sealed segments mid-burst.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ec := tb.Str(mergeCol)
		for round := 0; round < 2; round++ {
			ec.MergePartial(mergeK)
		}
	}()
	// Optionally a store-wide checkpoint (safe against concurrent string
	// appends and merges; numeric columns are quiescent during the burst).
	if withCheckpoint {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.s.Checkpoint()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Quiescent again. How much the concurrent merger folded depends on the
	// interleaving, so first normalize that column with a full merge — after
	// this point the engine state is a pure function of the seed again and
	// replays are exact.
	mc := tb.Str(mergeCol)
	mc.Merge(mc.Format())

	// Fold the burst into the model, align the numeric columns, and let the
	// post-step oracles do the full comparison.
	for i, c := range h.cols {
		c.model = append(c.model, vals[i]...)
	}
	ic, fc := tb.Int("i"), tb.Float("f")
	for i := 0; i < k; i++ {
		iv := h.rng.Int63n(1 << 40)
		fv := float64(h.rng.Intn(1<<20)) / 16
		ic.Append(iv)
		fc.Append(fv)
		h.intModel = append(h.intModel, iv)
		h.floatModel = append(h.floatModel, fv)
	}
	if err := h.s.Sync(); err != nil {
		return h.fail("burst: sync: %v", err)
	}
	h.logf("step %d: concurrent burst %d rows/col (checkpoint=%v)", h.step, k, withCheckpoint)
	h.raiseFloors()
	return nil
}

// opCrashRecover is oracle 4 as a scheduled step: kill the store, recover,
// and verify the recovered contents sit between the durable floor and the
// full model, with a bit-identical prefix. The model is then truncated to
// the recovered reality so oracles 1-3 keep holding.
func (h *harness) opCrashRecover() error {
	h.logf("step %d: crash + recover", h.step)
	return h.crashAndRecover()
}

func (h *harness) crashAndRecover() error {
	h.ffs.Clear()
	h.s.Crash()
	h.drainEvents()
	if err := h.open(); err != nil {
		return err
	}
	tb := h.s.Table("t")
	if tb == nil {
		return h.fail("recover: table lost")
	}
	for _, c := range h.cols {
		ec := tb.Str(c.name)
		if ec == nil {
			return h.fail("recover: column %s lost", c.name)
		}
		n := ec.Len()
		if n < c.floor || n > len(c.model) {
			return h.fail("recover: %s rows=%d outside [floor %d, appended %d]", c.name, n, c.floor, len(c.model))
		}
		c.model = c.model[:n]
		c.floor = n
		for _, i := range h.sampleRows(n) {
			if got := ec.Get(i); got != c.model[i] {
				return h.fail("recover: %s row %d engine=%q model=%q", c.name, i, got, c.model[i])
			}
		}
	}
	ic, fc := tb.Int("i"), tb.Float("f")
	ni, nf := ic.Len(), fc.Len()
	if ni < h.intFloor || ni > len(h.intModel) || nf > len(h.floatModel) {
		return h.fail("recover: numeric rows=%d/%d outside [floor %d, appended %d/%d]",
			ni, nf, h.intFloor, len(h.intModel), len(h.floatModel))
	}
	h.intModel = h.intModel[:ni]
	h.floatModel = h.floatModel[:nf]
	h.intFloor = ni
	return nil
}

// opIncrementalCheckpoint checks the incremental-checkpoint contract as a
// scheduled step: fresh rows land on every column, a baseline checkpoint
// leaves every column clean, then exactly one string column is dirtied (the
// merge folds its fresh delta and publishes a new main part). The merge's
// own synchronous checkpoint must rewrite exactly that one part, and a
// follow-up explicit checkpoint over the now-clean store must rewrite none
// — every part is re-referenced by its new manifest, not rewritten.
func (h *harness) opIncrementalCheckpoint() error {
	if err := h.opAppendBatch(); err != nil {
		return err
	}
	if err := h.s.Checkpoint(); err != nil {
		return h.fail("incremental checkpoint: baseline: %v", err)
	}
	c := h.cols[h.rng.Intn(len(h.cols))]
	ec := h.s.Table("t").Str(c.name)
	res := ec.Merge(ec.Format())
	if err := h.checkHealthy("incremental-checkpoint merge"); err != nil {
		return err
	}
	merged := h.s.LastCheckpoint()
	if res.Folded > 0 && merged.PartsWritten != 1 {
		return h.fail("incremental checkpoint: merge folded %d rows into %s but its checkpoint rewrote %d parts (reused %d)",
			res.Folded, c.name, merged.PartsWritten, merged.PartsReused)
	}
	if err := h.s.Checkpoint(); err != nil {
		return h.fail("incremental checkpoint: %v", err)
	}
	if clean := h.s.LastCheckpoint(); clean.PartsWritten != 0 {
		return h.fail("incremental checkpoint: clean checkpoint rewrote %d parts (reused %d)",
			clean.PartsWritten, clean.PartsReused)
	}
	h.logf("step %d: incremental checkpoint %s (merge wrote %d, reused %d parts)",
		h.step, c.name, merged.PartsWritten, merged.PartsReused)
	h.raiseFloors()
	return nil
}

// opCrashMidCheckpoint kills a checkpoint in flight — a permanent Create
// fault on either the manifest or the part path — then crashes and recovers.
// The surviving manifest generation predates the failed checkpoint and, after
// earlier incremental checkpoints, typically mixes re-referenced old parts
// with rewritten ones; recovery must still be bit-identical (crashAndRecover
// runs oracle 4, and Run's post-step oracles do the full comparison). The
// orphaned part or manifest .tmp the crash leaves behind is the GC
// quarantine path's problem, exercised by later checkpoints in the run.
func (h *harness) opCrashMidCheckpoint() error {
	h.drainEvents()
	target, match := "manifest", isManifestFile
	if h.rng.Intn(2) == 0 {
		target, match = "part", isPartFile
	}
	// Dirty one column so the checkpoint actually attempts a part write.
	c := h.cols[h.rng.Intn(len(h.cols))]
	ec := h.s.Table("t").Str(c.name)
	ec.Merge(ec.Format())
	if err := h.checkHealthy("crash-mid-checkpoint merge"); err != nil {
		return err
	}
	h.ffs.FailAll(persist.OpCreate, errInjected, match)
	err := h.s.Checkpoint()
	h.logf("step %d: crash mid-checkpoint (%s create faulted, checkpoint err=%v)", h.step, target, err)
	// The manifest is written on every checkpoint, so that fault must
	// surface; a part fault may be dodged when the merge above published
	// nothing (empty column), which a successful checkpoint then skips.
	if target == "manifest" && err == nil {
		return h.fail("crash mid-checkpoint: manifest create faulted but checkpoint succeeded")
	}
	return h.crashAndRecover()
}

// opTransientFault injects a fault burst shorter than the retry budget into
// the WAL path and asserts the store rides it out: appends keep succeeding,
// nothing turns sticky, health returns to Healthy after passing through
// Degraded.
func (h *harness) opTransientFault() error {
	h.drainEvents()
	op := persist.OpSync
	if h.rng.Intn(2) == 0 {
		op = persist.OpWrite
	}
	n := 1 + h.rng.Intn(retryLimit) // <= retryLimit failures: always survivable
	h.ffs.FailNext(op, n, errInjected, isWALPath)
	h.logf("step %d: transient fault %v x%d", h.step, op, n)

	if err := h.opAppendBatch(); err != nil {
		return err
	}
	h.ffs.Clear()
	if err := h.s.Err(); err != nil {
		return h.fail("transient fault turned sticky: %v", err)
	}
	if got := h.s.Health(); got != persist.StateHealthy {
		return h.fail("transient fault: health=%v want healthy", got)
	}
	if got := h.s.DroppedRows(); got != 0 {
		return h.fail("transient fault: %d rows dropped", got)
	}
	// The Degraded-then-Healthy round trip must surface through the hook.
	if err := h.awaitEvent(persist.StateHealthy, 2*time.Second); err != nil {
		return err
	}
	h.raiseFloors()
	return nil
}

// opPermanentFault kills the WAL path outright: the store must degrade to
// an explicit read-only state (hook fired, Err sticky, refused rows
// counted) while reads stay bit-identical to the model. The scenario ends
// with a crash + recovery back to a healthy store.
func (h *harness) opPermanentFault() error {
	h.drainEvents()
	h.ffs.FailAll(persist.OpWrite, errInjected, isWALPath)
	h.ffs.FailAll(persist.OpSync, errInjected, isWALPath)
	h.logf("step %d: permanent WAL fault", h.step)

	// Appends are accepted in memory and mirrored in the model; the WAL
	// refuses them. Floors stay put (raiseFloors checks Err).
	tb := h.s.Table("t")
	k := 20 + h.rng.Intn(100)
	for _, c := range h.cols {
		vals := c.nextValues(h.rng, k)
		ec := tb.Str(c.name)
		for _, v := range vals {
			ec.Append(v)
		}
		c.model = append(c.model, vals...)
	}

	if err := h.s.Err(); err == nil {
		return h.fail("permanent fault: Err still nil")
	}
	if got := h.s.Health(); got != persist.StateReadOnly {
		return h.fail("permanent fault: health=%v want read-only", got)
	}
	if got := h.s.DroppedRows(); got == 0 {
		return h.fail("permanent fault: no rows counted dropped")
	}
	if err := h.awaitEvent(persist.StateReadOnly, 2*time.Second); err != nil {
		return err
	}
	// The read-only store still answers bit-identically to the model.
	if err := h.checkModel(); err != nil {
		return err
	}
	if err := h.checkKernels(); err != nil {
		return err
	}
	// Recover on a healed filesystem: the durable prefix comes back.
	return h.crashAndRecover()
}

// awaitEvent waits for a health event with the given state to come through
// the OnHealth hook (delivery is asynchronous).
func (h *harness) awaitEvent(want persist.HealthState, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		select {
		case ev := <-h.events:
			if ev.State == want {
				return nil
			}
		case <-time.After(time.Until(deadline)):
			return h.fail("health hook: no %v event within %v", want, timeout)
		}
	}
}

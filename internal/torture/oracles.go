package torture

// The differential oracles. Each is a pure check over quiescent state; the
// harness calls 1 and 2 after every step, 3 as its own (randomly scheduled)
// step, and 4 inside the crash/recover scenario in scenarios.go.

import (
	"sort"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

// checkModel is oracle 1: the engine agrees with the naive model store on
// every column — row counts and row values (sampled densely; small columns
// are compared in full).
func (h *harness) checkModel() error {
	tb := h.s.Table("t")
	for _, c := range h.cols {
		ec := tb.Str(c.name)
		if ec.Len() != len(c.model) {
			return h.fail("model: %s rows engine=%d model=%d", c.name, ec.Len(), len(c.model))
		}
		for _, i := range h.sampleRows(len(c.model)) {
			if got := ec.Get(i); got != c.model[i] {
				return h.fail("model: %s row %d engine=%q model=%q", c.name, i, got, c.model[i])
			}
		}
	}
	ic, fc := tb.Int("i"), tb.Float("f")
	if ic.Len() != len(h.intModel) || fc.Len() != len(h.floatModel) {
		return h.fail("model: numeric rows engine=%d/%d model=%d/%d",
			ic.Len(), fc.Len(), len(h.intModel), len(h.floatModel))
	}
	for _, i := range h.sampleRows(len(h.intModel)) {
		if ic.Get(i) != h.intModel[i] {
			return h.fail("model: int row %d engine=%d model=%d", i, ic.Get(i), h.intModel[i])
		}
		if fc.Get(i) != h.floatModel[i] {
			return h.fail("model: float row %d engine=%v model=%v", i, fc.Get(i), h.floatModel[i])
		}
	}
	return nil
}

// sampleRows picks the rows oracle 1 compares: everything for small
// columns, otherwise both ends (merge/recovery boundaries live there) plus
// a random spread.
func (h *harness) sampleRows(n int) []int {
	if n <= 512 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	rows := make([]int, 0, 320)
	for i := 0; i < 32; i++ {
		rows = append(rows, i, n-1-i)
	}
	for i := 0; i < 256; i++ {
		rows = append(rows, h.rng.Intn(n))
	}
	return rows
}

// checkKernels is oracle 2: the vectorized ScanEq/ScanRange/CountEq paths
// (zone pruning on) agree with the scalar oracles on one snapshot per
// column, for probes both present in and absent from the corpus.
func (h *harness) checkKernels() error {
	tb := h.s.Table("t")
	for _, c := range h.cols {
		snap := tb.Str(c.name).Snapshot()
		err := h.checkKernelsOnSnapshot(snap, c)
		snap.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// checkKernelsOnSnapshot runs oracle 2's comparisons against one pinned
// snapshot (also reused by the burst readers and the post-recovery check).
func (h *harness) checkKernelsOnSnapshot(snap *colstore.Snapshot, c *column) error {
	probes := []string{
		c.pool[h.rng.Intn(len(c.pool))],
		c.pool[h.rng.Intn(len(c.pool))],
		c.pool[h.rng.Intn(len(c.pool))] + "\x01absent", // never in any corpus
	}
	for _, p := range probes {
		kern := snap.ScanEq(p, nil)
		scal := snap.ScanEqScalar(p, nil)
		if !equalRows(kern, scal) {
			return h.fail("kernels: %s ScanEq(%q) kernel=%d rows scalar=%d rows", c.name, p, len(kern), len(scal))
		}
		if got := snap.CountEq(p); got != len(scal) {
			return h.fail("kernels: %s CountEq(%q)=%d scalar=%d", c.name, p, got, len(scal))
		}
	}
	lo := c.pool[h.rng.Intn(len(c.pool))]
	hi := c.pool[h.rng.Intn(len(c.pool))]
	if lo > hi {
		lo, hi = hi, lo
	}
	kern := snap.ScanRange(lo, hi, nil)
	scal := snap.ScanRangeScalar(lo, hi, nil)
	if !equalRows(kern, scal) {
		return h.fail("kernels: %s ScanRange(%q,%q) kernel=%d rows scalar=%d rows", c.name, lo, hi, len(kern), len(scal))
	}
	return nil
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// opCrossFormat is oracle 3: build every registered format over one
// column's current dictionary values and compare them all pairwise —
// Extract over the full id space, Locate for present and absent probes.
// Order preservation makes every format assign identical ids, so the
// comparison is direct.
func (h *harness) opCrossFormat() error {
	c := h.cols[h.rng.Intn(len(h.cols))]
	ec := h.s.Table("t").Str(c.name)
	snap := ec.Snapshot()
	values := snap.DictValues()
	snap.Release()
	if len(values) == 0 {
		return nil
	}
	// DictValues comes from the dictionary: sorted unique by construction.
	// Guard the invariant anyway — a violation here is itself a bug.
	if !sort.StringsAreSorted(values) {
		return h.fail("cross-format: %s dictionary values not sorted", c.name)
	}
	h.logf("step %d: cross-format %s over %d values", h.step, c.name, len(values))

	formats := dict.AllFormats()
	dicts := make([]dict.Dictionary, len(formats))
	for i, f := range formats {
		d, err := dict.Build(f, values)
		if err != nil {
			return h.fail("cross-format: build %v: %v", f, err)
		}
		if d.Len() != len(values) {
			return h.fail("cross-format: %v Len=%d want %d", f, d.Len(), len(values))
		}
		dicts[i] = d
	}
	// Extract: every id, every format, against the source values (which are
	// also what every other format must produce — transitivity).
	for id := range values {
		for i, d := range dicts {
			if got := d.Extract(uint32(id)); got != values[id] {
				return h.fail("cross-format: %v Extract(%d)=%q want %q", formats[i], id, got, values[id])
			}
		}
	}
	// Locate: present probes hit their id, absent probes miss in every
	// format alike.
	for k := 0; k < 16; k++ {
		probe := values[h.rng.Intn(len(values))]
		for i, d := range dicts {
			id, ok := d.Locate(probe)
			if !ok || values[id] != probe {
				return h.fail("cross-format: %v Locate(%q)=(%d,%v)", formats[i], probe, id, ok)
			}
		}
		absent := probe + "\x01absent"
		for i, d := range dicts {
			if id, ok := d.Locate(absent); ok {
				return h.fail("cross-format: %v Locate(absent %q)=(%d,true)", formats[i], absent, id)
			}
		}
	}
	return nil
}

// Package torture is a deterministic, seed-driven differential harness for
// the whole engine: it generates random schemas and corpora (via
// internal/datagen), drives randomized — and partially concurrent —
// interleavings of Append / Merge / MergePartial / Snapshot reads /
// Checkpoint / crash / recover against a persistent store with a
// fault-injecting filesystem underneath — including incremental checkpoints
// (dirty one column, assert only its part is rewritten) and checkpoints
// killed mid-flight by a fault — and checks five oracles after every step:
//
//  1. engine vs a naive in-memory model store (per-column value slices),
//  2. kernel ScanEq/ScanRange/CountEq vs their scalar oracles with zone
//     pruning on,
//  3. every registered dictionary format vs every other over the same
//     column,
//  4. a recovered store vs the pre-crash store (durable floor ≤ recovered
//     rows ≤ appended rows, recovered prefix bit-identical),
//  5. the HTTP service layer (internal/service fronting the same store) vs
//     the model and a pinned engine snapshot, including the
//     zero-leaked-snapshots invariant after quiescence.
//
// Every run is reproducible from its seed alone: the same seed replays the
// same schema, corpora, operations and fault plans. On failure the seed is
// part of the error, and `make torture SEED=<n>` replays it.
//
// See docs/oracles/ for each oracle's scope, guardrails and false-positive
// analysis.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/persist"
)

// Config parameterizes one torture run.
type Config struct {
	// Seed drives every random decision; the same seed reproduces the same
	// run exactly.
	Seed int64
	// Steps is the number of top-level operations; <= 0 selects 60.
	Steps int
	// Cols is the number of string columns; <= 0 picks 2-4 from the seed.
	Cols int
	// Dir is the store directory (a fresh temp dir per run).
	Dir string
	// Logf, when non-nil, receives a line per operation (testing.T.Logf).
	Logf func(format string, args ...any)
}

// column pairs one engine string column with its model mirror.
type column struct {
	name   string   // bare column name within the table
	pool   []string // corpus the column draws values from
	model  []string // oracle 1: every row the engine accepted
	floor  int      // rows guaranteed durable (crash may not go below)
	poolIx int      // round-robin cursor so appends cycle the pool deterministically
}

// harness is the state of one run.
type harness struct {
	cfg  Config
	rng  *rand.Rand
	ffs  *persist.FaultFS
	s    *persist.Store
	cols []*column

	// Numeric mirrors (oracle 1 for the non-string column kinds).
	intModel   []int64
	floatModel []float64
	intFloor   int

	// Health events observed through the OnHealth hook, drained under mu
	// by the scenario steps.
	events chan persist.HealthEvent

	step int
}

var errInjected = errors.New("torture: injected fault")

const (
	retryLimit = 3 // faults up to this long are transient by construction
	poolSize   = 1200
)

func (h *harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *harness) fail(format string, args ...any) error {
	return fmt.Errorf("torture: seed %d step %d: %s", h.cfg.Seed, h.step, fmt.Sprintf(format, args...))
}

func (h *harness) storeOptions() persist.Options {
	return persist.Options{
		FsyncInterval: -1, // sync-every: durable == accepted, no timing in the oracle
		SegmentBytes:  64 << 10,
		FS:            h.ffs,
		RetryLimit:    retryLimit,
		RetryBackoff:  50 * time.Microsecond,
		OnHealth: func(ev persist.HealthEvent) {
			select {
			case h.events <- ev:
			default:
			}
		},
	}
}

// drainEvents empties the health-event channel and returns what was queued.
func (h *harness) drainEvents() []persist.HealthEvent {
	var out []persist.HealthEvent
	for {
		select {
		case ev := <-h.events:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// Run executes one torture run and returns the first oracle violation (or
// harness error), nil if every check passed.
func Run(cfg Config) error {
	if cfg.Steps <= 0 {
		cfg.Steps = 60
	}
	h := &harness{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ffs:    &persist.FaultFS{},
		events: make(chan persist.HealthEvent, 64),
	}

	if err := h.open(); err != nil {
		return err
	}
	defer func() {
		if h.s != nil {
			h.ffs.Clear()
			h.s.Close()
		}
	}()
	if err := h.defineSchema(); err != nil {
		return err
	}

	for h.step = 1; h.step <= cfg.Steps; h.step++ {
		var err error
		switch pick := h.rng.Intn(100); {
		case pick < 28:
			err = h.opAppendBatch()
		case pick < 42:
			err = h.opConcurrentBurst()
		case pick < 50:
			err = h.opFullMerge()
		case pick < 58:
			err = h.opPartialMerge()
		case pick < 64:
			err = h.opCheckpoint()
		case pick < 71:
			err = h.opIncrementalCheckpoint()
		case pick < 78:
			err = h.opCrashRecover()
		case pick < 84:
			err = h.opCrashMidCheckpoint()
		case pick < 90:
			err = h.opTransientFault()
		case pick < 94:
			err = h.opPermanentFault()
		case pick < 97:
			err = h.opCrossFormat()
		default:
			err = h.opServiceQuery()
		}
		if err != nil {
			return err
		}
		// Oracles 1 and 2 hold after every step.
		if err := h.checkModel(); err != nil {
			return err
		}
		if err := h.checkKernels(); err != nil {
			return err
		}
	}
	return nil
}

// open (re)opens the persistent store through the fault filesystem.
func (h *harness) open() error {
	s, err := persist.Open(h.cfg.Dir, h.storeOptions())
	if err != nil {
		return fmt.Errorf("torture: seed %d: open: %w", h.cfg.Seed, err)
	}
	h.s = s
	return nil
}

// defineSchema generates the random schema: 2-4 string columns over random
// datagen corpora with random initial formats, plus one int64 and one
// float64 column.
func (h *harness) defineSchema() error {
	ncols := h.cfg.Cols
	if ncols <= 0 {
		ncols = 2 + h.rng.Intn(3)
	}
	names := datagen.Names()
	formats := dict.AllFormats()
	tb := h.s.AddTable("t")
	for i := 0; i < ncols; i++ {
		corpus := names[h.rng.Intn(len(names))]
		format := formats[h.rng.Intn(len(formats))]
		col := &column{
			name: fmt.Sprintf("c%d", i),
			pool: datagen.Generate(corpus, poolSize, h.cfg.Seed+int64(i)),
		}
		tb.AddString(col.name, format)
		h.cols = append(h.cols, col)
		h.logf("schema: t.%s corpus=%s format=%v pool=%d", col.name, corpus, format, len(col.pool))
	}
	tb.AddInt64("i")
	tb.AddFloat64("f")
	return nil
}

// nextValues draws k values for a column, cycling its pool with a random
// stride so appends repeat values (exercising dictionary dedup) while
// staying deterministic.
func (c *column) nextValues(rng *rand.Rand, k int) []string {
	out := make([]string, k)
	stride := 1 + rng.Intn(7)
	for i := range out {
		out[i] = c.pool[c.poolIx%len(c.pool)]
		c.poolIx += stride
	}
	return out
}

// raiseFloors marks every model row durable — valid only when the WAL has
// no sticky error (sync-every: accepted implies fsynced).
func (h *harness) raiseFloors() {
	if h.s.Err() != nil {
		return
	}
	for _, c := range h.cols {
		c.floor = len(c.model)
	}
	h.intFloor = len(h.intModel)
}

// opAppendBatch appends a random batch to every column (strings, int, and
// float rows move together so table rows stay aligned).
func (h *harness) opAppendBatch() error {
	k := 1 + h.rng.Intn(400)
	tb := h.s.Table("t")
	for _, c := range h.cols {
		vals := c.nextValues(h.rng, k)
		ec := tb.Str(c.name)
		for _, v := range vals {
			ec.Append(v)
		}
		c.model = append(c.model, vals...)
	}
	ic, fc := tb.Int("i"), tb.Float("f")
	for i := 0; i < k; i++ {
		iv := h.rng.Int63n(1 << 40)
		fv := float64(h.rng.Intn(1<<20)) / 16
		ic.Append(iv)
		fc.Append(fv)
		h.intModel = append(h.intModel, iv)
		h.floatModel = append(h.floatModel, fv)
	}
	h.logf("step %d: append %d rows/col", h.step, k)
	h.raiseFloors()
	return nil
}

// opFullMerge fully merges a random column into a random format.
func (h *harness) opFullMerge() error {
	c := h.cols[h.rng.Intn(len(h.cols))]
	formats := dict.AllFormats()
	f := formats[h.rng.Intn(len(formats))]
	res := h.s.Table("t").Str(c.name).Merge(f)
	h.logf("step %d: merge %s -> %v (folded %d)", h.step, c.name, f, res.Folded)
	if err := h.checkHealthy("merge"); err != nil {
		return err
	}
	h.raiseFloors()
	return nil
}

// opPartialMerge folds the oldest sealed segments of a random column,
// keeping its format.
func (h *harness) opPartialMerge() error {
	c := h.cols[h.rng.Intn(len(h.cols))]
	k := 1 + h.rng.Intn(3)
	res := h.s.Table("t").Str(c.name).MergePartial(k)
	h.logf("step %d: partial merge %s k=%d (folded %d)", h.step, c.name, k, res.Folded)
	return h.checkHealthy("partial merge")
}

// opCheckpoint persists every column and truncates covered WAL segments.
func (h *harness) opCheckpoint() error {
	if err := h.s.Checkpoint(); err != nil {
		return h.fail("checkpoint: %v", err)
	}
	h.logf("step %d: checkpoint", h.step)
	h.raiseFloors()
	return nil
}

// checkHealthy asserts no background operation left a sticky error while no
// fault was planned.
func (h *harness) checkHealthy(op string) error {
	if err := h.s.Err(); err != nil {
		return h.fail("%s left sticky error without injected fault: %v", op, err)
	}
	return nil
}

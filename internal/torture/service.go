package torture

import (
	"net/http/httptest"

	"strdict/internal/colstore"
	"strdict/internal/service"
)

// opServiceQuery is oracle 5: front the live store with the HTTP service
// layer (service.NewWithStores over the same *colstore.Store, empty tenant)
// and check that what comes back through /v1/count, /v1/scan and /v1/locate
// agrees with the naive model and with a directly pinned engine snapshot.
// Afterwards the server must hold zero pinned snapshots — the
// snapshot-per-request lifecycle may not leak even through the full HTTP
// encode/decode path.
func (h *harness) opServiceQuery() error {
	srv := service.NewWithStores([]*colstore.Store{h.s.Store}, service.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	cl := &service.Client{Base: ts.URL, HTTP: ts.Client()}
	h.logf("step %d: service query via %s", h.step, ts.URL)

	tb := h.s.Table("t")
	for _, c := range h.cols {
		snap := tb.Str(c.name).Snapshot()
		err := h.checkServiceColumn(cl, snap, c)
		snap.Release()
		if err != nil {
			return err
		}
	}
	if live := srv.PinnedSnapshots(); live != 0 {
		return h.fail("service: %d snapshots still pinned after quiescence", live)
	}
	if srv.TotalPins() == 0 {
		return h.fail("service: queries took no snapshot pins")
	}
	return nil
}

// checkServiceColumn compares the service's three query endpoints against
// the model slice and one pinned engine snapshot for a single column.
func (h *harness) checkServiceColumn(cl *service.Client, snap *colstore.Snapshot, c *column) error {
	probes := []string{
		c.pool[h.rng.Intn(len(c.pool))],
		c.pool[h.rng.Intn(len(c.pool))] + "\x01absent",
	}
	for _, p := range probes {
		want := 0
		for _, v := range c.model {
			if v == p {
				want++
			}
		}
		got, err := cl.CountEq("", "t", c.name, p)
		if err != nil {
			return h.fail("service: CountEq(%s, %q): %v", c.name, p, err)
		}
		if got != want {
			return h.fail("service: CountEq(%s, %q)=%d model=%d", c.name, p, got, want)
		}
		sc, err := cl.ScanEq("", "t", c.name, p)
		if err != nil {
			return h.fail("service: ScanEq(%s, %q): %v", c.name, p, err)
		}
		engine := snap.ScanEq(p, nil)
		if sc.Count != len(engine) {
			return h.fail("service: ScanEq(%s, %q) count=%d engine=%d", c.name, p, sc.Count, len(engine))
		}
		// The response carries at most MaxScanRows indices; the prefix must
		// match the engine's row list exactly.
		if !equalRows(sc.Rows, engine[:len(sc.Rows)]) {
			return h.fail("service: ScanEq(%s, %q) rows diverge from engine", c.name, p)
		}
		code, found, err := cl.Locate("", "t", c.name, p)
		if err != nil {
			return h.fail("service: Locate(%s, %q): %v", c.name, p, err)
		}
		wantCode, wantFound := snap.Locate(p)
		if found != wantFound || code != wantCode {
			return h.fail("service: Locate(%s, %q)=(%d,%v) engine=(%d,%v)",
				c.name, p, code, found, wantCode, wantFound)
		}
	}

	lo := c.pool[h.rng.Intn(len(c.pool))]
	hi := c.pool[h.rng.Intn(len(c.pool))]
	if lo > hi {
		lo, hi = hi, lo
	}
	rc, err := cl.ScanRange("", "t", c.name, lo, hi)
	if err != nil {
		return h.fail("service: ScanRange(%s, %q, %q): %v", c.name, lo, hi, err)
	}
	want := 0
	for _, v := range c.model {
		if v >= lo && v < hi {
			want++
		}
	}
	if rc.Count != want {
		return h.fail("service: ScanRange(%s, %q, %q) count=%d model=%d", c.name, lo, hi, rc.Count, want)
	}
	return nil
}

// Package sysstat synthesizes the system catalogs behind the paper's
// motivation (Section 1, Figures 1 and 2): the distribution of string-column
// dictionary sizes in two ERP systems and one BW system.
//
// The real catalogs are proprietary SAP customer systems. The paper however
// states their governing law precisely: "for every order of magnitude of
// smaller size, there is half an order of magnitude less dictionaries of
// that size" — dictionary entry counts follow a Zipf-like decade
// distribution with P(decade d) ∝ 10^(-d/2). Memory per dictionary grows
// linearly with its entry count, so the handful of huge dictionaries
// dominating total memory (87% in >10^5-entry dictionaries for ERP System 1)
// is an emergent property of that law, which the figures regenerated here
// reproduce.
package sysstat

import (
	"math"
	"math/rand"
)

// Column describes one string column of a catalog.
type Column struct {
	// Distinct is the number of dictionary entries.
	Distinct int
	// AvgLen is the average string length of the column's values.
	AvgLen float64
}

// System is a synthetic catalog of string columns.
type System struct {
	Name        string
	StringShare float64 // fraction of all columns that are strings
	Columns     []Column
}

// Profiles for the three systems of the paper. MaxDecade bounds the largest
// dictionaries (the BW system has fewer huge dictionaries, ERP System 2 the
// most extreme skew).
type profile struct {
	nColumns    int
	stringShare float64
	maxDecade   int
	decayPer10  float64 // dictionaries per decade decay factor
}

var profiles = map[string]profile{
	// 73% / 77% / 54% string shares from Section 1.
	"ERP System 1": {nColumns: 90_000, stringShare: 0.73, maxDecade: 6, decayPer10: math.Sqrt(10)},
	"ERP System 2": {nColumns: 200_000, stringShare: 0.77, maxDecade: 7, decayPer10: math.Sqrt(10) * 1.25},
	"BW System":    {nColumns: 30_000, stringShare: 0.54, maxDecade: 6, decayPer10: math.Sqrt(10) * 0.8},
}

// Names lists the systems in the paper's order.
func Names() []string {
	return []string{"ERP System 1", "ERP System 2", "BW System"}
}

// Generate synthesizes the named system's string-column catalog.
func Generate(name string, seed int64) *System {
	p, ok := profiles[name]
	if !ok {
		panic("sysstat: unknown system " + name)
	}
	rng := rand.New(rand.NewSource(seed))
	nStrings := int(float64(p.nColumns) * p.stringShare)

	// Decade weights: w_d ∝ decay^-d for d = 0..maxDecade.
	weights := make([]float64, p.maxDecade+1)
	var total float64
	for d := range weights {
		weights[d] = math.Pow(p.decayPer10, -float64(d))
		total += weights[d]
	}

	s := &System{Name: name, StringShare: p.stringShare}
	for i := 0; i < nStrings; i++ {
		d := pickDecade(rng, weights, total)
		// Log-uniform within the decade.
		lo := math.Pow(10, float64(d))
		distinct := int(lo * math.Pow(10, rng.Float64()))
		if distinct < 1 {
			distinct = 1
		}
		// String lengths by column class: most business strings are short
		// codes; big dictionaries skew towards free text and identifiers.
		avgLen := 6 + rng.Float64()*14
		if d >= 4 && rng.Float64() < 0.4 {
			avgLen = 20 + rng.Float64()*40 // UUIDs, URLs, text
		}
		s.Columns = append(s.Columns, Column{Distinct: distinct, AvgLen: avgLen})
	}
	return s
}

func pickDecade(rng *rand.Rand, weights []float64, total float64) int {
	x := rng.Float64() * total
	for d, w := range weights {
		if x < w {
			return d
		}
		x -= w
	}
	return len(weights) - 1
}

// DictBytes estimates a column's dictionary memory with the plain array
// format of a domain-encoded column store: the string data plus an 8-byte
// pointer per entry (the paper's Figure 2 measures the default,
// uncompressed representation).
func (c Column) DictBytes() uint64 {
	return uint64(float64(c.Distinct)*c.AvgLen) + uint64(c.Distinct)*8
}

// DecadeShares returns, per dictionary-size decade (10^0.., 10^1.., ...),
// the share of columns (Figure 1) and the share of total dictionary memory
// (Figure 2).
func (s *System) DecadeShares() (columns []float64, memory []float64) {
	var counts []int
	var mem []uint64
	for _, c := range s.Columns {
		d := 0
		for x := c.Distinct; x >= 10; x /= 10 {
			d++
		}
		for len(counts) <= d {
			counts = append(counts, 0)
			mem = append(mem, 0)
		}
		counts[d]++
		mem[d] += c.DictBytes()
	}
	var totalC, totalM float64
	for i := range counts {
		totalC += float64(counts[i])
		totalM += float64(mem[i])
	}
	columns = make([]float64, len(counts))
	memory = make([]float64, len(counts))
	for i := range counts {
		columns[i] = float64(counts[i]) / totalC
		memory[i] = float64(mem[i]) / totalM
	}
	return columns, memory
}

// LargeDictMemoryShare returns the share of dictionary memory consumed by
// dictionaries with more than minEntries entries, and the share of columns
// they represent — the headline skew statistic of Section 1.
func (s *System) LargeDictMemoryShare(minEntries int) (memShare, colShare float64) {
	var mem, total float64
	var n, nTotal int
	for _, c := range s.Columns {
		b := float64(c.DictBytes())
		total += b
		nTotal++
		if c.Distinct > minEntries {
			mem += b
			n++
		}
	}
	if total == 0 || nTotal == 0 {
		return 0, 0
	}
	return mem / total, float64(n) / float64(nTotal)
}

package sysstat

import (
	"math"
	"testing"
)

func TestGenerateAllSystems(t *testing.T) {
	for _, name := range Names() {
		s := Generate(name, 1)
		if len(s.Columns) == 0 {
			t.Fatalf("%s: empty catalog", name)
		}
		for _, c := range s.Columns {
			if c.Distinct < 1 || c.AvgLen <= 0 {
				t.Fatalf("%s: invalid column %+v", name, c)
			}
		}
	}
}

func TestZipfLaw(t *testing.T) {
	// "For every order of magnitude of smaller size, half an order of
	// magnitude less dictionaries": consecutive decade column shares should
	// decay by roughly sqrt(10) ~ 3.16.
	s := Generate("ERP System 1", 42)
	cols, _ := s.DecadeShares()
	for d := 0; d+1 < len(cols)-1; d++ { // skip the noisy top decade
		if cols[d+1] == 0 {
			continue
		}
		ratio := cols[d] / cols[d+1]
		if ratio < 2 || ratio > 5 {
			t.Errorf("decade %d->%d column ratio %.2f, want ~3.16", d, d+1, ratio)
		}
	}
}

func TestMemoryDominatedByLargeDicts(t *testing.T) {
	// Section 1: in ERP System 1, ~87% of dictionary memory sits in
	// dictionaries with more than 1e5 entries, which are ~0.1% of columns.
	s := Generate("ERP System 1", 42)
	memShare, colShare := s.LargeDictMemoryShare(100_000)
	if memShare < 0.6 {
		t.Errorf("large-dict memory share %.2f, want the paper's heavy skew (>0.6)", memShare)
	}
	if colShare > 0.01 {
		t.Errorf("large dicts are %.4f of columns, want < 1%%", colShare)
	}
}

func TestSharesSumToOne(t *testing.T) {
	for _, name := range Names() {
		s := Generate(name, 7)
		cols, mem := s.DecadeShares()
		var sc, sm float64
		for i := range cols {
			sc += cols[i]
			sm += mem[i]
		}
		if math.Abs(sc-1) > 1e-9 || math.Abs(sm-1) > 1e-9 {
			t.Errorf("%s: shares sum to %.4f / %.4f", name, sc, sm)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate("BW System", 5)
	b := Generate("BW System", 5)
	if len(a.Columns) != len(b.Columns) {
		t.Fatal("non-deterministic")
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatal("columns differ across equal seeds")
		}
	}
}

func TestUnknownSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("HAL 9000", 1)
}

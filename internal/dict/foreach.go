package dict

import (
	"encoding/binary"

	"strdict/internal/bits"
)

// ForEach visits the array dictionary sequentially: one decode per entry.
func (d *arrayDict) ForEach(fn func(id uint32, value []byte) bool) {
	var buf []byte
	for id := 0; id < d.n; id++ {
		buf, _ = d.c.decodeNext(buf[:0], d.encoded(uint32(id)))
		if !fn(uint32(id), buf) {
			return
		}
	}
}

// ForEach visits the fixed-slot dictionary sequentially.
func (d *arrayFixed) ForEach(fn func(id uint32, value []byte) bool) {
	var buf []byte
	for id := 0; id < d.n; id++ {
		buf = d.AppendExtract(buf[:0], uint32(id))
		if !fn(uint32(id), buf) {
			return
		}
	}
}

// ForEach walks every front-coding block once, reconstructing each string
// incrementally from its predecessor — O(total suffix bytes) instead of the
// O(blockSize) re-walk per entry that repeated Extract calls would pay.
func (d *fcDict) ForEach(fn func(id uint32, value []byte) bool) {
	nblocks := (d.n + d.blockSize - 1) / d.blockSize
	var buf []byte
	for b := 0; b < nblocks; b++ {
		lo, hi := d.blockBounds(b)
		k := hi - lo
		p := int(d.blockPtrs.Get(b))
		switch d.mode {
		case fcModePrev:
			hdr := d.data[p : p+k-1]
			pos := p + k - 1
			var used int
			buf, used = d.c.decodeNext(buf[:0], d.data[pos:])
			pos += used
			if !fn(uint32(lo), buf) {
				return
			}
			for j := 1; j < k; j++ {
				pl := int(hdr[j-1])
				if pl > len(buf) {
					pl = len(buf)
				}
				buf = buf[:pl]
				buf, used = d.c.decodeNext(buf, d.data[pos:])
				pos += used
				if !fn(uint32(lo+j), buf) {
					return
				}
			}
		case fcModeFirst:
			firstLen := int(binary.LittleEndian.Uint32(d.data[p:]))
			plens := d.data[p+4 : p+4+k-1]
			payload := p + 4 + (k-1)*5
			buf, _ = d.c.decodeNext(buf[:0], d.data[payload:payload+firstLen])
			first := append([]byte(nil), buf...)
			if !fn(uint32(lo), buf) {
				return
			}
			pos := payload + firstLen
			var used int
			for j := 1; j < k; j++ {
				pl := int(plens[j-1])
				if pl > len(first) {
					pl = len(first)
				}
				buf = append(buf[:0], first[:pl]...)
				buf, used = d.c.decodeNext(buf, d.data[pos:])
				pos += used
				if !fn(uint32(lo+j), buf) {
					return
				}
			}
		default: // fcModeInline
			pos := p
			var used int
			buf, used = d.c.decodeNext(buf[:0], d.data[pos:])
			pos += used
			if !fn(uint32(lo), buf) {
				return
			}
			for j := 1; j < k; j++ {
				pl := int(d.data[pos])
				pos++
				if pl > len(buf) {
					pl = len(buf)
				}
				buf = buf[:pl]
				buf, used = d.c.decodeNext(buf, d.data[pos:])
				pos += used
				if !fn(uint32(lo+j), buf) {
					return
				}
			}
		}
	}
}

// ForEach materializes each column-bc block once (k×m character walk) and
// yields its strings, instead of re-walking the column headers per entry.
func (d *columnBC) ForEach(fn func(id uint32, value []byte) bool) {
	nblocks := (d.n + d.blockSize - 1) / d.blockSize
	for b := 0; b < nblocks; b++ {
		lo := b * d.blockSize
		hi := lo + d.blockSize
		if hi > d.n {
			hi = d.n
		}
		k := hi - lo
		p := int(d.blockPtrs.Get(b))
		m := int(binary.LittleEndian.Uint16(d.data[p+2:]))

		strs := make([][]byte, k)
		pos := p + 4
		for j := 0; j < m; j++ {
			asize := int(binary.LittleEndian.Uint16(d.data[pos:]))
			pos += 2
			alpha := d.data[pos : pos+asize]
			pos += asize
			if asize == 1 {
				if alpha[0] != 0 {
					for i := 0; i < k; i++ {
						strs[i] = append(strs[i], alpha[0])
					}
				}
				continue
			}
			width := bits.Width(uint64(asize - 1))
			packedBytes := (k*int(width) + 7) / 8
			r := bits.NewReader(d.data[pos : pos+packedBytes])
			pos += packedBytes
			for i := 0; i < k; i++ {
				code := r.ReadBits(width)
				if code >= uint64(asize) {
					continue
				}
				if c := alpha[code]; c != 0 {
					strs[i] = append(strs[i], c)
				}
			}
		}
		for i := 0; i < k; i++ {
			if !fn(uint32(lo+i), strs[i]) {
				return
			}
		}
	}
}

// ForEach visits the hash baseline sequentially.
func (d *HashDict) ForEach(fn func(id uint32, value []byte) bool) {
	var buf []byte
	for id := 0; id < d.n; id++ {
		buf = d.AppendExtract(buf[:0], uint32(id))
		if !fn(uint32(id), buf) {
			return
		}
	}
}

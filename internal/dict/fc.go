package dict

import (
	"encoding/binary"

	"strdict/internal/bits"
)

// fcMode distinguishes the three front-coding layouts of the paper.
type fcMode int

const (
	// fcModePrev is classic Front Coding: each string stores the length of
	// the prefix it shares with its predecessor, prefix lengths live in a
	// block header.
	fcModePrev fcMode = iota
	// fcModeFirst is "Front Coding with Difference to First" (fc block df):
	// suffixes differ from the block's first string, and the header stores
	// suffix offsets so extraction is two copies with no intermediate
	// decoding — a little bigger, a little faster.
	fcModeFirst
	// fcModeInline is "Inline Front Coding" (fc inline): prefix lengths are
	// interleaved with the suffix data to improve sequential access.
	fcModeInline
)

// fcDict is the front-coding dictionary class: strings are grouped into
// fixed-size blocks, and within a block only the difference to the previous
// (or first) string is stored. The stored parts (block-first strings and
// suffixes) are compressed with the format's string scheme.
type fcDict struct {
	format    Format
	mode      fcMode
	blockSize int
	n         int
	data      []byte
	blockPtrs *bits.PackedArray // nblocks+1 offsets into data
	c         codec
}

func newFCDict(f Format, mode fcMode, strs []string, blockSize int, opts BuildOptions) *fcDict {
	n := len(strs)
	nblocks := (n + blockSize - 1) / blockSize

	// Collect the parts that will actually be stored, in layout order:
	// per block, the first string followed by the suffixes.
	parts := make([][]byte, 0, n)
	plens := make([]byte, 0, n) // per non-first string
	for b := 0; b < nblocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		parts = append(parts, []byte(strs[lo]))
		for i := lo + 1; i < hi; i++ {
			ref := strs[i-1]
			if mode == fcModeFirst {
				ref = strs[lo]
			}
			pl := commonPrefixLen(ref, strs[i])
			plens = append(plens, byte(pl))
			parts = append(parts, []byte(strs[i][pl:]))
		}
	}

	// Blocks are independent by construction, so the per-part encoding fans
	// out across the build worker pool; the serial assembly below consumes
	// encs in index order, keeping the layout bit-identical.
	c, encs := buildCodec(f.Scheme(), parts, false, opts.Parallelism)

	d := &fcDict{format: f, mode: mode, blockSize: blockSize, n: n, c: c}
	blockOffs := make([]uint64, nblocks+1)
	ei := 0 // index into encs
	pi := 0 // index into plens
	for b := 0; b < nblocks; b++ {
		blockOffs[b] = uint64(len(d.data))
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		k := hi - lo
		first := encs[ei]
		suffixes := encs[ei+1 : ei+k]
		bplens := plens[pi : pi+k-1]
		ei += k
		pi += k - 1

		switch mode {
		case fcModePrev:
			// [plen × (k-1)] [enc(first)] [enc(suffix)...]
			d.data = append(d.data, bplens...)
			d.data = append(d.data, first...)
			for _, s := range suffixes {
				d.data = append(d.data, s...)
			}
		case fcModeFirst:
			// [firstLen u32] [plen × (k-1)] [suffix end offsets u32 × (k-1)]
			// [enc(first)] [enc(suffix)...]
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(first)))
			d.data = append(d.data, hdr[:]...)
			d.data = append(d.data, bplens...)
			end := uint32(0)
			for _, s := range suffixes {
				end += uint32(len(s))
				binary.LittleEndian.PutUint32(hdr[:], end)
				d.data = append(d.data, hdr[:]...)
			}
			d.data = append(d.data, first...)
			for _, s := range suffixes {
				d.data = append(d.data, s...)
			}
		case fcModeInline:
			// [enc(first)] ([plen u8] [enc(suffix)])...
			d.data = append(d.data, first...)
			for j, s := range suffixes {
				d.data = append(d.data, bplens[j])
				d.data = append(d.data, s...)
			}
		}
	}
	blockOffs[nblocks] = uint64(len(d.data))
	d.blockPtrs = bits.PackSlice(blockOffs)
	return d
}

// blockBounds returns the index range [lo, hi) of block b.
func (d *fcDict) blockBounds(b int) (lo, hi int) {
	lo = b * d.blockSize
	hi = lo + d.blockSize
	if hi > d.n {
		hi = d.n
	}
	return lo, hi
}

func (d *fcDict) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *fcDict) AppendExtract(dst []byte, id uint32) []byte {
	if int(id) >= d.n {
		panic("dict: value ID out of range")
	}
	return d.extractInBlock(dst, int(id)/d.blockSize, int(id)%d.blockSize)
}

// extractInBlock appends string number i of block b to dst.
func (d *fcDict) extractInBlock(dst []byte, b, i int) []byte {
	lo, hi := d.blockBounds(b)
	k := hi - lo
	p := int(d.blockPtrs.Get(b))
	base := len(dst)

	// clampPrefix bounds a header prefix length by the previously decoded
	// string, so corrupted (deserialized) headers cannot over-extend dst.
	clampPrefix := func(pl int, dst []byte) int {
		if max := len(dst) - base; pl > max {
			return max
		}
		return pl
	}

	switch d.mode {
	case fcModePrev:
		hdr := d.data[p : p+k-1]
		pos := p + k - 1
		var used int
		dst, used = d.c.decodeNext(dst, d.data[pos:])
		pos += used
		for j := 1; j <= i; j++ {
			pl := clampPrefix(int(hdr[j-1]), dst)
			dst = dst[:base+pl]
			dst, used = d.c.decodeNext(dst, d.data[pos:])
			pos += used
		}
		return dst

	case fcModeFirst:
		firstLen := int(binary.LittleEndian.Uint32(d.data[p:]))
		plens := d.data[p+4 : p+4+k-1]
		endsOff := p + 4 + (k - 1)
		payload := endsOff + 4*(k-1)
		dst, _ = d.c.decodeNext(dst, d.data[payload:payload+firstLen])
		if i == 0 {
			return dst
		}
		suffArea := payload + firstLen
		start := 0
		if i > 1 {
			start = int(binary.LittleEndian.Uint32(d.data[endsOff+4*(i-2):]))
		}
		pl := clampPrefix(int(plens[i-1]), dst)
		dst = dst[:base+pl]
		if off := suffArea + start; off >= 0 && off <= len(d.data) {
			dst, _ = d.c.decodeNext(dst, d.data[off:])
		}
		return dst

	default: // fcModeInline
		pos := p
		var used int
		dst, used = d.c.decodeNext(dst, d.data[pos:])
		pos += used
		for j := 1; j <= i; j++ {
			if pos >= len(d.data) {
				return dst // corrupt stream ran off the data area
			}
			pl := clampPrefix(int(d.data[pos]), dst)
			pos++
			dst = dst[:base+pl]
			dst, used = d.c.decodeNext(dst, d.data[pos:])
			pos += used
		}
		return dst
	}
}

// firstOfBlock appends the first string of block b to dst.
func (d *fcDict) firstOfBlock(dst []byte, b int) []byte {
	lo, hi := d.blockBounds(b)
	k := hi - lo
	p := int(d.blockPtrs.Get(b))
	switch d.mode {
	case fcModePrev:
		out, _ := d.c.decodeNext(dst, d.data[p+k-1:])
		return out
	case fcModeFirst:
		firstLen := int(binary.LittleEndian.Uint32(d.data[p:]))
		payload := p + 4 + (k-1)*5
		out, _ := d.c.decodeNext(dst, d.data[payload:payload+firstLen])
		return out
	default:
		out, _ := d.c.decodeNext(dst, d.data[p:])
		return out
	}
}

func (d *fcDict) Locate(s string) (uint32, bool) { return fcLocate(d, s) }

// LocateBytes is the byte-slice probe path: block firsts and in-block
// strings are compared against the probe bytes directly, with no string
// conversion.
func (d *fcDict) LocateBytes(s []byte) (uint32, bool) { return fcLocate(d, s) }

func fcLocate[S ~string | ~[]byte](d *fcDict, s S) (uint32, bool) {
	if d.n == 0 {
		return 0, false
	}
	// Binary search for the last block whose first string is <= s.
	nblocks := (d.n + d.blockSize - 1) / d.blockSize
	var buf []byte
	lo, hi := 0, nblocks-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		buf = d.firstOfBlock(buf[:0], mid)
		if cmpProbe(buf, s) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	b := lo
	buf = d.firstOfBlock(buf[:0], b)
	if b == 0 && cmpProbe(buf, s) > 0 {
		return 0, false
	}
	// Walk the block. Decoding sequentially is how front coding pays for
	// its compression.
	blo, bhi := d.blockBounds(b)
	k := bhi - blo
	for i := 0; i < k; i++ {
		buf = d.extractInBlock(buf[:0], b, i)
		switch c := cmpProbe(buf, s); {
		case c == 0:
			return uint32(blo + i), true
		case c > 0:
			return uint32(blo + i), false
		}
	}
	return uint32(bhi), false
}

func (d *fcDict) Len() int       { return d.n }
func (d *fcDict) Format() Format { return d.format }

func (d *fcDict) Bytes() uint64 {
	return uint64(len(d.data)) + d.blockPtrs.Bytes() + d.c.tableBytes() + arrayOverhead
}

package dict

import (
	"strdict/internal/bits"
)

// HashDict is the hashing baseline of Section 3.2: a plain string array
// with an open-addressing hash index for locate. The paper evaluates it and
// excludes it from the survey — "the locate performance of this approach is
// quite good, yet both extract performance and compression rate are
// dominated by other approaches" — and this implementation exists to
// reproduce that comparison (see BenchmarkBaselineHash).
//
// Value IDs are still the strings' sorted ranks, so HashDict is
// drop-in comparable with the survey formats; a hash miss falls back to
// binary search to honour Definition 1's "first greater" semantics.
type HashDict struct {
	n       int
	data    []byte            // raw strings, NUL-terminated
	offsets *bits.PackedArray // n+1
	table   []int32           // open addressing, -1 = empty; len is a power of two
}

// BuildHash constructs the hashing baseline over sorted unique strings.
func BuildHash(strs []string) (*HashDict, error) {
	if err := Validate(strs); err != nil {
		return nil, err
	}
	n := len(strs)
	d := &HashDict{n: n}
	offs := make([]uint64, n+1)
	for i, s := range strs {
		offs[i] = uint64(len(d.data))
		d.data = append(d.data, s...)
		d.data = append(d.data, 0)
	}
	offs[n] = uint64(len(d.data))
	d.offsets = bits.PackSlice(offs)

	size := 1
	for size < n*2 { // load factor <= 0.5
		size <<= 1
	}
	d.table = make([]int32, size)
	for i := range d.table {
		d.table[i] = -1
	}
	for i, s := range strs {
		slot := hashString(s) & uint64(size-1)
		for d.table[slot] >= 0 {
			slot = (slot + 1) & uint64(size-1)
		}
		d.table[slot] = int32(i)
	}
	return d, nil
}

// hashString is FNV-1a, inlined to stay allocation-free.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (d *HashDict) raw(id uint32) []byte {
	lo := d.offsets.Get(int(id))
	hi := d.offsets.Get(int(id)+1) - 1 // strip NUL
	return d.data[lo:hi]
}

// Extract returns the string with the given value ID.
func (d *HashDict) Extract(id uint32) string {
	return string(d.raw(id))
}

// AppendExtract appends the string with the given value ID to dst.
func (d *HashDict) AppendExtract(dst []byte, id uint32) []byte {
	return append(dst, d.raw(id)...)
}

// Locate implements Definition 1: a hash probe answers present strings in
// O(1); absent strings fall back to binary search for the first-greater ID.
func (d *HashDict) Locate(s string) (uint32, bool) {
	if len(d.table) > 0 {
		slot := hashString(s) & uint64(len(d.table)-1)
		for {
			id := d.table[slot]
			if id < 0 {
				break
			}
			if string(d.raw(uint32(id))) == s {
				return uint32(id), true
			}
			slot = (slot + 1) & uint64(len(d.table)-1)
		}
	}
	// Hash miss: the string is absent; find the first greater entry.
	lo, hi := 0, d.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if string(d.raw(uint32(mid))) < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo), false
}

// Len returns the number of strings.
func (d *HashDict) Len() int { return d.n }

// Bytes returns the total in-memory size: string data, offsets, and the
// hash table — the table is what dominates the paper's compression-rate
// complaint.
func (d *HashDict) Bytes() uint64 {
	return uint64(len(d.data)) + d.offsets.Bytes() + uint64(len(d.table))*4 + arrayOverhead
}

package dict

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

// fuzzStrings derives a valid dictionary input from raw fuzz bytes.
func fuzzStrings(data []byte) []string {
	fields := strings.Split(string(data), "\n")
	seen := make(map[string]bool)
	var out []string
	for _, f := range fields {
		if !seen[f] && !strings.ContainsRune(f, 0) {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// FuzzBuildRoundTrip builds every format over fuzz-derived string sets and
// checks extract/locate against the input. It doubles as a Marshal/Unmarshal
// round-trip check for a rotating format.
func FuzzBuildRoundTrip(f *testing.F) {
	f.Add([]byte("alpha\nbeta\ngamma"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("a\naa\naaa\naaaa\nab"))
	f.Add([]byte("0001\n0002\n0003\n0004\n0005\n0006\n0007\n0008"))
	f.Add([]byte{0xff, 0xfe, '\n', 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		strs := fuzzStrings(data)
		for _, format := range AllFormats() {
			d, err := Build(format, strs)
			if err != nil {
				t.Fatalf("%s: %v", format, err)
			}
			for i, want := range strs {
				if got := d.Extract(uint32(i)); got != want {
					t.Fatalf("%s: Extract(%d) = %q, want %q", format, i, got, want)
				}
				if id, found := d.Locate(want); !found || id != uint32(i) {
					t.Fatalf("%s: Locate(%q) = (%d,%v)", format, want, id, found)
				}
			}
			// Serialization round trip on one format per input, chosen by
			// the input's length so all formats get exercised over a corpus.
			if int(format) == len(data)%NumFormats() {
				blob, err := Marshal(d)
				if err != nil {
					t.Fatalf("%s: Marshal: %v", format, err)
				}
				rd, err := Unmarshal(blob)
				if err != nil {
					t.Fatalf("%s: Unmarshal: %v", format, err)
				}
				for i, want := range strs {
					if got := rd.Extract(uint32(i)); got != want {
						t.Fatalf("%s: restored Extract(%d) = %q", format, i, got)
					}
				}
			}
		}
	})
}

// FuzzUnmarshal feeds arbitrary bytes to Unmarshal: it must never panic,
// and any dictionary it accepts must be safe to read.
func FuzzUnmarshal(f *testing.F) {
	for _, strs := range [][]string{
		{"a", "b", "c"},
		{"x"},
		nil,
	} {
		for _, format := range AllFormats() {
			d, _ := Build(format, strs)
			blob, _ := Marshal(d)
			f.Add(blob)
		}
	}
	f.Add([]byte("SDIC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data)
		if err != nil {
			return
		}
		n := d.Len()
		if n > 1<<20 {
			n = 1 << 20
		}
		for i := 0; i < n; i++ {
			d.Extract(uint32(i))
		}
		d.Locate("probe")
	})
}

// TestConcurrentReads verifies that a built dictionary is safe for parallel
// readers (the read-optimized store serves many queries at once).
func TestConcurrentReads(t *testing.T) {
	strs := testCorpora()["prefixed words"]
	for _, format := range []Format{Array, ArrayHU, FCBlock, FCBlockRP12, ColumnBC} {
		d, err := Build(format, strs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var buf []byte
				for i := 0; i < 2000; i++ {
					id := uint32((i*7 + g*13) % d.Len())
					buf = d.AppendExtract(buf[:0], id)
					if string(buf) != strs[id] {
						errs <- format.String()
						return
					}
					if i%37 == 0 {
						if got, found := d.Locate(strs[id]); !found || got != id {
							errs <- format.String()
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for f := range errs {
			t.Fatalf("%s: concurrent read mismatch", f)
		}
	}
}

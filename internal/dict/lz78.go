package dict

// The LZ78 dictionary format, after the LZ-compressed string dictionaries
// of arXiv 1305.0674: one phrase table shared by every string, grown by the
// classic LZ78 parse. Each phrase is (parent, char) — the phrase one byte
// longer than its parent — so the table is two flat arrays and a phrase
// expands by walking the parent chain. Each string is stored as its token
// sequence (phrase IDs) in a bit-packed stream with a packed offset per
// string; shared prefixes and repeated substrings across the sorted, highly
// self-similar dictionary input collapse into shared phrases.
//
// This file is the format's complete registration: representation, build,
// serialization, and the registry entry. Nothing outside this file (and the
// matching size-model registration in internal/model) knows LZ78 exists.

import (
	"strdict/internal/bits"
)

// lz78WireID is LZ78's immutable on-disk identifier (extension range).
const lz78WireID = 33

// LZ78 is the LZ78-compressed dictionary format, registered as an extension.
var LZ78 = RegisterFormat(FormatInfo{
	Name:   "lz78",
	WireID: lz78WireID,
	Scheme: SchemeNone,
	Build: func(strs []string, _ BuildOptions) Dictionary {
		return newLZ78(strs)
	},
	Marshal:   marshalLZ78,
	Unmarshal: unmarshalLZ78,
})

// lz78Dict: phrases are 1-based (token 0 never appears; parent 0 is the
// empty root). Phrase t expands to the expansion of parents[t-1] followed by
// chars[t-1]; parents[t-1] < t, so chains shorten strictly.
type lz78Dict struct {
	n       int
	parents []uint32
	chars   []byte
	tokens  *bits.PackedArray // concatenated per-string token sequences
	offsets *bits.PackedArray // n+1 entries: string i = tokens[offsets[i]:offsets[i+1]]
}

func newLZ78(strs []string) *lz78Dict {
	var (
		parents []uint32
		chars   []byte
		toks    []uint64
	)
	next := make(map[uint64]uint32) // parent<<8 | char → phrase ID
	offs := make([]uint64, len(strs)+1)
	for i, s := range strs {
		offs[i] = uint64(len(toks))
		cur := uint32(0)
		for j := 0; j < len(s); j++ {
			key := uint64(cur)<<8 | uint64(s[j])
			if child, ok := next[key]; ok {
				cur = child
				continue
			}
			// New phrase: cur's expansion extended by this byte. Emit it and
			// restart the parse from the root.
			parents = append(parents, cur)
			chars = append(chars, s[j])
			id := uint32(len(parents))
			next[key] = id
			toks = append(toks, uint64(id))
			cur = 0
		}
		if cur != 0 {
			// The string ended inside a known phrase; emit it as-is.
			toks = append(toks, uint64(cur))
		}
	}
	offs[len(strs)] = uint64(len(toks))
	return &lz78Dict{
		n:       len(strs),
		parents: parents,
		chars:   chars,
		tokens:  bits.PackSlice(toks),
		offsets: bits.PackSlice(offs),
	}
}

// appendPhrase expands one token by walking the parent chain, then reverses
// the emitted suffix into string order.
func (d *lz78Dict) appendPhrase(dst []byte, t uint32) []byte {
	start := len(dst)
	for t != 0 {
		dst = append(dst, d.chars[t-1])
		t = d.parents[t-1]
	}
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

func (d *lz78Dict) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *lz78Dict) AppendExtract(dst []byte, id uint32) []byte {
	lo := int(d.offsets.Get(int(id)))
	hi := int(d.offsets.Get(int(id) + 1))
	for i := lo; i < hi; i++ {
		dst = d.appendPhrase(dst, uint32(d.tokens.Get(i)))
	}
	return dst
}

func (d *lz78Dict) Locate(s string) (uint32, bool) {
	return locateByExtract(d, d.n, s)
}

func (d *lz78Dict) Len() int       { return d.n }
func (d *lz78Dict) Format() Format { return LZ78 }

func (d *lz78Dict) Bytes() uint64 {
	return 4*uint64(len(d.parents)) + uint64(len(d.chars)) +
		d.tokens.Bytes() + d.offsets.Bytes() + arrayOverhead
}

func (d *lz78Dict) ForEach(fn func(id uint32, value []byte) bool) {
	var buf []byte
	for id := 0; id < d.n; id++ {
		buf = d.AppendExtract(buf[:0], uint32(id))
		if !fn(uint32(id), buf) {
			return
		}
	}
}

// LZ78Stats runs the real parse over strs and reports the component counts
// the size-prediction model needs: phrase-table entries and total tokens.
func LZ78Stats(strs []string) (phrases, tokens int) {
	d := newLZ78(strs)
	return len(d.parents), d.tokens.Len()
}

func marshalLZ78(e *enc, dict Dictionary) error {
	d, ok := dict.(*lz78Dict)
	if !ok {
		return errWrongType(dict)
	}
	e.u64(uint64(d.n))
	e.bytes(d.chars)
	par := make([]uint64, len(d.parents))
	for i, p := range d.parents {
		par[i] = uint64(p)
	}
	e.packed(bits.PackSlice(par))
	e.packed(d.tokens)
	e.packed(d.offsets)
	return nil
}

func unmarshalLZ78(d *dec) (Dictionary, error) {
	n := d.u64()
	chars := d.bytes()
	parPacked := d.packed()
	tokens := d.packed()
	offsets := d.packed()
	if d.err != nil {
		return nil, d.err
	}
	if n > 1<<40 || parPacked.Len() != len(chars) {
		return nil, ErrCorrupt
	}
	parents := make([]uint32, parPacked.Len())
	for i := range parents {
		p := parPacked.Get(i)
		// parent(t) < t keeps every expansion chain finite.
		if p >= uint64(i)+1 {
			return nil, ErrCorrupt
		}
		parents[i] = uint32(p)
	}
	ld := &lz78Dict{n: int(n), parents: parents, chars: chars, tokens: tokens, offsets: offsets}
	if err := ld.validate(); err != nil {
		return nil, err
	}
	return ld, nil
}

// validate checks the structural invariants: monotonic offsets covering the
// token stream and every token naming an existing phrase. Parent bounds are
// checked during decode.
func (d *lz78Dict) validate() error {
	if d.offsets.Len() != d.n+1 {
		return ErrCorrupt
	}
	prev := uint64(0)
	for i := 0; i <= d.n; i++ {
		v := d.offsets.Get(i)
		if v < prev || v > uint64(d.tokens.Len()) {
			return ErrCorrupt
		}
		prev = v
	}
	if prev != uint64(d.tokens.Len()) || (d.n > 0 && d.offsets.Get(0) != 0) {
		return ErrCorrupt
	}
	for i := 0; i < d.tokens.Len(); i++ {
		t := d.tokens.Get(i)
		if t == 0 || t > uint64(len(d.parents)) {
			return ErrCorrupt
		}
	}
	return nil
}

package dict

import (
	"sync"
	"sync/atomic"
)

// BuildOptions tunes dictionary construction. The zero value is the serial
// default used by Build and BuildUnchecked.
type BuildOptions struct {
	// Parallelism is the number of goroutines used to encode independent
	// parts (front-coding block contents, array entries) at build time.
	// Values <= 1 build serially. Codec training stays serial either way
	// (the trained model must see all parts), and the assembled dictionary
	// is bit-identical to the serial build: parallelism changes scheduling
	// only, never layout.
	Parallelism int
}

// minParallelParts is the size floor below which a parallel build falls back
// to the serial path: for small dictionaries the goroutine hand-off costs
// more than the encoding itself.
const minParallelParts = 1024

// clampedWorkers bounds a requested worker count by the number of
// independent work items. It deliberately does not cap at GOMAXPROCS:
// explicit parallelism is honoured (oversubscription is harmless for these
// CPU-bound pools, and tests rely on the pooled path running even on one
// core); callers that want a hardware-sized pool pass GOMAXPROCS themselves.
func clampedWorkers(requested, items int) int {
	w := requested
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// encodeParts materializes enc(i) for every i in [0, n), fanning the calls
// out across a bounded worker pool when parallelism allows. Results land at
// their own index, so the output is identical to the serial loop regardless
// of scheduling.
func encodeParts(enc partEncoder, n, parallelism int) [][]byte {
	encs := make([][]byte, n)
	workers := clampedWorkers(parallelism, n)
	if workers <= 1 || n < minParallelParts {
		for i := range encs {
			encs[i] = enc(i)
		}
		return encs
	}

	// Workers claim fixed-size chunks off a shared cursor: big enough to
	// amortize the atomic, small enough to balance skewed string lengths.
	const chunk = 64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					encs[i] = enc(i)
				}
			}
		}()
	}
	wg.Wait()
	return encs
}

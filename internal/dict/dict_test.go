package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// sortedUnique prepares a valid dictionary input from arbitrary strings.
func sortedUnique(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range in {
		if !seen[s] && !strings.ContainsRune(s, 0) {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// testCorpora returns named inputs that stress different format behaviours.
func testCorpora() map[string][]string {
	rng := rand.New(rand.NewSource(123))
	corpora := make(map[string][]string)

	var words []string
	base := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	for _, b := range base {
		for i := 0; i < 20; i++ {
			words = append(words, fmt.Sprintf("%s-%03d", b, i))
		}
	}
	corpora["prefixed words"] = sortedUnique(words)

	var nums []string
	for i := 0; i < 500; i++ {
		nums = append(nums, fmt.Sprintf("%018d", i*7919))
	}
	corpora["fixed digits"] = sortedUnique(nums)

	var random []string
	for i := 0; i < 300; i++ {
		b := make([]byte, 1+rng.Intn(30))
		for j := range b {
			b[j] = byte(1 + rng.Intn(255))
		}
		random = append(random, string(b))
	}
	corpora["random bytes"] = sortedUnique(random)

	corpora["single"] = []string{"lonely"}
	corpora["two"] = []string{"a", "b"}
	corpora["with empty"] = []string{"", "x", "xx", "xxx"}

	// Exactly block-size and off-by-one cardinalities.
	var exact []string
	for i := 0; i < DefaultFCBlockSize*3; i++ {
		exact = append(exact, fmt.Sprintf("key%05d", i))
	}
	corpora["exact blocks"] = exact
	corpora["blocks+1"] = append(append([]string{}, exact...), "zzz")

	return corpora
}

func TestAllFormatsRoundTrip(t *testing.T) {
	for name, strs := range testCorpora() {
		for _, f := range AllFormats() {
			t.Run(fmt.Sprintf("%s/%s", f, name), func(t *testing.T) {
				d, err := Build(f, strs)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if d.Len() != len(strs) {
					t.Fatalf("Len = %d, want %d", d.Len(), len(strs))
				}
				for i, want := range strs {
					if got := d.Extract(uint32(i)); got != want {
						t.Fatalf("Extract(%d) = %q, want %q", i, got, want)
					}
				}
			})
		}
	}
}

func TestAllFormatsLocate(t *testing.T) {
	for name, strs := range testCorpora() {
		for _, f := range AllFormats() {
			t.Run(fmt.Sprintf("%s/%s", f, name), func(t *testing.T) {
				d, err := Build(f, strs)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				// Every present string locates to its own ID.
				for i, s := range strs {
					id, found := d.Locate(s)
					if !found || id != uint32(i) {
						t.Fatalf("Locate(%q) = (%d,%v), want (%d,true)", s, id, found, i)
					}
				}
				// Absent probes return the first greater string's ID
				// (Definition 1).
				probes := []string{"", "\x01", "zzzzzzzzzz~", "m"}
				for _, s := range strs {
					probes = append(probes, s+"\x01", strings.TrimRight(s, "z")+"z~")
				}
				for _, p := range probes {
					if strings.ContainsRune(p, 0) {
						continue
					}
					id, found := d.Locate(p)
					wantID := uint32(sort.SearchStrings(strs, p))
					wantFound := int(wantID) < len(strs) && strs[wantID] == p
					if id != wantID || found != wantFound {
						t.Fatalf("Locate(%q) = (%d,%v), want (%d,%v)", p, id, found, wantID, wantFound)
					}
				}
			})
		}
	}
}

func TestEmptyDictionary(t *testing.T) {
	for _, f := range AllFormats() {
		d, err := Build(f, nil)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if d.Len() != 0 {
			t.Fatalf("%s: Len = %d", f, d.Len())
		}
		if id, found := d.Locate("anything"); found || id != 0 {
			t.Fatalf("%s: Locate on empty = (%d,%v)", f, id, found)
		}
	}
}

func TestBuildRejectsUnsorted(t *testing.T) {
	if _, err := Build(Array, []string{"b", "a"}); err != ErrUnsorted {
		t.Fatalf("err = %v, want ErrUnsorted", err)
	}
	if _, err := Build(Array, []string{"a", "a"}); err != ErrUnsorted {
		t.Fatalf("duplicate err = %v, want ErrUnsorted", err)
	}
}

func TestBuildRejectsNUL(t *testing.T) {
	if _, err := Build(Array, []string{"a\x00b"}); err != ErrNUL {
		t.Fatalf("err = %v, want ErrNUL", err)
	}
}

func TestAppendExtractAppends(t *testing.T) {
	strs := []string{"aa", "bb", "cc"}
	for _, f := range AllFormats() {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		buf := []byte("prefix:")
		buf = d.AppendExtract(buf, 1)
		if string(buf) != "prefix:bb" {
			t.Fatalf("%s: AppendExtract = %q", f, buf)
		}
	}
}

func TestCompressionRateOrdering(t *testing.T) {
	// On a highly redundant corpus, the compressing formats must beat the
	// plain array, and fc block rp must be among the smallest — Figure 3's
	// qualitative structure.
	var strs []string
	for i := 0; i < 2000; i++ {
		strs = append(strs, fmt.Sprintf("/usr/share/applications/package-%06d.desktop", i))
	}
	strs = sortedUnique(strs)

	size := func(f Format) uint64 {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		return d.Bytes()
	}

	raw := size(Array)
	for _, f := range []Format{FCBlock, FCBlockBC, FCBlockHU, ArrayRP12, FCBlockRP12} {
		if s := size(f); s >= raw {
			t.Errorf("%s (%d bytes) not smaller than array (%d bytes)", f, s, raw)
		}
	}
	if fcrp, fc := size(FCBlockRP12), size(FCBlock); fcrp >= fc {
		t.Errorf("fc block rp 12 (%d) not smaller than fc block (%d)", fcrp, fc)
	}
}

func TestColumnBCShinesOnFixedLength(t *testing.T) {
	// Fixed-length structured strings: column bc must compress well.
	var strs []string
	for i := 0; i < 3000; i++ {
		strs = append(strs, fmt.Sprintf("%018d", 100000000+i*13))
	}
	strs = sortedUnique(strs)
	dcol, _ := Build(ColumnBC, strs)
	draw, _ := Build(Array, strs)
	if dcol.Bytes() >= draw.Bytes() {
		t.Errorf("column bc (%d) not smaller than array (%d) on fixed-length digits",
			dcol.Bytes(), draw.Bytes())
	}
}

func TestColumnBCBloatsOnVariableLength(t *testing.T) {
	// Variable-length text: column bc pads every block to its longest
	// string and must be bigger than the raw data, as in Figure 3.
	rng := rand.New(rand.NewSource(99))
	var strs []string
	for i := 0; i < 500; i++ {
		n := 2 + rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		strs = append(strs, string(b))
	}
	strs = sortedUnique(strs)
	d, _ := Build(ColumnBC, strs)
	if d.Bytes() <= RawBytes(strs) {
		t.Errorf("column bc (%d bytes) unexpectedly below raw size (%d)", d.Bytes(), RawBytes(strs))
	}
}

func TestArrayFixedNoPointers(t *testing.T) {
	// array fixed must cost exactly n*maxLen plus constant overhead.
	strs := []string{"aa", "bb", "cccc"}
	d, _ := Build(ArrayFixed, strs)
	if got, want := d.Bytes(), uint64(3*4)+arrayOverhead; got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestFormatStringRoundTrip(t *testing.T) {
	for _, f := range AllFormats() {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = (%v, %v), want %v", f.String(), got, err, f)
		}
	}
	if _, err := ParseFormat("nonsense"); err == nil {
		t.Error("ParseFormat accepted nonsense")
	}
}

func TestQuickAllFormats(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	for _, f := range AllFormats() {
		f := f
		check := func(raw []string) bool {
			strs := sortedUnique(raw)
			d, err := Build(f, strs)
			if err != nil {
				return false
			}
			for i, want := range strs {
				if d.Extract(uint32(i)) != want {
					return false
				}
				if id, found := d.Locate(want); !found || id != uint32(i) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, cfg); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestLongSharedPrefixBeyondCap(t *testing.T) {
	// Common prefixes longer than 255 bytes must still round-trip (the
	// header slot caps the shared part, the rest goes into the suffix).
	long := strings.Repeat("p", 300)
	strs := []string{long + "a", long + "b", long + "c"}
	for _, f := range []Format{FCBlock, FCBlockDF, FCInline, FCBlockHU} {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range strs {
			if got := d.Extract(uint32(i)); got != want {
				t.Fatalf("%s: Extract(%d) mismatch (len %d vs %d)", f, i, len(got), len(want))
			}
		}
	}
}

func TestBytesAccountsForData(t *testing.T) {
	var strs []string
	for i := 0; i < 1000; i++ {
		strs = append(strs, fmt.Sprintf("item-%08d", i))
	}
	for _, f := range AllFormats() {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		if d.Bytes() < 100 {
			t.Errorf("%s: Bytes() = %d looks unaccounted", f, d.Bytes())
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	var strs []string
	for i := 0; i < 10000; i++ {
		strs = append(strs, fmt.Sprintf("customer#%09d", i*37))
	}
	strs = sortedUnique(strs)
	for _, f := range AllFormats() {
		d, err := Build(f, strs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.String(), func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = d.AppendExtract(buf[:0], uint32(i*2654435761)%uint32(d.Len()))
			}
		})
	}
}

func BenchmarkLocate(b *testing.B) {
	var strs []string
	for i := 0; i < 10000; i++ {
		strs = append(strs, fmt.Sprintf("customer#%09d", i*37))
	}
	strs = sortedUnique(strs)
	for _, f := range AllFormats() {
		d, err := Build(f, strs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Locate(strs[(i*2654435761)%len(strs)])
			}
		})
	}
}

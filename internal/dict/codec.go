package dict

import (
	"bytes"

	"strdict/internal/bitcomp"
	"strdict/internal/bits"
	"strdict/internal/huffman"
	"strdict/internal/hutucker"
	"strdict/internal/ngram"
	"strdict/internal/repair"
)

// Scheme enumerates the string compression schemes of Section 3.3.
type Scheme int

const (
	SchemeNone Scheme = iota
	SchemeBC
	SchemeHU
	SchemeNG2
	SchemeNG3
	SchemeRP12
	SchemeRP16
)

var schemeNames = [...]string{"none", "bc", "hu", "ng2", "ng3", "rp12", "rp16"}

// String names the scheme.
func (s Scheme) String() string {
	if s < 0 || int(s) >= len(schemeNames) {
		return "scheme?"
	}
	return schemeNames[s]
}

// codec decodes self-delimiting encoded strings. Every scheme terminates a
// string with an EOS symbol (NUL for the raw scheme), so encoded strings can
// be concatenated and walked.
type codec interface {
	// decodeNext appends the decoded form of the encoded string beginning
	// at enc[0] to dst and returns the extended slice plus the number of
	// bytes of enc the encoding occupied (encodings are byte-aligned).
	decodeNext(dst, enc []byte) ([]byte, int)
	// tableBytes is the footprint of the codec's shared tables.
	tableBytes() uint64
}

// encodedComparable is implemented by codecs whose encoded byte strings
// compare in the same order as the original strings, enabling locate to
// binary-search entirely on compressed data. canEncodeProbe guards against
// probe characters outside the trained alphabet, for which the caller falls
// back to extraction-based search.
type encodedComparable interface {
	encodeProbe(dst []byte, src []byte) []byte
	canEncodeProbe(src []byte) bool
}

// schemeOrderPreserving reports whether the scheme's encoded byte strings,
// as built for array dictionaries, compare like the originals.
func schemeOrderPreserving(s Scheme) bool {
	switch s {
	case SchemeNone, SchemeBC, SchemeHU:
		return true
	}
	return false
}

// rawCodec stores strings verbatim with a NUL terminator.
type rawCodec struct{}

func (rawCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	i := bytes.IndexByte(enc, 0)
	if i < 0 {
		i = len(enc)
		return append(dst, enc...), i
	}
	return append(dst, enc[:i]...), i + 1
}

func (rawCodec) encodeProbe(dst, src []byte) []byte {
	dst = append(dst, src...)
	return append(dst, 0)
}

func (rawCodec) canEncodeProbe([]byte) bool { return true }

func (rawCodec) tableBytes() uint64 { return 0 }

// consumedBytes converts a bit-reader position into whole bytes consumed,
// clamped to the buffer length: a corrupt stream without a terminator can
// leave the reader position past the end.
func consumedBytes(r *bits.Reader, enc []byte) int {
	n := int((r.Pos() + 7) / 8)
	if n > len(enc) {
		n = len(enc)
	}
	return n
}

type bcCodec struct{ c *bitcomp.Codec }

func (w bcCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	r := bits.NewReader(enc)
	dst = w.c.DecodeFrom(dst, r)
	return dst, consumedBytes(r, enc)
}
func (w bcCodec) encodeProbe(dst, src []byte) []byte { return w.c.Encode(dst, src) }
func (w bcCodec) canEncodeProbe(src []byte) bool     { return w.c.CanEncode(src) }
func (w bcCodec) tableBytes() uint64                 { return w.c.TableBytes() }

type huTuckerCodec struct{ c *hutucker.Codec }

func (w huTuckerCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	r := bits.NewReader(enc)
	dst = w.c.DecodeFrom(dst, r)
	return dst, consumedBytes(r, enc)
}
func (w huTuckerCodec) encodeProbe(dst, src []byte) []byte { return w.c.Encode(dst, src) }
func (w huTuckerCodec) canEncodeProbe(src []byte) bool     { return w.c.CanEncode(src) }
func (w huTuckerCodec) tableBytes() uint64                 { return w.c.TableBytes() }

type huffmanCodec struct{ c *huffman.Codec }

func (w huffmanCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	r := bits.NewReader(enc)
	dst = w.c.DecodeFrom(dst, r)
	return dst, consumedBytes(r, enc)
}
func (w huffmanCodec) tableBytes() uint64 { return w.c.TableBytes() }

type ngramCodec struct{ c *ngram.Codec }

func (w ngramCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	r := bits.NewReader(enc)
	dst = w.c.DecodeFrom(dst, r)
	return dst, consumedBytes(r, enc)
}
func (w ngramCodec) tableBytes() uint64 { return w.c.TableBytes() }

type repairCodec struct{ g *repair.Grammar }

func (w repairCodec) decodeNext(dst, enc []byte) ([]byte, int) {
	r := bits.NewReader(enc)
	dst = w.g.DecodeFrom(dst, r)
	return dst, consumedBytes(r, enc)
}
func (w repairCodec) tableBytes() uint64 { return w.g.TableBytes() }

// partEncoder produces the byte-aligned encoded form of part i. Encoders
// close over an immutable trained codec and own no shared mutable state, so
// distinct indices may be encoded concurrently; the result depends only on i.
type partEncoder func(i int) []byte

// trainCodec trains the scheme's model on all parts (inherently serial — the
// model must see the whole corpus) and returns the codec plus an encoder for
// individual parts.
//
// orderPreserving selects Hu-Tucker (order-preserving, slightly larger) over
// Huffman for SchemeHU: array dictionaries want it so locate can compare in
// the encoded domain; front-coded suffixes are walked decoded, so they take
// the better-compressing Huffman code instead.
func trainCodec(s Scheme, parts [][]byte, orderPreserving bool) (codec, partEncoder) {
	switch s {
	case SchemeNone:
		c := rawCodec{}
		return c, func(i int) []byte { return c.encodeProbe(nil, parts[i]) }
	case SchemeBC:
		c := bitcomp.Train(parts)
		return bcCodec{c}, func(i int) []byte { return c.Encode(nil, parts[i]) }
	case SchemeHU:
		if orderPreserving {
			c := hutucker.Train(parts)
			return huTuckerCodec{c}, func(i int) []byte { return c.Encode(nil, parts[i]) }
		}
		c := huffman.Train(parts)
		return huffmanCodec{c}, func(i int) []byte { return c.Encode(nil, parts[i]) }
	case SchemeNG2, SchemeNG3:
		n := 2
		if s == SchemeNG3 {
			n = 3
		}
		c := ngram.Train(n, parts)
		return ngramCodec{c}, func(i int) []byte { return c.Encode(nil, parts[i]) }
	case SchemeRP12, SchemeRP16:
		width := uint(12)
		if s == SchemeRP16 {
			width = 16
		}
		g, seqs := repair.Train(parts, width)
		return repairCodec{g}, func(i int) []byte { return g.EncodeSeq(nil, seqs[i]) }
	default:
		panic("dict: unknown scheme")
	}
}

// buildCodec trains the scheme's model on parts and returns the codec along
// with the byte-aligned encoded form of every part, in order. parallelism
// bounds the worker pool used for the per-part encoding (<= 1 is serial);
// the encoded output is identical either way.
func buildCodec(s Scheme, parts [][]byte, orderPreserving bool, parallelism int) (codec, [][]byte) {
	c, enc := trainCodec(s, parts, orderPreserving)
	return c, encodeParts(enc, len(parts), parallelism)
}

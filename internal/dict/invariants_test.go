package dict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllFormatsAgree is the differential oracle: every format must realize
// exactly the same mapping on the same input — same Extract results, same
// Locate IDs and found flags, for present and absent probes alike.
func TestAllFormatsAgree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}
	check := func(raw []string, probes []string) bool {
		strs := sortedUnique(raw)
		dicts := make([]Dictionary, 0, NumFormats())
		for _, f := range AllFormats() {
			d, err := Build(f, strs)
			if err != nil {
				return false
			}
			dicts = append(dicts, d)
		}
		ref := dicts[0]
		for i := range strs {
			want := ref.Extract(uint32(i))
			for _, d := range dicts[1:] {
				if d.Extract(uint32(i)) != want {
					return false
				}
			}
		}
		for _, p := range probes {
			if hasNUL(p) {
				continue
			}
			wantID, wantFound := ref.Locate(p)
			for _, d := range dicts[1:] {
				if id, found := d.Locate(p); id != wantID || found != wantFound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func hasNUL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return true
		}
	}
	return false
}

// TestBytesStableAcrossReads ensures reads do not change the reported size
// (no hidden caches growing the footprint).
func TestBytesStableAcrossReads(t *testing.T) {
	strs := testCorpora()["prefixed words"]
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		before := d.Bytes()
		for i := 0; i < d.Len(); i++ {
			d.Extract(uint32(i))
		}
		d.Locate("zzz")
		d.ForEach(func(uint32, []byte) bool { return true })
		if d.Bytes() != before {
			t.Errorf("%s: Bytes changed %d -> %d after reads", f, before, d.Bytes())
		}
	}
}

// TestCompressionRateDefinition checks Definition 2 arithmetic.
func TestCompressionRateDefinition(t *testing.T) {
	strs := []string{"aaaa", "bbbb"} // 8 raw bytes
	d, _ := Build(Array, strs)
	want := 8.0 / float64(d.Bytes())
	if got := CompressionRate(d, strs); got != want {
		t.Fatalf("rate %g, want %g", got, want)
	}
}

package dict

import (
	"bytes"

	"strdict/internal/bits"
)

// arrayDict is the array dictionary class: the (possibly compressed) strings
// live concatenated in one data area, with a packed offset per string.
type arrayDict struct {
	format  Format
	n       int
	data    []byte
	offsets *bits.PackedArray // n+1 entries: offsets[i] .. offsets[i+1] is string i
	c       codec
}

func newArrayDict(f Format, strs []string, opts BuildOptions) *arrayDict {
	parts := make([][]byte, len(strs))
	for i, s := range strs {
		parts[i] = []byte(s)
	}
	c, encs := buildCodec(f.Scheme(), parts, true, opts.Parallelism)

	var total int
	for _, e := range encs {
		total += len(e)
	}
	data := make([]byte, 0, total)
	offs := make([]uint64, len(strs)+1)
	for i, e := range encs {
		offs[i] = uint64(len(data))
		data = append(data, e...)
	}
	offs[len(strs)] = uint64(len(data))
	return &arrayDict{
		format:  f,
		n:       len(strs),
		data:    data,
		offsets: bits.PackSlice(offs),
		c:       c,
	}
}

func (d *arrayDict) encoded(id uint32) []byte {
	lo := d.offsets.Get(int(id))
	hi := d.offsets.Get(int(id) + 1)
	return d.data[lo:hi]
}

func (d *arrayDict) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *arrayDict) AppendExtract(dst []byte, id uint32) []byte {
	out, _ := d.c.decodeNext(dst, d.encoded(id))
	return out
}

func (d *arrayDict) Locate(s string) (uint32, bool) { return arrayLocate(d, s) }

// LocateBytes is the byte-slice probe path. On the raw scheme it compares
// the probe against the stored encodings in place — no conversion, no
// probe buffer, no allocation at all.
func (d *arrayDict) LocateBytes(s []byte) (uint32, bool) { return arrayLocate(d, s) }

// arrayLocate serves both probe types. Raw-scheme encodings are the value
// bytes plus a NUL terminator, so stripping the terminator lets the search
// compare the probe against stored data directly; order-preserving
// compressed schemes (bc, hu) binary-search on an encoded probe; everything
// else falls back to extraction-based search.
func arrayLocate[S ~string | ~[]byte](d *arrayDict, s S) (uint32, bool) {
	if d.format.Scheme() == SchemeNone {
		lo, hi := 0, d.n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			e := d.encoded(uint32(mid))
			if cmpProbe(e[:len(e)-1], s) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < d.n {
			e := d.encoded(uint32(lo))
			if cmpProbe(e[:len(e)-1], s) == 0 {
				return uint32(lo), true
			}
		}
		return uint32(lo), false
	}
	if ec, ok := d.c.(encodedComparable); ok && schemeOrderPreserving(d.format.Scheme()) {
		if sb := []byte(s); ec.canEncodeProbe(sb) {
			probe := ec.encodeProbe(make([]byte, 0, len(sb)+8), sb)
			lo, hi := 0, d.n
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if bytes.Compare(d.encoded(uint32(mid)), probe) < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			found := lo < d.n && bytes.Equal(d.encoded(uint32(lo)), probe)
			return uint32(lo), found
		}
	}
	return locateByExtract(d, d.n, s)
}

// cmpProbe three-way compares stored bytes against a probe of either type
// without converting or allocating.
func cmpProbe[S ~string | ~[]byte](b []byte, s S) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

func (d *arrayDict) Len() int       { return d.n }
func (d *arrayDict) Format() Format { return d.format }

func (d *arrayDict) Bytes() uint64 {
	return uint64(len(d.data)) + d.offsets.Bytes() + d.c.tableBytes() + arrayOverhead
}

// arrayOverhead approximates the fixed struct and slice-header footprint.
const arrayOverhead = 64

// arrayFixed allocates the same slot for every string: the length of the
// longest one. It has no pointer array at all, which makes it both the
// fastest format and — on the numerous tiny, fixed-length dictionaries of
// real systems — often the smallest.
type arrayFixed struct {
	n    int
	slot int
	data []byte
}

func newArrayFixed(strs []string) *arrayFixed {
	slot := 0
	for _, s := range strs {
		if len(s) > slot {
			slot = len(s)
		}
	}
	d := &arrayFixed{n: len(strs), slot: slot, data: make([]byte, len(strs)*slot)}
	for i, s := range strs {
		copy(d.data[i*slot:], s)
	}
	return d
}

func (d *arrayFixed) slotBytes(id uint32) []byte {
	return d.data[int(id)*d.slot : int(id)*d.slot+d.slot]
}

func (d *arrayFixed) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *arrayFixed) AppendExtract(dst []byte, id uint32) []byte {
	s := d.slotBytes(id)
	if i := bytes.IndexByte(s, 0); i >= 0 {
		s = s[:i] // strings are NUL-free, so the first NUL is padding
	}
	return append(dst, s...)
}

func (d *arrayFixed) Locate(s string) (uint32, bool) { return fixedLocate(d, s) }

// LocateBytes is the allocation-free byte-slice probe path: slots are
// compared against the probe bytes in place.
func (d *arrayFixed) LocateBytes(s []byte) (uint32, bool) { return fixedLocate(d, s) }

func fixedLocate[S ~string | ~[]byte](d *arrayFixed, s S) (uint32, bool) {
	// Padded slots compare exactly like the original strings because the
	// padding byte 0 sorts below every allowed character.
	lo, hi := 0, d.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareSlot(d.slotBytes(uint32(mid)), s) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < d.n && compareSlot(d.slotBytes(uint32(lo)), s) == 0
	return uint32(lo), found
}

// compareSlot compares a zero-padded slot against a plain probe.
func compareSlot[S ~string | ~[]byte](slot []byte, s S) int {
	n := len(s)
	if len(slot) < n {
		n = len(slot)
	}
	for i := 0; i < n; i++ {
		if slot[i] != s[i] {
			if slot[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	// s fully matched the slot prefix.
	if len(s) >= len(slot) {
		if len(s) == len(slot) {
			return 0
		}
		return -1 // slot exhausted, s longer
	}
	if slot[len(s)] == 0 {
		return 0 // remaining slot is padding
	}
	return 1
}

func (d *arrayFixed) Len() int       { return d.n }
func (d *arrayFixed) Format() Format { return ArrayFixed }

func (d *arrayFixed) Bytes() uint64 {
	return uint64(len(d.data)) + arrayOverhead
}

// locateByExtract is the generic locate: binary search over value IDs,
// extracting the probe positions. Correct for every format because all
// formats are order-preserving. The probe is compared as raw bytes, so
// byte-slice probes never convert.
func locateByExtract[S ~string | ~[]byte](d Dictionary, n int, s S) (uint32, bool) {
	var buf []byte
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		buf = d.AppendExtract(buf[:0], uint32(mid))
		if cmpProbe(buf, s) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		buf = d.AppendExtract(buf[:0], uint32(lo))
		if cmpProbe(buf, s) == 0 {
			return uint32(lo), true
		}
	}
	return uint32(lo), false
}

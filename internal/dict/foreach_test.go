package dict

import (
	"fmt"
	"testing"
)

func TestForEachMatchesExtract(t *testing.T) {
	for name, strs := range testCorpora() {
		for _, f := range AllFormats() {
			d, err := Build(f, strs)
			if err != nil {
				t.Fatal(err)
			}
			var visited int
			d.ForEach(func(id uint32, value []byte) bool {
				if id != uint32(visited) {
					t.Fatalf("%s/%s: visited id %d, want %d", f, name, id, visited)
				}
				if string(value) != strs[id] {
					t.Fatalf("%s/%s: ForEach(%d) = %q, want %q", f, name, id, value, strs[id])
				}
				visited++
				return true
			})
			if visited != len(strs) {
				t.Fatalf("%s/%s: visited %d of %d", f, name, visited, len(strs))
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	strs := []string{"a", "b", "c", "d", "e"}
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		var visited int
		d.ForEach(func(id uint32, value []byte) bool {
			visited++
			return visited < 3
		})
		if visited != 3 {
			t.Errorf("%s: visited %d after early stop, want 3", f, visited)
		}
	}
}

func TestForEachHashDict(t *testing.T) {
	strs := []string{"x", "y", "z"}
	d, err := BuildHash(strs)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	d.ForEach(func(id uint32, value []byte) bool {
		got = append(got, string(value))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(strs) {
		t.Fatalf("got %v", got)
	}
}

// BenchmarkSequentialScan shows the paper's fc inline design point:
// sequential ForEach vs per-entry Extract on front-coded formats.
func BenchmarkSequentialScan(b *testing.B) {
	var strs []string
	for i := 0; i < 20000; i++ {
		strs = append(strs, fmt.Sprintf("https://example.com/items/%08d", i))
	}
	for _, f := range []Format{FCInline, FCBlock, Array} {
		d, _ := Build(f, strs)
		b.Run(f.String()+"/foreach", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.ForEach(func(uint32, []byte) bool { return true })
			}
		})
		b.Run(f.String()+"/extract-loop", func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				for id := 0; id < d.Len(); id++ {
					buf = d.AppendExtract(buf[:0], uint32(id))
				}
			}
		})
	}
}

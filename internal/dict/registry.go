package dict

// The format registry. Every dictionary format — the paper's eighteen
// built-ins and any extension — is described by one FormatInfo descriptor
// holding its name, its immutable on-disk wire ID, its dictionary-class
// traits, its builder, and its serializer. All generic machinery (Build,
// AllFormats, Marshal/Unmarshal, the prediction framework, the compression
// manager, persistence) dispatches through the registry and needs no
// per-format knowledge; adding a format is one registration file.
//
// Two identifier spaces exist on purpose:
//
//   - The Format value is a dense registry index, assigned in registration
//     order. It is a process-local handle: good for array indexing and map
//     keys, never persisted.
//   - The WireID is the format's immutable serialized identifier, chosen by
//     the registrant and written into dictionary blobs, WAL DDL records and
//     checkpoint manifests. Wire IDs must never be reused or renumbered —
//     bytes on disk outlive any refactor. The built-in formats own wire IDs
//     0–17 (their historical enum values, so pre-registry files load
//     unchanged); extensions must pick unused IDs well clear of that range.

import (
	"fmt"
	"sort"
	"strings"
)

// FormatInfo describes one dictionary format to the registry.
type FormatInfo struct {
	// Name is the format's human-readable identifier (e.g. "fc block rp 12").
	// ParseFormat matches it case- and whitespace-insensitively.
	Name string

	// WireID is the immutable on-disk identifier. See the package comment on
	// the two identifier spaces; never reuse or renumber a wire ID.
	WireID uint16

	// Scheme is the string compression scheme trait the format applies
	// (SchemeNone for formats with their own, self-contained coding).
	Scheme Scheme

	// FrontCoded reports membership in the front-coding dictionary class.
	FrontCoded bool

	// Build constructs the dictionary over validated input (strictly
	// ascending, unique, NUL-free strings).
	Build func(strs []string, opts BuildOptions) Dictionary

	// BuildBlock, optional, builds with a non-default front-coding block
	// size. Nil for formats without a tunable block layout.
	BuildBlock func(strs []string, blockSize int, opts BuildOptions) Dictionary

	// Marshal appends the format's payload sections (everything between the
	// serialization header and the CRC footer) for a dictionary this format
	// built.
	Marshal func(e *enc, d Dictionary) error

	// Unmarshal parses and validates the payload sections. Implementations
	// must reject structurally invalid bytes with ErrCorrupt — Unmarshal runs
	// on untrusted input.
	Unmarshal func(d *dec) (Dictionary, error)
}

var (
	registry []FormatInfo
	byName   map[string]Format // normalized name → format
	byWire   map[uint16]Format
)

// builtinsRegistered pins initialization order: RegisterFormat references it,
// so any package-level registration in another file depends on it and the
// paper's built-ins always occupy registry indexes 0–17 (their legacy enum
// values) before extensions register.
var builtinsRegistered = registerBuiltins()

// RegisterFormat adds a format to the registry and returns its Format value.
// It is meant to be called from a package-level variable initializer in the
// format's registration file:
//
//	var MyFormat = RegisterFormat(FormatInfo{...})
//
// Registration panics on descriptor errors (duplicate name or wire ID,
// missing hooks): a malformed registration is a programming bug that must
// surface at start-up, not at first use.
func RegisterFormat(info FormatInfo) Format {
	_ = builtinsRegistered
	return register(info)
}

func register(info FormatInfo) Format {
	name := normalizeFormatName(info.Name)
	switch {
	case name == "":
		panic("dict: RegisterFormat with empty name")
	case info.Build == nil || info.Marshal == nil || info.Unmarshal == nil:
		panic(fmt.Sprintf("dict: format %q registered without build/marshal/unmarshal hooks", info.Name))
	}
	if f, dup := byName[name]; dup {
		panic(fmt.Sprintf("dict: format name %q already registered as %s", info.Name, f))
	}
	if f, dup := byWire[info.WireID]; dup {
		panic(fmt.Sprintf("dict: wire ID %d already registered by %s", info.WireID, f))
	}
	f := Format(len(registry))
	registry = append(registry, info)
	byName[name] = f
	byWire[info.WireID] = f
	return f
}

// formatInfo returns the descriptor of a registered format.
func formatInfo(f Format) (*FormatInfo, bool) {
	if f < 0 || int(f) >= len(registry) {
		return nil, false
	}
	return &registry[f], true
}

// NumFormats returns the number of registered dictionary formats.
func NumFormats() int { return len(registry) }

// WireID returns the format's immutable on-disk identifier. It panics on an
// unregistered Format value — such a value cannot name real bytes.
func (f Format) WireID() uint16 {
	info, ok := formatInfo(f)
	if !ok {
		panic(fmt.Sprintf("dict: WireID of unregistered format %d", int(f)))
	}
	return info.WireID
}

// FormatByWireID resolves a serialized wire ID back to its registered
// format. Unknown IDs return ok == false; persistence layers map that to
// their corruption errors rather than guessing.
func FormatByWireID(wire uint16) (Format, bool) {
	f, ok := byWire[wire]
	return f, ok
}

// RegisteredNames returns the names of all registered formats, sorted.
func RegisteredNames() []string {
	names := make([]string, 0, len(registry))
	for i := range registry {
		names = append(names, registry[i].Name)
	}
	sort.Strings(names)
	return names
}

// normalizeFormatName canonicalizes a format name for lookup: lower case,
// single spaces.
func normalizeFormatName(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

// registerBuiltins registers the eighteen formats of the paper's survey at
// registry indexes 0–17, matching the Format constants, with wire IDs equal
// to their pre-registry enum values so existing serialized dictionaries,
// WAL records and checkpoint manifests keep loading.
func registerBuiltins() bool {
	registry = make([]FormatInfo, 0, 24)
	byName = make(map[string]Format, 24)
	byWire = make(map[uint16]Format, 24)

	arr := func(c Format, name string, sc Scheme) {
		mustBe(c, register(FormatInfo{
			Name:   name,
			WireID: uint16(c),
			Scheme: sc,
			Build: func(strs []string, opts BuildOptions) Dictionary {
				return newArrayDict(c, strs, opts)
			},
			Marshal:   marshalArray,
			Unmarshal: func(d *dec) (Dictionary, error) { return unmarshalArray(d, c, sc) },
		}))
	}
	fc := func(c Format, name string, sc Scheme, mode fcMode) {
		mustBe(c, register(FormatInfo{
			Name:       name,
			WireID:     uint16(c),
			Scheme:     sc,
			FrontCoded: true,
			Build: func(strs []string, opts BuildOptions) Dictionary {
				return newFCDict(c, mode, strs, DefaultFCBlockSize, opts)
			},
			BuildBlock: func(strs []string, blockSize int, opts BuildOptions) Dictionary {
				return newFCDict(c, mode, strs, blockSize, opts)
			},
			Marshal:   marshalFC,
			Unmarshal: func(d *dec) (Dictionary, error) { return unmarshalFC(d, c, sc, mode) },
		}))
	}

	arr(Array, "array", SchemeNone)
	arr(ArrayBC, "array bc", SchemeBC)
	arr(ArrayHU, "array hu", SchemeHU)
	arr(ArrayNG2, "array ng2", SchemeNG2)
	arr(ArrayNG3, "array ng3", SchemeNG3)
	arr(ArrayRP12, "array rp 12", SchemeRP12)
	arr(ArrayRP16, "array rp 16", SchemeRP16)
	mustBe(ArrayFixed, register(FormatInfo{
		Name:   "array fixed",
		WireID: uint16(ArrayFixed),
		Scheme: SchemeNone,
		Build: func(strs []string, _ BuildOptions) Dictionary {
			return newArrayFixed(strs)
		},
		Marshal:   marshalArrayFixed,
		Unmarshal: unmarshalArrayFixed,
	}))
	fc(FCBlock, "fc block", SchemeNone, fcModePrev)
	fc(FCBlockBC, "fc block bc", SchemeBC, fcModePrev)
	fc(FCBlockDF, "fc block df", SchemeNone, fcModeFirst)
	fc(FCBlockHU, "fc block hu", SchemeHU, fcModePrev)
	fc(FCBlockNG2, "fc block ng2", SchemeNG2, fcModePrev)
	fc(FCBlockNG3, "fc block ng3", SchemeNG3, fcModePrev)
	fc(FCBlockRP12, "fc block rp 12", SchemeRP12, fcModePrev)
	fc(FCBlockRP16, "fc block rp 16", SchemeRP16, fcModePrev)
	fc(FCInline, "fc inline", SchemeNone, fcModeInline)
	mustBe(ColumnBC, register(FormatInfo{
		Name:   "column bc",
		WireID: uint16(ColumnBC),
		Scheme: SchemeNone,
		Build: func(strs []string, _ BuildOptions) Dictionary {
			return newColumnBC(strs, DefaultColumnBCBlockSize)
		},
		Marshal:   marshalColumnBC,
		Unmarshal: unmarshalColumnBC,
	}))
	return true
}

// mustBe asserts a built-in landed on its constant's registry index.
func mustBe(want, got Format) {
	if want != got {
		panic(fmt.Sprintf("dict: builtin registered at index %d, want %d", int(got), int(want)))
	}
}

package dict

import (
	"fmt"
	"sort"
	"testing"
)

func TestHashDictRoundTrip(t *testing.T) {
	for name, strs := range testCorpora() {
		t.Run(name, func(t *testing.T) {
			d, err := BuildHash(strs)
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range strs {
				if got := d.Extract(uint32(i)); got != want {
					t.Fatalf("Extract(%d) = %q, want %q", i, got, want)
				}
				if id, found := d.Locate(want); !found || id != uint32(i) {
					t.Fatalf("Locate(%q) = (%d,%v)", want, id, found)
				}
			}
			// Absent probes honour Definition 1.
			for _, probe := range []string{"", "\x01zz", "~~~~~~"} {
				id, found := d.Locate(probe)
				wantID := uint32(sort.SearchStrings(strs, probe))
				wantFound := int(wantID) < len(strs) && strs[wantID] == probe
				if id != wantID || found != wantFound {
					t.Fatalf("Locate(%q) = (%d,%v), want (%d,%v)", probe, id, found, wantID, wantFound)
				}
			}
		})
	}
}

func TestHashDictRejectsBadInput(t *testing.T) {
	if _, err := BuildHash([]string{"b", "a"}); err != ErrUnsorted {
		t.Fatal("accepted unsorted input")
	}
}

func TestHashDictDominatedOnCompression(t *testing.T) {
	// The paper's reason for excluding hashing: its compression rate is
	// dominated — the hash table adds space on top of the raw strings, so
	// even the plain array beats it.
	var strs []string
	for i := 0; i < 5000; i++ {
		strs = append(strs, fmt.Sprintf("element-%06d", i))
	}
	h, err := BuildHash(strs)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildUnchecked(Array, strs)
	if h.Bytes() <= a.Bytes() {
		t.Errorf("hash dict (%d bytes) unexpectedly beat array (%d bytes)", h.Bytes(), a.Bytes())
	}
}

func TestHashDictEmpty(t *testing.T) {
	d, err := BuildHash(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("non-empty")
	}
	if id, found := d.Locate("x"); found || id != 0 {
		t.Fatalf("Locate on empty = (%d,%v)", id, found)
	}
}

func BenchmarkHashDictLocate(b *testing.B) {
	var strs []string
	for i := 0; i < 20000; i++ {
		strs = append(strs, fmt.Sprintf("element-%06d", i))
	}
	h, err := BuildHash(strs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Locate(strs[(i*2654435761)%len(strs)])
	}
}

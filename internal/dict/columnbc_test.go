package dict

import (
	"fmt"
	"strings"
	"testing"
)

func TestColumnBCConstantPositionsFree(t *testing.T) {
	// Zero-padded numbers: the constant leading positions must cost almost
	// nothing (header only, no packed bits).
	var padded, dense []string
	for i := 0; i < 1024; i++ {
		padded = append(padded, fmt.Sprintf("%016d", i)) // 12+ constant '0' columns
		dense = append(dense, fmt.Sprintf("%04d", i))    // no constant columns
	}
	dp, _ := Build(ColumnBC, padded)
	dd, _ := Build(ColumnBC, dense)
	// The padded dictionary has 4x the characters but must cost well under
	// 4x the dense one.
	if dp.Bytes() > dd.Bytes()*2 {
		t.Errorf("constant columns not free: padded %d vs dense %d bytes", dp.Bytes(), dd.Bytes())
	}
	for i, want := range padded {
		if got := dp.Extract(uint32(i)); got != want {
			t.Fatalf("Extract(%d) = %q", i, got)
		}
	}
}

func TestColumnBCEmptyStringsInBlock(t *testing.T) {
	strs := []string{"", "a", "ab", "abc"}
	d, err := Build(ColumnBC, strs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range strs {
		if got := d.Extract(uint32(i)); got != want {
			t.Fatalf("Extract(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestColumnBCAllEmpty(t *testing.T) {
	d, err := Build(ColumnBC, []string{""})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Extract(0); got != "" {
		t.Fatalf("Extract(0) = %q", got)
	}
}

func TestColumnBCBlockBoundaryLengthChange(t *testing.T) {
	// Strings get much longer in the second block: per-block max length
	// must isolate the padding.
	var strs []string
	for i := 0; i < DefaultColumnBCBlockSize; i++ {
		strs = append(strs, fmt.Sprintf("a%03d", i))
	}
	for i := 0; i < DefaultColumnBCBlockSize; i++ {
		strs = append(strs, "b"+strings.Repeat("x", 50)+fmt.Sprintf("%03d", i))
	}
	d, err := Build(ColumnBC, strs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range strs {
		if got := d.Extract(uint32(i)); got != want {
			t.Fatalf("Extract(%d) mismatch", i)
		}
	}
}

func TestColumnBCBlockBytesMatchesBuilder(t *testing.T) {
	var strs []string
	for i := 0; i < 64; i++ {
		strs = append(strs, fmt.Sprintf("%08x", i*2654435761))
	}
	got := ColumnBCBlockBytes(strs)
	if got <= 0 {
		t.Fatalf("block bytes %d", got)
	}
	// Building a one-block dictionary: data size equals the helper.
	d := newColumnBC(strs, len(strs))
	if int(len(d.data)) != got {
		t.Fatalf("helper %d != builder %d", got, len(d.data))
	}
}

func TestColumnBCFullByteAlphabetColumn(t *testing.T) {
	// One character position covering all 256 byte values minus NUL.
	var strs []string
	for b := 1; b < 256; b++ {
		strs = append(strs, string([]byte{byte(b)}))
	}
	d, err := Build(ColumnBC, strs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range strs {
		if got := d.Extract(uint32(i)); got != want {
			t.Fatalf("Extract(%d) = %q, want %q", i, got, want)
		}
	}
}

package dict

import (
	"strings"
	"testing"
)

// TestWireIDStability pins every registered format's on-disk identity. Wire
// IDs are immutable once shipped: the built-ins must keep the values of the
// pre-registry format enum (or every old WAL, manifest and .sdic blob
// misdecodes), and the extensions must keep their assigned slots.
func TestWireIDStability(t *testing.T) {
	want := map[Format]uint16{
		Array:       0,
		ArrayBC:     1,
		ArrayHU:     2,
		ArrayNG2:    3,
		ArrayNG3:    4,
		ArrayRP12:   5,
		ArrayRP16:   6,
		ArrayFixed:  7,
		FCBlock:     8,
		FCBlockBC:   9,
		FCBlockDF:   10,
		FCBlockHU:   11,
		FCBlockNG2:  12,
		FCBlockNG3:  13,
		FCBlockRP12: 14,
		FCBlockRP16: 15,
		FCInline:    16,
		ColumnBC:    17,
		OnPair:      32,
		LZ78:        33,
	}
	if len(want) != NumFormats() {
		t.Fatalf("test covers %d formats, registry has %d", len(want), NumFormats())
	}
	for f, wire := range want {
		if got := f.WireID(); got != wire {
			t.Errorf("%v.WireID() = %d, want %d", f, got, wire)
		}
		back, ok := FormatByWireID(wire)
		if !ok || back != f {
			t.Errorf("FormatByWireID(%d) = (%v, %v), want %v", wire, back, ok, f)
		}
	}
	if _, ok := FormatByWireID(999); ok {
		t.Error("FormatByWireID accepted an unregistered wire ID")
	}
}

// TestRegistryEnumeration checks that the registry enumerates exactly the
// registered formats: dense indexes, unique normalized names, unique wire IDs.
func TestRegistryEnumeration(t *testing.T) {
	if NumFormats() != NumBuiltinFormats+2 {
		t.Fatalf("NumFormats() = %d, want %d", NumFormats(), NumBuiltinFormats+2)
	}
	all := AllFormats()
	if len(all) != NumFormats() {
		t.Fatalf("AllFormats() has %d entries, want %d", len(all), NumFormats())
	}
	names := make(map[string]bool)
	wires := make(map[uint16]bool)
	for i, f := range all {
		if int(f) != i {
			t.Errorf("AllFormats()[%d] = %v", i, f)
		}
		n := normalizeFormatName(f.String())
		if names[n] {
			t.Errorf("duplicate format name %q", n)
		}
		names[n] = true
		if wires[f.WireID()] {
			t.Errorf("duplicate wire ID %d", f.WireID())
		}
		wires[f.WireID()] = true
	}
}

// TestParseFormatRegistry exercises the registry-backed name parsing: exact
// names, case/whitespace normalization, typo suggestions, and the full
// listing for hopeless inputs.
func TestParseFormatRegistry(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Format
	}{
		{"onpair", OnPair},
		{"lz78", LZ78},
		{"FC  Block RP 16", FCBlockRP16},
		{" array \t bc ", ArrayBC},
	} {
		got, err := ParseFormat(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFormat(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
	}

	_, err := ParseFormat("fc blck rp 16")
	if err == nil || !strings.Contains(err.Error(), `did you mean "fc block rp 16"`) {
		t.Errorf("typo suggestion missing: %v", err)
	}
	_, err = ParseFormat("onpare")
	if err == nil || !strings.Contains(err.Error(), `did you mean "onpair"`) {
		t.Errorf("typo suggestion missing: %v", err)
	}
	_, err = ParseFormat("definitely-not-a-format")
	if err == nil || !strings.Contains(err.Error(), "registered formats:") ||
		!strings.Contains(err.Error(), "onpair") {
		t.Errorf("full listing missing: %v", err)
	}
}

// TestRegisterFormatValidation pins the registration-time panics that keep
// the registry consistent.
func TestRegisterFormatValidation(t *testing.T) {
	mustPanic := func(name string, info FormatInfo) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterFormat did not panic", name)
			}
		}()
		RegisterFormat(info)
	}
	ok := FormatInfo{
		Name:      "test-dup",
		WireID:    9999,
		Build:     func([]string, BuildOptions) Dictionary { return nil },
		Marshal:   func(*enc, Dictionary) error { return nil },
		Unmarshal: func(*dec) (Dictionary, error) { return nil, nil },
	}
	dupName := ok
	dupName.Name = "array"
	mustPanic("duplicate name", dupName)
	dupWire := ok
	dupWire.WireID = OnPair.WireID()
	mustPanic("duplicate wire ID", dupWire)
	noBuild := ok
	noBuild.Build = nil
	mustPanic("missing builder", noBuild)
	noCodec := ok
	noCodec.Marshal = nil
	mustPanic("missing marshal", noCodec)
}

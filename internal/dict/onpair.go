package dict

// The OnPair dictionary format: a greedy pair table in the style of
// arXiv 2508.02280. Build runs a fixed number of rounds; each round counts
// the frequency of every adjacent symbol pair across all strings, promotes
// the most frequent pairs to fresh symbols, and rewrites the strings with a
// single left-to-right replacement pass. The result is one flat, bit-packed
// symbol stream with a packed offset per string: extraction reads one
// contiguous symbol slice and expands each symbol through the pair table —
// no block to decode, no neighbour reconstruction — which keeps random
// access close to the plain array formats while the pair table absorbs the
// corpus's repeated bigrams, trigrams and short substrings.
//
// This file is the format's complete registration: representation, build,
// serialization, and the registry entry. Nothing outside this file (and the
// matching size-model registration in internal/model) knows OnPair exists.

import (
	"sort"

	"strdict/internal/bits"
)

const (
	// onpairWireID is OnPair's immutable on-disk identifier. Deliberately
	// not equal to the format's registry index: extensions start at 32,
	// clear of the built-ins' 0–17 block.
	onpairWireID = 32

	// OnPairMaxPairs caps the pair table. 4096 pairs keep every symbol
	// below 256+4096, so the packed stream never needs more than 13 bits
	// per symbol and the table itself stays a few KiB. Exported for the
	// size model's sampled-scaling clamp.
	OnPairMaxPairs = 4096

	// onpairRounds bounds the greedy promotion rounds. Each round can pair
	// up symbols produced by the previous one, so r rounds capture
	// substrings up to 2^r bytes.
	onpairRounds = 12

	// onpairMinFreq is the promotion threshold: a pair must occur at least
	// this often to earn a table slot, or the slot costs more than it saves.
	onpairMinFreq = 4
)

// OnPair is the pair-table dictionary format, registered as an extension.
var OnPair = RegisterFormat(FormatInfo{
	Name:   "onpair",
	WireID: onpairWireID,
	Scheme: SchemeNone,
	Build: func(strs []string, _ BuildOptions) Dictionary {
		return newOnPair(strs, OnPairMaxPairs)
	},
	Marshal:   marshalOnPair,
	Unmarshal: unmarshalOnPair,
})

// onpairDict stores every string as a slice of one flat symbol stream.
// Symbols below 256 are literal bytes; symbol 256+j expands to pair j.
type onpairDict struct {
	n       int
	pairs   []uint32          // pair j = left<<16 | right, both < 256+j
	syms    *bits.PackedArray // concatenated per-string symbol sequences
	offsets *bits.PackedArray // n+1 entries: string i = syms[offsets[i]:offsets[i+1]]
}

func newOnPair(strs []string, maxPairs int) *onpairDict {
	// Working form: one symbol slice per string, initially the raw bytes.
	seqs := make([][]uint32, len(strs))
	for i, s := range strs {
		seq := make([]uint32, len(s))
		for j := 0; j < len(s); j++ {
			seq[j] = uint32(s[j])
		}
		seqs[i] = seq
	}

	var pairs []uint32
	for round := 0; round < onpairRounds && len(pairs) < maxPairs; round++ {
		freq := make(map[uint32]int)
		for _, seq := range seqs {
			for j := 0; j+1 < len(seq); j++ {
				freq[seq[j]<<16|seq[j+1]]++
			}
		}
		type cand struct {
			key uint32
			f   int
		}
		cands := make([]cand, 0, len(freq))
		for k, f := range freq {
			if f >= onpairMinFreq {
				cands = append(cands, cand{k, f})
			}
		}
		if len(cands) == 0 {
			break
		}
		// Deterministic order: frequency descending, then key, so the build
		// is bit-identical run to run despite the map iteration above.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].f != cands[b].f {
				return cands[a].f > cands[b].f
			}
			return cands[a].key < cands[b].key
		})
		// Spread the table budget evenly over the remaining rounds instead of
		// letting an early flood of barely-frequent pairs exhaust it: deep
		// rounds are where long repeated substrings collapse, and reserving
		// slots for them both compresses better and keeps the build's
		// behaviour stable between a sample and the full column (which the
		// size model relies on).
		budget := (maxPairs - len(pairs)) / (onpairRounds - round)
		if budget < 1 {
			budget = 1
		}
		if len(cands) > budget {
			cands = cands[:budget]
		}
		selected := make(map[uint32]uint32, len(cands))
		for _, c := range cands {
			selected[c.key] = uint32(256 + len(pairs))
			pairs = append(pairs, c.key)
		}
		// One greedy left-to-right replacement pass per string. The write
		// index never passes the read index, so rewriting in place is safe.
		for i, seq := range seqs {
			out := seq[:0]
			for j := 0; j < len(seq); {
				if j+1 < len(seq) {
					if sym, ok := selected[seq[j]<<16|seq[j+1]]; ok {
						out = append(out, sym)
						j += 2
						continue
					}
				}
				out = append(out, seq[j])
				j++
			}
			seqs[i] = out
		}
	}

	var total int
	for _, seq := range seqs {
		total += len(seq)
	}
	flat := make([]uint64, total)
	offs := make([]uint64, len(strs)+1)
	pos := 0
	for i, seq := range seqs {
		offs[i] = uint64(pos)
		for _, sym := range seq {
			flat[pos] = uint64(sym)
			pos++
		}
	}
	offs[len(strs)] = uint64(pos)
	return &onpairDict{
		n:       len(strs),
		pairs:   pairs,
		syms:    bits.PackSlice(flat),
		offsets: bits.PackSlice(offs),
	}
}

// appendSymbol expands one symbol through the pair table. Iterative: follow
// left children, stack the rights. Terminates because pair j only references
// symbols below 256+j.
func (d *onpairDict) appendSymbol(dst []byte, stack []uint32, sym uint32) ([]byte, []uint32) {
	for {
		for sym >= 256 {
			p := d.pairs[sym-256]
			stack = append(stack, p&0xffff)
			sym = p >> 16
		}
		dst = append(dst, byte(sym))
		if len(stack) == 0 {
			return dst, stack
		}
		sym = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	}
}

func (d *onpairDict) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *onpairDict) AppendExtract(dst []byte, id uint32) []byte {
	lo := int(d.offsets.Get(int(id)))
	hi := int(d.offsets.Get(int(id) + 1))
	var stack []uint32
	for i := lo; i < hi; i++ {
		dst, stack = d.appendSymbol(dst, stack[:0], uint32(d.syms.Get(i)))
	}
	return dst
}

func (d *onpairDict) Locate(s string) (uint32, bool) {
	return locateByExtract(d, d.n, s)
}

func (d *onpairDict) Len() int       { return d.n }
func (d *onpairDict) Format() Format { return OnPair }

func (d *onpairDict) Bytes() uint64 {
	return 4*uint64(len(d.pairs)) + d.syms.Bytes() + d.offsets.Bytes() + arrayOverhead
}

func (d *onpairDict) ForEach(fn func(id uint32, value []byte) bool) {
	var buf []byte
	for id := 0; id < d.n; id++ {
		buf = d.AppendExtract(buf[:0], uint32(id))
		if !fn(uint32(id), buf) {
			return
		}
	}
}

// OnPairStats builds the pair table over strs and reports the components
// the size-prediction model needs: the number of pair-table entries, the
// total number of encoded symbols, and the packed bit width of the symbol
// stream. maxPairs <= 0 uses the real build's OnPairMaxPairs cap; the size
// model passes a reduced cap on partial samples so the table cannot overfit
// a small sample relative to its full-data budget. Sharing the real build
// makes the model exact on a full sample.
func OnPairStats(strs []string, maxPairs int) (pairs, symbols int, symWidth uint) {
	if maxPairs <= 0 || maxPairs > OnPairMaxPairs {
		maxPairs = OnPairMaxPairs
	}
	d := newOnPair(strs, maxPairs)
	return len(d.pairs), d.syms.Len(), d.syms.Width()
}

func marshalOnPair(e *enc, dict Dictionary) error {
	d, ok := dict.(*onpairDict)
	if !ok {
		return errWrongType(dict)
	}
	e.u64(uint64(d.n))
	e.u64(uint64(len(d.pairs)))
	for _, p := range d.pairs {
		e.u32(p)
	}
	e.packed(d.syms)
	e.packed(d.offsets)
	return nil
}

func unmarshalOnPair(d *dec) (Dictionary, error) {
	n := d.u64()
	npairs := d.u64()
	if d.err != nil || npairs > OnPairMaxPairs || n > 1<<40 {
		return nil, ErrCorrupt
	}
	pairs := make([]uint32, npairs)
	for j := range pairs {
		pairs[j] = d.u32()
	}
	syms := d.packed()
	offsets := d.packed()
	if d.err != nil {
		return nil, d.err
	}
	od := &onpairDict{n: int(n), pairs: pairs, syms: syms, offsets: offsets}
	if err := od.validate(); err != nil {
		return nil, err
	}
	return od, nil
}

// validate checks the structural invariants that make reads safe and
// guarantee expansion terminates: the offsets are monotonic and cover the
// symbol stream, every symbol is in range, and pair j only references
// symbols below its own 256+j.
func (d *onpairDict) validate() error {
	maxSym := uint64(256 + len(d.pairs))
	for j, p := range d.pairs {
		limit := uint32(256 + j)
		if p>>16 >= limit || p&0xffff >= limit {
			return ErrCorrupt
		}
	}
	if d.offsets.Len() != d.n+1 {
		return ErrCorrupt
	}
	prev := uint64(0)
	for i := 0; i <= d.n; i++ {
		v := d.offsets.Get(i)
		if v < prev || v > uint64(d.syms.Len()) {
			return ErrCorrupt
		}
		prev = v
	}
	if prev != uint64(d.syms.Len()) || (d.n > 0 && d.offsets.Get(0) != 0) {
		return ErrCorrupt
	}
	for i := 0; i < d.syms.Len(); i++ {
		if d.syms.Get(i) >= maxSym {
			return ErrCorrupt
		}
	}
	return nil
}

// Package dict implements compressed string dictionary formats behind a
// registry. The built-ins are the 18 formats surveyed in Section 3 of the
// paper: the array and front-coding dictionary classes combined with six
// string compression schemes (none, bit compression, Huffman/Hu-Tucker,
// 2-gram, 3-gram, Re-Pair 12/16 bit), plus the special-purpose variants
// inline front coding, front coding with difference-to-first, fixed-length
// array, and column-wise bit compression. Extension formats (onpair, lz78)
// register through the same seam; see registry.go.
//
// A dictionary is a read-only, order-preserving mapping between the sorted
// distinct strings of a column and dense integer value IDs (the string's
// rank). All formats support extracting a single string without
// decompressing neighbours, and locate by binary search.
//
// Input strings must be strictly ascending, unique, and free of NUL bytes
// (NUL is used as the raw-scheme terminator, as in the C++ implementation
// the paper describes).
package dict

import (
	"errors"
	"fmt"
	"strings"
)

// Format is the registry handle of a dictionary variant: a dense index into
// the format registry, assigned in registration order. It identifies a
// format within one process only; the persisted identifier is the format's
// WireID (see registry.go).
type Format int

// The formats of the paper's survey occupy the first NumBuiltinFormats
// registry slots, in this order.
const (
	Array Format = iota
	ArrayBC
	ArrayHU
	ArrayNG2
	ArrayNG3
	ArrayRP12
	ArrayRP16
	ArrayFixed
	FCBlock
	FCBlockBC
	FCBlockDF
	FCBlockHU
	FCBlockNG2
	FCBlockNG3
	FCBlockRP12
	FCBlockRP16
	FCInline
	ColumnBC

	// NumBuiltinFormats is the number of built-in dictionary variants from
	// the paper's survey. Registered extensions take indexes from here up;
	// NumFormats() counts all of them.
	NumBuiltinFormats int = iota
)

// String returns the format's registered name, e.g. "fc block rp 12".
func (f Format) String() string {
	if info, ok := formatInfo(f); ok {
		return info.Name
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat converts a format name back to its Format value. Matching is
// case- and whitespace-insensitive against the registered names; unknown
// names yield an error that lists the registry (and suggests the nearest
// name when one is close).
func ParseFormat(name string) (Format, error) {
	if f, ok := byName[normalizeFormatName(name)]; ok {
		return f, nil
	}
	if near := nearestFormatName(name); near != "" {
		return 0, fmt.Errorf("dict: unknown format %q (did you mean %q?)", name, near)
	}
	return 0, fmt.Errorf("dict: unknown format %q (registered formats: %s)",
		name, strings.Join(RegisteredNames(), ", "))
}

// nearestFormatName returns the registered name closest to the input, or ""
// when nothing is plausibly close.
func nearestFormatName(name string) string {
	norm := normalizeFormatName(name)
	best, bestDist := "", 3 // suggest only within edit distance 2
	for _, n := range RegisteredNames() {
		if d := editDistance(norm, normalizeFormatName(n)); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance; format names are short, so the
// quadratic DP is fine.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// AllFormats returns every registered format in registration order.
func AllFormats() []Format {
	out := make([]Format, NumFormats())
	for i := range out {
		out[i] = Format(i)
	}
	return out
}

// Scheme returns the string compression scheme a format applies
// (SchemeNone for formats with their own, self-contained coding).
func (f Format) Scheme() Scheme {
	if info, ok := formatInfo(f); ok {
		return info.Scheme
	}
	return SchemeNone
}

// IsFrontCoded reports whether the format belongs to the front-coding class.
func (f Format) IsFrontCoded() bool {
	if info, ok := formatInfo(f); ok {
		return info.FrontCoded
	}
	return false
}

// Dictionary is the read-only string dictionary of Definition 1.
type Dictionary interface {
	// Extract returns the string with the given value ID.
	// IDs out of range panic, mirroring slice indexing.
	Extract(id uint32) string

	// AppendExtract appends the string with the given value ID to dst and
	// returns the extended slice; it avoids allocation on the hot path.
	AppendExtract(dst []byte, id uint32) []byte

	// Locate returns the value ID of s if s is in the dictionary
	// (found == true), or the ID of the first string greater than s
	// (found == false; the ID equals Len() if every string is smaller).
	Locate(s string) (id uint32, found bool)

	// Len returns the number of strings.
	Len() int

	// Bytes returns the total in-memory size of the dictionary in bytes,
	// including codec tables and auxiliary arrays.
	Bytes() uint64

	// Format identifies the variant.
	Format() Format

	// ForEach visits every entry in value-ID order, passing a buffer that
	// is only valid during the callback. Returning false stops the walk.
	// Sequential access is much cheaper than repeated Extract calls for
	// the block-based formats (fc inline exists for exactly this pattern).
	ForEach(fn func(id uint32, value []byte) bool)
}

// DefaultFCBlockSize is the number of strings per front-coding block.
const DefaultFCBlockSize = 16

// DefaultColumnBCBlockSize is the number of strings per column-bc block.
const DefaultColumnBCBlockSize = 128

// ErrUnsorted is returned when the input is not strictly ascending.
var ErrUnsorted = errors.New("dict: input strings must be strictly ascending and unique")

// ErrNUL is returned when an input string contains a NUL byte.
var ErrNUL = errors.New("dict: input strings must not contain NUL bytes")

// Build constructs a dictionary of the given format over strs, which must be
// strictly ascending, unique and NUL-free.
func Build(f Format, strs []string) (Dictionary, error) {
	return BuildWithOptions(f, strs, BuildOptions{})
}

// BuildWithOptions is Build with construction tuning: opts.Parallelism > 1
// encodes independent parts (front-coding blocks, array entries) on a
// bounded worker pool. The resulting dictionary is bit-identical to the
// serial build.
func BuildWithOptions(f Format, strs []string, opts BuildOptions) (Dictionary, error) {
	if err := Validate(strs); err != nil {
		return nil, err
	}
	return build(f, strs, opts)
}

// BuildUnchecked is Build without input validation, for callers (such as the
// column-store merge) that construct sorted unique inputs by design.
func BuildUnchecked(f Format, strs []string) Dictionary {
	return BuildUncheckedWithOptions(f, strs, BuildOptions{})
}

// BuildUncheckedWithOptions is BuildWithOptions without input validation.
func BuildUncheckedWithOptions(f Format, strs []string, opts BuildOptions) Dictionary {
	d, err := build(f, strs, opts)
	if err != nil {
		panic(err) // build itself never fails on validated input
	}
	return d
}

func build(f Format, strs []string, opts BuildOptions) (Dictionary, error) {
	info, ok := formatInfo(f)
	if !ok {
		return nil, fmt.Errorf("dict: unknown format %d", int(f))
	}
	return info.Build(strs, opts), nil
}

// Validate checks the input contract of Build.
func Validate(strs []string) error {
	for i, s := range strs {
		if strings.IndexByte(s, 0) >= 0 {
			return ErrNUL
		}
		if i > 0 && strs[i-1] >= s {
			return ErrUnsorted
		}
	}
	return nil
}

// RawBytes returns the summed length of all strings, the numerator of the
// paper's dictionary compression rate (Definition 2).
func RawBytes(strs []string) uint64 {
	var n uint64
	for _, s := range strs {
		n += uint64(len(s))
	}
	return n
}

// CompressionRate computes the paper's Definition 2 for a built dictionary:
// the summed length of the stored strings divided by the dictionary size.
func CompressionRate(d Dictionary, strs []string) float64 {
	size := d.Bytes()
	if size == 0 {
		return 0
	}
	return float64(RawBytes(strs)) / float64(size)
}

// commonPrefixLen returns the length of the longest common prefix of a and
// b, capped at 255 so it fits the one-byte front-coding header slot.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n > 255 {
		n = 255
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// StructOverhead is the fixed per-dictionary footprint charged by Bytes()
// for struct and slice headers; size models add the same constant.
const StructOverhead = arrayOverhead

// CommonPrefixLen exposes the front-coding prefix computation (capped at 255
// to fit the one-byte header slot) for the size-prediction models.
func CommonPrefixLen(a, b string) int { return commonPrefixLen(a, b) }

// GenericLocate runs the extraction-based binary search on any dictionary,
// bypassing format-specific fast paths (such as the encoded-domain
// comparison of order-preserving array schemes). It exists so ablation
// benchmarks can quantify what the fast paths buy.
func GenericLocate(d Dictionary, s string) (uint32, bool) {
	return locateByExtract(d, d.Len(), s)
}

// ByteLocator is implemented by dictionary formats with a native byte-slice
// locate: the same Definition 1 semantics as Locate, without converting the
// probe to a string. The array and front-coding classes implement it
// allocation-free on their raw schemes.
type ByteLocator interface {
	LocateBytes(b []byte) (id uint32, found bool)
}

// LocateBytes is Locate with a byte-slice probe — the scan and
// dictionary-translation fast path, where probes arrive as reused []byte
// buffers and a string(buf) conversion per probe is pure allocator traffic.
// Formats implementing ByteLocator answer natively; the rest fall back to
// the extraction-based binary search, which compares bytes directly and
// never converts.
func LocateBytes(d Dictionary, b []byte) (uint32, bool) {
	if bl, ok := d.(ByteLocator); ok {
		return bl.LocateBytes(b)
	}
	return locateByExtract(d, d.Len(), b)
}

// BuildWithFCBlockSize builds a front-coding format with a non-default
// block size (the default is DefaultFCBlockSize). Used by the block-size
// ablation; non-front-coded formats return an error.
func BuildWithFCBlockSize(f Format, strs []string, blockSize int) (Dictionary, error) {
	if err := Validate(strs); err != nil {
		return nil, err
	}
	if blockSize < 2 {
		return nil, fmt.Errorf("dict: front-coding block size %d too small", blockSize)
	}
	info, ok := formatInfo(f)
	if !ok || info.BuildBlock == nil {
		return nil, fmt.Errorf("dict: %s is not a front-coding format", f)
	}
	return info.BuildBlock(strs, blockSize, BuildOptions{}), nil
}

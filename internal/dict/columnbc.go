package dict

import (
	"encoding/binary"

	"strdict/internal/bits"
)

// columnBC is the paper's Column-Wise Bit Compression: the dictionary is
// split into blocks, each block is vertically partitioned into character
// columns, and every character column is bit-compressed with its own tiny
// alphabet. Designed for columns whose strings all have the same length and
// a similar structure (dates, hashes, product codes); on variable-length
// data the per-block padding makes it larger than the raw strings, exactly
// as the paper observes.
//
// Block layout:
//
//	[k u16] [m u16]                      — strings in block, padded length
//	per character column j < m:
//	  [asize u16] [alphabet bytes]       — sorted distinct bytes (0 = padding)
//	  [packed k codes of width(asize-1)]
type columnBC struct {
	n         int
	blockSize int
	data      []byte
	blockPtrs *bits.PackedArray // nblocks+1
}

func newColumnBC(strs []string, blockSize int) *columnBC {
	n := len(strs)
	nblocks := (n + blockSize - 1) / blockSize
	d := &columnBC{n: n, blockSize: blockSize}
	blockOffs := make([]uint64, nblocks+1)

	var hdr [4]byte
	for b := 0; b < nblocks; b++ {
		blockOffs[b] = uint64(len(d.data))
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		k := hi - lo
		m := 0
		for i := lo; i < hi; i++ {
			if len(strs[i]) > m {
				m = len(strs[i])
			}
		}
		binary.LittleEndian.PutUint16(hdr[:2], uint16(k))
		binary.LittleEndian.PutUint16(hdr[2:], uint16(m))
		d.data = append(d.data, hdr[:4]...)

		for j := 0; j < m; j++ {
			var present [256]bool
			for i := lo; i < hi; i++ {
				present[charAt(strs[i], j)] = true
			}
			var alpha []byte
			var codeOf [256]uint16
			for c := 0; c < 256; c++ {
				if present[c] {
					codeOf[c] = uint16(len(alpha))
					alpha = append(alpha, byte(c))
				}
			}
			binary.LittleEndian.PutUint16(hdr[:2], uint16(len(alpha)))
			d.data = append(d.data, hdr[:2]...)
			d.data = append(d.data, alpha...)

			// A constant character column (every string has the same byte
			// at this position, common for zero-padded numbers, hash
			// prefixes and structured codes) needs no packed data at all.
			if len(alpha) == 1 {
				continue
			}
			width := bits.Width(uint64(len(alpha) - 1))
			var w bits.Writer
			for i := lo; i < hi; i++ {
				w.WriteBits(uint64(codeOf[charAt(strs[i], j)]), width)
			}
			w.Align()
			d.data = append(d.data, w.Bytes()...)
		}
	}
	blockOffs[nblocks] = uint64(len(d.data))
	d.blockPtrs = bits.PackSlice(blockOffs)
	return d
}

// charAt returns byte j of s, or 0 (the padding byte) past its end.
func charAt(s string, j int) byte {
	if j < len(s) {
		return s[j]
	}
	return 0
}

func (d *columnBC) Extract(id uint32) string {
	return string(d.AppendExtract(nil, id))
}

func (d *columnBC) AppendExtract(dst []byte, id uint32) []byte {
	if int(id) >= d.n {
		panic("dict: value ID out of range")
	}
	b := int(id) / d.blockSize
	i := int(id) % d.blockSize
	p := int(d.blockPtrs.Get(b))
	k := int(binary.LittleEndian.Uint16(d.data[p:]))
	m := int(binary.LittleEndian.Uint16(d.data[p+2:]))
	pos := p + 4
	for j := 0; j < m; j++ {
		asize := int(binary.LittleEndian.Uint16(d.data[pos:]))
		pos += 2
		alpha := d.data[pos : pos+asize]
		pos += asize
		var c byte
		if asize == 1 {
			c = alpha[0] // constant column: no packed data stored
		} else {
			width := bits.Width(uint64(asize - 1))
			packedBytes := (k*int(width) + 7) / 8
			r := bits.NewReaderAt(d.data[pos:pos+packedBytes], uint64(i)*uint64(width))
			code := r.ReadBits(width)
			if code >= uint64(asize) {
				return dst // corrupt packed data: terminate defensively
			}
			c = alpha[code]
			pos += packedBytes
		}
		if c == 0 {
			// Padding: this string ended. Remaining columns cannot contain
			// more of it (padding is strictly trailing), so stop.
			return dst
		}
		dst = append(dst, c)
	}
	return dst
}

func (d *columnBC) Locate(s string) (uint32, bool) {
	return locateByExtract(d, d.n, s)
}

func (d *columnBC) Len() int       { return d.n }
func (d *columnBC) Format() Format { return ColumnBC }

func (d *columnBC) Bytes() uint64 {
	return uint64(len(d.data)) + d.blockPtrs.Bytes() + arrayOverhead
}

// ColumnBCBlockBytes returns the exact encoded size of one column-bc block
// holding the given strings. The size-prediction models of the model package
// sample whole blocks and use this to extrapolate (Section 4.2 of the paper:
// "avg block size ... of sample of blocks").
func ColumnBCBlockBytes(strs []string) int {
	if len(strs) == 0 {
		return 4
	}
	d := newColumnBC(strs, len(strs))
	return int(uint64(len(d.data)))
}

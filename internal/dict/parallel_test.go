package dict

import (
	"bytes"
	"fmt"
	"testing"
)

// parallelTestStrings generates a sorted unique corpus large enough to clear
// the minParallelParts floor, with shared prefixes (so front coding has work
// to do) and a skewed alphabet (so the trained codecs are non-trivial).
func parallelTestStrings(n int) []string {
	strs := make([]string, n)
	for i := range strs {
		strs[i] = fmt.Sprintf("warehouse/bin-%06d/item-%08x", i, uint32(i)*2654435761)
	}
	return strs
}

// TestBuildWithOptionsBitIdentical asserts the tentpole invariant of the
// parallel build path: for every format, a build with a worker pool yields
// byte-for-byte the same serialized dictionary as the serial build.
func TestBuildWithOptionsBitIdentical(t *testing.T) {
	strs := parallelTestStrings(3 * minParallelParts)
	for _, f := range AllFormats() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			serial := BuildUnchecked(f, strs)
			parallel := BuildUncheckedWithOptions(f, strs, BuildOptions{Parallelism: 8})

			if sb, pb := serial.Bytes(), parallel.Bytes(); sb != pb {
				t.Fatalf("Bytes(): serial %d, parallel %d", sb, pb)
			}
			sm, err := Marshal(serial)
			if err != nil {
				t.Fatalf("marshal serial: %v", err)
			}
			pm, err := Marshal(parallel)
			if err != nil {
				t.Fatalf("marshal parallel: %v", err)
			}
			if !bytes.Equal(sm, pm) {
				t.Fatalf("serialized forms differ: %d vs %d bytes", len(sm), len(pm))
			}
			// Spot-check behaviour too, in case Marshal omits runtime state.
			for _, i := range []int{0, 1, len(strs) / 2, len(strs) - 1} {
				if got := parallel.Extract(uint32(i)); got != strs[i] {
					t.Fatalf("Extract(%d) = %q, want %q", i, got, strs[i])
				}
				if id, ok := parallel.Locate(strs[i]); !ok || id != uint32(i) {
					t.Fatalf("Locate(%q) = %d,%v", strs[i], id, ok)
				}
			}
		})
	}
}

// TestBuildWithOptionsSmallInput exercises the serial fallback below the
// size floor and degenerate inputs under a requested worker pool.
func TestBuildWithOptionsSmallInput(t *testing.T) {
	for _, strs := range [][]string{nil, {"only"}, {"a", "b", "c"}} {
		for _, f := range AllFormats() {
			d := BuildUncheckedWithOptions(f, strs, BuildOptions{Parallelism: 8})
			if d.Len() != len(strs) {
				t.Fatalf("%s: Len %d, want %d", f, d.Len(), len(strs))
			}
			for i, s := range strs {
				if got := d.Extract(uint32(i)); got != s {
					t.Fatalf("%s: Extract(%d) = %q, want %q", f, i, got, s)
				}
			}
		}
	}
}

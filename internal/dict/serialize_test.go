package dict

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestMarshalRoundTripAllFormats(t *testing.T) {
	for name, strs := range testCorpora() {
		for _, f := range AllFormats() {
			t.Run(fmt.Sprintf("%s/%s", f, name), func(t *testing.T) {
				orig, err := Build(f, strs)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := Marshal(orig)
				if err != nil {
					t.Fatalf("Marshal: %v", err)
				}
				restored, err := Unmarshal(blob)
				if err != nil {
					t.Fatalf("Unmarshal: %v", err)
				}
				if restored.Format() != f || restored.Len() != orig.Len() {
					t.Fatalf("header mismatch: %s/%d", restored.Format(), restored.Len())
				}
				for i, want := range strs {
					if got := restored.Extract(uint32(i)); got != want {
						t.Fatalf("Extract(%d) = %q, want %q", i, got, want)
					}
					if id, found := restored.Locate(want); !found || id != uint32(i) {
						t.Fatalf("Locate(%q) = (%d,%v)", want, id, found)
					}
				}
			})
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	strs := []string{"aaa", "bbb", "ccc", "ddd"}
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		a, _ := Marshal(d)
		b, _ := Marshal(d)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: non-deterministic serialization", f)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("not a dictionary at all"),
		{'S', 'D', 'I', 'C'},         // truncated after magic
		{'S', 'D', 'I', 'C', 99, 0},  // bad version
		{'S', 'D', 'I', 'C', 1, 250}, // bad format
		append([]byte{'S', 'D', 'I', 'C', 1, 0}, bytes.Repeat([]byte{0xff}, 8)...),
	}
	for i, blob := range cases {
		if _, err := Unmarshal(blob); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnmarshalRejectsTruncations(t *testing.T) {
	strs := []string{"alpha", "beta", "delta", "epsilon", "gamma"}
	for _, f := range []Format{Array, ArrayBC, ArrayHU, ArrayRP12, FCBlock, FCBlockDF, FCInline, ColumnBC, ArrayFixed} {
		d, _ := Build(f, strs)
		blob, _ := Marshal(d)
		for cut := 0; cut < len(blob); cut += 3 {
			if _, err := Unmarshal(blob[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", f, cut)
			}
		}
	}
}

func TestUnmarshalRejectsBitFlips(t *testing.T) {
	// Every single-byte corruption must either fail validation or produce a
	// dictionary whose reads do not panic. (Silent value changes are
	// acceptable — there is no checksum — but memory safety is guaranteed.)
	strs := []string{"five", "four", "one", "six", "three", "two"}
	rng := rand.New(rand.NewSource(3))
	for _, f := range []Format{Array, ArrayHU, FCBlock, FCBlockDF, ColumnBC} {
		d, _ := Build(f, strs)
		blob, _ := Marshal(d)
		for trial := 0; trial < 300; trial++ {
			corrupted := append([]byte(nil), blob...)
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 << rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s trial %d: panic on corrupted input: %v", f, trial, r)
					}
				}()
				rd, err := Unmarshal(corrupted)
				if err != nil {
					return
				}
				// Reads must stay in bounds even if values changed.
				for i := 0; i < rd.Len(); i++ {
					rd.Extract(uint32(i))
				}
				rd.Locate("three")
			}()
		}
	}
}

func TestUnmarshalAcceptsVersion1(t *testing.T) {
	// Version-1 blobs are version-2 blobs without the CRC footer and with a
	// different version byte; derive one and check it still loads.
	strs := []string{"alpha", "beta", "delta", "epsilon", "gamma"}
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		blob, err := Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		v1 := append([]byte(nil), blob[:len(blob)-4]...)
		v1[4] = 1
		restored, err := Unmarshal(v1)
		if err != nil {
			t.Fatalf("%s: version-1 blob rejected: %v", f, err)
		}
		for i, want := range strs {
			if got := restored.Extract(uint32(i)); got != want {
				t.Fatalf("%s: Extract(%d) = %q, want %q", f, i, got, want)
			}
		}
	}
}

func TestUnmarshalRejectsBadFooter(t *testing.T) {
	strs := []string{"five", "four", "one", "six", "three", "two"}
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		blob, _ := Marshal(d)
		if blob[4] != serialVersion {
			t.Fatalf("%s: marshal wrote version %d, want %d", f, blob[4], serialVersion)
		}
		// Any payload or footer corruption must fail the checksum.
		for _, pos := range []int{6, len(blob) / 2, len(blob) - 1} {
			corrupted := append([]byte(nil), blob...)
			corrupted[pos] ^= 0xff
			if _, err := Unmarshal(corrupted); err == nil {
				t.Errorf("%s: corruption at byte %d accepted", f, pos)
			}
		}
		// Footer stripped entirely.
		if _, err := Unmarshal(blob[:len(blob)-4]); err == nil {
			t.Errorf("%s: missing footer accepted", f)
		}
	}
}

func TestMarshalSizeReasonable(t *testing.T) {
	// The serialized form should be close to the in-memory footprint (it is
	// the same data plus small headers).
	var strs []string
	for i := 0; i < 5000; i++ {
		strs = append(strs, fmt.Sprintf("entry-%08d", i))
	}
	for _, f := range AllFormats() {
		d, _ := Build(f, strs)
		blob, err := Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(blob)) > 2*d.Bytes()+1024 {
			t.Errorf("%s: %d serialized bytes for %d in-memory bytes", f, len(blob), d.Bytes())
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	var strs []string
	for i := 0; i < 20000; i++ {
		strs = append(strs, fmt.Sprintf("part-%08d", i))
	}
	for _, f := range []Format{Array, FCBlock, FCBlockRP12} {
		d, _ := Build(f, strs)
		blob, _ := Marshal(d)
		b.Run(f.String(), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			for i := 0; i < b.N; i++ {
				if _, err := Unmarshal(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package dict

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// fcFormats lists every front-coding variant.
func fcFormats() []Format {
	var out []Format
	for _, f := range AllFormats() {
		if f.IsFrontCoded() {
			out = append(out, f)
		}
	}
	return out
}

func TestFCBlockSizesRoundTrip(t *testing.T) {
	var strs []string
	for i := 0; i < 500; i++ {
		strs = append(strs, fmt.Sprintf("/var/log/app/%04d/part-%02d.log", i/10, i%10))
	}
	strs = sortedUnique(strs)
	for _, f := range fcFormats() {
		for _, bs := range []int{2, 3, 8, 16, 64, 1000} {
			d, err := BuildWithFCBlockSize(f, strs, bs)
			if err != nil {
				t.Fatalf("%s bs=%d: %v", f, bs, err)
			}
			for i, want := range strs {
				if got := d.Extract(uint32(i)); got != want {
					t.Fatalf("%s bs=%d: Extract(%d) = %q want %q", f, bs, i, got, want)
				}
			}
			for _, probe := range []string{strs[0], strs[len(strs)/2], strs[len(strs)-1], "zzz", ""} {
				id, found := d.Locate(probe)
				wantID, wantFound := referenceLocate(strs, probe)
				if id != wantID || found != wantFound {
					t.Fatalf("%s bs=%d: Locate(%q) = (%d,%v) want (%d,%v)",
						f, bs, probe, id, found, wantID, wantFound)
				}
			}
		}
	}
}

func referenceLocate(strs []string, probe string) (uint32, bool) {
	for i, s := range strs {
		if s == probe {
			return uint32(i), true
		}
		if s > probe {
			return uint32(i), false
		}
	}
	return uint32(len(strs)), false
}

func TestFCBlockSizeTradeoff(t *testing.T) {
	// Bigger blocks must compress at least as well (fewer block pointers
	// and headers, more shared prefixes) on a prefix-heavy corpus.
	var strs []string
	for i := 0; i < 4096; i++ {
		strs = append(strs, fmt.Sprintf("https://example.com/catalog/item/%08d", i))
	}
	small, err := BuildWithFCBlockSize(FCBlock, strs, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildWithFCBlockSize(FCBlock, strs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big.Bytes() >= small.Bytes() {
		t.Errorf("block 64 (%d bytes) not smaller than block 4 (%d bytes)",
			big.Bytes(), small.Bytes())
	}
}

func TestFCRejectsBadBlockSize(t *testing.T) {
	if _, err := BuildWithFCBlockSize(FCBlock, []string{"a"}, 1); err == nil {
		t.Fatal("accepted block size 1")
	}
	if _, err := BuildWithFCBlockSize(Array, []string{"a"}, 8); err == nil {
		t.Fatal("accepted non-front-coded format")
	}
}

func TestFCModesAgree(t *testing.T) {
	// All three layouts are different encodings of the same mapping.
	rng := rand.New(rand.NewSource(17))
	var strs []string
	for i := 0; i < 300; i++ {
		strs = append(strs, fmt.Sprintf("%s-%06d", []string{"inv", "ord", "cust"}[rng.Intn(3)], rng.Intn(100000)))
	}
	strs = sortedUnique(strs)
	prev, _ := Build(FCBlock, strs)
	df, _ := Build(FCBlockDF, strs)
	inline, _ := Build(FCInline, strs)
	for i := range strs {
		a, b, c := prev.Extract(uint32(i)), df.Extract(uint32(i)), inline.Extract(uint32(i))
		if a != b || b != c {
			t.Fatalf("modes disagree at %d: %q / %q / %q", i, a, b, c)
		}
	}
	// df trades space for speed: it may not be smaller than fc block.
	if df.Bytes() < prev.Bytes()/2 {
		t.Errorf("fc block df (%d) suspiciously smaller than fc block (%d)", df.Bytes(), prev.Bytes())
	}
}

func TestFCLastBlockPartial(t *testing.T) {
	// n = k*blockSize + 1 leaves a one-string final block.
	var strs []string
	for i := 0; i < DefaultFCBlockSize*2+1; i++ {
		strs = append(strs, fmt.Sprintf("x%04d", i))
	}
	for _, f := range fcFormats() {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		last := uint32(len(strs) - 1)
		if got := d.Extract(last); got != strs[last] {
			t.Fatalf("%s: last-block extract %q", f, got)
		}
		if id, found := d.Locate(strs[last]); !found || id != last {
			t.Fatalf("%s: last-block locate (%d,%v)", f, id, found)
		}
	}
}

func TestFCVeryLongStrings(t *testing.T) {
	// Strings far longer than the 255-byte prefix cap, shared prefixes
	// crossing the cap, and a suffix of several KiB.
	base := strings.Repeat("abcdefgh", 100) // 800 bytes
	strs := []string{
		base + strings.Repeat("x", 4000),
		base + strings.Repeat("y", 2000),
		base + strings.Repeat("z", 1000) + "1",
		base + strings.Repeat("z", 1000) + "2",
	}
	for _, f := range fcFormats() {
		d, err := Build(f, strs)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range strs {
			if got := d.Extract(uint32(i)); got != want {
				t.Fatalf("%s: long string %d mismatch (len %d vs %d)", f, i, len(got), len(want))
			}
		}
	}
}

func TestFCSingleStringPerBlock(t *testing.T) {
	// blockSize 2 with 1 string: a single block holding only the first.
	d, err := BuildWithFCBlockSize(FCBlockDF, []string{"solo"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Extract(0) != "solo" {
		t.Fatal("single-string df block")
	}
}

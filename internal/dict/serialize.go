package dict

// Binary serialization of dictionaries. In the architecture the paper
// targets, the read-optimized store is periodically persisted; dictionaries
// are immutable between merges, so a flat, mmap-friendly binary form is the
// natural fit. The layout is versioned and all inputs are validated on
// load, so Unmarshal is safe on untrusted bytes.
//
// Layout (little-endian):
//
//	magic   [4]byte "SDIC"
//	version u8 (currently 3)
//	format  uvarint wire ID (version 3; a single u8 in versions 1 and 2)
//	payload format-specific sections (each format's registry descriptor)
//	crc     u32 CRC32C over everything before it (version >= 2)
//
// Version 2 added the footer checksum so corrupt dictionary bytes fail fast
// with ErrCorrupt instead of relying on structural validation alone.
// Version 3 replaced the single-byte format enum with the registry's
// unsigned-varint wire ID, lifting the 256-format ceiling; built-in formats
// keep wire IDs 0–17 (one varint byte, identical to the old enum values), so
// version-1 and version-2 blobs decode through the same wire table.
// Unmarshal accepts all three versions; unknown wire IDs are ErrCorrupt.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"strdict/internal/bitcomp"
	"strdict/internal/bits"
	"strdict/internal/huffman"
	"strdict/internal/hutucker"
	"strdict/internal/ngram"
	"strdict/internal/repair"
)

var magic = [4]byte{'S', 'D', 'I', 'C'}

const serialVersion = 3

// crcTable is the Castagnoli polynomial (CRC32C) — hardware-accelerated on
// amd64/arm64, and the same polynomial the persist subsystem uses for WAL
// records and checkpoint footers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when serialized bytes fail validation.
var ErrCorrupt = errors.New("dict: corrupt serialized dictionary")

// enc is a tiny append-only binary writer.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) packed(p *bits.PackedArray) {
	e.buf = p.AppendBinary(e.buf)
}

func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// dec is the matching reader; all methods keep err sticky.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) packed() *bits.PackedArray {
	if d.err != nil {
		return nil
	}
	p, n, err := bits.UnmarshalPackedArray(d.buf[d.off:])
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	d.off += n
	return p
}

// Marshal serializes a dictionary built by this package, dispatching the
// payload to the format's registered serializer.
func Marshal(dict Dictionary) ([]byte, error) {
	info, ok := formatInfo(dict.Format())
	if !ok {
		return nil, fmt.Errorf("dict: cannot marshal unregistered format %d", int(dict.Format()))
	}
	e := &enc{}
	e.buf = append(e.buf, magic[:]...)
	e.u8(serialVersion)
	e.uvarint(uint64(info.WireID))
	if err := info.Marshal(e, dict); err != nil {
		return nil, err
	}
	e.u32(crc32.Checksum(e.buf, crcTable))
	return e.buf, nil
}

// Per-class payload serializers, referenced by the built-in registry
// descriptors.

// errWrongType reports a dictionary handed to a serializer for a format it
// was not built by — a registration bug, not corrupt input.
func errWrongType(dict Dictionary) error {
	return fmt.Errorf("dict: cannot marshal %T as %s", dict, dict.Format())
}

func marshalArray(e *enc, dict Dictionary) error {
	d, ok := dict.(*arrayDict)
	if !ok {
		return errWrongType(dict)
	}
	e.u64(uint64(d.n))
	e.bytes(d.data)
	e.packed(d.offsets)
	return marshalCodec(e, d.c)
}

func marshalArrayFixed(e *enc, dict Dictionary) error {
	d, ok := dict.(*arrayFixed)
	if !ok {
		return fmt.Errorf("dict: cannot marshal %T as %s", dict, dict.Format())
	}
	e.u64(uint64(d.n))
	e.u64(uint64(d.slot))
	e.bytes(d.data)
	return nil
}

func marshalFC(e *enc, dict Dictionary) error {
	d, ok := dict.(*fcDict)
	if !ok {
		return fmt.Errorf("dict: cannot marshal %T as %s", dict, dict.Format())
	}
	e.u64(uint64(d.n))
	e.u32(uint32(d.blockSize))
	e.bytes(d.data)
	e.packed(d.blockPtrs)
	return marshalCodec(e, d.c)
}

func marshalColumnBC(e *enc, dict Dictionary) error {
	d, ok := dict.(*columnBC)
	if !ok {
		return fmt.Errorf("dict: cannot marshal %T as %s", dict, dict.Format())
	}
	e.u64(uint64(d.n))
	e.u32(uint32(d.blockSize))
	e.bytes(d.data)
	e.packed(d.blockPtrs)
	return nil
}

func marshalCodec(e *enc, c codec) error {
	switch cc := c.(type) {
	case rawCodec:
		// nothing
	case bcCodec:
		e.bytes(cc.c.Alphabet())
	case huTuckerCodec:
		e.bytes(cc.c.CodeLengths())
	case huffmanCodec:
		e.bytes(cc.c.CodeLengths())
	case ngramCodec:
		e.u8(uint8(cc.c.N()))
		grams := cc.c.Grams()
		e.u32(uint32(len(grams)))
		for _, g := range grams {
			e.bytes([]byte(g))
		}
	case repairCodec:
		e.u8(uint8(cc.g.SymbolBits()))
		rules := cc.g.Rules()
		e.u32(uint32(len(rules)))
		for _, r := range rules {
			e.u32(uint32(r.Left))
			e.u32(uint32(r.Right))
		}
	default:
		return fmt.Errorf("dict: cannot marshal codec %T", c)
	}
	return nil
}

// unmarshalCodec mirrors marshalCodec; orderPreserving selects Hu-Tucker
// over Huffman for SchemeHU, matching buildCodec.
func unmarshalCodec(d *dec, s Scheme, orderPreserving bool) (codec, error) {
	switch s {
	case SchemeNone:
		return rawCodec{}, nil
	case SchemeBC:
		alpha := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		c, err := bitcomp.FromAlphabet(alpha)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return bcCodec{c}, nil
	case SchemeHU:
		lens := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		if orderPreserving {
			c, err := hutucker.FromCodeLengths(append([]uint8(nil), lens...))
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			return huTuckerCodec{c}, nil
		}
		c, err := huffman.FromCodeLengths(append([]uint8(nil), lens...))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return huffmanCodec{c}, nil
	case SchemeNG2, SchemeNG3:
		n := int(d.u8())
		count := int(d.u32())
		if d.err != nil || count < 0 || count > ngram.MaxGrams {
			return nil, ErrCorrupt
		}
		grams := make([]string, 0, count)
		for i := 0; i < count; i++ {
			grams = append(grams, string(d.bytes()))
		}
		if d.err != nil {
			return nil, d.err
		}
		c, err := ngram.FromGrams(n, grams)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return ngramCodec{c}, nil
	case SchemeRP12, SchemeRP16:
		width := uint(d.u8())
		count := int(d.u32())
		if d.err != nil || width > 16 || count < 0 || count > repair.MaxRules(16) {
			return nil, ErrCorrupt
		}
		rules := make([]repair.Rule, 0, count)
		for i := 0; i < count; i++ {
			l := int32(d.u32())
			r := int32(d.u32())
			rules = append(rules, repair.Rule{Left: l, Right: r})
		}
		if d.err != nil {
			return nil, d.err
		}
		g, err := repair.FromRules(width, rules)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return repairCodec{g}, nil
	default:
		return nil, ErrCorrupt
	}
}

// Unmarshal reconstructs a dictionary serialized by Marshal, validating the
// structural invariants (monotonic offsets, block geometry) so that reads
// on the result cannot index out of bounds. It accepts all serialization
// versions; the wire ID is resolved through the format registry, so blobs
// written before the registry existed (single-byte format enum, equal to
// the built-ins' wire IDs) load unchanged.
func Unmarshal(data []byte) (Dictionary, error) {
	var m [4]byte
	copy(m[:], data)
	if len(data) < 6 || m != magic {
		return nil, ErrCorrupt
	}
	version := data[4]
	switch version {
	case 1:
		// Legacy blobs carry no footer; structural validation only.
	case 2, 3:
		// Verify the CRC32C footer before touching the payload, so corrupt
		// bytes fail fast instead of decoding garbage.
		if len(data) < 10 {
			return nil, ErrCorrupt
		}
		body := data[:len(data)-4]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if crc32.Checksum(body, crcTable) != want {
			return nil, ErrCorrupt
		}
		data = body
	default:
		return nil, fmt.Errorf("dict: unsupported serialization version %d", version)
	}
	d := &dec{buf: data, off: 5}
	var wire uint16
	if version < 3 {
		wire = uint16(d.u8())
	} else {
		w := d.uvarint()
		if d.err != nil || w > 1<<16-1 {
			return nil, ErrCorrupt
		}
		wire = uint16(w)
	}
	f, ok := FormatByWireID(wire)
	if !ok {
		return nil, ErrCorrupt
	}
	info, _ := formatInfo(f)
	return info.Unmarshal(d)
}

// Per-class payload deserializers. Each parses the sections its marshal
// counterpart wrote and validates the structural invariants.

func unmarshalArray(d *dec, f Format, sc Scheme) (Dictionary, error) {
	n := d.u64()
	payload := d.bytes()
	offsets := d.packed()
	if d.err != nil {
		return nil, d.err
	}
	c, err := unmarshalCodec(d, sc, true)
	if err != nil {
		return nil, err
	}
	ad := &arrayDict{format: f, n: int(n), data: payload, offsets: offsets, c: c}
	if err := ad.validate(); err != nil {
		return nil, err
	}
	return ad, nil
}

func unmarshalArrayFixed(d *dec) (Dictionary, error) {
	n := d.u64()
	slot := d.u64()
	payload := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	// Bound both factors before multiplying so the product cannot wrap.
	if n > 1<<40 || slot > 1<<30 {
		return nil, ErrCorrupt
	}
	if slot == 0 {
		// A zero slot means every string is empty; unique input allows
		// at most one such string.
		if n > 1 || len(payload) != 0 {
			return nil, ErrCorrupt
		}
	} else if n*slot != uint64(len(payload)) {
		return nil, ErrCorrupt
	}
	return &arrayFixed{n: int(n), slot: int(slot), data: payload}, nil
}

func unmarshalFC(d *dec, f Format, sc Scheme, mode fcMode) (Dictionary, error) {
	n := d.u64()
	blockSize := d.u32()
	payload := d.bytes()
	ptrs := d.packed()
	if d.err != nil {
		return nil, d.err
	}
	c, err := unmarshalCodec(d, sc, false)
	if err != nil {
		return nil, err
	}
	fd := &fcDict{
		format: f, mode: mode, blockSize: int(blockSize),
		n: int(n), data: payload, blockPtrs: ptrs, c: c,
	}
	if err := fd.validate(); err != nil {
		return nil, err
	}
	return fd, nil
}

func unmarshalColumnBC(d *dec) (Dictionary, error) {
	n := d.u64()
	blockSize := d.u32()
	payload := d.bytes()
	ptrs := d.packed()
	if d.err != nil {
		return nil, d.err
	}
	cbc := &columnBC{n: int(n), blockSize: int(blockSize), data: payload, blockPtrs: ptrs}
	if err := cbc.validate(); err != nil {
		return nil, err
	}
	return cbc, nil
}

// validate checks arrayDict structural invariants after deserialization.
func (d *arrayDict) validate() error {
	if d.n < 0 || d.offsets.Len() != d.n+1 {
		return ErrCorrupt
	}
	prev := uint64(0)
	for i := 0; i <= d.n; i++ {
		off := d.offsets.Get(i)
		if off < prev || off > uint64(len(d.data)) {
			return ErrCorrupt
		}
		prev = off
	}
	return nil
}

// validate checks fcDict structural invariants after deserialization.
func (d *fcDict) validate() error {
	if d.n < 0 || d.blockSize < 2 {
		return ErrCorrupt
	}
	nblocks := (d.n + d.blockSize - 1) / d.blockSize
	if d.blockPtrs.Len() != nblocks+1 {
		return ErrCorrupt
	}
	prev := uint64(0)
	for i := 0; i <= nblocks; i++ {
		off := d.blockPtrs.Get(i)
		if off < prev || off > uint64(len(d.data)) {
			return ErrCorrupt
		}
		prev = off
	}
	// Headers of every block must fit in the block's byte range.
	for b := 0; b < nblocks; b++ {
		lo, hi := d.blockBounds(b)
		k := hi - lo
		var header int
		switch d.mode {
		case fcModePrev:
			header = k - 1
		case fcModeFirst:
			header = 4 + 5*(k-1)
		default:
			header = 0
		}
		if uint64(header) > d.blockPtrs.Get(b+1)-d.blockPtrs.Get(b) {
			return ErrCorrupt
		}
		if d.mode == fcModeFirst && k >= 1 {
			p := int(d.blockPtrs.Get(b))
			if p+4 > len(d.data) {
				return ErrCorrupt
			}
			firstLen := int(binary.LittleEndian.Uint32(d.data[p:]))
			if firstLen < 0 || p+4+(k-1)*5+firstLen > len(d.data) {
				return ErrCorrupt
			}
		}
	}
	return nil
}

// validate checks columnBC structural invariants after deserialization.
func (d *columnBC) validate() error {
	if d.n < 0 || d.blockSize < 1 {
		return ErrCorrupt
	}
	nblocks := (d.n + d.blockSize - 1) / d.blockSize
	if d.blockPtrs.Len() != nblocks+1 {
		return ErrCorrupt
	}
	// Walk every block's column headers, verifying that all packed areas
	// stay inside the data and the advertised geometry matches.
	for b := 0; b < nblocks; b++ {
		p := int(d.blockPtrs.Get(b))
		end := int(d.blockPtrs.Get(b + 1))
		if p+4 > len(d.data) || end > len(d.data) || end < p {
			return ErrCorrupt
		}
		k := int(binary.LittleEndian.Uint16(d.data[p:]))
		m := int(binary.LittleEndian.Uint16(d.data[p+2:]))
		lo := b * d.blockSize
		hi := lo + d.blockSize
		if hi > d.n {
			hi = d.n
		}
		if k != hi-lo {
			return ErrCorrupt
		}
		pos := p + 4
		for j := 0; j < m; j++ {
			if pos+2 > end {
				return ErrCorrupt
			}
			asize := int(binary.LittleEndian.Uint16(d.data[pos:]))
			if asize < 1 || asize > 256 {
				return ErrCorrupt
			}
			pos += 2 + asize
			if asize > 1 {
				width := bits.Width(uint64(asize - 1))
				pos += (k*int(width) + 7) / 8
			}
			if pos > end {
				return ErrCorrupt
			}
		}
	}
	return nil
}

package dict

import (
	"fmt"
	"testing"
)

// locateBytesCorpus is a value set that exercises shared prefixes (front
// coding), a skewed character distribution (huffman/n-gram tables) and mixed
// lengths, plus the probes that must miss: below the first value, between
// values, above the last.
func locateBytesCorpus() (values, misses []string) {
	for i := 0; i < 200; i++ {
		values = append(values, fmt.Sprintf("key-%04d", i*3))
	}
	values = append(values, "key-9999", "zeta", "zeta-longer-suffix")
	sortStrings(values)
	misses = []string{"", "aaa", "key-", "key-0001", "key-0598", "key-99990", "zz", "zeta-longer-suffix!"}
	return values, misses
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestLocateBytesMatchesLocate: for every registered format, the byte-slice
// probe path must return exactly what the string path returns — same ID,
// same found flag — on hits and on all three classes of miss.
func TestLocateBytesMatchesLocate(t *testing.T) {
	values, misses := locateBytesCorpus()
	for _, f := range AllFormats() {
		t.Run(f.String(), func(t *testing.T) {
			d, err := Build(f, values)
			if err != nil {
				t.Fatal(err)
			}
			check := func(probe string) {
				t.Helper()
				wantID, wantFound := d.Locate(probe)
				gotID, gotFound := LocateBytes(d, []byte(probe))
				if gotID != wantID || gotFound != wantFound {
					t.Fatalf("LocateBytes(%q) = (%d, %v), Locate = (%d, %v)",
						probe, gotID, gotFound, wantID, wantFound)
				}
			}
			for _, v := range values {
				check(v)
			}
			for _, m := range misses {
				check(m)
			}
		})
	}
}

// TestLocateBytesZeroAlloc: the raw-scheme array formats answer byte-slice
// probes by comparing the stored bytes in place, without allocating — the
// property TranslateCodes' inner loop depends on. (Front-coding formats
// still need a small decode buffer per probe.)
func TestLocateBytesZeroAlloc(t *testing.T) {
	values, _ := locateBytesCorpus()
	for _, f := range []Format{Array, ArrayFixed} {
		t.Run(f.String(), func(t *testing.T) {
			d, err := Build(f, values)
			if err != nil {
				t.Fatal(err)
			}
			bl, ok := d.(ByteLocator)
			if !ok {
				t.Fatalf("%s does not implement ByteLocator", f)
			}
			hit := []byte(values[len(values)/2])
			miss := []byte("key-0001")
			allocs := testing.AllocsPerRun(100, func() {
				if _, found := bl.LocateBytes(hit); !found {
					t.Fatal("hit probe not found")
				}
				bl.LocateBytes(miss)
			})
			if allocs != 0 {
				t.Fatalf("LocateBytes allocates %.1f per probe pair, want 0", allocs)
			}
		})
	}
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/model"
)

func advisorStats(t *testing.T) ColumnStats {
	t.Helper()
	strs := datagen.Generate("url", 4000, 1)
	return ColumnStats{
		Name:       "t.url",
		NumStrings: uint64(len(strs)),
		Extracts:   50000,
		Locates:    500,
		LifetimeNs: 1e12,
		Sample:     model.TakeSample(strs, 1.0, 1),
	}
}

func TestAdvisePareto(t *testing.T) {
	adv := Advise(advisorStats(t), model.DefaultCostTable(), nil)
	if len(adv.Pareto) < 2 {
		t.Fatalf("pareto front has %d entries", len(adv.Pareto))
	}
	// Sorted by time ascending, and strictly decreasing in size (otherwise
	// an entry would be dominated).
	for i := 1; i < len(adv.Pareto); i++ {
		if adv.Pareto[i].RelTime < adv.Pareto[i-1].RelTime {
			t.Fatal("pareto front not sorted by rel time")
		}
		if adv.Pareto[i].SizeBytes >= adv.Pareto[i-1].SizeBytes {
			t.Fatalf("pareto entry %d not smaller than its faster neighbour", i)
		}
	}
}

func TestAdviseTradeoffMonotone(t *testing.T) {
	adv := Advise(advisorStats(t), model.DefaultCostTable(), []float64{0.001, 0.1, 1, 10})
	prev := -1.0
	for _, tc := range adv.ByTradeoff {
		if prev >= 0 && tc.Chosen.RelTime > prev {
			t.Fatalf("larger c chose a slower format (rel time %g > %g)", tc.Chosen.RelTime, prev)
		}
		prev = tc.Chosen.RelTime
	}
}

func TestAdviseReport(t *testing.T) {
	var buf bytes.Buffer
	Advise(advisorStats(t), model.DefaultCostTable(), nil).WriteReport(&buf, "t.url")
	out := buf.String()
	for _, want := range []string{"pareto-optimal", "automatic selection", "t.url"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

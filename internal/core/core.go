// Package core implements the compression manager of Section 5: the
// component that automatically selects a dictionary format for every string
// column of the store.
//
// The design decouples local from global information exactly as the paper
// describes. All factors local to a column — its content (via the size
// models of package model), the sizes of its other data structures, its
// access and update pattern — are reduced to two dimensions:
//
//	size(d, c)   = dict_size(d, c) + columnvector_size(c)
//	rel_time(d)  = (#extracts·t_e + #locates·t_l + #strings·t_c) / lifetime
//
// All global factors — memory pressure above all — are reduced to a single
// trade-off parameter c maintained by a smoothed feedback loop on free
// memory. Every time a dictionary is rebuilt (at merge time), a selection
// strategy uses the current c to pick a format from the candidates, so the
// automatic selection adds almost no overhead.
//
// # Concurrency
//
// Manager is safe for concurrent use: the trade-off parameter and its
// feedback-loop state live behind a mutex, so merge workers may call
// ChooseFormat while another goroutine feeds ObserveFreeMemory. Batch
// selection over many columns fans out with ChooseFormats, and a single
// column's 18 size models fan out with ChooseFormatParallel /
// CandidatesParallel; both are deterministic — parallelism changes
// scheduling, never the decision.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"strdict/internal/dict"
	"strdict/internal/model"
)

// ColumnStats carries everything the manager knows about one column at
// dictionary-reconstruction time.
type ColumnStats struct {
	// Name identifies the column (for reporting only).
	Name string
	// NumStrings is the number of dictionary entries after the merge.
	NumStrings uint64
	// Extracts and Locates are the expected numbers of calls to the
	// dictionary over its lifetime, deduced from column usage statistics.
	Extracts, Locates uint64
	// LifetimeNs is the expected time between two merges of the column, in
	// nanoseconds; construction cost is amortized over it.
	LifetimeNs float64
	// ColumnVectorBytes is the size of the column's code vector. It puts
	// the dictionary size into relation with the rest of the column: a
	// dictionary dwarfed by its vector gains little from compression.
	ColumnVectorBytes uint64
	// Sample is the sampled dictionary content for the size models.
	Sample *model.Sample
}

// Candidate is one format's predicted position in the space/time plane.
type Candidate struct {
	Format dict.Format
	// SizeBytes is size(d, c): predicted dictionary size plus the column
	// vector size.
	SizeBytes uint64
	// RelTime is time(d)/lifetime: the fraction of the dictionary's
	// lifetime spent inside its three methods.
	RelTime float64
}

// Candidates evaluates every dictionary format for the column: the size
// models predict dict_size, the cost table supplies the runtime constants.
// The result is sorted by RelTime ascending.
func Candidates(stats ColumnStats, costs *model.CostTable) []Candidate {
	return CandidatesParallel(stats, costs, 1)
}

// CandidatesParallel is Candidates with the per-format size models fanned
// out across a bounded worker pool (parallelism <= 1 is serial). The models
// are independent — the Re-Pair probe, the long pole, runs alongside the
// cheap closed formulas instead of after them — and the returned slice is
// identical to the serial evaluation.
func CandidatesParallel(stats ColumnStats, costs *model.CostTable, parallelism int) []Candidate {
	if stats.Sample == nil {
		panic("core: ColumnStats.Sample must be set")
	}
	if stats.LifetimeNs <= 0 {
		stats.LifetimeNs = 1
	}
	sizes := model.EstimateEach(stats.Sample, parallelism)
	out := make([]Candidate, 0, dict.NumFormats())
	for _, f := range dict.AllFormats() {
		t := costs.TimeNs(f, stats.Extracts, stats.Locates, stats.NumStrings)
		out = append(out, Candidate{
			Format:    f,
			SizeBytes: sizes[f] + stats.ColumnVectorBytes,
			RelTime:   t / stats.LifetimeNs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RelTime != out[j].RelTime {
			return out[i].RelTime < out[j].RelTime
		}
		return out[i].SizeBytes < out[j].SizeBytes
	})
	return out
}

// Strategy selects the dividing function f of Section 5.4. All strategies
// admit the set D_f = {d : size(d) <= f(rel_time(d))} and pick the fastest
// admitted variant.
type Strategy int

const (
	// StrategyTilt tilts the dividing line in favour of faster-but-bigger
	// variants; the slope grows with the smallest variant's relative
	// runtime. This is the strategy the paper evaluates end to end, and
	// therefore the zero value (the Manager default).
	StrategyTilt Strategy = iota
	// StrategyConst uses the constant offset of Lemke et al.:
	// f(t) = (1+c)·size_min. It ignores access frequency.
	StrategyConst
	// StrategyRel shifts the dividing line up by a multiple of the smallest
	// variant's relative runtime, admitting bigger variants for hot columns.
	StrategyRel
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyConst:
		return "const"
	case StrategyRel:
		return "rel"
	case StrategyTilt:
		return "tilt"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Select applies the strategy with trade-off parameter c to the candidates
// (any order) and returns the chosen one. c must be >= 0; larger c trades
// space for speed.
func Select(strategy Strategy, c float64, cands []Candidate) Candidate {
	if len(cands) == 0 {
		panic("core: no candidates")
	}
	dmin := smallest(cands)
	dspeed := fastest(cands)
	sizeMin := float64(dmin.SizeBytes)
	budgetAt := dividingFunc(strategy, c, dmin, dspeed, sizeMin)

	best := dmin
	haveBest := false
	for _, cand := range cands {
		if float64(cand.SizeBytes) <= budgetAt(cand.RelTime) {
			if !haveBest || cand.RelTime < best.RelTime ||
				(cand.RelTime == best.RelTime && cand.SizeBytes < best.SizeBytes) {
				best = cand
				haveBest = true
			}
		}
	}
	return best
}

// dividingFunc builds f(t) for the strategy; see Section 5.4.
func dividingFunc(strategy Strategy, c float64, dmin, dspeed Candidate, sizeMin float64) func(float64) float64 {
	constLine := (1 + c) * sizeMin
	tMin := dmin.RelTime
	tSpeed := dspeed.RelTime
	sizeSpeed := float64(dspeed.SizeBytes)

	switch strategy {
	case StrategyRel:
		// f(t) = (1 + c(1 + rel_time(d_min)·α)) · size_min with α from the
		// boundary condition: under rel_time(d_min)=1 the fastest variant
		// must be admitted, i.e. (1 + c(1+α))·size_min = size(d_speed).
		alpha := 0.0
		if c > 0 && sizeMin > 0 {
			alpha = (sizeSpeed/sizeMin-1)/c - 1
			if alpha < 0 {
				alpha = 0
			}
		}
		line := (1 + c*(1+tMin*alpha)) * sizeMin
		return func(float64) float64 { return line }

	case StrategyTilt:
		// f(t) = slope·t + b with slope = α·rel_time(d_min), crossing the
		// const line at t = rel_time(d_min). α comes from the paper's
		// boundary condition evaluated under the normalization
		// rel_time(d_min) = 1 (all rel_times divided by tMin):
		// f(rel_time(d_speed)) = size(d_speed) there, which makes the
		// fastest variant admissible exactly when the smallest variant
		// would consume the whole lifetime.
		alpha := 0.0
		if tMin > 0 {
			tSpeedHyp := tSpeed / tMin
			if tSpeedHyp != 1 {
				alpha = (sizeSpeed - constLine) / (tSpeedHyp - 1)
			}
		}
		if alpha > 0 {
			// The line must favour *faster* variants; a positive slope
			// would instead admit slower ones. Happens only when d_speed is
			// already within the const budget — fall back to const.
			alpha = 0
		}
		slope := alpha * tMin
		b := constLine - slope*tMin
		return func(t float64) float64 { return slope*t + b }

	default: // StrategyConst
		return func(float64) float64 { return constLine }
	}
}

func smallest(cands []Candidate) Candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.SizeBytes < best.SizeBytes ||
			(c.SizeBytes == best.SizeBytes && c.RelTime < best.RelTime) {
			best = c
		}
	}
	return best
}

func fastest(cands []Candidate) Candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.RelTime < best.RelTime ||
			(c.RelTime == best.RelTime && c.SizeBytes < best.SizeBytes) {
			best = c
		}
	}
	return best
}

// Options configures a Manager.
type Options struct {
	// DesiredFreeBytes is the reference input of the feedback loop: the
	// amount of free memory the manager steers towards.
	DesiredFreeBytes uint64
	// Smoothing is the EWMA factor applied to free-memory observations to
	// avoid over-shooting (0 < Smoothing <= 1; 1 = no smoothing).
	// Default 0.3.
	Smoothing float64
	// Step is the multiplicative adjustment applied to c per observation
	// outside the dead band. Default 0.25 (i.e. ×1.25 or ÷1.25).
	Step float64
	// DeadBandFrac is the fraction of DesiredFreeBytes around the target
	// within which c is left unchanged. Default 0.05.
	DeadBandFrac float64
	// MinC and MaxC clamp the trade-off parameter. Defaults 1e-3 and 10,
	// the range the paper sweeps in Figure 10.
	MinC, MaxC float64
	// InitialC is the starting trade-off. Default 1.
	InitialC float64
	// Strategy is the dividing-function strategy. Default StrategyTilt,
	// the one the paper evaluates end to end.
	Strategy Strategy
	// Costs supplies the runtime constants. Default model.DefaultCostTable.
	Costs *model.CostTable
}

func (o *Options) fillDefaults() {
	if o.Smoothing <= 0 || o.Smoothing > 1 {
		o.Smoothing = 0.3
	}
	if o.Step <= 0 {
		o.Step = 0.25
	}
	if o.DeadBandFrac <= 0 {
		o.DeadBandFrac = 0.05
	}
	if o.MinC <= 0 {
		o.MinC = 1e-3
	}
	if o.MaxC <= 0 {
		o.MaxC = 10
	}
	if o.InitialC <= 0 {
		o.InitialC = 1
	}
	if o.Costs == nil {
		o.Costs = model.DefaultCostTable()
	}
}

// Manager is the compression manager: it owns the global trade-off
// parameter c, updates it from memory-pressure observations (the closed
// feedback loop of Figure 8), and selects a dictionary format whenever a
// column's dictionary is reconstructed.
//
// A Manager is safe for concurrent use.
type Manager struct {
	mu           sync.Mutex
	opts         Options
	c            float64
	smoothedFree float64
	haveObs      bool
}

// NewManager returns a manager with the given options.
func NewManager(opts Options) *Manager {
	opts.fillDefaults()
	return &Manager{opts: opts, c: opts.InitialC}
}

// C returns the current global trade-off parameter.
func (m *Manager) C() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

// SetC overrides the trade-off parameter, clamped to [MinC, MaxC]. Used by
// the off-line evaluation to sweep configurations, and available as a manual
// override knob.
func (m *Manager) SetC(c float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c = math.Min(math.Max(c, m.opts.MinC), m.opts.MaxC)
}

// ObserveFreeMemory feeds one free-memory measurement into the feedback
// loop: the measurement is smoothed, compared against the desired amount of
// free memory, and c is adjusted multiplicatively when the smoothed value
// leaves the dead band. It returns the new c.
func (m *Manager) ObserveFreeMemory(freeBytes uint64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := float64(freeBytes)
	if !m.haveObs {
		m.smoothedFree = f
		m.haveObs = true
	} else {
		a := m.opts.Smoothing
		m.smoothedFree = a*f + (1-a)*m.smoothedFree
	}
	desired := float64(m.opts.DesiredFreeBytes)
	band := desired * m.opts.DeadBandFrac
	switch {
	case m.smoothedFree < desired-band:
		// Memory pressure: favour smaller dictionaries.
		m.c /= 1 + m.opts.Step
	case m.smoothedFree > desired+band:
		// Plenty of memory: favour faster dictionaries.
		m.c *= 1 + m.opts.Step
	}
	m.c = math.Min(math.Max(m.c, m.opts.MinC), m.opts.MaxC)
	return m.c
}

// Decision records a format choice and the inputs that produced it.
type Decision struct {
	Format     dict.Format
	C          float64
	Strategy   Strategy
	Candidates []Candidate
}

// ChooseFormat runs the local selection for one column with the current
// global trade-off parameter. It is intended to be called exactly when the
// column's dictionary is rebuilt (merge of the write-optimized store, aging,
// initial load), so the format change costs no extra reconstruction.
func (m *Manager) ChooseFormat(stats ColumnStats) Decision {
	return m.ChooseFormatParallel(stats, 1)
}

// ChooseFormatParallel is ChooseFormat with the per-format size models
// evaluated on a bounded worker pool (CandidatesParallel). Selection inputs
// and output are identical to the serial path.
func (m *Manager) ChooseFormatParallel(stats ColumnStats, parallelism int) Decision {
	cands := CandidatesParallel(stats, m.opts.Costs, parallelism)
	c := m.C()
	chosen := Select(m.opts.Strategy, c, cands)
	return Decision{
		Format:     chosen.Format,
		C:          c,
		Strategy:   m.opts.Strategy,
		Candidates: cands,
	}
}

// ChooseFormats runs the per-column selection for a batch of columns
// concurrently on a bounded worker pool (parallelism <= 1 is serial,
// 0 or negative values included). The global trade-off parameter is read
// once, so every decision of the batch sees the same c even while the
// feedback loop keeps running; results are returned in input order and are
// identical to calling ChooseFormat per column under a frozen c.
func (m *Manager) ChooseFormats(stats []ColumnStats, parallelism int) []Decision {
	c := m.C()
	decide := func(i int) Decision {
		cands := Candidates(stats[i], m.opts.Costs)
		chosen := Select(m.opts.Strategy, c, cands)
		return Decision{
			Format:     chosen.Format,
			C:          c,
			Strategy:   m.opts.Strategy,
			Candidates: cands,
		}
	}

	out := make([]Decision, len(stats))
	workers := parallelism
	if workers > len(stats) {
		workers = len(stats)
	}
	if workers <= 1 {
		for i := range stats {
			out[i] = decide(i)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(stats) {
					return
				}
				out[i] = decide(i)
			}
		}()
	}
	wg.Wait()
	return out
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"strdict/internal/model"
)

func parallelTestStats(cols int) []ColumnStats {
	out := make([]ColumnStats, cols)
	for k := range out {
		strs := make([]string, 1500)
		for i := range strs {
			strs[i] = fmt.Sprintf("col%d/value-%06d-%04x", k, i, uint32(i*(k+3))%1500)
		}
		out[k] = ColumnStats{
			Name:              fmt.Sprintf("c%d", k),
			NumStrings:        uint64(len(strs)),
			Extracts:          uint64(1000 * (k + 1)),
			Locates:           uint64(100 * (cols - k)),
			LifetimeNs:        60e9,
			ColumnVectorBytes: 4096,
			Sample:            model.TakeSample(strs, 1.0, 1),
		}
	}
	return out
}

// TestCandidatesParallelIdentical asserts the parallel per-format evaluation
// returns exactly the serial candidate list.
func TestCandidatesParallelIdentical(t *testing.T) {
	stats := parallelTestStats(1)[0]
	costs := model.DefaultCostTable()
	serial := Candidates(stats, costs)
	parallel := CandidatesParallel(stats, costs, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("len %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("candidate %d: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

// TestChooseFormatsMatchesSequential asserts batched concurrent selection
// decides exactly what per-column sequential selection decides.
func TestChooseFormatsMatchesSequential(t *testing.T) {
	stats := parallelTestStats(6)
	mgr := NewManager(Options{DesiredFreeBytes: 1 << 30})
	mgr.SetC(0.5)

	want := make([]Decision, len(stats))
	for i := range stats {
		want[i] = mgr.ChooseFormat(stats[i])
	}
	got := mgr.ChooseFormats(stats, 4)
	for i := range stats {
		if got[i].Format != want[i].Format || got[i].C != want[i].C {
			t.Fatalf("column %d: got %s (c=%g), want %s (c=%g)",
				i, got[i].Format, got[i].C, want[i].Format, want[i].C)
		}
	}
}

// TestManagerConcurrentFeedbackAndSelection exercises the shared-state
// contract: merge workers select formats while the feedback loop adjusts c.
// Run under -race this pins the Manager's goroutine safety.
func TestManagerConcurrentFeedbackAndSelection(t *testing.T) {
	stats := parallelTestStats(2)
	mgr := NewManager(Options{DesiredFreeBytes: 1 << 30})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			mgr.ObserveFreeMemory(uint64(i%3) << 29)
		}
	}()
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				d := mgr.ChooseFormat(stats[w])
				if d.C <= 0 {
					t.Errorf("non-positive c %g", d.C)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

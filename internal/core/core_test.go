package core

import (
	"math"
	"testing"
	"testing/quick"

	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/model"
)

// fixedCands is a hand-crafted space/time distribution: sizes in bytes,
// rel_times dimensionless, roughly pareto-shaped like Figure 9.
func fixedCands() []Candidate {
	return []Candidate{
		{Format: dict.ArrayFixed, SizeBytes: 10000, RelTime: 0.010},
		{Format: dict.Array, SizeBytes: 8000, RelTime: 0.012},
		{Format: dict.ArrayBC, SizeBytes: 6000, RelTime: 0.020},
		{Format: dict.FCBlock, SizeBytes: 4000, RelTime: 0.050},
		{Format: dict.FCBlockHU, SizeBytes: 3000, RelTime: 0.120},
		{Format: dict.FCBlockRP12, SizeBytes: 2000, RelTime: 0.400},
	}
}

func TestSelectConstSmallC(t *testing.T) {
	// c near zero: only the smallest variant is admitted.
	got := Select(StrategyConst, 0.0, fixedCands())
	if got.Format != dict.FCBlockRP12 {
		t.Fatalf("got %s, want fc block rp 12", got.Format)
	}
}

func TestSelectConstLargeC(t *testing.T) {
	// c=10: everything within 11x the smallest size is admitted; the
	// fastest admitted is array (8000 <= 22000) and array fixed
	// (10000 <= 22000) — array fixed is faster.
	got := Select(StrategyConst, 10, fixedCands())
	if got.Format != dict.ArrayFixed {
		t.Fatalf("got %s, want array fixed", got.Format)
	}
}

func TestSelectConstMidC(t *testing.T) {
	// c=1: budget 4000, admits fc block (fastest among <=4000).
	got := Select(StrategyConst, 1, fixedCands())
	if got.Format != dict.FCBlock {
		t.Fatalf("got %s, want fc block", got.Format)
	}
}

func TestSelectMonotoneInC(t *testing.T) {
	// Increasing c must never select a slower variant.
	for _, strat := range []Strategy{StrategyConst, StrategyRel, StrategyTilt} {
		prev := math.Inf(1)
		for _, c := range []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10} {
			sel := Select(strat, c, fixedCands())
			if sel.RelTime > prev {
				t.Errorf("%s: rel_time increased from %g to %g at c=%g",
					strat, prev, sel.RelTime, c)
			}
			prev = sel.RelTime
		}
	}
}

func TestSelectAlwaysAdmitsSmallest(t *testing.T) {
	// The smallest variant is always in D_f; Select never fails.
	f := func(sizes []uint16, times []uint16, cRaw uint8) bool {
		n := len(sizes)
		if len(times) < n {
			n = len(times)
		}
		if n == 0 {
			return true
		}
		cands := make([]Candidate, n)
		for i := 0; i < n; i++ {
			cands[i] = Candidate{
				Format:    dict.Format(i % dict.NumFormats()),
				SizeBytes: uint64(sizes[i]) + 1,
				RelTime:   float64(times[i]) / 65536,
			}
		}
		c := float64(cRaw) / 16
		for _, strat := range []Strategy{StrategyConst, StrategyRel, StrategyTilt} {
			sel := Select(strat, c, cands)
			// selected candidate must be one of the inputs
			ok := false
			for _, cand := range cands {
				if cand == sel {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTiltFavoursSpeedForHotColumns(t *testing.T) {
	// Same sizes, but rel_times scaled up (hot column, short lifetime):
	// tilt must admit a faster format than const does at the same c.
	cands := fixedCands()
	hot := make([]Candidate, len(cands))
	for i, c := range cands {
		c.RelTime *= 60 // smallest variant now consumes 24x... lifetime
		hot[i] = c
	}
	c := 0.5
	constSel := Select(StrategyConst, c, hot)
	tiltSel := Select(StrategyTilt, c, hot)
	if tiltSel.RelTime > constSel.RelTime {
		t.Fatalf("tilt (%s, rt=%g) slower than const (%s, rt=%g) on hot column",
			tiltSel.Format, tiltSel.RelTime, constSel.Format, constSel.RelTime)
	}
	if tiltSel.Format == constSel.Format {
		t.Fatalf("tilt did not react to access frequency (both %s)", tiltSel.Format)
	}
}

func TestTiltSelectsFastestWhenLifetimeExhausted(t *testing.T) {
	// Boundary condition of Section 5.4: if the smallest variant's runtime
	// reaches 100% of the lifetime, the fastest variant must be chosen.
	cands := fixedCands()
	scaled := make([]Candidate, len(cands))
	for i, c := range cands {
		c.RelTime *= 1 / 0.4 // smallest (rp12) now has rel_time exactly 1
		scaled[i] = c
	}
	sel := Select(StrategyTilt, 0.5, scaled)
	if sel.Format != dict.ArrayFixed {
		t.Fatalf("got %s, want the fastest (array fixed)", sel.Format)
	}
}

func TestCandidatesUseModels(t *testing.T) {
	strs := datagen.Generate("url", 5000, 1)
	stats := ColumnStats{
		Name:              "t.url",
		NumStrings:        uint64(len(strs)),
		Extracts:          100000,
		Locates:           100,
		LifetimeNs:        1e12,
		ColumnVectorBytes: 1 << 16,
		Sample:            model.TakeSample(strs, 1.0, 1),
	}
	cands := Candidates(stats, model.DefaultCostTable())
	if len(cands) != dict.NumFormats() {
		t.Fatalf("%d candidates", len(cands))
	}
	// Sorted by rel time.
	for i := 1; i < len(cands); i++ {
		if cands[i].RelTime < cands[i-1].RelTime {
			t.Fatal("candidates not sorted by rel time")
		}
	}
	// Every size includes the column vector.
	for _, c := range cands {
		if c.SizeBytes <= stats.ColumnVectorBytes {
			t.Errorf("%s: size %d does not include column vector", c.Format, c.SizeBytes)
		}
	}
}

func TestManagerFeedbackLoop(t *testing.T) {
	m := NewManager(Options{DesiredFreeBytes: 1 << 30, InitialC: 1})
	c0 := m.C()
	// Memory pressure: repeated low free-memory observations must drive c
	// down (compress more).
	for i := 0; i < 20; i++ {
		m.ObserveFreeMemory(1 << 28)
	}
	if m.C() >= c0 {
		t.Fatalf("c did not decrease under memory pressure: %g -> %g", c0, m.C())
	}
	low := m.C()
	// Abundant memory: c must recover upward.
	for i := 0; i < 40; i++ {
		m.ObserveFreeMemory(1 << 31)
	}
	if m.C() <= low {
		t.Fatalf("c did not increase with free memory: %g -> %g", low, m.C())
	}
}

func TestManagerClampsC(t *testing.T) {
	m := NewManager(Options{DesiredFreeBytes: 1 << 30})
	for i := 0; i < 1000; i++ {
		m.ObserveFreeMemory(0)
	}
	if m.C() < 1e-3 {
		t.Fatalf("c fell below MinC: %g", m.C())
	}
	for i := 0; i < 1000; i++ {
		m.ObserveFreeMemory(1 << 40)
	}
	if m.C() > 10 {
		t.Fatalf("c rose above MaxC: %g", m.C())
	}
}

func TestManagerSmoothingAvoidsOvershoot(t *testing.T) {
	// A single outlier observation inside a stable regime must not flip c.
	m := NewManager(Options{DesiredFreeBytes: 1 << 30, Smoothing: 0.1})
	for i := 0; i < 50; i++ {
		m.ObserveFreeMemory(1 << 30) // exactly at target: dead band
	}
	stable := m.C()
	m.ObserveFreeMemory(0) // one outlier
	if got := m.C(); math.Abs(got-stable)/stable > 0.3 {
		t.Fatalf("single outlier moved c from %g to %g", stable, got)
	}
}

func TestManagerChooseFormatRespondsToC(t *testing.T) {
	strs := datagen.Generate("src", 8000, 1)
	stats := ColumnStats{
		NumStrings: uint64(len(strs)),
		Extracts:   1000,
		Locates:    10,
		LifetimeNs: 1e12,
		Sample:     model.TakeSample(strs, 1.0, 1),
	}
	m := NewManager(Options{DesiredFreeBytes: 1 << 30})

	m.SetC(1e-3)
	small := m.ChooseFormat(stats)
	m.SetC(10)
	fast := m.ChooseFormat(stats)

	costs := model.DefaultCostTable()
	if costs.Of(fast.Format).ExtractNs > costs.Of(small.Format).ExtractNs {
		t.Fatalf("c=10 chose slower format (%s) than c=0.001 (%s)",
			fast.Format, small.Format)
	}
	var sizeSmall, sizeFast uint64
	for _, cand := range small.Candidates {
		if cand.Format == small.Format {
			sizeSmall = cand.SizeBytes
		}
		if cand.Format == fast.Format {
			sizeFast = cand.SizeBytes
		}
	}
	if sizeSmall > sizeFast {
		t.Fatalf("c=0.001 chose bigger format (%s, %d) than c=10 (%s, %d)",
			small.Format, sizeSmall, fast.Format, sizeFast)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyConst.String() != "const" || StrategyRel.String() != "rel" ||
		StrategyTilt.String() != "tilt" {
		t.Fatal("strategy names")
	}
}

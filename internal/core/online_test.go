package core

import (
	"fmt"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/dict"
	"strdict/internal/model"
)

// TestOnlineManagerSimulation plays the paper's intended online deployment:
// a store under a memory budget, periodic merges, and the feedback loop
// steering c. Memory pressure must drive the system into smaller formats;
// released pressure must let it swing back to fast formats. This covers the
// "on-line decisions" the paper argues the offline prototype generalizes to.
func TestOnlineManagerSimulation(t *testing.T) {
	const budget = 1 << 20 // 1 MiB free-memory target
	mgr := NewManager(Options{DesiredFreeBytes: budget, InitialC: 1})
	costs := model.DefaultCostTable()

	// Three columns with distinct personalities.
	mkCol := func(name string, distinct int, gen func(i int) string) *colstore.StringColumn {
		c := colstore.NewStringColumn(name, dict.FCInline)
		for i := 0; i < 4*distinct; i++ {
			c.Append(gen(i % distinct))
		}
		c.Merge(dict.FCInline)
		return c
	}
	cols := []*colstore.StringColumn{
		mkCol("hot.codes", 50, func(i int) string { return fmt.Sprintf("C%02d", i) }),
		mkCol("warm.urls", 3000, func(i int) string {
			return fmt.Sprintf("https://shop.example/item/%06d", i)
		}),
		mkCol("cold.text", 3000, func(i int) string {
			return fmt.Sprintf("remark remark remark number %06d follows", i)
		}),
	}

	workload := func() {
		for i := 0; i < 20000; i++ {
			cols[0].Get(i % cols[0].Len())
		}
		for i := 0; i < 500; i++ {
			cols[1].Get((i * 31) % cols[1].Len())
		}
		for i := 0; i < 20; i++ {
			cols[2].Get((i * 131) % cols[2].Len())
		}
	}

	mergeEpoch := func() {
		// Simulated system memory: budget + slack - current dictionaries.
		var dictBytes uint64
		for _, c := range cols {
			dictBytes += c.DictBytes()
		}
		var free uint64
		slack := uint64(300 << 10)
		if dictBytes < budget+slack {
			free = budget + slack - dictBytes
		}
		mgr.ObserveFreeMemory(free)
		for _, c := range cols {
			st := c.Stats()
			dec := mgr.ChooseFormat(ColumnStats{
				Name:              c.Name(),
				NumStrings:        uint64(c.DictLen()),
				Extracts:          st.Extracts,
				Locates:           st.Locates,
				LifetimeNs:        1e9,
				ColumnVectorBytes: c.VectorBytes(),
				Sample:            model.TakeSample(c.DictValues(), 1.0, 1),
			})
			c.Rebuild(dec.Format)
			c.ResetStats()
		}
	}

	var epochsDictBytes []uint64
	for epoch := 0; epoch < 8; epoch++ {
		workload()
		mergeEpoch()
		var dictBytes uint64
		for _, c := range cols {
			dictBytes += c.DictBytes()
		}
		epochsDictBytes = append(epochsDictBytes, dictBytes)
	}

	// The loop must converge: dictionaries end up within the budget regime
	// and the hot column keeps a fast format.
	final := epochsDictBytes[len(epochsDictBytes)-1]
	if final > budget {
		t.Errorf("dictionaries (%d bytes) never squeezed under the 1 MiB regime: %v",
			final, epochsDictBytes)
	}
	hotCosts := model.DefaultCostTable().Of(cols[0].Format()).ExtractNs
	coldCosts := costs.Of(cols[2].Format()).ExtractNs
	if hotCosts > coldCosts {
		t.Errorf("hot column got a slower format (%s) than the cold one (%s)",
			cols[0].Format(), cols[2].Format())
	}
	// Data remains correct throughout.
	if got := cols[1].Get(7); got == "" {
		t.Error("column data lost")
	}
}

package core

// Cross-version serialization compatibility. testdata/golden holds one
// pre-registry (serialization v2, single-byte format field) dictionary blob
// per built-in format, built over testdata/golden/corpus.txt and committed
// as frozen bytes. The registry refactor moved format identification to wire
// IDs and bumped the serialization version; these fixtures prove old bytes
// still load bit-identically. Never regenerate them — their whole value is
// that current code did not write them.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strdict/internal/dict"
)

func goldenCorpus(t *testing.T) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", "corpus.txt"))
	if err != nil {
		t.Fatalf("golden corpus: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) < 100 {
		t.Fatalf("golden corpus suspiciously small: %d lines", len(lines))
	}
	return lines
}

func TestGoldenV2DictionariesRecover(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, f := range dict.AllFormats() {
		if int(f) >= dict.NumBuiltinFormats {
			continue // extensions postdate the v2 fixtures
		}
		name := strings.ReplaceAll(f.String(), " ", "_") + ".v2.sdic"
		blob, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Errorf("missing golden fixture for %v: %v", f, err)
			continue
		}
		d, err := dict.Unmarshal(blob)
		if err != nil {
			t.Errorf("%v: unmarshal golden v2 bytes: %v", f, err)
			continue
		}
		if d.Format() != f {
			t.Errorf("%s decoded as %v, want %v", name, d.Format(), f)
			continue
		}
		if d.Len() != len(corpus) {
			t.Errorf("%v: Len = %d, want %d", f, d.Len(), len(corpus))
			continue
		}
		for i, want := range corpus {
			if got := d.Extract(uint32(i)); got != want {
				t.Errorf("%v: Extract(%d) = %q, want %q", f, i, got, want)
				break
			}
		}
		for _, i := range []int{0, 1, len(corpus) / 2, len(corpus) - 1} {
			if id, ok := d.Locate(corpus[i]); !ok || id != uint32(i) {
				t.Errorf("%v: Locate(%q) = (%d, %v), want %d", f, corpus[i], id, ok, i)
			}
		}

		// A re-marshal under the current version must round-trip to the same
		// contents (the bytes themselves legitimately differ: v3 header).
		reblob, err := dict.Marshal(d)
		if err != nil {
			t.Errorf("%v: re-marshal: %v", f, err)
			continue
		}
		d2, err := dict.Unmarshal(reblob)
		if err != nil {
			t.Errorf("%v: re-unmarshal: %v", f, err)
			continue
		}
		for i, want := range corpus {
			if got := d2.Extract(uint32(i)); got != want {
				t.Errorf("%v: v3 round-trip Extract(%d) = %q, want %q", f, i, got, want)
				break
			}
		}
	}
}

package core

// The tuning advisor of Section 4.3: before automating the decision, the
// paper notes the prediction framework "can be used in a tuning advisor to
// assist the database administrator in taking the decision of the format of
// the most important dictionaries manually". Advise produces that view: the
// pareto-optimal candidates and the formats the automatic selection would
// pick across the whole range of the trade-off parameter.

import (
	"fmt"
	"io"
	"sort"

	"strdict/internal/model"
)

// Advice is the advisor's output for one column.
type Advice struct {
	// Pareto holds the candidates not dominated in (size, time), sorted by
	// RelTime ascending — the menu a DBA picks from.
	Pareto []Candidate
	// ByTradeoff maps representative c values to the format the automatic
	// selection (tilt strategy) would choose.
	ByTradeoff []TradeoffChoice
}

// TradeoffChoice pairs a trade-off parameter with the chosen candidate.
type TradeoffChoice struct {
	C      float64
	Chosen Candidate
}

// Advise evaluates all formats for the column and summarizes the decision
// space. cs lists the trade-off values to probe; nil uses a log range over
// the manager's default clamp [1e-3, 10].
func Advise(stats ColumnStats, costs *model.CostTable, cs []float64) Advice {
	cands := Candidates(stats, costs)
	if len(cs) == 0 {
		cs = []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10}
	}
	adv := Advice{Pareto: paretoFront(cands)}
	for _, c := range cs {
		adv.ByTradeoff = append(adv.ByTradeoff, TradeoffChoice{
			C:      c,
			Chosen: Select(StrategyTilt, c, cands),
		})
	}
	return adv
}

// paretoFront filters candidates to those not dominated by another (smaller
// or equal in both size and time, strictly smaller in one).
func paretoFront(cands []Candidate) []Candidate {
	var out []Candidate
	for _, a := range cands {
		dominated := false
		for _, b := range cands {
			if b == a {
				continue
			}
			if b.SizeBytes <= a.SizeBytes && b.RelTime <= a.RelTime &&
				(b.SizeBytes < a.SizeBytes || b.RelTime < a.RelTime) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RelTime < out[j].RelTime })
	return out
}

// WriteReport renders the advice as the DBA-facing report.
func (a Advice) WriteReport(w io.Writer, name string) {
	fmt.Fprintf(w, "advisor report for %s\n\n", name)
	fmt.Fprintf(w, "pareto-optimal formats (fast to small):\n")
	fmt.Fprintf(w, "  %-16s %14s %14s\n", "format", "size (bytes)", "rel time")
	for _, c := range a.Pareto {
		fmt.Fprintf(w, "  %-16s %14d %14.6f\n", c.Format, c.SizeBytes, c.RelTime)
	}
	fmt.Fprintf(w, "\nautomatic selection across the trade-off range:\n")
	fmt.Fprintf(w, "  %-10s %-16s %14s\n", "c", "chosen format", "size (bytes)")
	for _, tc := range a.ByTradeoff {
		fmt.Fprintf(w, "  %-10.4g %-16s %14d\n", tc.C, tc.Chosen.Format, tc.Chosen.SizeBytes)
	}
}

package repair

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func toParts(strs ...string) [][]byte {
	parts := make([][]byte, len(strs))
	for i, s := range strs {
		parts[i] = []byte(s)
	}
	return parts
}

// trainRoundTrip trains on parts and verifies every training sequence
// decodes back to its original part.
func trainRoundTrip(t *testing.T, symbolBits uint, parts [][]byte) *Grammar {
	t.Helper()
	g, seqs := Train(parts, symbolBits)
	if len(seqs) != len(parts) {
		t.Fatalf("got %d sequences for %d parts", len(seqs), len(parts))
	}
	for i, seq := range seqs {
		enc := g.EncodeSeq(nil, seq)
		dec := g.Decode(nil, enc)
		if !bytes.Equal(dec, parts[i]) {
			t.Fatalf("part %d: decoded %q, want %q (seq %v)", i, dec, parts[i], seq)
		}
	}
	return g
}

func TestTrainRoundTripSimple(t *testing.T) {
	trainRoundTrip(t, 12, toParts("abcabcabc", "abcabc", "xyz", ""))
}

func TestTrainRoundTripRuns(t *testing.T) {
	// Runs of equal symbols exercise the overlapping-pair handling.
	trainRoundTrip(t, 12, toParts("aaaa", "aaa", "aaaaaaaa", "baaab"))
}

func TestTrainRoundTripSingleChar(t *testing.T) {
	trainRoundTrip(t, 12, toParts("a", "b", "c"))
}

func TestCompressionOnRedundantText(t *testing.T) {
	line := "for (int i = 0; i < n; i++) { sum += data[i]; }"
	parts := make([][]byte, 200)
	for i := range parts {
		parts[i] = []byte(line)
	}
	g, seqs := Train(parts, 12)
	if g.RuleCount() == 0 {
		t.Fatal("expected rules on redundant text")
	}
	// Identical lines must compress to very short sequences.
	for _, seq := range seqs {
		if len(seq) > len(line)/4 {
			t.Fatalf("sequence of length %d for a %d-char fully redundant line", len(seq), len(line))
		}
	}
}

func TestPairsNeverCrossBoundaries(t *testing.T) {
	// "ab" appears twice but split across parts ("…a" + "b…"): the pair (a,b)
	// occurs only through the boundary and must not become a rule.
	parts := toParts("xa", "bx", "ya", "by")
	g, _ := Train(parts, 12)
	for _, r := range g.rules {
		if r.Left == 'a' && r.Right == 'b' {
			t.Fatal("rule (a,b) crosses a string boundary")
		}
	}
}

func TestRuleCapacity12(t *testing.T) {
	// Highly varied text could want more rules than 12 bits allow.
	rng := rand.New(rand.NewSource(77))
	var parts [][]byte
	for i := 0; i < 400; i++ {
		b := make([]byte, 300)
		for j := range b {
			b[j] = byte('a' + rng.Intn(20))
		}
		// duplicate each part so pairs repeat
		parts = append(parts, b, b)
	}
	g := trainRoundTrip(t, 12, parts)
	if g.RuleCount() > MaxRules(12) {
		t.Fatalf("rule count %d exceeds capacity %d", g.RuleCount(), MaxRules(12))
	}
}

func Test16BitHoldsMoreRules(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var parts [][]byte
	for i := 0; i < 500; i++ {
		b := make([]byte, 400)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		parts = append(parts, b, b)
	}
	g12, _ := Train(parts, 12)
	g16, _ := Train(parts, 16)
	if g16.RuleCount() < g12.RuleCount() {
		t.Fatalf("16-bit grammar has fewer rules (%d) than 12-bit (%d)", g16.RuleCount(), g12.RuleCount())
	}
}

func TestEncodeArbitraryRoundTrip(t *testing.T) {
	parts := toParts("the quick brown fox", "the quick red fox", "the slow brown dog")
	g, _ := Train(parts, 12)
	probe := []byte("the quick brown dog") // not in corpus
	enc := g.Encode(nil, probe)
	if dec := g.Decode(nil, enc); !bytes.Equal(dec, probe) {
		t.Fatalf("decoded %q", dec)
	}
}

func TestTrainRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		parts := make([][]byte, n)
		for i := range parts {
			l := r.Intn(60)
			b := make([]byte, l)
			for j := range b {
				b[j] = byte('a' + r.Intn(4)) // tiny alphabet -> many pairs
			}
			parts[i] = b
		}
		g, seqs := Train(parts, 12)
		for i, seq := range seqs {
			if !bytes.Equal(g.Decode(nil, g.EncodeSeq(nil, seq)), parts[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeEmptySequence(t *testing.T) {
	g, seqs := Train(toParts(""), 12)
	enc := g.EncodeSeq(nil, seqs[0])
	if dec := g.Decode(nil, enc); len(dec) != 0 {
		t.Fatalf("decoded %q from empty part", dec)
	}
}

func TestLargeCorpusTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus")
	}
	var sb strings.Builder
	words := []string{"select", "from", "where", "group", "order", "limit", "join", "table"}
	rng := rand.New(rand.NewSource(19))
	var parts [][]byte
	for i := 0; i < 5000; i++ {
		sb.Reset()
		for w := 0; w < 6; w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		parts = append(parts, []byte(sb.String()))
	}
	g, seqs := Train(parts, 16)
	var rawLen, compSyms int
	for i, seq := range seqs {
		rawLen += len(parts[i])
		compSyms += len(seq)
		if i%500 == 0 {
			if !bytes.Equal(g.Decode(nil, g.EncodeSeq(nil, seq)), parts[i]) {
				t.Fatalf("round trip failed at part %d", i)
			}
		}
	}
	// 16-bit symbols: compressed bits = 16*syms, raw bits = 8*len.
	if compSyms*2 >= rawLen {
		t.Fatalf("no effective compression: %d symbols for %d bytes", compSyms, rawLen)
	}
}

func BenchmarkExpand(b *testing.B) {
	line := "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem GROUP BY l_orderkey"
	parts := make([][]byte, 100)
	for i := range parts {
		parts[i] = []byte(line)
	}
	g, seqs := Train(parts, 12)
	enc := g.EncodeSeq(nil, seqs[0])
	buf := make([]byte, 0, len(line))
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Decode(buf[:0], enc)
	}
}

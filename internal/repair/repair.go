// Package repair implements Re-Pair grammar compression (Larsson & Moffat,
// DCC 1999): the most frequent adjacent symbol pair is repeatedly replaced
// by a fresh non-terminal until no pair occurs at least twice or the symbol
// space is exhausted.
//
// It realizes the paper's `rp 12` and `rp 16` string compression schemes:
// symbols are stored with 12 or 16 fixed bits, terminals are the 256 byte
// values, symbol 256 is a reserved end-of-string marker and non-terminals
// start at 257 (so a 12-bit grammar holds up to 3839 rules).
//
// The grammar is trained once over the whole dictionary (string boundaries
// are separated by sentinels that pairs can never cross) and each string
// keeps its own compressed symbol sequence, so a single string can be
// extracted without touching its neighbours — a stated requirement of the
// paper's dictionary formats.
package repair

import (
	"container/heap"
	"fmt"

	"strdict/internal/bits"
)

// EOS is the reserved end-of-string symbol.
const EOS = 256

// firstRuleSym is the symbol number of the first grammar rule.
const firstRuleSym = 257

// Rule expands a non-terminal into its two child symbols.
type Rule struct {
	Left, Right int32
}

// Grammar is a trained Re-Pair grammar.
type Grammar struct {
	symbolBits uint
	rules      []Rule
}

// SymbolBits returns the fixed symbol width (12 or 16).
func (g *Grammar) SymbolBits() uint { return g.symbolBits }

// RuleCount returns the number of rules in the grammar.
func (g *Grammar) RuleCount() int { return len(g.rules) }

// MaxRules returns the rule capacity for a symbol width.
func MaxRules(symbolBits uint) int {
	return (1 << symbolBits) - firstRuleSym
}

// Train builds a grammar over the given parts and returns it together with
// the compressed symbol sequence of every part. symbolBits must be 12 or 16.
func Train(parts [][]byte, symbolBits uint) (*Grammar, [][]int32) {
	if symbolBits != 12 && symbolBits != 16 {
		panic("repair: symbolBits must be 12 or 16")
	}
	tr := newTrainer(parts, symbolBits)
	tr.run()
	return &Grammar{symbolBits: symbolBits, rules: tr.rules}, tr.sequences(len(parts))
}

const (
	sep  = int32(-1) // string boundary sentinel
	hole = int32(-2) // removed position
	none = int32(-3) // list terminator
)

// pairRec tracks the occurrences of one active pair.
type pairRec struct {
	key     uint64
	count   int32
	head    int32 // first occurrence position (position of the left symbol)
	heapIdx int
}

type recHeap []*pairRec

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return h[i].count > h[j].count }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *recHeap) Push(x interface{}) { r := x.(*pairRec); r.heapIdx = len(*h); *h = append(*h, r) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

type trainer struct {
	seq        []int32
	next, prev []int32 // active doubly-linked list over positions
	nextOcc    []int32 // occurrence-list threading, keyed by position
	prevOcc    []int32
	recs       map[uint64]*pairRec
	pq         recHeap
	rules      []Rule
	maxSym     int32
}

func pairKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func newTrainer(parts [][]byte, symbolBits uint) *trainer {
	n := 0
	for _, p := range parts {
		n += len(p) + 1 // +1 separator after each part
	}
	tr := &trainer{
		seq:     make([]int32, 0, n),
		recs:    make(map[uint64]*pairRec),
		maxSym:  int32(1<<symbolBits) - 1,
		nextOcc: make([]int32, n),
		prevOcc: make([]int32, n),
	}
	for _, p := range parts {
		for _, b := range p {
			tr.seq = append(tr.seq, int32(b))
		}
		tr.seq = append(tr.seq, sep)
	}
	m := len(tr.seq)
	tr.next = make([]int32, m)
	tr.prev = make([]int32, m)
	for i := 0; i < m; i++ {
		tr.next[i] = int32(i + 1)
		tr.prev[i] = int32(i - 1)
		tr.nextOcc[i] = none
		tr.prevOcc[i] = none
	}
	if m > 0 {
		tr.next[m-1] = none
	}
	// Register every adjacent pair not involving a separator.
	for i := 0; i+1 < m; i++ {
		tr.addOcc(int32(i))
	}
	heap.Init(&tr.pq)
	return tr
}

// registered reports whether position p currently heads a trackable pair.
func (tr *trainer) registered(p int32) bool {
	if p < 0 || tr.seq[p] < 0 {
		return false
	}
	q := tr.next[p]
	return q >= 0 && tr.seq[q] >= 0
}

// addOcc registers the pair starting at position p, if trackable.
func (tr *trainer) addOcc(p int32) {
	if !tr.registered(p) {
		return
	}
	q := tr.next[p]
	key := pairKey(tr.seq[p], tr.seq[q])
	rec := tr.recs[key]
	if rec == nil {
		rec = &pairRec{key: key, head: none}
		tr.recs[key] = rec
		heap.Push(&tr.pq, rec)
	}
	// Push-front onto the occurrence list.
	tr.nextOcc[p] = rec.head
	tr.prevOcc[p] = none
	if rec.head != none {
		tr.prevOcc[rec.head] = p
	}
	rec.head = p
	rec.count++
	heap.Fix(&tr.pq, rec.heapIdx)
}

// removeOcc unregisters the pair currently starting at position p.
// It must be called before the symbols at p or next[p] are mutated.
func (tr *trainer) removeOcc(p int32) {
	if !tr.registered(p) {
		return
	}
	q := tr.next[p]
	key := pairKey(tr.seq[p], tr.seq[q])
	rec := tr.recs[key]
	if rec == nil {
		return
	}
	if tr.prevOcc[p] != none {
		tr.nextOcc[tr.prevOcc[p]] = tr.nextOcc[p]
	} else if rec.head == p {
		rec.head = tr.nextOcc[p]
	} else {
		return // p was not on this list (defensive; should not happen)
	}
	if tr.nextOcc[p] != none {
		tr.prevOcc[tr.nextOcc[p]] = tr.prevOcc[p]
	}
	tr.nextOcc[p] = none
	tr.prevOcc[p] = none
	rec.count--
	heap.Fix(&tr.pq, rec.heapIdx)
}

func (tr *trainer) run() {
	nextSym := int32(firstRuleSym)
	for len(tr.pq) > 0 && nextSym <= tr.maxSym {
		top := tr.pq[0]
		if top.count < 2 {
			break
		}
		a := int32(uint32(top.key >> 32))
		b := int32(uint32(top.key))
		tr.rules = append(tr.rules, Rule{Left: a, Right: b})
		newSym := nextSym
		nextSym++
		for top.count > 0 {
			tr.replaceAt(top.head, newSym)
		}
		// Drop the exhausted record.
		heap.Remove(&tr.pq, top.heapIdx)
		delete(tr.recs, top.key)
	}
}

// replaceAt rewrites the pair starting at position p with newSym, keeping
// all occurrence lists consistent.
func (tr *trainer) replaceAt(p, newSym int32) {
	q := tr.next[p]
	lp := tr.prev[p]
	r := tr.next[q]

	// Unregister the three pairs whose symbols are about to change:
	// (left-neighbour, a), (a, b) itself, and (b, right-neighbour).
	tr.removeOcc(p)
	if lp != none {
		tr.removeOcc(lp)
	}
	tr.removeOcc(q)

	tr.seq[p] = newSym
	tr.seq[q] = hole
	tr.next[p] = r
	if r != none {
		tr.prev[r] = p
	}

	// Register the pairs formed with the new symbol.
	if lp != none {
		tr.addOcc(lp)
	}
	tr.addOcc(p)
}

// sequences extracts the per-part compressed symbol sequences by walking the
// active list and splitting at separators.
func (tr *trainer) sequences(nParts int) [][]int32 {
	out := make([][]int32, 0, nParts)
	var cur []int32
	for i := 0; i < len(tr.seq); i++ {
		s := tr.seq[i]
		switch {
		case s == hole:
			// skip
		case s == sep:
			out = append(out, cur)
			cur = nil
		default:
			cur = append(cur, s)
		}
	}
	return out
}

// EncodeSeq appends the byte-aligned fixed-width encoding of a symbol
// sequence (EOS-terminated) to dst.
func (g *Grammar) EncodeSeq(dst []byte, seq []int32) []byte {
	var w bits.Writer
	for _, s := range seq {
		w.WriteBits(uint64(uint32(s)), g.symbolBits)
	}
	w.WriteBits(EOS, g.symbolBits)
	w.Align()
	return append(dst, w.Bytes()...)
}

// Expand appends the terminal expansion of sym to dst.
func (g *Grammar) Expand(dst []byte, sym int32) []byte {
	if sym < 256 {
		return append(dst, byte(sym))
	}
	// Iterative expansion with an explicit stack; right children are pushed
	// so terminals come out left to right.
	stack := make([]int32, 0, 32)
	stack = append(stack, sym)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s >= firstRuleSym {
			rule := g.rules[s-firstRuleSym]
			stack = append(stack, rule.Right)
			s = rule.Left
		}
		if s == EOS {
			continue
		}
		dst = append(dst, byte(s))
	}
	return dst
}

// Decode appends the decoded string to dst, reading fixed-width symbols
// until EOS.
func (g *Grammar) Decode(dst []byte, enc []byte) []byte {
	return g.DecodeFrom(dst, bits.NewReader(enc))
}

// DecodeFrom decodes one EOS-terminated string from r, appending to dst.
func (g *Grammar) DecodeFrom(dst []byte, r *bits.Reader) []byte {
	limit := int32(firstRuleSym + len(g.rules))
	for {
		s := int32(r.ReadBits(g.symbolBits))
		// EOS, or a symbol beyond the rule table (corrupt stream):
		// terminate defensively.
		if s == EOS || s >= limit {
			return dst
		}
		dst = g.Expand(dst, s)
	}
}

// Encode compresses an arbitrary string with the trained grammar by applying
// the rules in creation order. The parse can differ from the training parse
// for strings of the corpus, but it always round-trips through Decode. This
// is a convenience for tests and ad-hoc probes; dictionary construction uses
// the training sequences from Train directly.
func (g *Grammar) Encode(dst []byte, src []byte) []byte {
	seq := make([]int32, len(src))
	for i, b := range src {
		seq[i] = int32(b)
	}
	for ri, rule := range g.rules {
		sym := int32(firstRuleSym + ri)
		out := seq[:0]
		for i := 0; i < len(seq); i++ {
			if i+1 < len(seq) && seq[i] == rule.Left && seq[i+1] == rule.Right {
				out = append(out, sym)
				i++
			} else {
				out = append(out, seq[i])
			}
		}
		seq = out
	}
	return g.EncodeSeq(dst, seq)
}

// TableBytes reports the in-memory footprint of the rule table.
func (g *Grammar) TableBytes() uint64 {
	return uint64(len(g.rules))*8 + 8
}

// Name identifies the scheme.
func (g *Grammar) Name() string {
	if g.symbolBits == 12 {
		return "rp12"
	}
	return "rp16"
}

// Rules returns the grammar's rule table, its serialized form.
func (g *Grammar) Rules() []Rule {
	return append([]Rule(nil), g.rules...)
}

// FromRules rebuilds a grammar from a serialized rule table, validating
// that every rule only references terminals or earlier rules (so expansion
// always terminates) and that the symbol space fits the width.
func FromRules(symbolBits uint, rules []Rule) (*Grammar, error) {
	if symbolBits != 12 && symbolBits != 16 {
		return nil, fmt.Errorf("repair: symbolBits must be 12 or 16")
	}
	if len(rules) > MaxRules(symbolBits) {
		return nil, fmt.Errorf("repair: %d rules exceed the %d-bit symbol space", len(rules), symbolBits)
	}
	for i, r := range rules {
		limit := int32(firstRuleSym + i)
		for _, child := range []int32{r.Left, r.Right} {
			if child < 0 || child == EOS || child >= limit {
				return nil, fmt.Errorf("repair: rule %d has invalid child %d", i, child)
			}
		}
	}
	return &Grammar{symbolBits: symbolBits, rules: append([]Rule(nil), rules...)}, nil
}

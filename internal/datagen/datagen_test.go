package datagen

import (
	"sort"
	"strings"
	"testing"

	"strdict/internal/dict"
)

func TestAllCorporaValidDictionaryInput(t *testing.T) {
	for _, name := range Names() {
		strs := Generate(name, 2000, 1)
		if len(strs) < 1000 {
			t.Errorf("%s: only %d distinct strings", name, len(strs))
		}
		if !sort.StringsAreSorted(strs) {
			t.Errorf("%s: not sorted", name)
		}
		if err := dict.Validate(strs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := Generate(name, 500, 7)
		b := Generate(name, 500, 7)
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic length", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: differs at %d: %q vs %q", name, i, a[i], b[i])
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := Generate("rand1", 100, 1)
	b := Generate("rand1", 100, 2)
	same := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestFixedLengthCorpora(t *testing.T) {
	// asc, hash, mat and rand1 are the constant-length data sets the paper's
	// column bc and array fixed formats exploit.
	for _, name := range []string{"asc", "hash", "mat", "rand1"} {
		strs := Generate(name, 500, 3)
		want := len(strs[0])
		for _, s := range strs {
			if len(s) != want {
				t.Errorf("%s: length %d != %d for %q", name, len(s), want, s)
			}
		}
	}
}

func TestAscIsNumericAndAscending(t *testing.T) {
	strs := Generate("asc", 300, 5)
	for _, s := range strs {
		if len(s) != 18 {
			t.Fatalf("asc length %d", len(s))
		}
		for _, c := range s {
			if c < '0' || c > '9' {
				t.Fatalf("asc non-digit in %q", s)
			}
		}
	}
}

func TestHashSharedPrefix(t *testing.T) {
	strs := Generate("hash", 200, 5)
	for _, s := range strs {
		if !strings.HasPrefix(s, "{SSHA256}") {
			t.Fatalf("hash without algorithm prefix: %q", s)
		}
	}
}

func TestURLSharedPrefix(t *testing.T) {
	strs := Generate("url", 200, 5)
	for _, s := range strs {
		if !strings.HasPrefix(s, "https://") {
			t.Fatalf("url without scheme: %q", s)
		}
	}
}

func TestSrcRedundancy(t *testing.T) {
	// Source lines must be highly compressible: distinct characters few,
	// many repeated tokens.
	strs := Generate("src", 1000, 5)
	chars := map[byte]bool{}
	for _, s := range strs {
		for i := 0; i < len(s); i++ {
			chars[s[i]] = true
		}
	}
	if len(chars) > 90 {
		t.Errorf("src alphabet suspiciously large: %d", len(chars))
	}
}

func TestAllReturnsEveryCorpus(t *testing.T) {
	m := All(100, 1)
	if len(m) != len(Names()) {
		t.Fatalf("All returned %d corpora", len(m))
	}
	for _, name := range Names() {
		if len(m[name]) == 0 {
			t.Errorf("missing corpus %s", name)
		}
	}
}

func TestUnknownCorpusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", 10, 1)
}

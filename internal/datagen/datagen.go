// Package datagen synthesizes the nine evaluation corpora of Section 3.4.
//
// The paper's originals (an English word list, Google Books 1-grams, salted
// password hashes, customer material numbers, customer source code, URL
// templates) are proprietary or unavailable offline, so each generator
// produces a statistically similar stand-in: same length regime, character
// set, prefix-sharing structure and redundancy profile. Those statistics are
// exactly what the dictionary formats are sensitive to, so the qualitative
// comparison of the formats carries over (see DESIGN.md, Substitutions).
//
// All generators are deterministic for a given seed and return the strictly
// ascending, duplicate-free string set a dictionary build expects.
package datagen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Names lists the corpora in the paper's order.
func Names() []string {
	return []string{"asc", "engl", "1gram", "hash", "mat", "rand1", "rand2", "src", "url"}
}

// Generate produces the named corpus with about n distinct strings.
func Generate(name string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32))
	var gen func(rng *rand.Rand, n int) []string
	switch name {
	case "asc":
		gen = genAsc
	case "engl":
		gen = genEngl
	case "1gram":
		gen = gen1gram
	case "hash":
		gen = genHash
	case "mat":
		gen = genMat
	case "rand1":
		gen = genRand1
	case "rand2":
		gen = genRand2
	case "src":
		gen = genSrc
	case "url":
		gen = genURL
	default:
		panic(fmt.Sprintf("datagen: unknown corpus %q", name))
	}
	return sortUnique(gen(rng, n))
}

// All generates every corpus at the given size.
func All(n int, seed int64) map[string][]string {
	out := make(map[string][]string, len(Names()))
	for _, name := range Names() {
		out[name] = Generate(name, n, seed)
	}
	return out
}

func sortUnique(strs []string) []string {
	sort.Strings(strs)
	out := strs[:0]
	for i, s := range strs {
		if i == 0 || strs[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// genAsc: ascending decimal numbers of length 18, padded with zeros.
func genAsc(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	v := int64(rng.Intn(1000))
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%018d", v))
		v += int64(1 + rng.Intn(5))
	}
	return out
}

// English morphology pools shared by engl and 1gram.
var (
	englOnsets  = []string{"b", "bl", "br", "c", "ch", "cl", "cr", "d", "dr", "f", "fl", "fr", "g", "gl", "gr", "h", "j", "k", "l", "m", "n", "p", "ph", "pl", "pr", "qu", "r", "s", "sc", "sh", "sl", "sp", "st", "str", "t", "th", "tr", "v", "w", "wh", ""}
	englNuclei  = []string{"a", "ai", "au", "e", "ea", "ee", "ei", "i", "ie", "o", "oa", "oo", "ou", "u", "y"}
	englCodas   = []string{"", "b", "ck", "d", "ft", "g", "l", "ll", "m", "mp", "n", "nd", "ng", "nk", "nt", "p", "r", "rd", "rk", "rm", "rn", "rt", "s", "ss", "st", "t", "tch", "x"}
	englSuffix  = []string{"", "", "", "s", "ed", "ing", "er", "est", "ly", "ness", "ment", "tion", "able", "ish", "ful"}
	englPrefix  = []string{"", "", "", "", "un", "re", "de", "in", "over", "under", "out", "pre", "mis", "non"}
	gramSymbols = []string{"", "", "", "", "", "'s", "'t", "-", "."}
)

func englWord(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(englPrefix[rng.Intn(len(englPrefix))])
	syllables := 1 + rng.Intn(3)
	for s := 0; s < syllables; s++ {
		sb.WriteString(englOnsets[rng.Intn(len(englOnsets))])
		sb.WriteString(englNuclei[rng.Intn(len(englNuclei))])
		sb.WriteString(englCodas[rng.Intn(len(englCodas))])
	}
	sb.WriteString(englSuffix[rng.Intn(len(englSuffix))])
	return sb.String()
}

// genEngl: a list of English-like words, lowercase.
func genEngl(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n+n/4)
	for len(out) < n+n/4 {
		out = append(out, englWord(rng))
	}
	return out
}

// gen1gram: tokens like the Google Books 1-gram set — word forms with mixed
// case, occasional digits, apostrophes and hyphens.
func gen1gram(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n+n/4)
	for len(out) < n+n/4 {
		w := englWord(rng)
		switch rng.Intn(10) {
		case 0:
			w = strings.ToUpper(w[:1]) + w[1:]
		case 1:
			w = strings.ToUpper(w)
		case 2:
			w = fmt.Sprintf("%d%s", 1500+rng.Intn(600), gramSymbols[rng.Intn(len(gramSymbols))])
		}
		w += gramSymbols[rng.Intn(len(gramSymbols))]
		out = append(out, w)
	}
	return out
}

// genHash: salted SHA hashes of passwords, all starting with the same prefix
// describing the hash algorithm (constant prefix + fixed-length hex digest).
func genHash(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	var seed [8]byte
	for i := 0; i < n; i++ {
		rng.Read(seed[:])
		sum := sha256.Sum256(seed[:])
		out = append(out, "{SSHA256}"+hex.EncodeToString(sum[:20]))
	}
	return out
}

// genMat: material numbers as in an ERP customer system — fixed length 18,
// a small set of alphabetic type prefixes, a plant segment, and a serial.
func genMat(rng *rand.Rand, n int) []string {
	types := []string{"RAW", "FIN", "SEM", "PKG", "TRD"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%s%02d%012dA",
			types[rng.Intn(len(types))], rng.Intn(40), rng.Int63n(4_000_000_000)))
	}
	return out
}

// genRand1: strings of length 10, containing random printable characters.
func genRand1(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	b := make([]byte, 10)
	for i := 0; i < n; i++ {
		for j := range b {
			b[j] = byte(33 + rng.Intn(94))
		}
		out = append(out, string(b))
	}
	return out
}

// genRand2: strings of variable length, containing random characters.
func genRand2(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		b := make([]byte, 1+rng.Intn(30))
		for j := range b {
			b[j] = byte(33 + rng.Intn(94))
		}
		out = append(out, string(b))
	}
	return out
}

// Source-line grammar pools.
var (
	srcIndent = []string{"", "    ", "        ", "            ", "\t", "\t\t"}
	srcTypes  = []string{"int", "long", "double", "char*", "size_t", "uint32_t", "bool", "void"}
	srcIdents = []string{"i", "j", "n", "len", "count", "result", "buffer", "offset", "index", "value", "row", "col", "tmp", "ptr", "state", "flags"}
	srcCalls  = []string{"memcpy", "memset", "strlen", "malloc", "free", "printf", "assert", "push_back", "resize", "find", "insert", "emplace"}
	srcStmts  = []string{
		"%sif (%s == NULL) return -1;",
		"%sfor (%s %s = 0; %s < %s; ++%s) {",
		"%s%s %s = %s(%s);",
		"%sreturn %s;",
		"%s%s += %s;",
		"%s} else {",
		"%s}",
		"%s// TODO: handle %s overflow in %s",
		"%s%s(%s, 0, sizeof(%s));",
		"%sswitch (%s) {",
		"%scase %s: break;",
	}
)

// genSrc: source code lines from a customer system — token grammar with a
// small vocabulary and heavy redundancy across lines.
func genSrc(rng *rand.Rand, n int) []string {
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	out := make([]string, 0, n+n/2)
	for len(out) < n+n/2 {
		tpl := pick(srcStmts)
		args := []interface{}{pick(srcIndent)}
		for strings.Count(tpl, "%s") > len(args) {
			switch rng.Intn(3) {
			case 0:
				args = append(args, pick(srcTypes))
			case 1:
				args = append(args, pick(srcIdents))
			default:
				args = append(args, pick(srcCalls))
			}
		}
		out = append(out, fmt.Sprintf(tpl, args...))
	}
	return out
}

// URL pools.
var (
	urlHosts = []string{"shop.example.com", "api.example.com", "www.corp-intranet.example", "cdn.assets.example.net"}
	urlPaths = []string{"catalog", "items", "users", "orders", "search", "reports", "admin", "v2", "static", "img", "docs"}
	urlParms = []string{"id", "page", "sort", "lang", "filter", "ref", "session"}
)

// genURL: URL templates extracted from a test system — long shared prefixes,
// limited vocabulary, variable tails.
func genURL(rng *rand.Rand, n int) []string {
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	out := make([]string, 0, n+n/4)
	for len(out) < n+n/4 {
		var sb strings.Builder
		sb.WriteString("https://")
		sb.WriteString(pick(urlHosts))
		segs := 1 + rng.Intn(4)
		for s := 0; s < segs; s++ {
			sb.WriteByte('/')
			sb.WriteString(pick(urlPaths))
		}
		if rng.Intn(2) == 0 {
			sb.WriteByte('/')
			fmt.Fprintf(&sb, "%06d", rng.Intn(1_000_000))
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, "?%s={%s}&%s=%d",
				pick(urlParms), pick(urlParms), pick(urlParms), rng.Intn(100))
		}
		out = append(out, sb.String())
	}
	return out
}

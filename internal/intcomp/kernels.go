package intcomp

// Predicate kernels over compressed vectors: equality and range scans that
// emit matching row indices without fully unpacking the vector. Each vector
// kind gets the cheapest strategy its representation permits — word-at-a-time
// SWAR comparison for bit-packed data whose width tiles 64-bit words, whole
// runs at a time for RLE, per-frame base rebasing for FOR, and per-part
// recursion for concatenations — with a batch-unpack-then-compare fallback
// for everything else. The scalar Get-per-element forms are kept as the
// differential-testing oracle and the benchmark baseline.

// kernelChunk is the stack-buffer size of the generic unpack-then-compare
// fallback paths.
const kernelChunk = 256

// ScanEq appends the index of every element in [start, start+n) equal to
// code to dst, in ascending order, and returns the extended slice.
// Out-of-range [start, start+n) panics.
func ScanEq(v Vector, code uint64, start, n int, dst []int) []int {
	checkVectorRange(v.Len(), start, n)
	return scanEq(v, code, start, n, 0, dst)
}

// ScanRange appends the index of every element in [start, start+n) with
// lo <= value < hi to dst, in ascending order, and returns the extended
// slice. Out-of-range [start, start+n) panics.
func ScanRange(v Vector, lo, hi uint64, start, n int, dst []int) []int {
	checkVectorRange(v.Len(), start, n)
	if lo >= hi {
		return dst
	}
	return scanRange(v, lo, hi, start, n, 0, dst)
}

// CountEq returns the number of elements in [start, start+n) equal to code.
// Out-of-range [start, start+n) panics.
func CountEq(v Vector, code uint64, start, n int) int {
	checkVectorRange(v.Len(), start, n)
	return countEq(v, code, start, n)
}

// scanEq dispatches on the concrete vector kind. Emitted indices are
// base-relative (base + elementIndex) so concat parts and FOR frames can
// translate positions without rewriting their children's output.
func scanEq(v Vector, code uint64, start, n int, base int, dst []int) []int {
	if n == 0 {
		return dst
	}
	switch v := v.(type) {
	case packedVector:
		return v.pa.AppendMatchEq(dst, base, start, n, code)
	case rleVector:
		// Whole runs match or don't: emit each matching run's clipped
		// interval without touching per-element data.
		pos, end := start, start+n
		for r := v.runAt(start); pos < end; r++ {
			re := v.runEnd(r)
			if re > end {
				re = end
			}
			if v.values.Get(r) == code {
				for ; pos < re; pos++ {
					dst = append(dst, base+pos)
				}
			} else {
				pos = re
			}
		}
		return dst
	case *forVector:
		for n > 0 {
			f := start / v.frameSize
			fo := start % v.frameSize
			k := v.frameLen(f) - fo
			if k > n {
				k = n
			}
			fb := v.bases.Get(f)
			switch {
			case code < fb:
				// Below the frame minimum: no element can match.
			case v.widths[f] == 0:
				if code == fb { // constant frame: all or nothing
					for i := 0; i < k; i++ {
						dst = append(dst, base+start+i)
					}
				}
			default:
				// AppendMatchEq rejects offsets wider than the frame itself.
				dst = v.offsets[f].AppendMatchEq(dst, base+f*v.frameSize, fo, k, code-fb)
			}
			start += k
			n -= k
		}
		return dst
	case *concatVector:
		pos, end := start, start+n
		for p := v.partAt(start); pos < end; p++ {
			pe := v.partEnd(p)
			if pe > end {
				pe = end
			}
			dst = scanEq(v.parts[p], code, pos-v.offs[p], pe-pos, base+v.offs[p], dst)
			pos = pe
		}
		return dst
	default:
		return scanEqGeneric(v, code, start, n, base, dst)
	}
}

// scanEqGeneric is the batch-unpack-then-compare fallback for vector kinds
// without a specialized kernel.
func scanEqGeneric(v Vector, code uint64, start, n int, base int, dst []int) []int {
	var buf [kernelChunk]uint64
	for o := 0; o < n; {
		k := n - o
		if k > kernelChunk {
			k = kernelChunk
		}
		tmp := v.AppendRange(buf[:0], start+o, k)
		for j, x := range tmp {
			if x == code {
				dst = append(dst, base+start+o+j)
			}
		}
		o += k
	}
	return dst
}

// scanRange mirrors scanEq for half-open value intervals [lo, hi).
func scanRange(v Vector, lo, hi uint64, start, n int, base int, dst []int) []int {
	if n == 0 {
		return dst
	}
	switch v := v.(type) {
	case packedVector:
		return v.pa.AppendMatchRange(dst, base, start, n, lo, hi)
	case rleVector:
		pos, end := start, start+n
		for r := v.runAt(start); pos < end; r++ {
			re := v.runEnd(r)
			if re > end {
				re = end
			}
			if x := v.values.Get(r); lo <= x && x < hi {
				for ; pos < re; pos++ {
					dst = append(dst, base+pos)
				}
			} else {
				pos = re
			}
		}
		return dst
	case *forVector:
		for n > 0 {
			f := start / v.frameSize
			fo := start % v.frameSize
			k := v.frameLen(f) - fo
			if k > n {
				k = n
			}
			fb := v.bases.Get(f)
			switch {
			case hi <= fb:
				// Every frame value is >= fb, outside [lo, hi).
			case v.widths[f] == 0:
				if lo <= fb { // constant frame; hi > fb already known
					for i := 0; i < k; i++ {
						dst = append(dst, base+start+i)
					}
				}
			default:
				olo := uint64(0)
				if lo > fb {
					olo = lo - fb
				}
				dst = v.offsets[f].AppendMatchRange(dst, base+f*v.frameSize, fo, k, olo, hi-fb)
			}
			start += k
			n -= k
		}
		return dst
	case *concatVector:
		pos, end := start, start+n
		for p := v.partAt(start); pos < end; p++ {
			pe := v.partEnd(p)
			if pe > end {
				pe = end
			}
			dst = scanRange(v.parts[p], lo, hi, pos-v.offs[p], pe-pos, base+v.offs[p], dst)
			pos = pe
		}
		return dst
	default:
		var buf [kernelChunk]uint64
		for o := 0; o < n; {
			k := n - o
			if k > kernelChunk {
				k = kernelChunk
			}
			tmp := v.AppendRange(buf[:0], start+o, k)
			for j, x := range tmp {
				if lo <= x && x < hi {
					dst = append(dst, base+start+o+j)
				}
			}
			o += k
		}
		return dst
	}
}

// countEq mirrors scanEq but only counts, letting the packed path use one
// popcount per word instead of iterating match bits.
func countEq(v Vector, code uint64, start, n int) int {
	if n == 0 {
		return 0
	}
	switch v := v.(type) {
	case packedVector:
		return v.pa.CountEq(start, n, code)
	case rleVector:
		count := 0
		pos, end := start, start+n
		for r := v.runAt(start); pos < end; r++ {
			re := v.runEnd(r)
			if re > end {
				re = end
			}
			if v.values.Get(r) == code {
				count += re - pos
			}
			pos = re
		}
		return count
	case *forVector:
		count := 0
		for n > 0 {
			f := start / v.frameSize
			fo := start % v.frameSize
			k := v.frameLen(f) - fo
			if k > n {
				k = n
			}
			fb := v.bases.Get(f)
			switch {
			case code < fb:
			case v.widths[f] == 0:
				if code == fb {
					count += k
				}
			default:
				count += v.offsets[f].CountEq(fo, k, code-fb)
			}
			start += k
			n -= k
		}
		return count
	case *concatVector:
		count := 0
		pos, end := start, start+n
		for p := v.partAt(start); pos < end; p++ {
			pe := v.partEnd(p)
			if pe > end {
				pe = end
			}
			count += countEq(v.parts[p], code, pos-v.offs[p], pe-pos)
			pos = pe
		}
		return count
	default:
		var buf [kernelChunk]uint64
		count := 0
		for o := 0; o < n; {
			k := n - o
			if k > kernelChunk {
				k = kernelChunk
			}
			tmp := v.AppendRange(buf[:0], start+o, k)
			for _, x := range tmp {
				if x == code {
					count++
				}
			}
			o += k
		}
		return count
	}
}

// MinMax returns the minimum and maximum element of [start, start+n).
// n must be positive; out-of-range panics. It backs zone-map construction
// when only the compressed vector is available (crash recovery).
func MinMax(v Vector, start, n int) (min, max uint64) {
	checkVectorRange(v.Len(), start, n)
	if n <= 0 {
		panic("intcomp: MinMax of empty range")
	}
	var buf [kernelChunk]uint64
	first := true
	for o := 0; o < n; {
		k := n - o
		if k > kernelChunk {
			k = kernelChunk
		}
		tmp := v.AppendRange(buf[:0], start+o, k)
		for _, x := range tmp {
			if first {
				min, max, first = x, x, false
				continue
			}
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		o += k
	}
	return min, max
}

// ScanEqScalar is the per-element Get baseline for ScanEq: the pre-kernel
// read path, retained as the differential-testing oracle and the benchmark
// baseline the vectorized path is gated against.
func ScanEqScalar(v Vector, code uint64, start, n int, dst []int) []int {
	checkVectorRange(v.Len(), start, n)
	for i := start; i < start+n; i++ {
		if v.Get(i) == code {
			dst = append(dst, i)
		}
	}
	return dst
}

// ScanRangeScalar is the per-element Get baseline for ScanRange.
func ScanRangeScalar(v Vector, lo, hi uint64, start, n int, dst []int) []int {
	checkVectorRange(v.Len(), start, n)
	for i := start; i < start+n; i++ {
		if x := v.Get(i); lo <= x && x < hi {
			dst = append(dst, i)
		}
	}
	return dst
}

// Package intcomp provides lightweight integer compression for the code
// vectors produced by domain encoding. The paper notes that "the resulting
// list of codes can be compressed further using integer compression
// schemes" (citing Abadi et al. and Lemke et al.); this package implements
// the two schemes that matter for in-memory column stores with random
// access:
//
//   - bit packing (null suppression): every code takes exactly
//     ceil(log2(cardinality)) bits — O(1) random access;
//   - run-length encoding over the packed runs — O(log runs) random access,
//     far smaller on sorted or clustered columns (flags, statuses, dates);
//   - frame-of-reference packing — per-frame base + narrow offsets, O(1)
//     random access, strong on nearly-monotonic sequences such as key
//     columns loaded in order.
//
// PackAuto picks whichever is smallest for the column at hand, mirroring
// how the engine picks per-column vector formats.
package intcomp

import (
	"strdict/internal/bits"
)

// Vector is a read-only compressed sequence of unsigned integers.
type Vector interface {
	// Get returns element i.
	Get(i int) uint64
	// Len returns the number of elements.
	Len() int
	// Bytes returns the in-memory footprint.
	Bytes() uint64
}

// packedVector is fixed-width bit packing.
type packedVector struct {
	pa *bits.PackedArray
}

// PackBits bit-packs values at the minimum width for their maximum.
func PackBits(values []uint64) Vector {
	return packedVector{bits.PackSlice(values)}
}

func (v packedVector) Get(i int) uint64 { return v.pa.Get(i) }
func (v packedVector) Len() int         { return v.pa.Len() }
func (v packedVector) Bytes() uint64    { return v.pa.Bytes() + 16 }

// rleVector stores (start, value) per run; Get binary-searches the starts.
type rleVector struct {
	n      int
	starts *bits.PackedArray // run start positions, ascending
	values *bits.PackedArray // run values
}

// PackRLE run-length encodes values.
func PackRLE(values []uint64) Vector {
	var starts, vals []uint64
	for i, v := range values {
		if i == 0 || values[i-1] != v {
			starts = append(starts, uint64(i))
			vals = append(vals, v)
		}
	}
	return rleVector{
		n:      len(values),
		starts: bits.PackSlice(starts),
		values: bits.PackSlice(vals),
	}
}

func (v rleVector) Len() int { return v.n }

func (v rleVector) Get(i int) uint64 {
	// Find the last run starting at or before i.
	lo, hi := 0, v.starts.Len()-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if v.starts.Get(mid) <= uint64(i) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return v.values.Get(lo)
}

func (v rleVector) Bytes() uint64 {
	return v.starts.Bytes() + v.values.Bytes() + 32
}

// PackAuto returns the smallest of bit packing, run-length encoding and
// frame-of-reference packing for the given values. Empty input yields an
// empty bit-packed vector.
func PackAuto(values []uint64) Vector {
	best := PackBits(values)
	if len(values) == 0 {
		return best
	}
	for _, alt := range []Vector{PackRLE(values), PackFOR(values)} {
		if alt.Bytes() < best.Bytes() {
			best = alt
		}
	}
	return best
}

// concatVector presents a sequence of part vectors as one logical vector.
// It exists for partial merges: when a delta fold introduces no new
// dictionary values, the main code vector is unchanged and the folded rows'
// codes can be appended as a new part instead of re-packing every main row.
// Get binary-searches the part offsets (O(log parts)); full merges rebuild a
// flat vector, so chains stay short between them.
type concatVector struct {
	n     int
	offs  []int // offs[i] = first logical index of parts[i]
	parts []Vector
}

// maxConcatParts bounds chain growth between flat rebuilds: concatenating
// onto a vector that already has this many parts flattens the result.
const maxConcatParts = 64

// Concat returns a vector presenting a followed by b. Nested concatenations
// are flattened into one part list, and chains longer than maxConcatParts
// are collapsed into a flat bit-packed vector, so lookup cost stays
// O(log maxConcatParts) no matter how many partial folds ran since the last
// full rebuild.
func Concat(a, b Vector) Vector {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	var parts []Vector
	for _, v := range []Vector{a, b} {
		if cv, ok := v.(*concatVector); ok {
			parts = append(parts, cv.parts...)
		} else {
			parts = append(parts, v)
		}
	}
	if len(parts) > maxConcatParts {
		flat := make([]uint64, 0, a.Len()+b.Len())
		for _, p := range parts {
			for i := 0; i < p.Len(); i++ {
				flat = append(flat, p.Get(i))
			}
		}
		return PackAuto(flat)
	}
	cv := &concatVector{offs: make([]int, len(parts)), parts: parts}
	for i, p := range parts {
		cv.offs[i] = cv.n
		cv.n += p.Len()
	}
	return cv
}

func (v *concatVector) Len() int { return v.n }

func (v *concatVector) Get(i int) uint64 {
	// Find the last part starting at or before i.
	lo, hi := 0, len(v.offs)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if v.offs[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return v.parts[lo].Get(i - v.offs[lo])
}

func (v *concatVector) Bytes() uint64 {
	b := uint64(len(v.offs))*8 + 48
	for _, p := range v.parts {
		b += p.Bytes()
	}
	return b
}

// forVector is frame-of-reference delta packing for nearly-monotonic
// sequences (key columns loaded in order): per fixed-size frame it stores a
// base value and bit-packed offsets from that base — O(1) random access
// with far fewer bits than global packing when values are clustered.
type forVector struct {
	n         int
	frameSize int
	bases     *bits.PackedArray // per frame: minimum value
	widths    []uint8           // per frame: offset width (0 = constant frame)
	offsets   []*bits.PackedArray
}

// forFrameSize balances header overhead against adaptivity.
const forFrameSize = 1024

// PackFOR frame-of-reference packs values.
func PackFOR(values []uint64) Vector {
	v := &forVector{n: len(values), frameSize: forFrameSize}
	nframes := (len(values) + forFrameSize - 1) / forFrameSize
	bases := make([]uint64, nframes)
	for f := 0; f < nframes; f++ {
		lo := f * forFrameSize
		hi := lo + forFrameSize
		if hi > len(values) {
			hi = len(values)
		}
		frame := values[lo:hi]
		min, max := frame[0], frame[0]
		for _, x := range frame[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		bases[f] = min
		if max == min {
			v.widths = append(v.widths, 0)
			v.offsets = append(v.offsets, nil)
			continue
		}
		w := bits.Width(max - min)
		v.widths = append(v.widths, uint8(w))
		pa := bits.NewPackedArray(len(frame), w)
		for i, x := range frame {
			pa.Set(i, x-min)
		}
		v.offsets = append(v.offsets, pa)
	}
	v.bases = bits.PackSlice(bases)
	return v
}

func (v *forVector) Len() int { return v.n }

func (v *forVector) Get(i int) uint64 {
	f := i / v.frameSize
	base := v.bases.Get(f)
	if v.widths[f] == 0 {
		return base
	}
	return base + v.offsets[f].Get(i%v.frameSize)
}

func (v *forVector) Bytes() uint64 {
	b := v.bases.Bytes() + uint64(len(v.widths)) + 48
	for _, pa := range v.offsets {
		if pa != nil {
			b += pa.Bytes() + 16
		}
	}
	return b
}

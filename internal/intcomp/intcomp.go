// Package intcomp provides lightweight integer compression for the code
// vectors produced by domain encoding. The paper notes that "the resulting
// list of codes can be compressed further using integer compression
// schemes" (citing Abadi et al. and Lemke et al.); this package implements
// the two schemes that matter for in-memory column stores with random
// access:
//
//   - bit packing (null suppression): every code takes exactly
//     ceil(log2(cardinality)) bits — O(1) random access;
//   - run-length encoding over the packed runs — O(log runs) random access,
//     far smaller on sorted or clustered columns (flags, statuses, dates);
//   - frame-of-reference packing — per-frame base + narrow offsets, O(1)
//     random access, strong on nearly-monotonic sequences such as key
//     columns loaded in order.
//
// PackAuto picks whichever is smallest for the column at hand, mirroring
// how the engine picks per-column vector formats.
package intcomp

import (
	"strdict/internal/bits"
)

// Vector is a read-only compressed sequence of unsigned integers.
type Vector interface {
	// Get returns element i.
	Get(i int) uint64
	// Len returns the number of elements.
	Len() int
	// Bytes returns the in-memory footprint.
	Bytes() uint64
	// AppendRange appends elements [start, start+n) to dst and returns the
	// extended slice — the bulk-decode contract of the vectorized read
	// path. Implementations amortize their per-element access state (word
	// cursors for bit packing, run cursors for RLE, frame bases for FOR,
	// part dispatch for concatenations) across the whole range, so batch
	// unpacking 64-256 elements per call runs several times faster than a
	// Get-per-element loop. Out-of-range [start, start+n) panics.
	AppendRange(dst []uint64, start, n int) []uint64
}

// packedVector is fixed-width bit packing.
type packedVector struct {
	pa *bits.PackedArray
}

// PackBits bit-packs values at the minimum width for their maximum.
func PackBits(values []uint64) Vector {
	return packedVector{bits.PackSlice(values)}
}

func (v packedVector) Get(i int) uint64 { return v.pa.Get(i) }
func (v packedVector) Len() int         { return v.pa.Len() }
func (v packedVector) Bytes() uint64    { return v.pa.Bytes() + 16 }

func (v packedVector) AppendRange(dst []uint64, start, n int) []uint64 {
	return v.pa.AppendRange(dst, start, n)
}

// rleVector stores (start, value) per run; Get binary-searches the starts.
type rleVector struct {
	n      int
	starts *bits.PackedArray // run start positions, ascending
	values *bits.PackedArray // run values
}

// PackRLE run-length encodes values.
func PackRLE(values []uint64) Vector {
	var starts, vals []uint64
	for i, v := range values {
		if i == 0 || values[i-1] != v {
			starts = append(starts, uint64(i))
			vals = append(vals, v)
		}
	}
	return rleVector{
		n:      len(values),
		starts: bits.PackSlice(starts),
		values: bits.PackSlice(vals),
	}
}

func (v rleVector) Len() int { return v.n }

// runAt returns the index of the run containing element i.
func (v rleVector) runAt(i int) int {
	// Find the last run starting at or before i.
	lo, hi := 0, v.starts.Len()-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if v.starts.Get(mid) <= uint64(i) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// runEnd returns the exclusive end position of run r.
func (v rleVector) runEnd(r int) int {
	if r+1 < v.starts.Len() {
		return int(v.starts.Get(r + 1))
	}
	return v.n
}

func (v rleVector) Get(i int) uint64 {
	return v.values.Get(v.runAt(i))
}

func (v rleVector) AppendRange(dst []uint64, start, n int) []uint64 {
	checkVectorRange(v.n, start, n)
	if n == 0 {
		return dst
	}
	// One binary search for the first run, then a linear run cursor: each
	// element costs a copy instead of the O(log runs) search Get re-runs.
	pos, end := start, start+n
	for r := v.runAt(start); pos < end; r++ {
		re := v.runEnd(r)
		if re > end {
			re = end
		}
		val := v.values.Get(r)
		for ; pos < re; pos++ {
			dst = append(dst, val)
		}
	}
	return dst
}

func (v rleVector) Bytes() uint64 {
	return v.starts.Bytes() + v.values.Bytes() + 32
}

// PackAuto returns the smallest of bit packing, run-length encoding and
// frame-of-reference packing for the given values. Empty input yields an
// empty bit-packed vector.
//
// It runs on every segment seal and merge, so it does not materialize the
// three candidates: one pass over the input collects the run count, the
// global min/max and the per-frame min/max, from which each candidate's
// exact footprint follows, and only the winner is built. Ties resolve in
// the order bits, RLE, FOR — the same preference the build-all-and-compare
// implementation had.
func PackAuto(values []uint64) Vector {
	n := len(values)
	if n == 0 {
		return PackBits(values)
	}

	nframes := (n + forFrameSize - 1) / forFrameSize
	frameMin := make([]uint64, nframes)
	frameMax := make([]uint64, nframes)
	runs := 1
	lastRunStart := 0
	max := values[0]
	for f := 0; f < nframes; f++ {
		lo := f * forFrameSize
		hi := lo + forFrameSize
		if hi > n {
			hi = n
		}
		fmin, fmax := values[lo], values[lo]
		if lo > 0 && values[lo-1] != values[lo] {
			runs++
			lastRunStart = lo
		}
		for i := lo + 1; i < hi; i++ {
			v := values[i]
			if v < fmin {
				fmin = v
			}
			if v > fmax {
				fmax = v
			}
			if values[i-1] != v {
				runs++
				lastRunStart = i
			}
		}
		frameMin[f], frameMax[f] = fmin, fmax
		if fmax > max {
			max = fmax
		}
	}

	// Candidate footprints, mirroring each vector kind's Bytes() exactly.
	// The maximum run value equals the global maximum: the largest element
	// is the value of whichever run holds it.
	bitsSize := packedArrayBytes(n, bits.Width(max)) + 16
	rleSize := packedArrayBytes(runs, bits.Width(uint64(lastRunStart))) +
		packedArrayBytes(runs, bits.Width(max)) + 32
	var maxBase uint64
	for _, b := range frameMin {
		if b > maxBase {
			maxBase = b
		}
	}
	forSize := packedArrayBytes(nframes, bits.Width(maxBase)) + uint64(nframes) + 48
	for f := 0; f < nframes; f++ {
		if frameMax[f] == frameMin[f] {
			continue
		}
		flen := forFrameSize
		if (f+1)*forFrameSize > n {
			flen = n - f*forFrameSize
		}
		forSize += packedArrayBytes(flen, bits.Width(frameMax[f]-frameMin[f])) + 16
	}

	switch {
	case rleSize < bitsSize && rleSize <= forSize:
		return PackRLE(values)
	case forSize < bitsSize && forSize < rleSize:
		return PackFOR(values)
	default:
		return PackBits(values)
	}
}

// packedArrayBytes is the footprint bits.PackSlice(values).Bytes() reports
// for n entries of the given width.
func packedArrayBytes(n int, width uint) uint64 {
	return (uint64(n)*uint64(width) + 63) / 64 * 8
}

// concatVector presents a sequence of part vectors as one logical vector.
// It exists for partial merges: when a delta fold introduces no new
// dictionary values, the main code vector is unchanged and the folded rows'
// codes can be appended as a new part instead of re-packing every main row.
// Get binary-searches the part offsets (O(log parts)); full merges rebuild a
// flat vector, so chains stay short between them.
type concatVector struct {
	n     int
	offs  []int // offs[i] = first logical index of parts[i]
	parts []Vector
}

// maxConcatParts bounds chain growth between flat rebuilds: concatenating
// onto a vector that already has this many parts flattens the result.
const maxConcatParts = 64

// Concat returns a vector presenting a followed by b. Nested concatenations
// are flattened into one part list, and chains longer than maxConcatParts
// are collapsed into a flat bit-packed vector, so lookup cost stays
// O(log maxConcatParts) no matter how many partial folds ran since the last
// full rebuild.
func Concat(a, b Vector) Vector {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	var parts []Vector
	for _, v := range []Vector{a, b} {
		if cv, ok := v.(*concatVector); ok {
			parts = append(parts, cv.parts...)
		} else {
			parts = append(parts, v)
		}
	}
	if len(parts) > maxConcatParts {
		flat := make([]uint64, 0, a.Len()+b.Len())
		for _, p := range parts {
			for i := 0; i < p.Len(); i++ {
				flat = append(flat, p.Get(i))
			}
		}
		return PackAuto(flat)
	}
	cv := &concatVector{offs: make([]int, len(parts)), parts: parts}
	for i, p := range parts {
		cv.offs[i] = cv.n
		cv.n += p.Len()
	}
	return cv
}

func (v *concatVector) Len() int { return v.n }

// partAt returns the index of the part containing logical element i.
func (v *concatVector) partAt(i int) int {
	// Find the last part starting at or before i.
	lo, hi := 0, len(v.offs)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if v.offs[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// partEnd returns the exclusive logical end position of part p.
func (v *concatVector) partEnd(p int) int {
	if p+1 < len(v.offs) {
		return v.offs[p+1]
	}
	return v.n
}

func (v *concatVector) Get(i int) uint64 {
	p := v.partAt(i)
	return v.parts[p].Get(i - v.offs[p])
}

func (v *concatVector) AppendRange(dst []uint64, start, n int) []uint64 {
	checkVectorRange(v.n, start, n)
	pos, end := start, start+n
	for p := v.partAt(start); pos < end; p++ {
		pe := v.partEnd(p)
		if pe > end {
			pe = end
		}
		dst = v.parts[p].AppendRange(dst, pos-v.offs[p], pe-pos)
		pos = pe
	}
	return dst
}

func (v *concatVector) Bytes() uint64 {
	b := uint64(len(v.offs))*8 + 48
	for _, p := range v.parts {
		b += p.Bytes()
	}
	return b
}

// forVector is frame-of-reference delta packing for nearly-monotonic
// sequences (key columns loaded in order): per fixed-size frame it stores a
// base value and bit-packed offsets from that base — O(1) random access
// with far fewer bits than global packing when values are clustered.
type forVector struct {
	n         int
	frameSize int
	bases     *bits.PackedArray // per frame: minimum value
	widths    []uint8           // per frame: offset width (0 = constant frame)
	offsets   []*bits.PackedArray
}

// forFrameSize balances header overhead against adaptivity.
const forFrameSize = 1024

// PackFOR frame-of-reference packs values.
func PackFOR(values []uint64) Vector {
	v := &forVector{n: len(values), frameSize: forFrameSize}
	nframes := (len(values) + forFrameSize - 1) / forFrameSize
	bases := make([]uint64, nframes)
	for f := 0; f < nframes; f++ {
		lo := f * forFrameSize
		hi := lo + forFrameSize
		if hi > len(values) {
			hi = len(values)
		}
		frame := values[lo:hi]
		min, max := frame[0], frame[0]
		for _, x := range frame[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		bases[f] = min
		if max == min {
			v.widths = append(v.widths, 0)
			v.offsets = append(v.offsets, nil)
			continue
		}
		w := bits.Width(max - min)
		v.widths = append(v.widths, uint8(w))
		pa := bits.NewPackedArray(len(frame), w)
		for i, x := range frame {
			pa.Set(i, x-min)
		}
		v.offsets = append(v.offsets, pa)
	}
	v.bases = bits.PackSlice(bases)
	return v
}

func (v *forVector) Len() int { return v.n }

func (v *forVector) Get(i int) uint64 {
	f := i / v.frameSize
	base := v.bases.Get(f)
	if v.widths[f] == 0 {
		return base
	}
	return base + v.offsets[f].Get(i%v.frameSize)
}

// frameLen returns the number of elements in frame f (the last frame may be
// short).
func (v *forVector) frameLen(f int) int {
	if (f+1)*v.frameSize <= v.n {
		return v.frameSize
	}
	return v.n - f*v.frameSize
}

func (v *forVector) AppendRange(dst []uint64, start, n int) []uint64 {
	checkVectorRange(v.n, start, n)
	for n > 0 {
		f := start / v.frameSize
		fo := start % v.frameSize
		k := v.frameLen(f) - fo
		if k > n {
			k = n
		}
		base := v.bases.Get(f)
		if v.widths[f] == 0 {
			for i := 0; i < k; i++ {
				dst = append(dst, base)
			}
		} else {
			m := len(dst)
			dst = v.offsets[f].AppendRange(dst, fo, k)
			for i := m; i < len(dst); i++ {
				dst[i] += base
			}
		}
		start += k
		n -= k
	}
	return dst
}

// checkVectorRange panics unless [start, start+n) lies within a vector of
// the given length.
func checkVectorRange(length, start, n int) {
	if start < 0 || n < 0 || start > length-n {
		panic("intcomp: vector range out of bounds")
	}
}

func (v *forVector) Bytes() uint64 {
	b := v.bases.Bytes() + uint64(len(v.widths)) + 48
	for _, pa := range v.offsets {
		if pa != nil {
			b += pa.Bytes() + 16
		}
	}
	return b
}

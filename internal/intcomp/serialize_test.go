package intcomp

import (
	"bytes"
	"math/rand"
	"testing"
)

// testVectors builds one value sequence per shape the packers care about.
func testVectors() map[string][]uint64 {
	rng := rand.New(rand.NewSource(7))
	random := make([]uint64, 5000)
	for i := range random {
		random[i] = uint64(rng.Intn(1 << 20))
	}
	sorted := make([]uint64, 5000)
	for i := range sorted {
		sorted[i] = uint64(i/7) + 1000
	}
	runs := make([]uint64, 5000)
	for i := range runs {
		runs[i] = uint64(i / 500)
	}
	return map[string][]uint64{
		"empty":    nil,
		"single":   {42},
		"constant": {9, 9, 9, 9, 9, 9, 9},
		"random":   random,
		"sorted":   sorted,
		"runs":     runs,
	}
}

func assertEqualVector(t *testing.T, want []uint64, got Vector) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		if g := got.Get(i); g != w {
			t.Fatalf("Get(%d) = %d, want %d", i, g, w)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	for name, values := range testVectors() {
		packers := map[string]func([]uint64) Vector{
			"bits": PackBits,
			"rle":  PackRLE,
			"for":  PackFOR,
			"auto": PackAuto,
		}
		for pname, pack := range packers {
			v := pack(values)
			blob, err := Marshal(v)
			if err != nil {
				t.Fatalf("%s/%s: Marshal: %v", name, pname, err)
			}
			got, err := Unmarshal(blob)
			if err != nil {
				t.Fatalf("%s/%s: Unmarshal: %v", name, pname, err)
			}
			assertEqualVector(t, values, got)
			// The representation round-trips, not just the values.
			blob2, err := Marshal(got)
			if err != nil {
				t.Fatalf("%s/%s: re-Marshal: %v", name, pname, err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("%s/%s: serialization not stable", name, pname)
			}
		}
	}
}

func TestConcatRoundTrip(t *testing.T) {
	a := []uint64{1, 2, 3, 4, 5}
	b := []uint64{9, 9, 9, 9, 9, 9, 9, 9}
	c := []uint64{100, 200, 300}
	v := Concat(Concat(PackAuto(a), PackRLE(b)), PackFOR(c))
	want := append(append(append([]uint64{}, a...), b...), c...)

	blob, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	assertEqualVector(t, want, got)
	if _, ok := got.(*concatVector); !ok {
		t.Fatalf("concat chain decoded as %T, want *concatVector", got)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{vectorVersion},
		{99, tagPacked},                        // bad version
		{vectorVersion, 77},                    // bad tag
		{vectorVersion, tagRLE},                // truncated header
		{vectorVersion, tagFOR},                // truncated header
		{vectorVersion, tagConcat, 0, 0, 0, 0}, // empty concat
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}

	// Truncating a valid blob at any offset must error, never panic.
	blob, err := Marshal(PackAuto(testVectors()["sorted"]))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := Unmarshal(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing bytes are rejected too.
	if _, err := Unmarshal(append(append([]byte{}, blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestUnmarshalRejectsBadRuns(t *testing.T) {
	// Hand-build an RLE vector whose starts are not ascending; Marshal would
	// never produce it, so corrupt it at the byte level instead: flip the
	// second run start to 0 (== first) and check Unmarshal rejects it.
	v := PackRLE([]uint64{5, 5, 7, 7, 9})
	blob, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	rv := got.(rleVector)
	rv.starts.Set(1, 0)
	if err := rv.validate(); err == nil {
		t.Fatal("non-ascending run starts accepted")
	}
}

// FuzzUnmarshalPacked fuzzes the vector deserializer, seeded from real code
// vectors in every packed representation. Unmarshal must never panic; on
// success, Get over the full length must stay in bounds.
func FuzzUnmarshalPacked(f *testing.F) {
	for _, values := range testVectors() {
		for _, pack := range []func([]uint64) Vector{PackBits, PackRLE, PackFOR} {
			if blob, err := Marshal(pack(values)); err == nil {
				f.Add(blob)
			}
		}
	}
	if blob, err := Marshal(Concat(PackBits([]uint64{1, 2}), PackRLE([]uint64{3, 3, 3}))); err == nil {
		f.Add(blob)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return
		}
		var sum uint64
		for i := 0; i < v.Len(); i++ {
			sum += v.Get(i)
		}
		_ = sum
		blob, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded vector does not re-marshal: %v", err)
		}
		v2, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("re-marshaled vector does not decode: %v", err)
		}
		if v2.Len() != v.Len() {
			t.Fatalf("round-trip length %d != %d", v2.Len(), v.Len())
		}
	})
}

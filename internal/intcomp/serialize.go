package intcomp

// Binary serialization of code vectors. Checkpointing the read-optimized
// main part of a column (see internal/persist) persists the dictionary and
// the compressed code vector side by side; dictionaries already have a
// versioned binary form (dict.Marshal), and this file gives the vectors one.
// Every vector implementation round-trips exactly — a partial-merge concat
// chain is persisted as its parts, so reloading a checkpoint reproduces the
// in-memory representation, not just the logical sequence.
//
// Layout (little-endian):
//
//	version u8 (currently 1)
//	tag     u8 (vector implementation)
//	body    tag-specific, see appendVector
//
// All inputs are validated on load: lengths must agree, run starts must be
// strictly ascending, frame geometry must match. Corrupt bytes yield
// ErrCorrupt, never a panic or an out-of-range vector.

import (
	"encoding/binary"
	"errors"

	"strdict/internal/bits"
)

const vectorVersion = 1

// Vector implementation tags.
const (
	tagPacked = 1
	tagRLE    = 2
	tagFOR    = 3
	tagConcat = 4
)

// ErrCorrupt is returned when serialized vector bytes fail validation.
var ErrCorrupt = errors.New("intcomp: corrupt serialized vector")

// maxElements bounds any deserialized vector's logical length; far beyond
// anything real, but small enough that length arithmetic cannot overflow.
const maxElements = 1 << 40

// Marshal serializes a vector produced by this package.
func Marshal(v Vector) ([]byte, error) {
	return AppendMarshal(nil, v)
}

// AppendMarshal appends the serialized form of v to dst.
func AppendMarshal(dst []byte, v Vector) ([]byte, error) {
	dst = append(dst, vectorVersion)
	return appendVector(dst, v, true)
}

// appendVector writes the tagged body. allowConcat is cleared one level
// down: Concat flattens nested chains at construction time, so a concat
// part is never itself a concat.
func appendVector(dst []byte, v Vector, allowConcat bool) ([]byte, error) {
	switch vv := v.(type) {
	case packedVector:
		dst = append(dst, tagPacked)
		return vv.pa.AppendBinary(dst), nil
	case rleVector:
		dst = append(dst, tagRLE)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(vv.n))
		dst = vv.starts.AppendBinary(dst)
		return vv.values.AppendBinary(dst), nil
	case *forVector:
		dst = append(dst, tagFOR)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(vv.n))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(vv.frameSize))
		dst = vv.bases.AppendBinary(dst)
		for f, w := range vv.widths {
			dst = append(dst, w)
			if w > 0 {
				dst = vv.offsets[f].AppendBinary(dst)
			}
		}
		return dst, nil
	case *concatVector:
		if !allowConcat {
			return nil, errors.New("intcomp: cannot marshal nested concat vector")
		}
		dst = append(dst, tagConcat)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vv.parts)))
		var err error
		for _, p := range vv.parts {
			if dst, err = appendVector(dst, p, false); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, errors.New("intcomp: cannot marshal unknown vector type")
	}
}

// Unmarshal reconstructs a vector serialized by Marshal, validating every
// structural invariant. Trailing bytes are rejected.
func Unmarshal(b []byte) (Vector, error) {
	v, n, err := UnmarshalPrefix(b)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, ErrCorrupt
	}
	return v, nil
}

// UnmarshalPrefix reconstructs a vector from the start of b and returns the
// number of bytes consumed, for callers embedding vectors in larger files.
func UnmarshalPrefix(b []byte) (Vector, int, error) {
	if len(b) < 2 {
		return nil, 0, ErrCorrupt
	}
	if b[0] != vectorVersion {
		return nil, 0, ErrCorrupt
	}
	v, n, err := unmarshalVector(b[1:], true)
	if err != nil {
		return nil, 0, err
	}
	return v, n + 1, nil
}

// unmarshalVector parses one tagged vector body, returning bytes consumed.
func unmarshalVector(b []byte, allowConcat bool) (Vector, int, error) {
	if len(b) < 1 {
		return nil, 0, ErrCorrupt
	}
	tag := b[0]
	off := 1
	switch tag {
	case tagPacked:
		pa, n, err := bits.UnmarshalPackedArray(b[off:])
		if err != nil {
			return nil, 0, ErrCorrupt
		}
		return packedVector{pa}, off + n, nil

	case tagRLE:
		if len(b) < off+8 {
			return nil, 0, ErrCorrupt
		}
		count := binary.LittleEndian.Uint64(b[off:])
		off += 8
		if count > maxElements {
			return nil, 0, ErrCorrupt
		}
		starts, n, err := bits.UnmarshalPackedArray(b[off:])
		if err != nil {
			return nil, 0, ErrCorrupt
		}
		off += n
		values, n, err := bits.UnmarshalPackedArray(b[off:])
		if err != nil {
			return nil, 0, ErrCorrupt
		}
		off += n
		v := rleVector{n: int(count), starts: starts, values: values}
		if err := v.validate(); err != nil {
			return nil, 0, err
		}
		return v, off, nil

	case tagFOR:
		if len(b) < off+12 {
			return nil, 0, ErrCorrupt
		}
		count := binary.LittleEndian.Uint64(b[off:])
		frameSize := binary.LittleEndian.Uint32(b[off+8:])
		off += 12
		if count > maxElements || frameSize == 0 || frameSize > 1<<26 {
			return nil, 0, ErrCorrupt
		}
		nframes := int((count + uint64(frameSize) - 1) / uint64(frameSize))
		bases, n, err := bits.UnmarshalPackedArray(b[off:])
		if err != nil || bases.Len() != nframes {
			return nil, 0, ErrCorrupt
		}
		off += n
		v := &forVector{n: int(count), frameSize: int(frameSize), bases: bases}
		for f := 0; f < nframes; f++ {
			if len(b) < off+1 {
				return nil, 0, ErrCorrupt
			}
			w := b[off]
			off++
			v.widths = append(v.widths, w)
			if w == 0 {
				v.offsets = append(v.offsets, nil)
				continue
			}
			pa, n, err := bits.UnmarshalPackedArray(b[off:])
			if err != nil {
				return nil, 0, ErrCorrupt
			}
			off += n
			lo := f * int(frameSize)
			hi := lo + int(frameSize)
			if hi > int(count) {
				hi = int(count)
			}
			if pa.Len() != hi-lo || pa.Width() != uint(w) || w > 64 {
				return nil, 0, ErrCorrupt
			}
			v.offsets = append(v.offsets, pa)
		}
		return v, off, nil

	case tagConcat:
		if !allowConcat {
			return nil, 0, ErrCorrupt
		}
		if len(b) < off+4 {
			return nil, 0, ErrCorrupt
		}
		nparts := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		// Concat collapses chains past maxConcatParts; a longer list (or an
		// empty one) cannot have been produced by this package.
		if nparts == 0 || nparts > maxConcatParts {
			return nil, 0, ErrCorrupt
		}
		cv := &concatVector{}
		for i := 0; i < nparts; i++ {
			p, n, err := unmarshalVector(b[off:], false)
			if err != nil {
				return nil, 0, err
			}
			off += n
			if p.Len() == 0 || uint64(cv.n)+uint64(p.Len()) > maxElements {
				return nil, 0, ErrCorrupt
			}
			cv.offs = append(cv.offs, cv.n)
			cv.parts = append(cv.parts, p)
			cv.n += p.Len()
		}
		return cv, off, nil

	default:
		return nil, 0, ErrCorrupt
	}
}

// validate checks rleVector structural invariants after deserialization:
// one value per run, strictly ascending run starts beginning at 0, and
// every start inside the logical length.
func (v rleVector) validate() error {
	if v.n < 0 || v.starts.Len() != v.values.Len() {
		return ErrCorrupt
	}
	if v.n == 0 {
		if v.starts.Len() != 0 {
			return ErrCorrupt
		}
		return nil
	}
	if v.starts.Len() == 0 || v.starts.Get(0) != 0 {
		return ErrCorrupt
	}
	prev := uint64(0)
	for i := 1; i < v.starts.Len(); i++ {
		s := v.starts.Get(i)
		if s <= prev || s >= uint64(v.n) {
			return ErrCorrupt
		}
		prev = s
	}
	return nil
}

package intcomp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkVector(t *testing.T, v Vector, want []uint64) {
	t.Helper()
	if v.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(want))
	}
	for i, w := range want {
		if got := v.Get(i); got != w {
			t.Fatalf("Get(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestPackBits(t *testing.T) {
	vals := []uint64{0, 7, 3, 7, 1, 0}
	checkVector(t, PackBits(vals), vals)
}

func TestPackRLE(t *testing.T) {
	vals := []uint64{5, 5, 5, 2, 2, 9, 9, 9, 9, 1}
	checkVector(t, PackRLE(vals), vals)
}

func TestPackRLESingleRun(t *testing.T) {
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = 42
	}
	v := PackRLE(vals)
	checkVector(t, v, vals)
	if v.Bytes() > 100 {
		t.Fatalf("single-run RLE costs %d bytes", v.Bytes())
	}
}

func TestPackAutoPicksRLEForRuns(t *testing.T) {
	vals := make([]uint64, 10000)
	for i := range vals {
		vals[i] = uint64(i / 1000) // 10 long runs
	}
	v := PackAuto(vals)
	if _, ok := v.(rleVector); !ok {
		t.Fatalf("PackAuto chose %T for run-heavy data", v)
	}
	checkVector(t, v, vals)
}

func TestPackAutoPicksBitsForRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 10000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 16))
	}
	v := PackAuto(vals)
	if _, ok := v.(packedVector); !ok {
		t.Fatalf("PackAuto chose %T for random data", v)
	}
	checkVector(t, v, vals)
}

func TestPackAutoEmpty(t *testing.T) {
	v := PackAuto(nil)
	if v.Len() != 0 {
		t.Fatal("non-empty")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		for _, pack := range []func([]uint64) Vector{PackBits, PackRLE, PackAuto} {
			if len(vals) == 0 && &pack == nil {
				continue
			}
			v := pack(vals)
			if len(vals) == 0 {
				if v.Len() != 0 {
					return false
				}
				continue
			}
			for i, w := range vals {
				if v.Get(i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	a := []uint64{3, 1, 4, 1, 5}
	b := []uint64{9, 2, 6}
	v := Concat(PackBits(a), PackBits(b))
	checkVector(t, v, append(append([]uint64{}, a...), b...))
}

func TestConcatEmptySides(t *testing.T) {
	a := PackBits([]uint64{1, 2, 3})
	empty := PackBits(nil)
	if got := Concat(a, empty); got != a {
		t.Fatal("Concat with empty right side should return the left vector")
	}
	if got := Concat(empty, a); got != a {
		t.Fatal("Concat with empty left side should return the right vector")
	}
}

func TestConcatFlattensNested(t *testing.T) {
	// Chained concats must flatten into one part list, not a deep tree.
	v := PackBits([]uint64{0})
	var want []uint64
	want = append(want, 0)
	for i := 1; i < 20; i++ {
		v = Concat(v, PackBits([]uint64{uint64(i)}))
		want = append(want, uint64(i))
	}
	cv, ok := v.(*concatVector)
	if !ok {
		t.Fatalf("chained Concat yielded %T", v)
	}
	if len(cv.parts) != 20 {
		t.Fatalf("nested concat not flattened: %d parts, want 20", len(cv.parts))
	}
	checkVector(t, v, want)
}

func TestConcatCollapsesLongChains(t *testing.T) {
	v := PackBits([]uint64{0})
	var want []uint64
	want = append(want, 0)
	for i := 1; i < 3*maxConcatParts; i++ {
		v = Concat(v, PackBits([]uint64{uint64(i), uint64(i)}))
		want = append(want, uint64(i), uint64(i))
	}
	if cv, ok := v.(*concatVector); ok && len(cv.parts) > maxConcatParts {
		t.Fatalf("chain grew to %d parts, cap is %d", len(cv.parts), maxConcatParts)
	}
	checkVector(t, v, want)
}

func TestConcatQuick(t *testing.T) {
	f := func(a, b []uint64) bool {
		v := Concat(PackAuto(a), PackAuto(b))
		if v.Len() != len(a)+len(b) {
			return false
		}
		for i, w := range a {
			if v.Get(i) != w {
				return false
			}
		}
		for i, w := range b {
			if v.Get(len(a)+i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGet(b *testing.B) {
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(i / 64)
	}
	b.Run("bits", func(b *testing.B) {
		v := PackBits(vals)
		for i := 0; i < b.N; i++ {
			v.Get(i & (1<<16 - 1))
		}
	})
	b.Run("rle", func(b *testing.B) {
		v := PackRLE(vals)
		for i := 0; i < b.N; i++ {
			v.Get(i & (1<<16 - 1))
		}
	})
}

func TestPackFOR(t *testing.T) {
	vals := []uint64{1000, 1001, 1003, 1002, 1010, 5, 6, 7}
	checkVector(t, PackFOR(vals), vals)
}

func TestPackFORConstantFrames(t *testing.T) {
	vals := make([]uint64, 3000)
	for i := range vals {
		vals[i] = 7777
	}
	v := PackFOR(vals)
	checkVector(t, v, vals)
	if v.Bytes() > 300 {
		t.Fatalf("constant FOR costs %d bytes", v.Bytes())
	}
}

func TestPackFORMonotonic(t *testing.T) {
	// A dense ascending sequence: offsets within a 1024-frame need only
	// ~10 bits even though values reach 2^30.
	vals := make([]uint64, 8192)
	for i := range vals {
		vals[i] = 1<<30 + uint64(i)
	}
	v := PackFOR(vals)
	checkVector(t, v, vals)
	packed := PackBits(vals)
	if v.Bytes()*2 > packed.Bytes() {
		t.Fatalf("FOR (%d bytes) should be far below global packing (%d bytes)", v.Bytes(), packed.Bytes())
	}
	if _, ok := PackAuto(vals).(*forVector); !ok {
		t.Fatalf("PackAuto chose %T for monotonic data", PackAuto(vals))
	}
}

func TestPackFORQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return PackFOR(vals).Len() == 0
		}
		v := PackFOR(vals)
		for i, w := range vals {
			if v.Get(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

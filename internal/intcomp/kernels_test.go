package intcomp

import (
	"math/rand"
	"testing"
)

// kernelTestVectors builds one vector of every kind over the same logical values,
// so differential tests cover packed, RLE, FOR and concat with identical
// expected output.
func kernelTestVectors(t *testing.T, values []uint64) map[string]Vector {
	t.Helper()
	vs := map[string]Vector{
		"bits": PackBits(values),
		"rle":  PackRLE(values),
		"for":  PackFOR(values),
		"auto": PackAuto(values),
	}
	if len(values) >= 2 {
		// Concat of heterogeneous parts, split off-center to hit uneven
		// part boundaries.
		cut := len(values)/3 + 1
		vs["concat"] = Concat(PackBits(values[:cut]), PackRLE(values[cut:]))
		mid := 2 * len(values) / 3
		vs["concat3"] = Concat(Concat(PackFOR(values[:cut]), PackBits(values[cut:mid])), PackRLE(values[mid:]))
	}
	return vs
}

// genValues produces value distributions that steer PackAuto and the frame
// logic into every representation: runs, clusters, uniform noise, and
// width-boundary magnitudes.
func genValues(rng *rand.Rand, n int, shape string) []uint64 {
	values := make([]uint64, n)
	switch shape {
	case "runs":
		var cur uint64
		for i := range values {
			if rng.Intn(7) == 0 {
				cur = uint64(rng.Intn(50))
			}
			values[i] = cur
		}
	case "clustered":
		base := rng.Uint64() >> 20
		for i := range values {
			values[i] = base + uint64(i) + uint64(rng.Intn(16))
		}
	case "uniform":
		for i := range values {
			values[i] = uint64(rng.Intn(1000))
		}
	case "wide":
		for i := range values {
			values[i] = rng.Uint64()
		}
	case "zeros":
		// all zero: width-1 packing, single run
	}
	return values
}

var testShapes = []string{"runs", "clustered", "uniform", "wide", "zeros"}

// testNs includes frame and word boundary sizes.
var testNs = []int{0, 1, 2, 63, 64, 65, 255, 256, 257, 1023, 1024, 1025, 3000}

func TestAppendRangeMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range testShapes {
		for _, n := range testNs {
			values := genValues(rng, n, shape)
			for kind, v := range kernelTestVectors(t, values) {
				if v.Len() != n {
					t.Fatalf("%s/%s/%d: Len=%d", shape, kind, n, v.Len())
				}
				// Whole vector plus boundary-straddling sub-ranges.
				ranges := [][2]int{{0, n}, {0, 0}, {n, 0}}
				for i := 0; i < 20 && n > 0; i++ {
					s := rng.Intn(n)
					ranges = append(ranges, [2]int{s, rng.Intn(n-s) + 1})
				}
				for _, r := range ranges {
					s, k := r[0], r[1]
					got := v.AppendRange(nil, s, k)
					if len(got) != k {
						t.Fatalf("%s/%s/%d: AppendRange(%d,%d) len=%d", shape, kind, n, s, k, len(got))
					}
					for j, x := range got {
						if want := v.Get(s + j); x != want {
							t.Fatalf("%s/%s/%d: AppendRange(%d,%d)[%d]=%d want %d", shape, kind, n, s, k, j, x, want)
						}
					}
				}
			}
		}
	}
}

func TestAppendRangePreservesPrefix(t *testing.T) {
	values := []uint64{5, 6, 7, 8}
	v := PackBits(values)
	dst := []uint64{99}
	dst = v.AppendRange(dst, 1, 2)
	want := []uint64{99, 6, 7}
	if len(dst) != len(want) {
		t.Fatalf("len=%d want %d", len(dst), len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d]=%d want %d", i, dst[i], want[i])
		}
	}
}

func TestAppendRangeOutOfBoundsPanics(t *testing.T) {
	v := PackBits([]uint64{1, 2, 3})
	for _, r := range [][2]int{{-1, 1}, {0, 4}, {3, 1}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AppendRange(%d,%d): no panic", r[0], r[1])
				}
			}()
			v.AppendRange(nil, r[0], r[1])
		}()
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range testShapes {
		for _, n := range testNs {
			values := genValues(rng, n, shape)
			for kind, v := range kernelTestVectors(t, values) {
				// Probe values present in the data, absent, zero, and max.
				probes := []uint64{0, ^uint64(0), 12345}
				if n > 0 {
					probes = append(probes, values[rng.Intn(n)], values[0], values[n-1])
				}
				ranges := [][2]int{{0, n}}
				for i := 0; i < 8 && n > 0; i++ {
					s := rng.Intn(n)
					ranges = append(ranges, [2]int{s, rng.Intn(n-s) + 1})
				}
				for _, code := range probes {
					for _, r := range ranges {
						s, k := r[0], r[1]
						want := ScanEqScalar(v, code, s, k, nil)
						got := ScanEq(v, code, s, k, nil)
						if !equalInts(got, want) {
							t.Fatalf("%s/%s/%d: ScanEq(%d,%d,%d) = %v want %v", shape, kind, n, code, s, k, got, want)
						}
						if c := CountEq(v, code, s, k); c != len(want) {
							t.Fatalf("%s/%s/%d: CountEq(%d,%d,%d) = %d want %d", shape, kind, n, code, s, k, c, len(want))
						}
						// Range probes around the eq code and random spans.
						los := []uint64{code, code / 2}
						for _, lo := range los {
							hi := lo + 1 + uint64(rng.Intn(64))
							wantR := ScanRangeScalar(v, lo, hi, s, k, nil)
							gotR := ScanRange(v, lo, hi, s, k, nil)
							if !equalInts(gotR, wantR) {
								t.Fatalf("%s/%s/%d: ScanRange(%d,%d,%d,%d) = %v want %v", shape, kind, n, lo, hi, s, k, gotR, wantR)
							}
						}
						// Empty interval.
						if got := ScanRange(v, code, code, s, k, nil); len(got) != 0 {
							t.Fatalf("%s/%s/%d: ScanRange empty interval returned %v", shape, kind, n, got)
						}
					}
				}
			}
		}
	}
}

func TestScanEqAppendsToDst(t *testing.T) {
	v := PackBits([]uint64{7, 1, 7})
	dst := []int{-1}
	dst = ScanEq(v, 7, 0, 3, dst)
	if !equalInts(dst, []int{-1, 0, 2}) {
		t.Fatalf("dst = %v", dst)
	}
}

func TestMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range testShapes {
		values := genValues(rng, 2500, shape)
		for kind, v := range kernelTestVectors(t, values) {
			for i := 0; i < 16; i++ {
				s := rng.Intn(len(values))
				n := rng.Intn(len(values)-s) + 1
				min, max := MinMax(v, s, n)
				wantMin, wantMax := values[s], values[s]
				for _, x := range values[s : s+n] {
					if x < wantMin {
						wantMin = x
					}
					if x > wantMax {
						wantMax = x
					}
				}
				if min != wantMin || max != wantMax {
					t.Fatalf("%s/%s: MinMax(%d,%d) = (%d,%d) want (%d,%d)", shape, kind, s, n, min, max, wantMin, wantMax)
				}
			}
		}
	}
}

// TestPackAutoPicksSmallest verifies the single-pass size estimation agrees
// with materializing all three candidates: the chosen vector's footprint
// must equal the minimum of the three, with the historical tie-break order
// (bits, then RLE, then FOR).
func TestPackAutoPicksSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range testShapes {
		for _, n := range testNs {
			values := genValues(rng, n, shape)
			got := PackAuto(values)
			if n == 0 {
				if got.Len() != 0 {
					t.Fatalf("%s/0: Len=%d", shape, got.Len())
				}
				continue
			}
			b, r, f := PackBits(values), PackRLE(values), PackFOR(values)
			want := b
			for _, alt := range []Vector{r, f} {
				if alt.Bytes() < want.Bytes() {
					want = alt
				}
			}
			if got.Bytes() != want.Bytes() {
				t.Fatalf("%s/%d: PackAuto chose %T (%d bytes), build-all chooses %T (%d bytes) [bits=%d rle=%d for=%d]",
					shape, n, got, got.Bytes(), want, want.Bytes(), b.Bytes(), r.Bytes(), f.Bytes())
			}
			for i, x := range values {
				if got.Get(i) != x {
					t.Fatalf("%s/%d: PackAuto Get(%d)=%d want %d", shape, n, i, got.Get(i), x)
				}
			}
		}
	}
}

// FuzzScanKernels drives the batch kernels against the scalar oracle on
// fuzz-chosen data, widths, offsets and probe codes.
func FuzzScanKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint64(2), uint16(0), uint16(8))
	f.Add([]byte{0, 0, 0, 0}, uint8(64), uint64(0), uint16(1), uint16(2))
	f.Add([]byte{255, 1, 255, 1}, uint8(8), uint64(255), uint16(0), uint16(4))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8, code uint64, startSeed, nSeed uint16) {
		if len(data) == 0 {
			return
		}
		width := uint(widthSeed%64) + 1
		values := make([]uint64, len(data))
		for i, b := range data {
			// Spread bytes across the chosen width so wide fields and run
			// structure both occur.
			if width < 64 {
				values[i] = uint64(b) % (1 << width)
			} else {
				values[i] = uint64(b) * 0x0101010101010101
			}
		}
		n := len(values)
		start := int(startSeed) % n
		k := int(nSeed) % (n - start + 1)
		for kind, v := range kernelTestVectors(t, values) {
			got := v.AppendRange(nil, start, k)
			for j, x := range got {
				if want := v.Get(start + j); x != want {
					t.Fatalf("%s: AppendRange(%d,%d)[%d]=%d want %d", kind, start, k, j, x, want)
				}
			}
			wantEq := ScanEqScalar(v, code, start, k, nil)
			if got := ScanEq(v, code, start, k, nil); !equalInts(got, wantEq) {
				t.Fatalf("%s: ScanEq(%d,%d,%d) = %v want %v", kind, code, start, k, got, wantEq)
			}
			if c := CountEq(v, code, start, k); c != len(wantEq) {
				t.Fatalf("%s: CountEq(%d,%d,%d) = %d want %d", kind, code, start, k, c, len(wantEq))
			}
			lo, hi := code/2, code/2+17
			wantR := ScanRangeScalar(v, lo, hi, start, k, nil)
			if got := ScanRange(v, lo, hi, start, k, nil); !equalInts(got, wantR) {
				t.Fatalf("%s: ScanRange(%d,%d,%d,%d) = %v want %v", kind, lo, hi, start, k, got, wantR)
			}
		}
	})
}

package persist

// Durability health. The WAL and checkpoint paths classify I/O failures
// into a three-state machine:
//
//	Healthy ──fault──▶ Degraded ──retries exhausted──▶ ReadOnly
//	   ▲                  │
//	   └───retry wins─────┘
//
// Degraded means a fault was observed and a bounded retry loop is (or was
// just) running; the store keeps its durability promises if the retry wins.
// ReadOnly is terminal for the store handle: a write or fsync failed past
// the retry budget, the sticky error is set, and no further rows will be
// made durable. The store itself keeps serving reads — "read-only" is the
// durability contract, surfaced so embedders stop writing.
//
// Transitions are pushed to the Options.OnHealth hook through a dedicated
// notifier goroutine: observers run outside every persist lock, so a hook
// may call Store.Err(), Store.Health() or log freely without deadlocking.

import (
	"sync"
	"sync/atomic"
	"time"
)

// HealthState is the durability state of a persistent store.
type HealthState int32

const (
	// StateHealthy: all durability promises hold.
	StateHealthy HealthState = iota
	// StateDegraded: a transient I/O fault was observed; a bounded retry
	// is in progress or just succeeded after backoff.
	StateDegraded
	// StateReadOnly: a fault persisted past the retry budget. The sticky
	// error is set, appends are no longer made durable (dropped rows are
	// counted), and the state never leaves ReadOnly.
	StateReadOnly
)

func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateReadOnly:
		return "read-only"
	}
	return "health?"
}

// HealthEvent is one state transition, delivered to Options.OnHealth.
type HealthEvent struct {
	State HealthState
	// Op names the filesystem operation that triggered the transition
	// ("sync", "write", ...); empty for the recovery back to Healthy.
	Op string
	// Err is the triggering error; nil when recovering to Healthy.
	Err error
}

// Retry defaults when Options leaves RetryLimit / RetryBackoff zero.
const (
	defaultRetryLimit   = 4
	defaultRetryBackoff = 2 * time.Millisecond
)

// healthTracker owns the state machine and the notifier goroutine. It is
// shared by the WAL and the journal so both failure domains feed one
// stream of transitions.
type healthTracker struct {
	state atomic.Int32

	mu     sync.Mutex
	ch     chan HealthEvent
	closed bool
	done   chan struct{}
}

// newHealthTracker starts the notifier goroutine iff a hook is installed.
func newHealthTracker(onHealth func(HealthEvent)) *healthTracker {
	h := &healthTracker{}
	if onHealth != nil {
		h.ch = make(chan HealthEvent, 32)
		h.done = make(chan struct{})
		go func() {
			defer close(h.done)
			for ev := range h.ch {
				onHealth(ev)
			}
		}()
	}
	return h
}

// current returns the present state without locking.
func (h *healthTracker) current() HealthState { return HealthState(h.state.Load()) }

// observe records a transition to the given state and, if the state
// changed, queues an event for the hook. ReadOnly is terminal; repeated
// observations of the same state are deduplicated. Safe to call from
// under any persist lock (delivery is asynchronous).
func (h *healthTracker) observe(state HealthState, op string, err error) {
	for {
		old := HealthState(h.state.Load())
		if old == StateReadOnly || old == state {
			return
		}
		if h.state.CompareAndSwap(int32(old), int32(state)) {
			break
		}
	}
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	if !h.closed {
		select {
		case h.ch <- HealthEvent{State: state, Op: op, Err: err}:
		default: // hook is badly behind; the state itself is never lost
		}
	}
	h.mu.Unlock()
}

// close stops the notifier after draining queued events.
func (h *healthTracker) close() {
	if h.ch == nil {
		return
	}
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.ch)
	}
	h.mu.Unlock()
	<-h.done
}

// retryPolicy bounds how persist fights transient I/O faults: up to
// attempts tries with exponentially growing backoff between them. sleep is
// injectable so the torture harness and tests run at full speed.
type retryPolicy struct {
	attempts int // total tries; <=1 means no retries
	backoff  time.Duration
	sleep    func(time.Duration)
}

// newRetryPolicy resolves Options knobs: limit 0 selects the default,
// negative disables retries; backoff 0 selects the default.
func newRetryPolicy(limit int, backoff time.Duration) retryPolicy {
	switch {
	case limit == 0:
		limit = defaultRetryLimit
	case limit < 0:
		limit = 1
	default:
		limit++ // limit counts retries after the first attempt
	}
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	return retryPolicy{attempts: limit, backoff: backoff, sleep: time.Sleep}
}

// run invokes fn until it succeeds or the budget is spent. The first
// failure moves health to Degraded; success after a failure moves it back
// to Healthy. The final failure is returned — the caller decides whether
// it is sticky (and observes ReadOnly then).
func (p retryPolicy) run(h *healthTracker, op string, fn func() error) error {
	var err error
	backoff := p.backoff
	for attempt := 0; attempt < p.attempts; attempt++ {
		if attempt > 0 {
			p.sleep(backoff)
			backoff *= 2
		}
		if err = fn(); err == nil {
			if attempt > 0 {
				h.observe(StateHealthy, "", nil)
			}
			return nil
		}
		h.observe(StateDegraded, op, err)
	}
	return err
}

package persist

// The delta write-ahead log. One directory of numbered segment files
// (wal-%08d.log); each segment starts with a 5-byte preamble (magic "SWAL",
// version) followed by CRC32C-framed records (see record.go). The first
// record is always a header carrying the segment's sequence number and, per
// column, the number of append records written to all earlier segments —
// the absolute record index the segment starts at. That table is what lets
// recovery replay a suffix of the log after older, checkpoint-covered
// segments have been deleted.
//
// Writes are group-committed: appends are framed into an in-memory buffer
// under the WAL mutex and acknowledged to disk by a flusher goroutine that
// writes and fsyncs the buffer every FsyncInterval (or inline, when the
// interval is negative). Rows are durable — guaranteed to survive a crash —
// only once their frame has been fsynced; Sync exposes the barrier.
//
// Rotation: once a segment's durable size passes segBytes, the WAL writes a
// seal record, fsyncs, closes the file and opens the next segment. Sealed
// segments are immutable; the journal deletes them once a checkpoint
// manifest covers every row they hold.
//
// Faults: every filesystem operation goes through the FS seam and a bounded
// retry policy. A write that fails mid-buffer is resumed from the first
// unwritten byte (bufOff), never re-sent from the start, so retried flushes
// cannot duplicate frames; fsync retries are idempotent. Only when the
// retry budget is spent does the error turn sticky — the WAL goes read-only
// (health StateReadOnly), later appends are refused and counted as dropped.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	walMagic   = "SWAL"
	walVersion = 1

	// DefaultFsyncInterval is the group-commit interval when Options leaves
	// it zero: small enough that a crash loses at most a few milliseconds of
	// acknowledged-to-memory rows, large enough to batch thousands of
	// appends per fsync.
	DefaultFsyncInterval = 5 * time.Millisecond

	// DefaultSegmentBytes is the rotation threshold when Options leaves it
	// zero.
	DefaultSegmentBytes = 4 << 20
)

// segmentInfo tracks one sealed on-disk segment.
type segmentInfo struct {
	seq  uint64
	path string
	// end holds, per column, the absolute append-record count at the end of
	// this segment (== the next segment's header table).
	end map[uint32]uint64
}

// walConfig bundles what newWAL needs beyond the recovery bookkeeping.
type walConfig struct {
	dir      string
	segBytes int64
	fsync    time.Duration
	fs       FS
	retry    retryPolicy
	health   *healthTracker
}

type wal struct {
	dir       string
	segBytes  int64
	syncEvery bool // fsync inline on every append (FsyncInterval < 0)
	fs        FS
	retry     retryPolicy
	health    *healthTracker

	mu      sync.Mutex
	f       File
	path    string
	seq     uint64            // current segment sequence number
	written int64             // bytes handed to f for the current segment
	durable int64             // bytes fsynced of the current segment
	buf     []byte            // framed records not yet fully written to f
	bufOff  int               // bytes of buf already written (partial flush)
	counts  map[uint32]uint64 // absolute append-record count per column
	sealed  []segmentInfo     // sealed segments still on disk, oldest first
	err     error             // sticky write/sync failure
	dropped uint64            // append records refused after err turned sticky

	flushStop chan struct{}
	flushDone chan struct{}
}

func walSegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

// parseWALSeq extracts the sequence number from a segment file name,
// returning ok=false for non-segment files.
func parseWALSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// listWALSegments returns the segment files in dir in ascending sequence
// order, listing through the FS seam so recovery faults are injectable.
func listWALSegments(fsys FS, dir string) ([]segmentInfo, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, name := range names {
		if seq, ok := parseWALSeq(name); ok {
			segs = append(segs, segmentInfo{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// newWAL opens a fresh active segment at seq, continuing the given absolute
// record counts and sealed-segment bookkeeping (both from recovery; empty
// on a fresh store), and starts the flusher unless syncEvery.
func newWAL(cfg walConfig, seq uint64, counts map[uint32]uint64, sealed []segmentInfo) (*wal, error) {
	if cfg.segBytes <= 0 {
		cfg.segBytes = DefaultSegmentBytes
	}
	if cfg.fs == nil {
		cfg.fs = OS
	}
	if cfg.health == nil {
		cfg.health = newHealthTracker(nil)
	}
	if cfg.retry.attempts == 0 {
		cfg.retry = newRetryPolicy(0, 0)
	}
	w := &wal{
		dir:      cfg.dir,
		segBytes: cfg.segBytes,
		fs:       cfg.fs,
		retry:    cfg.retry,
		health:   cfg.health,
		seq:      seq,
		counts:   counts,
		sealed:   sealed,
	}
	if counts == nil {
		w.counts = make(map[uint32]uint64)
	}
	if cfg.fsync < 0 {
		w.syncEvery = true
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	if !w.syncEvery {
		interval := cfg.fsync
		if interval == 0 {
			interval = DefaultFsyncInterval
		}
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(interval)
	}
	return w, nil
}

// openSegmentLocked creates the active segment file and writes its preamble
// and header record (buffered; durable at the next flush).
func (w *wal) openSegmentLocked() error {
	w.path = walSegmentPath(w.dir, w.seq)
	err := w.retry.run(w.health, "create", func() error {
		f, cerr := w.fs.Create(w.path)
		if cerr != nil {
			return cerr
		}
		w.f = f
		return nil
	})
	if err != nil {
		return w.failLocked("create", err)
	}
	w.written, w.durable = 0, 0
	w.buf = append(w.buf, walMagic...)
	w.buf = append(w.buf, walVersion)
	w.buf = appendFrame(w.buf, encHeader(w.seq, w.counts))
	return nil
}

// flusher is the group-commit goroutine.
func (w *wal) flusher(interval time.Duration) {
	defer close(w.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			w.flushLocked()
			w.mu.Unlock()
		}
	}
}

// append frames a payload into the buffer. isAppend marks row records,
// whose absolute per-column count feeds segment headers; the count is
// bumped under the same lock that orders the record into the log, so the
// two can never disagree. Errors are sticky: after the retry budget is
// spent on a write/sync failure every later append reports it, and refused
// row records are counted (droppedRows) — rows are not silently dropped on
// a dead log.
func (w *wal) append(payload []byte, isAppend bool, id uint32) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		if isAppend {
			w.dropped++
		}
		return w.err
	}
	w.buf = appendFrame(w.buf, payload)
	if isAppend {
		w.counts[id]++
	}
	if w.syncEvery {
		return w.flushLocked()
	}
	return nil
}

// failLocked makes err sticky and publishes the read-only transition. The
// caller holds mu; delivery to the health hook is asynchronous, so this
// cannot deadlock against observers calling back into the store.
func (w *wal) failLocked(op string, err error) error {
	if w.err == nil {
		w.err = err
		w.health.observe(StateReadOnly, op, err)
	}
	return err
}

// flushLocked writes the buffer, fsyncs, and rotates if the segment is
// full. Transient faults are retried under the WAL's policy — a partial
// write resumes at bufOff, so frames are never duplicated — and only an
// exhausted budget turns the error sticky. The caller holds mu; retries
// (bounded, short backoff) stall appends for the duration, which is the
// intended backpressure while the disk misbehaves.
func (w *wal) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if w.bufOff < len(w.buf) {
		err := w.retry.run(w.health, "write", func() error {
			n, werr := w.f.Write(w.buf[w.bufOff:])
			w.written += int64(n)
			w.bufOff += n
			return werr
		})
		if err != nil {
			return w.failLocked("write", err)
		}
		w.buf = w.buf[:0]
		w.bufOff = 0
	}
	if w.durable == w.written {
		return nil
	}
	if err := w.retry.run(w.health, "sync", func() error { return w.f.Sync() }); err != nil {
		return w.failLocked("sync", err)
	}
	w.durable = w.written
	if w.durable >= w.segBytes {
		return w.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one. The caller
// holds mu and has flushed; the seal record is written and fsynced so a
// sealed segment always ends on a complete frame.
func (w *wal) rotateLocked() error {
	seal := appendFrame(nil, []byte{recSeal})
	sealOff := 0
	err := w.retry.run(w.health, "write", func() error {
		n, werr := w.f.Write(seal[sealOff:])
		sealOff += n
		return werr
	})
	if err != nil {
		return w.failLocked("write", err)
	}
	if err := w.retry.run(w.health, "sync", func() error { return w.f.Sync() }); err != nil {
		return w.failLocked("sync", err)
	}
	if err := w.f.Close(); err != nil {
		return w.failLocked("close", err)
	}
	end := make(map[uint32]uint64, len(w.counts))
	for id, n := range w.counts {
		end[id] = n
	}
	w.sealed = append(w.sealed, segmentInfo{seq: w.seq, path: w.path, end: end})
	w.seq++
	return w.openSegmentLocked()
}

// sync forces a group commit: every row appended before the call is durable
// when it returns without error.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

// close stops the flusher, commits the remaining buffer and closes the
// active segment.
func (w *wal) close() error {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.flushLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	if w.err == nil {
		w.err = os.ErrClosed
	}
	return err
}

// crash abandons the WAL without flushing: the disk keeps only what was
// already written. Test hook simulating a process kill.
func (w *wal) crash() {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
	}
	w.err = os.ErrClosed
}

func (w *wal) stopFlusher() {
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
		w.flushStop = nil
	}
}

// droppedRows reports how many append records were refused after the WAL
// turned sticky — the rows the in-memory store holds but durability lost.
func (w *wal) droppedRows() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// activeSeq returns the sequence number of the segment currently being
// written.
func (w *wal) activeSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// deleteCovered removes sealed segments whose every row is covered by the
// given per-column durable row counts (elementwise: a segment survives if
// any column's count at its end exceeds the cover). Only segments with
// seq < maxSeq are eligible: the caller passes the segment that was active
// when the previous manifest was written, so both retained manifests are
// guaranteed to postdate — and therefore contain the schema of — every
// deleted segment. Segments are deleted oldest-first and deletion stops at
// the first survivor, keeping the on-disk chain contiguous.
func (w *wal) deleteCovered(cover map[uint32]uint64, maxSeq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.sealed) > 0 {
		seg := w.sealed[0]
		if seg.seq >= maxSeq {
			return
		}
		covered := true
		for id, n := range seg.end {
			if n > cover[id] {
				covered = false
				break
			}
		}
		if !covered {
			return
		}
		if err := w.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return // try again at the next checkpoint
		}
		w.sealed = w.sealed[1:]
	}
}

// durableOffset reports the active segment path and its fsynced length
// (test hook: the crash-injection suite truncates beyond this point).
func (w *wal) durableOffset() (string, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path, w.durable
}

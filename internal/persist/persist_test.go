package persist

import (
	"fmt"
	"os"
	"testing"

	"strdict/internal/dict"
)

// syncOpts makes every append durable immediately, so tests reason about
// exact durable contents without timing.
var syncOpts = Options{FsyncInterval: -1}

func openSync(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, syncOpts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fillStore populates a small mixed-type store and returns the expected
// string rows.
func fillStore(t *testing.T, s *Store, n int) []string {
	t.Helper()
	tb := s.AddTable("t")
	sc := tb.AddString("s", dict.Array)
	ic := tb.AddInt64("i")
	fc := tb.AddFloat64("f")
	var rows []string
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("value-%03d", i%7)
		sc.Append(v)
		rows = append(rows, v)
		ic.Append(int64(i * 3))
		fc.Append(float64(i) / 4)
	}
	return rows
}

// verifyStore checks the store holds exactly the expected rows.
func verifyStore(t *testing.T, s *Store, rows []string) {
	t.Helper()
	tb := s.Table("t")
	sc, ic, fc := tb.Str("s"), tb.Int("i"), tb.Float("f")
	if sc.Len() != len(rows) {
		t.Fatalf("string rows = %d, want %d", sc.Len(), len(rows))
	}
	for i, want := range rows {
		if got := sc.Get(i); got != want {
			t.Fatalf("row %d = %q, want %q", i, got, want)
		}
	}
	if ic.Len() != len(rows) || fc.Len() != len(rows) {
		t.Fatalf("numeric rows = %d/%d, want %d", ic.Len(), fc.Len(), len(rows))
	}
	for i := range rows {
		if ic.Get(i) != int64(i*3) {
			t.Fatalf("int row %d = %d", i, ic.Get(i))
		}
		if fc.Get(i) != float64(i)/4 {
			t.Fatalf("float row %d = %v", i, fc.Get(i))
		}
	}
}

func TestOpenFreshAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	if s.Recovery().ManifestLoaded || s.Recovery().Segments != 0 {
		t.Fatalf("fresh dir recovery = %+v", s.Recovery())
	}
	rows := fillStore(t, s, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openSync(t, dir)
	info := s2.Recovery()
	if info.ManifestLoaded {
		t.Fatalf("no checkpoint was written, yet manifest loaded")
	}
	if info.ReplayedRows != 150 {
		t.Fatalf("replayed = %d, want 150", info.ReplayedRows)
	}
	verifyStore(t, s2, rows)
	s2.Close()
}

func TestCrashLosesNothingWithSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	rows := fillStore(t, s, 30)
	s.Crash() // no flush, no close

	s2 := openSync(t, dir)
	verifyStore(t, s2, rows)
	s2.Close()
}

func TestMergeCheckpointAndReplayOnTop(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	rows := fillStore(t, s, 40)
	s.Table("t").Str("s").Merge(dict.FCBlock)
	if err := s.Err(); err != nil {
		t.Fatalf("checkpoint after merge: %v", err)
	}
	// More rows after the checkpoint; they live only in the WAL.
	sc := s.Table("t").Str("s")
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("post-%d", i)
		sc.Append(v)
		rows = append(rows, v)
		s.Table("t").Int("i").Append(int64((40 + i) * 3))
		s.Table("t").Float("f").Append(float64(40+i) / 4)
	}
	s.Crash()

	s2 := openSync(t, dir)
	info := s2.Recovery()
	if !info.ManifestLoaded {
		t.Fatalf("manifest not loaded: %+v", info)
	}
	if info.CheckpointRows != 40 {
		t.Fatalf("checkpoint rows = %d, want 40", info.CheckpointRows)
	}
	if info.SkippedRows == 0 {
		t.Fatalf("expected checkpoint-covered rows to be skipped during replay")
	}
	verifyStore(t, s2, rows)
	if f := s2.Table("t").Str("s").Format(); f != dict.FCBlock {
		t.Fatalf("recovered format = %s, want fc block", f)
	}
	s2.Close()
}

func TestStoreCheckpointCoversNumericAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 200) // several rotations at 512B segments
	segsFill, _ := listWALSegments(OS, dir)
	if len(segsFill) < 4 {
		t.Fatalf("expected several WAL segments after fill, got %d", len(segsFill))
	}
	s.Table("t").Str("s").Merge(dict.Array)
	// Two checkpoints: truncation requires BOTH retained manifests to cover
	// a segment, so the first one deletes nothing and the second clears the
	// backlog.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listWALSegments(OS, dir)
	if len(segsAfter) >= len(segsFill) {
		t.Fatalf("WAL not truncated: %d -> %d segments", len(segsFill), len(segsAfter))
	}

	// A post-checkpoint row survives through the remaining WAL.
	s.Table("t").Int("i").Append(600)
	s.Close()

	s2 := openSync(t, dir)
	tb := s2.Table("t")
	if tb.Int("i").Len() != 201 || tb.Int("i").Get(200) != 600 {
		t.Fatalf("int tail lost: len=%d", tb.Int("i").Len())
	}
	if tb.Str("s").Len() != len(rows) {
		t.Fatalf("string rows = %d, want %d", tb.Str("s").Len(), len(rows))
	}
	for i, want := range rows {
		if got := tb.Str("s").Get(i); got != want {
			t.Fatalf("row %d = %q, want %q", i, got, want)
		}
	}
	s2.Close()
}

func TestManifestGCKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	fillStore(t, s, 20)
	for i := 0; i < 5; i++ {
		s.Table("t").Int("i").Append(int64(i))
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	entries, _ := os.ReadDir(dir)
	var manifests, parts int
	for _, e := range entries {
		if _, ok := parseManifestSeq(e.Name()); ok {
			manifests++
		}
		if _, ok := parsePartSeq(e.Name()); ok {
			parts++
		}
	}
	if manifests != 2 {
		t.Fatalf("manifests on disk = %d, want 2", manifests)
	}
	// At most 2 manifests × 3 columns parts remain referenced.
	if parts > 6 {
		t.Fatalf("parts on disk = %d, want <= 6", parts)
	}
}

func TestReopenManyGenerations(t *testing.T) {
	dir := t.TempDir()
	var rows []string
	s := openSync(t, dir)
	tb := s.AddTable("t")
	tb.AddString("s", dict.ArrayBC)
	tb.AddInt64("i")
	tb.AddFloat64("f")
	for gen := 0; gen < 6; gen++ {
		tb = s.Table("t")
		for i := 0; i < 15; i++ {
			v := fmt.Sprintf("g%d-%d", gen, i%5)
			tb.Str("s").Append(v)
			rows = append(rows, v)
			tb.Int("i").Append(int64(len(rows) * 3))
			tb.Float("f").Append(float64(len(rows)) / 4)
		}
		switch gen % 3 {
		case 0:
			tb.Str("s").Merge(dict.ArrayBC)
		case 1:
			tb.Str("s").MergePartial(1)
		}
		if gen%2 == 0 {
			s.Crash()
		} else {
			s.Close()
		}
		s = openSync(t, dir)
		sc := s.Table("t").Str("s")
		if sc.Len() != len(rows) {
			t.Fatalf("gen %d: rows = %d, want %d", gen, sc.Len(), len(rows))
		}
		for i, want := range rows {
			if got := sc.Get(i); got != want {
				t.Fatalf("gen %d row %d = %q, want %q", gen, i, got, want)
			}
		}
		ic, fc := s.Table("t").Int("i"), s.Table("t").Float("f")
		for i := range rows {
			if ic.Get(i) != int64((i+1)*3) || fc.Get(i) != float64(i+1)/4 {
				t.Fatalf("gen %d numeric row %d mismatch", gen, i)
			}
		}
	}
	s.Close()
}

func TestSchemaOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	tb := s.AddTable("empty")
	tb.AddString("s", dict.FCInline)
	tb.AddInt64("i")
	s.Close()

	s2 := openSync(t, dir)
	tb = s2.Table("empty")
	if tb.Str("s").Len() != 0 || tb.Str("s").Format() != dict.FCInline {
		t.Fatalf("schema not recovered: len=%d format=%s", tb.Str("s").Len(), tb.Str("s").Format())
	}
	// The recovered column is fully writable.
	tb.Str("s").Append("x")
	tb.Int("i").Append(1)
	s2.Close()

	s3 := openSync(t, dir)
	if got := s3.Table("empty").Str("s").Get(0); got != "x" {
		t.Fatalf("post-recovery append lost: %q", got)
	}
	s3.Close()
}

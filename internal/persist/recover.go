package persist

// Crash recovery. Open reconstructs a store from a persist directory in
// three steps:
//
//  1. Load the newest manifest whose own bytes and every referenced part
//     file verify; fall back to older manifests (two are retained) when the
//     newest is torn or corrupt. The manifest yields the schema and each
//     column's checkpointed prefix.
//  2. Scan the WAL segments in sequence order, frame by frame. A frame that
//     fails its CRC marks a torn tail: the remaining bytes are quarantined
//     to a side file, the segment truncated to its valid prefix, and the
//     scan continues with the next segment (whose header detects any
//     resulting gap).
//  3. Replay: DDL records create missing tables and columns; an append
//     record is applied iff its absolute per-column record index equals the
//     column's current length — records below were already covered by the
//     checkpoint, records above sit beyond a corruption gap and can no
//     longer be placed (counted as lost; the column keeps a consistent
//     prefix).
//
// The result is bit-identical to the snapshot view the pre-crash store
// would have served for every durable row.

import (
	"math"
	"path/filepath"
	"sort"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// ManifestLoaded is false for a fresh (or checkpoint-less) directory.
	ManifestLoaded bool
	// ManifestSeq is the sequence of the manifest actually loaded.
	ManifestSeq uint64
	// ManifestFallbacks counts newer manifests rejected as torn or corrupt
	// (including those whose part files failed verification).
	ManifestFallbacks int
	// CheckpointRows is the total row count restored from part files.
	CheckpointRows uint64
	// Segments is the number of WAL segment files scanned.
	Segments int
	// ReplayedRows counts append records applied from the WAL.
	ReplayedRows uint64
	// SkippedRows counts append records already covered by the checkpoint.
	SkippedRows uint64
	// LostRows counts rows detected as unrecoverable: they sat beyond a
	// corrupt region, so applying later records would misplace them.
	LostRows uint64
	// TornBytes is the total size of quarantined byte ranges.
	TornBytes int64
	// Quarantined lists the side files holding unreadable bytes.
	Quarantined []string
}

// recovered is everything Open needs to resume writing after replay.
type recovered struct {
	store *colstore.Store
	info  RecoveryInfo
	fs    FS // every read/quarantine goes through the seam

	// Registry state for the journal.
	byName map[string]*colState
	byID   map[uint32]*colState
	tables map[string]bool
	nextID uint32

	// WAL continuation state.
	counts     map[uint32]uint64 // next record index per column == col.Len()
	sealed     []segmentInfo
	nextSegSeq uint64

	nextManifestSeq uint64
	nextFileSeq     uint64

	// manifestWalSeq is the loaded manifest's recorded active WAL segment
	// (zero for v1/v2 manifests and fresh stores). It seeds the journal's
	// truncation ceiling so a single post-recovery checkpoint can truncate,
	// instead of resetting the previous-cover state to zero.
	manifestWalSeq uint64
}

// columns indexes live colstore columns by journal id during replay.
type liveCols struct {
	str   map[uint32]*colstore.StringColumn
	ints  map[uint32]*colstore.Int64Column
	flts  map[uint32]*colstore.Float64Column
	table map[string]*colstore.Table
}

func (lc *liveCols) colLen(st *colState) uint64 {
	switch st.kind {
	case partStr:
		if c := lc.str[st.id]; c != nil {
			return uint64(c.Len())
		}
	case partInt:
		if c := lc.ints[st.id]; c != nil {
			return uint64(c.Len())
		}
	case partFloat:
		if c := lc.flts[st.id]; c != nil {
			return uint64(c.Len())
		}
	}
	return 0
}

// recoverDir rebuilds the store and journal state from dir. All reads go
// through fsys, so the fault suite can inject I/O errors at any point of
// Open: a failed manifest or part read falls back manifest-by-manifest like
// corruption does, while a failed WAL read aborts Open — replaying around an
// unreadable segment would silently lose acknowledged rows.
func recoverDir(dir string, fsys FS) (*recovered, error) {
	r := &recovered{
		fs:     fsys,
		byName: make(map[string]*colState),
		byID:   make(map[uint32]*colState),
		tables: make(map[string]bool),
		counts: make(map[uint32]uint64),
	}
	lc := &liveCols{
		str:   make(map[uint32]*colstore.StringColumn),
		ints:  make(map[uint32]*colstore.Int64Column),
		flts:  make(map[uint32]*colstore.Float64Column),
		table: make(map[string]*colstore.Table),
	}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var manifests []uint64
	maxPart := int64(-1)
	for _, name := range names {
		if seq, ok := parseManifestSeq(name); ok {
			manifests = append(manifests, seq)
		}
		if seq, ok := parsePartSeq(name); ok && int64(seq) > maxPart {
			maxPart = int64(seq)
		}
	}
	sort.Slice(manifests, func(a, b int) bool { return manifests[a] > manifests[b] })
	r.nextFileSeq = uint64(maxPart + 1)
	if len(manifests) > 0 {
		r.nextManifestSeq = manifests[0] + 1
	}

	// Step 1: newest loadable manifest wins.
	for _, seq := range manifests {
		store, err := r.tryLoadManifest(dir, seq, lc)
		if err != nil {
			r.info.ManifestFallbacks++
			continue
		}
		r.store = store
		r.info.ManifestLoaded = true
		r.info.ManifestSeq = seq
		break
	}
	if r.store == nil {
		// Fresh directory, or every manifest unreadable: start empty and
		// let the WAL rebuild what it can.
		r.store = colstore.NewStore()
		clear(r.byName)
		clear(r.byID)
		clear(r.tables)
		clear(lc.str)
		clear(lc.ints)
		clear(lc.flts)
		clear(lc.table)
		r.nextID = 0
		r.info.CheckpointRows = 0
		r.manifestWalSeq = 0
	}

	// Steps 2+3: scan and replay the WAL.
	segs, err := listWALSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	r.info.Segments = len(segs)
	if err := r.replay(dir, segs, lc); err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		r.nextSegSeq = segs[len(segs)-1].seq + 1
	}

	// The new active segment continues each column at its true length:
	// record index == row index for everything appended from here on.
	clear(r.counts)
	for id, st := range r.byID {
		if n := lc.colLen(st); n > 0 {
			r.counts[id] = n
		}
	}
	return r, nil
}

// tryLoadManifest builds a store from one manifest, failing if the manifest
// or any referenced part file does not verify. On failure the partially
// built state is discarded by the caller re-running with fresh maps.
func (r *recovered) tryLoadManifest(dir string, seq uint64, lc *liveCols) (*colstore.Store, error) {
	b, err := r.fs.ReadFile(manifestPath(dir, seq))
	if err != nil {
		return nil, err
	}
	mseq, walSeq, cols, err := decManifest(b)
	if err != nil {
		return nil, err
	}
	if mseq != seq {
		return nil, ErrCorrupt
	}

	store := colstore.NewStore()
	clear(r.byName)
	clear(r.byID)
	clear(r.tables)
	clear(lc.str)
	clear(lc.ints)
	clear(lc.flts)
	clear(lc.table)
	r.nextID = 0
	r.info.CheckpointRows = 0
	r.manifestWalSeq = walSeq

	for _, mc := range cols {
		name := mc.table + "." + mc.column
		if _, dup := r.byID[mc.id]; dup {
			return nil, ErrCorrupt
		}
		if _, dup := r.byName[name]; dup {
			return nil, ErrCorrupt
		}
		t := lc.table[mc.table]
		if t == nil {
			t = store.AddTable(mc.table)
			lc.table[mc.table] = t
			r.tables[mc.table] = true
		}
		st := &colState{
			id: mc.id, kind: mc.kind, format: mc.format,
			table: mc.table, column: mc.column,
			persisted: mc.rows, file: mc.file,
		}
		var body []byte
		var rows uint64
		if mc.file != "" {
			pb, err := r.fs.ReadFile(filepath.Join(dir, mc.file))
			if err != nil {
				return nil, err
			}
			var kind uint8
			kind, rows, body, err = decPart(pb)
			if err != nil {
				return nil, err
			}
			if kind != mc.kind || rows != mc.rows {
				return nil, ErrCorrupt
			}
		} else if mc.rows != 0 {
			return nil, ErrCorrupt
		}
		switch mc.kind {
		case partStr:
			c := t.AddString(mc.column, mc.format)
			if body != nil {
				d, codes, err := decStringPart(body, rows)
				if err != nil {
					return nil, err
				}
				c.RestoreMain(d, codes)
			}
			lc.str[mc.id] = c
		case partInt:
			c := t.AddInt64(mc.column)
			if body != nil {
				vals, err := decInt64Part(body, rows)
				if err != nil {
					return nil, err
				}
				c.RestoreVals(vals)
			}
			lc.ints[mc.id] = c
		case partFloat:
			c := t.AddFloat64(mc.column)
			if body != nil {
				vals, err := decFloat64Part(body, rows)
				if err != nil {
					return nil, err
				}
				c.RestoreVals(vals)
			}
			lc.flts[mc.id] = c
		default:
			return nil, ErrCorrupt
		}
		r.byName[name] = st
		r.byID[mc.id] = st
		if mc.id >= r.nextID {
			r.nextID = mc.id + 1
		}
		r.info.CheckpointRows += mc.rows
	}
	return store, nil
}

// quarantine moves the unreadable suffix of a segment to a side file and
// truncates the segment to its valid prefix.
func (r *recovered) quarantine(path string, b []byte, off int) {
	q := path + ".quarantine"
	if err := r.fs.WriteFile(q, b[off:]); err == nil {
		r.info.Quarantined = append(r.info.Quarantined, q)
	}
	r.fs.Truncate(path, int64(off))
	r.info.TornBytes += int64(len(b) - off)
}

// replay scans the segments in order, applying records to the store. A
// segment read error fails recovery outright — unlike a corrupt frame, an
// I/O fault says nothing about where the valid prefix ends, so replaying
// around it could misplace every later row.
func (r *recovered) replay(dir string, segs []segmentInfo, lc *liveCols) error {
	cnt := make(map[uint32]uint64) // running absolute record index per column
	for i := range segs {
		seg := &segs[i]
		b, err := r.fs.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off := len(walMagic) + 1
		if len(b) < off || string(b[:4]) != walMagic || b[4] != walVersion {
			// Unreadable preamble: the whole segment is suspect.
			r.quarantine(seg.path, b, 0)
			r.endSegment(seg, cnt)
			continue
		}
		first := true
		for off < len(b) {
			payload, next, err := readFrame(b, off)
			if err != nil {
				r.quarantine(seg.path, b, off)
				break
			}
			off = next
			if len(payload) == 0 {
				r.quarantine(seg.path, b, off)
				break
			}
			if first {
				if payload[0] != recHeader {
					r.quarantine(seg.path, b, off)
					break
				}
				seq, counts, err := decHeader(payload)
				if err != nil || seq != seg.seq {
					r.quarantine(seg.path, b, off)
					break
				}
				// Adopt the header's absolute positions. A forward jump
				// past our running count means records vanished with a
				// corrupt predecessor — those rows are gone. (The first
				// segment legitimately starts past zero: its predecessors
				// were truncated away after checkpointing.)
				for id, n := range counts {
					if i > 0 && n > cnt[id] {
						r.info.LostRows += n - cnt[id]
					}
					cnt[id] = n
				}
				for id := range cnt {
					if _, ok := counts[id]; !ok {
						// Absent from the header means zero records so
						// far... but our counter disagrees: only possible
						// when the column's rows were all lost with a
						// corrupt segment. Positions restart at zero.
						if i > 0 {
							r.info.LostRows += cnt[id]
						}
						delete(cnt, id)
					}
				}
				first = false
				continue
			}
			r.apply(payload, cnt, lc)
		}
		r.endSegment(seg, cnt)
	}
	return nil
}

// endSegment records a scanned segment's end counts so the journal can
// later truncate it once a checkpoint covers them.
func (r *recovered) endSegment(seg *segmentInfo, cnt map[uint32]uint64) {
	end := make(map[uint32]uint64, len(cnt))
	for id, n := range cnt {
		end[id] = n
	}
	seg.end = end
	r.sealed = append(r.sealed, *seg)
}

// apply replays one record. Unknown kinds are ignored (forward
// compatibility within a version is not attempted — the version byte
// guards that — but a single bad record must not sink the segment).
func (r *recovered) apply(p []byte, cnt map[uint32]uint64, lc *liveCols) {
	switch p[0] {
	case recDDLTable:
		name := string(p[1:])
		if !r.tables[name] {
			r.tables[name] = true
			lc.table[name] = r.store.AddTable(name)
		}
	case recDDLString, recDDLString2, recDDLInt, recDDLFloat:
		r.applyDDLColumn(p, lc)
	case recAppend:
		if len(p) < 5 {
			return
		}
		id := leU32(p[1:])
		if c := lc.str[id]; c != nil && r.applyAt(id, cnt, uint64(c.Len())) {
			c.Append(string(p[5:]))
		}
	case recAppendInt:
		if len(p) != 13 {
			return
		}
		id := leU32(p[1:])
		if c := lc.ints[id]; c != nil && r.applyAt(id, cnt, uint64(c.Len())) {
			c.Append(int64(leU64(p[5:])))
		}
	case recAppendFloat:
		if len(p) != 13 {
			return
		}
		id := leU32(p[1:])
		if c := lc.flts[id]; c != nil && r.applyAt(id, cnt, uint64(c.Len())) {
			c.Append(math.Float64frombits(leU64(p[5:])))
		}
	case recSeal, recMerge, recHeader:
		// Seal ends a segment; merge markers are bookkeeping only (the
		// part files carry the data); a stray header is ignored.
	}
}

// applyAt decides one append record's fate by comparing its absolute index
// with the column's length, and advances the counter either way.
func (r *recovered) applyAt(id uint32, cnt map[uint32]uint64, colLen uint64) bool {
	idx := cnt[id]
	cnt[id] = idx + 1
	switch {
	case idx == colLen:
		r.info.ReplayedRows++
		return true
	case idx < colLen:
		r.info.SkippedRows++
		return false
	default:
		r.info.LostRows++
		return false
	}
}

func (r *recovered) applyDDLColumn(p []byte, lc *liveCols) {
	id, format, table, column, err := decDDLColumn(p)
	if err != nil {
		return
	}
	name := table + "." + column
	if _, ok := r.byName[name]; ok {
		return
	}
	if _, ok := r.byID[id]; ok {
		return // id collision with a manifest column: trust the manifest
	}
	t := lc.table[table]
	if t == nil {
		t = r.store.AddTable(table)
		lc.table[table] = t
		r.tables[table] = true
	}
	var kind uint8
	var f dict.Format
	switch p[0] {
	case recDDLString, recDDLString2:
		// The record carries the registry wire ID. An ID this build does not
		// know (written by a newer or differently configured build) cannot be
		// decoded into a column; skip the record rather than guess a format —
		// a single bad record must not sink the segment.
		var ok bool
		if f, ok = dict.FormatByWireID(format); !ok {
			return
		}
		kind = partStr
		lc.str[id] = t.AddString(column, f)
	case recDDLInt:
		kind = partInt
		lc.ints[id] = t.AddInt64(column)
	default:
		kind = partFloat
		lc.flts[id] = t.AddFloat64(column)
	}
	st := &colState{id: id, kind: kind, format: f, table: table, column: column}
	r.byName[name] = st
	r.byID[id] = st
	if id >= r.nextID {
		r.nextID = id + 1
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

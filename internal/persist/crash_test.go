package persist

// Crash-injection tests: the recovery invariant is that Open never panics,
// never returns an error for a merely-torn directory, and reconstructs each
// column as a prefix of the rows that were appended — never shorter than
// what a completed fsync or checkpoint promised.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

// strColLen returns t.s's length, or -1 when the schema itself was lost.
func strColLen(s *Store) int {
	tb, ok := s.Tables["t"]
	if !ok {
		return -1
	}
	for _, c := range tb.StringColumns() {
		if c.Name() == "t.s" {
			return c.Len()
		}
	}
	return -1
}

// copyDir clones a persist directory so each injection runs on fresh bytes.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyPrefix checks that every column holds a prefix of its expected rows
// and that all three columns are equally long (appends were row-aligned).
func verifyPrefix(t *testing.T, s *Store, rows []string, minRows int, ctx string) {
	t.Helper()
	tb, ok := s.Tables["t"]
	if !ok {
		// The truncation swallowed the DDL records themselves; legitimate
		// only when nothing was promised durable.
		if minRows > 0 {
			t.Fatalf("%s: table lost despite %d checkpointed rows", ctx, minRows)
		}
		return
	}
	var sc *colstore.StringColumn
	for _, c := range tb.StringColumns() {
		if c.Name() == "t.s" {
			sc = c
		}
	}
	var ic *colstore.Int64Column
	for _, c := range tb.Int64Columns() {
		if c.Name() == "t.i" {
			ic = c
		}
	}
	var fc *colstore.Float64Column
	for _, c := range tb.Float64Columns() {
		if c.Name() == "t.f" {
			fc = c
		}
	}
	if (sc == nil || ic == nil || fc == nil) && minRows > 0 {
		t.Fatalf("%s: columns lost despite %d checkpointed rows", ctx, minRows)
	}
	if sc != nil {
		n := sc.Len()
		if n < minRows || n > len(rows) {
			t.Fatalf("%s: string rows = %d, want [%d, %d]", ctx, n, minRows, len(rows))
		}
		for i := 0; i < n; i++ {
			if got := sc.Get(i); got != rows[i] {
				t.Fatalf("%s: row %d = %q, want %q", ctx, i, got, rows[i])
			}
		}
	}
	if ic != nil {
		for i := 0; i < ic.Len(); i++ {
			if ic.Get(i) != int64(i*3) {
				t.Fatalf("%s: int row %d = %d", ctx, i, ic.Get(i))
			}
		}
	}
	if fc != nil {
		for i := 0; i < fc.Len(); i++ {
			if fc.Get(i) != float64(i)/4 {
				t.Fatalf("%s: float row %d = %v", ctx, i, fc.Get(i))
			}
		}
	}
}

// TestWALTruncationAtEveryOffset builds a WAL-only store, then truncates
// the log at every byte offset: recovery must always produce a clean row
// prefix and a second recovery of the same directory must be identical
// (quarantine + truncate converge).
func TestWALTruncationAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	s := openSync(t, master)
	rows := fillStore(t, s, 12)
	s.Close()

	segs, err := listWALSegments(OS, master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %d (%v), want 1", len(segs), err)
	}
	full, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(segs[0].path)

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		copyDir(t, master, dir)
		if err := os.WriteFile(filepath.Join(dir, base), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s1, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		verifyPrefix(t, s1, rows, 0, fmt.Sprintf("cut %d", cut))
		n1 := strColLen(s1)
		s1.Close()

		s2, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if n2 := strColLen(s2); n2 != n1 {
			t.Fatalf("cut %d: second recovery %d rows, first %d", cut, n2, n1)
		}
		s2.Close()
	}
}

// TestWALBitFlipAtEveryOffset flips one byte at a time: a flip can only
// shorten the recovered prefix (torn tail from that frame on), never
// corrupt surviving rows — except inside a value's own bytes, which the
// CRC catches, discarding the frame.
func TestWALBitFlipAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	s := openSync(t, master)
	rows := fillStore(t, s, 8)
	s.Close()

	segs, _ := listWALSegments(OS, master)
	full, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(segs[0].path)

	for off := 0; off < len(full); off++ {
		dir := t.TempDir()
		copyDir(t, master, dir)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x55
		if err := os.WriteFile(filepath.Join(dir, base), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s1, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("flip %d: open: %v", off, err)
		}
		verifyPrefix(t, s1, rows, 0, fmt.Sprintf("flip %d", off))
		s1.Close()
	}
}

// buildCheckpointed creates a store with a checkpoint at 20 rows and 8 more
// rows in the WAL only.
func buildCheckpointed(t *testing.T) (string, []string) {
	t.Helper()
	master := t.TempDir()
	s := openSync(t, master)
	rows := fillStore(t, s, 20)
	s.Table("t").Str("s").Merge(dict.FCBlock)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // cover numerics too
		t.Fatal(err)
	}
	tb := s.Table("t")
	for i := 20; i < 28; i++ {
		v := fmt.Sprintf("value-%03d", i%7)
		tb.Str("s").Append(v)
		rows = append(rows, v)
		tb.Int("i").Append(int64(i * 3))
		tb.Float("f").Append(float64(i) / 4)
	}
	s.Close()
	return master, rows
}

// TestCheckpointedWALTruncationAtEveryOffset truncates the live WAL segment
// at every offset on top of a checkpoint: recovery must never fall below
// the checkpointed 20 rows.
func TestCheckpointedWALTruncationAtEveryOffset(t *testing.T) {
	master, rows := buildCheckpointed(t)
	segs, err := listWALSegments(OS, master)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v", err)
	}
	last := segs[len(segs)-1]
	full, err := os.ReadFile(last.path)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(last.path)

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		copyDir(t, master, dir)
		if err := os.WriteFile(filepath.Join(dir, base), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s1, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if !s1.Recovery().ManifestLoaded {
			t.Fatalf("cut %d: checkpoint not loaded", cut)
		}
		verifyPrefix(t, s1, rows, 20, fmt.Sprintf("cut %d", cut))
		s1.Close()
	}
}

// TestManifestCorruptionFallsBack corrupts the newest manifest at every
// byte: recovery falls back to the previous manifest and must still
// reconstruct every row, because WAL truncation only covers rows both
// manifests persist.
func TestManifestCorruptionFallsBack(t *testing.T) {
	master, rows := buildCheckpointed(t)
	var newest uint64
	entries, _ := os.ReadDir(master)
	var count int
	for _, e := range entries {
		if seq, ok := parseManifestSeq(e.Name()); ok {
			count++
			if seq > newest {
				newest = seq
			}
		}
	}
	if count < 2 {
		t.Fatalf("manifests = %d, want >= 2", count)
	}
	full, err := os.ReadFile(manifestPath(master, newest))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(manifestPath(master, newest))

	for off := 0; off < len(full); off += 3 {
		dir := t.TempDir()
		copyDir(t, master, dir)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, base), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s1, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("off %d: open: %v", off, err)
		}
		// Either the flip still verifies structurally never — CRC covers
		// everything — so a fallback must have happened and no row is lost.
		if got := s1.Table("t").Str("s").Len(); got != len(rows) {
			t.Fatalf("off %d: rows = %d, want %d (fallbacks=%d)",
				off, got, len(rows), s1.Recovery().ManifestFallbacks)
		}
		verifyPrefix(t, s1, rows, len(rows), fmt.Sprintf("manifest flip %d", off))
		s1.Close()
	}

	// Newest manifest deleted outright: same guarantee.
	dir := t.TempDir()
	copyDir(t, master, dir)
	os.Remove(filepath.Join(dir, base))
	s1, err := Open(dir, syncOpts)
	if err != nil {
		t.Fatal(err)
	}
	verifyPrefix(t, s1, rows, len(rows), "manifest removed")
	s1.Close()
}

// TestPartCorruptionFallsBack corrupts each part file referenced by the
// newest manifest; recovery must reject that manifest and still serve all
// rows via the fallback manifest plus the WAL.
func TestPartCorruptionFallsBack(t *testing.T) {
	master, rows := buildCheckpointed(t)
	var newest uint64
	entries, _ := os.ReadDir(master)
	for _, e := range entries {
		if seq, ok := parseManifestSeq(e.Name()); ok && seq > newest {
			newest = seq
		}
	}
	b, err := os.ReadFile(manifestPath(master, newest))
	if err != nil {
		t.Fatal(err)
	}
	_, _, cols, err := decManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range cols {
		if mc.file == "" {
			continue
		}
		for _, mode := range []string{"flip", "truncate", "remove"} {
			dir := t.TempDir()
			copyDir(t, master, dir)
			p := filepath.Join(dir, mc.file)
			pb, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "flip":
				pb[len(pb)/2] ^= 0x01
				os.WriteFile(p, pb, 0o644)
			case "truncate":
				os.WriteFile(p, pb[:len(pb)/2], 0o644)
			case "remove":
				os.Remove(p)
			}
			s1, err := Open(dir, syncOpts)
			if err != nil {
				t.Fatalf("%s %s: open: %v", mc.file, mode, err)
			}
			ctx := fmt.Sprintf("part %s %s", mc.file, mode)
			verifyPrefix(t, s1, rows, len(rows), ctx)
			s1.Close()
		}
	}
}

// TestQuarantineFilesWritten checks that a torn tail leaves a quarantine
// side file holding the removed bytes.
func TestQuarantineFilesWritten(t *testing.T) {
	master := t.TempDir()
	s := openSync(t, master)
	fillStore(t, s, 10)
	s.Close()
	segs, _ := listWALSegments(OS, master)
	full, _ := os.ReadFile(segs[0].path)
	cut := len(full) - 3
	os.WriteFile(segs[0].path, full[:cut], 0o644)

	s1, err := Open(master, syncOpts)
	if err != nil {
		t.Fatal(err)
	}
	info := s1.Recovery()
	if info.TornBytes == 0 || len(info.Quarantined) == 0 {
		t.Fatalf("no quarantine recorded: %+v", info)
	}
	qb, err := os.ReadFile(info.Quarantined[0])
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if len(qb) == 0 {
		t.Fatalf("quarantine file empty")
	}
	s1.Close()
}

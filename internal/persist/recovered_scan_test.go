package persist

import (
	"fmt"
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/dict"
)

// TestRecoveredStoreKernelsMatchScalar: after checkpoint + crash + recovery,
// the vectorized scan kernels on the recovered column must agree with the
// scalar oracles — and the zone maps rebuilt during recovery must actually
// prune. The column is clustered (values appended in sorted runs) and large
// enough for several 4096-row zones, so a selective probe that scans every
// zone would be a regression even if the row sets still matched.
func TestRecoveredStoreKernelsMatchScalar(t *testing.T) {
	const rows = 14000 // > 3 full zones of 4096
	dir := t.TempDir()

	s := openSync(t, dir)
	tb := s.AddTable("t")
	sc := tb.AddString("s", dict.Array)
	values := make([]string, rows)
	for i := range values {
		values[i] = fmt.Sprintf("key-%05d", i/100) // clustered: zone n covers a narrow run
	}
	for _, v := range values {
		sc.Append(v)
	}
	sc.Merge(sc.Format())
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint unmerged tail, so recovery has both a main part to
	// load and WAL rows to replay into the delta.
	tailPool := datagen.Generate(datagen.Names()[0], 200, 1)
	for i := 0; i < 500; i++ {
		v := tailPool[i%len(tailPool)]
		sc.Append(v)
		values = append(values, v)
	}
	s.Crash()

	s2 := openSync(t, dir)
	defer s2.Close()
	rc := s2.Table("t").Str("s")
	if rc.Len() != len(values) {
		t.Fatalf("recovered rows = %d, want %d", rc.Len(), len(values))
	}
	rc.ResetStats()

	snap := rc.Snapshot()
	probes := []string{
		"key-00000",                           // first cluster
		"key-00071",                           // mid cluster
		fmt.Sprintf("key-%05d", (rows-1)/100), // last main cluster
		tailPool[3],                           // delta-resident value
		"key-00071\x01never",                  // absent
	}
	for _, p := range probes {
		kern := snap.ScanEq(p, nil)
		scal := snap.ScanEqScalar(p, nil)
		if fmt.Sprint(kern) != fmt.Sprint(scal) {
			t.Fatalf("recovered ScanEq(%q): kernel %d rows, scalar %d rows", p, len(kern), len(scal))
		}
		if got := snap.CountEq(p); got != len(scal) {
			t.Fatalf("recovered CountEq(%q) = %d, scalar %d", p, got, len(scal))
		}
	}
	for _, r := range [][2]string{
		{"key-00010", "key-00020"},
		{"", "\xff"},
		{"key-00139", "key-00139"},
	} {
		kern := snap.ScanRange(r[0], r[1], nil)
		scal := snap.ScanRangeScalar(r[0], r[1], nil)
		if fmt.Sprint(kern) != fmt.Sprint(scal) {
			t.Fatalf("recovered ScanRange(%q,%q): kernel %d rows, scalar %d rows", r[0], r[1], len(kern), len(scal))
		}
	}

	// Zone counters flow into ScanStats when the snapshot is released.
	snap.Release()
	st := rc.ScanStats()
	if st.ZonesSkipped == 0 {
		t.Fatal("recovered column never skipped a zone: zone maps were not rebuilt")
	}
	if st.ZonesScanned == 0 {
		t.Fatal("recovered column scanned no zones")
	}
}

package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{recSeal},
		encAppend(3, "hello"),
		encAppend(0, ""),
		encHeader(7, map[uint32]uint64{1: 10, 0: 3}),
		encDDLColumn(recDDLString, 2, 5, "lineitem", "l_shipmode"),
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	off := 0
	for i, want := range payloads {
		got, next, err := readFrame(buf, off)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("trailing bytes after last frame")
	}

	// Every strict prefix of the stream ends in a torn frame.
	for cut := off - 1; cut > off-9 && cut >= 0; cut-- {
		o := 0
		var err error
		for {
			_, o, err = readFrame(buf[:cut], o)
			if err != nil {
				break
			}
		}
		if !errors.Is(err, errTorn) {
			t.Fatalf("cut %d: err = %v, want errTorn", cut, err)
		}
	}

	// A flipped byte is torn, not misread.
	bad := append([]byte(nil), buf...)
	bad[8] ^= 0x40 // the first frame's payload byte
	if _, _, err := readFrame(bad, 0); !errors.Is(err, errTorn) {
		t.Fatalf("corrupt frame: err = %v, want errTorn", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	counts := map[uint32]uint64{9: 1, 2: 1 << 40, 5: 0}
	p := encHeader(42, counts)
	seq, got, err := decHeader(p)
	if err != nil || seq != 42 {
		t.Fatalf("decHeader: seq=%d err=%v", seq, err)
	}
	if len(got) != len(counts) {
		t.Fatalf("counts = %v", got)
	}
	for id, n := range counts {
		if got[id] != n {
			t.Fatalf("count[%d] = %d, want %d", id, got[id], n)
		}
	}
	if _, _, err := decHeader(p[:len(p)-1]); err == nil {
		t.Fatalf("short header accepted")
	}
}

func TestDDLColumnRoundTrip(t *testing.T) {
	for _, kind := range []byte{recDDLString2, recDDLInt, recDDLFloat} {
		p := encDDLColumn(kind, 17, 300, "part", "p_type")
		id, format, table, column, err := decDDLColumn(p)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if id != 17 || table != "part" || column != "p_type" {
			t.Fatalf("kind %d: id=%d %s.%s", kind, id, table, column)
		}
		if kind == recDDLString2 && format != 300 {
			t.Fatalf("string format = %d", format)
		}
		if _, _, _, _, err := decDDLColumn(append(p, 0)); err == nil {
			t.Fatalf("trailing byte accepted")
		}
	}
}

// TestDDLColumnLegacyString decodes a hand-built pre-registry ddlStr record
// (single-byte format). Writers no longer emit it, readers must keep
// accepting it.
func TestDDLColumnLegacyString(t *testing.T) {
	p := []byte{recDDLString, 17, 0, 0, 0, 4}
	p = appendStr16(p, "part")
	p = appendStr16(p, "p_type")
	id, format, table, column, err := decDDLColumn(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 17 || format != 4 || table != "part" || column != "p_type" {
		t.Fatalf("got id=%d format=%d %s.%s", id, format, table, column)
	}
}

func TestWALRotationAndHeaders(t *testing.T) {
	dir := t.TempDir()
	w, err := newWAL(walConfig{dir: dir, segBytes: 256, fsync: -1}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.append(encAppend(1, "some-value-padding-padding"), true, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listWALSegments(OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments = %d (err %v), want several", len(segs), err)
	}

	// Each segment's header must carry the running count at its start, and
	// the records must chain without gaps.
	var cnt uint64
	for i, seg := range segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(b[:4]) != walMagic || b[4] != walVersion {
			t.Fatalf("segment %d: bad preamble", i)
		}
		off := 5
		payload, off, err := readFrame(b, off)
		if err != nil {
			t.Fatalf("segment %d: header: %v", i, err)
		}
		seq, counts, err := decHeader(payload)
		if err != nil || seq != seg.seq {
			t.Fatalf("segment %d: header seq=%d err=%v", i, seq, err)
		}
		if counts[1] != cnt {
			t.Fatalf("segment %d: header count %d, want %d", i, counts[1], cnt)
		}
		for off < len(b) {
			payload, off, err = readFrame(b, off)
			if err != nil {
				t.Fatalf("segment %d: torn at %d: %v", i, off, err)
			}
			if payload[0] == recAppend {
				cnt++
			}
		}
	}
	if cnt != 100 {
		t.Fatalf("replayed %d appends, want 100", cnt)
	}
}

func TestWALDeleteCovered(t *testing.T) {
	dir := t.TempDir()
	w, err := newWAL(walConfig{dir: dir, segBytes: 200, fsync: -1}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		w.append(encAppend(0, "pad-pad-pad-pad-pad-pad"), true, 0)
	}
	w.mu.Lock()
	nSealed := len(w.sealed)
	var firstEnd uint64
	if nSealed > 0 {
		firstEnd = w.sealed[0].end[0]
	}
	active := w.seq
	w.mu.Unlock()
	if nSealed < 2 {
		t.Fatalf("sealed = %d, want >= 2", nSealed)
	}

	// Not covered: nothing deleted.
	w.deleteCovered(map[uint32]uint64{0: firstEnd - 1}, active)
	if got := len(w.sealed); got != nSealed {
		t.Fatalf("deleted despite cover too low: %d -> %d", nSealed, got)
	}
	// Covered but maxSeq too low: nothing deleted.
	w.deleteCovered(map[uint32]uint64{0: 1 << 32}, 0)
	if got := len(w.sealed); got != nSealed {
		t.Fatalf("deleted despite maxSeq 0")
	}
	// First segment covered.
	w.deleteCovered(map[uint32]uint64{0: firstEnd}, active)
	if got := len(w.sealed); got != nSealed-1 {
		t.Fatalf("sealed after delete = %d, want %d", got, nSealed-1)
	}
	if _, err := os.Stat(walSegmentPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("segment 0 still on disk: %v", err)
	}
	// Everything covered.
	w.deleteCovered(map[uint32]uint64{0: 1 << 32}, active)
	if len(w.sealed) != 0 {
		t.Fatalf("sealed not emptied: %d", len(w.sealed))
	}
	w.close()
}

var errInjected = errors.New("injected fault")

// TestWALStickyWriteError: with retries disabled, a permanent write or sync
// fault makes the WAL error sticky — every later append and sync reports it,
// refused row records are counted, and the health state is read-only.
func TestWALStickyWriteError(t *testing.T) {
	for _, mode := range []Op{OpWrite, OpSync} {
		dir := t.TempDir()
		ffs := &FaultFS{}
		w, err := newWAL(walConfig{
			dir: dir, segBytes: 1 << 20, fsync: -1,
			fs:     ffs,
			retry:  newRetryPolicy(-1, time.Microsecond),
			health: newHealthTracker(nil),
		}, 0, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mode == OpWrite {
			ffs.FailNextWriteShort(40, errInjected, nil)
			ffs.FailAll(OpWrite, errInjected, nil)
		} else {
			ffs.FailAll(OpSync, errInjected, nil)
		}

		if err := w.append(encAppend(0, "zz"), true, 0); !errors.Is(err, errInjected) {
			t.Fatalf("%v: first append err = %v", mode, err)
		}
		if err := w.append(encAppend(0, "zz"), true, 0); !errors.Is(err, errInjected) {
			t.Fatalf("%v: error not sticky: %v", mode, err)
		}
		if err := w.sync(); !errors.Is(err, errInjected) {
			t.Fatalf("%v: sync err = %v", mode, err)
		}
		if got := w.droppedRows(); got != 1 {
			t.Fatalf("%v: droppedRows = %d, want 1", mode, got)
		}
		if got := w.health.current(); got != StateReadOnly {
			t.Fatalf("%v: health = %v, want read-only", mode, got)
		}
		ffs.Clear()
		w.close()
	}
}

// TestWALRetryRecoversTransientFault: a fault shorter than the retry budget
// is absorbed — the flush succeeds, nothing is sticky, and a partially
// written buffer resumes at the first unwritten byte instead of duplicating
// frames (verified by replaying the segment).
func TestWALRetryRecoversTransientFault(t *testing.T) {
	for _, mode := range []Op{OpWrite, OpSync} {
		dir := t.TempDir()
		ffs := &FaultFS{}
		w, err := newWAL(walConfig{
			dir: dir, segBytes: 1 << 20, fsync: -1,
			fs:     ffs,
			retry:  retryPolicy{attempts: 4, backoff: time.Microsecond, sleep: func(time.Duration) {}},
			health: newHealthTracker(nil),
		}, 0, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mode == OpWrite {
			ffs.FailNextWriteShort(3, errInjected, nil) // torn mid-preamble
		} else {
			ffs.FailNext(OpSync, 2, errInjected, nil)
		}
		for i := 0; i < 5; i++ {
			if err := w.append(encAppend(0, "val"), true, 0); err != nil {
				t.Fatalf("%v: append %d: %v", mode, i, err)
			}
		}
		if err := w.close(); err != nil {
			t.Fatalf("%v: close: %v", mode, err)
		}

		b, err := os.ReadFile(walSegmentPath(dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		if string(b[:4]) != walMagic {
			t.Fatalf("%v: bad preamble after retried write", mode)
		}
		off, appends := 5, 0
		for off < len(b) {
			var payload []byte
			payload, off, err = readFrame(b, off)
			if err != nil {
				t.Fatalf("%v: torn/duplicated frame at %d: %v", mode, off, err)
			}
			if payload[0] == recAppend {
				appends++
			}
		}
		if appends != 5 {
			t.Fatalf("%v: replayed %d appends, want 5", mode, appends)
		}
	}
}

func TestWriteAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	if err := writeAtomicFS(OS, p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back: %q %v", b, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}

package persist

// Durability benchmarks, consumed by scripts/bench_recovery.sh:
//
//   - BenchmarkAppendDurability compares a plain in-memory column append
//     with the same append journaled to the WAL (group commit, and the
//     worst-case fsync-every-append mode).
//   - BenchmarkRecovery measures Open on a prepared directory, both
//     replay-heavy (all rows in the WAL) and checkpoint-heavy (all rows in
//     part files) — the two recovery extremes.
//
// BenchmarkIncrementalCheckpoint is consumed by
// scripts/bench_incremental_ckpt.sh instead: it measures bytes written per
// checkpoint on a 16-column store with everything dirty vs one column dirty,
// and the script gates on the byte reduction.

import (
	"fmt"
	"os"
	"testing"

	"strdict/internal/colstore"
	"strdict/internal/dict"
)

func benchValues(n int) []string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("value-%07d", i%977)
	}
	return vals
}

func BenchmarkAppendDurability(b *testing.B) {
	vals := benchValues(1 << 12)

	b.Run("inmemory", func(b *testing.B) {
		s := colstore.NewStore()
		c := s.AddTable("t").AddString("s", dict.Array)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Append(vals[i&(len(vals)-1)])
		}
	})

	b.Run("wal", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := s.AddTable("t").AddString("s", dict.Array)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Append(vals[i&(len(vals)-1)])
		}
		b.StopTimer()
		if err := s.Sync(); err != nil {
			b.Fatal(err)
		}
	})

	b.Run("walsync", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{FsyncInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := s.AddTable("t").AddString("s", dict.Array)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Append(vals[i&(len(vals)-1)])
		}
	})
}

// benchDir prepares a directory holding rows string rows; checkpointed
// selects whether they sit in part files (merged + checkpointed) or purely
// in the WAL.
func benchDir(b *testing.B, rows int, checkpointed bool) string {
	b.Helper()
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := s.AddTable("t").AddString("s", dict.Array)
	vals := benchValues(1 << 12)
	for i := 0; i < rows; i++ {
		c.Append(vals[i&(len(vals)-1)])
	}
	if checkpointed {
		c.Merge(dict.FCBlock)
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func BenchmarkRecovery(b *testing.B) {
	const rows = 200_000
	for _, mode := range []string{"replay", "checkpoint"} {
		b.Run(mode, func(b *testing.B) {
			dir := benchDir(b, rows, mode == "checkpoint")
			var bytes int64
			if entries, err := os.ReadDir(dir); err == nil {
				for _, e := range entries {
					if fi, err := e.Info(); err == nil {
						bytes += fi.Size()
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got := s.Table("t").Str("s").Len(); got != rows {
					b.Fatalf("recovered %d rows, want %d", got, rows)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(float64(bytes)*float64(b.N)/b.Elapsed().Seconds()/(1<<20), "MB/s")
		})
	}
}

// BenchmarkIncrementalCheckpoint checkpoints a 16-column store repeatedly:
// "full" dirties every column before each checkpoint (the pre-incremental
// behavior, where every checkpoint rewrites every part), "1of16" dirties a
// single column, so the checkpoint rewrites one part and re-references the
// other fifteen. The headline metric is bytes written per checkpoint (part
// files plus the manifest).
func BenchmarkIncrementalCheckpoint(b *testing.B) {
	const (
		ncols = 16
		rows  = 10_000
	)
	for _, mode := range []struct {
		name  string
		dirty int
	}{{"full", ncols}, {"1of16", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			tb := s.AddTable("t")
			cols := make([]*colstore.Int64Column, ncols)
			for i := range cols {
				cols[i] = tb.AddInt64(fmt.Sprintf("c%02d", i))
			}
			for r := 0; r < rows; r++ {
				for _, c := range cols {
					c.Append(int64(r))
				}
			}
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			var bytes, parts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < mode.dirty; k++ {
					cols[k].Append(int64(i))
				}
				if err := s.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				st := s.LastCheckpoint()
				bytes += st.PartBytes + st.ManifestBytes
				parts += uint64(st.PartsWritten)
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
			b.ReportMetric(float64(parts)/float64(b.N), "parts/op")
		})
	}
}

package persist

// Checkpoint files. A checkpoint is a set of immutable part files — one per
// column — plus a manifest naming them. Part files hold a column's durable
// prefix (a string column's merged main part, or a numeric column's full
// value slice at checkpoint time) and are written once, never modified:
//
//	part     "SCKP" | version u8 | kind u8 | rows u64 | body | crc u32
//	  str    body = dictLen u32 | dict.Marshal bytes | intcomp.Marshal bytes
//	  int64  body = rows × u64 (two's complement, little endian)
//	  float  body = rows × u64 (IEEE 754 bits, little endian)
//
//	manifest "SMAN" | version u8 | seq u64 | walSeq u64 | ncols u32 | entries | crc u32
//	  entry  id u32 | kind u8 | format u16 | rows u64 |
//	         table str16 | column str16 | file str16
//
// A string column's format field is the dictionary format's registry wire
// ID. Manifest version 1 stored it as a single byte (the pre-registry
// format enum, equal to the built-ins' wire IDs); version 2 widened it to
// u16 for registered extensions. Version 3 — the incremental-checkpoint
// part-reference form — added walSeq: the WAL segment that was active when
// the manifest was written. Every sealed segment with seq < walSeq predates
// the manifest, so its schema (DDL records) is fully contained in it; WAL
// truncation uses the *older* retained manifest's walSeq as its ceiling,
// and recovery seeds that ceiling from the loaded manifest instead of
// resetting it to zero. v1/v2 decode with walSeq = 0, which only makes
// truncation conservative. All versions decode through the registry; an
// unknown wire ID is ErrCorrupt, which makes recovery fall back to the
// previous manifest instead of mis-decoding the column.
//
// Both checksums are CRC32C over every preceding byte. Files are written to
// a .tmp name, fsynced, renamed into place and the directory fsynced, so a
// file that exists under its final name is complete. A new manifest reuses
// the part files of unchanged columns; the two newest manifests and the
// union of their parts are retained, older ones garbage collected, which is
// why a torn or corrupt newest manifest never strands the store — recovery
// falls back to its predecessor, whose parts are still on disk.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

const (
	partMagic   = "SCKP"
	partVersion = 1

	manifestMagic   = "SMAN"
	manifestVersion = 3

	// Part kinds (column types).
	partStr   = 0
	partInt   = 1
	partFloat = 2
)

func partPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("p%08d.part", seq))
}

func manifestPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%08d", seq))
}

func parseManifestSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "manifest-%08d", &seq); err != nil {
		return 0, false
	}
	return seq, name == fmt.Sprintf("manifest-%08d", seq)
}

func parsePartSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "p%08d.part", &seq); err != nil {
		return 0, false
	}
	return seq, name == fmt.Sprintf("p%08d.part", seq)
}

// Part encoding. (Atomic file writes live in fs.go: writeAtomicFS over the
// FS seam, so checkpoints are fault-injectable like the WAL.)

func appendPartHeader(dst []byte, kind uint8, rows uint64) []byte {
	dst = append(dst, partMagic...)
	dst = append(dst, partVersion, kind)
	return binary.LittleEndian.AppendUint64(dst, rows)
}

func appendPartFooter(dst []byte) []byte {
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, crcTable))
}

func encStringPart(d dict.Dictionary, codes intcomp.Vector) ([]byte, error) {
	db, err := dict.Marshal(d)
	if err != nil {
		return nil, err
	}
	buf := appendPartHeader(make([]byte, 0, 22+len(db)), partStr, uint64(codes.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(db)))
	buf = append(buf, db...)
	buf, err = intcomp.AppendMarshal(buf, codes)
	if err != nil {
		return nil, err
	}
	return appendPartFooter(buf), nil
}

func encInt64Part(vals []int64) []byte {
	buf := appendPartHeader(make([]byte, 0, 18+8*len(vals)), partInt, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return appendPartFooter(buf)
}

func encFloat64Part(vals []float64) []byte {
	buf := appendPartHeader(make([]byte, 0, 18+8*len(vals)), partFloat, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return appendPartFooter(buf)
}

// decPart verifies a part file's envelope and returns its kind, row count
// and body.
func decPart(b []byte) (kind uint8, rows uint64, body []byte, err error) {
	if len(b) < 18 || string(b[:4]) != partMagic {
		return 0, 0, nil, ErrCorrupt
	}
	sum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(b[:len(b)-4], crcTable) != sum {
		return 0, 0, nil, ErrCorrupt
	}
	if b[4] != partVersion {
		return 0, 0, nil, fmt.Errorf("persist: unsupported part version %d", b[4])
	}
	kind = b[5]
	rows = binary.LittleEndian.Uint64(b[6:])
	return kind, rows, b[14 : len(b)-4], nil
}

// decStringPart reconstructs a string column's main part, validating that
// the code vector matches the stated row count and stays within the
// dictionary's domain.
func decStringPart(body []byte, rows uint64) (dict.Dictionary, intcomp.Vector, error) {
	if len(body) < 4 {
		return nil, nil, ErrCorrupt
	}
	dl := int(binary.LittleEndian.Uint32(body))
	if dl < 0 || 4+dl > len(body) {
		return nil, nil, ErrCorrupt
	}
	d, err := dict.Unmarshal(body[4 : 4+dl])
	if err != nil {
		return nil, nil, err
	}
	codes, err := intcomp.Unmarshal(body[4+dl:])
	if err != nil {
		return nil, nil, err
	}
	if uint64(codes.Len()) != rows {
		return nil, nil, ErrCorrupt
	}
	domain := uint64(d.Len())
	for i := 0; i < codes.Len(); i++ {
		if codes.Get(i) >= domain {
			return nil, nil, ErrCorrupt
		}
	}
	return d, codes, nil
}

func decInt64Part(body []byte, rows uint64) ([]int64, error) {
	if rows > uint64(len(body))/8 || uint64(len(body)) != rows*8 {
		return nil, ErrCorrupt
	}
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return vals, nil
}

func decFloat64Part(body []byte, rows uint64) ([]float64, error) {
	if rows > uint64(len(body))/8 || uint64(len(body)) != rows*8 {
		return nil, ErrCorrupt
	}
	vals := make([]float64, rows)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return vals, nil
}

// Manifest encoding.

// manifestCol is one column's entry in a manifest: which part file holds its
// durable prefix and how many rows that prefix covers.
type manifestCol struct {
	id     uint32
	kind   uint8
	format dict.Format // string columns only
	rows   uint64
	table  string
	column string
	file   string // part file base name, "" when rows == 0
}

func encManifest(seq, walSeq uint64, cols []manifestCol) []byte {
	buf := make([]byte, 0, 25+48*len(cols))
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, walSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cols)))
	for _, c := range cols {
		buf = binary.LittleEndian.AppendUint32(buf, c.id)
		buf = append(buf, c.kind)
		var wire uint16
		if c.kind == partStr {
			wire = c.format.WireID()
		}
		buf = binary.LittleEndian.AppendUint16(buf, wire)
		buf = binary.LittleEndian.AppendUint64(buf, c.rows)
		buf = appendStr16(buf, c.table)
		buf = appendStr16(buf, c.column)
		buf = appendStr16(buf, c.file)
	}
	return appendPartFooter(buf)
}

func decManifest(b []byte) (seq, walSeq uint64, cols []manifestCol, err error) {
	if len(b) < 21 || string(b[:4]) != manifestMagic {
		return 0, 0, nil, ErrCorrupt
	}
	sum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(b[:len(b)-4], crcTable) != sum {
		return 0, 0, nil, ErrCorrupt
	}
	version := b[4]
	if version < 1 || version > manifestVersion {
		return 0, 0, nil, fmt.Errorf("persist: unsupported manifest version %d", version)
	}
	seq = binary.LittleEndian.Uint64(b[5:])
	off := 13
	if version >= 3 {
		if len(b) < 29 {
			return 0, 0, nil, ErrCorrupt
		}
		walSeq = binary.LittleEndian.Uint64(b[13:])
		off = 21
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	if n < 0 || n > 1<<20 {
		return 0, 0, nil, ErrCorrupt
	}
	body := b[:len(b)-4]
	off += 4
	// Fixed prefix of an entry before the str16 fields: version 1 carried a
	// single-byte format, version 2 a u16 wire ID.
	prefix := 15
	if version == 1 {
		prefix = 14
	}
	cols = make([]manifestCol, 0, n)
	for i := 0; i < n; i++ {
		if off+prefix > len(body) {
			return 0, 0, nil, ErrCorrupt
		}
		c := manifestCol{
			id:   binary.LittleEndian.Uint32(body[off:]),
			kind: body[off+4],
		}
		var wire uint16
		if version == 1 {
			wire = uint16(body[off+5])
			c.rows = binary.LittleEndian.Uint64(body[off+6:])
		} else {
			wire = binary.LittleEndian.Uint16(body[off+5:])
			c.rows = binary.LittleEndian.Uint64(body[off+7:])
		}
		if c.kind == partStr {
			f, ok := dict.FormatByWireID(wire)
			if !ok {
				return 0, 0, nil, ErrCorrupt
			}
			c.format = f
		}
		off += prefix
		if c.table, off, err = readStr16(body, off); err != nil {
			return 0, 0, nil, err
		}
		if c.column, off, err = readStr16(body, off); err != nil {
			return 0, 0, nil, err
		}
		if c.file, off, err = readStr16(body, off); err != nil {
			return 0, 0, nil, err
		}
		cols = append(cols, c)
	}
	if off != len(body) {
		return 0, 0, nil, ErrCorrupt
	}
	return seq, walSeq, cols, nil
}

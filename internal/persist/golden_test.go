package persist

// Cross-version recovery compatibility. testdata/golden-store-v1 is a frozen
// pre-registry store directory: manifest version 1 (single-byte format
// field), legacy ddlStr WAL records, and serialization-v2 dictionary blobs
// inside the part files. It was produced by crashing a store that had
// checkpointed 13 rows into each of 18 string columns (one per built-in
// format, column cNN using format NN) and then appended 2 more rows to each,
// so recovery exercises the manifest, the part files and WAL replay in their
// old encodings. Never regenerate the fixture — its value is that current
// code did not write it.

import (
	"os"
	"path/filepath"
	"testing"

	"strdict/internal/dict"
)

// copyGoldenStore clones the frozen fixture into a temp dir so recovery's
// side effects (WAL continuation, new manifests) cannot touch it.
func copyGoldenStore(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "golden-store-v1")
	dir := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("golden store fixture: %v", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestGoldenStoreV1Recovers(t *testing.T) {
	wantRows := []string{
		"air", "airline", "airplane", "airport", "delta", "deluxe",
		"value-1", "value-2", "zebra", "zulu", "MOD4", "SHIP", "RAIL",
		"tail-row-1", "tail-row-2",
	}
	const ckptRows = 13 // rows covered by the v1 manifest; the rest replay

	dir := copyGoldenStore(t)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open golden store: %v", err)
	}
	defer s.Close()

	info := s.Recovery()
	if !info.ManifestLoaded || info.ManifestFallbacks != 0 {
		t.Fatalf("manifest not cleanly loaded: %+v", info)
	}
	if info.LostRows != 0 || len(info.Quarantined) != 0 {
		t.Fatalf("golden store lost data: %+v", info)
	}
	if want := uint64(ckptRows * dict.NumBuiltinFormats); info.CheckpointRows != want {
		t.Errorf("CheckpointRows = %d, want %d", info.CheckpointRows, want)
	}
	if want := uint64((len(wantRows) - ckptRows) * dict.NumBuiltinFormats); info.ReplayedRows != want {
		t.Errorf("ReplayedRows = %d, want %d", info.ReplayedRows, want)
	}

	tb := s.Table("t")
	if tb == nil {
		t.Fatal("table t missing after recovery")
	}
	cols := tb.StringColumns()
	if len(cols) != dict.NumBuiltinFormats {
		t.Fatalf("recovered %d string columns, want %d", len(cols), dict.NumBuiltinFormats)
	}
	for i, f := range dict.AllFormats()[:dict.NumBuiltinFormats] {
		name := "t." + colName(i)
		c := tb.Str(colName(i))
		if c == nil {
			t.Errorf("column %s missing", name)
			continue
		}
		if c.Format() != f {
			t.Errorf("%s: format = %v, want %v (wire ID must survive the v1 manifest)", name, c.Format(), f)
		}
		if c.Len() != len(wantRows) {
			t.Errorf("%s: %d rows, want %d", name, c.Len(), len(wantRows))
			continue
		}
		for r, want := range wantRows {
			if got := c.Get(r); got != want {
				t.Errorf("%s: row %d = %q, want %q", name, r, got, want)
				break
			}
		}
	}

	// A checkpoint after recovery rewrites everything in the current
	// encodings; reopening must serve the same rows.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after upgrade checkpoint: %v", err)
	}
	defer s2.Close()
	tb2 := s2.Table("t")
	for i, f := range dict.AllFormats()[:dict.NumBuiltinFormats] {
		c := tb2.Str(colName(i))
		if c == nil || c.Len() != len(wantRows) || c.Format() != f {
			t.Fatalf("column %s did not survive the upgrade round-trip", colName(i))
		}
		for r, want := range wantRows {
			if got := c.Get(r); got != want {
				t.Errorf("upgraded %s: row %d = %q, want %q", colName(i), r, got, want)
				break
			}
		}
	}
}

func colName(i int) string {
	return "c" + string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
}

package persist

// Cross-version recovery compatibility. testdata/golden-store-v1 is a frozen
// pre-registry store directory: manifest version 1 (single-byte format
// field), legacy ddlStr WAL records, and serialization-v2 dictionary blobs
// inside the part files. It was produced by crashing a store that had
// checkpointed 13 rows into each of 18 string columns (one per built-in
// format, column cNN using format NN) and then appended 2 more rows to each,
// so recovery exercises the manifest, the part files and WAL replay in their
// old encodings. Never regenerate the fixture — its value is that current
// code did not write it.

import (
	"os"
	"path/filepath"
	"testing"

	"strdict/internal/dict"
)

// copyGoldenStore clones the frozen fixture into a temp dir so recovery's
// side effects (WAL continuation, new manifests) cannot touch it.
func copyGoldenStore(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "golden-store-v1")
	dir := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("golden store fixture: %v", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestGoldenStoreV1Recovers(t *testing.T) {
	wantRows := []string{
		"air", "airline", "airplane", "airport", "delta", "deluxe",
		"value-1", "value-2", "zebra", "zulu", "MOD4", "SHIP", "RAIL",
		"tail-row-1", "tail-row-2",
	}
	const ckptRows = 13 // rows covered by the v1 manifest; the rest replay

	dir := copyGoldenStore(t)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open golden store: %v", err)
	}
	defer s.Close()

	info := s.Recovery()
	if !info.ManifestLoaded || info.ManifestFallbacks != 0 {
		t.Fatalf("manifest not cleanly loaded: %+v", info)
	}
	if info.LostRows != 0 || len(info.Quarantined) != 0 {
		t.Fatalf("golden store lost data: %+v", info)
	}
	if want := uint64(ckptRows * dict.NumBuiltinFormats); info.CheckpointRows != want {
		t.Errorf("CheckpointRows = %d, want %d", info.CheckpointRows, want)
	}
	if want := uint64((len(wantRows) - ckptRows) * dict.NumBuiltinFormats); info.ReplayedRows != want {
		t.Errorf("ReplayedRows = %d, want %d", info.ReplayedRows, want)
	}

	tb := s.Table("t")
	if tb == nil {
		t.Fatal("table t missing after recovery")
	}
	cols := tb.StringColumns()
	if len(cols) != dict.NumBuiltinFormats {
		t.Fatalf("recovered %d string columns, want %d", len(cols), dict.NumBuiltinFormats)
	}
	for i, f := range dict.AllFormats()[:dict.NumBuiltinFormats] {
		name := "t." + colName(i)
		c := tb.Str(colName(i))
		if c == nil {
			t.Errorf("column %s missing", name)
			continue
		}
		if c.Format() != f {
			t.Errorf("%s: format = %v, want %v (wire ID must survive the v1 manifest)", name, c.Format(), f)
		}
		if c.Len() != len(wantRows) {
			t.Errorf("%s: %d rows, want %d", name, c.Len(), len(wantRows))
			continue
		}
		for r, want := range wantRows {
			if got := c.Get(r); got != want {
				t.Errorf("%s: row %d = %q, want %q", name, r, got, want)
				break
			}
		}
	}

	// A checkpoint after recovery rewrites everything in the current
	// encodings; reopening must serve the same rows.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after upgrade checkpoint: %v", err)
	}
	defer s2.Close()
	tb2 := s2.Table("t")
	for i, f := range dict.AllFormats()[:dict.NumBuiltinFormats] {
		c := tb2.Str(colName(i))
		if c == nil || c.Len() != len(wantRows) || c.Format() != f {
			t.Fatalf("column %s did not survive the upgrade round-trip", colName(i))
		}
		for r, want := range wantRows {
			if got := c.Get(r); got != want {
				t.Errorf("upgraded %s: row %d = %q, want %q", colName(i), r, got, want)
				break
			}
		}
	}
}

func colName(i int) string {
	return "c" + string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
}

// testdata/golden-store-v2 is a frozen store written by the pre-incremental
// code: manifest version 2 (no walSeq field) whose newest manifest already
// mixes a fresh part with three re-referenced older ones. History: 10 rows
// into each of c0 (array), c1 (fc block), i, f; c0 merged (part + manifest);
// store checkpoint (numeric parts + manifest); 5 more rows; c1 merged
// (fresh part + manifest re-referencing c0/i/f's old parts); 3 more rows
// WAL-only; synced and crashed. Never regenerate it — its value is that
// current code did not write it.
func TestGoldenStoreV2Recovers(t *testing.T) {
	src := filepath.Join("testdata", "golden-store-v2")
	dir := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("golden store fixture: %v", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const nRows = 18
	verify := func(s *Store, ctx string) {
		t.Helper()
		tb := s.Table("t")
		c0, c1 := tb.Str("c0"), tb.Str("c1")
		if c0.Format() != dict.Array || c1.Format() != dict.FCBlock {
			t.Fatalf("%s: formats = %v/%v, want array/fc block", ctx, c0.Format(), c1.Format())
		}
		if c0.Len() != nRows || c1.Len() != nRows {
			t.Fatalf("%s: string rows = %d/%d, want %d", ctx, c0.Len(), c1.Len(), nRows)
		}
		ic, fc := tb.Int("i"), tb.Float("f")
		if ic.Len() != nRows || fc.Len() != nRows {
			t.Fatalf("%s: numeric rows = %d/%d, want %d", ctx, ic.Len(), fc.Len(), nRows)
		}
		for i := 0; i < nRows; i++ {
			if got, want := c0.Get(i), "alpha-0"+string(rune('0'+i%4)); got != want {
				t.Fatalf("%s: c0[%d] = %q, want %q", ctx, i, got, want)
			}
			if got, want := c1.Get(i), "bravo-0"+string(rune('0'+i%3)); got != want {
				t.Fatalf("%s: c1[%d] = %q, want %q", ctx, i, got, want)
			}
			if ic.Get(i) != int64(i*7) {
				t.Fatalf("%s: i[%d] = %d, want %d", ctx, i, ic.Get(i), i*7)
			}
			if fc.Get(i) != float64(i)/8 {
				t.Fatalf("%s: f[%d] = %v", ctx, i, fc.Get(i))
			}
		}
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open golden v2 store: %v", err)
	}
	info := s.Recovery()
	if !info.ManifestLoaded || info.ManifestFallbacks != 0 {
		t.Fatalf("manifest not cleanly loaded: %+v", info)
	}
	// The loaded (newest) manifest covers c0@10, c1@15, i@10, f@10.
	if info.CheckpointRows != 45 {
		t.Errorf("CheckpointRows = %d, want 45", info.CheckpointRows)
	}
	if info.ReplayedRows != 27 || info.LostRows != 0 {
		t.Errorf("ReplayedRows/LostRows = %d/%d, want 27/0", info.ReplayedRows, info.LostRows)
	}
	verify(s, "v2 recovery")

	// A v3 checkpoint over the v2 store (re-referencing its untouched v2
	// parts) must round-trip.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after v2 recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after v3 checkpoint: %v", err)
	}
	defer s2.Close()
	verify(s2, "v3 round-trip")
}

package persist

// Incremental-checkpoint tests: a checkpoint writes part files only for
// dirty columns and re-references clean columns' existing parts in the new
// manifest; GC collects parts by manifest reachability and quarantines
// orphans; the WAL truncation floor is the per-column minimum across both
// retained manifests, so falling back to the older manifest never meets a
// truncated tail.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strdict/internal/dict"
)

// fillWide populates one table with 16 int columns of n rows each.
func fillWide(t *testing.T, s *Store, n int) {
	t.Helper()
	tb, ok := s.Tables["w"]
	if !ok {
		tb = s.AddTable("w")
		for c := 0; c < 16; c++ {
			tb.AddInt64(fmt.Sprintf("c%02d", c))
		}
	}
	for c := 0; c < 16; c++ {
		ic := tb.Int(fmt.Sprintf("c%02d", c))
		base := ic.Len()
		for i := 0; i < n; i++ {
			ic.Append(int64(c*1000 + base + i))
		}
	}
}

func verifyWide(t *testing.T, s *Store, n int, ctx string) {
	t.Helper()
	tb := s.Table("w")
	for c := 0; c < 16; c++ {
		ic := tb.Int(fmt.Sprintf("c%02d", c))
		if ic.Len() != n {
			t.Fatalf("%s: col %d rows = %d, want %d", ctx, c, ic.Len(), n)
		}
		for i := 0; i < n; i++ {
			if got := ic.Get(i); got != int64(c*1000+i) {
				t.Fatalf("%s: col %d row %d = %d, want %d", ctx, c, i, got, c*1000+i)
			}
		}
	}
}

// newestManifestCols decodes the newest on-disk manifest's entries.
func newestManifestCols(t *testing.T, dir string) (uint64, []manifestCol) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := uint64(0)
	found := false
	for _, e := range ents {
		if seq, ok := parseManifestSeq(e.Name()); ok && (!found || seq > newest) {
			newest, found = seq, true
		}
	}
	if !found {
		t.Fatal("no manifest on disk")
	}
	b, err := os.ReadFile(manifestPath(dir, newest))
	if err != nil {
		t.Fatal(err)
	}
	_, _, cols, err := decManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	return newest, cols
}

// TestIncrementalCheckpointWritesOnlyDirtyColumns: after a full checkpoint,
// dirtying 1 of 16 columns and checkpointing again writes exactly one part;
// the new manifest re-references the other 15 columns' existing parts, and
// recovery from it is bit-identical.
func TestIncrementalCheckpointWritesOnlyDirtyColumns(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	fillWide(t, s, 10)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	full := s.LastCheckpoint()
	if full.PartsWritten != 16 || full.PartsReused != 0 {
		t.Fatalf("full checkpoint stats = %+v, want 16 written / 0 reused", full)
	}
	_, before := newestManifestCols(t, dir)
	fileOf := make(map[string]string)
	for _, c := range before {
		fileOf[c.table+"."+c.column] = c.file
	}

	// Dirty exactly one column.
	s.Table("w").Int("c07").Append(int64(7*1000 + 10))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	inc := s.LastCheckpoint()
	if inc.PartsWritten != 1 || inc.PartsReused != 15 {
		t.Fatalf("incremental checkpoint stats = %+v, want 1 written / 15 reused", inc)
	}
	if inc.PartBytes == 0 || inc.PartBytes >= full.PartBytes {
		t.Fatalf("incremental part bytes = %d, want in (0, %d)", inc.PartBytes, full.PartBytes)
	}
	_, after := newestManifestCols(t, dir)
	changed := 0
	for _, c := range after {
		name := c.table + "." + c.column
		if c.file != fileOf[name] {
			changed++
			if name != "w.c07" {
				t.Fatalf("clean column %s got a new part %s (had %s)", name, c.file, fileOf[name])
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d manifest entries changed files, want 1", changed)
	}
	s.Close()

	// The mixed manifest (15 reused parts + 1 fresh) recovers bit-identically.
	s2 := openSync(t, dir)
	defer s2.Close()
	tb := s2.Table("w")
	for c := 0; c < 16; c++ {
		want := 10
		if c == 7 {
			want = 11
		}
		ic := tb.Int(fmt.Sprintf("c%02d", c))
		if ic.Len() != want {
			t.Fatalf("col %d rows = %d, want %d", c, ic.Len(), want)
		}
		for i := 0; i < want; i++ {
			if ic.Get(i) != int64(c*1000+i) {
				t.Fatalf("col %d row %d = %d", c, i, ic.Get(i))
			}
		}
	}
}

// TestCleanCheckpointWritesNoParts: a checkpoint with nothing dirty writes
// zero part files — only a manifest.
func TestCleanCheckpointWritesNoParts(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	defer s.Close()
	fillWide(t, s, 5)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.LastCheckpoint()
	if st.PartsWritten != 0 || st.PartsReused != 16 || st.PartBytes != 0 {
		t.Fatalf("clean checkpoint stats = %+v, want 0 written / 16 reused", st)
	}
	if st.ManifestBytes == 0 {
		t.Fatalf("manifest bytes = 0, want > 0")
	}
}

// TestStringMergeDirtiesOnlyThatColumn: with merge-time checkpoints
// disabled, merging one string column marks only it dirty; the next
// store-wide checkpoint rewrites it (plus never-persisted columns) and
// reuses the rest.
func TestStringMergeDirtiesOnlyThatColumn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: -1, DisableCheckpointOnMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tb := s.AddTable("t")
	a := tb.AddString("a", dict.Array)
	b := tb.AddString("b", dict.Array)
	for i := 0; i < 12; i++ {
		a.Append(fmt.Sprintf("a-%d", i%3))
		b.Append(fmt.Sprintf("b-%d", i%4))
	}
	a.Merge(dict.Array)
	b.Merge(dict.FCBlock)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.LastCheckpoint(); st.PartsWritten != 2 {
		t.Fatalf("first checkpoint stats = %+v, want 2 written", st)
	}

	// Merge only a; b stays clean.
	for i := 0; i < 4; i++ {
		a.Append(fmt.Sprintf("a-%d", i%3))
	}
	a.Merge(dict.Array)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.LastCheckpoint(); st.PartsWritten != 1 || st.PartsReused != 1 {
		t.Fatalf("merge-dirty checkpoint stats = %+v, want 1 written / 1 reused", st)
	}
}

// TestRecoveredStoreTruncatesAfterOneCheckpoint: the truncation floor and
// ceiling survive recovery (seeded from the loaded v3 manifest's covered
// rows and walSeq), so the first post-recovery checkpoint already deletes
// the segments that manifest covers. Before the fix the previous-cover
// state reset to zero at recovery and truncation resumed only after two
// fresh checkpoints.
func TestRecoveredStoreTruncatesAfterOneCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	fillWide(t, s, 40) // 640 rows → several 512B segments
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One manifest on disk covering rows the WAL still holds (a single
	// checkpoint deletes nothing: no previous cover yet). More rows after
	// it, then crash.
	fillWide(t, s, 10)
	s.Crash()

	s2, err := Open(dir, Options{FsyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	segsBefore, _ := listWALSegments(OS, dir)
	if len(segsBefore) < 3 {
		t.Fatalf("expected several WAL segments after recovery, got %d", len(segsBefore))
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listWALSegments(OS, dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("single post-recovery checkpoint truncated nothing: %d -> %d segments",
			len(segsBefore), len(segsAfter))
	}
	s2.Close()

	// And the directory still recovers everything.
	s3 := openSync(t, dir)
	defer s3.Close()
	verifyWide(t, s3, 50, "after truncating recovery")
}

// TestFallbackAfterIncrementalCheckpointsLossless: build a store whose
// newest manifest mixes reused and fresh parts, corrupt that manifest, and
// recover — the fallback manifest plus the (min-floor-truncated) WAL must
// reconstruct every row.
func TestFallbackAfterIncrementalCheckpointsLossless(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, Options{FsyncInterval: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillWide(t, s, 8)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fillWide(t, s, 2) // rows 8..9 everywhere
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Dirty one column only: the newest manifest now reuses 15 parts.
	s.Table("w").Int("c03").Append(int64(3*1000 + 10))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.LastCheckpoint(); st.PartsReused == 0 {
		t.Fatalf("newest manifest reuses nothing: %+v", st)
	}
	s.Close()

	newest, _ := newestManifestCols(t, master)
	base := filepath.Base(manifestPath(master, newest))
	full, err := os.ReadFile(manifestPath(master, newest))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off += 5 {
		dir := t.TempDir()
		copyDir(t, master, dir)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, base), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s1, err := Open(dir, syncOpts)
		if err != nil {
			t.Fatalf("off %d: open: %v", off, err)
		}
		tb := s1.Table("w")
		for c := 0; c < 16; c++ {
			want := 10
			if c == 3 {
				want = 11
			}
			ic := tb.Int(fmt.Sprintf("c%02d", c))
			if ic.Len() != want {
				t.Fatalf("off %d: col %d rows = %d, want %d (fallbacks=%d)",
					off, c, ic.Len(), want, s1.Recovery().ManifestFallbacks)
			}
			for i := 0; i < want; i++ {
				if ic.Get(i) != int64(c*1000+i) {
					t.Fatalf("off %d: col %d row %d = %d", off, c, i, ic.Get(i))
				}
			}
		}
		s1.Close()
	}
}

// TestGCQuarantinesOrphanPart: a part file no manifest references — the
// residue of a crash between part write and manifest commit — is renamed to
// a .orphan side file by the next checkpoint's GC, not silently deleted and
// not leaked under its live name.
func TestGCQuarantinesOrphanPart(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	fillStore(t, s, 10)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Plant an orphan with a sequence far beyond the referenced parts, as a
	// crashed checkpoint would leave it.
	orphan := filepath.Join(dir, fmt.Sprintf("p%08d.part", 90))
	if err := os.WriteFile(orphan, encInt64Part([]int64{1, 2, 3}), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openSync(t, dir)
	s2.Table("t").Int("i").Append(30)
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil { // second cycle: GC has 2 manifests either way
		t.Fatal(err)
	}
	s2.Close()

	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan part still present under live name: %v", err)
	}
	if _, err := os.Stat(orphan + ".orphan"); err != nil {
		t.Fatalf("orphan part not quarantined: %v", err)
	}
}

// TestCrashBetweenPartWriteAndManifestCommit drives the real failure: the
// part file lands, the manifest write faults, the process "crashes".
// Recovery must serve the pre-crash state, and the next GC must quarantine
// the committed-but-unreferenced part.
func TestCrashBetweenPartWriteAndManifestCommit(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	log := &healthLog{}
	s, err := Open(dir, faultOpts(ffs, log, 0))
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 15)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Fail manifest writes only: the next checkpoint writes its part files,
	// then dies at the commit record.
	ffs.FailAll(OpCreate, errInjected, func(p string) bool {
		return strings.Contains(filepath.Base(p), "manifest-")
	})
	s.Table("t").Int("i").Append(45)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded despite manifest fault")
	}
	s.Crash()
	ffs.Clear()

	// The orphan is on disk under a live part name.
	ents, _ := os.ReadDir(dir)
	var partNames []string
	for _, e := range ents {
		if _, ok := parsePartSeq(e.Name()); ok {
			partNames = append(partNames, e.Name())
		}
	}
	_, cols := newestManifestCols(t, dir)
	referenced := make(map[string]bool)
	for _, c := range cols {
		referenced[c.file] = true
	}
	var orphans []string
	for _, name := range partNames {
		if !referenced[name] {
			orphans = append(orphans, name)
		}
	}
	if len(orphans) == 0 {
		t.Fatal("fault left no orphan part; test lost its subject")
	}

	s2 := openSync(t, dir)
	sc := s2.Table("t").Str("s")
	if sc.Len() != len(rows) {
		t.Fatalf("string rows = %d, want %d", sc.Len(), len(rows))
	}
	for i, want := range rows {
		if got := sc.Get(i); got != want {
			t.Fatalf("row %d = %q, want %q", i, got, want)
		}
	}
	// The WAL (not the failed checkpoint) carries the post-checkpoint row.
	if got := s2.Table("t").Int("i").Len(); got != 16 {
		t.Fatalf("int rows = %d, want 16", got)
	}
	if got := s2.Table("t").Int("i").Get(15); got != 45 {
		t.Fatalf("int row 15 = %d, want 45", got)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s still present under live name", name)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".orphan")); err != nil {
			t.Fatalf("orphan %s not quarantined: %v", name, err)
		}
	}
}

// TestGCQuarantinesCorruptManifestAndRetainsReadable: with three manifests
// on disk of which the newest is corrupt, GC must not count the corrupt one
// toward the two retained — it gets quarantined, the two readable ones
// survive, and so do every part they reference.
func TestGCQuarantinesCorruptManifestAndRetainsReadable(t *testing.T) {
	dir := t.TempDir()
	s := openSync(t, dir)
	fillStore(t, s, 10)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Table("t").Int("i").Append(30)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest manifest in place.
	newest, _ := newestManifestCols(t, dir)
	mpath := manifestPath(dir, newest)
	b, _ := os.ReadFile(mpath)
	b[len(b)-1] ^= 0xff
	os.WriteFile(mpath, b, 0o644)

	// Reopen (falls back to the older manifest) and checkpoint: GC runs.
	s2 := openSync(t, dir)
	if s2.Recovery().ManifestFallbacks == 0 {
		t.Fatal("expected a manifest fallback")
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	if _, err := os.Stat(mpath); !os.IsNotExist(err) {
		t.Fatalf("corrupt manifest still on disk under live name")
	}
	if _, err := os.Stat(mpath + ".quarantine"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
	ents, _ := os.ReadDir(dir)
	var manifests []uint64
	referenced := make(map[string]bool)
	for _, e := range ents {
		if seq, ok := parseManifestSeq(e.Name()); ok {
			manifests = append(manifests, seq)
			mb, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			_, _, cols, err := decManifest(mb)
			if err != nil {
				t.Fatalf("retained manifest %d unreadable: %v", seq, err)
			}
			for _, c := range cols {
				if c.file != "" {
					referenced[c.file] = true
				}
			}
		}
	}
	if len(manifests) != 2 {
		t.Fatalf("readable manifests on disk = %d, want 2", len(manifests))
	}
	for file := range referenced {
		if _, err := os.Stat(filepath.Join(dir, file)); err != nil {
			t.Fatalf("referenced part %s missing: %v", file, err)
		}
	}

	// And the store still opens losslessly.
	s3 := openSync(t, dir)
	defer s3.Close()
	if got := s3.Table("t").Int("i").Len(); got != 11 {
		t.Fatalf("rows after GC round = %d, want 11", got)
	}
}

package persist

// The filesystem seam. Every filesystem operation the durability paths
// perform — segment/part/manifest creation, writes, fsyncs, renames,
// removals, directory fsyncs, and since the incremental-checkpoint work
// also the read side (directory listings, manifest/part/segment reads,
// quarantine writes and truncation) — goes through one FS value, so a
// fault-injection implementation can fail any individual operation at any
// point in a run, including during Open/recovery. The crash suite and the
// torture harness (internal/torture) drive FaultFS; production stores use
// the default OS implementation. Byte-level corruption (flips, torn tails)
// is still injected directly on the files; the seam injects I/O errors.

import (
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the writable-file surface the persist subsystem needs. The OS
// implementation is a thin *os.File; fault injectors wrap it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the mutating filesystem operations of the WAL and checkpoint
// paths. Implementations must be safe for concurrent use: the WAL flusher,
// merge-time checkpoints and store-wide checkpoints may operate at once.
type FS interface {
	// Create creates (truncating) the named file for writing.
	Create(path string) (File, error)
	// Rename atomically moves oldpath to newpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making a just-renamed or just-created
	// name durable.
	SyncDir(dir string) error
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile reads a whole file (recovery's manifest/part/segment loads).
	ReadFile(path string) ([]byte, error)
	// WriteFile writes a whole file non-atomically (quarantine side files;
	// durable artifacts go through Create + writeAtomicFS instead).
	WriteFile(path string, data []byte) error
	// Truncate cuts a file to size (recovery dropping a torn WAL tail).
	Truncate(path string, size int64) error
}

// osFS is the production FS: straight passthrough to the os package.
type osFS struct{}

func (osFS) Create(path string) (File, error)    { return os.Create(path) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// OS is the default filesystem used when Options.FS is nil.
var OS FS = osFS{}

// writeAtomicFS makes data appear at path all-or-nothing: tmp file, fsync,
// rename, directory fsync. Idempotent — a failed attempt leaves at worst a
// stale .tmp file that the next attempt truncates and GC removes — so
// callers may retry it wholesale on transient faults.
func writeAtomicFS(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = fsys.Rename(tmp, path)
	}
	if werr != nil {
		fsys.Remove(tmp)
		return werr
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// Op identifies one class of FS operation for fault planning.
type Op uint8

const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpSyncDir
	OpReadDir
	OpReadFile
	OpWriteFile
	OpTruncate
	numOps
)

var opNames = [numOps]string{
	"create", "write", "sync", "close", "rename", "remove", "syncdir",
	"readdir", "readfile", "writefile", "truncate",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// FaultFS wraps a base FS and injects faults according to a hook consulted
// before every operation. The zero hook passes everything through. All
// methods are safe for concurrent use; plans installed by the helpers below
// are consumed atomically, so "fail the next N syncs" means exactly N even
// under concurrent flushers.
type FaultFS struct {
	// Base is the wrapped filesystem; nil means OS.
	Base FS

	mu     sync.Mutex
	hook   func(op Op, path string) error
	counts [numOps]uint64
	plans  []*faultPlan
}

// faultPlan is one installed injection rule.
type faultPlan struct {
	op        Op
	match     func(path string) bool // nil: any path
	remaining int                    // <0: permanent
	partial   int                    // OpWrite only: bytes written before failing (<0: none)
	err       error
}

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OS
	}
	return f.Base
}

// SetHook installs an arbitrary injection hook, consulted (under the
// FaultFS lock) before every operation; a non-nil return is injected as
// that operation's error. It overrides nothing: installed plans are checked
// first. A nil hook clears it.
func (f *FaultFS) SetHook(hook func(op Op, path string) error) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

// FailNext makes the next n operations of the given kind (whose path
// matches the filter, if non-nil) fail with err — a transient fault.
func (f *FaultFS) FailNext(op Op, n int, err error, match func(path string) bool) {
	f.mu.Lock()
	f.plans = append(f.plans, &faultPlan{op: op, match: match, remaining: n, partial: -1, err: err})
	f.mu.Unlock()
}

// FailAll makes every subsequent operation of the given kind fail with err —
// a permanent fault — until Clear.
func (f *FaultFS) FailAll(op Op, err error, match func(path string) bool) {
	f.mu.Lock()
	f.plans = append(f.plans, &faultPlan{op: op, match: match, remaining: -1, partial: -1, err: err})
	f.mu.Unlock()
}

// FailNextWriteShort makes the next matching write persist only the first
// k bytes before failing with err — a torn-write fault.
func (f *FaultFS) FailNextWriteShort(k int, err error, match func(path string) bool) {
	f.mu.Lock()
	f.plans = append(f.plans, &faultPlan{op: OpWrite, match: match, remaining: 1, partial: k, err: err})
	f.mu.Unlock()
}

// Clear removes every installed plan and hook.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.plans = nil
	f.hook = nil
	f.mu.Unlock()
}

// OpCount reports how many operations of the given kind have been issued
// (including injected failures).
func (f *FaultFS) OpCount(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check counts the operation and returns the fault to inject, if any. For
// OpWrite it also reports how many bytes to pass through first (-1: none).
func (f *FaultFS) check(op Op, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for i, p := range f.plans {
		if p.op != op || p.remaining == 0 {
			continue
		}
		if p.match != nil && !p.match(path) {
			continue
		}
		if p.remaining > 0 {
			p.remaining--
			if p.remaining == 0 {
				f.plans = append(f.plans[:i], f.plans[i+1:]...)
			}
		}
		return p.err, p.partial
	}
	if f.hook != nil {
		return f.hook(op, path), -1
	}
	return nil, -1
}

func (f *FaultFS) Create(path string) (File, error) {
	if err, _ := f.check(OpCreate, path); err != nil {
		return nil, err
	}
	file, err := f.base().Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: path}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, newpath); err != nil {
		return err
	}
	return f.base().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err, _ := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.base().Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err, _ := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return f.base().SyncDir(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err, _ := f.check(OpReadDir, dir); err != nil {
		return nil, err
	}
	return f.base().ReadDir(dir)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err, _ := f.check(OpReadFile, path); err != nil {
		return nil, err
	}
	return f.base().ReadFile(path)
}

func (f *FaultFS) WriteFile(path string, data []byte) error {
	if err, _ := f.check(OpWriteFile, path); err != nil {
		return err
	}
	return f.base().WriteFile(path, data)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	if err, _ := f.check(OpTruncate, path); err != nil {
		return err
	}
	return f.base().Truncate(path, size)
}

// faultFile routes a file's write/sync/close through the owning FaultFS.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, partial := ff.fs.check(OpWrite, ff.path)
	if err != nil {
		n := 0
		if partial > 0 {
			if partial > len(p) {
				partial = len(p)
			}
			n, _ = ff.f.Write(p[:partial])
		}
		return n, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync, ff.path); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if err, _ := ff.fs.check(OpClose, ff.path); err != nil {
		return err
	}
	return ff.f.Close()
}

package persist

// Property test: random interleavings of appends, merges (full and
// partial), checkpoints and crashes, on a table with one string column per
// dictionary format. After every crash/reopen cycle, reads must be
// bit-identical to the rows appended — with sync-every-append, every row is
// durable, so nothing may be lost and nothing reordered, whatever the
// format or the phase the crash hit.

import (
	"fmt"
	"math/rand"
	"testing"

	"strdict/internal/dict"
)

func TestPropertyRandomInterleavings(t *testing.T) {
	formats := dict.AllFormats()
	words := []string{
		"", "a", "aa", "ab", "abc", "air", "airline", "airplane", "airport",
		"value", "value-1", "value-2", "zebra", "zulu", "yankee", "x-ray",
		"MOD4", "MOD5", "SHIP", "RAIL", "TRUCK", "AIR REG", "lorem ipsum",
	}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			opts := Options{FsyncInterval: -1, SegmentBytes: 2048}

			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			tb := s.AddTable("t")
			for i, f := range formats {
				tb.AddString(fmt.Sprintf("c%02d", i), f)
			}
			expected := make([][]string, len(formats))

			for step := 0; step < 400; step++ {
				ci := rng.Intn(len(formats))
				col := s.Table("t").Str(fmt.Sprintf("c%02d", ci))
				switch op := rng.Intn(100); {
				case op < 70: // append
					v := words[rng.Intn(len(words))]
					col.Append(v)
					expected[ci] = append(expected[ci], v)
				case op < 80: // full merge, sometimes changing format
					target := formats[ci]
					if rng.Intn(4) == 0 {
						target = formats[rng.Intn(len(formats))]
					}
					col.Merge(target)
				case op < 85: // partial merge
					col.MergePartial(1 + rng.Intn(2))
				case op < 90: // store-wide checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatalf("step %d: checkpoint: %v", step, err)
					}
				default: // crash or clean close, then recover
					if rng.Intn(2) == 0 {
						s.Crash()
					} else {
						if err := s.Close(); err != nil {
							t.Fatalf("step %d: close: %v", step, err)
						}
					}
					s, err = Open(dir, opts)
					if err != nil {
						t.Fatalf("step %d: reopen: %v", step, err)
					}
					for i := range formats {
						c := s.Table("t").Str(fmt.Sprintf("c%02d", i))
						if c.Len() != len(expected[i]) {
							t.Fatalf("step %d col %d (%s): %d rows, want %d",
								step, i, formats[i], c.Len(), len(expected[i]))
						}
						for r, want := range expected[i] {
							if got := c.Get(r); got != want {
								t.Fatalf("step %d col %d (%s) row %d: %q != %q",
									step, i, formats[i], r, got, want)
							}
						}
					}
				}
				if err := s.Err(); err != nil {
					t.Fatalf("step %d: sticky error: %v", step, err)
				}
			}

			// Final crash + recover + full verification, including a merge
			// of everything so the recovered state exercises main parts in
			// every format.
			s.Crash()
			s, err = Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range formats {
				c := s.Table("t").Str(fmt.Sprintf("c%02d", i))
				c.Merge(f)
				if err := s.Err(); err != nil {
					t.Fatalf("final merge col %d (%s): %v", i, f, err)
				}
			}
			s.Close()
			s, err = Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range formats {
				c := s.Table("t").Str(fmt.Sprintf("c%02d", i))
				if c.Len() != len(expected[i]) {
					t.Fatalf("final col %d (%s): %d rows, want %d", i, f, c.Len(), len(expected[i]))
				}
				for r, want := range expected[i] {
					if got := c.Get(r); got != want {
						t.Fatalf("final col %d (%s) row %d: %q != %q", i, f, r, got, want)
					}
				}
				if got := c.Format(); got != f && len(expected[i]) > 0 {
					t.Fatalf("final col %d: format %s, want %s", i, got, f)
				}
			}
			s.Close()
		})
	}
}

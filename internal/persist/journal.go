package persist

// The journal: the persist side of the colstore.Journal interface. It owns
// the WAL and the checkpoint files for one store directory. Appends become
// WAL records; main-part publications (merges) become a part file plus a
// fresh manifest, after which WAL segments fully covered by the two newest
// manifests are deleted.
//
// Lock order: mu → regMu → wal.mu. The hot append path takes only
// regMu.RLock (name→id) and wal.mu (framing); checkpoints serialize on mu.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"strdict/internal/colstore"
	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// colState is the journal's record of one column.
type colState struct {
	id     uint32
	kind   uint8 // partStr / partInt / partFloat
	table  string
	column string

	// format is the column's current dictionary format (string columns
	// only); updated by checkpoints after a rebuild changes it. Guarded by
	// regMu.
	format dict.Format

	// Checkpoint state: how many leading rows the current part file covers.
	// Guarded by journal.mu.
	persisted uint64
	file      string // part file base name, "" before the first checkpoint
}

type journal struct {
	dir         string
	w           *wal
	store       *colstore.Store
	disableCkpt bool
	fs          FS
	retry       retryPolicy
	health      *healthTracker

	regMu  sync.RWMutex
	byName map[string]*colState // "table.column"
	byID   map[uint32]*colState
	tables map[string]bool
	nextID uint32

	mu                 sync.Mutex // serializes checkpoint + manifest writes
	manifestSeq        uint64     // next manifest sequence number
	fileSeq            uint64     // next part file sequence number
	prevPersisted      map[uint32]uint64
	prevManifestWalSeq uint64 // active WAL segment when prev manifest was written
	ckptErr            error  // sticky checkpoint failure
}

// DDL events. Dedupe by name: SetJournal re-announces schema that recovery
// already registered, and the WAL record was either already written or is
// implied by the loaded manifest.

func (j *journal) JournalAddTable(table string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	if j.tables[table] {
		return
	}
	j.tables[table] = true
	j.w.append(encDDLTable(table), false, 0)
}

func (j *journal) addColumnLocked(kind uint8, format dict.Format, table, column string) {
	name := table + "." + column
	if _, ok := j.byName[name]; ok {
		return
	}
	st := &colState{id: j.nextID, kind: kind, format: format, table: table, column: column}
	j.nextID++
	j.byName[name] = st
	j.byID[st.id] = st
	var rec byte
	var wire uint16
	switch kind {
	case partStr:
		rec = recDDLString2
		wire = format.WireID()
	case partInt:
		rec = recDDLInt
	default:
		rec = recDDLFloat
	}
	j.w.append(encDDLColumn(rec, st.id, wire, table, column), false, 0)
}

func (j *journal) JournalAddString(table, column string, format dict.Format) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partStr, format, table, column)
}

func (j *journal) JournalAddInt64(table, column string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partInt, 0, table, column)
}

func (j *journal) JournalAddFloat64(table, column string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partFloat, 0, table, column)
}

func (j *journal) lookup(name string) *colState {
	j.regMu.RLock()
	st := j.byName[name]
	j.regMu.RUnlock()
	return st
}

// Append events: one WAL record per row. WAL failures are sticky inside the
// WAL and surface through Sync/Close — the interface has no error return,
// by design: the column has already accepted the row.

func (j *journal) JournalAppend(column string, value string) {
	if st := j.lookup(column); st != nil {
		j.w.append(encAppend(st.id, value), true, st.id)
	}
}

func (j *journal) JournalAppendInt64(column string, value int64) {
	if st := j.lookup(column); st != nil {
		j.w.append(encAppendU64(recAppendInt, st.id, uint64(value)), true, st.id)
	}
}

func (j *journal) JournalAppendFloat64(column string, value float64) {
	if st := j.lookup(column); st != nil {
		j.w.append(encAppendU64(recAppendFloat, st.id, math.Float64bits(value)), true, st.id)
	}
}

// JournalMainPart: a merge published a new main part. Log a marker, then —
// unless per-merge checkpoints are disabled — persist the part and write a
// new manifest, which in turn lets covered WAL segments go.
func (j *journal) JournalMainPart(column string, d dict.Dictionary, codes intcomp.Vector, nMain int) {
	st := j.lookup(column)
	if st == nil {
		return
	}
	j.w.append(encMerge(st.id, uint64(nMain)), false, 0)
	if j.disableCkpt {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.checkpointStringLocked(st, d, codes, uint64(nMain)); err != nil {
		j.setCkptErrLocked(err)
		return
	}
	if err := j.writeManifestLocked(); err != nil {
		j.setCkptErrLocked(err)
	}
}

func (j *journal) setCkptErrLocked(err error) {
	if j.ckptErr == nil {
		j.ckptErr = err
		j.health.observe(StateReadOnly, "checkpoint", err)
	}
}

// writeDurable is writeAtomicFS under the journal's retry policy. Each
// attempt re-runs the whole tmp-fsync-rename sequence, which is idempotent:
// a failed attempt leaves at worst a stale .tmp that the next attempt
// truncates.
func (j *journal) writeDurable(path string, data []byte) error {
	return j.retry.run(j.health, "checkpoint", func() error {
		return writeAtomicFS(j.fs, path, data)
	})
}

// checkpointStringLocked writes a string column's main part to a fresh part
// file and points the column's state at it. Caller holds mu.
func (j *journal) checkpointStringLocked(st *colState, d dict.Dictionary, codes intcomp.Vector, rows uint64) error {
	data, err := encStringPart(d, codes)
	if err != nil {
		return err
	}
	file, err := j.writePartLocked(data)
	if err != nil {
		return err
	}
	st.persisted = rows
	st.file = file
	j.regMu.Lock()
	st.format = d.Format()
	j.regMu.Unlock()
	return nil
}

// writePartLocked writes one part file atomically and returns its base
// name. Caller holds mu.
func (j *journal) writePartLocked(data []byte) (string, error) {
	seq := j.fileSeq
	path := partPath(j.dir, seq)
	if err := j.writeDurable(path, data); err != nil {
		return "", err
	}
	j.fileSeq++
	return filepath.Base(path), nil
}

// checkpointAll persists every column — string main parts plus full numeric
// slices — then writes a manifest. String delta rows stay in the WAL. It is
// safe against concurrent string appends and merges; concurrent numeric
// appends must be quiesced (numeric Append is not goroutine-safe anyway).
func (j *journal) checkpointAll() error {
	if err := j.w.sync(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, name := range j.store.TableNames() {
		t := j.store.Table(name)
		for _, c := range t.StringColumns() {
			st := j.lookup(c.Name())
			if st == nil {
				continue
			}
			d, codes, n := c.MainParts()
			if uint64(n) == st.persisted && (st.file != "" || n == 0) {
				continue
			}
			if err := j.checkpointStringLocked(st, d, codes, uint64(n)); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
		for _, ic := range t.Int64Columns() {
			if err := j.checkpointInt64Locked(ic); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
		for _, fc := range t.Float64Columns() {
			if err := j.checkpointFloat64Locked(fc); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
	}
	if err := j.writeManifestLocked(); err != nil {
		j.setCkptErrLocked(err)
		return err
	}
	return nil
}

func (j *journal) checkpointInt64Locked(c *colstore.Int64Column) error {
	st := j.lookup(c.Name())
	if st == nil {
		return nil
	}
	n := c.Len()
	if uint64(n) == st.persisted && (st.file != "" || n == 0) {
		return nil
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = c.Get(i)
	}
	file, err := j.writePartLocked(encInt64Part(vals))
	if err != nil {
		return err
	}
	st.persisted = uint64(n)
	st.file = file
	return nil
}

func (j *journal) checkpointFloat64Locked(c *colstore.Float64Column) error {
	st := j.lookup(c.Name())
	if st == nil {
		return nil
	}
	n := c.Len()
	if uint64(n) == st.persisted && (st.file != "" || n == 0) {
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = c.Get(i)
	}
	file, err := j.writePartLocked(encFloat64Part(vals))
	if err != nil {
		return err
	}
	st.persisted = uint64(n)
	st.file = file
	return nil
}

// writeManifestLocked publishes the current checkpoint state as a new
// manifest, then truncates the WAL and garbage-collects superseded files.
// Caller holds mu.
func (j *journal) writeManifestLocked() error {
	j.regMu.RLock()
	cols := make([]manifestCol, 0, len(j.byID))
	for _, st := range j.byID {
		cols = append(cols, manifestCol{
			id:     st.id,
			kind:   st.kind,
			format: st.format,
			rows:   st.persisted,
			table:  st.table,
			column: st.column,
			file:   st.file,
		})
	}
	j.regMu.RUnlock()
	sort.Slice(cols, func(a, b int) bool { return cols[a].id < cols[b].id })

	seq := j.manifestSeq
	if err := j.writeDurable(manifestPath(j.dir, seq), encManifest(seq, cols)); err != nil {
		return err
	}
	j.manifestSeq++

	// Truncate: a row is durably checkpointed only if both retained
	// manifests cover it, so the cover is the elementwise minimum — a
	// corrupt newest manifest must still leave the fallback replayable.
	cur := make(map[uint32]uint64, len(cols))
	cover := make(map[uint32]uint64, len(cols))
	for _, c := range cols {
		cur[c.id] = c.rows
		if p := j.prevPersisted[c.id]; p < c.rows {
			cover[c.id] = p
		} else {
			cover[c.id] = c.rows
		}
	}
	activeSeq := j.w.activeSeq()
	j.w.deleteCovered(cover, j.prevManifestWalSeq)
	j.gcLocked()
	j.prevPersisted = cur
	j.prevManifestWalSeq = activeSeq
	return nil
}

// gcLocked removes manifests older than the two newest and part files
// neither of those references, plus stray .tmp files. Caller holds mu.
// Errors are ignored: GC retries at every checkpoint.
func (j *journal) gcLocked() {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	var manifests []uint64
	for _, e := range entries {
		if seq, ok := parseManifestSeq(e.Name()); ok {
			manifests = append(manifests, seq)
		}
	}
	sort.Slice(manifests, func(a, b int) bool { return manifests[a] > manifests[b] })
	if len(manifests) < 2 {
		return
	}
	keep := manifests[:2]
	referenced := make(map[string]bool)
	for _, seq := range keep {
		b, err := os.ReadFile(manifestPath(j.dir, seq))
		if err != nil {
			return // conservative: unknown references, skip this round
		}
		_, cols, err := decManifest(b)
		if err != nil {
			return
		}
		for _, c := range cols {
			if c.file != "" {
				referenced[c.file] = true
			}
		}
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseManifestSeq(name); ok && seq < keep[1] {
			j.fs.Remove(filepath.Join(j.dir, name))
		}
		if _, ok := parsePartSeq(name); ok && !referenced[name] {
			j.fs.Remove(filepath.Join(j.dir, name))
		}
		if filepath.Ext(name) == ".tmp" {
			j.fs.Remove(filepath.Join(j.dir, name))
		}
	}
}

// err returns the sticky WAL or checkpoint failure, if any.
func (j *journal) err() error {
	j.mu.Lock()
	ckpt := j.ckptErr
	j.mu.Unlock()
	if ckpt != nil {
		return ckpt
	}
	j.w.mu.Lock()
	werr := j.w.err
	j.w.mu.Unlock()
	if werr != nil && werr != os.ErrClosed {
		return fmt.Errorf("persist: wal: %w", werr)
	}
	return nil
}

// JournalErr implements colstore.JournalHealth: the merge daemon polls it
// after each merge to report, rather than swallow, durability failures.
func (j *journal) JournalErr() error { return j.err() }

package persist

// The journal: the persist side of the colstore.Journal interface. It owns
// the WAL and the checkpoint files for one store directory. Appends become
// WAL records; main-part publications (merges) become a part file plus a
// fresh manifest, after which WAL segments fully covered by the two newest
// manifests are deleted.
//
// Lock order: mu → regMu → wal.mu. The hot append path takes only
// regMu.RLock (name→id) and wal.mu (framing); checkpoints serialize on mu.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"strdict/internal/colstore"
	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// CheckpointStats summarizes the most recent manifest publication: how many
// part files the checkpoint actually wrote versus re-referenced from the
// previous manifest, and how many bytes hit disk. A store-wide checkpoint
// with one dirty column out of N reports PartsWritten == 1 and
// PartsReused == N-1 — the incremental-checkpoint invariant the bench gate
// (scripts/bench_incremental_ckpt.sh) holds us to.
type CheckpointStats struct {
	// PartsWritten is the number of p%08d.part files written.
	PartsWritten int
	// PartsReused is the number of columns whose existing part file the new
	// manifest re-references unchanged.
	PartsReused int
	// PartBytes is the total size of the part files written.
	PartBytes uint64
	// ManifestBytes is the size of the manifest itself.
	ManifestBytes uint64
}

// colState is the journal's record of one column.
type colState struct {
	id     uint32
	kind   uint8 // partStr / partInt / partFloat
	table  string
	column string

	// format is the column's current dictionary format (string columns
	// only); updated by checkpoints after a rebuild changes it. Guarded by
	// regMu.
	format dict.Format

	// Checkpoint state: how many leading rows the current part file covers.
	// Guarded by journal.mu.
	persisted uint64
	file      string // part file base name, "" before the first checkpoint

	// Dirtiness: how stale the column's part file is. A checkpoint rewrites
	// a column's part iff one of these is non-zero (or the column has rows
	// but no part yet); clean columns re-reference their existing part in
	// the new manifest. dirtyMerges counts main-part publications since the
	// part was last written (string columns — delta appends ride in the WAL
	// and do not stale the part); dirtyRows counts appends since (numeric
	// columns, whose part snapshots the full value slice). Both are bumped
	// on the hot paths without journal.mu, hence atomics; the checkpoint
	// loads them *before* reading the column and subtracts the loaded value
	// after a successful write, so a concurrent publication can only leave
	// a residual (spurious rewrite later), never a silently clean stale
	// part.
	dirtyMerges atomic.Uint64
	dirtyRows   atomic.Uint64
}

type journal struct {
	dir         string
	w           *wal
	store       *colstore.Store
	disableCkpt bool
	fs          FS
	retry       retryPolicy
	health      *healthTracker

	regMu  sync.RWMutex
	byName map[string]*colState // "table.column"
	byID   map[uint32]*colState
	tables map[string]bool
	nextID uint32

	mu                 sync.Mutex // serializes checkpoint + manifest writes
	manifestSeq        uint64     // next manifest sequence number
	fileSeq            uint64     // next part file sequence number
	prevPersisted      map[uint32]uint64
	prevManifestWalSeq uint64 // active WAL segment when prev manifest was written
	ckptErr            error  // sticky checkpoint failure

	// wrotePart records part files this process wrote. GC uses it to tell a
	// part it superseded itself (safe to delete) from one it knows nothing
	// about (quarantined, never silently dropped). Guarded by mu.
	wrotePart map[string]bool

	// Per-cycle checkpoint accounting (guarded by mu): curStats accumulates
	// between manifests, lastStats is the last published cycle.
	curStats  CheckpointStats
	lastStats CheckpointStats
}

// DDL events. Dedupe by name: SetJournal re-announces schema that recovery
// already registered, and the WAL record was either already written or is
// implied by the loaded manifest.

func (j *journal) JournalAddTable(table string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	if j.tables[table] {
		return
	}
	j.tables[table] = true
	j.w.append(encDDLTable(table), false, 0)
}

func (j *journal) addColumnLocked(kind uint8, format dict.Format, table, column string) {
	name := table + "." + column
	if _, ok := j.byName[name]; ok {
		return
	}
	st := &colState{id: j.nextID, kind: kind, format: format, table: table, column: column}
	j.nextID++
	j.byName[name] = st
	j.byID[st.id] = st
	var rec byte
	var wire uint16
	switch kind {
	case partStr:
		rec = recDDLString2
		wire = format.WireID()
	case partInt:
		rec = recDDLInt
	default:
		rec = recDDLFloat
	}
	j.w.append(encDDLColumn(rec, st.id, wire, table, column), false, 0)
}

func (j *journal) JournalAddString(table, column string, format dict.Format) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partStr, format, table, column)
}

func (j *journal) JournalAddInt64(table, column string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partInt, 0, table, column)
}

func (j *journal) JournalAddFloat64(table, column string) {
	j.regMu.Lock()
	defer j.regMu.Unlock()
	j.addColumnLocked(partFloat, 0, table, column)
}

func (j *journal) lookup(name string) *colState {
	j.regMu.RLock()
	st := j.byName[name]
	j.regMu.RUnlock()
	return st
}

// Append events: one WAL record per row. WAL failures are sticky inside the
// WAL and surface through Sync/Close — the interface has no error return,
// by design: the column has already accepted the row.

func (j *journal) JournalAppend(column string, value string) {
	if st := j.lookup(column); st != nil {
		j.w.append(encAppend(st.id, value), true, st.id)
	}
}

func (j *journal) JournalAppendInt64(column string, value int64) {
	if st := j.lookup(column); st != nil {
		st.dirtyRows.Add(1)
		j.w.append(encAppendU64(recAppendInt, st.id, uint64(value)), true, st.id)
	}
}

func (j *journal) JournalAppendFloat64(column string, value float64) {
	if st := j.lookup(column); st != nil {
		st.dirtyRows.Add(1)
		j.w.append(encAppendU64(recAppendFloat, st.id, math.Float64bits(value)), true, st.id)
	}
}

// JournalMainPart: a merge published a new main part. Log a marker, then —
// unless per-merge checkpoints are disabled — persist the part and write a
// new manifest, which in turn lets covered WAL segments go.
func (j *journal) JournalMainPart(column string, d dict.Dictionary, codes intcomp.Vector, nMain int) {
	st := j.lookup(column)
	if st == nil {
		return
	}
	st.dirtyMerges.Add(1)
	j.w.append(encMerge(st.id, uint64(nMain)), false, 0)
	if j.disableCkpt {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.checkpointStringLocked(st, d, codes, uint64(nMain)); err != nil {
		j.setCkptErrLocked(err)
		return
	}
	if err := j.writeManifestLocked(); err != nil {
		j.setCkptErrLocked(err)
	}
}

func (j *journal) setCkptErrLocked(err error) {
	if j.ckptErr == nil {
		j.ckptErr = err
		j.health.observe(StateReadOnly, "checkpoint", err)
	}
}

// writeDurable is writeAtomicFS under the journal's retry policy. Each
// attempt re-runs the whole tmp-fsync-rename sequence, which is idempotent:
// a failed attempt leaves at worst a stale .tmp that the next attempt
// truncates.
func (j *journal) writeDurable(path string, data []byte) error {
	return j.retry.run(j.health, "checkpoint", func() error {
		return writeAtomicFS(j.fs, path, data)
	})
}

// checkpointStringLocked writes a string column's main part to a fresh part
// file and points the column's state at it. The merge-publication counter is
// loaded before the part bytes are taken and subtracted after the write, so
// a publication racing the write leaves a residual (and a rewrite at the
// next checkpoint) instead of a stale part marked clean. Caller holds mu.
func (j *journal) checkpointStringLocked(st *colState, d dict.Dictionary, codes intcomp.Vector, rows uint64) error {
	dm := st.dirtyMerges.Load()
	data, err := encStringPart(d, codes)
	if err != nil {
		return err
	}
	file, err := j.writePartLocked(data)
	if err != nil {
		return err
	}
	st.persisted = rows
	st.file = file
	if dm != 0 {
		st.dirtyMerges.Add(^(dm - 1))
	}
	j.regMu.Lock()
	st.format = d.Format()
	j.regMu.Unlock()
	return nil
}

// writePartLocked writes one part file atomically and returns its base
// name. Caller holds mu.
func (j *journal) writePartLocked(data []byte) (string, error) {
	seq := j.fileSeq
	path := partPath(j.dir, seq)
	if err := j.writeDurable(path, data); err != nil {
		return "", err
	}
	j.fileSeq++
	name := filepath.Base(path)
	j.wrotePart[name] = true
	j.curStats.PartsWritten++
	j.curStats.PartBytes += uint64(len(data))
	return name, nil
}

// checkpointAll persists every dirty column — string main parts plus full
// numeric slices — then writes a manifest that re-references the existing
// part files of clean columns. String delta rows stay in the WAL. It is
// safe against concurrent string appends and merges; concurrent numeric
// appends must be quiesced (numeric Append is not goroutine-safe anyway).
func (j *journal) checkpointAll() error {
	if err := j.w.sync(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, name := range j.store.TableNames() {
		t := j.store.Table(name)
		for _, c := range t.StringColumns() {
			st := j.lookup(c.Name())
			if st == nil {
				continue
			}
			d, codes, n := c.MainParts()
			// Dirty iff a merge published since the part was written, the
			// part no longer matches the main length (e.g. restored state),
			// or the column has main rows but no part yet.
			if st.dirtyMerges.Load() == 0 && uint64(n) == st.persisted && (st.file != "" || n == 0) {
				continue
			}
			if err := j.checkpointStringLocked(st, d, codes, uint64(n)); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
		for _, ic := range t.Int64Columns() {
			if err := j.checkpointInt64Locked(ic); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
		for _, fc := range t.Float64Columns() {
			if err := j.checkpointFloat64Locked(fc); err != nil {
				j.setCkptErrLocked(err)
				return err
			}
		}
	}
	if err := j.writeManifestLocked(); err != nil {
		j.setCkptErrLocked(err)
		return err
	}
	return nil
}

func (j *journal) checkpointInt64Locked(c *colstore.Int64Column) error {
	st := j.lookup(c.Name())
	if st == nil {
		return nil
	}
	// Load the append counter before snapshotting the values: rows appended
	// after the load stay dirty and force the next checkpoint to rewrite.
	dr := st.dirtyRows.Load()
	n := c.Len()
	if dr == 0 && uint64(n) == st.persisted && (st.file != "" || n == 0) {
		return nil
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = c.Get(i)
	}
	file, err := j.writePartLocked(encInt64Part(vals))
	if err != nil {
		return err
	}
	st.persisted = uint64(n)
	st.file = file
	if dr != 0 {
		st.dirtyRows.Add(^(dr - 1))
	}
	return nil
}

func (j *journal) checkpointFloat64Locked(c *colstore.Float64Column) error {
	st := j.lookup(c.Name())
	if st == nil {
		return nil
	}
	dr := st.dirtyRows.Load()
	n := c.Len()
	if dr == 0 && uint64(n) == st.persisted && (st.file != "" || n == 0) {
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = c.Get(i)
	}
	file, err := j.writePartLocked(encFloat64Part(vals))
	if err != nil {
		return err
	}
	st.persisted = uint64(n)
	st.file = file
	if dr != 0 {
		st.dirtyRows.Add(^(dr - 1))
	}
	return nil
}

// writeManifestLocked publishes the current checkpoint state as a new
// manifest, then truncates the WAL and garbage-collects superseded files.
// Caller holds mu.
func (j *journal) writeManifestLocked() error {
	j.regMu.RLock()
	cols := make([]manifestCol, 0, len(j.byID))
	for _, st := range j.byID {
		cols = append(cols, manifestCol{
			id:     st.id,
			kind:   st.kind,
			format: st.format,
			rows:   st.persisted,
			table:  st.table,
			column: st.column,
			file:   st.file,
		})
	}
	j.regMu.RUnlock()
	sort.Slice(cols, func(a, b int) bool { return cols[a].id < cols[b].id })

	// Sample the active WAL segment before writing: every segment sealed
	// before this point has seq < activeSeq, so its DDL is contained in the
	// manifest — the property the recorded walSeq promises.
	activeSeq := j.w.activeSeq()
	seq := j.manifestSeq
	data := encManifest(seq, activeSeq, cols)
	if err := j.writeDurable(manifestPath(j.dir, seq), data); err != nil {
		return err
	}
	j.manifestSeq++

	// Publish the cycle's stats: reused = columns with a part file minus the
	// parts this cycle wrote.
	j.curStats.ManifestBytes = uint64(len(data))
	withFile := 0
	for _, c := range cols {
		if c.file != "" {
			withFile++
		}
	}
	if r := withFile - j.curStats.PartsWritten; r > 0 {
		j.curStats.PartsReused = r
	}
	j.lastStats = j.curStats
	j.curStats = CheckpointStats{}

	// Truncate: a row is durably checkpointed only if both retained
	// manifests cover it, so the floor is the elementwise minimum of this
	// manifest's rows and the previous one's — a corrupt newest manifest
	// must still leave the fallback replayable. The ceiling is the segment
	// that was active when the *older* retained manifest was written: both
	// retained manifests provably contain the schema of anything below it.
	cur := make(map[uint32]uint64, len(cols))
	cover := make(map[uint32]uint64, len(cols))
	for _, c := range cols {
		cur[c.id] = c.rows
		if p := j.prevPersisted[c.id]; p < c.rows {
			cover[c.id] = p
		} else {
			cover[c.id] = c.rows
		}
	}
	j.w.deleteCovered(cover, j.prevManifestWalSeq)
	j.gcLocked()
	j.prevPersisted = cur
	j.prevManifestWalSeq = activeSeq
	return nil
}

// gcLocked collects checkpoint files by manifest reachability. Retention is
// the two newest *readable* manifests — retaining by raw sequence number
// would let one corrupt newest manifest stall GC forever, or worse, count
// toward the two and strand the only readable fallback. Part files are kept
// iff a retained manifest references them; an unreferenced part this process
// wrote (superseded by its own later checkpoints, or left by a failed
// manifest write) or that an older readable manifest still names is deleted,
// while an unknown unreferenced part — the signature of a crash between part
// write and manifest commit — is quarantined under a .orphan suffix, never
// silently dropped. Manifests proven corrupt (read succeeded, decode failed)
// are quarantined too; a failed read aborts the round instead, since a
// transient I/O fault is indistinguishable from corruption. Caller holds mu.
// Errors are ignored: GC retries at every checkpoint.
func (j *journal) gcLocked() {
	names, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return
	}
	type manifest struct {
		seq  uint64
		name string
		cols []manifestCol
	}
	var readable []manifest
	var corrupt []string
	for _, name := range names {
		seq, ok := parseManifestSeq(name)
		if !ok {
			continue
		}
		b, err := j.fs.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			return // can't tell fault from corruption: skip this round
		}
		_, _, cols, derr := decManifest(b)
		if derr != nil {
			corrupt = append(corrupt, name)
			continue
		}
		readable = append(readable, manifest{seq: seq, name: name, cols: cols})
	}
	for _, name := range corrupt {
		p := filepath.Join(j.dir, name)
		j.fs.Rename(p, p+".quarantine")
	}
	if len(readable) == 0 {
		return
	}
	sort.Slice(readable, func(a, b int) bool { return readable[a].seq > readable[b].seq })
	retain := readable
	if len(retain) > 2 {
		retain = retain[:2]
	}
	referenced := make(map[string]bool)
	for _, m := range retain {
		for _, c := range m.cols {
			if c.file != "" {
				referenced[c.file] = true
			}
		}
	}
	// Parts named only by manifests now rotating out are superseded, not
	// orphaned: deletable even though no process wrote them this lifetime.
	superseded := make(map[string]bool)
	for _, m := range readable[len(retain):] {
		for _, c := range m.cols {
			if c.file != "" && !referenced[c.file] {
				superseded[c.file] = true
			}
		}
		j.fs.Remove(filepath.Join(j.dir, m.name))
	}
	for _, name := range names {
		if _, ok := parsePartSeq(name); ok && !referenced[name] {
			if j.wrotePart[name] || superseded[name] {
				j.fs.Remove(filepath.Join(j.dir, name))
			} else {
				p := filepath.Join(j.dir, name)
				j.fs.Rename(p, p+".orphan")
			}
			delete(j.wrotePart, name)
		}
		if filepath.Ext(name) == ".tmp" {
			j.fs.Remove(filepath.Join(j.dir, name))
		}
	}
}

// stats returns the last published checkpoint cycle's accounting.
func (j *journal) stats() CheckpointStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastStats
}

// err returns the sticky WAL or checkpoint failure, if any.
func (j *journal) err() error {
	j.mu.Lock()
	ckpt := j.ckptErr
	j.mu.Unlock()
	if ckpt != nil {
		return ckpt
	}
	j.w.mu.Lock()
	werr := j.w.err
	j.w.mu.Unlock()
	if werr != nil && werr != os.ErrClosed {
		return fmt.Errorf("persist: wal: %w", werr)
	}
	return nil
}

// JournalErr implements colstore.JournalHealth: the merge daemon polls it
// after each merge to report, rather than swallow, durability failures.
func (j *journal) JournalErr() error { return j.err() }

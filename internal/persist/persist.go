// Package persist adds durability to a colstore: a delta write-ahead log
// for appends, checkpoint files for merged main parts, and crash recovery
// that reconstructs the store bit-identically to its last durable snapshot.
//
// The design follows the paper's delta/main split. Delta rows — the
// write-optimized tail — are cheap to log as they arrive, so they go to a
// group-committed WAL. Main parts — the read-optimized, dictionary-
// compressed prefix — are rewritten wholesale by merges, so each merge
// checkpoints the freshly built dictionary and code vector in their
// compressed form (the checkpoint is roughly as small as the in-memory
// footprint, one of the paper's arguments for compressed dictionaries) and
// the WAL records it covered are discarded. Recovery loads the newest
// intact checkpoint and replays the WAL suffix on top.
package persist

import (
	"fmt"
	"os"
	"time"

	"strdict/internal/colstore"
)

// Options tunes a persistent store.
type Options struct {
	// FsyncInterval is the group-commit window: appends are acknowledged
	// immediately and fsynced together at this cadence. Zero selects
	// DefaultFsyncInterval; a negative value fsyncs every append (slowest,
	// zero-loss).
	FsyncInterval time.Duration

	// SegmentBytes rotates the WAL once a segment's durable size passes
	// this threshold. Zero selects DefaultSegmentBytes.
	SegmentBytes int64

	// DisableCheckpointOnMerge stops merges from writing checkpoints;
	// only explicit Checkpoint calls persist main parts then. Useful for
	// benchmarks isolating WAL cost.
	DisableCheckpointOnMerge bool

	// FS is the filesystem the WAL and checkpoint paths write through.
	// Nil selects the real OS filesystem; tests and the torture harness
	// install a *FaultFS to inject transient and permanent I/O faults.
	FS FS

	// OnHealth, when non-nil, is invoked on every durability health
	// transition (Healthy → Degraded → ReadOnly and Degraded → Healthy).
	// Calls are delivered by a dedicated goroutine, never under a store
	// lock, so the hook may call back into the store (Err, Health) or
	// block briefly without stalling appends.
	OnHealth func(HealthEvent)

	// RetryLimit bounds how many times a failed WAL or checkpoint I/O
	// operation is retried before the error turns sticky and the store
	// degrades to read-only. Zero selects the default (4); negative
	// disables retries.
	RetryLimit int

	// RetryBackoff is the initial delay between retries, doubling per
	// attempt. Zero selects the default (2ms).
	RetryBackoff time.Duration
}

// Store is a colstore.Store whose contents survive process crashes. All
// colstore functionality is embedded; appends and merges are journaled
// transparently once the store is open.
type Store struct {
	*colstore.Store
	j      *journal
	health *healthTracker
	info   RecoveryInfo
}

// Open recovers (or creates) the persistent store in dir. The returned
// store reflects every row that was durable — fsynced — before the previous
// process stopped; see Recovery for what was found.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OS
	}
	r, err := recoverDir(dir, fsys)
	if err != nil {
		return nil, fmt.Errorf("persist: recover %s: %w", dir, err)
	}
	health := newHealthTracker(opts.OnHealth)
	retry := newRetryPolicy(opts.RetryLimit, opts.RetryBackoff)
	w, err := newWAL(walConfig{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		fsync:    opts.FsyncInterval,
		fs:       fsys,
		retry:    retry,
		health:   health,
	}, r.nextSegSeq, r.counts, r.sealed)
	if err != nil {
		health.close()
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	j := &journal{
		dir:                dir,
		w:                  w,
		store:              r.store,
		disableCkpt:        opts.DisableCheckpointOnMerge,
		fs:                 fsys,
		retry:              retry,
		health:             health,
		byName:             r.byName,
		byID:               r.byID,
		tables:             r.tables,
		nextID:             r.nextID,
		manifestSeq:        r.nextManifestSeq,
		fileSeq:            r.nextFileSeq,
		prevManifestWalSeq: r.manifestWalSeq,
		wrotePart:          make(map[string]bool),
	}
	// Seed the truncation floor and per-column dirtiness from what recovery
	// loaded: the loaded manifest's covered rows are the previous cover, so
	// one post-recovery checkpoint suffices to truncate, and rows the WAL
	// replayed beyond a column's part mark the column dirty.
	j.prevPersisted = make(map[uint32]uint64, len(r.byID))
	for id, st := range r.byID {
		j.prevPersisted[id] = st.persisted
		if st.kind != partStr {
			if n := r.counts[id]; n > st.persisted {
				st.dirtyRows.Store(n - st.persisted)
			}
		}
	}
	r.store.SetJournal(j)
	return &Store{Store: r.store, j: j, health: health, info: r.info}, nil
}

// Recovery reports what Open found in the directory.
func (s *Store) Recovery() RecoveryInfo { return s.info }

// Sync blocks until every previously appended row is durable.
func (s *Store) Sync() error { return s.j.w.sync() }

// Checkpoint persists every dirty column — merged string main parts and
// full numeric columns — writes a manifest re-referencing the existing part
// files of clean columns, and truncates the WAL segments this makes
// redundant. String delta rows stay in the WAL until a merge folds them.
// Safe against concurrent string appends and merges; quiesce numeric
// appends first (numeric Append is not goroutine-safe to begin with).
func (s *Store) Checkpoint() error { return s.j.checkpointAll() }

// LastCheckpoint reports the most recent checkpoint's accounting: part
// files written versus re-referenced and the bytes that hit disk. Zero
// before the first checkpoint of this process.
func (s *Store) LastCheckpoint() CheckpointStats { return s.j.stats() }

// Err reports a sticky background failure: a WAL write/fsync error or a
// failed merge-time checkpoint. A store with a non-nil Err keeps serving
// reads and in-memory writes but makes no further durability promises.
func (s *Store) Err() error { return s.j.err() }

// Health reports the store's durability state. StateDegraded means a
// transient fault is being retried; StateReadOnly means a fault outlived
// the retry budget — reads and in-memory writes still work, but appends
// are no longer made durable (see DroppedRows) and embedders should stop
// writing. Prefer Options.OnHealth for transition notifications.
func (s *Store) Health() HealthState { return s.health.current() }

// DroppedRows counts append records refused by the WAL after it degraded
// to read-only: rows the in-memory store holds but durability lost.
func (s *Store) DroppedRows() uint64 { return s.j.w.droppedRows() }

// Close flushes and closes the WAL. The store remains readable; further
// appends are no longer journaled durably and Err reports the closed state.
func (s *Store) Close() error {
	err := s.j.w.close()
	s.health.close()
	return err
}

// Crash abandons the store without flushing, keeping on disk only what was
// already durable — a simulated process kill for the crash suite and the
// torture harness. The in-memory store stays readable.
func (s *Store) Crash() {
	s.j.w.crash()
	s.health.close()
}

package persist

// Store-level fault injection through the FS seam: transient faults are
// retried and absorbed, permanent faults degrade the store to read-only
// with the health hook fired, and either way the in-memory contents stay
// intact and recovery never regresses below the durable prefix.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"strdict/internal/dict"
)

// healthLog collects OnHealth events for assertions.
type healthLog struct {
	mu     sync.Mutex
	events []HealthEvent
}

func (l *healthLog) hook() func(HealthEvent) {
	return func(ev HealthEvent) {
		l.mu.Lock()
		l.events = append(l.events, ev)
		l.mu.Unlock()
	}
}

func (l *healthLog) states() []HealthState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]HealthState, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.State
	}
	return out
}

// faultOpts opens a store with sync-every appends, a FaultFS, a health log
// and fast retries.
func faultOpts(ffs *FaultFS, log *healthLog, retryLimit int) Options {
	return Options{
		FsyncInterval: -1,
		FS:            ffs,
		OnHealth:      log.hook(),
		RetryLimit:    retryLimit,
		RetryBackoff:  time.Microsecond,
	}
}

func isWALPath(path string) bool { return strings.HasSuffix(path, ".log") }

// TestStoreTransientFaultRetried: a burst of fsync failures shorter than
// the retry budget degrades and then recovers the store — appends keep
// succeeding, nothing is sticky, and the rows are durable across a crash.
func TestStoreTransientFaultRetried(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	log := &healthLog{}
	s, err := Open(dir, faultOpts(ffs, log, 3))
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 50)

	ffs.FailNext(OpSync, 2, errInjected, isWALPath)
	tb := s.Table("t")
	base := len(rows)
	for i := 0; i < 10; i++ {
		tb.Str("s").Append("post-fault")
		tb.Int("i").Append(int64((base + i) * 3))
		tb.Float("f").Append(float64(base+i) / 4)
		rows = append(rows, "post-fault")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after transient fault: %v", err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("transient fault turned sticky: %v", err)
	}
	if got := s.Health(); got != StateHealthy {
		t.Fatalf("health = %v, want healthy", got)
	}
	if got := s.DroppedRows(); got != 0 {
		t.Fatalf("dropped rows = %d, want 0", got)
	}
	s.Crash()

	states := log.states()
	if len(states) < 2 || states[0] != StateDegraded || states[len(states)-1] != StateHealthy {
		t.Fatalf("health transitions = %v, want degraded then healthy", states)
	}

	s2 := openSync(t, dir)
	defer s2.Close()
	verifyStore(t, s2, rows)
}

// TestStorePermanentFaultReadOnly: once a fault outlives the retry budget
// the store degrades to read-only — the hook fires, Err is sticky, refused
// appends are counted, reads still serve the full in-memory contents, and
// recovery comes back with exactly the durable prefix.
func TestStorePermanentFaultReadOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	log := &healthLog{}
	s, err := Open(dir, faultOpts(ffs, log, 2))
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 50)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Refuse writes and syncs: nothing lands on disk past the durable prefix.
	ffs.FailAll(OpWrite, errInjected, isWALPath)
	ffs.FailAll(OpSync, errInjected, isWALPath)
	tb := s.Table("t")
	sc := tb.Str("s")
	for i := 0; i < 5; i++ {
		sc.Append("lost") // accepted in memory, refused by the dead WAL
		rows = append(rows, "lost")
	}
	if err := s.Err(); !errors.Is(err, errInjected) {
		t.Fatalf("Err = %v, want injected fault", err)
	}
	if got := s.Health(); got != StateReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}
	// The first failing append burned the retry budget and went sticky; the
	// remaining four were refused outright.
	if got := s.DroppedRows(); got != 4 {
		t.Fatalf("dropped rows = %d, want 4", got)
	}
	// Reads keep serving the in-memory store, dropped rows included.
	if sc.Len() != len(rows) {
		t.Fatalf("in-memory rows = %d, want %d", sc.Len(), len(rows))
	}
	for i, want := range rows {
		if got := sc.Get(i); got != want {
			t.Fatalf("row %d = %q, want %q", i, got, want)
		}
	}
	s.Crash()

	states := log.states()
	if len(states) == 0 || states[len(states)-1] != StateReadOnly {
		t.Fatalf("health transitions = %v, want ... read-only", states)
	}

	// Recovery restores the durable prefix: everything before the fault.
	ffs.Clear()
	s2 := openSync(t, dir)
	defer s2.Close()
	verifyStore(t, s2, rows[:50])
}

// TestStoreCheckpointFaultReadOnly: a permanently failing checkpoint write
// (merge-time part file) turns the journal sticky and read-only, but WAL
// replay still recovers every appended row.
func TestStoreCheckpointFaultReadOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	log := &healthLog{}
	s, err := Open(dir, faultOpts(ffs, log, 2))
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 50)
	ffs.FailAll(OpCreate, errInjected, func(p string) bool { return strings.HasSuffix(p, ".tmp") })

	sc := s.Table("t").Str("s")
	sc.Merge(sc.Format()) // merge triggers the failing checkpoint
	if err := s.Err(); !errors.Is(err, errInjected) {
		t.Fatalf("Err = %v, want injected fault", err)
	}
	if got := s.Health(); got != StateReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}
	s.Crash()

	ffs.Clear()
	s2 := openSync(t, dir)
	defer s2.Close()
	verifyStore(t, s2, rows)
}

// TestHealthHookNotUnderLocks: the OnHealth hook may call back into the
// store (Err, Health, DroppedRows) without deadlocking, because events are
// delivered by a dedicated goroutine outside every persist lock.
func TestHealthHookNotUnderLocks(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	fired := make(chan struct{})
	var s *Store
	var once sync.Once
	opts := Options{
		FsyncInterval: -1,
		FS:            ffs,
		RetryLimit:    -1,
		OnHealth: func(ev HealthEvent) {
			s.Err()
			s.Health()
			s.DroppedRows()
			once.Do(func() { close(fired) })
		},
	}
	var err error
	s, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 5)
	ffs.FailAll(OpSync, errInjected, isWALPath)
	s.Table("t").Str("s").Append("x")
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("health hook never fired")
	}
	ffs.Clear()
	s.Close()
}

// isManifestPath matches manifest files (but not their quarantined copies).
func isManifestPath(path string) bool {
	name := filepath.Base(path)
	_, ok := parseManifestSeq(name)
	return ok
}

func isPartPath(path string) bool {
	_, ok := parsePartSeq(filepath.Base(path))
	return ok
}

// buildFaultRecoveryDir makes a directory with two manifests and WAL tail
// rows, then returns it plus the expected string rows.
func buildFaultRecoveryDir(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	s := openSync(t, dir)
	rows := fillStore(t, s, 20)
	s.Table("t").Str("s").Merge(dict.FCBlock)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tb := s.Table("t")
	for i := 20; i < 26; i++ {
		v := fmt.Sprintf("value-%03d", i%7)
		tb.Str("s").Append(v)
		rows = append(rows, v)
		tb.Int("i").Append(int64(i * 3))
		tb.Float("f").Append(float64(i) / 4)
	}
	s.Close()
	return dir, rows
}

// TestOpenManifestReadFaultFallsBack: an I/O fault on the newest manifest
// during Open behaves like corruption — recovery falls back to the previous
// manifest and reconstructs every row from it plus the WAL.
func TestOpenManifestReadFaultFallsBack(t *testing.T) {
	dir, rows := buildFaultRecoveryDir(t)
	ffs := &FaultFS{}
	log := &healthLog{}
	ffs.FailNext(OpReadFile, 1, errInjected, isManifestPath)
	s, err := Open(dir, faultOpts(ffs, log, 0))
	if err != nil {
		t.Fatalf("open with manifest read fault: %v", err)
	}
	defer s.Close()
	if s.Recovery().ManifestFallbacks == 0 {
		t.Fatal("expected a manifest fallback")
	}
	verifyStore(t, s, rows)
}

// TestOpenPartReadFaultFallsBack: a faulted part read rejects that manifest
// and recovery continues manifest-by-manifest instead of poisoning Open.
func TestOpenPartReadFaultFallsBack(t *testing.T) {
	dir, rows := buildFaultRecoveryDir(t)
	ffs := &FaultFS{}
	log := &healthLog{}
	ffs.FailNext(OpReadFile, 1, errInjected, isPartPath)
	s, err := Open(dir, faultOpts(ffs, log, 0))
	if err != nil {
		t.Fatalf("open with part read fault: %v", err)
	}
	defer s.Close()
	if s.Recovery().ManifestFallbacks == 0 {
		t.Fatal("expected a manifest fallback")
	}
	verifyStore(t, s, rows)
}

// TestOpenEveryReadFaultFallsBackOrFails sweeps a single injected ReadFile
// fault over every read Open performs: each position must either fall back
// losslessly (manifest/part reads) or fail Open outright (WAL reads) —
// never open a store with silently missing rows.
func TestOpenEveryReadFaultFallsBackOrFails(t *testing.T) {
	dir, rows := buildFaultRecoveryDir(t)
	// Count the reads of a clean Open.
	probe := &FaultFS{}
	s, err := Open(dir, Options{FsyncInterval: -1, FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	total := int(probe.OpCount(OpReadFile))
	if total < 3 {
		t.Fatalf("probe counted %d reads, want several", total)
	}
	for k := 0; k < total; k++ {
		ffs := &FaultFS{}
		skip := k
		var faulted string
		ffs.SetHook(func(op Op, path string) error {
			if op != OpReadFile {
				return nil
			}
			if skip == 0 {
				skip--
				faulted = filepath.Base(path)
				return errInjected
			}
			skip--
			return nil
		})
		s, err := Open(dir, Options{FsyncInterval: -1, FS: ffs, RetryLimit: -1})
		if err != nil {
			// Acceptable only for a WAL read: recovery must not replay
			// around an unreadable segment.
			if !errors.Is(err, errInjected) || !isWALPath(faulted) {
				t.Fatalf("read %d (%s): open failed: %v", k, faulted, err)
			}
			continue
		}
		verifyStore(t, s, rows)
		s.Close()
	}
}

// TestOpenWALReadFaultFailsThenCleanReopen: a WAL segment read fault makes
// Open fail with the injected error; clearing the fault lets the same
// directory open losslessly — the failed Open mutated nothing.
func TestOpenWALReadFaultFailsThenCleanReopen(t *testing.T) {
	dir, rows := buildFaultRecoveryDir(t)
	ffs := &FaultFS{}
	ffs.FailAll(OpReadFile, errInjected, isWALPath)
	if _, err := Open(dir, Options{FsyncInterval: -1, FS: ffs, RetryLimit: -1}); !errors.Is(err, errInjected) {
		t.Fatalf("open with WAL read fault: err = %v, want injected", err)
	}
	ffs.Clear()
	s, err := Open(dir, Options{FsyncInterval: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	verifyStore(t, s, rows)
}

// TestOpenReadDirFaultFails: if the directory itself cannot be listed, Open
// reports it rather than treating the store as fresh (which would shadow
// every existing row).
func TestOpenReadDirFaultFails(t *testing.T) {
	dir, _ := buildFaultRecoveryDir(t)
	ffs := &FaultFS{}
	ffs.FailNext(OpReadDir, 1, errInjected, nil)
	if _, err := Open(dir, Options{FsyncInterval: -1, FS: ffs}); !errors.Is(err, errInjected) {
		t.Fatalf("open with readdir fault: err = %v, want injected", err)
	}
}

package persist

// WAL record grammar. Every record is framed as
//
//	length u32 | crc u32 | payload[length]
//
// where crc is CRC32C (Castagnoli) over the payload and length counts the
// payload bytes only. The payload starts with a one-byte kind:
//
//	header   seq u64, ncols u32, (id u32, count u64)*   first record of a segment
//	append   id u32, value bytes                        one string row
//	appInt   id u32, value u64 (two's complement)       one int64 row
//	appFloat id u32, value u64 (IEEE 754 bits)          one float64 row
//	ddlTab   name bytes                                 table created
//	ddlStr   id u32, format u8, table str16, column str16    (legacy, read-only)
//	ddlInt   id u32, table str16, column str16
//	ddlFloat id u32, table str16, column str16
//	seal     (empty)                                    segment sealed, rotation follows
//	merge    id u32, nMain u64                          main part published (marker)
//	ddlStr2  id u32, format u16, table str16, column str16
//
// The format field of a string column is the dictionary format's registry
// wire ID. ddlStr carries it as a single byte — enough for the built-in
// formats but not for registered extensions — so writers emit ddlStr2 with
// a u16 wire ID; ddlStr is still decoded for pre-existing logs.
//
// str16 is a u16 length followed by that many bytes. Columns are numbered
// by their ddl records; append records refer to the number, never the name.
// A reader hitting a frame whose length or checksum does not hold treats it
// as the torn tail of a crashed write — there is no record terminator, so
// the frame is the unit of atomicity.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

// Record kinds.
const (
	recHeader      = 1
	recAppend      = 2
	recAppendInt   = 3
	recAppendFloat = 4
	recDDLTable    = 5
	recDDLString   = 6
	recDDLInt      = 7
	recDDLFloat    = 8
	recSeal        = 9
	recMerge       = 10
	recDDLString2  = 11
)

// maxRecord bounds a single record's payload; larger lengths are treated as
// corruption (a torn length field reads as garbage).
const maxRecord = 1 << 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when persisted bytes fail validation.
var ErrCorrupt = errors.New("persist: corrupt data")

// errTorn marks an incomplete frame at the end of a segment: the write that
// produced it never finished. Recovery truncates it away.
var errTorn = errors.New("persist: torn record")

// appendFrame frames a payload into dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readFrame parses one frame at off, returning the payload and the next
// offset. A frame that does not fully verify yields errTorn.
func readFrame(b []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(b) {
		return nil, 0, errTorn
	}
	length := binary.LittleEndian.Uint32(b[off:])
	sum := binary.LittleEndian.Uint32(b[off+4:])
	if length > maxRecord || off+8+int(length) > len(b) {
		return nil, 0, errTorn
	}
	payload = b[off+8 : off+8+int(length)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, errTorn
	}
	return payload, off + 8 + int(length), nil
}

// str16 helpers.

func appendStr16(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16] // names are short; never hit in practice
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readStr16(b []byte, off int) (string, int, error) {
	if off+2 > len(b) {
		return "", 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	if off+2+n > len(b) {
		return "", 0, ErrCorrupt
	}
	return string(b[off+2 : off+2+n]), off + 2 + n, nil
}

// Payload encoders. Each returns a fresh payload slice; framing is the
// WAL's job so it can count bytes under its own lock.

func encHeader(seq uint64, counts map[uint32]uint64) []byte {
	p := make([]byte, 0, 13+12*len(counts))
	p = append(p, recHeader)
	p = binary.LittleEndian.AppendUint64(p, seq)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(counts)))
	// Deterministic order: ascending id.
	ids := make([]uint32, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		p = binary.LittleEndian.AppendUint32(p, id)
		p = binary.LittleEndian.AppendUint64(p, counts[id])
	}
	return p
}

func decHeader(p []byte) (seq uint64, counts map[uint32]uint64, err error) {
	if len(p) < 13 || p[0] != recHeader {
		return 0, nil, ErrCorrupt
	}
	seq = binary.LittleEndian.Uint64(p[1:])
	n := int(binary.LittleEndian.Uint32(p[9:]))
	if len(p) != 13+12*n {
		return 0, nil, ErrCorrupt
	}
	counts = make(map[uint32]uint64, n)
	for i := 0; i < n; i++ {
		off := 13 + 12*i
		id := binary.LittleEndian.Uint32(p[off:])
		counts[id] = binary.LittleEndian.Uint64(p[off+4:])
	}
	return seq, counts, nil
}

func encAppend(id uint32, value string) []byte {
	p := make([]byte, 0, 5+len(value))
	p = append(p, recAppend)
	p = binary.LittleEndian.AppendUint32(p, id)
	return append(p, value...)
}

func encAppendU64(kind byte, id uint32, v uint64) []byte {
	p := make([]byte, 0, 13)
	p = append(p, kind)
	p = binary.LittleEndian.AppendUint32(p, id)
	return binary.LittleEndian.AppendUint64(p, v)
}

func encDDLTable(name string) []byte {
	return append([]byte{recDDLTable}, name...)
}

func encDDLColumn(kind byte, id uint32, format uint16, table, column string) []byte {
	p := make([]byte, 0, 11+len(table)+len(column))
	p = append(p, kind)
	p = binary.LittleEndian.AppendUint32(p, id)
	if kind == recDDLString2 {
		p = binary.LittleEndian.AppendUint16(p, format)
	}
	p = appendStr16(p, table)
	return appendStr16(p, column)
}

func decDDLColumn(p []byte) (id uint32, format uint16, table, column string, err error) {
	if len(p) < 5 {
		return 0, 0, "", "", ErrCorrupt
	}
	kind := p[0]
	id = binary.LittleEndian.Uint32(p[1:])
	off := 5
	switch kind {
	case recDDLString: // legacy single-byte wire ID
		if len(p) < 6 {
			return 0, 0, "", "", ErrCorrupt
		}
		format = uint16(p[5])
		off = 6
	case recDDLString2:
		if len(p) < 7 {
			return 0, 0, "", "", ErrCorrupt
		}
		format = binary.LittleEndian.Uint16(p[5:])
		off = 7
	}
	table, off, err = readStr16(p, off)
	if err != nil {
		return 0, 0, "", "", err
	}
	column, off, err = readStr16(p, off)
	if err != nil {
		return 0, 0, "", "", err
	}
	if off != len(p) {
		return 0, 0, "", "", ErrCorrupt
	}
	return id, format, table, column, nil
}

func encMerge(id uint32, nMain uint64) []byte {
	p := make([]byte, 0, 13)
	p = append(p, recMerge)
	p = binary.LittleEndian.AppendUint32(p, id)
	return binary.LittleEndian.AppendUint64(p, nMain)
}

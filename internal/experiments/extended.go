package experiments

// Extended survey: locate and construction times for every variant.
// The paper measures these but defers the tables to the underlying thesis
// ("Due to space constraints ... a more extensive evaluation of the
// dictionary variants can be found in [33]"); this file regenerates them so
// the trade-off picture is complete.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"strdict/internal/datagen"
	"strdict/internal/dict"
)

// FullSurveyRow extends SurveyRow with locate and construction times.
type FullSurveyRow struct {
	SurveyRow
	LocateNs          float64
	ConstructNsPerStr float64
}

// FullSurvey measures extract, locate and construction for every format on
// one corpus.
func FullSurvey(strs []string, ops int, seed int64) []FullSurveyRow {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]FullSurveyRow, 0, dict.NumFormats())
	for _, f := range dict.AllFormats() {
		start := time.Now()
		d := dict.BuildUnchecked(f, strs)
		buildNs := float64(time.Since(start).Nanoseconds())

		row := FullSurveyRow{SurveyRow: SurveyRow{
			Format:          f,
			CompressionRate: dict.CompressionRate(d, strs),
			ExtractNs:       measureExtractNs(d, ops, seed),
			Bytes:           d.Bytes(),
		}}
		if len(strs) > 0 {
			row.ConstructNsPerStr = buildNs / float64(len(strs))
			probes := make([]string, ops/4+1)
			for i := range probes {
				probes[i] = strs[rng.Intn(len(strs))]
			}
			start = time.Now()
			for _, p := range probes {
				d.Locate(p)
			}
			row.LocateNs = float64(time.Since(start).Nanoseconds()) / float64(len(probes))
		}
		rows = append(rows, row)
	}
	return rows
}

// FigureLocate prints the locate-time side of the trade-off on the src data
// set (companion to Figure 3; reported in [33]).
func FigureLocate(w io.Writer, n int, seed int64) {
	strs := datagen.Generate("src", n, seed)
	fmt.Fprintf(w, "Extended survey: locate runtime on src (%d strings)\n", len(strs))
	fmt.Fprintf(w, "%-16s %18s %14s\n", "variant", "compression rate", "locate (us)")
	for _, r := range FullSurvey(strs, 8000, seed) {
		fmt.Fprintf(w, "%-16s %18.2f %14.3f\n", r.Format, r.CompressionRate, r.LocateNs/1000)
	}
}

// FigureConstruct prints the construction-time side of the trade-off on the
// src data set (companion to Figure 3; reported in [33]). Construction time
// matters because the merge interval bounds how much construction cost a
// column can amortize (Section 5.2).
func FigureConstruct(w io.Writer, n int, seed int64) {
	strs := datagen.Generate("src", n, seed)
	fmt.Fprintf(w, "Extended survey: construction time on src (%d strings)\n", len(strs))
	fmt.Fprintf(w, "%-16s %18s %18s\n", "variant", "compression rate", "construct (ns/str)")
	for _, r := range FullSurvey(strs, 2000, seed) {
		fmt.Fprintf(w, "%-16s %18.2f %18.1f\n", r.Format, r.CompressionRate, r.ConstructNsPerStr)
	}
}

package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/dict"
	"strdict/internal/persist"
	"strdict/internal/tpch"
)

// PersistReport measures the durability subsystem end to end on the TPC-H
// load: WAL-journaled ingest vs the pure in-memory load, checkpoint cost
// and size, and crash recovery back to a bit-identical store.
func PersistReport(w io.Writer, cfg TPCHConfig, dir string) error {
	cfg.FillDefaults()
	tcfg := tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed, InitialFormat: dict.FCBlock}

	// Baseline: the in-memory load, nothing journaled.
	t0 := time.Now()
	mem := tpch.Load(tcfg)
	memLoad := time.Since(t0)
	rows := storeRows(mem)

	// Journaled load into a fresh persistent store. Merges checkpoint as
	// they go; Checkpoint() at the end covers the numeric columns.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	t0 = time.Now()
	// The health hook surfaces durability transitions live (retry, read-only
	// degradation) instead of leaving them to an Err() poll at the end.
	var healthEvents []persist.HealthEvent
	ps, err := persist.Open(dir, persist.Options{
		OnHealth: func(ev persist.HealthEvent) {
			healthEvents = append(healthEvents, ev)
			fmt.Fprintf(w, "health: %v (op=%s err=%v)\n", ev.State, ev.Op, ev.Err)
		},
	})
	if err != nil {
		return err
	}
	tpch.LoadInto(ps.Store, tcfg)
	if err := ps.Sync(); err != nil {
		return err
	}
	walLoad := time.Since(t0)

	t0 = time.Now()
	if err := ps.Checkpoint(); err != nil {
		return err
	}
	ckpt := time.Since(t0)
	if err := ps.Err(); err != nil {
		return err
	}
	health, dropped := ps.Health(), ps.DroppedRows()
	walBytes, ckptBytes := dirSizes(dir)
	if err := ps.Close(); err != nil {
		return err
	}

	// Recovery: reopen and verify.
	t0 = time.Now()
	rs, err := persist.Open(dir, persist.Options{})
	if err != nil {
		return err
	}
	recovery := time.Since(t0)
	defer rs.Close()
	info := rs.Recovery()
	recRows := storeRows(rs.Store)
	if recRows != rows {
		return fmt.Errorf("recovery lost rows: %d != %d", recRows, rows)
	}
	for _, name := range mem.TableNames() {
		for _, c := range mem.Table(name).StringColumns() {
			rc := findStringColumn(rs.Store.Table(name).StringColumns(), c.Name())
			if rc == nil || rc.Len() != c.Len() {
				return fmt.Errorf("column %s not recovered", c.Name())
			}
			step := c.Len()/97 + 1
			for i := 0; i < c.Len(); i += step {
				if rc.Get(i) != c.Get(i) {
					return fmt.Errorf("column %s row %d differs after recovery", c.Name(), i)
				}
			}
		}
	}
	t0 = time.Now()
	tpch.RunAll(rs.Store)
	queries := time.Since(t0)

	fmt.Fprintf(w, "Durability on the TPC-H load (SF %g, %d rows)\n", cfg.ScaleFactor, rows)
	fmt.Fprintf(w, "%-28s %12v\n", "in-memory load", memLoad.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %12v  (%.2fx)\n", "journaled load + sync", walLoad.Round(time.Millisecond),
		float64(walLoad)/float64(memLoad))
	fmt.Fprintf(w, "%-28s %12v\n", "checkpoint", ckpt.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %12.1f KiB wal, %.1f KiB checkpoint\n", "on disk",
		float64(walBytes)/1024, float64(ckptBytes)/1024)
	fmt.Fprintf(w, "%-28s %12v  (%.0f rows/ms)\n", "recovery", recovery.Round(time.Millisecond),
		float64(rows)/float64(recovery.Milliseconds()+1))
	fmt.Fprintf(w, "%-28s manifest=%v replayed=%d skipped=%d lost=%d torn=%dB\n", "recovery detail",
		info.ManifestLoaded, info.ReplayedRows, info.SkippedRows, info.LostRows, info.TornBytes)
	fmt.Fprintf(w, "%-28s %12v  (%d transitions, %d rows dropped)\n", "health",
		health, len(healthEvents), dropped)
	fmt.Fprintf(w, "%-28s %12v  (all queries on the recovered store)\n", "queries", queries.Round(time.Millisecond))
	return nil
}

func storeRows(s *colstore.Store) (total int) {
	for _, name := range s.TableNames() {
		total += s.Table(name).Rows()
	}
	return total
}

func findStringColumn(cols []*colstore.StringColumn, name string) *colstore.StringColumn {
	for _, c := range cols {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

func dirSizes(dir string) (wal, ckpt int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if filepath.Ext(e.Name()) == ".log" {
			wal += fi.Size()
		} else {
			ckpt += fi.Size()
		}
	}
	return wal, ckpt
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/tpch"
)

// DecideWith runs the per-column selection with an explicit strategy.
func (e *TPCHExperiment) DecideWith(strategy core.Strategy, c float64) map[string]core.Candidate {
	out := make(map[string]core.Candidate, len(e.traced))
	for _, tc := range e.traced {
		cands := core.Candidates(e.statsOf(tc), e.costs)
		out[tc.col.Name()] = core.Select(strategy, c, cands)
	}
	return out
}

// StrategyComparison measures the three dividing-function strategies of
// Section 5.4 end to end at the same trade-off parameter: const ignores
// access frequency, rel shifts the budget for hot columns, tilt slants it.
// The paper develops all three and evaluates tilt; this ablation shows what
// the other two would have done.
func StrategyComparison(w io.Writer, e *TPCHExperiment, c float64) []TPCHPoint {
	fmt.Fprintf(w, "Strategy ablation at c=%g (Section 5.4)\n", c)
	fmt.Fprintf(w, "%-8s %14s %12s %22s\n", "strategy", "runtime", "memory MiB", "distinct formats used")
	var points []TPCHPoint
	for _, strat := range []core.Strategy{core.StrategyConst, core.StrategyRel, core.StrategyTilt} {
		decisions := e.DecideWith(strat, c)
		for _, tc := range e.traced {
			tc.col.Rebuild(decisions[tc.col.Name()].Format)
		}
		p := e.measure(strat.String())
		points = append(points, p)
		distinct := make(map[string]bool)
		for _, cand := range decisions {
			distinct[cand.Format.String()] = true
		}
		fmt.Fprintf(w, "%-8s %14v %12.2f %22d\n",
			strat, p.Runtime.Round(time.Millisecond), float64(p.MemBytes)/(1<<20), len(distinct))
	}
	return points
}

// WorkloadReport prints the traced per-column dictionary operation counts —
// the "Number of Extracts / Number of Locates" inputs of the manager's
// information flow (the paper's Figure 7). Columns are listed by total
// dictionary traffic, heaviest first.
func WorkloadReport(w io.Writer, s *colstore.Store) {
	type row struct {
		name               string
		extracts, locates  uint64
		dictLen            int
		dictBytes, vecByte uint64
	}
	var rows []row
	for _, c := range s.StringColumns() {
		st := c.Stats()
		rows = append(rows, row{
			name: c.Name(), extracts: st.Extracts, locates: st.Locates,
			dictLen: c.DictLen(), dictBytes: c.DictBytes(), vecByte: c.VectorBytes(),
		})
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].extracts+rows[j].locates > rows[i].extracts+rows[i].locates {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	fmt.Fprintf(w, "%-24s %12s %10s %10s %12s %12s\n",
		"column", "extracts", "locates", "distinct", "dict bytes", "vector bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12d %10d %10d %12d %12d\n",
			r.name, r.extracts, r.locates, r.dictLen, r.dictBytes, r.vecByte)
	}
}

// TraceAndReport runs one workload pass over a fresh trace and prints the
// report (cmd/tpchbench -figure workload).
func TraceAndReport(w io.Writer, e *TPCHExperiment) {
	e.Store.ResetStats()
	tpch.RunAll(e.Store)
	WorkloadReport(w, e.Store)
}

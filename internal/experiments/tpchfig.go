package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/model"
	"strdict/internal/tpch"
)

// TPCHConfig parameterizes the end-to-end evaluation (Section 6).
type TPCHConfig struct {
	ScaleFactor float64   // TPC-H scale factor (paper: 1; default here: 0.02)
	Seed        int64     //
	TraceReps   int       // workload repetitions for the trace (paper: 100)
	MeasureReps int       // repetitions per configuration measurement
	CValues     []float64 // trade-off sweep (paper: log range 1e-3..10)
	SampleRatio float64   // sampling ratio for the size models
	Parallelism int       // worker pool for per-column selection (<= 1 serial)

	// PartialMerges lets the daemon experiments fold only the oldest sealed
	// segments of hot columns instead of rebuilding whole main parts.
	PartialMerges bool
}

// FillDefaults applies the documented defaults.
func (c *TPCHConfig) FillDefaults() {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 0.02
	}
	if c.TraceReps <= 0 {
		c.TraceReps = 2
	}
	if c.MeasureReps <= 0 {
		c.MeasureReps = 3
	}
	if len(c.CValues) == 0 {
		c.CValues = LogRange(1e-3, 10, 13)
	}
	if c.SampleRatio <= 0 {
		c.SampleRatio = 0.01
	}
}

// LogRange returns n logarithmically spaced values from lo to hi inclusive.
func LogRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		frac := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, frac)
	}
	return out
}

// TPCHPoint is one configuration's position in the space/time plane.
type TPCHPoint struct {
	Label    string
	MemBytes uint64
	Runtime  time.Duration
	// Normalized against the fc inline baseline (the HANA default).
	RelMem, RelTime float64
}

// tracedColumn pins one column's post-trace state: a colstore snapshot
// (dictionary, sizes) plus the counter values and sample at trace end, so
// configuration decisions are reproducible while measurement runs keep
// bumping the live counters and rebuilding dictionaries.
type tracedColumn struct {
	col    *colstore.StringColumn
	snap   *colstore.Snapshot
	stats  colstore.AccessStats
	sample *model.Sample
}

// TPCHExperiment holds the loaded store and the workload trace shared by
// Figures 10 and 11.
type TPCHExperiment struct {
	Cfg        TPCHConfig
	Store      *colstore.Store
	LifetimeNs float64
	traced     []tracedColumn
	costs      *model.CostTable
}

// NewTPCHExperiment loads the data, runs the trace, and snapshots
// per-column statistics.
func NewTPCHExperiment(cfg TPCHConfig) *TPCHExperiment {
	cfg.FillDefaults()
	s := tpch.Load(tpch.Config{
		ScaleFactor:   cfg.ScaleFactor,
		Seed:          cfg.Seed,
		InitialFormat: dict.FCInline,
	})
	lifetime := tpch.TraceWorkload(s, cfg.TraceReps)
	e := &TPCHExperiment{
		Cfg:        cfg,
		Store:      s,
		LifetimeNs: float64(lifetime),
		costs:      model.DefaultCostTable(),
	}
	for _, c := range s.StringColumns() {
		snap := c.Snapshot()
		e.traced = append(e.traced, tracedColumn{
			col:    c,
			snap:   snap,
			stats:  snap.Stats(),
			sample: model.TakeSample(snap.DictValues(), cfg.SampleRatio, cfg.Seed),
		})
	}
	return e
}

// statsOf assembles the manager input from the pinned snapshot: the decision
// inputs cannot drift even while measurement runs rebuild the live columns.
func (e *TPCHExperiment) statsOf(tc tracedColumn) core.ColumnStats {
	return core.ColumnStats{
		Name:              tc.snap.Name(),
		NumStrings:        uint64(tc.snap.DictLen()),
		Extracts:          tc.stats.Extracts,
		Locates:           tc.stats.Locates,
		LifetimeNs:        e.LifetimeNs,
		ColumnVectorBytes: tc.snap.VectorBytes(),
		Sample:            tc.sample,
	}
}

// Decide returns the manager's per-column format choices for one c without
// rebuilding anything. The per-column selections run on the configured
// worker pool (Cfg.Parallelism); the choices are identical to the serial
// evaluation.
func (e *TPCHExperiment) Decide(c float64) map[string]dict.Format {
	mgr := core.NewManager(core.Options{DesiredFreeBytes: 1 << 30, Costs: e.costs})
	mgr.SetC(c)
	stats := make([]core.ColumnStats, len(e.traced))
	for i, tc := range e.traced {
		stats[i] = e.statsOf(tc)
	}
	decisions := mgr.ChooseFormats(stats, e.Cfg.Parallelism)
	out := make(map[string]dict.Format, len(e.traced))
	for i, tc := range e.traced {
		out[tc.col.Name()] = decisions[i].Format
	}
	return out
}

// ApplyDecisions rebuilds each column in its decided format.
func (e *TPCHExperiment) ApplyDecisions(decisions map[string]dict.Format) {
	for _, tc := range e.traced {
		tc.col.Rebuild(decisions[tc.col.Name()])
	}
}

// measure runs the workload and records the point.
func (e *TPCHExperiment) measure(label string) TPCHPoint {
	runtime := tpch.RunWorkload(e.Store, e.Cfg.MeasureReps)
	return TPCHPoint{Label: label, MemBytes: e.Store.Bytes(), Runtime: runtime}
}

// FixedFormatPoints measures every fixed-format configuration. column bc is
// included even though (as in the paper) it lands outside the plot range on
// TPC-H's variable-length columns.
func (e *TPCHExperiment) FixedFormatPoints() []TPCHPoint {
	var out []TPCHPoint
	for _, f := range dict.AllFormats() {
		tpch.SetAllFormats(e.Store, f)
		out = append(out, e.measure(f.String()))
	}
	return out
}

// WorkloadDrivenPoints measures the manager-driven configuration for every
// c in the sweep.
func (e *TPCHExperiment) WorkloadDrivenPoints() []TPCHPoint {
	var out []TPCHPoint
	for _, c := range e.Cfg.CValues {
		e.ApplyDecisions(e.Decide(c))
		out = append(out, e.measure(fmt.Sprintf("c=%.4g", c)))
	}
	return out
}

// normalize fills RelMem/RelTime against the named baseline point.
func normalize(points []TPCHPoint, baseline TPCHPoint) {
	for i := range points {
		points[i].RelMem = float64(points[i].MemBytes) / float64(baseline.MemBytes)
		points[i].RelTime = float64(points[i].Runtime) / float64(baseline.Runtime)
	}
}

// Figure10 measures fixed-format and workload-driven configurations and
// prints the space/time trade-off, normalized against fc inline as in the
// paper. It returns the two point sets for further analysis.
func Figure10(w io.Writer, e *TPCHExperiment) (fixed, driven []TPCHPoint) {
	fixed = e.FixedFormatPoints()
	driven = e.WorkloadDrivenPoints()

	var baseline TPCHPoint
	for _, p := range fixed {
		if p.Label == dict.FCInline.String() {
			baseline = p
		}
	}
	normalize(fixed, baseline)
	normalize(driven, baseline)

	fmt.Fprintf(w, "Figure 10: space/time trade-off on TPC-H (SF %g, normalized to fc inline)\n",
		e.Cfg.ScaleFactor)
	fmt.Fprintf(w, "%-18s %12s %12s %14s %12s\n", "configuration", "rel runtime", "rel memory", "runtime", "memory MiB")
	for _, p := range fixed {
		fmt.Fprintf(w, "%-18s %12.3f %12.3f %14v %12.2f\n",
			p.Label, p.RelTime, p.RelMem, p.Runtime.Round(time.Millisecond), float64(p.MemBytes)/(1<<20))
	}
	fmt.Fprintln(w, "workload-driven configurations:")
	for _, p := range driven {
		fmt.Fprintf(w, "%-18s %12.3f %12.3f %14v %12.2f\n",
			p.Label, p.RelTime, p.RelMem, p.Runtime.Round(time.Millisecond), float64(p.MemBytes)/(1<<20))
	}

	printHeadline(w, fixed, driven)
	return fixed, driven
}

// printHeadline reproduces the Section 6.2 headline comparison against the
// most balanced fixed format, fc block: the driven configuration that
// matches its speed should need markedly less memory, and the one matching
// its size should be faster.
func printHeadline(w io.Writer, fixed, driven []TPCHPoint) {
	var fcBlock TPCHPoint
	for _, p := range fixed {
		if p.Label == dict.FCBlock.String() {
			fcBlock = p
		}
	}
	if fcBlock.MemBytes == 0 {
		return
	}
	// 5% tolerance absorbs run-to-run noise of the medians.
	sameSpeedMem := math.Inf(1)
	sameSizeTime := math.Inf(1)
	for _, p := range driven {
		if p.RelTime <= fcBlock.RelTime*1.05 && p.RelMem < sameSpeedMem {
			sameSpeedMem = p.RelMem
		}
		if p.RelMem <= fcBlock.RelMem*1.05 && p.RelTime < sameSizeTime {
			sameSizeTime = p.RelTime
		}
	}
	fmt.Fprintf(w, "\nvs fc block (rel time %.3f, rel mem %.3f):\n", fcBlock.RelTime, fcBlock.RelMem)
	if !math.IsInf(sameSpeedMem, 1) {
		fmt.Fprintf(w, "  at equal speed the adaptive config needs %.0f%% of fc block's memory\n",
			100*sameSpeedMem/fcBlock.RelMem)
	}
	if !math.IsInf(sameSizeTime, 1) {
		fmt.Fprintf(w, "  at equal size the adaptive config runs at %.0f%% of fc block's time\n",
			100*sameSizeTime/fcBlock.RelTime)
	}
}

// Figure11 prints the distribution of selected dictionary formats as a
// function of c.
func Figure11(w io.Writer, e *TPCHExperiment) map[float64]map[dict.Format]int {
	fmt.Fprintln(w, "Figure 11: dictionary formats selected by the compression manager per c")
	out := make(map[float64]map[dict.Format]int)
	for _, c := range e.Cfg.CValues {
		decisions := e.Decide(c)
		counts := make(map[dict.Format]int)
		for _, f := range decisions {
			counts[f]++
		}
		out[c] = counts
		fmt.Fprintf(w, "c = %-8.4g\n%s", c, SortedFormatCounts(counts))
	}
	return out
}

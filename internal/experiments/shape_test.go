package experiments

// Shape regression tests: the paper's qualitative claims, asserted against
// the regenerated experiments. These are the reproduction's contract — if a
// code change breaks one of these, the repository no longer reproduces the
// paper.

import (
	"testing"

	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/sysstat"
)

func surveyOn(t *testing.T, corpus string, n int) map[dict.Format]SurveyRow {
	t.Helper()
	strs := datagen.Generate(corpus, n, 1)
	out := make(map[dict.Format]SurveyRow, dict.NumFormats())
	for _, r := range Survey(strs, 4000, 1) {
		out[r.Format] = r
	}
	return out
}

// Figure 3's qualitative structure on src.
func TestShapeFigure3Src(t *testing.T) {
	rows := surveyOn(t, "src", 8000)

	// "Front-Coding variants are smaller ... than their array equivalents
	// with the same string compression scheme."
	pairs := [][2]dict.Format{
		{dict.FCBlock, dict.Array},
		{dict.FCBlockBC, dict.ArrayBC},
		{dict.FCBlockHU, dict.ArrayHU},
		{dict.FCBlockRP12, dict.ArrayRP12},
		{dict.FCBlockRP16, dict.ArrayRP16},
	}
	for _, p := range pairs {
		if rows[p[0]].CompressionRate <= rows[p[1]].CompressionRate {
			t.Errorf("%s (%.2f) not smaller than %s (%.2f)",
				p[0], rows[p[0]].CompressionRate, p[1], rows[p[1]].CompressionRate)
		}
	}

	// "rp 12, rp 16: maximal compression" — the two smallest fc variants.
	for _, f := range []dict.Format{dict.FCBlock, dict.FCBlockBC, dict.FCBlockNG2, dict.FCBlockNG3} {
		if rows[f].CompressionRate >= rows[dict.FCBlockRP12].CompressionRate {
			t.Errorf("%s (%.2f) compresses better than fc block rp 12 (%.2f) on src",
				f, rows[f].CompressionRate, rows[dict.FCBlockRP12].CompressionRate)
		}
	}

	// "array fixed ... factors larger than the data itself" on src
	// (variable-length lines make fixed slots wasteful).
	if rows[dict.ArrayFixed].CompressionRate >= 1 {
		t.Errorf("array fixed compression %.2f on src, expected < 1",
			rows[dict.ArrayFixed].CompressionRate)
	}

	// Uncompressed array is faster than every compressing scheme on arrays.
	for _, f := range []dict.Format{dict.ArrayBC, dict.ArrayHU, dict.ArrayRP12, dict.ArrayRP16} {
		if rows[dict.Array].ExtractNs >= rows[f].ExtractNs {
			t.Errorf("array extract (%.0fns) not faster than %s (%.0fns)",
				rows[dict.Array].ExtractNs, f, rows[f].ExtractNs)
		}
	}

	// "fc block df is just a bit faster but larger than fc block."
	if rows[dict.FCBlockDF].ExtractNs >= rows[dict.FCBlock].ExtractNs {
		t.Errorf("fc block df extract (%.0fns) not faster than fc block (%.0fns)",
			rows[dict.FCBlockDF].ExtractNs, rows[dict.FCBlock].ExtractNs)
	}
	if rows[dict.FCBlockDF].Bytes <= rows[dict.FCBlock].Bytes {
		t.Errorf("fc block df (%d) not larger than fc block (%d)",
			rows[dict.FCBlockDF].Bytes, rows[dict.FCBlock].Bytes)
	}
}

// Figure 4: column bc wins the constant-length structured sets, rp 12 the
// redundant text sets, and both lose to raw storage on random data.
func TestShapeFigure4(t *testing.T) {
	for _, corpus := range []string{"asc", "mat"} {
		rows := surveyOn(t, corpus, 6000)
		best := 0.0
		for _, r := range rows {
			if r.CompressionRate > best {
				best = r.CompressionRate
			}
		}
		if rows[dict.ColumnBC].CompressionRate < best*0.999 {
			t.Errorf("%s: column bc (%.2f) is not the best (%.2f)",
				corpus, rows[dict.ColumnBC].CompressionRate, best)
		}
	}
	for _, corpus := range []string{"src", "url"} {
		rows := surveyOn(t, corpus, 6000)
		best := 0.0
		for _, r := range rows {
			if r.CompressionRate > best {
				best = r.CompressionRate
			}
		}
		if rows[dict.FCBlockRP12].CompressionRate < best*0.999 {
			t.Errorf("%s: fc block rp 12 (%.2f) is not the best (%.2f)",
				corpus, rows[dict.FCBlockRP12].CompressionRate, best)
		}
	}
	rows := surveyOn(t, "rand1", 6000)
	if rows[dict.FCBlockRP12].CompressionRate >= 1 || rows[dict.ColumnBC].CompressionRate >= 1 {
		t.Errorf("rand1: compressors should fall below 1.0 (rp12 %.2f, column bc %.2f)",
			rows[dict.FCBlockRP12].CompressionRate, rows[dict.ColumnBC].CompressionRate)
	}
	// column bc is much worse than raw on variable-length random data.
	rows = surveyOn(t, "rand2", 6000)
	if rows[dict.ColumnBC].CompressionRate >= rows[dict.Array].CompressionRate {
		t.Errorf("rand2: column bc (%.2f) should lose to array (%.2f)",
			rows[dict.ColumnBC].CompressionRate, rows[dict.Array].CompressionRate)
	}
}

// Figure 5: array and array fixed are the fastest extractors everywhere,
// with array fixed clearly ahead on constant-length sets.
func TestShapeFigure5(t *testing.T) {
	for _, corpus := range []string{"asc", "hash", "mat", "engl", "url"} {
		rows := surveyOn(t, corpus, 6000)
		fastest := rows[dict.Array].ExtractNs
		if rows[dict.ArrayFixed].ExtractNs < fastest {
			fastest = rows[dict.ArrayFixed].ExtractNs
		}
		for f, r := range rows {
			if r.ExtractNs < fastest*0.9 {
				t.Errorf("%s: %s (%.0fns) beat both array variants (%.0fns)",
					corpus, f, r.ExtractNs, fastest)
			}
		}
	}
}

// Figures 1-2: the Zipf catalog makes a sliver of columns hold the bulk of
// dictionary memory in all three systems.
func TestShapeFigures1And2(t *testing.T) {
	for _, name := range sysstat.Names() {
		s := sysstat.Generate(name, 1)
		memShare, colShare := s.LargeDictMemoryShare(100_000)
		if memShare < 0.5 {
			t.Errorf("%s: only %.0f%% of memory in large dictionaries", name, memShare*100)
		}
		if colShare > 0.02 {
			t.Errorf("%s: large dictionaries are %.2f%% of columns, expected rare", name, colShare*100)
		}
	}
}

// Section 3.2: hashing's locate is fast but its size loses to the plain
// array — the reason the paper excludes it.
func TestShapeHashBaseline(t *testing.T) {
	strs := datagen.Generate("engl", 8000, 1)
	h, err := dict.BuildHash(strs)
	if err != nil {
		t.Fatal(err)
	}
	a := dict.BuildUnchecked(dict.Array, strs)
	if h.Bytes() <= a.Bytes() {
		t.Errorf("hash (%d bytes) should exceed array (%d bytes)", h.Bytes(), a.Bytes())
	}
}

// Extended survey ([33]): construction time ordering — rp trains a grammar
// and must construct at least an order of magnitude slower per string than
// the raw array; front coding construction stays cheap.
func TestShapeConstructionCosts(t *testing.T) {
	strs := datagen.Generate("src", 8000, 1)
	rows := make(map[dict.Format]FullSurveyRow)
	for _, r := range FullSurvey(strs, 500, 1) {
		rows[r.Format] = r
	}
	if rows[dict.ArrayRP12].ConstructNsPerStr < 5*rows[dict.Array].ConstructNsPerStr {
		t.Errorf("rp 12 construction (%.0fns) suspiciously close to array (%.0fns)",
			rows[dict.ArrayRP12].ConstructNsPerStr, rows[dict.Array].ConstructNsPerStr)
	}
	if rows[dict.FCBlock].ConstructNsPerStr > 10*rows[dict.Array].ConstructNsPerStr {
		t.Errorf("fc block construction (%.0fns) too expensive vs array (%.0fns)",
			rows[dict.FCBlock].ConstructNsPerStr, rows[dict.Array].ConstructNsPerStr)
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"strdict/internal/dict"
)

func TestSurveyCoversAllFormats(t *testing.T) {
	rows := Survey([]string{"aa", "bb", "cc"}, 100, 1)
	if len(rows) != dict.NumFormats() {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Bytes == 0 {
			t.Errorf("%s: zero size", r.Format)
		}
	}
}

func TestFigures1And2Output(t *testing.T) {
	var buf bytes.Buffer
	Figures1And2(&buf, 1)
	out := buf.String()
	for _, want := range []string{"ERP System 1", "ERP System 2", "BW System", "share of memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFigure3Output(t *testing.T) {
	var buf bytes.Buffer
	Figure3(&buf, 2000, 1)
	out := buf.String()
	for _, f := range dict.AllFormats() {
		if !strings.Contains(out, f.String()) {
			t.Errorf("figure 3 missing %s", f)
		}
	}
}

func TestFigures4And5Output(t *testing.T) {
	var buf bytes.Buffer
	Figure4(&buf, 1000, 1)
	Figure5(&buf, 1000, 1)
	out := buf.String()
	for _, ds := range []string{"asc", "engl", "hash", "url", "rand1"} {
		if strings.Count(out, ds) < 2 {
			t.Errorf("data set %s missing from figures 4/5", ds)
		}
	}
}

func TestFigure6ErrorsDecreaseWithSampleSize(t *testing.T) {
	full := PredictionErrors(3000, 1.0, 1)
	if len(full) != len(dict.AllFormats())*9 {
		t.Fatalf("%d errors", len(full))
	}
	var worstFull float64
	for _, e := range full {
		if e > worstFull {
			worstFull = e
		}
	}
	if worstFull > 0.25 {
		t.Errorf("100%% sampling worst error %.2f", worstFull)
	}
}

func TestFigure9Output(t *testing.T) {
	var buf bytes.Buffer
	Figure9(&buf, 2000, 1, 0.5)
	out := buf.String()
	for _, strat := range []string{"const", "rel", "tilt"} {
		if !strings.Contains(out, "selected by "+strat) {
			t.Errorf("figure 9 missing strategy %s", strat)
		}
	}
}

func TestLogRange(t *testing.T) {
	r := LogRange(1e-3, 10, 9)
	if len(r) != 9 || r[0] != 1e-3 {
		t.Fatalf("range %v", r)
	}
	if r[8] < 9.999 || r[8] > 10.001 {
		t.Fatalf("last %g", r[8])
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatal("not increasing")
		}
	}
}

func TestTPCHExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H experiment")
	}
	var buf bytes.Buffer
	e := NewTPCHExperiment(TPCHConfig{
		ScaleFactor: 0.005,
		Seed:        3,
		TraceReps:   1,
		MeasureReps: 1,
		CValues:     []float64{1e-3, 0.1, 10},
		SampleRatio: 1.0,
	})
	fixed, driven := Figure10(&buf, e)
	if len(fixed) != dict.NumFormats() || len(driven) != 3 {
		t.Fatalf("points: %d fixed, %d driven", len(fixed), len(driven))
	}
	// The c sweep must move memory monotonically-ish: smallest c gives the
	// smallest memory of the sweep.
	if !(driven[0].MemBytes <= driven[2].MemBytes) {
		t.Errorf("c=1e-3 memory %d > c=10 memory %d", driven[0].MemBytes, driven[2].MemBytes)
	}
	dist := Figure11(&buf, e)
	if len(dist) != 3 {
		t.Fatalf("figure 11 covered %d c values", len(dist))
	}
	// At the largest c every column should use a fast format; at the
	// smallest c compressed formats must appear.
	out := buf.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "Figure 11") {
		t.Error("missing figure headers")
	}
}

func TestStrategyComparisonAndWorkloadReport(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H experiment")
	}
	e := NewTPCHExperiment(TPCHConfig{
		ScaleFactor: 0.003,
		Seed:        5,
		TraceReps:   1,
		MeasureReps: 1,
		CValues:     []float64{1},
		SampleRatio: 1.0,
	})
	var buf bytes.Buffer
	points := StrategyComparison(&buf, e, 0.5)
	if len(points) != 3 {
		t.Fatalf("%d strategy points", len(points))
	}
	out := buf.String()
	for _, strat := range []string{"const", "rel", "tilt"} {
		if !strings.Contains(out, strat) {
			t.Errorf("missing strategy %s", strat)
		}
	}
	buf.Reset()
	TraceAndReport(&buf, e)
	if !strings.Contains(buf.String(), "l_orderkey") {
		t.Error("workload report missing the hottest column")
	}
}

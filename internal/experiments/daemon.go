package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"strdict/internal/colstore"
	"strdict/internal/core"
	"strdict/internal/dict"
	"strdict/internal/tpch"
)

// DaemonReport runs the online counterpart of Figure 10's offline protocol:
// a TPC-H refresh stream ingests new orders and lineitems while the
// background merge daemon folds deltas into the read-optimized main parts on
// its own timer, consulting the compression manager for the dictionary
// format at every merge. The query workload runs concurrently with the
// merges — no cooperative Tick call appears anywhere, and readers never
// block on a merge thanks to the versioned read path. The report shows
// per-round ingest and query times and the adaptive configuration the
// manager converged on.
func DaemonReport(w io.Writer, cfg TPCHConfig, rounds int) {
	cfg.FillDefaults()
	if rounds <= 0 {
		rounds = 3
	}
	s := tpch.Load(tpch.Config{
		ScaleFactor:   cfg.ScaleFactor,
		Seed:          cfg.Seed,
		InitialFormat: dict.FCInline,
	})
	mgr := core.NewManager(core.Options{DesiredFreeBytes: 1 << 30})
	mgr.SetC(0.5)

	sched := colstore.NewMergeScheduler(s, 10_000)
	sched.Interval = 2 * time.Millisecond
	sched.HighWaterMark = 200_000
	sched.Parallelism = cfg.Parallelism
	sched.PartialMerges = cfg.PartialMerges
	sched.AdaptiveInterval = cfg.PartialMerges
	sched.Chooser = func(snap *colstore.Snapshot, lifetimeNs float64) dict.Format {
		return mgr.ChooseFormat(tpch.SnapshotStatsOf(snap, lifetimeNs, cfg.SampleRatio, cfg.Seed)).Format
	}
	sched.Start(context.Background())

	mode := "full merges only"
	if cfg.PartialMerges {
		mode = "partial folds on hot columns"
	}
	fmt.Fprintf(w, "Background merge daemon on a TPC-H refresh stream (SF %g, %s)\n", cfg.ScaleFactor, mode)
	fmt.Fprintf(w, "%-6s %12s %14s %14s\n", "round", "rows added", "ingest", "queries")
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		added := tpch.RefreshInsert(s, cfg.Seed+int64(r), 0.1)
		ingest := time.Since(t0)
		t0 = time.Now()
		tpch.RunAll(s)
		queries := time.Since(t0)
		fmt.Fprintf(w, "%-6d %12d %14v %14v\n",
			r+1, added, ingest.Round(time.Microsecond), queries.Round(time.Millisecond))
	}
	if err := sched.Close(); err != nil {
		fmt.Fprintf(w, "daemon close: %v\n", err)
		return
	}

	var left int
	for _, c := range s.StringColumns() {
		left += c.DeltaRows()
	}
	fmt.Fprintf(w, "after Close: %d delta rows remain across %d string columns\n",
		left, len(s.StringColumns()))
	var full, partial int
	var folded, rewritten uint64
	for _, c := range s.StringColumns() {
		st := sched.ColumnMergeStats(c.Name())
		full += st.Full
		partial += st.Partial
		folded += st.RowsFolded
		rewritten += st.RowsRewritten
	}
	fmt.Fprintf(w, "merges: %d full, %d partial; %d delta rows folded, %d main rows rewritten\n",
		full, partial, folded, rewritten)
	fmt.Fprintln(w, "adaptive configuration chosen at merge time:")
	fmt.Fprint(w, SortedFormatCounts(tpch.FormatDistribution(s)))
}

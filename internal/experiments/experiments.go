// Package experiments regenerates every figure of the paper's evaluation.
// Each Figure function prints the same rows/series the paper plots, so the
// shape of the published result (who wins, by what factor, where crossovers
// fall) can be compared directly; cmd/* and bench_test.go are thin wrappers
// around these functions. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"strdict/internal/core"
	"strdict/internal/datagen"
	"strdict/internal/dict"
	"strdict/internal/model"
	"strdict/internal/stats"
	"strdict/internal/sysstat"
)

// measureExtractNs times random single-tuple extracts on a dictionary.
func measureExtractNs(d dict.Dictionary, ops int, seed int64) float64 {
	if d.Len() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint32, ops)
	for i := range ids {
		ids[i] = uint32(rng.Intn(d.Len()))
	}
	var buf []byte
	start := time.Now()
	for _, id := range ids {
		buf = d.AppendExtract(buf[:0], id)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// SurveyRow is one dictionary variant's measured position on a data set.
type SurveyRow struct {
	Format          dict.Format
	CompressionRate float64
	ExtractNs       float64
	Bytes           uint64
}

// Survey builds every format on the corpus and measures compression rate
// (Definition 2) and random-extract runtime.
func Survey(strs []string, extractOps int, seed int64) []SurveyRow {
	rows := make([]SurveyRow, 0, dict.NumFormats())
	for _, f := range dict.AllFormats() {
		d := dict.BuildUnchecked(f, strs)
		rows = append(rows, SurveyRow{
			Format:          f,
			CompressionRate: dict.CompressionRate(d, strs),
			ExtractNs:       measureExtractNs(d, extractOps, seed),
			Bytes:           d.Bytes(),
		})
	}
	return rows
}

// Figures1And2 prints the dictionary-size and memory-consumption
// distributions of the three synthetic system catalogs.
func Figures1And2(w io.Writer, seed int64) {
	fmt.Fprintln(w, "Figure 1+2: distribution of dictionary sizes and memory consumption")
	fmt.Fprintln(w, "(share of columns / share of dictionary memory per size decade)")
	for _, name := range sysstat.Names() {
		s := sysstat.Generate(name, seed)
		cols, mem := s.DecadeShares()
		fmt.Fprintf(w, "\n%s (%d string columns, %.0f%% of all columns are strings)\n",
			name, len(s.Columns), s.StringShare*100)
		fmt.Fprintf(w, "  %-22s %-16s %s\n", "distinct values", "share of columns", "share of memory")
		for d := range cols {
			fmt.Fprintf(w, "  10^%d..10^%d %11s %15s %15s\n", d, d+1, "",
				fmt.Sprintf("%.3f%%", cols[d]*100), fmt.Sprintf("%.1f%%", mem[d]*100))
		}
		memShare, colShare := s.LargeDictMemoryShare(100_000)
		fmt.Fprintf(w, "  dictionaries > 1e5 entries: %.2f%% of columns hold %.0f%% of memory\n",
			colShare*100, memShare*100)
	}
}

// Figure3 prints the compression-rate / extract-runtime trade-off of every
// registered variant on the src data set.
func Figure3(w io.Writer, n int, seed int64) {
	strs := datagen.Generate("src", n, seed)
	fmt.Fprintf(w, "Figure 3: trade-off on the src data set (%d strings)\n", len(strs))
	fmt.Fprintf(w, "%-16s %18s %14s\n", "variant", "compression rate", "extract (us)")
	for _, r := range Survey(strs, 20000, seed) {
		fmt.Fprintf(w, "%-16s %18.2f %14.3f\n", r.Format, r.CompressionRate, r.ExtractNs/1000)
	}
}

// Figure4 prints, per data set, the best compression rate of any variant
// and the rates of the two reference variants fc block rp 12 and column bc.
func Figure4(w io.Writer, n int, seed int64) {
	fmt.Fprintf(w, "Figure 4: compression rate of the smallest dictionary implementations\n")
	fmt.Fprintf(w, "%-8s %8s %-16s %14s %10s\n", "data set", "best", "(variant)", "fc block rp 12", "column bc")
	for _, name := range datagen.Names() {
		strs := datagen.Generate(name, n, seed)
		rows := Survey(strs, 2000, seed)
		best, bestF := 0.0, dict.Array
		var rp12, colbc float64
		for _, r := range rows {
			if r.CompressionRate > best {
				best, bestF = r.CompressionRate, r.Format
			}
			switch r.Format {
			case dict.FCBlockRP12:
				rp12 = r.CompressionRate
			case dict.ColumnBC:
				colbc = r.CompressionRate
			}
		}
		fmt.Fprintf(w, "%-8s %8.2f %-16s %14.2f %10.2f\n", name, best, bestF.String(), rp12, colbc)
	}
}

// Figure5 prints, per data set, the fastest extract runtime of any variant
// and the runtimes of array and array fixed.
func Figure5(w io.Writer, n int, seed int64) {
	fmt.Fprintf(w, "Figure 5: extract runtime of the fastest dictionary implementations (us/op)\n")
	fmt.Fprintf(w, "%-8s %8s %-16s %8s %12s\n", "data set", "best", "(variant)", "array", "array fixed")
	for _, name := range datagen.Names() {
		strs := datagen.Generate(name, n, seed)
		rows := Survey(strs, 20000, seed)
		best, bestF := 0.0, dict.Array
		var arr, arrFixed float64
		for _, r := range rows {
			if best == 0 || r.ExtractNs < best {
				best, bestF = r.ExtractNs, r.Format
			}
			switch r.Format {
			case dict.Array:
				arr = r.ExtractNs
			case dict.ArrayFixed:
				arrFixed = r.ExtractNs
			}
		}
		fmt.Fprintf(w, "%-8s %8.3f %-16s %8.3f %12.3f\n",
			name, best/1000, bestF.String(), arr/1000, arrFixed/1000)
	}
}

// PredictionErrors computes the relative size-prediction error of every
// (variant, data set) pair for one sampling configuration.
// ratio < 0 selects the paper's production setting max(1%, 5000 strings).
func PredictionErrors(n int, ratio float64, seed int64) []float64 {
	var errs []float64
	for _, name := range datagen.Names() {
		strs := datagen.Generate(name, n, seed)
		r := ratio
		if r < 0 {
			r = 0.01 // TakeSample applies the 5000-string floor itself
		}
		s := model.TakeSample(strs, r, seed)
		for _, f := range dict.AllFormats() {
			real := dict.BuildUnchecked(f, strs).Bytes()
			pred := model.EstimateSize(f, s)
			e := float64(pred) - float64(real)
			if e < 0 {
				e = -e
			}
			errs = append(errs, e/float64(real))
		}
	}
	return errs
}

// Figure6 prints box-plot statistics of the prediction error for the
// paper's four sampling configurations.
func Figure6(w io.Writer, n int, seed int64) {
	fmt.Fprintf(w, "Figure 6: prediction error of the compression models (%d strings/corpus)\n", n)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s %9s\n",
		"sampling ratio", "loWhisk", "q1", "median", "q3", "hiWhisk", "outliers")
	configs := []struct {
		label string
		ratio float64
	}{
		{"100%", 1.0},
		{"10%", 0.10},
		{"1%", 0.01},
		{"max(1%, 5000)", -1},
	}
	for _, cfg := range configs {
		// The fixed-ratio rows bypass the 5000-string sampling floor (the
		// bare 1% row reproduces the paper's extreme outliers on small
		// dictionaries); only the production setting applies it.
		var errs []float64
		if cfg.ratio > 0 && cfg.ratio < 1 {
			errs = predictionErrorsNoFloor(n, cfg.ratio, seed)
		} else {
			errs = PredictionErrors(n, cfg.ratio, seed)
		}
		bp := stats.Summarize(errs)
		fmt.Fprintf(w, "%-16s %8.4f %8.4f %8.4f %8.4f %8.4f %9d\n",
			cfg.label, bp.LowWhisker, bp.Q1, bp.Median, bp.Q3, bp.HighWhisker, len(bp.Outliers))
	}
}

// predictionErrorsNoFloor forces an exact ratio sample (no 5000 floor) by
// subsampling indices directly, to reproduce the paper's observation that a
// bare 1% sample goes wrong on small dictionaries.
func predictionErrorsNoFloor(n int, ratio float64, seed int64) []float64 {
	var errs []float64
	rng := rand.New(rand.NewSource(seed))
	for _, name := range datagen.Names() {
		strs := datagen.Generate(name, n, seed)
		k := int(ratio * float64(len(strs)))
		if k < 2 {
			k = 2
		}
		sub := make([]string, 0, k)
		for i := 0; i < len(strs) && len(sub) < k; i++ {
			remaining := len(strs) - i
			needed := k - len(sub)
			if rng.Intn(remaining) < needed {
				sub = append(sub, strs[i])
			}
		}
		// Build a Sample whose exact totals are the real ones but whose
		// sampled strings/blocks come from the small subset.
		s := model.TakeSample(sub, 1.0, seed)
		s.N = len(strs)
		s.RawChars = dict.RawBytes(strs)
		for _, f := range dict.AllFormats() {
			real := dict.BuildUnchecked(f, strs).Bytes()
			pred := model.EstimateSize(f, s)
			e := float64(pred) - float64(real)
			if e < 0 {
				e = -e
			}
			errs = append(errs, e/float64(real))
		}
	}
	return errs
}

// Figure9 prints a possible dictionary performance distribution on the src
// data set with chosen access frequencies, plus the variant each strategy
// selects at a given c — the illustration of Section 5.4.
func Figure9(w io.Writer, n int, seed int64, c float64) {
	strs := datagen.Generate("src", n, seed)
	st := core.ColumnStats{
		Name:              "src",
		NumStrings:        uint64(len(strs)),
		Extracts:          2_000_000,
		Locates:           20_000,
		LifetimeNs:        float64(60 * time.Second),
		ColumnVectorBytes: 0,
		Sample:            model.TakeSample(strs, 1.0, seed),
	}
	cands := core.Candidates(st, model.DefaultCostTable())
	fmt.Fprintf(w, "Figure 9: dictionary performance distribution (src, c=%g)\n", c)
	fmt.Fprintf(w, "%-16s %12s %14s\n", "variant", "size (KiB)", "rel_time")
	for _, cand := range cands {
		fmt.Fprintf(w, "%-16s %12.1f %14.6f\n",
			cand.Format, float64(cand.SizeBytes)/1024, cand.RelTime)
	}
	for _, strat := range []core.Strategy{core.StrategyConst, core.StrategyRel, core.StrategyTilt} {
		sel := core.Select(strat, c, cands)
		fmt.Fprintf(w, "selected by %-5s: %s\n", strat, sel.Format)
	}
}

// SortedFormatCounts renders a format histogram deterministically.
func SortedFormatCounts(counts map[dict.Format]int) string {
	type fc struct {
		f dict.Format
		n int
	}
	var list []fc
	for f, n := range counts {
		list = append(list, fc{f, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].f < list[j].f })
	out := ""
	for _, e := range list {
		out += fmt.Sprintf("  %-16s %d\n", e.f, e.n)
	}
	return out
}

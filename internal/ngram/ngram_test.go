package ngram

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip2gram(t *testing.T) {
	parts := [][]byte{
		[]byte("the theme of the thesis"),
		[]byte("there and then"),
		nil,
	}
	c := Train(2, parts)
	for _, p := range parts {
		enc := c.Encode(nil, p)
		if dec := c.Decode(nil, enc); !bytes.Equal(dec, p) {
			t.Errorf("round trip %q -> %q", p, dec)
		}
	}
}

func TestRoundTrip3gram(t *testing.T) {
	parts := [][]byte{[]byte("abcabcabcabc"), []byte("xyzxyz")}
	c := Train(3, parts)
	for _, p := range parts {
		enc := c.Encode(nil, p)
		if dec := c.Decode(nil, enc); !bytes.Equal(dec, p) {
			t.Errorf("round trip %q -> %q", p, dec)
		}
	}
}

func TestCoveredTextCompresses(t *testing.T) {
	// Text of a tiny gram vocabulary: every 2-gram gets a proper code, so the
	// encoding uses 12 bits per 2 chars = 0.75 bytes/char.
	text := []byte(strings.Repeat("abab", 500))
	c := Train(2, [][]byte{text})
	enc := c.Encode(nil, text)
	want := (len(text)/2 + 1) * 12 / 8 // codes + EOS, bytes (rounded down ok)
	if len(enc) > want+2 {
		t.Fatalf("encoded %d bytes, want about %d", len(enc), want)
	}
}

func TestUncoveredTextExpands(t *testing.T) {
	// Random text over the full byte alphabet: with a corpus much larger than
	// the 3839-gram budget, the proper codes cover only a small share of the
	// positions, so most codes are 12-bit backups for single chars ->
	// negative compression, as the paper reports for the rand data sets.
	rng := rand.New(rand.NewSource(4))
	train := make([]byte, 1<<18)
	rng.Read(train)
	c := Train(2, [][]byte{train})
	text := make([]byte, 4096)
	rng.Read(text)
	enc := c.Encode(nil, text)
	if len(enc) <= len(text) {
		t.Fatalf("expected expansion on random text: %d <= %d", len(enc), len(text))
	}
}

func TestGramCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	text := make([]byte, 1<<16)
	rng.Read(text)
	c := Train(2, [][]byte{text})
	if c.GramCount() > MaxGrams {
		t.Fatalf("gram count %d exceeds cap %d", c.GramCount(), MaxGrams)
	}
}

func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	train := make([]byte, 8192)
	rng.Read(train)
	c := Train(3, [][]byte{train})
	f := func(s []byte) bool {
		return bytes.Equal(c.Decode(nil, c.Encode(nil, s)), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicTraining(t *testing.T) {
	parts := [][]byte{[]byte("banana bandana cabana")}
	a, b := Train(2, parts), Train(2, parts)
	if a.GramCount() != b.GramCount() {
		t.Fatal("training is not deterministic")
	}
	for i := range a.grams {
		if a.grams[i] != b.grams[i] {
			t.Fatalf("gram order differs at %d: %q vs %q", i, a.grams[i], b.grams[i])
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	text := []byte("http://example.com/catalog/items?id=12345&sort=asc")
	c := Train(2, [][]byte{text})
	enc := c.Encode(nil, text)
	buf := make([]byte, 0, len(text))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(buf[:0], enc)
	}
}

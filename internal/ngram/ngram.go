// Package ngram implements the fixed-length 12-bit n-gram compression scheme
// of the paper (`ng2` for 2-grams, `ng3` for 3-grams).
//
// The 2^12 code space is split into 256 single-character backup codes, one
// end-of-string code, and the 3839 most frequent n-grams of the training
// corpus. Encoding scans left to right and emits an n-gram code when the
// next n characters form a frequent gram, otherwise a backup code for one
// character. The scheme does not preserve order (a frequent gram can start
// below a character that follows it in a competing string), so locate falls
// back to extraction-based search.
package ngram

import (
	"fmt"
	"sort"

	"strdict/internal/bits"
)

// CodeBits is the fixed code width.
const CodeBits = 12

// eosCode terminates every encoded string. Codes 0-255 are character backup
// codes; gram codes start at 257.
const eosCode = 256

// MaxGrams is the number of n-gram codes available (2^12 - 256 backup - EOS).
const MaxGrams = (1 << CodeBits) - 257

// Codec holds a trained n-gram table.
type Codec struct {
	n      int
	gramOf map[string]uint16 // gram -> code (>= 257)
	grams  []string          // grams[code-257] = gram
}

// Train builds a codec collecting the most frequent n-grams (overlapping
// occurrences) of the corpus parts.
func Train(n int, parts [][]byte) *Codec {
	if n < 2 {
		panic("ngram: n must be at least 2")
	}
	counts := make(map[string]uint64)
	for _, p := range parts {
		for i := 0; i+n <= len(p); i++ {
			counts[string(p[i:i+n])]++
		}
	}
	type gc struct {
		g string
		c uint64
	}
	all := make([]gc, 0, len(counts))
	for g, c := range counts {
		all = append(all, gc{g, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].g < all[j].g // deterministic
	})
	if len(all) > MaxGrams {
		all = all[:MaxGrams]
	}
	c := &Codec{n: n, gramOf: make(map[string]uint16, len(all))}
	for _, e := range all {
		c.grams = append(c.grams, e.g)
		c.gramOf[e.g] = uint16(len(c.grams) - 1 + 257)
	}
	return c
}

// N returns the gram length.
func (c *Codec) N() int { return c.n }

// GramCount returns how many grams hold proper codes.
func (c *Codec) GramCount() int { return len(c.grams) }

// Encode appends the byte-aligned encoded form of src (EOS-terminated) to dst.
func (c *Codec) Encode(dst []byte, src []byte) []byte {
	var w bits.Writer
	c.EncodeTo(&w, src)
	w.Align()
	return append(dst, w.Bytes()...)
}

// EncodeTo writes the unaligned code sequence for src followed by EOS.
func (c *Codec) EncodeTo(w *bits.Writer, src []byte) {
	for i := 0; i < len(src); {
		if i+c.n <= len(src) {
			if code, ok := c.gramOf[string(src[i:i+c.n])]; ok {
				w.WriteBits(uint64(code), CodeBits)
				i += c.n
				continue
			}
		}
		w.WriteBits(uint64(src[i]), CodeBits)
		i++
	}
	w.WriteBits(eosCode, CodeBits)
}

// Decode appends the decoded string to dst, reading codes until EOS.
func (c *Codec) Decode(dst []byte, enc []byte) []byte {
	return c.DecodeFrom(dst, bits.NewReader(enc))
}

// DecodeFrom decodes one EOS-terminated string from r, appending to dst.
func (c *Codec) DecodeFrom(dst []byte, r *bits.Reader) []byte {
	for {
		code := r.ReadBits(CodeBits)
		switch {
		case code < 256:
			dst = append(dst, byte(code))
		case code == eosCode, int(code-257) >= len(c.grams):
			// EOS, or a gram code beyond the table (corrupt stream):
			// terminate defensively.
			return dst
		default:
			dst = append(dst, c.grams[code-257]...)
		}
	}
}

// TableBytes reports the in-memory footprint of the codec's tables: the gram
// strings plus per-gram bookkeeping (string header + hash entry).
func (c *Codec) TableBytes() uint64 {
	var b uint64
	for _, g := range c.grams {
		b += uint64(len(g)) + 16 + 8 // payload + string header + map slot
	}
	return b + 8
}

// Name identifies the scheme.
func (c *Codec) Name() string {
	if c.n == 2 {
		return "ng2"
	}
	if c.n == 3 {
		return "ng3"
	}
	return "ng"
}

// HasGram reports whether g holds a proper 12-bit code.
func (c *Codec) HasGram(g string) bool {
	_, ok := c.gramOf[g]
	return ok
}

// Grams returns the gram table in code order, the codec's serialized form.
func (c *Codec) Grams() []string {
	return append([]string(nil), c.grams...)
}

// FromGrams rebuilds a codec from a serialized gram table.
func FromGrams(n int, grams []string) (*Codec, error) {
	if n < 2 {
		return nil, fmt.Errorf("ngram: n must be at least 2")
	}
	if len(grams) > MaxGrams {
		return nil, fmt.Errorf("ngram: %d grams exceed the %d-code budget", len(grams), MaxGrams)
	}
	c := &Codec{n: n, gramOf: make(map[string]uint16, len(grams))}
	for _, g := range grams {
		if len(g) != n {
			return nil, fmt.Errorf("ngram: gram %q has length %d, want %d", g, len(g), n)
		}
		if _, dup := c.gramOf[g]; dup {
			return nil, fmt.Errorf("ngram: duplicate gram %q", g)
		}
		c.grams = append(c.grams, g)
		c.gramOf[g] = uint16(len(c.grams) - 1 + 257)
	}
	return c, nil
}

package colstore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strdict/internal/dict"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkNoGoroutineLeak fails the test if the goroutine count does not
// return to (at most) the recorded baseline — the stdlib equivalent of a
// goleak assertion. Polls because exiting goroutines unwind asynchronously.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestDaemonMergesOnTimer drives the daemon with an injectable ticker and an
// injectable clock: each injected tick must trigger a merge pass over due
// columns with no Tick call from the ingest path, interval bookkeeping must
// use the injected clock, and Close must not leak the daemon goroutine.
func TestDaemonMergesOnTimer(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := NewStore()
	tb := s.AddTable("t")
	c := tb.AddString("c", dict.Array)

	m := NewMergeScheduler(s, 10)
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }
	ticks := make(chan time.Time)
	m.newTicker = func(d time.Duration) (<-chan time.Time, func()) {
		if d != 42*time.Millisecond {
			t.Errorf("daemon used interval %v, want 42ms", d)
		}
		return ticks, func() {}
	}
	m.Interval = 42 * time.Millisecond

	for i := 0; i < 25; i++ {
		c.Append(fmt.Sprintf("v%04d", i))
	}
	m.Start(context.Background())
	m.Start(context.Background()) // idempotent: second Start is a no-op

	if c.DeltaRows() != 25 {
		t.Fatalf("merged before any tick: %d delta rows", c.DeltaRows())
	}
	ticks <- clock
	waitFor(t, "first timer merge", func() bool { return c.DeltaRows() == 0 })

	// Second round: the injected clock advances 7s between merges, which
	// must land in the lifetime bookkeeping.
	clock = clock.Add(7 * time.Second)
	for i := 0; i < 25; i++ {
		c.Append(fmt.Sprintf("w%04d", i))
	}
	ticks <- clock
	waitFor(t, "second timer merge", func() bool { return c.DeltaRows() == 0 })
	if lt := m.LifetimeNs("t.c", -1); lt != float64(7*time.Second) {
		t.Fatalf("lifetime %g, want 7s", lt)
	}

	// Shutdown: rows below the threshold are drained by Close's Flush.
	c.Append("leftover")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if c.DeltaRows() != 0 {
		t.Fatalf("Close did not drain: %d delta rows", c.DeltaRows())
	}
	if got := c.Get(c.Len() - 1); got != "leftover" {
		t.Fatalf("drained row reads %q", got)
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestDaemonCloseWithoutStart: an unstarted scheduler's Close just flushes.
func TestDaemonCloseWithoutStart(t *testing.T) {
	s := NewStore()
	c := s.AddTable("t").AddString("c", dict.Array)
	c.Append("x")
	m := NewMergeScheduler(s, 100)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if c.DeltaRows() != 0 {
		t.Fatal("Close on unstarted scheduler did not flush")
	}
}

// TestDaemonContextCancelStopsGoroutine: cancelling the Start context stops
// the daemon without Close.
func TestDaemonContextCancelStopsGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewStore()
	s.AddTable("t").AddString("c", dict.Array)
	m := NewMergeScheduler(s, 100)
	m.Interval = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	m.Start(ctx)
	cancel()
	checkNoGoroutineLeak(t, baseline)
	// Close after context cancellation is still clean.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBackpressure exercises the high-water mark: with the timer
// effectively disabled, only the backpressure kick path can merge, so a
// writer pushing far past the mark must be throttled into many small sealed
// segments — and must never deadlock or lose a row.
func TestDaemonBackpressure(t *testing.T) {
	const (
		hwm  = 50
		rows = 1000
	)
	s := NewStore()
	col := s.AddTable("t").AddString("c", dict.FCBlock)

	m := NewMergeScheduler(s, 1<<30) // threshold unreachable: kick path only
	m.Interval = time.Hour           // timer effectively disabled
	m.HighWaterMark = hwm
	var merges atomic.Int64
	m.Chooser = func(snap *Snapshot, lifetimeNs float64) dict.Format {
		merges.Add(1)
		return dict.FCBlock
	}
	m.Start(context.Background())

	for i := 0; i < rows; i++ {
		col.Append(fmt.Sprintf("bp-%06d", i))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	if got := col.Len(); got != rows {
		t.Fatalf("Len = %d, want %d", got, rows)
	}
	if col.DeltaRows() != 0 {
		t.Fatalf("delta not drained: %d", col.DeltaRows())
	}
	// A single writer can only run ahead one segment at a time, so the kick
	// path must have merged many times (rows/hwm = 20 segments; allow slack
	// for the final Flush batching the tail).
	if n := merges.Load(); n < 5 {
		t.Fatalf("backpressure produced only %d merges; Append was not throttled", n)
	}
	for i := 0; i < rows; i++ {
		if got, want := col.Get(i), fmt.Sprintf("bp-%06d", i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestDaemonStartCloseStress races Start against Close repeatedly (run
// under -race via scripts/check.sh). The serialized shutdown must never
// leave two daemons running (goroutine leak), and after the final Close no
// backpressure may linger — an append far past the high-water mark must
// complete even though no daemon serves kicks.
func TestDaemonStartCloseStress(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewStore()
	col := s.AddTable("t").AddString("c", dict.Array)

	m := NewMergeScheduler(s, 50)
	m.Interval = time.Millisecond
	m.HighWaterMark = 20

	for round := 0; round < 40; round++ {
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			m.Start(context.Background())
		}()
		go func() {
			defer wg.Done()
			if err := m.Close(); err != nil {
				t.Error(err)
			}
		}()
		go func(round int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				col.Append(fmt.Sprintf("r%03d-%03d", round, i))
			}
		}(round)
		wg.Wait()
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// No daemon is running and Close stripped backpressure: pushing far
	// past the mark must not block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			col.Append(fmt.Sprintf("tail-%03d", i))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("append blocked after final Close: backpressure left installed without a daemon")
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestDaemonAdaptiveInterval drives the adaptive timer with an injected
// clock and ticker: a burst of appends must shrink the period toward the
// fast rung, and a long idle stretch must stretch it toward the slow rung.
func TestDaemonAdaptiveInterval(t *testing.T) {
	s := NewStore()
	col := s.AddTable("t").AddString("c", dict.Array)

	m := NewMergeScheduler(s, 1000)
	// Atomic clock: the test advances it while the daemon may be mid-pass.
	var clock atomic.Int64
	clock.Store(time.Unix(1000, 0).UnixNano())
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	m.now = now
	m.Interval = 800 * time.Millisecond
	m.AdaptiveInterval = true

	ticks := make(chan time.Time)
	intervals := make(chan time.Duration, 64)
	m.newTicker = func(d time.Duration) (<-chan time.Time, func()) {
		intervals <- d
		return ticks, func() {}
	}
	m.Start(context.Background())
	defer m.Close()

	nextInterval := func(what string) time.Duration {
		t.Helper()
		select {
		case d := <-intervals:
			return d
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return 0
		}
	}
	if d := nextInterval("initial ticker"); d != 800*time.Millisecond {
		t.Fatalf("initial interval %v, want 800ms", d)
	}

	// Rate observations are driven synchronously through Tick (which shares
	// tickMu with the daemon) so the injected clock only moves while no pass
	// is in flight; daemon ticks then just trigger the re-arm check.
	m.Tick() // baseline observation at t0
	clock.Add(int64(time.Second))
	for i := 0; i < 10_000; i++ {
		col.Append(fmt.Sprintf("h%05d", i))
	}
	m.Tick() // observes 10k rows/s (and merges the now-due column)
	ticks <- now()
	// Fill time at 10k rows/s with threshold 1000 is 0.1s; half of that is
	// under the fastest rung, so the daemon must re-arm at base/8 = 100ms.
	if d := nextInterval("fast rung"); d != 100*time.Millisecond {
		t.Fatalf("hot interval %v, want 100ms", d)
	}

	// Idle: the EWMA decays toward zero, so the period must climb to the
	// slow rung (8 * base). Each pass may step the ladder at most a few
	// rungs, so allow many idle passes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		clock.Add(int64(time.Second))
		m.Tick()       // synchronous decay observation
		ticks <- now() // daemon re-arm check
		select {
		case d := <-intervals:
			if d == 8*800*time.Millisecond {
				return
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("idle store never reached the slow rung")
		}
	}
}

// TestBackpressureRemovedOnClose: an Append blocked on the high-water mark
// must be released when Close removes backpressure, even if no merge ran.
func TestBackpressureRemovedOnClose(t *testing.T) {
	s := NewStore()
	col := s.AddTable("t").AddString("c", dict.Array)
	// Install backpressure directly with a kick that never merges, modeling
	// a daemon that dies before serving the kick.
	col.setBackpressure(3, func() {})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			col.Append(fmt.Sprintf("v%d", i))
		}
	}()
	// The writer must stall at the mark...
	waitFor(t, "writer to hit the mark", func() bool { return col.Len() == 3 })
	select {
	case <-done:
		t.Fatal("writer ran past the high-water mark")
	case <-time.After(20 * time.Millisecond):
	}
	// ...and resume once backpressure is removed.
	col.setBackpressure(0, nil)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer still blocked after backpressure removal")
	}
	if col.Len() != 10 {
		t.Fatalf("Len = %d, want 10", col.Len())
	}
}

package colstore

import (
	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// Journal receives a store's durability events: schema definition, row
// appends, and main-part publications. The persist subsystem implements it
// with a write-ahead log plus checkpoints; a nil journal (the default)
// keeps the store purely in-memory with zero overhead on the hot paths.
//
// Calling contract:
//
//   - JournalAppend is invoked with the column's append mutex held, so the
//     journal observes one column's appends in exactly row order. The
//     implementation must be O(1)-ish and must never call back into the
//     column (deadlock).
//   - JournalMainPart is invoked after a merge/rebuild publishes a new main
//     part, with the column's merge mutex held: publications arrive in
//     order, one at a time per column. The dictionary and code vector are
//     immutable — the journal may retain or serialize them off-thread.
//   - DDL events (JournalAdd*) follow the package DDL rule: they are not
//     goroutine-safe and complete before concurrent traffic starts.
//   - All other methods must be safe for concurrent use across columns.
type Journal interface {
	JournalAddTable(table string)
	JournalAddString(table, column string, format dict.Format)
	JournalAddInt64(table, column string)
	JournalAddFloat64(table, column string)

	// JournalAppend records one appended row. column is the full column
	// name (table.column), as reported by Name(). For numeric columns these
	// calls double as the journal's dirtiness signal: a checkpoint rewrites
	// a numeric column's part file iff appends arrived since it was last
	// written (the part snapshots the full value slice).
	JournalAppend(column string, value string)
	JournalAppendInt64(column string, value int64)
	JournalAppendFloat64(column string, value float64)

	// JournalMainPart records a newly published read-optimized main part:
	// the dictionary, the compressed code vector and the number of main rows
	// it covers (always codes.Len()). Emitted by Merge, MergePartial and
	// Rebuild after their atomic publish. This is a string column's
	// dirtiness signal: the persist journal rewrites a string column's part
	// file at the next checkpoint iff a publication arrived since the part
	// was last written — delta appends ride in the WAL and do not stale it —
	// so clean columns' parts are re-referenced, not rewritten.
	JournalMainPart(column string, d dict.Dictionary, codes intcomp.Vector, nMain int)
}

// JournalHealth is an optional interface a Journal may implement to expose
// its sticky durability failure. The merge scheduler polls it after each
// merge so journal errors are reported (MergeScheduler.OnError) rather than
// silently swallowed inside the no-error-return Journal contract.
type JournalHealth interface {
	JournalErr() error
}

// JournalErr reports the attached journal's sticky durability failure, or
// nil when no journal is attached or it does not expose health.
func (s *Store) JournalErr() error {
	if h, ok := s.journal.(JournalHealth); ok {
		return h.JournalErr()
	}
	return nil
}

// SetJournal attaches a journal to the store: existing tables and columns
// are wired (and re-announced to the journal as DDL events, which
// implementations deduplicate by name), and tables or columns defined later
// inherit it at creation time. Like all DDL it is not goroutine-safe; call
// it before concurrent traffic starts. A nil journal detaches.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	s.journal = j
	names := make([]string, len(s.names))
	copy(names, s.names)
	s.mu.Unlock()
	for _, name := range names {
		s.Table(name).setJournal(j)
	}
}

// setJournal installs the column's journal under both mutexes, so the
// append path (appendMu) and the merge/rebuild path (mergeMu) each read it
// under the lock they already hold.
func (c *StringColumn) setJournal(j Journal) {
	c.mergeMu.Lock()
	c.appendMu.Lock()
	c.journal = j
	c.appendMu.Unlock()
	c.mergeMu.Unlock()
}

// journalMainPart emits a main-part publication if a journal is attached.
// The caller holds mergeMu (it just published the version).
func (c *StringColumn) journalMainPart(d dict.Dictionary, codes intcomp.Vector, nMain int) {
	if c.journal != nil {
		c.journal.JournalMainPart(c.name, d, codes, nMain)
	}
}

// MainParts returns the published read-optimized main part: the dictionary,
// the compressed code vector, and the number of rows they cover. The parts
// are immutable; this is the store-wide checkpoint path (the per-merge path
// receives the same triple through the Journal).
func (c *StringColumn) MainParts() (dict.Dictionary, intcomp.Vector, int) {
	v := c.version.Load()
	return v.dict, v.codes, v.nMain
}

// RestoreMain installs a recovered main part on a freshly created, empty
// column: the recovery path of the persist subsystem, which then replays
// journaled delta rows on top via Append. codes must index into d (the
// caller validates code bounds against d.Len() after deserialization) and
// the column must not have been appended to yet; violating either is a
// programming error and panics.
func (c *StringColumn) RestoreMain(d dict.Dictionary, codes intcomp.Vector) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	if c.totalRows.Load() != 0 {
		panic("colstore: RestoreMain on a non-empty column")
	}
	c.version.Store(&columnVersion{
		dict:  d,
		codes: codes,
		nMain: codes.Len(),
		zones: zonesOfVector(codes),
	})
	c.totalRows.Store(int64(codes.Len()))
}

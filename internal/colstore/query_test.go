package colstore

import (
	"fmt"
	"strings"
	"testing"

	"strdict/internal/dict"
)

func loadColumn(t *testing.T, format dict.Format, vals []string) *StringColumn {
	t.Helper()
	c := NewStringColumn("t.c", dict.Array)
	for _, v := range vals {
		c.Append(v)
	}
	c.Merge(format)
	return c
}

func TestTranslateCodes(t *testing.T) {
	src := loadColumn(t, dict.Array, []string{"b", "d", "f"})
	dst := loadColumn(t, dict.FCBlock, []string{"a", "b", "c", "d", "e"})
	tr := TranslateCodes(src, dst)
	// src dict: b=0 d=1 f=2; dst dict: a..e -> b=1, d=3, f absent.
	want := []int64{1, 3, -1}
	if len(tr) != len(want) {
		t.Fatalf("len %d", len(tr))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("tr[%d] = %d, want %d", i, tr[i], want[i])
		}
	}
	// Dictionary ops were counted (3 extracts on src, 3 locates on dst).
	if st := src.Stats(); st.Extracts < 3 {
		t.Errorf("src extracts %d", st.Extracts)
	}
	if st := dst.Stats(); st.Locates < 3 {
		t.Errorf("dst locates %d", st.Locates)
	}
}

func TestRowIndexByCode(t *testing.T) {
	c := loadColumn(t, dict.Array, []string{"k3", "k1", "k2"})
	idx := c.RowIndexByCode()
	// dict: k1=0 (row 1), k2=1 (row 2), k3=2 (row 0)
	want := []int32{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx[%d] = %d, want %d", i, idx[i], want[i])
		}
	}
}

func TestRowsByCode(t *testing.T) {
	c := loadColumn(t, dict.Array, []string{"x", "y", "x", "x", "y"})
	groups := c.RowsByCode()
	if len(groups) != 2 {
		t.Fatalf("%d groups", len(groups))
	}
	// x=0: rows 0,2,3; y=1: rows 1,4.
	if fmt.Sprint(groups[0]) != "[0 2 3]" || fmt.Sprint(groups[1]) != "[1 4]" {
		t.Fatalf("groups %v", groups)
	}
}

func TestCodeSet(t *testing.T) {
	c := loadColumn(t, dict.FCInline, []string{"apple pie", "banana split", "apple cake", "cherry"})
	set := c.CodeSet(func(v string) bool { return strings.HasPrefix(v, "apple") })
	if len(set) != 2 {
		t.Fatalf("set %v", set)
	}
	for code := range set {
		if !strings.HasPrefix(c.Extract(code), "apple") {
			t.Fatal("wrong code in set")
		}
	}
	// Predicate ran once per distinct value: 4 extracts.
	if st := c.Stats(); st.Extracts < 4 {
		t.Errorf("extracts %d", st.Extracts)
	}
}

func TestTranslateCodesAcrossFormats(t *testing.T) {
	// Translation is format-independent.
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%04d", i*3)
	}
	for _, f1 := range []dict.Format{dict.Array, dict.ArrayRP12} {
		for _, f2 := range []dict.Format{dict.FCBlock, dict.ColumnBC} {
			src := loadColumn(t, f1, vals[:150])
			dst := loadColumn(t, f2, vals[50:])
			tr := TranslateCodes(src, dst)
			for id := 0; id < src.DictLen(); id++ {
				v := src.Extract(uint32(id))
				if did := tr[id]; did >= 0 {
					if dst.Extract(uint32(did)) != v {
						t.Fatalf("%s->%s: translation mismatch for %q", f1, f2, v)
					}
				} else if wid, found := dst.Locate(v); found {
					t.Fatalf("%s->%s: %q marked absent but found at %d", f1, f2, v, wid)
				}
			}
		}
	}
}

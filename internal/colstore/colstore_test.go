package colstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"strdict/internal/dict"
)

func TestAppendGetRoundTrip(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	vals := []string{"delta", "alpha", "charlie", "alpha", "bravo", "alpha"}
	for _, v := range vals {
		c.Append(v)
	}
	if c.Len() != len(vals) {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestMergePreservesRows(t *testing.T) {
	for _, format := range []dict.Format{dict.Array, dict.FCBlock, dict.ArrayRP12, dict.ColumnBC} {
		c := NewStringColumn("t.c", dict.Array)
		vals := []string{"m", "z", "a", "m", "q", "a", "a"}
		for _, v := range vals {
			c.Append(v)
		}
		c.Merge(format)
		if c.Format() != format {
			t.Fatalf("format %s after merge, want %s", c.Format(), format)
		}
		if c.DictLen() != 4 {
			t.Fatalf("DictLen = %d, want 4", c.DictLen())
		}
		for i, want := range vals {
			if got := c.Get(i); got != want {
				t.Fatalf("%s: Get(%d) = %q, want %q", format, i, got, want)
			}
		}
	}
}

func TestIncrementalMerges(t *testing.T) {
	c := NewStringColumn("t.c", dict.FCBlock)
	rng := rand.New(rand.NewSource(5))
	var all []string
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("val-%04d", rng.Intn(300))
			all = append(all, v)
			c.Append(v)
		}
		c.Merge(dict.FCBlock)
	}
	for i, want := range all {
		if got := c.Get(i); got != want {
			t.Fatalf("after merges: Get(%d) = %q, want %q", i, got, want)
		}
	}
	// Dictionary holds exactly the distinct values.
	distinct := map[string]bool{}
	for _, v := range all {
		distinct[v] = true
	}
	if c.DictLen() != len(distinct) {
		t.Fatalf("DictLen = %d, want %d", c.DictLen(), len(distinct))
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(vals []string, fmtIdx uint8) bool {
		clean := vals[:0]
		for _, v := range vals {
			ok := true
			for i := 0; i < len(v); i++ {
				if v[i] == 0 {
					ok = false
				}
			}
			if ok {
				clean = append(clean, v)
			}
		}
		format := dict.Format(int(fmtIdx) % dict.NumFormats())
		c := NewStringColumn("t.c", dict.Array)
		for _, v := range clean {
			c.Append(v)
		}
		c.Merge(format)
		for i, want := range clean {
			if c.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCodeRangeMatchesStrings(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	var vals []string
	for i := 0; i < 500; i++ {
		vals = append(vals, fmt.Sprintf("k%04d", i*3))
	}
	for _, v := range vals {
		c.Append(v)
	}
	c.Merge(dict.ArrayHU)
	lo, hi := c.CodeRange("k0300", "k0600")
	// Count rows whose code is in range; must equal the string comparison.
	want := 0
	for _, v := range vals {
		if v >= "k0300" && v < "k0600" {
			want++
		}
	}
	got := 0
	for row := 0; row < c.Len(); row++ {
		if code, ok := c.Code(row); ok && code >= lo && code < hi {
			got++
		}
	}
	if got != want {
		t.Fatalf("range scan found %d rows, want %d", got, want)
	}
}

func TestScanEq(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	vals := []string{"x", "y", "x", "z"}
	for _, v := range vals {
		c.Append(v)
	}
	c.Merge(dict.Array)
	c.Append("x") // one delta row
	rows := c.ScanEq("x", nil)
	want := []int{0, 2, 4}
	if len(rows) != len(want) {
		t.Fatalf("rows %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows %v, want %v", rows, want)
		}
	}
	if rows := c.ScanEq("absent", nil); len(rows) != 0 {
		t.Fatalf("found rows for absent value: %v", rows)
	}
}

func TestStatsCounting(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	c.Append("a")
	c.Append("b")
	c.Merge(dict.Array)
	c.ResetStats()

	c.Get(0)       // extract
	c.Get(1)       // extract
	c.Locate("a")  // locate
	c.Extract(0)   // extract
	c.DictValues() // must NOT count

	s := c.Stats()
	if s.Extracts != 3 {
		t.Errorf("extracts = %d, want 3", s.Extracts)
	}
	if s.Locates != 1 {
		t.Errorf("locates = %d, want 1", s.Locates)
	}
	c.ResetStats()
	if s := c.Stats(); s.Extracts != 0 || s.Locates != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestRebuildKeepsIDs(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < 100; i++ {
		c.Append(fmt.Sprintf("w%03d", i%37))
	}
	c.Merge(dict.Array)
	idBefore, _ := c.Locate("w010")
	before := make([]string, c.Len())
	for i := range before {
		before[i] = c.Get(i)
	}
	c.Rebuild(dict.FCBlockRP12)
	idAfter, _ := c.Locate("w010")
	if idBefore != idAfter {
		t.Fatalf("value ID changed across rebuild: %d -> %d", idBefore, idAfter)
	}
	for i := range before {
		if c.Get(i) != before[i] {
			t.Fatalf("row %d changed across rebuild", i)
		}
	}
}

func TestBytesBreakdown(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < 1000; i++ {
		c.Append(fmt.Sprintf("value-%05d", i))
	}
	c.Merge(dict.Array)
	if c.Bytes() != c.DictBytes()+c.VectorBytes() {
		t.Fatalf("Bytes %d != dict %d + vector %d", c.Bytes(), c.DictBytes(), c.VectorBytes())
	}
	if c.VectorBytes() == 0 || c.DictBytes() == 0 {
		t.Fatal("zero component size")
	}
}

func TestTableAndStore(t *testing.T) {
	s := NewStore()
	tb := s.AddTable("orders")
	key := tb.AddString("o_orderkey", dict.Array)
	tb.AddInt64("o_date")
	tb.AddFloat64("o_total")
	for i := 0; i < 10; i++ {
		key.Append(fmt.Sprintf("%010d", i))
		tb.Int("o_date").Append(int64(8000 + i))
		tb.Float("o_total").Append(float64(i) * 1.5)
	}
	tb.MergeAll()
	if tb.Rows() != 10 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if got := s.Table("orders").Str("o_orderkey").Get(3); got != "0000000003" {
		t.Fatalf("Get = %q", got)
	}
	if s.Bytes() == 0 {
		t.Fatal("store bytes zero")
	}
	if len(s.StringColumns()) != 1 {
		t.Fatalf("StringColumns = %d", len(s.StringColumns()))
	}
	s.ResetStats()
	if st := key.Stats(); st.Extracts != 0 {
		t.Fatal("ResetStats on store failed")
	}
}

func TestDictValuesSorted(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for _, v := range []string{"pear", "apple", "fig", "apple"} {
		c.Append(v)
	}
	c.Merge(dict.FCInline)
	vals := c.DictValues()
	if !sort.StringsAreSorted(vals) {
		t.Fatalf("dict values not sorted: %v", vals)
	}
	if len(vals) != 3 {
		t.Fatalf("%d distinct values", len(vals))
	}
}

func TestUnknownColumnPanics(t *testing.T) {
	tb := NewTable("t")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Str("missing")
}

func BenchmarkColumnGet(b *testing.B) {
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < 100000; i++ {
		c.Append(fmt.Sprintf("supplier#%07d", i%5000))
	}
	c.Merge(dict.FCBlock)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendGet(buf[:0], i%100000)
	}
}

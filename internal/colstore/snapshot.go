package colstore

import (
	"sync/atomic"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// Snapshot pins one consistent, immutable view of a StringColumn: the
// published version (dictionary, code vector, zone maps, sealed delta
// segments) plus a frozen prefix of the active delta segment captured at
// snapshot time.
//
// Contract:
//
//   - Consistency: every method observes the same (dict, codes, rows) state;
//     value IDs, row values and Len never change for the snapshot's
//     lifetime, no matter how many appends, merges or rebuilds run
//     concurrently.
//   - Staleness: the view is the column as of the Snapshot call; rows
//     appended and formats chosen afterwards are invisible. Take a fresh
//     snapshot per query.
//   - No copy: a snapshot is a handful of pointers into structures that are
//     immutable (or append-only past the captured length). Taking one is
//     O(1) — a single atomic load when the column has no unsealed rows, a
//     brief mutex acquisition otherwise — and holding one only pins the old
//     version's memory until released to the GC.
//   - Single goroutine: a snapshot is a query handle, not a shared object.
//     Its trace counters and scratch buffers are plain fields precisely so
//     scans stop contending on shared atomic cache lines; goroutines that
//     scan concurrently each take their own snapshot (still O(1)).
//
// Snapshot methods accumulate the dictionary access counters locally and
// flush them to the column on Release; call Release (idempotent) when the
// query is done so traced workloads keep exact counts. A dropped,
// unreleased snapshot only loses its trace counts — never data.
type Snapshot struct {
	col *StringColumn
	v   *columnVersion

	// Frozen prefix of the active segment at snapshot time. The backing
	// arrays are append-only, so capturing length-capped slices pins a
	// consistent prefix while the writer keeps appending.
	tailVals []string
	tailRows []uint32

	// Deferred trace counters, flushed to the column's atomics by Release.
	// Plain fields: the whole point is that a tight scan loop bumps a local
	// word instead of a cache line shared with every other scanning
	// goroutine.
	locates      uint64
	extracts     uint64
	zonesScanned uint64
	zonesSkipped uint64

	// inUse backs the misuse assertion compiled into race builds (see
	// snapshot_guard_race.go): counter-bumping methods CAS it 0->1 on entry
	// and panic when two goroutines overlap inside the same snapshot. Unused
	// in normal builds, where enter/exit compile to nothing.
	inUse atomic.Int32
}

// Snapshot returns a handle pinning the column's current state. A fully
// merged column (no unsealed rows) is snapshot with a single atomic load;
// otherwise the active prefix is captured under the append mutex (O(1)).
func (c *StringColumn) Snapshot() *Snapshot {
	v := c.version.Load()
	if int64(v.rows()) == c.totalRows.Load() {
		// No rows beyond the published version at the time of the load: the
		// version alone is a complete view. (totalRows is monotone and
		// v.rows() <= totalRows always, so equality proves emptiness of the
		// active segment at that instant.)
		return &Snapshot{col: c, v: v}
	}
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	// Reload under the lock: the version/active boundary only moves at seal
	// time, which also holds appendMu, so this pair is consistent.
	v = c.version.Load()
	return &Snapshot{
		col:      c,
		v:        v,
		tailVals: c.activeVals[:len(c.activeVals):len(c.activeVals)],
		tailRows: c.activeRows[:len(c.activeRows):len(c.activeRows)],
	}
}

// Release flushes the snapshot's accumulated trace counters to the column
// and marks the snapshot done. Idempotent; the snapshot's read methods
// remain usable afterwards (counts bumped after a Release flush on the
// next one).
func (s *Snapshot) Release() {
	s.enter()
	defer s.exit()
	if s.locates != 0 {
		s.col.locates.Add(s.locates)
		s.locates = 0
	}
	if s.extracts != 0 {
		s.col.extracts.Add(s.extracts)
		s.extracts = 0
	}
	if s.zonesScanned != 0 {
		s.col.zonesScanned.Add(s.zonesScanned)
		s.zonesScanned = 0
	}
	if s.zonesSkipped != 0 {
		s.col.zonesSkipped.Add(s.zonesSkipped)
		s.zonesSkipped = 0
	}
}

// Name returns the column name.
func (s *Snapshot) Name() string { return s.col.name }

// Len returns the number of rows visible in the snapshot.
func (s *Snapshot) Len() int { return s.v.rows() + len(s.tailRows) }

// MainRows returns the number of rows in the read-optimized main part.
func (s *Snapshot) MainRows() int { return s.v.nMain }

// DeltaRows returns the number of delta rows (sealed + captured active
// prefix) visible in the snapshot.
func (s *Snapshot) DeltaRows() int { return s.v.sealedRows + len(s.tailRows) }

// Format returns the pinned main dictionary's format.
func (s *Snapshot) Format() dict.Format { return s.v.dict.Format() }

// DictLen returns the number of distinct values in the pinned dictionary.
func (s *Snapshot) DictLen() int { return s.v.dict.Len() }

// DictBytes returns the pinned dictionary's memory footprint.
func (s *Snapshot) DictBytes() uint64 { return s.v.dict.Bytes() }

// VectorBytes returns the pinned code vector's memory footprint.
func (s *Snapshot) VectorBytes() uint64 { return s.v.codes.Bytes() }

// DictValues materializes the sorted distinct values of the pinned
// dictionary. Like StringColumn.DictValues it bypasses the access counters.
func (s *Snapshot) DictValues() []string { return dictValuesOf(s.v.dict) }

// Stats returns the column's cumulative access counters. The counters are
// live (they keep advancing as others read the column) and exclude this
// snapshot's not-yet-flushed local counts; Release first for exact totals.
func (s *Snapshot) Stats() AccessStats { return s.col.Stats() }

// Get returns the value at the given row (counted as an extract for main
// rows). No locks are taken.
func (s *Snapshot) Get(row int) string {
	s.enter()
	defer s.exit()
	v := s.v
	if row < v.nMain {
		s.extracts++
		return v.dict.Extract(uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return v.sealedValue(row - v.nMain)
	}
	return s.tailVals[s.tailRows[row-v.rows()]]
}

// AppendGet appends the value at row to dst (allocation-free main-part
// read).
func (s *Snapshot) AppendGet(dst []byte, row int) []byte {
	s.enter()
	defer s.exit()
	v := s.v
	if row < v.nMain {
		s.extracts++
		return v.dict.AppendExtract(dst, uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return append(dst, v.sealedValue(row-v.nMain)...)
	}
	return append(dst, s.tailVals[s.tailRows[row-v.rows()]]...)
}

// Code returns the main-part value ID at a row; rows in the delta return
// ok == false. IDs from one snapshot are mutually consistent for its whole
// lifetime — the cross-call guarantee the live column cannot give.
func (s *Snapshot) Code(row int) (uint32, bool) {
	if row < s.v.nMain {
		return uint32(s.v.codes.Get(row)), true
	}
	return 0, false
}

// AppendCodeRange appends the main-part value IDs of rows
// [start, start+n) to dst — the bulk form of Code for tight scan loops,
// decoding 64-256 codes per kernel call instead of one vector access per
// row. The range must lie within the main part; rows at or past MainRows
// panic (they have no stable code).
func (s *Snapshot) AppendCodeRange(dst []uint64, start, n int) []uint64 {
	if start < 0 || n < 0 || start > s.v.nMain-n {
		panic("colstore: AppendCodeRange outside the main part")
	}
	return s.v.codes.AppendRange(dst, start, n)
}

// Locate returns the value ID of value in the pinned dictionary (counted).
func (s *Snapshot) Locate(value string) (uint32, bool) {
	s.enter()
	defer s.exit()
	s.locates++
	return s.v.dict.Locate(value)
}

// LocateBytes is Locate for a byte-slice probe (counted). It avoids the
// string conversion a Locate call site would pay per probe — the
// dictionary-translation fast path.
func (s *Snapshot) LocateBytes(value []byte) (uint32, bool) {
	s.enter()
	defer s.exit()
	s.locates++
	return dict.LocateBytes(s.v.dict, value)
}

// Extract returns the string for a pinned-dictionary value ID (counted).
func (s *Snapshot) Extract(id uint32) string {
	s.enter()
	defer s.exit()
	s.extracts++
	return s.v.dict.Extract(id)
}

// AppendExtract is the allocation-free variant of Extract (counted).
func (s *Snapshot) AppendExtract(dst []byte, id uint32) []byte {
	s.enter()
	defer s.exit()
	s.extracts++
	return s.v.dict.AppendExtract(dst, id)
}

// ForEachValue visits every (id, value) pair of the pinned dictionary in
// id order until fn returns false. Each visit counts as one extract; value
// is only valid during the call. fn must not call back into this snapshot
// (other snapshots are fine — the dictionary-translation path does exactly
// that).
func (s *Snapshot) ForEachValue(fn func(id uint32, value []byte) bool) {
	s.enter()
	defer s.exit()
	s.v.dict.ForEach(func(id uint32, value []byte) bool {
		s.extracts++
		return fn(id, value)
	})
}

// CodeRange translates a string range [lo, hi) into a value-ID range
// [loID, hiID) against the pinned dictionary. Two locates are counted.
func (s *Snapshot) CodeRange(lo, hi string) (uint32, uint32) {
	s.enter()
	defer s.exit()
	s.locates += 2
	loID, _ := s.v.dict.Locate(lo)
	hiID, _ := s.v.dict.Locate(hi)
	return loID, hiID
}

// ScanEq appends to out the rows whose value equals value: the main part
// via the packed-domain equality kernel (one locate) over the zones whose
// min/max admit the code, sealed segments through their interned indexes,
// and the captured active prefix by direct comparison.
func (s *Snapshot) ScanEq(value string, out []int) []int {
	s.enter()
	defer s.exit()
	v := s.v
	s.locates++
	if id, found := v.dict.Locate(value); found {
		code := uint64(id)
		for _, z := range v.zones {
			if !z.overlapsEq(code) {
				s.zonesSkipped++
				continue
			}
			s.zonesScanned++
			out = intcomp.ScanEq(v.codes, code, z.start, z.n, out)
		}
	}
	return s.scanDeltaEq(value, out)
}

// scanDeltaEq appends the sealed-segment and captured-tail rows equal to
// value — the delta half shared by the kernel scan and the scalar oracle.
func (s *Snapshot) scanDeltaEq(value string, out []int) []int {
	v := s.v
	off := v.nMain
	for _, seg := range v.sealed {
		if dcode, ok := seg.index[value]; ok {
			for i, dc := range seg.rows {
				if dc == dcode {
					out = append(out, off+i)
				}
			}
		}
		off += len(seg.rows)
	}
	for i, dc := range s.tailRows {
		if s.tailVals[dc] == value {
			out = append(out, off+i)
		}
	}
	return out
}

// CountEq returns the number of rows whose value equals value (one
// locate). The main part is counted with the packed-domain popcount kernel
// under zone pruning; no row indices are materialized.
func (s *Snapshot) CountEq(value string) int {
	s.enter()
	defer s.exit()
	v := s.v
	s.locates++
	count := 0
	if id, found := v.dict.Locate(value); found {
		code := uint64(id)
		for _, z := range v.zones {
			if !z.overlapsEq(code) {
				s.zonesSkipped++
				continue
			}
			s.zonesScanned++
			count += intcomp.CountEq(v.codes, code, z.start, z.n)
		}
	}
	for _, seg := range v.sealed {
		if dcode, ok := seg.index[value]; ok {
			for _, dc := range seg.rows {
				if dc == dcode {
					count++
				}
			}
		}
	}
	for _, dc := range s.tailRows {
		if s.tailVals[dc] == value {
			count++
		}
	}
	return count
}

// ScanRange appends to out the rows whose value lies in [lo, hi). Order
// preservation turns the string interval into the code interval
// [loID, hiID) (two locates, Definition 1 insertion points), so the main
// part is a pure code-range kernel scan under zone pruning; sealed
// segments are skipped via their value bounds, the rest of the delta
// compares strings.
func (s *Snapshot) ScanRange(lo, hi string, out []int) []int {
	s.enter()
	defer s.exit()
	v := s.v
	s.locates += 2
	loID, _ := v.dict.Locate(lo)
	hiID, _ := v.dict.Locate(hi)
	if loID < hiID {
		for _, z := range v.zones {
			if !z.overlapsRange(uint64(loID), uint64(hiID)) {
				s.zonesSkipped++
				continue
			}
			s.zonesScanned++
			out = intcomp.ScanRange(v.codes, uint64(loID), uint64(hiID), z.start, z.n, out)
		}
	}
	return s.scanDeltaRange(lo, hi, out)
}

// scanDeltaRange appends the sealed-segment and captured-tail rows with
// lo <= value < hi. Sealed segments whose value bounds exclude the
// interval are skipped whole; the others are evaluated once per distinct
// value, then per row on the tiny per-segment code.
func (s *Snapshot) scanDeltaRange(lo, hi string, out []int) []int {
	v := s.v
	off := v.nMain
	for _, seg := range v.sealed {
		if seg.maxVal < lo || seg.minVal >= hi {
			off += len(seg.rows)
			continue
		}
		match := make([]bool, len(seg.vals))
		any := false
		for i, val := range seg.vals {
			if lo <= val && val < hi {
				match[i] = true
				any = true
			}
		}
		if any {
			for i, dc := range seg.rows {
				if match[dc] {
					out = append(out, off+i)
				}
			}
		}
		off += len(seg.rows)
	}
	for i, dc := range s.tailRows {
		if val := s.tailVals[dc]; lo <= val && val < hi {
			out = append(out, off+i)
		}
	}
	return out
}

// ScanEqScalar is the pre-kernel ScanEq: one Vector.Get interface call per
// main row, no zone pruning. Retained as the differential-testing oracle
// for the vectorized path and as the benchmark baseline it is gated
// against.
func (s *Snapshot) ScanEqScalar(value string, out []int) []int {
	s.enter()
	defer s.exit()
	v := s.v
	s.locates++
	if id, found := v.dict.Locate(value); found {
		for row := 0; row < v.nMain; row++ {
			if uint32(v.codes.Get(row)) == id {
				out = append(out, row)
			}
		}
	}
	return s.scanDeltaEq(value, out)
}

// ScanRangeScalar is the per-element Get oracle for ScanRange.
func (s *Snapshot) ScanRangeScalar(lo, hi string, out []int) []int {
	s.enter()
	defer s.exit()
	v := s.v
	s.locates += 2
	loID, _ := v.dict.Locate(lo)
	hiID, _ := v.dict.Locate(hi)
	if loID < hiID {
		for row := 0; row < v.nMain; row++ {
			if code := uint32(v.codes.Get(row)); loID <= code && code < hiID {
				out = append(out, row)
			}
		}
	}
	return s.scanDeltaRange(lo, hi, out)
}

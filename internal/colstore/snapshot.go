package colstore

import "strdict/internal/dict"

// Snapshot pins one consistent, immutable view of a StringColumn: the
// published version (dictionary, code vector, sealed delta segments) plus a
// frozen prefix of the active delta segment captured at snapshot time.
//
// Contract:
//
//   - Consistency: every method observes the same (dict, codes, rows) state;
//     value IDs, row values and Len never change for the snapshot's
//     lifetime, no matter how many appends, merges or rebuilds run
//     concurrently.
//   - Staleness: the view is the column as of the Snapshot call; rows
//     appended and formats chosen afterwards are invisible. Take a fresh
//     snapshot per query.
//   - No copy: a snapshot is a handful of pointers into structures that are
//     immutable (or append-only past the captured length). Taking one is
//     O(1) — a single atomic load when the column has no unsealed rows, a
//     brief mutex acquisition otherwise — and holding one only pins the old
//     version's memory until released to the GC.
//
// Snapshot methods update the column's access counters (they are atomic
// trace counters, not synchronization), so traced workloads may run on
// snapshots.
type Snapshot struct {
	col *StringColumn
	v   *columnVersion

	// Frozen prefix of the active segment at snapshot time. The backing
	// arrays are append-only, so capturing length-capped slices pins a
	// consistent prefix while the writer keeps appending.
	tailVals []string
	tailRows []uint32
}

// Snapshot returns a handle pinning the column's current state. A fully
// merged column (no unsealed rows) is snapshot with a single atomic load;
// otherwise the active prefix is captured under the append mutex (O(1)).
func (c *StringColumn) Snapshot() *Snapshot {
	v := c.version.Load()
	if int64(v.rows()) == c.totalRows.Load() {
		// No rows beyond the published version at the time of the load: the
		// version alone is a complete view. (totalRows is monotone and
		// v.rows() <= totalRows always, so equality proves emptiness of the
		// active segment at that instant.)
		return &Snapshot{col: c, v: v}
	}
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	// Reload under the lock: the version/active boundary only moves at seal
	// time, which also holds appendMu, so this pair is consistent.
	v = c.version.Load()
	return &Snapshot{
		col:      c,
		v:        v,
		tailVals: c.activeVals[:len(c.activeVals):len(c.activeVals)],
		tailRows: c.activeRows[:len(c.activeRows):len(c.activeRows)],
	}
}

// Name returns the column name.
func (s *Snapshot) Name() string { return s.col.name }

// Len returns the number of rows visible in the snapshot.
func (s *Snapshot) Len() int { return s.v.rows() + len(s.tailRows) }

// MainRows returns the number of rows in the read-optimized main part.
func (s *Snapshot) MainRows() int { return s.v.nMain }

// DeltaRows returns the number of delta rows (sealed + captured active
// prefix) visible in the snapshot.
func (s *Snapshot) DeltaRows() int { return s.v.sealedRows + len(s.tailRows) }

// Format returns the pinned main dictionary's format.
func (s *Snapshot) Format() dict.Format { return s.v.dict.Format() }

// DictLen returns the number of distinct values in the pinned dictionary.
func (s *Snapshot) DictLen() int { return s.v.dict.Len() }

// DictBytes returns the pinned dictionary's memory footprint.
func (s *Snapshot) DictBytes() uint64 { return s.v.dict.Bytes() }

// VectorBytes returns the pinned code vector's memory footprint.
func (s *Snapshot) VectorBytes() uint64 { return s.v.codes.Bytes() }

// DictValues materializes the sorted distinct values of the pinned
// dictionary. Like StringColumn.DictValues it bypasses the access counters.
func (s *Snapshot) DictValues() []string { return dictValuesOf(s.v.dict) }

// Stats returns the column's cumulative access counters. The counters are
// live (they keep advancing as others read the column); they are trace
// data, not part of the pinned structural state.
func (s *Snapshot) Stats() AccessStats { return s.col.Stats() }

// Get returns the value at the given row (counted as an extract for main
// rows). No locks are taken.
func (s *Snapshot) Get(row int) string {
	v := s.v
	if row < v.nMain {
		s.col.extracts.Add(1)
		return v.dict.Extract(uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return v.sealedValue(row - v.nMain)
	}
	return s.tailVals[s.tailRows[row-v.rows()]]
}

// AppendGet appends the value at row to dst (allocation-free main-part
// read).
func (s *Snapshot) AppendGet(dst []byte, row int) []byte {
	v := s.v
	if row < v.nMain {
		s.col.extracts.Add(1)
		return v.dict.AppendExtract(dst, uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return append(dst, v.sealedValue(row-v.nMain)...)
	}
	return append(dst, s.tailVals[s.tailRows[row-v.rows()]]...)
}

// Code returns the main-part value ID at a row; rows in the delta return
// ok == false. IDs from one snapshot are mutually consistent for its whole
// lifetime — the cross-call guarantee the live column cannot give.
func (s *Snapshot) Code(row int) (uint32, bool) {
	if row < s.v.nMain {
		return uint32(s.v.codes.Get(row)), true
	}
	return 0, false
}

// Locate returns the value ID of value in the pinned dictionary (counted).
func (s *Snapshot) Locate(value string) (uint32, bool) {
	s.col.locates.Add(1)
	return s.v.dict.Locate(value)
}

// Extract returns the string for a pinned-dictionary value ID (counted).
func (s *Snapshot) Extract(id uint32) string {
	s.col.extracts.Add(1)
	return s.v.dict.Extract(id)
}

// AppendExtract is the allocation-free variant of Extract (counted).
func (s *Snapshot) AppendExtract(dst []byte, id uint32) []byte {
	s.col.extracts.Add(1)
	return s.v.dict.AppendExtract(dst, id)
}

// CodeRange translates a string range [lo, hi) into a value-ID range
// [loID, hiID) against the pinned dictionary. Two locates are counted.
func (s *Snapshot) CodeRange(lo, hi string) (uint32, uint32) {
	s.col.locates.Add(2)
	loID, _ := s.v.dict.Locate(lo)
	hiID, _ := s.v.dict.Locate(hi)
	return loID, hiID
}

// ScanEq appends to out the rows whose value equals value: the main part by
// code comparison (one locate), sealed segments through their interned
// indexes, and the captured active prefix by direct comparison.
func (s *Snapshot) ScanEq(value string, out []int) []int {
	v := s.v
	s.col.locates.Add(1)
	if id, found := v.dict.Locate(value); found {
		for row := 0; row < v.nMain; row++ {
			if uint32(v.codes.Get(row)) == id {
				out = append(out, row)
			}
		}
	}
	off := v.nMain
	for _, seg := range v.sealed {
		if dcode, ok := seg.index[value]; ok {
			for i, dc := range seg.rows {
				if dc == dcode {
					out = append(out, off+i)
				}
			}
		}
		off += len(seg.rows)
	}
	for i, dc := range s.tailRows {
		if s.tailVals[dc] == value {
			out = append(out, off+i)
		}
	}
	return out
}

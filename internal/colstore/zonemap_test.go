package colstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"strdict/internal/dict"
)

// scanOracle compares every vectorized scan entry point against its scalar
// oracle on one snapshot: same rows, same order, for equality, count and
// range probes.
func scanOracle(t *testing.T, snap *Snapshot, label, probe, lo, hi string) {
	t.Helper()
	wantEq := snap.ScanEqScalar(probe, nil)
	gotEq := snap.ScanEq(probe, nil)
	if fmt.Sprint(gotEq) != fmt.Sprint(wantEq) {
		t.Fatalf("%s: ScanEq(%q) = %v, scalar oracle %v", label, probe, gotEq, wantEq)
	}
	if got, want := snap.CountEq(probe), len(wantEq); got != want {
		t.Fatalf("%s: CountEq(%q) = %d, oracle %d", label, probe, got, want)
	}
	wantRange := snap.ScanRangeScalar(lo, hi, nil)
	gotRange := snap.ScanRange(lo, hi, nil)
	if fmt.Sprint(gotRange) != fmt.Sprint(wantRange) {
		t.Fatalf("%s: ScanRange(%q, %q) = %v, scalar oracle %v", label, lo, hi, gotRange, wantRange)
	}
}

// TestVectorizedScanMatchesScalar runs the kernel scan path against the
// per-row Get oracle on columns that span several zones and all three
// storage classes (main, sealed segment, active tail), across value shapes
// that exercise every vector kind the merge can choose and several
// dictionary formats.
func TestVectorizedScanMatchesScalar(t *testing.T) {
	const rows = 3*zoneRows + 137 // four zones, last one partial
	shapes := []struct {
		name  string
		value func(i int) string
	}{
		// Sorted runs: merge picks RLE, zones have tight disjoint bounds.
		{"clustered", func(i int) string { return fmt.Sprintf("v%05d", i/1024) }},
		// Uniform shuffle: packed vector, every zone spans the full domain.
		{"uniform", func(i int) string { return fmt.Sprintf("v%05d", (i*2654435761)%512) }},
		// Single value: constant column, one-code dictionary.
		{"constant", func(i int) string { return "only" }},
	}
	formats := []dict.Format{dict.Array, dict.ArrayFixed, dict.FCBlock}
	for _, shape := range shapes {
		for _, f := range formats {
			t.Run(shape.name+"/"+f.String(), func(t *testing.T) {
				c := NewStringColumn("t.c", f)
				for i := 0; i < rows; i++ {
					c.Append(shape.value(i))
				}
				c.Merge(f)
				// Delta rows on top: one sealed segment and an active tail,
				// mixing main values with delta-only ones.
				for i := 0; i < 100; i++ {
					c.Append(shape.value(i * 31))
					c.Append(fmt.Sprintf("zz-sealed-%02d", i%7))
				}
				c.sealActive()
				for i := 0; i < 50; i++ {
					c.Append(shape.value(i * 17))
					c.Append(fmt.Sprintf("zz-active-%02d", i%5))
				}

				snap := c.Snapshot()
				defer snap.Release()
				probes := []string{
					shape.value(0), shape.value(rows / 2), shape.value(rows - 1),
					"zz-sealed-03", "zz-active-02", "absent-value", "",
				}
				for _, p := range probes {
					scanOracle(t, snap, shape.name, p, p, p+"\xff")
				}
				// Range probes: empty, narrow, wide, everything.
				scanOracle(t, snap, shape.name, shape.value(7), "x", "a")
				scanOracle(t, snap, shape.name, shape.value(7), shape.value(rows/3), shape.value(rows/2))
				scanOracle(t, snap, shape.name, shape.value(7), "", "\xff")
			})
		}
	}
}

// TestZonePruningSelective: on a clustered column, an equality probe for a
// value confined to one cluster must skip most zones — and still return
// exactly the oracle rows. Verifies the counters flow through Release into
// ScanStats.
func TestZonePruningSelective(t *testing.T) {
	const rows = 4 * zoneRows
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < rows; i++ {
		c.Append(fmt.Sprintf("v%05d", i/512)) // sorted: zone n covers codes [8n, 8n+8)
	}
	c.Merge(dict.Array)
	c.ResetStats()

	snap := c.Snapshot()
	probe := "v00003" // lives in zone 0 only
	got := snap.ScanEq(probe, nil)
	want := snap.ScanEqScalar(probe, nil)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pruned ScanEq = %v, oracle %v", got, want)
	}
	if len(got) != 512 {
		t.Fatalf("ScanEq returned %d rows, want 512", len(got))
	}
	snap.Release()

	st := c.ScanStats()
	if st.ZonesSkipped < 3 {
		t.Fatalf("ZonesSkipped = %d, want >= 3 (selective probe on 4+ zones)", st.ZonesSkipped)
	}
	if st.ZonesScanned == 0 {
		t.Fatal("ZonesScanned = 0, want at least the matching zone")
	}
	// An absent-but-in-range value locates to an insertion point; a miss
	// must not scan anything beyond the zones whose bounds admit it.
	before := c.ScanStats()
	if n := len(c.ScanEq("v99999", nil)); n != 0 {
		t.Fatalf("absent probe matched %d rows", n)
	}
	after := c.ScanStats()
	if after.ZonesScanned != before.ZonesScanned {
		t.Fatalf("absent probe scanned %d zones", after.ZonesScanned-before.ZonesScanned)
	}
}

// TestSnapshotStatsFlushOnRelease: snapshot reads accumulate locally and hit
// the column's counters only on Release, exactly once.
func TestSnapshotStatsFlushOnRelease(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	for i := 0; i < 100; i++ {
		c.Append(fmt.Sprintf("v%03d", i%10))
	}
	c.Merge(dict.Array)
	c.ResetStats()

	snap := c.Snapshot()
	snap.Get(5)              // one extract
	snap.Locate("v003")      // one locate
	snap.ScanEq("v004", nil) // one more locate
	if st := c.Stats(); st.Extracts != 0 || st.Locates != 0 {
		t.Fatalf("counters flushed early: %+v", st)
	}
	snap.Release()
	if st := c.Stats(); st.Extracts != 1 || st.Locates != 2 {
		t.Fatalf("after Release: %+v, want 1 extract / 2 locates", st)
	}
	snap.Release() // idempotent: no double count
	if st := c.Stats(); st.Extracts != 1 || st.Locates != 2 {
		t.Fatalf("second Release changed counters: %+v", st)
	}
}

// TestZonesCoverAllMergePaths: full merges, partial merges and format
// rebuilds must leave a zone set that covers every main row exactly once —
// checked behaviorally by scanning for every distinct value and comparing
// against the scalar oracle.
func TestZonesCoverAllMergePaths(t *testing.T) {
	c := NewStringColumn("t.c", dict.Array)
	appendBatch := func(n, seed int) {
		for i := 0; i < n; i++ {
			c.Append(fmt.Sprintf("v%05d", (seed+i*7)%300))
		}
	}
	check := func(stage string) {
		t.Helper()
		snap := c.Snapshot()
		defer snap.Release()
		v := snap.v
		covered := 0
		for i, z := range v.zones {
			if z.start != covered {
				t.Fatalf("%s: zone %d starts at %d, want %d", stage, i, z.start, covered)
			}
			if z.n <= 0 {
				t.Fatalf("%s: zone %d empty", stage, i)
			}
			covered += z.n
		}
		if covered != v.nMain {
			t.Fatalf("%s: zones cover %d rows, main has %d", stage, covered, v.nMain)
		}
		for _, probe := range []string{"v00000", "v00123", "v00299", "nope"} {
			scanOracle(t, snap, stage, probe, probe, probe+"~")
		}
	}

	appendBatch(zoneRows+500, 0)
	c.Merge(dict.Array)
	check("full merge")

	// Two sealed segments, partial-merge one of them (identity append path).
	appendBatch(800, 11)
	c.sealActive()
	appendBatch(900, 23)
	c.sealActive()
	c.MergePartial(1)
	check("partial merge")

	c.Merge(dict.FCBlock)
	check("second full merge")

	c.Rebuild(dict.FCInline)
	check("rebuild")
}

// TestPruningSoundnessConcurrent is the race-detector stress for the
// vectorized path: writers append, a merger keeps folding the delta into new
// main parts (rebuilding zones every time), and readers continuously verify
// that the pruned kernel scan equals the scalar oracle on their own pinned
// snapshots.
func TestPruningSoundnessConcurrent(t *testing.T) {
	const (
		writers       = 2
		rowsPerWriter = 4000
		readers       = 3
	)
	c := NewStringColumn("t.c", dict.Array)
	valueOf := func(w, i int) string { return fmt.Sprintf("w%d-%04d", w, i%200) }

	var wg sync.WaitGroup
	var writersDone atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				c.Append(valueOf(w, i))
			}
		}(w)
	}

	var mergerWG sync.WaitGroup
	mergerWG.Add(1)
	go func() {
		defer mergerWG.Done()
		formats := []dict.Format{dict.Array, dict.FCBlock, dict.ArrayBC}
		for i := 0; !writersDone.Load(); i++ {
			if i%3 == 2 {
				c.MergePartial(1)
			} else {
				c.Merge(formats[i%len(formats)])
			}
		}
	}()

	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errCh <- fmt.Errorf("reader %d panicked: %v", r, p)
				}
			}()
			rng := rand.New(rand.NewSource(int64(r)))
			for iter := 0; iter < 300; iter++ {
				snap := c.Snapshot()
				probe := valueOf(rng.Intn(writers), rng.Intn(rowsPerWriter))
				kernel := snap.ScanEq(probe, nil)
				oracle := snap.ScanEqScalar(probe, nil)
				if fmt.Sprint(kernel) != fmt.Sprint(oracle) {
					errCh <- fmt.Errorf("reader %d: ScanEq(%q) = %v, oracle %v", r, probe, kernel, oracle)
					snap.Release()
					return
				}
				lo := valueOf(0, rng.Intn(200))
				hi := valueOf(writers-1, rng.Intn(200))
				kr := snap.ScanRange(lo, hi, nil)
				or := snap.ScanRangeScalar(lo, hi, nil)
				if fmt.Sprint(kr) != fmt.Sprint(or) {
					errCh <- fmt.Errorf("reader %d: ScanRange(%q,%q) mismatch", r, lo, hi)
					snap.Release()
					return
				}
				snap.Release()
			}
		}(r)
	}

	wg.Wait()
	writersDone.Store(true)
	mergerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final consistency: after one last full merge, every value's row set is
	// exactly the rows that hold it.
	c.Merge(dict.Array)
	snap := c.Snapshot()
	defer snap.Release()
	if snap.Len() != writers*rowsPerWriter {
		t.Fatalf("rows lost: %d, want %d", snap.Len(), writers*rowsPerWriter)
	}
	probe := valueOf(1, 42)
	rows := snap.ScanEq(probe, nil)
	if !sort.IntsAreSorted(rows) {
		t.Fatal("ScanEq rows not sorted")
	}
	for _, row := range rows {
		if got := snap.Get(row); got != probe {
			t.Fatalf("row %d = %q, want %q", row, got, probe)
		}
	}
	if want := snap.ScanEqScalar(probe, nil); fmt.Sprint(rows) != fmt.Sprint(want) {
		t.Fatalf("final ScanEq = %v, oracle %v", rows, want)
	}
}

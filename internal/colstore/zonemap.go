package colstore

import "strdict/internal/intcomp"

// Zone maps: per-block min/max code summaries over the main part's code
// vector, built once at merge/restore time while the codes are already in
// hand. Because every dictionary format is order-preserving, a string
// predicate translates into a code interval, and a zone whose [min, max]
// does not intersect that interval cannot contain a match — the scan skips
// the whole block without touching the compressed vector. Sealed delta
// segments carry min/max values (their codes are segment-local, so value
// bounds are the comparable summary).

// zoneRows is the number of main rows summarized per zone. Large enough
// that the two-word summary is negligible overhead (16 bytes per 4096
// rows), small enough that clustered columns prune at useful granularity.
const zoneRows = 4096

// zone summarizes main-part rows [start, start+n): the minimum and maximum
// code that occurs in the block.
type zone struct {
	start, n int
	min, max uint64
}

// overlapsEq reports whether the zone may contain code.
func (z zone) overlapsEq(code uint64) bool {
	return code >= z.min && code <= z.max
}

// overlapsRange reports whether the zone may contain a code in [lo, hi).
func (z zone) overlapsRange(lo, hi uint64) bool {
	return hi > z.min && lo <= z.max
}

// buildZonesAt summarizes codes into zones of zoneRows entries, with zone
// start positions offset by base — the fold path appends zones for rows
// [base, base+len(codes)) after an identity partial merge extends the main
// vector in place.
func buildZonesAt(codes []uint64, base int) []zone {
	if len(codes) == 0 {
		return nil
	}
	zones := make([]zone, 0, (len(codes)+zoneRows-1)/zoneRows)
	for lo := 0; lo < len(codes); lo += zoneRows {
		hi := lo + zoneRows
		if hi > len(codes) {
			hi = len(codes)
		}
		min, max := codes[lo], codes[lo]
		for _, c := range codes[lo+1 : hi] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		zones = append(zones, zone{start: base + lo, n: hi - lo, min: min, max: max})
	}
	return zones
}

// zonesOfVector summarizes an already-compressed code vector — the crash
// recovery path, where the plain []uint64 the merge paths summarize for
// free no longer exists.
func zonesOfVector(codes intcomp.Vector) []zone {
	n := codes.Len()
	if n == 0 {
		return nil
	}
	zones := make([]zone, 0, (n+zoneRows-1)/zoneRows)
	for lo := 0; lo < n; lo += zoneRows {
		k := zoneRows
		if lo+k > n {
			k = n - lo
		}
		min, max := intcomp.MinMax(codes, lo, k)
		zones = append(zones, zone{start: lo, n: k, min: min, max: max})
	}
	return zones
}

// segValueBounds returns the lexicographic min and max of a sealed
// segment's distinct values. Called once at seal time; vals is non-empty.
func segValueBounds(vals []string) (min, max string) {
	min, max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

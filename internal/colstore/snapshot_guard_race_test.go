//go:build race

package colstore

import (
	"strings"
	"testing"

	"strdict/internal/dict"
)

// TestSnapshotGuardPanicsOnOverlap simulates the misuse the guard exists
// for — a second goroutine entering a snapshot while a method is already
// executing — deterministically, by holding the in-use flag and calling a
// guarded method.
func TestSnapshotGuardPanicsOnOverlap(t *testing.T) {
	if !snapshotGuarded {
		t.Fatal("race build must compile the snapshot guard in")
	}
	c := NewStringColumn("t.guard", dict.Array)
	for _, v := range []string{"aa", "bb", "cc"} {
		c.Append(v)
	}
	c.Merge(dict.Array)
	s := c.Snapshot()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("guarded method did not panic while snapshot was in use")
		}
		if !strings.Contains(r.(string), "single-goroutine") {
			t.Fatalf("unexpected panic: %v", r)
		}
		s.exit()
		if _, ok := s.Locate("aa"); !ok { // usable again after exit
			t.Fatal("Locate after exit failed")
		}
		s.Release()
	}()
	s.enter() // the overlapping goroutine's entry, without the goroutine
	s.Locate("aa")
}

// TestSnapshotGuardCleanHandoff checks the guard stays silent on the legal
// pattern: strictly sequential use, including Release.
func TestSnapshotGuardCleanHandoff(t *testing.T) {
	c := NewStringColumn("t.guard2", dict.Array)
	for _, v := range []string{"x", "y", "z"} {
		c.Append(v)
	}
	c.Merge(dict.Array)
	s := c.Snapshot()
	if got := s.Get(1); got != "y" {
		t.Fatalf("Get(1) = %q", got)
	}
	if n := s.CountEq("z"); n != 1 {
		t.Fatalf("CountEq(z) = %d", n)
	}
	s.Release()
	s.Release() // idempotent under the guard too
}

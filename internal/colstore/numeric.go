package colstore

// Int64Column is a plain numeric column. TPC-H measures, quantities and
// dates (as day numbers) live in these; the paper's dictionary work only
// concerns string columns, so numeric columns stay uncompressed.
type Int64Column struct {
	name    string
	vals    []int64
	journal Journal
}

// NewInt64Column returns an empty numeric column.
func NewInt64Column(name string) *Int64Column {
	return &Int64Column{name: name}
}

// Name returns the column name.
func (c *Int64Column) Name() string { return c.name }

// Len returns the number of rows.
func (c *Int64Column) Len() int { return len(c.vals) }

// Append adds a value. Numeric appends are not goroutine-safe (unlike
// StringColumn), so journal order trivially follows append order.
func (c *Int64Column) Append(v int64) {
	c.vals = append(c.vals, v)
	if c.journal != nil {
		c.journal.JournalAppendInt64(c.name, v)
	}
}

// Get returns the value at a row.
func (c *Int64Column) Get(row int) int64 { return c.vals[row] }

// RestoreVals installs recovered values on an empty column; the persist
// recovery path, which then replays journaled rows on top via Append.
// Restoring a non-empty column is a programming error and panics.
func (c *Int64Column) RestoreVals(vals []int64) {
	if len(c.vals) != 0 {
		panic("colstore: RestoreVals on a non-empty column")
	}
	c.vals = vals
}

// Bytes returns the memory footprint.
func (c *Int64Column) Bytes() uint64 { return uint64(len(c.vals)) * 8 }

// Float64Column is a plain floating-point column (prices, discounts, taxes).
type Float64Column struct {
	name    string
	vals    []float64
	journal Journal
}

// NewFloat64Column returns an empty float column.
func NewFloat64Column(name string) *Float64Column {
	return &Float64Column{name: name}
}

// Name returns the column name.
func (c *Float64Column) Name() string { return c.name }

// Len returns the number of rows.
func (c *Float64Column) Len() int { return len(c.vals) }

// Append adds a value (not goroutine-safe; see Int64Column.Append).
func (c *Float64Column) Append(v float64) {
	c.vals = append(c.vals, v)
	if c.journal != nil {
		c.journal.JournalAppendFloat64(c.name, v)
	}
}

// Get returns the value at a row.
func (c *Float64Column) Get(row int) float64 { return c.vals[row] }

// RestoreVals installs recovered values on an empty column (see
// Int64Column.RestoreVals).
func (c *Float64Column) RestoreVals(vals []float64) {
	if len(c.vals) != 0 {
		panic("colstore: RestoreVals on a non-empty column")
	}
	c.vals = vals
}

// Bytes returns the memory footprint.
func (c *Float64Column) Bytes() uint64 { return uint64(len(c.vals)) * 8 }

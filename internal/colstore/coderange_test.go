package colstore

import (
	"fmt"
	"sort"
	"testing"

	"strdict/internal/dict"
)

// TestCodeRangeBoundarySemantics pins the Definition 1 Locate contract as
// seen through CodeRange, for every dictionary format: an absent bound
// resolves to the ID of the first string greater than it (Len() if every
// string is smaller), so [lo, hi) on strings maps exactly to [loID, hiID)
// on value IDs. The reference is sort.SearchStrings over the sorted
// distinct values — the two must agree on present bounds, absent bounds
// below / between / above all values, and empty ranges.
func TestCodeRangeBoundarySemantics(t *testing.T) {
	// Distinct values with gaps so every probe class exists. Even-numbered
	// keys are present; odd ones fall in the gaps.
	var values []string
	for i := 0; i < 50; i++ {
		values = append(values, fmt.Sprintf("key-%04d", 2*i))
	}
	probes := []string{
		"", "aaa", "key-0000", // below / at the bottom boundary
		"key-0001", "key-0050", "key-0051", // interior: present and absent
		"key-0098", "key-0099", // top boundary and just past it
		"zzz", // above every value
	}
	ref := func(s string) uint32 {
		return uint32(sort.SearchStrings(values, s))
	}

	for _, f := range dict.AllFormats() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			s := NewStore()
			c := s.AddTable("t").AddString("c", f)
			// Append shuffled-ish (reverse) so construction order is not the
			// sorted order, then fold everything into the main part.
			for i := len(values) - 1; i >= 0; i-- {
				c.Append(values[i])
			}
			c.Merge(f)
			snap := c.Snapshot()

			for _, lo := range probes {
				for _, hi := range probes {
					wantLo, wantHi := ref(lo), ref(hi)
					if gotLo, gotHi := c.CodeRange(lo, hi); gotLo != wantLo || gotHi != wantHi {
						t.Fatalf("CodeRange(%q, %q) = [%d, %d), want [%d, %d)",
							lo, hi, gotLo, gotHi, wantLo, wantHi)
					}
					if gotLo, gotHi := snap.CodeRange(lo, hi); gotLo != wantLo || gotHi != wantHi {
						t.Fatalf("Snapshot.CodeRange(%q, %q) = [%d, %d), want [%d, %d)",
							lo, hi, gotLo, gotHi, wantLo, wantHi)
					}
				}
			}
			// Sanity: the ID range really selects the right rows. Rows were
			// appended in reverse, so row i holds values[len-1-i].
			loID, hiID := c.CodeRange("key-0010", "key-0021")
			var got []string
			for i := 0; i < c.Len(); i++ {
				id, ok := snap.Code(i)
				if !ok {
					t.Fatalf("row %d not in main part after Merge", i)
				}
				if id >= loID && id < hiID {
					got = append(got, c.Extract(id))
				}
			}
			sort.Strings(got)
			want := []string{"key-0010", "key-0012", "key-0014", "key-0016", "key-0018", "key-0020"}
			if len(got) != len(want) {
				t.Fatalf("range scan got %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("range scan got %v, want %v", got, want)
				}
			}
		})
	}
}

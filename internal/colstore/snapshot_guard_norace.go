//go:build !race

package colstore

// snapshotGuarded reports whether the Snapshot misuse assertion is compiled
// in; see snapshot_guard_race.go. Normal builds keep the read path free of
// atomics: enter/exit are empty and inline to nothing.
const snapshotGuarded = false

func (s *Snapshot) enter() {}

func (s *Snapshot) exit() {}

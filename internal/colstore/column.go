// Package colstore implements the in-memory column-store substrate the
// paper's evaluation runs on: dictionary-encoded string columns with a
// read-optimized main part and a write-optimized delta part, bit-packed code
// vectors, periodic merge (the moment the compression manager may change the
// dictionary format), plain numeric columns, and the scan/predicate helpers
// the TPC-H queries are built from.
//
// Every dictionary access is counted, so a traced workload yields the
// extract/locate statistics the compression manager's time model needs.
//
// # Concurrency
//
// StringColumn follows an epoch/version design: the entire read state —
// dictionary, code vector, main row count, and the chain of sealed
// (immutable) delta segments — lives in one immutable columnVersion struct
// published through an atomic pointer. Readers (Get, Locate, ScanEq,
// CodeRange, …) load the pointer once and never take a mutex on the main
// part; a reader holds a consistent view for the duration of one call by
// construction, and Snapshot returns that view as an explicit handle so an
// analytical scan can pin a single (dict, codes) pair across a whole query
// with zero per-row synchronization.
//
// Writes go to the active delta segment, the only mutable structure, guarded
// by a small per-column mutex whose critical sections are O(1). A merge
// first seals the active segment — moves it, frozen, into the published
// version's sealed chain and starts a fresh active segment — then builds the
// merged dictionary and re-encoded code vector off to the side with no lock
// held, and finally publishes the new version with one atomic store. Appends
// racing the build land in the new active segment and are untouched by the
// publish: the boundary between published rows and active rows only moves at
// seal time, which holds the append mutex. Merge/MergePartial/Rebuild/seal
// serialize on mergeMu, so there is exactly one publisher at a time; readers
// are never blocked, not even for a swap. A partial merge (MergePartial)
// folds only the oldest sealed segments, advancing the main/sealed boundary
// without draining the whole delta — the hot-column path that avoids paying
// a full dictionary rebuild per backpressure kick.
//
// Backpressure: a merge daemon (see MergeScheduler.Start) may install a
// high-water mark; Append then blocks once the active segment reaches that
// many rows, kicks the daemon, and resumes when the segment is sealed.
//
// Table and Store DDL (AddTable, AddString, …) is not goroutine-safe and
// must complete before concurrent access starts.
package colstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// AccessStats counts dictionary operations on a column. Counters are
// cumulative; use Reset between workload traces.
type AccessStats struct {
	Extracts uint64
	Locates  uint64
}

// MergeOptions tunes a merge's dictionary reconstruction.
type MergeOptions struct {
	// BuildParallelism is passed through to dict.BuildOptions: the number of
	// goroutines encoding independent dictionary parts during the rebuild.
	// <= 1 builds serially; the resulting dictionary is bit-identical.
	BuildParallelism int
}

// MergeResult reports what a merge actually did, so schedulers can keep
// honest bookkeeping (a dispatch that found nothing to fold must not count
// as a merge) and benchmarks can measure rows rewritten per merge.
type MergeResult struct {
	// Folded is the number of delta rows moved into the main part.
	Folded int
	// Rewritten is the number of rows whose codes were re-encoded into a new
	// code vector. A full merge rewrites every main and delta row; a partial
	// fold that introduces no new dictionary values rewrites only the folded
	// rows (the main vector is extended, not rebuilt).
	Rewritten int
	// DictBuilt reports whether the main dictionary was reconstructed.
	DictBuilt bool
}

// deltaSegment is one sealed chunk of the write-optimized delta. Once a
// segment is sealed it is immutable — values, index and rows are never
// touched again — so readers and the merge builder share it freely.
type deltaSegment struct {
	vals  []string          // segment code -> value, insertion order
	index map[string]uint32 // value -> segment code
	rows  []uint32          // per row: segment code

	// Lexicographic bounds over vals, computed at seal time: the segment's
	// zone-map summary (segment codes are local, so value bounds are the
	// comparable form). Range scans skip segments whose bounds exclude the
	// predicate interval.
	minVal, maxVal string
}

// columnVersion is the immutable read state of a column: the read-optimized
// main part plus the chain of sealed delta segments. A published version is
// never mutated; every structural change (seal, merge, rebuild) installs a
// fresh version through the column's atomic pointer.
type columnVersion struct {
	// Read-optimized main part. The code vector is integer-compressed
	// (bit-packed or run-length encoded, whichever is smaller), per the
	// paper's note that domain-encoded code lists are compressed further.
	dict  dict.Dictionary
	codes intcomp.Vector
	nMain int

	// zones summarizes the main code vector in zoneRows blocks (min/max
	// code per block), built at merge/restore time. Scans skip blocks whose
	// summary excludes the predicate's code interval.
	zones []zone

	// Sealed delta segments, oldest first. Their rows follow the main part
	// in row-position order; sealedRows caches their total length.
	sealed     []*deltaSegment
	sealedRows int
}

// rows returns the number of rows covered by this version (main + sealed).
func (v *columnVersion) rows() int { return v.nMain + v.sealedRows }

// sealedValue returns the value at delta offset off (row - nMain).
func (v *columnVersion) sealedValue(off int) string {
	for _, seg := range v.sealed {
		if off < len(seg.rows) {
			return seg.vals[seg.rows[off]]
		}
		off -= len(seg.rows)
	}
	panic("colstore: sealed delta row out of range")
}

// StringColumn is a dictionary-encoded string column: the main part holds a
// read-only dictionary in one of the registered formats plus a bit-packed
// vector of
// value IDs; the delta part absorbs appends until the next merge.
//
// All exported methods are safe for concurrent use. Reads of the main part
// are lock-free: they load the current columnVersion with one atomic load
// (see the package comment). Use Snapshot to pin one version across many
// calls.
type StringColumn struct {
	name string

	// version is the column's entire published read state. Load once per
	// operation; every loaded version stays valid (immutable) forever.
	version atomic.Pointer[columnVersion]

	// totalRows counts every appended row (main + sealed + active). It is
	// monotone: rows are never deleted, and merges only move them between
	// parts, so Len is a single atomic load.
	totalRows atomic.Int64

	// appendMu guards the active (unsealed) delta segment below and the
	// backpressure configuration. Critical sections are O(1); the main part
	// is never read or written under it.
	appendMu    sync.Mutex
	drained     sync.Cond // signaled when the active segment is sealed or backpressure is removed
	activeVals  []string
	activeIndex map[string]uint32
	activeRows  []uint32
	hwm         int    // active-segment high-water mark; 0 = no backpressure
	kick        func() // wakes the merge daemon when the mark is hit

	// journal, when non-nil, receives appends (under appendMu, so WAL order
	// equals row order) and main-part publications (under mergeMu). Set via
	// Store.SetJournal, read only under the mutex each path already holds.
	journal Journal

	// mergeMu serializes Merge/Rebuild (and their seal step) against each
	// other: there is exactly one version publisher at a time. Readers and
	// writers never touch it.
	mergeMu sync.Mutex

	extracts atomic.Uint64
	locates  atomic.Uint64

	// Zone-map outcome counters: blocks scanned vs. pruned across all scans
	// on this column. Flushed from per-snapshot accumulators on Release.
	zonesScanned atomic.Uint64
	zonesSkipped atomic.Uint64
}

// ScanStats counts zone-map outcomes on a column: how many main-part
// blocks scans actually decoded versus skipped via their min/max summary.
type ScanStats struct {
	ZonesScanned uint64
	ZonesSkipped uint64
}

// ScanStats returns the cumulative zone-map counters. Like AccessStats the
// counters are trace data; snapshots accumulate locally and flush on
// Release, so read them after the scanning snapshots are released.
func (c *StringColumn) ScanStats() ScanStats {
	return ScanStats{
		ZonesScanned: c.zonesScanned.Load(),
		ZonesSkipped: c.zonesSkipped.Load(),
	}
}

// NewStringColumn returns an empty column whose main part uses the given
// dictionary format.
func NewStringColumn(name string, format dict.Format) *StringColumn {
	c := &StringColumn{
		name:        name,
		activeIndex: make(map[string]uint32),
	}
	c.drained.L = &c.appendMu
	c.version.Store(&columnVersion{
		dict:  dict.BuildUnchecked(format, nil),
		codes: intcomp.PackBits(nil),
	})
	return c
}

// Name returns the column name.
func (c *StringColumn) Name() string { return c.name }

// Len returns the number of rows (main + delta). One atomic load, no locks.
func (c *StringColumn) Len() int { return int(c.totalRows.Load()) }

// DeltaRows returns the number of rows in the write-optimized delta — the
// sealed segments plus the active segment, i.e. every row not yet folded
// into the main part. The version is loaded before the row counter so the
// difference can never go negative while a merge publishes concurrently.
func (c *StringColumn) DeltaRows() int {
	v := c.version.Load()
	return int(c.totalRows.Load()) - v.nMain
}

// SealedSegments returns the number of sealed (immutable) delta segments in
// the published version — the units a partial merge folds. One atomic load.
func (c *StringColumn) SealedSegments() int {
	return len(c.version.Load().sealed)
}

// DictLen returns the number of distinct values in the main dictionary.
func (c *StringColumn) DictLen() int {
	return c.version.Load().dict.Len()
}

// Format returns the main dictionary's format.
func (c *StringColumn) Format() dict.Format {
	return c.version.Load().dict.Format()
}

// Append adds a value to the write-optimized delta part. If a merge daemon
// installed a high-water mark and the active segment is full, Append blocks
// until the daemon seals the segment (backpressure).
func (c *StringColumn) Append(value string) {
	c.appendMu.Lock()
	for c.hwm > 0 && len(c.activeRows) >= c.hwm {
		if c.kick != nil {
			c.kick()
		}
		c.drained.Wait()
	}
	code, ok := c.activeIndex[value]
	if !ok {
		code = uint32(len(c.activeVals))
		c.activeVals = append(c.activeVals, value)
		c.activeIndex[value] = code
	}
	c.activeRows = append(c.activeRows, code)
	c.totalRows.Add(1)
	if c.journal != nil {
		c.journal.JournalAppend(c.name, value)
	}
	c.appendMu.Unlock()
}

// setBackpressure installs (hwm > 0) or removes (hwm <= 0) the append
// throttle. kick, if non-nil, is invoked — with the append mutex held, so it
// must not call back into the column — when a blocked Append wants a merge.
func (c *StringColumn) setBackpressure(hwm int, kick func()) {
	c.appendMu.Lock()
	if hwm < 0 {
		hwm = 0
	}
	c.hwm = hwm
	c.kick = kick
	c.drained.Broadcast() // release waiters if the mark was raised or removed
	c.appendMu.Unlock()
}

// Get returns the value at the given row, reading the main part through the
// dictionary (counted as an extract). Main and sealed rows are served
// lock-free from the current version.
func (c *StringColumn) Get(row int) string {
	v := c.version.Load()
	if row < v.nMain {
		c.extracts.Add(1)
		return v.dict.Extract(uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return v.sealedValue(row - v.nMain)
	}
	return c.activeValue(row)
}

// activeValue serves a row from the active segment under the append mutex.
// The boundary between published rows and active rows only moves at seal
// time, which also holds the append mutex, so reloading the version under
// the lock yields a stable offset. A row that was sealed (or merged) between
// the caller's version load and ours is served from the newer version.
func (c *StringColumn) activeValue(row int) string {
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	v := c.version.Load()
	if row < v.nMain {
		c.extracts.Add(1)
		return v.dict.Extract(uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return v.sealedValue(row - v.nMain)
	}
	return c.activeVals[c.activeRows[row-v.rows()]]
}

// AppendGet appends the value at row to dst (allocation-free main-part read).
func (c *StringColumn) AppendGet(dst []byte, row int) []byte {
	v := c.version.Load()
	if row < v.nMain {
		c.extracts.Add(1)
		return v.dict.AppendExtract(dst, uint32(v.codes.Get(row)))
	}
	if row < v.rows() {
		return append(dst, v.sealedValue(row-v.nMain)...)
	}
	return append(dst, c.activeValue(row)...)
}

// Code returns the main-part value ID at a row; rows in the delta return
// ok == false. Query operators compare codes instead of strings wherever
// possible — the core benefit of domain encoding.
//
// Note that value IDs are only stable between merges: a query that needs a
// consistent cross-call view should hold a Snapshot and use its methods.
func (c *StringColumn) Code(row int) (uint32, bool) {
	v := c.version.Load()
	if row < v.nMain {
		return uint32(v.codes.Get(row)), true
	}
	return 0, false
}

// Locate returns the value ID of value in the main dictionary (counted as a
// locate), with the Definition 1 semantics.
func (c *StringColumn) Locate(value string) (uint32, bool) {
	c.locates.Add(1)
	return c.version.Load().dict.Locate(value)
}

// Extract returns the string for a main-dictionary value ID (counted).
func (c *StringColumn) Extract(id uint32) string {
	c.extracts.Add(1)
	return c.version.Load().dict.Extract(id)
}

// AppendExtract is the allocation-free variant of Extract (counted).
func (c *StringColumn) AppendExtract(dst []byte, id uint32) []byte {
	c.extracts.Add(1)
	return c.version.Load().dict.AppendExtract(dst, id)
}

// CodeRange translates a string range [lo, hi) into a value-ID range
// [loID, hiID) — valid because every dictionary format is order-preserving.
// Two locates are counted. The pair is resolved against one version load,
// so a concurrent merge cannot tear it.
func (c *StringColumn) CodeRange(lo, hi string) (uint32, uint32) {
	v := c.version.Load()
	c.locates.Add(2)
	loID, _ := v.dict.Locate(lo)
	hiID, _ := v.dict.Locate(hi)
	return loID, hiID
}

// ScanEq appends to out the rows whose value equals v. The whole scan runs
// against one pinned snapshot; a fully merged column is scanned without any
// mutex operation.
func (c *StringColumn) ScanEq(v string, out []int) []int {
	s := c.Snapshot()
	defer s.Release()
	return s.ScanEq(v, out)
}

// ScanRange appends to out the rows whose value lies in [lo, hi). Like
// ScanEq it runs against one pinned snapshot; the main part is evaluated as
// a code-interval scan (formats are order-preserving) with zone-map
// pruning.
func (c *StringColumn) ScanRange(lo, hi string, out []int) []int {
	s := c.Snapshot()
	defer s.Release()
	return s.ScanRange(lo, hi, out)
}

// Stats returns the cumulative dictionary access counters.
func (c *StringColumn) Stats() AccessStats {
	return AccessStats{Extracts: c.extracts.Load(), Locates: c.locates.Load()}
}

// ResetStats zeroes the counters (start of a workload trace).
func (c *StringColumn) ResetStats() {
	c.extracts.Store(0)
	c.locates.Store(0)
	c.zonesScanned.Store(0)
	c.zonesSkipped.Store(0)
}

// DictValues materializes the sorted distinct values of the main dictionary.
// It bypasses the access counters: it is maintenance machinery (merge,
// sampling), not query work.
func (c *StringColumn) DictValues() []string {
	return dictValuesOf(c.version.Load().dict)
}

// dictValuesOf walks an (immutable) dictionary outside any lock.
func dictValuesOf(d dict.Dictionary) []string {
	out := make([]string, d.Len())
	d.ForEach(func(id uint32, value []byte) bool {
		out[id] = string(value)
		return true
	})
	return out
}

// sealActive freezes the active segment into the published version's sealed
// chain and starts a fresh active segment, returning the resulting version.
// Appenders blocked on backpressure are released. The caller must hold
// mergeMu (seal publishes a version).
func (c *StringColumn) sealActive() *columnVersion {
	c.appendMu.Lock()
	defer c.appendMu.Unlock()
	v := c.version.Load()
	if len(c.activeRows) == 0 {
		return v
	}
	seg := &deltaSegment{vals: c.activeVals, index: c.activeIndex, rows: c.activeRows}
	seg.minVal, seg.maxVal = segValueBounds(seg.vals)
	nv := &columnVersion{
		dict:       v.dict,
		codes:      v.codes,
		nMain:      v.nMain,
		zones:      v.zones,
		sealed:     append(v.sealed[:len(v.sealed):len(v.sealed)], seg),
		sealedRows: v.sealedRows + len(seg.rows),
	}
	c.activeVals = nil
	c.activeIndex = make(map[string]uint32)
	c.activeRows = nil
	c.version.Store(nv)
	c.drained.Broadcast()
	return nv
}

// Merge folds the delta part into the main part, rebuilding the dictionary
// in the given format. This is the reconstruction point where the
// compression manager's decision is applied for free.
func (c *StringColumn) Merge(format dict.Format) MergeResult {
	return c.MergeWithOptions(format, MergeOptions{})
}

// MergeWithOptions is Merge with construction tuning. The merge first seals
// the active delta segment, then builds the merged dictionary and re-encoded
// code vector off to the side — no lock held, readers keep scanning the old
// version — and finally publishes the new version with one atomic store.
// Rows appended during the build land in the new active segment and keep
// their positions; with no concurrent appends the result is identical to the
// serial merge.
//
// A merge that would change nothing — empty delta and unchanged format — is
// skipped and reports a zero MergeResult.
func (c *StringColumn) MergeWithOptions(format dict.Format, opts MergeOptions) MergeResult {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()

	v := c.sealActive()
	if v.sealedRows == 0 && format == v.dict.Format() {
		return MergeResult{}
	}
	oldVals := dictValuesOf(v.dict)
	merged := unionSorted(oldVals, distinctSegmentValues(v.sealed))

	// Remap old main codes and per-segment delta codes to the merged ID
	// space.
	oldToNew := remapSorted(oldVals, merged)
	n := v.rows()
	newCodes := make([]uint64, n)
	for row := 0; row < v.nMain; row++ {
		newCodes[row] = uint64(oldToNew[v.codes.Get(row)])
	}
	off := v.nMain
	for _, seg := range v.sealed {
		segToNew := remapSorted(seg.vals, merged)
		for ri, dc := range seg.rows {
			newCodes[off+ri] = uint64(segToNew[dc])
		}
		off += len(seg.rows)
	}

	// The expensive part, off to the side: no reader or writer is blocked.
	newDict := dict.BuildUncheckedWithOptions(format, merged,
		dict.BuildOptions{Parallelism: opts.BuildParallelism})
	newVec := intcomp.PackAuto(newCodes)

	// Publish. The row boundary (main + sealed) is unchanged, so no append
	// lock is needed; rows appended since the seal stay in the active
	// segment.
	c.version.Store(&columnVersion{
		dict:  newDict,
		codes: newVec,
		nMain: n,
		zones: buildZonesAt(newCodes, 0),
	})
	c.journalMainPart(newDict, newVec, n)
	return MergeResult{Folded: v.sealedRows, Rewritten: n, DictBuilt: true}
}

// MergePartial folds only the oldest k sealed delta segments into the main
// part, keeping the current dictionary format. See MergePartialWithOptions.
func (c *StringColumn) MergePartial(k int) MergeResult {
	return c.MergePartialWithOptions(k, MergeOptions{})
}

// MergePartialWithOptions folds the oldest k sealed delta segments into the
// main part, advancing the main/sealed boundary without draining the whole
// delta. The active segment is sealed first — releasing any appender blocked
// on backpressure — and becomes the newest sealed segment; it and every
// segment newer than the folded prefix are untouched (their per-segment code
// spaces need no remap, since sealed-segment codes are local to each
// segment). The dictionary format is never changed: partial folds are the
// hot-column path where paying a format decision (and the full rebuild it
// may imply) per backpressure kick is exactly the cost being avoided.
//
// When the folded segments introduce no new distinct values the dictionary
// is reused as-is and the main code vector is extended with one appended
// part (intcomp.Concat) — only the folded rows are re-encoded. Otherwise the
// dictionary is rebuilt in the same format over the union and every row
// below the new boundary is remapped, exactly like a full merge restricted
// to the folded prefix.
//
// k <= 0 is a no-op; k is clamped to the number of sealed segments (after
// the seal). The publish follows the same seal-build-swap protocol as
// MergeWithOptions: readers are never blocked, and a Snapshot taken at any
// point observes either the old or the new boundary, never a mix.
func (c *StringColumn) MergePartialWithOptions(k int, opts MergeOptions) MergeResult {
	if k <= 0 {
		return MergeResult{}
	}
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()

	v := c.sealActive()
	if len(v.sealed) == 0 {
		return MergeResult{}
	}
	if k > len(v.sealed) {
		k = len(v.sealed)
	}
	fold := v.sealed[:k]
	keep := v.sealed[k:len(v.sealed):len(v.sealed)]
	foldRows := 0
	for _, seg := range fold {
		foldRows += len(seg.rows)
	}

	oldVals := dictValuesOf(v.dict)
	merged := unionSorted(oldVals, distinctSegmentValues(fold))
	nMain := v.nMain + foldRows

	var newDict dict.Dictionary
	var newVec intcomp.Vector
	var newZones []zone
	rewritten := foldRows
	dictBuilt := false
	if len(merged) == len(oldVals) {
		// No new distinct values: the dictionary and every main-row code are
		// unchanged. Encode only the folded rows and append them as a new
		// vector part — the main vector is shared, not rewritten.
		newDict = v.dict
		tail := make([]uint64, foldRows)
		off := 0
		for _, seg := range fold {
			segToNew := remapSorted(seg.vals, merged)
			for ri, dc := range seg.rows {
				tail[off+ri] = uint64(segToNew[dc])
			}
			off += len(seg.rows)
		}
		newVec = intcomp.Concat(v.codes, intcomp.PackAuto(tail))
		// The existing main rows (and their zones) are untouched; only the
		// folded tail needs summarizing.
		newZones = append(v.zones[:len(v.zones):len(v.zones)], buildZonesAt(tail, v.nMain)...)
	} else {
		// New values shift IDs (order preservation): rebuild the dictionary
		// in the same format and remap everything below the new boundary.
		oldToNew := remapSorted(oldVals, merged)
		newCodes := make([]uint64, nMain)
		for row := 0; row < v.nMain; row++ {
			newCodes[row] = uint64(oldToNew[v.codes.Get(row)])
		}
		off := v.nMain
		for _, seg := range fold {
			segToNew := remapSorted(seg.vals, merged)
			for ri, dc := range seg.rows {
				newCodes[off+ri] = uint64(segToNew[dc])
			}
			off += len(seg.rows)
		}
		newDict = dict.BuildUncheckedWithOptions(v.dict.Format(), merged,
			dict.BuildOptions{Parallelism: opts.BuildParallelism})
		newVec = intcomp.PackAuto(newCodes)
		newZones = buildZonesAt(newCodes, 0)
		rewritten = nMain
		dictBuilt = true
	}

	// Publish: the boundary advances past the folded segments; newer sealed
	// segments keep their positions because the folded prefix covered
	// exactly the rows between the old and new boundary.
	c.version.Store(&columnVersion{
		dict:       newDict,
		codes:      newVec,
		nMain:      nMain,
		zones:      newZones,
		sealed:     keep,
		sealedRows: v.sealedRows - foldRows,
	})
	c.journalMainPart(newDict, newVec, nMain)
	return MergeResult{Folded: foldRows, Rewritten: rewritten, DictBuilt: dictBuilt}
}

// distinctSegmentValues returns the sorted distinct values across the given
// sealed segments. Values may repeat between segments; dedupe after sorting.
func distinctSegmentValues(segs []*deltaSegment) []string {
	var vals []string
	for _, seg := range segs {
		vals = append(vals, seg.vals...)
	}
	sort.Strings(vals)
	return dedupeSorted(vals)
}

// unionSorted merges two sorted unique slices into their sorted union.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b):
			out = append(out, a[i])
			i++
		case i >= len(a):
			out = append(out, b[j])
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// remapSorted maps each value (all present in merged) to its ID in the
// merged sorted value set.
func remapSorted(vals, merged []string) []uint32 {
	out := make([]uint32, len(vals))
	for i, val := range vals {
		out[i] = uint32(sort.SearchStrings(merged, val))
	}
	return out
}

// dedupeSorted removes adjacent duplicates from a sorted slice in place.
func dedupeSorted(s []string) []string {
	out := s[:0]
	for _, v := range s {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Rebuild reconstructs the main dictionary in a new format without touching
// the delta (used when reconfiguring an already-merged store; code IDs are
// unchanged because all formats are order-preserving). Like Merge, the build
// happens against the immutable current version, with one atomic store as
// the only publication step.
func (c *StringColumn) Rebuild(format dict.Format) {
	c.RebuildWithOptions(format, MergeOptions{})
}

// RebuildWithOptions is Rebuild with construction tuning.
func (c *StringColumn) RebuildWithOptions(format dict.Format, opts MergeOptions) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()

	v := c.version.Load()
	if format == v.dict.Format() {
		return
	}
	newDict := dict.BuildUncheckedWithOptions(format, dictValuesOf(v.dict),
		dict.BuildOptions{Parallelism: opts.BuildParallelism})

	// v is still current: versions are only published under mergeMu. The
	// code vector (and so its zones) is unchanged: formats are
	// order-preserving, so a format rebuild keeps every ID.
	c.version.Store(&columnVersion{
		dict:       newDict,
		codes:      v.codes,
		nMain:      v.nMain,
		zones:      v.zones,
		sealed:     v.sealed,
		sealedRows: v.sealedRows,
	})
	c.journalMainPart(newDict, v.codes, v.nMain)
}

// DictBytes returns the main dictionary's memory footprint.
func (c *StringColumn) DictBytes() uint64 {
	return c.version.Load().dict.Bytes()
}

// VectorBytes returns the code vector's memory footprint.
func (c *StringColumn) VectorBytes() uint64 {
	return c.version.Load().codes.Bytes()
}

// deltaSegmentBytes estimates a delta segment's footprint.
func deltaSegmentBytes(vals []string, rows []uint32) uint64 {
	var b uint64
	for _, v := range vals {
		b += uint64(len(v)) + 16 + 8 // payload + header + map entry
	}
	return b + uint64(len(rows))*4
}

// Bytes returns the column's total footprint: dictionary, code vector, and
// delta structures (sealed and active).
func (c *StringColumn) Bytes() uint64 {
	v := c.version.Load()
	b := v.dict.Bytes() + v.codes.Bytes()
	for _, seg := range v.sealed {
		b += deltaSegmentBytes(seg.vals, seg.rows)
	}
	c.appendMu.Lock()
	b += deltaSegmentBytes(c.activeVals, c.activeRows)
	c.appendMu.Unlock()
	return b
}

func (c *StringColumn) String() string {
	return fmt.Sprintf("%s[%s, %d rows, %d distinct]", c.name, c.Format(), c.Len(), c.DictLen())
}

// Package colstore implements the in-memory column-store substrate the
// paper's evaluation runs on: dictionary-encoded string columns with a
// read-optimized main part and a write-optimized delta part, bit-packed code
// vectors, periodic merge (the moment the compression manager may change the
// dictionary format), plain numeric columns, and the scan/predicate helpers
// the TPC-H queries are built from.
//
// Every dictionary access is counted, so a traced workload yields the
// extract/locate statistics the compression manager's time model needs.
package colstore

import (
	"fmt"
	"sort"
	"sync/atomic"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// AccessStats counts dictionary operations on a column. Counters are
// cumulative; use Reset between workload traces.
type AccessStats struct {
	Extracts uint64
	Locates  uint64
}

// StringColumn is a dictionary-encoded string column: the main part holds a
// read-only dictionary in one of the 18 formats plus a bit-packed vector of
// value IDs; the delta part absorbs appends until the next merge.
type StringColumn struct {
	name string

	// Read-optimized main part. The code vector is integer-compressed
	// (bit-packed or run-length encoded, whichever is smaller), per the
	// paper's note that domain-encoded code lists are compressed further.
	dict  dict.Dictionary
	codes intcomp.Vector
	nMain int

	// Write-optimized delta part.
	deltaVals  []string          // delta code -> value, insertion order
	deltaIndex map[string]uint32 // value -> delta code
	deltaRows  []uint32          // per delta row: delta code

	extracts atomic.Uint64
	locates  atomic.Uint64
}

// NewStringColumn returns an empty column whose main part uses the given
// dictionary format.
func NewStringColumn(name string, format dict.Format) *StringColumn {
	return &StringColumn{
		name:       name,
		dict:       dict.BuildUnchecked(format, nil),
		codes:      intcomp.PackBits(nil),
		deltaIndex: make(map[string]uint32),
	}
}

// Name returns the column name.
func (c *StringColumn) Name() string { return c.name }

// Len returns the number of rows (main + delta).
func (c *StringColumn) Len() int { return c.nMain + len(c.deltaRows) }

// DictLen returns the number of distinct values in the main dictionary.
func (c *StringColumn) DictLen() int { return c.dict.Len() }

// Format returns the main dictionary's format.
func (c *StringColumn) Format() dict.Format { return c.dict.Format() }

// Append adds a value to the write-optimized delta part.
func (c *StringColumn) Append(value string) {
	code, ok := c.deltaIndex[value]
	if !ok {
		code = uint32(len(c.deltaVals))
		c.deltaVals = append(c.deltaVals, value)
		c.deltaIndex[value] = code
	}
	c.deltaRows = append(c.deltaRows, code)
}

// Get returns the value at the given row, reading the main part through the
// dictionary (counted as an extract).
func (c *StringColumn) Get(row int) string {
	if row < c.nMain {
		c.extracts.Add(1)
		return c.dict.Extract(uint32(c.codes.Get(row)))
	}
	return c.deltaVals[c.deltaRows[row-c.nMain]]
}

// AppendGet appends the value at row to dst (allocation-free main-part read).
func (c *StringColumn) AppendGet(dst []byte, row int) []byte {
	if row < c.nMain {
		c.extracts.Add(1)
		return c.dict.AppendExtract(dst, uint32(c.codes.Get(row)))
	}
	return append(dst, c.deltaVals[c.deltaRows[row-c.nMain]]...)
}

// Code returns the main-part value ID at a row; rows in the delta return
// ok == false. Query operators compare codes instead of strings wherever
// possible — the core benefit of domain encoding.
func (c *StringColumn) Code(row int) (uint32, bool) {
	if row < c.nMain {
		return uint32(c.codes.Get(row)), true
	}
	return 0, false
}

// Locate returns the value ID of value in the main dictionary (counted as a
// locate), with the Definition 1 semantics.
func (c *StringColumn) Locate(value string) (uint32, bool) {
	c.locates.Add(1)
	return c.dict.Locate(value)
}

// Extract returns the string for a main-dictionary value ID (counted).
func (c *StringColumn) Extract(id uint32) string {
	c.extracts.Add(1)
	return c.dict.Extract(id)
}

// AppendExtract is the allocation-free variant of Extract (counted).
func (c *StringColumn) AppendExtract(dst []byte, id uint32) []byte {
	c.extracts.Add(1)
	return c.dict.AppendExtract(dst, id)
}

// CodeRange translates a string range [lo, hi) into a value-ID range
// [loID, hiID) — valid because every dictionary format is order-preserving.
// Two locates are counted.
func (c *StringColumn) CodeRange(lo, hi string) (uint32, uint32) {
	loID, _ := c.Locate(lo)
	hiID, _ := c.Locate(hi)
	return loID, hiID
}

// ScanEq appends to out the rows whose value equals v.
func (c *StringColumn) ScanEq(v string, out []int) []int {
	if id, found := c.Locate(v); found {
		for row := 0; row < c.nMain; row++ {
			if uint32(c.codes.Get(row)) == id {
				out = append(out, row)
			}
		}
	}
	if dcode, ok := c.deltaIndex[v]; ok {
		for i, dc := range c.deltaRows {
			if dc == dcode {
				out = append(out, c.nMain+i)
			}
		}
	}
	return out
}

// Stats returns the cumulative dictionary access counters.
func (c *StringColumn) Stats() AccessStats {
	return AccessStats{Extracts: c.extracts.Load(), Locates: c.locates.Load()}
}

// ResetStats zeroes the counters (start of a workload trace).
func (c *StringColumn) ResetStats() {
	c.extracts.Store(0)
	c.locates.Store(0)
}

// DictValues materializes the sorted distinct values of the main dictionary.
// It bypasses the access counters: it is maintenance machinery (merge,
// sampling), not query work.
func (c *StringColumn) DictValues() []string {
	out := make([]string, c.dict.Len())
	c.dict.ForEach(func(id uint32, value []byte) bool {
		out[id] = string(value)
		return true
	})
	return out
}

// Merge folds the delta part into the main part, rebuilding the dictionary
// in the given format. This is the reconstruction point where the
// compression manager's decision is applied for free.
func (c *StringColumn) Merge(format dict.Format) {
	oldVals := c.DictValues()

	// Union of old dictionary and distinct delta values.
	merged := make([]string, 0, len(oldVals)+len(c.deltaVals))
	newDelta := append([]string(nil), c.deltaVals...)
	sort.Strings(newDelta)
	i, j := 0, 0
	for i < len(oldVals) || j < len(newDelta) {
		switch {
		case j >= len(newDelta):
			merged = append(merged, oldVals[i])
			i++
		case i >= len(oldVals):
			if len(merged) == 0 || merged[len(merged)-1] != newDelta[j] {
				merged = append(merged, newDelta[j])
			}
			j++
		case oldVals[i] < newDelta[j]:
			merged = append(merged, oldVals[i])
			i++
		case oldVals[i] > newDelta[j]:
			merged = append(merged, newDelta[j])
			j++
		default:
			merged = append(merged, oldVals[i])
			i++
			j++
		}
	}

	// Remap old main codes and delta codes to the merged ID space.
	oldToNew := make([]uint32, len(oldVals))
	for oi, v := range oldVals {
		oldToNew[oi] = uint32(sort.SearchStrings(merged, v))
	}
	deltaToNew := make([]uint32, len(c.deltaVals))
	for di, v := range c.deltaVals {
		deltaToNew[di] = uint32(sort.SearchStrings(merged, v))
	}

	n := c.Len()
	newCodes := make([]uint64, n)
	for row := 0; row < c.nMain; row++ {
		newCodes[row] = uint64(oldToNew[c.codes.Get(row)])
	}
	for i, dc := range c.deltaRows {
		newCodes[c.nMain+i] = uint64(deltaToNew[dc])
	}

	c.dict = dict.BuildUnchecked(format, merged)
	c.codes = intcomp.PackAuto(newCodes)
	c.nMain = n
	c.deltaVals = nil
	c.deltaRows = nil
	c.deltaIndex = make(map[string]uint32)
}

// Rebuild reconstructs the main dictionary in a new format without touching
// the delta (used when reconfiguring an already-merged store; code IDs are
// unchanged because all formats are order-preserving).
func (c *StringColumn) Rebuild(format dict.Format) {
	if format == c.dict.Format() {
		return
	}
	c.dict = dict.BuildUnchecked(format, c.DictValues())
}

// DictBytes returns the main dictionary's memory footprint.
func (c *StringColumn) DictBytes() uint64 { return c.dict.Bytes() }

// VectorBytes returns the code vector's memory footprint.
func (c *StringColumn) VectorBytes() uint64 { return c.codes.Bytes() }

// Bytes returns the column's total footprint: dictionary, code vector, and
// delta structures.
func (c *StringColumn) Bytes() uint64 {
	var delta uint64
	for _, v := range c.deltaVals {
		delta += uint64(len(v)) + 16 + 8 // payload + header + map entry
	}
	delta += uint64(len(c.deltaRows)) * 4
	return c.dict.Bytes() + c.codes.Bytes() + delta
}

func (c *StringColumn) String() string {
	return fmt.Sprintf("%s[%s, %d rows, %d distinct]", c.name, c.Format(), c.Len(), c.DictLen())
}

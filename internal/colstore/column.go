// Package colstore implements the in-memory column-store substrate the
// paper's evaluation runs on: dictionary-encoded string columns with a
// read-optimized main part and a write-optimized delta part, bit-packed code
// vectors, periodic merge (the moment the compression manager may change the
// dictionary format), plain numeric columns, and the scan/predicate helpers
// the TPC-H queries are built from.
//
// Every dictionary access is counted, so a traced workload yields the
// extract/locate statistics the compression manager's time model needs.
//
// # Concurrency
//
// StringColumn is safe for concurrent use: readers (Get, Locate, ScanEq, …)
// and writers (Append) synchronize on a per-column RWMutex, and Merge and
// Rebuild follow a snapshot-build-swap protocol — the new dictionary and
// re-encoded code vector are built off to the side against an immutable
// snapshot of main+delta, and the column only takes its write lock for the
// final pointer swap. Readers are therefore never blocked for the duration
// of a dictionary build, only for the O(leftover-delta) swap itself. Rows
// appended while a merge is in flight stay in the delta across the swap.
// Table and Store DDL (AddTable, AddString, …) is not goroutine-safe and
// must complete before concurrent access starts.
package colstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"strdict/internal/dict"
	"strdict/internal/intcomp"
)

// AccessStats counts dictionary operations on a column. Counters are
// cumulative; use Reset between workload traces.
type AccessStats struct {
	Extracts uint64
	Locates  uint64
}

// MergeOptions tunes a merge's dictionary reconstruction.
type MergeOptions struct {
	// BuildParallelism is passed through to dict.BuildOptions: the number of
	// goroutines encoding independent dictionary parts during the rebuild.
	// <= 1 builds serially; the resulting dictionary is bit-identical.
	BuildParallelism int
}

// StringColumn is a dictionary-encoded string column: the main part holds a
// read-only dictionary in one of the 18 formats plus a bit-packed vector of
// value IDs; the delta part absorbs appends until the next merge.
//
// All exported methods are safe for concurrent use. The dictionary and code
// vector behind mu are immutable once published, so Merge can build a
// replacement without blocking readers (see the package comment).
type StringColumn struct {
	name string

	// mu guards every field below it. Readers take the read lock; Append and
	// the merge swap take the write lock. The structures themselves (dict,
	// codes) are immutable once published, and delta slices are append-only,
	// so a merge can snapshot them under the read lock and build off to the
	// side.
	mu sync.RWMutex

	// Read-optimized main part. The code vector is integer-compressed
	// (bit-packed or run-length encoded, whichever is smaller), per the
	// paper's note that domain-encoded code lists are compressed further.
	dict  dict.Dictionary
	codes intcomp.Vector
	nMain int

	// Write-optimized delta part.
	deltaVals  []string          // delta code -> value, insertion order
	deltaIndex map[string]uint32 // value -> delta code
	deltaRows  []uint32          // per delta row: delta code

	// mergeMu serializes Merge/Rebuild against each other, so two concurrent
	// maintenance calls cannot interleave their snapshot and swap phases.
	// Readers and writers never touch it.
	mergeMu sync.Mutex

	extracts atomic.Uint64
	locates  atomic.Uint64
}

// NewStringColumn returns an empty column whose main part uses the given
// dictionary format.
func NewStringColumn(name string, format dict.Format) *StringColumn {
	return &StringColumn{
		name:       name,
		dict:       dict.BuildUnchecked(format, nil),
		codes:      intcomp.PackBits(nil),
		deltaIndex: make(map[string]uint32),
	}
}

// Name returns the column name.
func (c *StringColumn) Name() string { return c.name }

// Len returns the number of rows (main + delta).
func (c *StringColumn) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nMain + len(c.deltaRows)
}

// DictLen returns the number of distinct values in the main dictionary.
func (c *StringColumn) DictLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Len()
}

// Format returns the main dictionary's format.
func (c *StringColumn) Format() dict.Format {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Format()
}

// Append adds a value to the write-optimized delta part.
func (c *StringColumn) Append(value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, ok := c.deltaIndex[value]
	if !ok {
		code = uint32(len(c.deltaVals))
		c.deltaVals = append(c.deltaVals, value)
		c.deltaIndex[value] = code
	}
	c.deltaRows = append(c.deltaRows, code)
}

// Get returns the value at the given row, reading the main part through the
// dictionary (counted as an extract).
func (c *StringColumn) Get(row int) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if row < c.nMain {
		c.extracts.Add(1)
		return c.dict.Extract(uint32(c.codes.Get(row)))
	}
	return c.deltaVals[c.deltaRows[row-c.nMain]]
}

// AppendGet appends the value at row to dst (allocation-free main-part read).
func (c *StringColumn) AppendGet(dst []byte, row int) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if row < c.nMain {
		c.extracts.Add(1)
		return c.dict.AppendExtract(dst, uint32(c.codes.Get(row)))
	}
	return append(dst, c.deltaVals[c.deltaRows[row-c.nMain]]...)
}

// Code returns the main-part value ID at a row; rows in the delta return
// ok == false. Query operators compare codes instead of strings wherever
// possible — the core benefit of domain encoding.
//
// Note that value IDs are only stable between merges: correlate a Code with
// other main-part reads within one merge-free window (a query that needs a
// consistent cross-call view should run on a quiesced scheduler).
func (c *StringColumn) Code(row int) (uint32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if row < c.nMain {
		return uint32(c.codes.Get(row)), true
	}
	return 0, false
}

// Locate returns the value ID of value in the main dictionary (counted as a
// locate), with the Definition 1 semantics.
func (c *StringColumn) Locate(value string) (uint32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.locates.Add(1)
	return c.dict.Locate(value)
}

// Extract returns the string for a main-dictionary value ID (counted).
func (c *StringColumn) Extract(id uint32) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.extracts.Add(1)
	return c.dict.Extract(id)
}

// AppendExtract is the allocation-free variant of Extract (counted).
func (c *StringColumn) AppendExtract(dst []byte, id uint32) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.extracts.Add(1)
	return c.dict.AppendExtract(dst, id)
}

// CodeRange translates a string range [lo, hi) into a value-ID range
// [loID, hiID) — valid because every dictionary format is order-preserving.
// Two locates are counted. The pair is resolved against one dictionary
// snapshot, so a concurrent merge cannot tear it.
func (c *StringColumn) CodeRange(lo, hi string) (uint32, uint32) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.locates.Add(2)
	loID, _ := c.dict.Locate(lo)
	hiID, _ := c.dict.Locate(hi)
	return loID, hiID
}

// ScanEq appends to out the rows whose value equals v. The whole scan runs
// against one consistent column snapshot.
func (c *StringColumn) ScanEq(v string, out []int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.locates.Add(1)
	if id, found := c.dict.Locate(v); found {
		for row := 0; row < c.nMain; row++ {
			if uint32(c.codes.Get(row)) == id {
				out = append(out, row)
			}
		}
	}
	if dcode, ok := c.deltaIndex[v]; ok {
		for i, dc := range c.deltaRows {
			if dc == dcode {
				out = append(out, c.nMain+i)
			}
		}
	}
	return out
}

// Stats returns the cumulative dictionary access counters.
func (c *StringColumn) Stats() AccessStats {
	return AccessStats{Extracts: c.extracts.Load(), Locates: c.locates.Load()}
}

// ResetStats zeroes the counters (start of a workload trace).
func (c *StringColumn) ResetStats() {
	c.extracts.Store(0)
	c.locates.Store(0)
}

// DictValues materializes the sorted distinct values of the main dictionary.
// It bypasses the access counters: it is maintenance machinery (merge,
// sampling), not query work.
func (c *StringColumn) DictValues() []string {
	c.mu.RLock()
	d := c.dict
	c.mu.RUnlock()
	return dictValuesOf(d)
}

// dictValuesOf walks an (immutable) dictionary outside any lock.
func dictValuesOf(d dict.Dictionary) []string {
	out := make([]string, d.Len())
	d.ForEach(func(id uint32, value []byte) bool {
		out[id] = string(value)
		return true
	})
	return out
}

// columnSnapshot is the immutable view a merge builds against: the published
// main part plus the delta prefix existing at snapshot time. Delta slices
// are append-only, so capturing their lengths pins a consistent prefix even
// while writers keep appending.
type columnSnapshot struct {
	dict      dict.Dictionary
	codes     intcomp.Vector
	nMain     int
	deltaVals []string
	deltaRows []uint32
}

// snapshot captures the current column state under the read lock.
func (c *StringColumn) snapshot() columnSnapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return columnSnapshot{
		dict:      c.dict,
		codes:     c.codes,
		nMain:     c.nMain,
		deltaVals: c.deltaVals[:len(c.deltaVals):len(c.deltaVals)],
		deltaRows: c.deltaRows[:len(c.deltaRows):len(c.deltaRows)],
	}
}

// Merge folds the delta part into the main part, rebuilding the dictionary
// in the given format. This is the reconstruction point where the
// compression manager's decision is applied for free.
func (c *StringColumn) Merge(format dict.Format) {
	c.MergeWithOptions(format, MergeOptions{})
}

// MergeWithOptions is Merge with construction tuning. The merge runs
// off-to-the-side: it snapshots main+delta, builds the merged dictionary and
// re-encoded code vector without holding any column lock, then publishes the
// result with a brief write-locked swap. Rows appended during the build
// survive in the delta; with no concurrent appends the result is identical
// to the serial merge.
func (c *StringColumn) MergeWithOptions(format dict.Format, opts MergeOptions) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()

	snap := c.snapshot()
	oldVals := dictValuesOf(snap.dict)

	// Union of old dictionary and distinct delta values.
	merged := make([]string, 0, len(oldVals)+len(snap.deltaVals))
	newDelta := append([]string(nil), snap.deltaVals...)
	sort.Strings(newDelta)
	i, j := 0, 0
	for i < len(oldVals) || j < len(newDelta) {
		switch {
		case j >= len(newDelta):
			merged = append(merged, oldVals[i])
			i++
		case i >= len(oldVals):
			if len(merged) == 0 || merged[len(merged)-1] != newDelta[j] {
				merged = append(merged, newDelta[j])
			}
			j++
		case oldVals[i] < newDelta[j]:
			merged = append(merged, oldVals[i])
			i++
		case oldVals[i] > newDelta[j]:
			merged = append(merged, newDelta[j])
			j++
		default:
			merged = append(merged, oldVals[i])
			i++
			j++
		}
	}

	// Remap old main codes and delta codes to the merged ID space.
	oldToNew := make([]uint32, len(oldVals))
	for oi, v := range oldVals {
		oldToNew[oi] = uint32(sort.SearchStrings(merged, v))
	}
	deltaToNew := make([]uint32, len(snap.deltaVals))
	for di, v := range snap.deltaVals {
		deltaToNew[di] = uint32(sort.SearchStrings(merged, v))
	}

	n := snap.nMain + len(snap.deltaRows)
	newCodes := make([]uint64, n)
	for row := 0; row < snap.nMain; row++ {
		newCodes[row] = uint64(oldToNew[snap.codes.Get(row)])
	}
	for i, dc := range snap.deltaRows {
		newCodes[snap.nMain+i] = uint64(deltaToNew[dc])
	}

	// The expensive part, off to the side: no reader or writer is blocked.
	newDict := dict.BuildUncheckedWithOptions(format, merged,
		dict.BuildOptions{Parallelism: opts.BuildParallelism})
	newVec := intcomp.PackAuto(newCodes)

	// Publish. Rows appended since the snapshot keep their positions after
	// the new main part; their values are re-interned into a fresh delta so
	// the delta again holds only unmerged data.
	c.mu.Lock()
	defer c.mu.Unlock()
	tail := c.deltaRows[len(snap.deltaRows):]
	freshVals := make([]string, 0, len(tail))
	freshIndex := make(map[string]uint32, len(tail))
	freshRows := make([]uint32, 0, len(tail))
	for _, dc := range tail {
		v := c.deltaVals[dc]
		code, ok := freshIndex[v]
		if !ok {
			code = uint32(len(freshVals))
			freshVals = append(freshVals, v)
			freshIndex[v] = code
		}
		freshRows = append(freshRows, code)
	}
	c.dict = newDict
	c.codes = newVec
	c.nMain = n
	c.deltaVals = freshVals
	c.deltaIndex = freshIndex
	c.deltaRows = freshRows
}

// Rebuild reconstructs the main dictionary in a new format without touching
// the delta (used when reconfiguring an already-merged store; code IDs are
// unchanged because all formats are order-preserving). Like Merge, the build
// happens against an immutable snapshot with only the swap write-locked.
func (c *StringColumn) Rebuild(format dict.Format) {
	c.RebuildWithOptions(format, MergeOptions{})
}

// RebuildWithOptions is Rebuild with construction tuning.
func (c *StringColumn) RebuildWithOptions(format dict.Format, opts MergeOptions) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()

	c.mu.RLock()
	old := c.dict
	c.mu.RUnlock()
	if format == old.Format() {
		return
	}
	newDict := dict.BuildUncheckedWithOptions(format, dictValuesOf(old),
		dict.BuildOptions{Parallelism: opts.BuildParallelism})

	c.mu.Lock()
	c.dict = newDict
	c.mu.Unlock()
}

// DictBytes returns the main dictionary's memory footprint.
func (c *StringColumn) DictBytes() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Bytes()
}

// VectorBytes returns the code vector's memory footprint.
func (c *StringColumn) VectorBytes() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.codes.Bytes()
}

// Bytes returns the column's total footprint: dictionary, code vector, and
// delta structures.
func (c *StringColumn) Bytes() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var delta uint64
	for _, v := range c.deltaVals {
		delta += uint64(len(v)) + 16 + 8 // payload + header + map entry
	}
	delta += uint64(len(c.deltaRows)) * 4
	return c.dict.Bytes() + c.codes.Bytes() + delta
}

func (c *StringColumn) String() string {
	return fmt.Sprintf("%s[%s, %d rows, %d distinct]", c.name, c.Format(), c.Len(), c.DictLen())
}

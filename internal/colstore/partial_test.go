package colstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"strdict/internal/dict"
)

// seal freezes the column's active segment into the sealed chain, giving
// tests deterministic control over segment boundaries.
func seal(c *StringColumn) {
	c.mergeMu.Lock()
	c.sealActive()
	c.mergeMu.Unlock()
}

// TestMergePartialBoundary folds the oldest segments one batch at a time
// and checks the main/sealed boundary after every fold, with every row
// readable and correct throughout.
func TestMergePartialBoundary(t *testing.T) {
	c := NewStringColumn("c", dict.FCBlock)
	const segs, perSeg = 5, 40
	var want []string
	for s := 0; s < segs; s++ {
		for i := 0; i < perSeg; i++ {
			v := fmt.Sprintf("s%d-%03d", s, i)
			c.Append(v)
			want = append(want, v)
		}
		seal(c)
	}
	if got := c.SealedSegments(); got != segs {
		t.Fatalf("sealed segments %d, want %d", got, segs)
	}

	for fold := 1; fold <= segs; fold++ {
		res := c.MergePartial(1)
		if res.Folded != perSeg {
			t.Fatalf("fold %d: folded %d rows, want %d", fold, res.Folded, perSeg)
		}
		v := c.version.Load()
		if v.nMain != fold*perSeg {
			t.Fatalf("fold %d: boundary at %d, want %d", fold, v.nMain, fold*perSeg)
		}
		if got := c.SealedSegments(); got != segs-fold {
			t.Fatalf("fold %d: %d sealed segments remain, want %d", fold, got, segs-fold)
		}
		for row, w := range want {
			if got := c.Get(row); got != w {
				t.Fatalf("fold %d: Get(%d) = %q, want %q", fold, row, got, w)
			}
		}
	}
	if c.DeltaRows() != 0 {
		t.Fatalf("delta not empty after folding everything: %d rows", c.DeltaRows())
	}
}

// TestMergePartialKeepsFormat: partial folds never change the dictionary
// format, with or without new distinct values.
func TestMergePartialKeepsFormat(t *testing.T) {
	c := NewStringColumn("c", dict.FCBlockBC)
	for i := 0; i < 64; i++ {
		c.Append(fmt.Sprintf("v%03d", i))
	}
	c.Merge(dict.FCBlockBC)
	for i := 0; i < 32; i++ {
		c.Append(fmt.Sprintf("w%03d", i)) // new values force a dict rebuild
	}
	if res := c.MergePartial(1); !res.DictBuilt {
		t.Fatal("new values should rebuild the dictionary")
	}
	if got := c.Format(); got != dict.FCBlockBC {
		t.Fatalf("partial fold changed format to %s", got)
	}
}

// TestMergePartialIdentityFold: folding segments whose values are all in
// the dictionary already must reuse the dictionary (no rebuild) and rewrite
// only the folded rows, extending the main vector instead of re-packing it.
func TestMergePartialIdentityFold(t *testing.T) {
	c := NewStringColumn("c", dict.FCBlock)
	const distinct = 50
	for i := 0; i < distinct; i++ {
		c.Append(fmt.Sprintf("v%03d", i))
	}
	c.Merge(dict.FCBlock)
	nMain := c.version.Load().nMain

	// Two segments of repeats: no new distinct values.
	for s := 0; s < 2; s++ {
		for i := 0; i < 30; i++ {
			c.Append(fmt.Sprintf("v%03d", (s*7+i*3)%distinct))
		}
		seal(c)
	}
	before := c.version.Load().dict
	res := c.MergePartial(2)
	if res.Folded != 60 {
		t.Fatalf("folded %d, want 60", res.Folded)
	}
	if res.DictBuilt {
		t.Fatal("identity fold rebuilt the dictionary")
	}
	if res.Rewritten != 60 {
		t.Fatalf("identity fold rewrote %d rows, want only the 60 folded", res.Rewritten)
	}
	v := c.version.Load()
	if v.dict != before {
		t.Fatal("identity fold did not reuse the dictionary value")
	}
	if v.nMain != nMain+60 {
		t.Fatalf("boundary %d, want %d", v.nMain, nMain+60)
	}
	for row := 0; row < c.Len(); row++ {
		got := c.Get(row)
		if id, found := c.Locate(got); !found || c.Extract(id) != got {
			t.Fatalf("row %d (%q) broken after identity fold", row, got)
		}
	}
}

// TestMergePartialEdgeCases: k <= 0 and empty columns are no-ops; k past
// the segment count clamps to a full fold.
func TestMergePartialEdgeCases(t *testing.T) {
	c := NewStringColumn("c", dict.Array)
	if res := c.MergePartial(3); res.Folded != 0 {
		t.Fatalf("empty column folded %d rows", res.Folded)
	}
	c.Append("a")
	if res := c.MergePartial(0); res.Folded != 0 {
		t.Fatalf("k=0 folded %d rows", res.Folded)
	}
	// k larger than the (post-seal) segment count folds everything.
	if res := c.MergePartial(99); res.Folded != 1 {
		t.Fatalf("clamped fold folded %d rows, want 1", res.Folded)
	}
	if c.DeltaRows() != 0 || c.Get(0) != "a" {
		t.Fatal("clamped fold lost the row")
	}
}

// TestMergePartialSnapshotIsolation: a snapshot taken before a partial fold
// keeps answering from the old boundary; one taken after sees the new.
func TestMergePartialSnapshotIsolation(t *testing.T) {
	c := NewStringColumn("c", dict.Array)
	for i := 0; i < 20; i++ {
		c.Append(fmt.Sprintf("a%02d", i))
	}
	seal(c)
	for i := 0; i < 20; i++ {
		c.Append(fmt.Sprintf("b%02d", i))
	}
	seal(c)

	old := c.Snapshot()
	oldMain := old.MainRows()
	res := c.MergePartial(1)
	if res.Folded != 20 {
		t.Fatalf("folded %d, want 20", res.Folded)
	}
	if old.MainRows() != oldMain {
		t.Fatal("pinned snapshot's boundary moved")
	}
	for i := 0; i < 40; i++ {
		want := fmt.Sprintf("a%02d", i)
		if i >= 20 {
			want = fmt.Sprintf("b%02d", i-20)
		}
		if got := old.Get(i); got != want {
			t.Fatalf("old snapshot Get(%d) = %q, want %q", i, got, want)
		}
	}
	if fresh := c.Snapshot(); fresh.MainRows() != oldMain+20 {
		t.Fatalf("fresh snapshot boundary %d, want %d", fresh.MainRows(), oldMain+20)
	}
}

// TestMergePartialEquivalenceDeterministic drives two columns through the
// same deterministic append sequence; one takes partial folds at every
// batch boundary, the other accumulates its delta untouched. Reads must
// agree at every step, and after one final full merge in the same format
// both columns must be bit-identical (dictionary and vector bytes).
func TestMergePartialEquivalenceDeterministic(t *testing.T) {
	a := NewStringColumn("a", dict.FCBlock)
	b := NewStringColumn("b", dict.FCBlock)
	value := func(i int) string { return fmt.Sprintf("val-%05d", (i*37)%500) }

	n := 0
	for batch := 0; batch < 12; batch++ {
		for i := 0; i < 100; i++ {
			a.Append(value(n))
			b.Append(value(n))
			n++
		}
		seal(a)
		if batch%3 == 2 {
			a.MergePartial(1 + batch%2)
		}
		for row := 0; row < n; row++ {
			av, bv := a.Get(row), b.Get(row)
			if av != bv {
				t.Fatalf("batch %d: row %d diverges: %q vs %q", batch, row, av, bv)
			}
		}
	}

	a.Merge(dict.FCBlock)
	b.Merge(dict.FCBlock)
	if ab, bb := a.DictBytes(), b.DictBytes(); ab != bb {
		t.Fatalf("dict bytes diverge after final merge: %d vs %d", ab, bb)
	}
	if ab, bb := a.VectorBytes(), b.VectorBytes(); ab != bb {
		t.Fatalf("vector bytes diverge after final merge: %d vs %d", ab, bb)
	}
}

// TestPartialPolicyEquivalenceConcurrent is the acceptance check: one
// deterministic writer drives two identical columns — one store merged by a
// partial-policy daemon under backpressure, the other full-merged — while
// snapshot readers hammer both. After Close, Get, ScanEq and Snapshot
// results must be bit-identical between the two runs. Runs under -race via
// scripts/check.sh.
func TestPartialPolicyEquivalenceConcurrent(t *testing.T) {
	const rows = 12_000
	value := func(i int) string { return fmt.Sprintf("eq-%05d", (i*13)%700) }

	run := func(partial bool) *StringColumn {
		s := NewStore()
		col := s.AddTable("t").AddString("c", dict.FCBlock)
		m := NewMergeScheduler(s, 2000)
		m.Interval = time.Millisecond
		m.HighWaterMark = 500
		m.PartialMerges = partial
		m.Parallelism = 2
		m.Start(context.Background())

		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Snapshot readers race the daemon; they cannot affect state, so
		// the written data stays deterministic.
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var buf []int
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := col.Snapshot()
					if n := snap.Len(); n > 0 {
						row := (r * 7919) % n
						if got := snap.Get(row); got == "" {
							panic("empty value")
						}
						buf = snap.ScanEq(value(r*31), buf[:0])
					}
				}
			}(r)
		}
		for i := 0; i < rows; i++ {
			col.Append(value(i))
		}
		close(stop)
		wg.Wait()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if partial {
			if st := m.ColumnMergeStats("t.c"); st.Partial == 0 {
				t.Fatalf("partial run did no partial folds: %+v", st)
			}
		}
		return col
	}

	pc := run(true)
	fc := run(false)

	if pc.Len() != rows || fc.Len() != rows {
		t.Fatalf("row counts %d / %d, want %d", pc.Len(), fc.Len(), rows)
	}
	for row := 0; row < rows; row++ {
		if pv, fv := pc.Get(row), fc.Get(row); pv != fv {
			t.Fatalf("Get(%d): %q vs %q", row, pv, fv)
		}
	}
	ps, fs := pc.Snapshot(), fc.Snapshot()
	if ps.DictLen() != fs.DictLen() {
		t.Fatalf("dict len %d vs %d", ps.DictLen(), fs.DictLen())
	}
	var pr, fr []int
	for i := 0; i < 40; i++ {
		probe := value(i * 101)
		pr = ps.ScanEq(probe, pr[:0])
		fr = fs.ScanEq(probe, fr[:0])
		if len(pr) != len(fr) {
			t.Fatalf("ScanEq(%q): %d vs %d rows", probe, len(pr), len(fr))
		}
		for k := range pr {
			if pr[k] != fr[k] {
				t.Fatalf("ScanEq(%q)[%d]: row %d vs %d", probe, k, pr[k], fr[k])
			}
		}
		plo, phi := ps.CodeRange(probe, probe+"~")
		flo, fhi := fs.CodeRange(probe, probe+"~")
		if plo != flo || phi != fhi {
			t.Fatalf("CodeRange(%q): [%d,%d) vs [%d,%d)", probe, plo, phi, flo, fhi)
		}
	}
}

// TestPartialPolicyKeepsFormatUnderChooser: the partial path must not
// consult the Chooser — a chooser that would switch formats on every merge
// sees only full merges.
func TestPartialPolicyKeepsFormatUnderChooser(t *testing.T) {
	s := NewStore()
	col := s.AddTable("t").AddString("c", dict.FCBlock)
	m := NewMergeScheduler(s, 1<<30) // threshold unreachable: kick path only
	m.Interval = time.Hour
	m.HighWaterMark = 100
	m.PartialMerges = true
	m.Chooser = func(snap *Snapshot, _ float64) dict.Format {
		return dict.Array // would change the format if consulted
	}
	m.Start(context.Background())
	for i := 0; i < 2000; i++ {
		col.Append(fmt.Sprintf("p%05d", i))
	}
	// Stop the daemon without the full-merge drain so the assertion sees
	// only what the kick path did.
	m.daemonMu.Lock()
	m.cancel()
	<-m.done
	m.cancel, m.done = nil, nil
	m.daemonMu.Unlock()
	for _, c := range s.StringColumns() {
		c.setBackpressure(0, nil)
	}

	st := m.ColumnMergeStats("t.c")
	if st.Partial == 0 {
		t.Fatalf("kick path did no partial folds: %+v", st)
	}
	if st.Full != 0 {
		t.Fatalf("kick path did %d full merges under the partial policy", st.Full)
	}
	if got := col.Format(); got != dict.FCBlock {
		t.Fatalf("partial policy changed format to %s", got)
	}
}
